test/test_attest.mli:
