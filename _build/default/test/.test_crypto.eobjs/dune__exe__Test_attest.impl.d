test/test_attest.ml: Alcotest Buffer Bytes Char Format Int64 List Printf QCheck QCheck_alcotest Sbt_attest Sbt_crypto Sbt_prim
