test/test_udf_quote.mli:
