test/test_sim.ml: Alcotest Array Float List Option Printf QCheck QCheck_alcotest Sbt_sim
