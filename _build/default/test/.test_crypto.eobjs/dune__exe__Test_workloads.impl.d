test/test_workloads.ml: Alcotest Array Hashtbl Int32 List Sbt_core Sbt_crypto Sbt_net Sbt_workloads
