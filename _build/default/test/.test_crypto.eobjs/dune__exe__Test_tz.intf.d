test/test_tz.mli:
