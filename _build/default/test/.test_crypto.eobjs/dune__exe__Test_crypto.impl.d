test/test_crypto.ml: Alcotest Array Bytes Char Int64 List Printf QCheck QCheck_alcotest Sbt_crypto String
