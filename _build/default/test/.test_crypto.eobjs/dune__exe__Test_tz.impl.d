test/test_tz.ml: Alcotest Sbt_tz
