test/test_baselines.ml: Alcotest Array Bytes Char Hashtbl Int32 Int64 List Option Printf QCheck QCheck_alcotest Sbt_attest Sbt_baselines Sbt_net Sbt_workloads String
