test/test_prim.ml: Alcotest Array Hashtbl Int32 Int64 List Option QCheck QCheck_alcotest Sbt_crypto Sbt_prim Sbt_umem
