test/test_dataplane_ops.mli:
