test/test_pipeline_extra.ml: Alcotest Array Bytes Format Hashtbl Int32 Int64 List Option Printf QCheck QCheck_alcotest Sbt_attest Sbt_core Sbt_crypto Sbt_net Sbt_prim Sbt_umem Sbt_workloads
