test/test_umem.mli:
