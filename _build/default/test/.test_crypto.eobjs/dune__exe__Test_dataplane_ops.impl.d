test/test_dataplane_ops.ml: Alcotest Array Bytes Int32 List Sbt_attest Sbt_core Sbt_net Sbt_prim
