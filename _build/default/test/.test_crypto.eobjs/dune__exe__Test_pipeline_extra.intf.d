test/test_pipeline_extra.mli:
