test/test_umem.ml: Alcotest Int32 Int64 List QCheck QCheck_alcotest Sbt_umem
