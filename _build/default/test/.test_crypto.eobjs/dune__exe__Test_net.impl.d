test/test_net.ml: Alcotest Bytes Sbt_net
