test/test_udf_quote.ml: Alcotest Array Bytes Int32 List Sbt_attest Sbt_core Sbt_net Sbt_prim Sbt_workloads
