(* Tests for the discrete-event simulator: scheduling semantics, virtual
   core scaling, dependency handling, trace replay, and the rate search. *)

module Des = Sbt_sim.Des
module Trace = Sbt_sim.Trace
module Rate_search = Sbt_sim.Rate_search

(* Fixed-cost work: host time ~0 (host_scale 0 in callers that need
   exactness), modeled cost via the return value. *)
let cost ns ~start_ns:_ = ns

let des ?(cores = 1) () = Des.create ~host_scale:0.0 ~cores ()

let test_single_task () =
  let d = des () in
  let t = Des.schedule d ~label:"t" ~work:(cost 100.0) () in
  Des.run d;
  Alcotest.(check (float 0.001)) "finish" 100.0 (Des.finish_ns t);
  Alcotest.(check (float 0.001)) "makespan" 100.0 (Des.makespan_ns d);
  Alcotest.(check int) "executed" 1 (Des.tasks_executed d)

let test_chain_serializes () =
  let d = des () in
  let a = Des.schedule d ~label:"a" ~work:(cost 100.0) () in
  let b = Des.schedule d ~deps:[ a ] ~label:"b" ~work:(cost 50.0) () in
  Des.run d;
  Alcotest.(check (float 0.001)) "b after a" 150.0 (Des.finish_ns b)

let test_parallel_speedup () =
  (* Eight 100ns tasks: 800ns on 1 core, 200ns on 4 cores. *)
  let run cores =
    let d = des ~cores () in
    for _ = 1 to 8 do
      ignore (Des.schedule d ~label:"w" ~work:(cost 100.0) ())
    done;
    Des.run d;
    Des.makespan_ns d
  in
  Alcotest.(check (float 0.001)) "1 core" 800.0 (run 1);
  Alcotest.(check (float 0.001)) "4 cores" 200.0 (run 4);
  Alcotest.(check (float 0.001)) "8 cores" 100.0 (run 8)

let test_not_before_pacing () =
  let d = des ~cores:4 () in
  let t = Des.schedule d ~not_before:500.0 ~label:"late" ~work:(cost 10.0) () in
  Des.run d;
  Alcotest.(check (float 0.001)) "waits for arrival" 510.0 (Des.finish_ns t)

let test_dep_on_finished_task () =
  let d = des () in
  let a = Des.schedule d ~label:"a" ~work:(cost 100.0) () in
  Des.run d;
  (* Scheduling against an already-finished dependency must work (the
     control plane does this constantly). *)
  let b = Des.schedule d ~deps:[ a ] ~label:"b" ~work:(cost 10.0) () in
  Des.run d;
  Alcotest.(check (float 0.001)) "b starts at a's finish" 110.0 (Des.finish_ns b)

let test_dynamic_scheduling_from_work () =
  (* A task that schedules its successor while running — depending on the
     still-executing task itself, as the control plane's windowing tasks
     do. *)
  let d = des () in
  let parent_task = ref None in
  let child = ref None in
  let parent_work ~start_ns:_ =
    let self = Option.get !parent_task in
    child := Some (Des.schedule d ~deps:[ self ] ~label:"child" ~work:(cost 5.0) ());
    10.0
  in
  parent_task := Some (Des.schedule d ~label:"parent" ~work:parent_work ());
  Des.run d;
  match !child with
  | Some c -> Alcotest.(check (float 0.001)) "child after parent" 15.0 (Des.finish_ns c)
  | None -> Alcotest.fail "expected a child"

let test_unfinished_raises () =
  let d = des () in
  let t = Des.schedule d ~label:"t" ~work:(cost 1.0) () in
  ignore (Des.schedule d ~deps:[ t ] ~label:"u" ~work:(cost 1.0) ());
  Alcotest.check_raises "not finished" (Invalid_argument "Des.finish_ns: task not finished")
    (fun () -> ignore (Des.finish_ns t))

let test_utilization () =
  let d = des ~cores:2 () in
  ignore (Des.schedule d ~label:"a" ~work:(cost 100.0) ());
  ignore (Des.schedule d ~label:"b" ~work:(cost 100.0) ());
  Des.run d;
  Alcotest.(check (float 0.001)) "full" 1.0 (Des.utilization d)

(* --- trace replay ---------------------------------------------------------- *)

(* A synthetic pipeline trace: W windows, B batches per window; each batch
   has an ingest node (paced) and a compute node; a watermark marker and a
   close/egress node per window. *)
let synthetic_trace ~windows ~batches ~ingest_ns ~compute_ns ~close_ns =
  let nodes = ref [] in
  let idx = ref (-1) in
  let add node = incr idx; nodes := node :: !nodes; !idx in
  let events_per_batch = 1000 in
  let cum = ref 0 in
  for w = 0 to windows - 1 do
    let stage_ids = ref [] in
    for _ = 0 to batches - 1 do
      cum := !cum + events_per_batch;
      let ingest =
        add { Trace.label = "ingest"; cost_ns = ingest_ns; deps = []; arrival_events = Some !cum; role = Trace.Plain }
      in
      let comp =
        add { Trace.label = "compute"; cost_ns = compute_ns; deps = [ ingest ]; arrival_events = None; role = Trace.Plain }
      in
      stage_ids := comp :: !stage_ids
    done;
    let wm =
      add { Trace.label = "wm"; cost_ns = 0.0; deps = []; arrival_events = Some !cum; role = Trace.Watermark_arrival w }
    in
    ignore
      (add
         {
           Trace.label = "close";
           cost_ns = close_ns;
           deps = wm :: !stage_ids;
           arrival_events = None;
           role = Trace.Egress_of w;
         })
  done;
  Trace.of_nodes (Array.of_list (List.rev !nodes))

let test_replay_unpaced () =
  let t = synthetic_trace ~windows:2 ~batches:2 ~ingest_ns:10.0 ~compute_ns:100.0 ~close_ns:50.0 in
  let r = Trace.replay t ~cores:8 ~rate_eps:Float.infinity in
  Alcotest.(check int) "two windows" 2 (List.length r.Trace.delays);
  Alcotest.(check bool) "positive delay" true (r.Trace.max_delay_ns > 0.0)

let test_replay_delay_monotone_in_rate () =
  let t = synthetic_trace ~windows:4 ~batches:8 ~ingest_ns:1_000.0 ~compute_ns:100_000.0 ~close_ns:10_000.0 in
  let delay rate = (Trace.replay t ~cores:2 ~rate_eps:rate).Trace.max_delay_ns in
  (* Faster arrival can only increase backlog and hence delay. *)
  let d_slow = delay 1.0e5 and d_mid = delay 1.0e7 and d_fast = delay 1.0e9 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone %.0f <= %.0f <= %.0f" d_slow d_mid d_fast)
    true
    (d_slow <= d_mid +. 1.0 && d_mid <= d_fast +. 1.0)

let test_replay_more_cores_less_delay () =
  let t = synthetic_trace ~windows:4 ~batches:16 ~ingest_ns:1_000.0 ~compute_ns:200_000.0 ~close_ns:10_000.0 in
  let delay cores = (Trace.replay t ~cores ~rate_eps:1.0e8).Trace.max_delay_ns in
  Alcotest.(check bool) "8 cores beat 1" true (delay 8 < delay 1)

let test_replay_deterministic () =
  let t = synthetic_trace ~windows:3 ~batches:4 ~ingest_ns:500.0 ~compute_ns:5_000.0 ~close_ns:100.0 in
  let a = Trace.replay t ~cores:4 ~rate_eps:1.0e6 in
  let b = Trace.replay t ~cores:4 ~rate_eps:1.0e6 in
  Alcotest.(check bool) "identical" true (a = b)

let test_trace_validation () =
  Alcotest.check_raises "forward dep" (Invalid_argument "Trace.of_nodes: deps must point backwards")
    (fun () ->
      ignore
        (Trace.of_nodes
           [|
             { Trace.label = "a"; cost_ns = 1.0; deps = [ 1 ]; arrival_events = None; role = Trace.Plain };
             { Trace.label = "b"; cost_ns = 1.0; deps = []; arrival_events = None; role = Trace.Plain };
           |]))

let test_trace_totals () =
  let t = synthetic_trace ~windows:2 ~batches:2 ~ingest_ns:10.0 ~compute_ns:100.0 ~close_ns:50.0 in
  Alcotest.(check int) "events" 4000 (Trace.total_events t);
  Alcotest.(check (float 0.01)) "cost" ((4.0 *. 110.0) +. (2.0 *. 50.0)) (Trace.total_cost_ns t)

(* Property: on random forests of paced, chained tasks the schedule obeys
   the classic list-scheduling bounds: the makespan is at least the
   critical path and at least total-work/cores, busy time is conserved,
   and utilization never exceeds 1. *)
let prop_des_schedule_invariants =
  QCheck.Test.make ~name:"DES scheduling invariants" ~count:60
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 1 5) (int_range 1 1000))))
    (fun (cores, chains) ->
      let d = des ~cores () in
      let total = ref 0.0 and critical = ref 0.0 in
      List.iter
        (fun (len, base) ->
          let prev = ref None in
          let chain_cost = ref 0.0 in
          for i = 0 to len - 1 do
            let c = float_of_int (base + (i * 37)) in
            total := !total +. c;
            chain_cost := !chain_cost +. c;
            let deps = match !prev with Some t -> [ t ] | None -> [] in
            prev := Some (Des.schedule d ~deps ~label:"n" ~work:(cost c) ())
          done;
          if !chain_cost > !critical then critical := !chain_cost)
        chains;
      Des.run d;
      let mk = Des.makespan_ns d in
      let eps = 1e-6 in
      (chains = [] && mk = 0.0)
      || (mk +. eps >= !critical
         && mk +. eps >= !total /. float_of_int cores
         && Float.abs (Des.busy_ns d -. !total) < 1e-3
         && Des.utilization d <= 1.0 +. eps))

(* --- rate search -------------------------------------------------------------- *)

let test_rate_search_finds_knee () =
  (* Heavy compute: capacity ~= events/(cost/cores). *)
  let t = synthetic_trace ~windows:6 ~batches:8 ~ingest_ns:10_000.0 ~compute_ns:1_000_000.0 ~close_ns:100_000.0 in
  let r2 = Rate_search.max_rate ~trace:t ~cores:2 ~target_delay_ns:5.0e6 () in
  let r8 = Rate_search.max_rate ~trace:t ~cores:8 ~target_delay_ns:5.0e6 () in
  Alcotest.(check bool) "positive" true (r2.Rate_search.rate_eps > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "more cores, more throughput (%.0f vs %.0f)" r2.Rate_search.rate_eps
       r8.Rate_search.rate_eps)
    true
    (r8.Rate_search.rate_eps > r2.Rate_search.rate_eps *. 1.5);
  Alcotest.(check bool) "delay within target" true (r2.Rate_search.delay_at_rate_ns <= 5.0e6)

let test_rate_search_infeasible_target () =
  (* The close task alone exceeds the delay target: rate 0. *)
  let t = synthetic_trace ~windows:2 ~batches:1 ~ingest_ns:10.0 ~compute_ns:10.0 ~close_ns:1_000_000.0 in
  let r = Rate_search.max_rate ~trace:t ~cores:8 ~target_delay_ns:1_000.0 () in
  Alcotest.(check (float 0.0)) "rate 0" 0.0 r.Rate_search.rate_eps

let () =
  Alcotest.run "sim"
    [
      ( "des",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "chain serializes" `Quick test_chain_serializes;
          Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
          Alcotest.test_case "not_before pacing" `Quick test_not_before_pacing;
          Alcotest.test_case "dep on finished task" `Quick test_dep_on_finished_task;
          Alcotest.test_case "dynamic scheduling" `Quick test_dynamic_scheduling_from_work;
          Alcotest.test_case "unfinished raises" `Quick test_unfinished_raises;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "trace",
        [
          Alcotest.test_case "replay unpaced" `Quick test_replay_unpaced;
          Alcotest.test_case "delay monotone in rate" `Quick test_replay_delay_monotone_in_rate;
          Alcotest.test_case "more cores less delay" `Quick test_replay_more_cores_less_delay;
          Alcotest.test_case "deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "totals" `Quick test_trace_totals;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_des_schedule_invariants ] );
      ( "rate-search",
        [
          Alcotest.test_case "finds the knee" `Quick test_rate_search_finds_knee;
          Alcotest.test_case "infeasible target" `Quick test_rate_search_infeasible_target;
        ] );
    ]
