(* Tests for the from-scratch crypto substrate: AES-128 against FIPS-197
   vectors, SHA-256 against FIPS 180-4 vectors, HMAC against RFC 4231,
   CTR-mode algebraic properties, and PRNG behaviour. *)

module Aes = Sbt_crypto.Aes
module Ctr = Sbt_crypto.Ctr
module Sha256 = Sbt_crypto.Sha256
module Hmac = Sbt_crypto.Hmac
module Rng = Sbt_crypto.Rng

let bytes_of_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let hex_of b =
  String.concat "" (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let check_hex = Alcotest.(check string)

(* --- AES -------------------------------------------------------------- *)

let test_aes_fips_vector () =
  (* FIPS-197 Appendix C.1. *)
  let key = Aes.expand_key (bytes_of_hex "000102030405060708090a0b0c0d0e0f") in
  let pt = bytes_of_hex "00112233445566778899aabbccddeeff" in
  let ct = Bytes.create 16 in
  Aes.encrypt_block key pt 0 ct 0;
  check_hex "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a" (hex_of ct);
  let back = Bytes.create 16 in
  Aes.decrypt_block key ct 0 back 0;
  check_hex "decrypted" (hex_of pt) (hex_of back)

let test_aes_appendix_b () =
  (* FIPS-197 Appendix B example. *)
  let key = Aes.expand_key (bytes_of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let pt = bytes_of_hex "3243f6a8885a308d313198a2e0370734" in
  let ct = Bytes.create 16 in
  Aes.encrypt_block key pt 0 ct 0;
  check_hex "ciphertext" "3925841d02dc09fbdc118597196a0b32" (hex_of ct)

let test_aes_offset_io () =
  let key = Aes.expand_key (Bytes.make 16 'k') in
  let buf = Bytes.make 48 '\000' in
  Bytes.blit (Bytes.of_string "0123456789abcdef") 0 buf 16 16;
  Aes.encrypt_block key buf 16 buf 16;
  let out = Bytes.create 16 in
  Aes.decrypt_block key buf 16 out 0;
  Alcotest.(check string) "in-place at offset" "0123456789abcdef" (Bytes.to_string out)

let test_aes_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand_key: key must be 16 bytes")
    (fun () -> ignore (Aes.expand_key (Bytes.create 8)))

let prop_aes_roundtrip =
  QCheck.Test.make ~name:"aes encrypt/decrypt roundtrip" ~count:200
    (QCheck.pair (QCheck.string_of_size (QCheck.Gen.return 16))
       (QCheck.string_of_size (QCheck.Gen.return 16)))
    (fun (k, p) ->
      let key = Aes.expand_key (Bytes.of_string k) in
      let ct = Bytes.create 16 in
      Aes.encrypt_block key (Bytes.of_string p) 0 ct 0;
      let back = Bytes.create 16 in
      Aes.decrypt_block key ct 0 back 0;
      Bytes.to_string back = p)

(* --- CTR -------------------------------------------------------------- *)

let test_ctr_roundtrip () =
  let key = Bytes.of_string "0123456789abcdef" in
  let msg = Bytes.of_string "counter mode over an odd-length message!" in
  let ct = Ctr.xcrypt_bytes ~key ~nonce:7L msg in
  Alcotest.(check bool) "ciphertext differs" false (Bytes.equal ct msg);
  let back = Ctr.xcrypt_bytes ~key ~nonce:7L ct in
  Alcotest.(check string) "roundtrip" (Bytes.to_string msg) (Bytes.to_string back)

let test_ctr_position_independence () =
  (* Decrypting a slice with its absolute position must match decrypting
     the whole stream: batches are processed out of order. *)
  let key = Bytes.of_string "0123456789abcdef" in
  let msg = Bytes.init 100 (fun i -> Char.chr (i land 0xFF)) in
  let whole = Bytes.copy msg in
  let t = Ctr.create ~key ~nonce:3L in
  Ctr.xcrypt t ~pos:0L whole 0 100;
  (* now decrypt bytes [37, 70) independently *)
  let slice = Bytes.sub whole 37 33 in
  let t2 = Ctr.create ~key ~nonce:3L in
  Ctr.xcrypt t2 ~pos:37L slice 0 33;
  Alcotest.(check string) "slice matches" (Bytes.to_string (Bytes.sub msg 37 33)) (Bytes.to_string slice)

let test_ctr_different_nonce_differs () =
  let key = Bytes.of_string "0123456789abcdef" in
  let msg = Bytes.make 32 'x' in
  let a = Ctr.xcrypt_bytes ~key ~nonce:1L msg in
  let b = Ctr.xcrypt_bytes ~key ~nonce:2L msg in
  Alcotest.(check bool) "nonces separate streams" false (Bytes.equal a b)

let prop_ctr_roundtrip =
  QCheck.Test.make ~name:"ctr roundtrip any length" ~count:200 QCheck.string (fun s ->
      let key = Bytes.of_string "0123456789abcdef" in
      let ct = Ctr.xcrypt_bytes ~key ~nonce:99L (Bytes.of_string s) in
      Bytes.to_string (Ctr.xcrypt_bytes ~key ~nonce:99L ct) = s)

(* --- SHA-256 ----------------------------------------------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex (Bytes.create 0));
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex (Bytes.of_string "abc"));
  check_hex "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex (Bytes.of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  let chunk = Bytes.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk 0 1000
  done;
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex_of (Sha256.finalize ctx))

let test_sha256_incremental_equals_oneshot () =
  let data = Bytes.init 300 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let ctx = Sha256.init () in
  Sha256.update ctx data 0 100;
  Sha256.update ctx data 100 1;
  Sha256.update ctx data 101 199;
  check_hex "incremental" (Sha256.digest_hex data) (hex_of (Sha256.finalize ctx))

let prop_sha256_length_invariance =
  QCheck.Test.make ~name:"sha256 split invariance" ~count:100
    (QCheck.pair QCheck.string QCheck.small_nat) (fun (s, k) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let split = if n = 0 then 0 else k mod (n + 1) in
      let ctx = Sha256.init () in
      Sha256.update ctx b 0 split;
      Sha256.update ctx b split (n - split);
      Bytes.equal (Sha256.finalize ctx) (Sha256.digest b))

(* --- HMAC -------------------------------------------------------------- *)

let test_hmac_rfc4231 () =
  (* RFC 4231 test cases 1 and 2. *)
  let tag1 = Hmac.mac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There") in
  check_hex "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (hex_of tag1);
  let tag2 = Hmac.mac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?") in
  check_hex "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (hex_of tag2)

let test_hmac_long_key () =
  (* Keys longer than the block size are hashed first (RFC 4231 case 6). *)
  let tag =
    Hmac.mac ~key:(Bytes.make 131 '\xaa') (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")
  in
  check_hex "case 6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" (hex_of tag)

let test_hmac_verify () =
  let key = Bytes.of_string "k" in
  let msg = Bytes.of_string "message" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts valid" true (Hmac.verify ~key ~tag msg);
  let bad = Bytes.copy tag in
  Bytes.set bad 5 (Char.chr (Char.code (Bytes.get bad 5) lxor 1));
  Alcotest.(check bool) "rejects flipped bit" false (Hmac.verify ~key ~tag:bad msg);
  Alcotest.(check bool) "rejects short tag" false (Hmac.verify ~key ~tag:(Bytes.create 4) msg)

(* --- RNG --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:2L in
  Alcotest.(check bool) "different seed differs" false
    (Int64.equal (Rng.next_int64 (Rng.create ~seed:1L)) (Rng.next_int64 c))

let test_rng_int_below_bounds () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let v = Rng.int_below rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int_below out of range"
  done

let test_rng_uniformity () =
  let rng = Rng.create ~seed:9L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int_below rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket count %d too far from %d" c expected)
    buckets

let test_rng_float_unit () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let f = Rng.float_unit rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float_unit out of range"
  done

let test_rng_bytes_len () =
  let rng = Rng.create ~seed:4L in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (Bytes.length (Rng.bytes rng n)))
    [ 0; 1; 7; 8; 9; 100 ]

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:6L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "aes",
        [
          Alcotest.test_case "fips c.1 vector" `Quick test_aes_fips_vector;
          Alcotest.test_case "fips appendix b" `Quick test_aes_appendix_b;
          Alcotest.test_case "offset io" `Quick test_aes_offset_io;
          Alcotest.test_case "bad key rejected" `Quick test_aes_bad_key;
          q prop_aes_roundtrip;
        ] );
      ( "ctr",
        [
          Alcotest.test_case "roundtrip" `Quick test_ctr_roundtrip;
          Alcotest.test_case "position independence" `Quick test_ctr_position_independence;
          Alcotest.test_case "nonce separation" `Quick test_ctr_different_nonce_differs;
          q prop_ctr_roundtrip;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental_equals_oneshot;
          q prop_sha256_length_invariance;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "int_below bounds" `Quick test_rng_int_below_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "float_unit range" `Quick test_rng_float_unit;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
    ]
