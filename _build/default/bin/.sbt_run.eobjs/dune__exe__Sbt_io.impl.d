bin/sbt_io.ml: Buffer Bytes Char Fun List Printf Sbt_attest Sbt_net
