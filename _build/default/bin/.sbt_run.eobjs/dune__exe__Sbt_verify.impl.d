bin/sbt_verify.ml: Arg Bytes Cmd Cmdliner Format List Printf Sbt_attest Sbt_io Term
