bin/sbt_run.ml: Arg Cmd Cmdliner Format Option Printf Sbt_attest Sbt_core Sbt_io Sbt_workloads Term
