bin/sbt_datagen.ml: Arg Bytes Cmd Cmdliner List Printf Sbt_io Sbt_net Sbt_workloads Term
