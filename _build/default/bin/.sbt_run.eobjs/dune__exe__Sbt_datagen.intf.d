bin/sbt_datagen.mli:
