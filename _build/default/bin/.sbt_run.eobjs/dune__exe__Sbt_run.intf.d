bin/sbt_run.mli:
