bin/sbt_verify.mli:
