(* sbt_verify: the cloud consumer's side of continuous attestation.
   Reads an audit file written by `sbt_run --audit-out`, authenticates
   every signed batch, replays the records against the embedded pipeline
   declaration, and prints the verdict.  Exit code 0 = verified. *)

module Log = Sbt_attest.Log
module V = Sbt_attest.Verifier

let run path key_string freshness_us =
  let key = Bytes.of_string key_string in
  let spec, batches = Sbt_io.read_audit path in
  let spec =
    match freshness_us with None -> spec | Some b -> { spec with V.freshness_bound = Some b }
  in
  let records =
    List.concat_map
      (fun b ->
        try Log.open_batch ~key b
        with Invalid_argument msg ->
          Printf.eprintf "batch %d rejected: %s\n" b.Log.seq msg;
          exit 3)
      batches
  in
  Printf.printf "authenticated %d batches, %d records\n" (List.length batches) (List.length records);
  let report = V.verify spec records in
  Format.printf "%a" V.pp_report report;
  if not (V.ok report) then exit 2

open Cmdliner

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"AUDIT_FILE")

let key_arg =
  Arg.(value & opt string "sbt-egress-key16" & info [ "key" ] ~doc:"Shared edge/cloud key (16 bytes)")

let freshness_arg =
  Arg.(value & opt (some int) None & info [ "freshness-us" ] ~doc:"Override the freshness bound (microseconds)")

let cmd =
  let doc = "Verify a StreamBox-TZ audit log by symbolic replay" in
  Cmd.v (Cmd.info "sbt_verify" ~doc) Term.(const run $ path_arg $ key_arg $ freshness_arg)

let () = exit (Cmd.eval cmd)
