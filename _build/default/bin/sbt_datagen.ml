(* sbt_datagen: generate a benchmark's source stream and write it to disk
   in the frame format `sbt_run --frames` consumes — the offline stand-in
   for the paper's Generator program. *)

module B = Sbt_workloads.Benchmarks
module Frame = Sbt_net.Frame

let run name out windows events_per_window batch encrypted =
  match B.by_name name with
  | None ->
      Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|filter|power)\n" name;
      exit 1
  | Some mk ->
      let bench = mk ~windows ~events_per_window ~batch_events:batch ~encrypted () in
      let frames = B.frames bench in
      Sbt_io.write_frames out frames;
      let events, bytes_len =
        List.fold_left
          (fun (e, b) f ->
            match f with
            | Frame.Events { events; payload; _ } -> (e + events, b + Bytes.length payload)
            | Frame.Watermark _ -> (e, b))
          (0, 0) frames
      in
      Printf.printf "%s: wrote %d frames (%d events, %.1f MB%s) to %s\n" bench.B.name
        (List.length frames) events
        (float_of_int bytes_len /. 1e6)
        (if encrypted then ", AES-128-CTR encrypted" else "")
        out

open Cmdliner

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
let out_arg = Arg.(value & opt string "stream.sbtd" & info [ "out"; "o" ] ~doc:"Output path")
let windows_arg = Arg.(value & opt int 4 & info [ "windows"; "w" ] ~doc:"Number of windows")
let epw_arg = Arg.(value & opt int 100_000 & info [ "events-per-window"; "e" ] ~doc:"Events per window")
let batch_arg = Arg.(value & opt int 10_000 & info [ "batch"; "b" ] ~doc:"Events per batch")
let enc_arg = Arg.(value & flag & info [ "encrypt" ] ~doc:"Encrypt payloads (untrusted source-edge link)")

let cmd =
  let doc = "Generate a StreamBox-TZ benchmark source stream" in
  Cmd.v
    (Cmd.info "sbt_datagen" ~doc)
    Term.(const run $ name_arg $ out_arg $ windows_arg $ epw_arg $ batch_arg $ enc_arg)

let () = exit (Cmd.eval cmd)
