(* Quickstart: declare a windowed-aggregation pipeline, feed it a small
   synthetic stream, run it on the modeled 8-core TrustZone edge platform,
   and read back the per-window results as the cloud consumer would.

   Run with: dune exec examples/quickstart.exe *)

module B = Sbt_workloads.Benchmarks
module Runner = Sbt_core.Runner
module D = Sbt_core.Dataplane

let () =
  print_endline "== StreamBox-TZ quickstart: windowed aggregation ==";
  (* 1. A pipeline: 1-second fixed windows, Sum over the value field.
        (Assembled from declarative operators; see Sbt_core.Pipeline.) *)
  let bench = B.win_sum ~windows:4 ~events_per_window:50_000 ~batch_events:10_000 () in
  let frames = B.frames bench in
  Printf.printf "source: %d events in %d frames\n" (Sbt_workloads.Datagen.total_events bench.B.spec)
    (List.length frames);

  (* 2. Run it: the data plane executes inside the modeled TEE; the runner
        also replays the recorded schedule at several core counts to find
        the max sustainable throughput under the delay target. *)
  let outcome =
    Runner.run ~cores_list:[ 2; 4; 8 ] ~target_delay_ms:bench.B.target_delay_ms bench.B.pipeline
      frames
  in

  (* 3. Results arrive encrypted and signed; open them with the shared key. *)
  let egress_key = Bytes.of_string "sbt-egress-key16" in
  List.iter
    (fun (w, sealed) ->
      let rows = D.open_result ~egress_key sealed in
      let lo = Int64.logand (Int64.of_int32 rows.(0).(0)) 0xFFFFFFFFL in
      let hi = Int64.shift_left (Int64.of_int32 rows.(0).(1)) 32 in
      Printf.printf "window %d: sum = %Ld\n" w (Int64.add hi lo))
    outcome.Runner.results;

  (* 4. Throughput and attestation summary. *)
  List.iter
    (fun p ->
      Printf.printf "%d cores: %.2f M events/s (%.1f MB/s) at %.1f ms worst delay\n"
        p.Runner.cores
        (p.Runner.events_per_sec /. 1e6)
        p.Runner.mb_per_sec p.Runner.delay_ms)
    outcome.Runner.points;
  Printf.printf "audit: %d records, %d B compressed (%.1fx); cloud verifier: %s\n"
    outcome.Runner.audit_records outcome.Runner.audit_compressed_bytes
    (float_of_int outcome.Runner.audit_raw_bytes
    /. float_of_int (max 1 outcome.Runner.audit_compressed_bytes))
    (if outcome.Runner.verified then "OK" else "VIOLATIONS")
