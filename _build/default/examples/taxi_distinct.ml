(* Counting distinct taxis per window (the paper's Distinct benchmark,
   modeled on the DEBS'15 taxi-trip dataset with its 11k distinct taxi
   ids).  Demonstrates a GroupBy-family pipeline: per-batch Sort stages,
   a per-window k-way Merge, Unique, and Count.

   Run with: dune exec examples/taxi_distinct.exe *)

module B = Sbt_workloads.Benchmarks
module Runner = Sbt_core.Runner
module D = Sbt_core.Dataplane

let () =
  print_endline "== StreamBox-TZ: distinct taxis per 1-second window ==";
  let bench = B.distinct ~windows:4 ~events_per_window:60_000 ~batch_events:10_000 () in
  let outcome =
    Runner.run ~cores_list:[ 2; 8 ] ~target_delay_ms:bench.B.target_delay_ms bench.B.pipeline
      (B.frames bench)
  in
  let egress_key = Bytes.of_string "sbt-egress-key16" in
  List.iter
    (fun (w, sealed) ->
      let rows = D.open_result ~egress_key sealed in
      Printf.printf "window %d: %ld distinct taxis\n" w rows.(0).(0))
    outcome.Runner.results;
  List.iter
    (fun p ->
      Printf.printf "%d cores: %.2f M events/s within %.0f ms delay target\n" p.Runner.cores
        (p.Runner.events_per_sec /. 1e6)
        bench.B.target_delay_ms)
    outcome.Runner.points;
  Printf.printf "steady TEE memory: %.1f MB; verifier: %s\n" outcome.Runner.mem_steady_mb
    (if outcome.Runner.verified then "OK" else "VIOLATIONS")
