examples/taxi_distinct.ml: Array Bytes List Printf Sbt_core Sbt_workloads
