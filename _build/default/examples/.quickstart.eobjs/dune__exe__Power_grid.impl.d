examples/power_grid.ml: Array Bytes Hashtbl Int32 List Option Printf Sbt_attest Sbt_core Sbt_workloads
