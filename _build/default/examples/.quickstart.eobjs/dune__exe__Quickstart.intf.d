examples/quickstart.mli:
