examples/taxi_distinct.mli:
