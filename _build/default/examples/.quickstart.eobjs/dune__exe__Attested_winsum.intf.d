examples/attested_winsum.mli:
