examples/power_grid.mli:
