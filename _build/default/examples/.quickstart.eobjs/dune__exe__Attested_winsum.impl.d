examples/attested_winsum.ml: Bytes Char List Printf Sbt_attest Sbt_core Sbt_prim Sbt_workloads
