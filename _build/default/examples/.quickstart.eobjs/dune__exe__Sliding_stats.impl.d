examples/sliding_stats.ml: Array Bytes Int64 List Printf Sbt_attest Sbt_core Sbt_workloads
