examples/quickstart.ml: Array Bytes Int64 List Printf Sbt_core Sbt_workloads
