examples/sliding_stats.mli:
