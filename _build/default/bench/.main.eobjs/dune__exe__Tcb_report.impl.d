bench/tcb_report.ml: Array Filename Fun List Printf Sbt_prim Sbt_tz String Sys
