bench/main.mli:
