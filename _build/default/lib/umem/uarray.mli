(** uArray: contiguous, virtually unbounded, append-only buffer (paper §6.1).

    A uArray encapsulates same-type records of [width] 32-bit fields in one
    contiguous region.  Its lifecycle follows the producer/consumer pattern
    of streaming computations:

    - {b Open}: the producer appends records; the array grows in place by
      bumping an index (never relocating).  Growth commits secure pages
      on demand.
    - {b Produced}: sealed, read-only.
    - {b Retired}: no longer needed; its pages are reclaimed when its
      uGroup's reclamation front reaches it (see {!Ugroup}).

    The backing store reserves the full capacity up front (the model of the
    TEE's large-virtual-space reservation); the OS commits host pages
    lazily, and the secure page pool is charged as [len] grows. *)

type state = Open | Produced | Retired

type scope = Streaming | State | Temporary
(** Paper §6.1: streaming uArrays flow between primitives, state uArrays
    hold operator state across windows, temporary uArrays live within one
    primitive. *)

type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

exception Full of { id : int; capacity : int }
exception Sealed of { id : int }

val create :
  id:int -> pool:Page_pool.t -> width:int -> capacity:int -> ?scope:scope -> unit -> t
(** [capacity] is in records.  No secure pages are committed until data is
    appended. *)

val id : t -> int
val width : t -> int
val capacity : t -> int
val length : t -> int
(** Records currently stored. *)

val state : t -> state
val scope : t -> scope
val is_open : t -> bool

val append : t -> int32 array -> unit
(** Append one record ([width] fields).  Raises {!Full} when capacity is
    exceeded, {!Sealed} if not open. *)

val append_fields3 : t -> int32 -> int32 -> int32 -> unit
(** Fast path for the common 3-field event (no array allocation). *)

val append_fields4 : t -> int32 -> int32 -> int32 -> int32 -> unit

val append_blit : t -> src:t -> src_pos:int -> len:int -> unit
(** Bulk copy [len] records from the produced array [src]. *)

val reserve : t -> int -> int
(** [reserve t n] grows the array by [n] uninitialized records (committing
    pages) and returns the index of the first; the caller then writes via
    {!set_field}.  The in-place growth path used by hot primitives. *)

val get_field : t -> int -> int -> int32
(** [get_field t record field]. Bounds-checked. *)

val set_field : t -> int -> int -> int32 -> unit
(** Only valid while open. *)

val raw : t -> buf
(** The backing bigarray (records are at [record * width + field]).  Hot
    primitives use this directly; they must respect [length] and only
    write below it (after {!reserve}). *)

val produce : t -> unit
(** Seal: Open -> Produced.  Idempotence is not allowed: raises
    [Invalid_argument] unless currently open. *)

val retire : t -> unit
(** Produced -> Retired (an Open array may also be retired on pipeline
    teardown).  Pages remain charged until {!release_pages}. *)

val release_pages : t -> unit
(** Return this array's committed pages to the pool.  Called by the uGroup
    reclamation front only; raises [Invalid_argument] unless retired. *)

val committed_pages : t -> int
val committed_bytes : t -> int
val bytes_len : t -> int
(** Payload bytes ([length * width * 4]). *)

val to_list : t -> int32 array list
(** All records as field arrays — test/debug helper, O(n) allocation. *)
