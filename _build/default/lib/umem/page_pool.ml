type t = {
  budget_pages : int;
  mutable committed : int;
  mutable high_water : int;
}

exception Out_of_secure_memory of { requested_pages : int; available_pages : int }

let page_size = 4096
let pages_for_bytes n = (n + page_size - 1) / page_size

let create ~budget_bytes =
  if budget_bytes <= 0 then invalid_arg "Page_pool.create: budget must be positive";
  { budget_pages = pages_for_bytes budget_bytes; committed = 0; high_water = 0 }

let available_pages t = t.budget_pages - t.committed

let commit t ~pages =
  if pages < 0 then invalid_arg "Page_pool.commit: negative pages";
  if t.committed + pages > t.budget_pages then
    raise (Out_of_secure_memory { requested_pages = pages; available_pages = available_pages t });
  t.committed <- t.committed + pages;
  if t.committed > t.high_water then t.high_water <- t.committed

let release t ~pages =
  if pages < 0 || pages > t.committed then invalid_arg "Page_pool.release: bad page count";
  t.committed <- t.committed - pages

let committed_pages t = t.committed
let committed_bytes t = t.committed * page_size
let budget_bytes t = t.budget_pages * page_size
let high_water_bytes t = t.high_water * page_size
let reset_high_water t = t.high_water <- t.committed
