type t = {
  pool : Page_pool.t;
  width : int;
  mutable buf : Uarray.buf;
  mutable len : int;
  mutable cap : int;
  mutable committed : int;
  mutable relocations : int;
}

let initial_capacity = 16

let create ~pool ~width () =
  if width <= 0 then invalid_arg "Growable_vector.create: width must be positive";
  let buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (initial_capacity * width) in
  { pool; width; buf; len = 0; cap = initial_capacity; committed = 0; relocations = 0 }

let length t = t.len
let capacity t = t.cap
let relocations t = t.relocations

(* Doubling growth: allocate a fresh region, copy everything over, release
   the old pages — the relocation cost uArray avoids.  During the copy both
   regions are committed, which is also how a real vector behaves. *)
let grow_capacity t needed =
  let new_cap = ref (max t.cap 1) in
  while !new_cap < needed do
    new_cap := !new_cap * 2
  done;
  let new_pages = Page_pool.pages_for_bytes (!new_cap * t.width * 4) in
  Page_pool.commit t.pool ~pages:new_pages;
  let new_buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (!new_cap * t.width) in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.buf 0 (t.len * t.width))
    (Bigarray.Array1.sub new_buf 0 (t.len * t.width));
  Page_pool.release t.pool ~pages:t.committed;
  t.buf <- new_buf;
  t.cap <- !new_cap;
  t.committed <- new_pages;
  t.relocations <- t.relocations + 1

let ensure t needed =
  if needed > t.cap then grow_capacity t needed
  else begin
    let pages = Page_pool.pages_for_bytes (needed * t.width * 4) in
    if pages > t.committed then begin
      Page_pool.commit t.pool ~pages:(pages - t.committed);
      t.committed <- pages
    end
  end

let reserve t n =
  if n < 0 then invalid_arg "Growable_vector.reserve: negative count";
  let first = t.len in
  ensure t (t.len + n);
  t.len <- t.len + n;
  first

let append_fields3 t a b c =
  if t.width <> 3 then invalid_arg "Growable_vector.append_fields3: width <> 3";
  let r = reserve t 1 in
  let base = r * 3 in
  Bigarray.Array1.unsafe_set t.buf base a;
  Bigarray.Array1.unsafe_set t.buf (base + 1) b;
  Bigarray.Array1.unsafe_set t.buf (base + 2) c

let append t fields =
  if Array.length fields <> t.width then invalid_arg "Growable_vector.append: wrong field count";
  let r = reserve t 1 in
  for i = 0 to t.width - 1 do
    Bigarray.Array1.unsafe_set t.buf ((r * t.width) + i) fields.(i)
  done

let get_field t r f =
  if r < 0 || r >= t.len || f < 0 || f >= t.width then
    invalid_arg "Growable_vector.get_field: out of bounds";
  Bigarray.Array1.unsafe_get t.buf ((r * t.width) + f)

let set_field t r f v =
  if r < 0 || r >= t.len || f < 0 || f >= t.width then
    invalid_arg "Growable_vector.set_field: out of bounds";
  Bigarray.Array1.unsafe_set t.buf ((r * t.width) + f) v

let raw t = t.buf

let free t =
  Page_pool.release t.pool ~pages:t.committed;
  t.committed <- 0;
  t.len <- 0
