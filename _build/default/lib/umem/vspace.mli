(** The TEE's virtual address space (256 TB on ARMv8).

    The allocator avoids uGroup collisions and relocation by reserving, for
    every uGroup, a virtual range as large as the whole secure DRAM and
    placing the ranges far apart (paper §6.2, "Managing virtual
    addresses").  This module is the bookkeeping for those reservations;
    the actual backing store lives in each uArray's bigarray. *)

type t

exception Virtual_space_exhausted

val create : ?total_bytes:int64 -> stride_bytes:int -> unit -> t
(** [total_bytes] defaults to 256 TB.  [stride_bytes] is the size reserved
    per uGroup — the engine passes the secure-DRAM size. *)

val reserve : t -> int64
(** Reserve the next range; returns its base address. *)

val release : t -> int64 -> unit
(** Return a range to the free list (reused LIFO). *)

val reserved_ranges : t -> int
val utilization : t -> float
(** Fraction of the whole space currently reserved — the paper reports this
    staying at 1-5%. *)
