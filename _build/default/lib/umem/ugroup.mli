(** uGroup: a set of uArrays co-located in one contiguous virtual range and
    reclaimed strictly from the front (paper §6.2, Figure 5).

    A uGroup holds a sequence of produced or retired uArrays and optionally
    one open uArray at its end.  Reclamation always starts at the
    beginning: a retired uArray's pages are released only once every
    uArray before it has been released.  A straggling (unconsumed) uArray
    therefore pins the memory of every later uArray in the group — the
    cost the allocator's consumption hints exist to avoid. *)

type t

val create : id:int -> vbase:int64 -> t
val id : t -> int
val vbase : t -> int64

val append : t -> Uarray.t -> unit
(** Raises [Invalid_argument] if the current last member is still open
    (only the group's tail may be open — members are laid out
    consecutively, so nothing can be placed after a still-growing
    array). *)

val last : t -> Uarray.t option
(** The member at the group's end (the only legal growth/append point). *)

val member_count : t -> int
val live_member_count : t -> int
(** Members whose pages have not been released yet. *)

val reclaim : t -> int
(** Release pages of the maximal retired prefix; returns how many uArrays
    were released.  Idempotent. *)

val is_exhausted : t -> bool
(** True once every member has been released (and there is at least one
    member): the group's virtual range can be returned to the vspace. *)

val pinned_bytes : t -> int
(** Committed bytes held by members that are retired but cannot be
    released yet because an earlier member is still live — the waste the
    hint ablation (Figure 10) measures. *)

val members : t -> Uarray.t list
