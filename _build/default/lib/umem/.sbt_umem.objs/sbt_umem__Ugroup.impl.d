lib/umem/ugroup.ml: Array Uarray
