lib/umem/page_pool.mli:
