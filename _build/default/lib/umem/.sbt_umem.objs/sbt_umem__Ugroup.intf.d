lib/umem/ugroup.mli: Uarray
