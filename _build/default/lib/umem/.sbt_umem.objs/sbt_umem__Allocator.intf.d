lib/umem/allocator.mli: Page_pool Uarray
