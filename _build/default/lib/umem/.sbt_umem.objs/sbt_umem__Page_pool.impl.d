lib/umem/page_pool.ml:
