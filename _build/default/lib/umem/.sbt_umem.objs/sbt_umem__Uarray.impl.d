lib/umem/uarray.ml: Array Bigarray List Page_pool
