lib/umem/vspace.ml: Int64
