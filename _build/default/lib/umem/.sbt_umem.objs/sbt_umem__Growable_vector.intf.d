lib/umem/growable_vector.mli: Page_pool Uarray
