lib/umem/vspace.mli:
