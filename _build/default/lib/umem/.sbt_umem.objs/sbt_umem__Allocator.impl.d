lib/umem/allocator.ml: Hashtbl List Page_pool Uarray Ugroup Vspace
