lib/umem/growable_vector.ml: Array Bigarray Page_pool Uarray
