lib/umem/uarray.mli: Bigarray Page_pool
