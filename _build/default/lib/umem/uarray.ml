type state = Open | Produced | Retired
type scope = Streaming | State | Temporary
type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  id : int;
  width : int;
  capacity : int;
  scope : scope;
  pool : Page_pool.t;
  buf : buf;
  mutable len : int;
  mutable state : state;
  mutable committed : int; (* pages charged to [pool] *)
  mutable pages_released : bool;
}

exception Full of { id : int; capacity : int }
exception Sealed of { id : int }

let create ~id ~pool ~width ~capacity ?(scope = Streaming) () =
  if width <= 0 then invalid_arg "Uarray.create: width must be positive";
  if capacity < 0 then invalid_arg "Uarray.create: negative capacity";
  let buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (capacity * width) in
  { id; width; capacity; scope; pool; buf; len = 0; state = Open; committed = 0; pages_released = false }

let id t = t.id
let width t = t.width
let capacity t = t.capacity
let length t = t.len
let state t = t.state
let scope t = t.scope
let is_open t = match t.state with Open -> true | Produced | Retired -> false

let ensure_open t = match t.state with Open -> () | Produced | Retired -> raise (Sealed { id = t.id })

(* Charge pages for [new_len] records; growth is the only place pages are
   committed, so committed pages always cover [len]. *)
let grow_to t new_len =
  if new_len > t.capacity then raise (Full { id = t.id; capacity = t.capacity });
  let needed = Page_pool.pages_for_bytes (new_len * t.width * 4) in
  if needed > t.committed then begin
    Page_pool.commit t.pool ~pages:(needed - t.committed);
    t.committed <- needed
  end;
  t.len <- new_len

let reserve t n =
  ensure_open t;
  if n < 0 then invalid_arg "Uarray.reserve: negative count";
  let first = t.len in
  grow_to t (t.len + n);
  first

let append t fields =
  ensure_open t;
  if Array.length fields <> t.width then invalid_arg "Uarray.append: wrong field count";
  let r = t.len in
  grow_to t (r + 1);
  let base = r * t.width in
  for i = 0 to t.width - 1 do
    Bigarray.Array1.unsafe_set t.buf (base + i) fields.(i)
  done

let append_fields3 t a b c =
  ensure_open t;
  if t.width <> 3 then invalid_arg "Uarray.append_fields3: width <> 3";
  let r = t.len in
  grow_to t (r + 1);
  let base = r * 3 in
  Bigarray.Array1.unsafe_set t.buf base a;
  Bigarray.Array1.unsafe_set t.buf (base + 1) b;
  Bigarray.Array1.unsafe_set t.buf (base + 2) c

let append_fields4 t a b c d =
  ensure_open t;
  if t.width <> 4 then invalid_arg "Uarray.append_fields4: width <> 4";
  let r = t.len in
  grow_to t (r + 1);
  let base = r * 4 in
  Bigarray.Array1.unsafe_set t.buf base a;
  Bigarray.Array1.unsafe_set t.buf (base + 1) b;
  Bigarray.Array1.unsafe_set t.buf (base + 2) c;
  Bigarray.Array1.unsafe_set t.buf (base + 3) d

let append_blit t ~src ~src_pos ~len =
  ensure_open t;
  if src.width <> t.width then invalid_arg "Uarray.append_blit: width mismatch";
  if src_pos < 0 || len < 0 || src_pos + len > src.len then
    invalid_arg "Uarray.append_blit: bad range";
  let first = t.len in
  grow_to t (t.len + len);
  let dst_sub = Bigarray.Array1.sub t.buf (first * t.width) (len * t.width) in
  let src_sub = Bigarray.Array1.sub src.buf (src_pos * src.width) (len * src.width) in
  Bigarray.Array1.blit src_sub dst_sub

let get_field t r f =
  if r < 0 || r >= t.len || f < 0 || f >= t.width then invalid_arg "Uarray.get_field: out of bounds";
  Bigarray.Array1.unsafe_get t.buf ((r * t.width) + f)

let set_field t r f v =
  ensure_open t;
  if r < 0 || r >= t.len || f < 0 || f >= t.width then invalid_arg "Uarray.set_field: out of bounds";
  Bigarray.Array1.unsafe_set t.buf ((r * t.width) + f) v

let raw t = t.buf

let produce t =
  match t.state with
  | Open -> t.state <- Produced
  | Produced | Retired -> invalid_arg "Uarray.produce: not open"

let retire t =
  match t.state with
  | Open | Produced -> t.state <- Retired
  | Retired -> invalid_arg "Uarray.retire: already retired"

let release_pages t =
  (match t.state with
  | Retired -> ()
  | Open | Produced -> invalid_arg "Uarray.release_pages: not retired");
  if not t.pages_released then begin
    Page_pool.release t.pool ~pages:t.committed;
    t.committed <- 0;
    t.pages_released <- true
  end

let committed_pages t = t.committed
let committed_bytes t = t.committed * Page_pool.page_size
let bytes_len t = t.len * t.width * 4

let to_list t =
  List.init t.len (fun r -> Array.init t.width (fun f -> Bigarray.Array1.get t.buf ((r * t.width) + f)))
