type t = {
  id : int;
  vbase : int64;
  mutable arrays : Uarray.t array; (* append-only; [front] indexes the reclamation point *)
  mutable count : int;
  mutable front : int; (* members [0, front) have had their pages released *)
}

let create ~id ~vbase = { id; vbase; arrays = [||]; count = 0; front = 0 }

let id t = t.id
let vbase t = t.vbase

let last t = if t.count = 0 then None else Some t.arrays.(t.count - 1)

let append t ua =
  (match last t with
  | Some prev when Uarray.is_open prev ->
      invalid_arg "Ugroup.append: group tail is still open"
  | Some _ | None -> ());
  if t.count = Array.length t.arrays then begin
    let bigger = Array.make (max 4 (2 * t.count)) ua in
    Array.blit t.arrays 0 bigger 0 t.count;
    t.arrays <- bigger
  end;
  t.arrays.(t.count) <- ua;
  t.count <- t.count + 1

let member_count t = t.count
let live_member_count t = t.count - t.front

let reclaim t =
  let released = ref 0 in
  let continue = ref true in
  while !continue && t.front < t.count do
    let ua = t.arrays.(t.front) in
    match Uarray.state ua with
    | Uarray.Retired ->
        Uarray.release_pages ua;
        t.front <- t.front + 1;
        incr released
    | Uarray.Open | Uarray.Produced -> continue := false
  done;
  !released

let is_exhausted t = t.count > 0 && t.front = t.count

let pinned_bytes t =
  (* Committed bytes of retired members sitting behind a live one. *)
  let acc = ref 0 in
  let seen_live = ref false in
  for i = t.front to t.count - 1 do
    let ua = t.arrays.(i) in
    match Uarray.state ua with
    | Uarray.Open | Uarray.Produced -> seen_live := true
    | Uarray.Retired -> if !seen_live then acc := !acc + Uarray.committed_bytes ua
  done;
  !acc

let members t = Array.to_list (Array.sub t.arrays t.front (t.count - t.front))
