type t = {
  total : int64;
  stride : int64;
  mutable next : int64;
  mutable free : int64 list;
  mutable live : int;
}

exception Virtual_space_exhausted

let default_total = Int64.shift_left 1L 48 (* 256 TB *)

let create ?(total_bytes = default_total) ~stride_bytes () =
  if stride_bytes <= 0 then invalid_arg "Vspace.create: stride must be positive";
  { total = total_bytes; stride = Int64.of_int stride_bytes; next = 0L; free = []; live = 0 }

let reserve t =
  match t.free with
  | base :: rest ->
      t.free <- rest;
      t.live <- t.live + 1;
      base
  | [] ->
      let base = t.next in
      let next = Int64.add base t.stride in
      if Int64.compare next t.total > 0 then raise Virtual_space_exhausted;
      t.next <- next;
      t.live <- t.live + 1;
      base

let release t base =
  t.free <- base :: t.free;
  t.live <- t.live - 1

let reserved_ranges t = t.live
let utilization t = Int64.to_float (Int64.mul (Int64.of_int t.live) t.stride) /. Int64.to_float t.total
