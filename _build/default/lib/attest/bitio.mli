(** Bit-granular IO used by the Huffman coder. *)

module Writer : sig
  type t

  val create : unit -> t
  val put_bit : t -> int -> unit
  (** [put_bit w b] appends the low bit of [b]. *)

  val put_bits : t -> value:int -> bits:int -> unit
  (** Append [bits] bits of [value], most significant first. *)

  val contents : t -> bytes
  (** Pad the final byte with zero bits and return everything written. *)

  val bit_length : t -> int
end

module Reader : sig
  type t

  val create : bytes -> t
  val get_bit : t -> int
  (** Raises [End_of_file] past the end. *)

  val get_bits : t -> int -> int
  val bits_remaining : t -> int
end
