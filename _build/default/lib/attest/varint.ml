let write_unsigned buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.unsafe_chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.unsafe_chr (low lor 0x80))
  done

let read_unsigned data pos =
  let v = ref 0L and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length data then invalid_arg "Varint.read_unsigned: truncated";
    let b = Char.code (Bytes.get data !pos) in
    incr pos;
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7F)) !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !v

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)
let unzigzag v = Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))
let write_signed buf v = write_unsigned buf (zigzag v)
let read_signed data pos = unzigzag (read_unsigned data pos)
