lib/attest/quote.ml: Buffer Bytes List Sbt_crypto
