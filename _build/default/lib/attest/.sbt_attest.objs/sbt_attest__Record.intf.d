lib/attest/record.mli: Buffer Format
