lib/attest/columnar.ml: Buffer Bytes Char Huffman Int64 List Printf Record Varint
