lib/attest/log.ml: Bytes Char Columnar List Record Sbt_crypto
