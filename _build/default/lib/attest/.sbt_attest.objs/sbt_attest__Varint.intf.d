lib/attest/varint.mli: Buffer
