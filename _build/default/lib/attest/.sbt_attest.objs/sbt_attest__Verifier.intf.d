lib/attest/verifier.mli: Format Record
