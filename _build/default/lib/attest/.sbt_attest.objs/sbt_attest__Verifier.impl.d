lib/attest/verifier.ml: Format Hashtbl Int64 List Record String
