lib/attest/varint.ml: Buffer Bytes Char Int64
