lib/attest/record.ml: Buffer Bytes Char Format Int64 List Printf String Varint
