lib/attest/bitio.mli:
