lib/attest/quote.mli:
