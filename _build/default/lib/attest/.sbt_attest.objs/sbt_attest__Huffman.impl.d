lib/attest/huffman.ml: Array Bitio Buffer Bytes Char Hashtbl Int64 Varint
