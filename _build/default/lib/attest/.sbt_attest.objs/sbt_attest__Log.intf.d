lib/attest/log.mli: Record
