lib/attest/bitio.ml: Buffer Bytes Char
