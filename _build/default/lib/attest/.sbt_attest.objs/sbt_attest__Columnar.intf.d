lib/attest/columnar.mli: Record
