lib/attest/huffman.mli:
