type measurement = bytes
type quote = { measurement : bytes; tag : bytes }

let measure ~components =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, version) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf version;
      Buffer.add_char buf '\000')
    components;
  Sbt_crypto.Sha256.digest (Buffer.to_bytes buf)

let payload measurement ~nonce = Bytes.cat measurement nonce

let issue ~device_key measurement ~nonce =
  { measurement = Bytes.copy measurement; tag = Sbt_crypto.Hmac.mac ~key:device_key (payload measurement ~nonce) }

let verify ~device_key ~expected ~nonce q =
  Bytes.equal q.measurement expected
  && Sbt_crypto.Hmac.verify ~key:device_key ~tag:q.tag (payload q.measurement ~nonce)

let quote_bytes q = Bytes.cat q.measurement q.tag

let quote_of_bytes b =
  if Bytes.length b <> 64 then invalid_arg "Quote.quote_of_bytes: expected 64 bytes";
  { measurement = Bytes.sub b 0 32; tag = Bytes.sub b 32 32 }
