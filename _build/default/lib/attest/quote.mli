(** TEE identity quotes.

    The paper assumes TrustZone guarantees TEE code authenticity and
    integrity ("only code trusted by the device vendor can run in
    TrustZone", §3.1) and that the verifier trusts the audit stream
    because it comes from a known data plane.  This module models the
    glue: the device holds an attestation key; a quote binds the TEE's
    measurement (a hash over the data-plane code identity) to a verifier
    challenge, so the cloud can check both *what* is running and that the
    response is fresh before trusting any audit records from it. *)

type measurement = bytes
(** 32-byte code-identity hash. *)

type quote

val measure : components:(string * string) list -> measurement
(** Hash an ordered list of (component name, version/digest) pairs —
    the data plane's build manifest. *)

val issue : device_key:bytes -> measurement -> nonce:bytes -> quote
(** The TEE's response to a challenge [nonce]. *)

val verify :
  device_key:bytes -> expected:measurement -> nonce:bytes -> quote -> bool
(** Cloud-side check: right code, right challenge, valid MAC. *)

val quote_bytes : quote -> bytes
val quote_of_bytes : bytes -> quote
