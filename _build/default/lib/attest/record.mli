(** Audit records (paper §7, Figure 6).

    The data plane emits one record per boundary event: data/watermark
    ingestion, window assignment, primitive execution, and result
    externalization.  Records reference uArrays by the data plane's
    monotonically increasing identifiers (never by address or opaque
    reference) and carry the data-plane timestamp. *)

type t =
  | Ingress of { ts : int; uarray : int }
      (** A batch entered the TEE and became uArray [uarray]. *)
  | Ingress_watermark of { ts : int; id : int; value : int }
      (** A watermark with event-time [value] was ingested; it gets an id
          so later execution records can name it as a trigger. *)
  | Windowing of { ts : int; data_in : int; win_no : int; data_out : int }
      (** Segment assigned part of [data_in] to window [win_no],
          producing [data_out]. *)
  | Execution of {
      ts : int;
      op : int;  (** {!Sbt_prim.Primitive.to_id} *)
      inputs : int list;
      outputs : int list;
      hints : int64 list;  (** encoded consumption hints, optional *)
    }
  | Egress of { ts : int; uarray : int; win_no : int }
      (** A window result left the TEE (encrypted and signed). *)

val pp : Format.formatter -> t -> unit

val encode_row : Buffer.t -> t -> unit
(** Raw row-order binary encoding (the uncompressed on-edge format whose
    size Figure 12 reports as "Raw"). *)

val decode_row : bytes -> int ref -> t
(** Raises [Invalid_argument] on malformed input. *)

val encode_all : t list -> bytes
val decode_all : bytes -> t list

val ts_of : t -> int
