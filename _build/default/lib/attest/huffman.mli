(** Canonical Huffman coding over a byte alphabet.

    Used for the audit-record columns with skewed value distributions —
    primitive ids and data counts (paper §7).  The code table (one length
    byte per symbol) is serialized in front of the payload, so a block is
    self-describing. *)

val encode : bytes -> bytes
(** Compress a byte sequence.  Degenerate inputs (empty, single distinct
    symbol) are handled. *)

val decode : bytes -> bytes
(** Inverse of {!encode}.  Raises [Invalid_argument] on malformed input. *)
