module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable used : int; mutable bits : int }

  let create () = { buf = Buffer.create 256; acc = 0; used = 0; bits = 0 }

  let put_bit t b =
    t.acc <- (t.acc lsl 1) lor (b land 1);
    t.used <- t.used + 1;
    t.bits <- t.bits + 1;
    if t.used = 8 then begin
      Buffer.add_char t.buf (Char.unsafe_chr t.acc);
      t.acc <- 0;
      t.used <- 0
    end

  let put_bits t ~value ~bits =
    if bits < 0 || bits > 62 then invalid_arg "Bitio.put_bits";
    for i = bits - 1 downto 0 do
      put_bit t ((value lsr i) land 1)
    done

  let contents t =
    let b = Buffer.to_bytes t.buf in
    if t.used = 0 then b
    else begin
      let padded = t.acc lsl (8 - t.used) in
      let out = Bytes.create (Bytes.length b + 1) in
      Bytes.blit b 0 out 0 (Bytes.length b);
      Bytes.set out (Bytes.length b) (Char.unsafe_chr (padded land 0xFF));
      out
    end

  let bit_length t = t.bits
end

module Reader = struct
  type t = { data : bytes; mutable pos : int (* bit position *) }

  let create data = { data; pos = 0 }

  let get_bit t =
    let byte = t.pos lsr 3 in
    if byte >= Bytes.length t.data then raise End_of_file;
    let bit = 7 - (t.pos land 7) in
    t.pos <- t.pos + 1;
    (Char.code (Bytes.get t.data byte) lsr bit) land 1

  let get_bits t n =
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor get_bit t
    done;
    !v

  let bits_remaining t = (8 * Bytes.length t.data) - t.pos
end
