(** LEB128 variable-length integers with zigzag signed mapping.

    Delta-encoded audit-record columns (timestamps, uArray ids, window
    numbers — all near-monotonic) shrink to one or two bytes per value
    this way. *)

val write_unsigned : Buffer.t -> int64 -> unit
val read_unsigned : bytes -> int ref -> int64
(** Reads at the position in the ref, advancing it. *)

val zigzag : int64 -> int64
val unzigzag : int64 -> int64
val write_signed : Buffer.t -> int64 -> unit
val read_signed : bytes -> int ref -> int64
