(** Columnar compression of audit records (paper §7).

    Before upload, a batch of row-order records is split into columns and
    each column is encoded with a scheme matched to its distribution,
    exactly as the paper prescribes:

    - Huffman coding for primitive/record types and data counts (heavily
      skewed);
    - delta + zigzag varint for timestamps, uArray identifiers, window
      numbers and watermark values (near-monotonic);
    - plain varint for optional hints.

    [compress] and [decompress] are exact inverses; the verifier works on
    the decompressed records. *)

val compress : Record.t list -> bytes
val decompress : bytes -> Record.t list

val raw_size : Record.t list -> int
(** Bytes of the uncompressed row encoding (Figure 12's "Raw" series). *)

val ratio : Record.t list -> float
(** [raw_size / compressed size]; 1.0 for an empty batch. *)
