(* Canonical Huffman: build code lengths with a simple two-queue-ish
   heap, assign canonical codes, serialize lengths + symbol count +
   payload bits. *)

let max_symbols = 256

(* Binary min-heap over (weight, node index). *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable len : int }

  let create cap = { data = Array.make (max cap 1) (0, 0); len = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h x =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) (0, 0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- x;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top

  let size h = h.len
end

(* Compute code lengths via Huffman tree; cap depth by construction is not
   needed for our block sizes (lengths stay < 64 for any input < 2^64). *)
let code_lengths freqs =
  let parent = Array.make (2 * max_symbols) (-1) in
  let heap = Heap.create 64 in
  let node_count = ref max_symbols in
  Array.iteri (fun s f -> if f > 0 then Heap.push heap (f, s)) freqs;
  if Heap.size heap = 1 then begin
    (* Single-symbol block: give it a 1-bit code. *)
    let _, s = Heap.pop heap in
    let lengths = Array.make max_symbols 0 in
    lengths.(s) <- 1;
    lengths
  end
  else begin
    while Heap.size heap > 1 do
      let fa, a = Heap.pop heap in
      let fb, b = Heap.pop heap in
      let n = !node_count in
      incr node_count;
      parent.(a) <- n;
      parent.(b) <- n;
      Heap.push heap (fa + fb, n)
    done;
    let lengths = Array.make max_symbols 0 in
    Array.iteri
      (fun s f ->
        if f > 0 then begin
          let d = ref 0 and n = ref s in
          while parent.(!n) >= 0 do
            incr d;
            n := parent.(!n)
          done;
          lengths.(s) <- !d
        end)
      freqs;
    lengths
  end

(* Canonical code assignment from lengths. *)
let canonical_codes lengths =
  let codes = Array.make max_symbols 0 in
  let max_len = Array.fold_left max 0 lengths in
  let bl_count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lengths;
  let next_code = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for bits = 1 to max_len do
    code := (!code + bl_count.(bits - 1)) lsl 1;
    next_code.(bits) <- !code
  done;
  for s = 0 to max_symbols - 1 do
    let l = lengths.(s) in
    if l > 0 then begin
      codes.(s) <- next_code.(l);
      next_code.(l) <- next_code.(l) + 1
    end
  done;
  codes

let encode data =
  let n = Bytes.length data in
  let out = Buffer.create (n / 2) in
  Varint.write_unsigned out (Int64.of_int n);
  if n = 0 then Buffer.to_bytes out
  else begin
    let freqs = Array.make max_symbols 0 in
    Bytes.iter (fun c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1) data;
    let lengths = code_lengths freqs in
    let codes = canonical_codes lengths in
    (* Sparse table header when the alphabet is small (audit-record op and
       count columns use a handful of symbols): distinct-symbol count,
       then (symbol, length) pairs.  0xFF marks a dense 256-byte table. *)
    let distinct = Array.fold_left (fun acc l -> if l > 0 then acc + 1 else acc) 0 lengths in
    if distinct < 128 then begin
      Buffer.add_char out (Char.unsafe_chr distinct);
      Array.iteri
        (fun s l ->
          if l > 0 then begin
            Buffer.add_char out (Char.unsafe_chr s);
            Buffer.add_char out (Char.unsafe_chr l)
          end)
        lengths
    end
    else begin
      Buffer.add_char out '\xFF';
      Array.iter (fun l -> Buffer.add_char out (Char.unsafe_chr l)) lengths
    end;
    let w = Bitio.Writer.create () in
    Bytes.iter
      (fun c ->
        let s = Char.code c in
        Bitio.Writer.put_bits w ~value:codes.(s) ~bits:lengths.(s))
      data;
    Buffer.add_bytes out (Bitio.Writer.contents w);
    Buffer.to_bytes out
  end

let decode data =
  let pos = ref 0 in
  let n = Int64.to_int (Varint.read_unsigned data pos) in
  if n = 0 then Bytes.create 0
  else begin
    if Bytes.length data <= !pos then invalid_arg "Huffman.decode: truncated table";
    let marker = Char.code (Bytes.get data !pos) in
    incr pos;
    let lengths =
      if marker = 0xFF then begin
        if Bytes.length data < !pos + max_symbols then
          invalid_arg "Huffman.decode: truncated table";
        let l = Array.init max_symbols (fun i -> Char.code (Bytes.get data (!pos + i))) in
        pos := !pos + max_symbols;
        l
      end
      else begin
        if Bytes.length data < !pos + (2 * marker) then
          invalid_arg "Huffman.decode: truncated table";
        let l = Array.make max_symbols 0 in
        for i = 0 to marker - 1 do
          let s = Char.code (Bytes.get data (!pos + (2 * i))) in
          l.(s) <- Char.code (Bytes.get data (!pos + (2 * i) + 1))
        done;
        pos := !pos + (2 * marker);
        l
      end
    in
    let codes = canonical_codes lengths in
    (* Decoding table: (length, code) -> symbol. *)
    let table = Hashtbl.create 64 in
    Array.iteri (fun s l -> if l > 0 then Hashtbl.replace table (l, codes.(s)) s) lengths;
    let payload = Bytes.sub data !pos (Bytes.length data - !pos) in
    let r = Bitio.Reader.create payload in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      let len = ref 0 and code = ref 0 in
      let sym = ref (-1) in
      while !sym < 0 do
        code := (!code lsl 1) lor Bitio.Reader.get_bit r;
        incr len;
        if !len > 62 then invalid_arg "Huffman.decode: bad stream";
        match Hashtbl.find_opt table (!len, !code) with
        | Some s -> sym := s
        | None -> ()
      done;
      Bytes.set out i (Char.unsafe_chr !sym)
    done;
    out
  end
