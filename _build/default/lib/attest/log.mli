(** The in-TEE audit log and its flush policy.

    The data plane appends a record per boundary event; the log compresses
    pending records and signs the batch (HMAC-SHA-256 under the
    edge/cloud key) when flushed.  Flushes happen periodically and upon
    every result externalization (paper §7). *)

type t

type batch = { payload : bytes; tag : bytes; seq : int }
(** A signed upload unit: columnar-compressed records plus its MAC.  [seq]
    increments per flush so the verifier can detect dropped batches. *)

val create : key:bytes -> flush_every:int -> t
(** Flush automatically once [flush_every] records are pending (a
    size-based stand-in for the paper's periodic flush). *)

val append : t -> Record.t -> batch option
(** Returns a batch when the append triggered an automatic flush. *)

val flush : t -> batch option
(** Force a flush; [None] when nothing is pending. *)

val open_batch : key:bytes -> batch -> Record.t list
(** Verify the MAC and decompress — the cloud side.  Raises
    [Invalid_argument] on a bad tag (tampered or forged batch). *)

val records_produced : t -> int
val raw_bytes : t -> int
(** Total row-encoded size of everything appended so far. *)

val compressed_bytes : t -> int
(** Total size of all flushed payloads. *)
