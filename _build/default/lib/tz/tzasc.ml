type region = { size : int; world : World.t }
type t = { tbl : (string, region) Hashtbl.t }

exception Access_violation of { region : string; accessor : World.t; owner : World.t }

let create () = { tbl = Hashtbl.create 8 }

let add_region t ~name ~bytes_len ~world =
  if Hashtbl.mem t.tbl name then invalid_arg ("Tzasc.add_region: duplicate region " ^ name);
  if bytes_len < 0 then invalid_arg "Tzasc.add_region: negative size";
  Hashtbl.replace t.tbl name { size = bytes_len; world }

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r
  | None -> raise Not_found

let region_world t name = (find t name).world
let region_size t name = (find t name).size

let check_access t ~accessor ~region =
  let owner = (find t region).world in
  let allowed =
    match (accessor, owner) with
    | World.Secure, (World.Secure | World.Normal) -> true
    | World.Normal, World.Normal -> true
    | World.Normal, World.Secure -> false
  in
  if not allowed then raise (Access_violation { region; accessor; owner })

let secure_bytes t =
  Hashtbl.fold
    (fun _ r acc -> match r.world with World.Secure -> acc + r.size | World.Normal -> acc)
    t.tbl 0

let regions t = Hashtbl.fold (fun name r acc -> (name, r.size, r.world) :: acc) t.tbl []
