(** The modeled edge platform: cores, TZASC, TZPC, cost model, and the
    world-switch accounting that the engine converts into virtual time.

    One [Platform.t] underlies one engine instance.  All mutation funnels
    through {!Smc}, which is the only sanctioned way to cross worlds. *)

type t = {
  cores : int;
  tzasc : Tzasc.t;
  tzpc : Tzpc.t;
  cost : Cost_model.t;
  mutable world : World.t;  (** world of the core executing the model *)
  mutable switch_pairs : int;  (** completed TEE entry/exit pairs *)
  mutable modeled_switch_ns : float;  (** accumulated virtual switch cost *)
  mutable modeled_copy_ns : float;  (** accumulated virtual boundary-copy cost *)
}

val create : ?cores:int -> ?cost:Cost_model.t -> ?secure_mb:int -> ?dram_mb:int -> unit -> t
(** [create ()] models the paper's HiKey: 8 cores, 2 GB DRAM split into a
    ["secure-dram"] region ([secure_mb], default 512 MB) and a
    ["normal-dram"] region, plus a secure ["net0"] peripheral (trusted IO)
    and a normal ["usb-eth"] peripheral. *)

val enter_secure : t -> unit
(** Model a TEE entry; no cost is charged until the matching {!exit_secure}
    completes the pair.  Raises [Invalid_argument] if already secure. *)

val exit_secure : t -> unit
(** Complete the entry/exit pair: increments [switch_pairs] and charges
    [cost.world_switch_ns] to [modeled_switch_ns]. *)

val charge_copy : t -> bytes_len:int -> unit
(** Charge a boundary copy of [bytes_len] bytes to [modeled_copy_ns]. *)

val reset_accounting : t -> unit
val secure_bytes : t -> int
