type t = {
  cores : int;
  tzasc : Tzasc.t;
  tzpc : Tzpc.t;
  cost : Cost_model.t;
  mutable world : World.t;
  mutable switch_pairs : int;
  mutable modeled_switch_ns : float;
  mutable modeled_copy_ns : float;
}

let create ?(cores = 8) ?(cost = Cost_model.default) ?(secure_mb = 512) ?(dram_mb = 2048) () =
  let tzasc = Tzasc.create () in
  let mb = 1024 * 1024 in
  Tzasc.add_region tzasc ~name:"secure-dram" ~bytes_len:(secure_mb * mb) ~world:World.Secure;
  Tzasc.add_region tzasc ~name:"normal-dram"
    ~bytes_len:((dram_mb - secure_mb) * mb)
    ~world:World.Normal;
  let tzpc = Tzpc.create () in
  Tzpc.assign tzpc ~name:"net0" ~world:World.Secure;
  Tzpc.assign tzpc ~name:"usb-eth" ~world:World.Normal;
  {
    cores;
    tzasc;
    tzpc;
    cost;
    world = World.Normal;
    switch_pairs = 0;
    modeled_switch_ns = 0.0;
    modeled_copy_ns = 0.0;
  }

let enter_secure t =
  match t.world with
  | World.Secure -> invalid_arg "Platform.enter_secure: already in secure world"
  | World.Normal -> t.world <- World.Secure

let exit_secure t =
  match t.world with
  | World.Normal -> invalid_arg "Platform.exit_secure: not in secure world"
  | World.Secure ->
      t.world <- World.Normal;
      t.switch_pairs <- t.switch_pairs + 1;
      t.modeled_switch_ns <- t.modeled_switch_ns +. t.cost.Cost_model.world_switch_ns

let charge_copy t ~bytes_len =
  t.modeled_copy_ns <-
    t.modeled_copy_ns +. (float_of_int bytes_len *. t.cost.Cost_model.copy_ns_per_byte)

let reset_accounting t =
  t.switch_pairs <- 0;
  t.modeled_switch_ns <- 0.0;
  t.modeled_copy_ns <- 0.0

let secure_bytes t = Tzasc.secure_bytes t.tzasc
