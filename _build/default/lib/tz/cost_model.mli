(** Platform cost model.

    The repository runs on commodity hardware with no TEE, so the costs a
    real TrustZone deployment would pay are charged in *virtual time* by
    the discrete-event scheduler.  This module centralizes the constants.

    Calibration notes (matching the paper's HiKey + OP-TEE 2.3 platform):

    - [world_switch_ns]: the paper reports that a world switch costs a few
      thousand cycles in CPU hardware but that "most of the world switch
      overhead comes from OP-TEE", i.e. the software path (context
      save/restore, secure-OS dispatch, normal-world driver) dominates.
      The default of 100 us per complete entry/exit pair reproduces the
      Figure 9 breakdown: world switching dominates GroupBy at 8K-event
      batches and falls under 10% at 128K.
    - [crypto_scale]: the HiKey's Kirin 620 lacks usable AES hardware
      offload for this workload, so the paper pays software AES (tens of
      MB/s per A53 core); our from-scratch OCaml AES is roughly an order
      of magnitude slower still.  Measured crypto time is multiplied by
      this factor when charged as virtual time, which keeps the
      decryption overhead in the paper's 4-35% proportion to compute.
      The decryption itself is still performed for real.
    - [copy_ns_per_byte]: the IOviaOS path crosses the commodity network
      stack, user space and the TEE boundary - several copies end to
      end, modeled at 0.5 GB/s effective. *)

type t = {
  world_switch_ns : float;
      (** Cost of one complete TEE entry + exit pair (SMC in, return). *)
  copy_ns_per_byte : float;
      (** Cost of copying a byte across the TEE boundary (the IOviaOS
          ingestion path pays this on every ingested byte; trusted IO
          avoids it). *)
  host_scale : float;
      (** Multiplier applied to *measured* compute time when converting it
          into virtual time, to model a slower or faster target CPU.  1.0
          reproduces the host. *)
  crypto_scale : float;
      (** Multiplier applied to measured crypto time (see above). *)
}

val default : t
(** 100 us per switch pair, 2 ns/byte boundary copy (~0.5 GB/s end to
    end), host_scale 1.0, crypto_scale 0.025. *)

val free : t
(** All costs zero, scales 1.0 — the Insecure engine version uses this. *)

val with_switch_ns : float -> t -> t
