(** The two TrustZone worlds.

    TrustZone logically partitions the platform into a normal (insecure)
    world running the commodity OS and the control plane, and a secure
    world running the TEE with the StreamBox-TZ data plane.  Every checked
    resource (DRAM regions, peripherals, SMC entries) is tagged with the
    world allowed to touch it. *)

type t = Normal | Secure

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
