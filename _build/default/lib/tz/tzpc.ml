type t = { tbl : (string, World.t) Hashtbl.t }

exception Peripheral_violation of { peripheral : string; accessor : World.t; owner : World.t }

let create () = { tbl = Hashtbl.create 8 }
let assign t ~name ~world = Hashtbl.replace t.tbl name world

let owner t name =
  match Hashtbl.find_opt t.tbl name with
  | Some w -> w
  | None -> raise Not_found

let check_access t ~accessor ~peripheral =
  let w = owner t peripheral in
  if not (World.equal w accessor) then
    raise (Peripheral_violation { peripheral; accessor; owner = w })

let is_trusted_io t name = World.equal (owner t name) World.Secure
