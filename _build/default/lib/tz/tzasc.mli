(** TrustZone Address Space Controller (TZASC) model.

    The TZASC lets privileged software partition DRAM into regions owned by
    the normal or the secure world.  Here it is the authority on how much
    secure DRAM exists (the TEE memory budget enforced by
    {!Sbt_umem.Page_pool}) and on which world may touch which region —
    every modeled access is checked and violations raise. *)

type t

exception Access_violation of { region : string; accessor : World.t; owner : World.t }

val create : unit -> t

val add_region : t -> name:string -> bytes_len:int -> world:World.t -> unit
(** Declare a DRAM region.  Raises [Invalid_argument] on duplicate names. *)

val region_world : t -> string -> World.t
(** Owner of a region.  Raises [Not_found] for unknown regions. *)

val region_size : t -> string -> int

val check_access : t -> accessor:World.t -> region:string -> unit
(** Raises {!Access_violation} when [accessor] does not own [region].
    The secure world may additionally read normal-world regions (TrustZone
    secure masters are not restricted by TZASC the way normal masters
    are); the normal world can never touch secure regions. *)

val secure_bytes : t -> int
(** Total bytes across all secure regions — the TEE DRAM budget. *)

val regions : t -> (string * int * World.t) list
