type entry = Init | Finalize | Debug | Invoke

let entry_count = 4

let entry_name = function
  | Init -> "init"
  | Finalize -> "finalize"
  | Debug -> "debug"
  | Invoke -> "invoke"

let entry_index = function Init -> 0 | Finalize -> 1 | Debug -> 2 | Invoke -> 3

type ('req, 'resp) t = { platform : Platform.t; handlers : ('req -> 'resp) option array }

let create platform = { platform; handlers = Array.make entry_count None }

let register t entry f =
  let i = entry_index entry in
  match t.handlers.(i) with
  | Some _ -> invalid_arg ("Smc.register: handler already registered for " ^ entry_name entry)
  | None -> t.handlers.(i) <- Some f

let call t entry req =
  match t.handlers.(entry_index entry) with
  | None -> raise Not_found
  | Some f ->
      Platform.enter_secure t.platform;
      let resp =
        try f req
        with exn ->
          Platform.exit_secure t.platform;
          raise exn
      in
      Platform.exit_secure t.platform;
      resp

let switch_pairs t = t.platform.Platform.switch_pairs
