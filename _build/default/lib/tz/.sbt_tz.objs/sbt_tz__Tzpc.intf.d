lib/tz/tzpc.mli: World
