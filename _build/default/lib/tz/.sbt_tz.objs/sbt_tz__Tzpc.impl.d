lib/tz/tzpc.ml: Hashtbl World
