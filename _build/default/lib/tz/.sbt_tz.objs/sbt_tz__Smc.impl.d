lib/tz/smc.ml: Array Platform
