lib/tz/tzasc.mli: World
