lib/tz/cost_model.ml:
