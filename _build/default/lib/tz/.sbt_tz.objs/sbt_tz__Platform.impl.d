lib/tz/platform.ml: Cost_model Tzasc Tzpc World
