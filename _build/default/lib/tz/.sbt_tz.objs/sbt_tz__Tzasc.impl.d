lib/tz/tzasc.ml: Hashtbl World
