lib/tz/smc.mli: Platform
