lib/tz/platform.mli: Cost_model Tzasc Tzpc World
