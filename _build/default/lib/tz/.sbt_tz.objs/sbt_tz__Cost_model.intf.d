lib/tz/cost_model.mli:
