lib/tz/world.mli: Format
