lib/tz/world.ml: Format
