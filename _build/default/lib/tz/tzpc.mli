(** TrustZone Protection Controller (TZPC) model.

    The TZPC assigns IO peripherals to worlds.  A peripheral owned by the
    secure world is *trusted IO*: data arriving on it flows straight into
    the TEE without ever being visible to the normal-world OS — the
    property StreamBox-TZ's ingestion path relies on (paper §2.1, §9.3). *)

type t

exception Peripheral_violation of { peripheral : string; accessor : World.t; owner : World.t }

val create : unit -> t
val assign : t -> name:string -> world:World.t -> unit
val owner : t -> string -> World.t
(** Raises [Not_found] for unknown peripherals. *)

val check_access : t -> accessor:World.t -> peripheral:string -> unit
(** A peripheral is completely enclosed in its owning world; any cross-world
    access raises {!Peripheral_violation}. *)

val is_trusted_io : t -> string -> bool
