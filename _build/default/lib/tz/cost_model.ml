type t = {
  world_switch_ns : float;
  copy_ns_per_byte : float;
  host_scale : float;
  crypto_scale : float;
}

let default =
  { world_switch_ns = 100_000.0; copy_ns_per_byte = 2.0; host_scale = 1.0; crypto_scale = 0.025 }

let free = { world_switch_ns = 0.0; copy_ns_per_byte = 0.0; host_scale = 1.0; crypto_scale = 1.0 }
let with_switch_ns ns t = { t with world_switch_ns = ns }
