type t = Normal | Secure

let equal a b =
  match (a, b) with
  | Normal, Normal | Secure, Secure -> true
  | Normal, Secure | Secure, Normal -> false

let to_string = function Normal -> "normal" | Secure -> "secure"
let pp fmt t = Format.pp_print_string fmt (to_string t)
