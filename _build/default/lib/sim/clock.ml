let now_ns () = Int64.to_float (Monotonic_clock.now ())
let elapsed_ns ~since = now_ns () -. since
