type result = {
  rate_eps : float;
  delay_at_rate_ns : float;
  utilization : float;
  evals : int;
}

(* The long-run sustainable rate can never exceed the analytic compute
   capacity (events / (total cost / cores)); on a finite workload the
   delay criterion alone can transiently admit higher rates (the backlog
   simply hasn't grown long enough), so the search treats capacity as the
   ceiling and the delay bound as a constraint that can only push the
   result below it.  This keeps results monotone in cores and consistent
   across workload lengths. *)
let max_rate ?(tolerance = 0.02) ~trace ~cores ~target_delay_ns () =
  let evals = ref 0 in
  let eval rate =
    incr evals;
    Trace.replay trace ~cores ~rate_eps:rate
  in
  let feasible r = r.Trace.max_delay_ns <= target_delay_ns in
  let total_events = Trace.total_events trace in
  let total_cost = Trace.total_cost_ns trace in
  let capacity =
    if total_cost <= 0.0 then 1e9
    else float_of_int total_events /. (total_cost /. float_of_int cores /. 1e9)
  in
  let floor_rate = Float.min 1_000.0 (capacity /. 2.0) in
  let floor_result = eval floor_rate in
  if not (feasible floor_result) then
    {
      rate_eps = 0.0;
      delay_at_rate_ns = floor_result.Trace.max_delay_ns;
      utilization = 0.0;
      evals = !evals;
    }
  else begin
    let cap_result = eval capacity in
    if feasible cap_result then
      {
        rate_eps = capacity;
        delay_at_rate_ns = cap_result.Trace.max_delay_ns;
        utilization = cap_result.Trace.utilization;
        evals = !evals;
      }
    else begin
      (* Delay-limited below capacity: bisect. *)
      let lo = ref floor_rate and lo_result = ref floor_result in
      let hi = ref capacity in
      while (!hi -. !lo) /. !hi > tolerance do
        let mid = sqrt (!lo *. !hi) in
        let r = eval mid in
        if feasible r then begin
          lo := mid;
          lo_result := r
        end
        else hi := mid
      done;
      {
        rate_eps = !lo;
        delay_at_rate_ns = !lo_result.Trace.max_delay_ns;
        utilization = !lo_result.Trace.utilization;
        evals = !evals;
      }
    end
  end
