lib/sim/trace.ml: Array Des Float Hashtbl List Option
