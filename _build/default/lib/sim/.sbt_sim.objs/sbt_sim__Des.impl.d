lib/sim/des.ml: Array Clock Float List Printf
