lib/sim/trace.mli:
