lib/sim/rate_search.mli: Trace
