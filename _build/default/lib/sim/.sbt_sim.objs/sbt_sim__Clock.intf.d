lib/sim/clock.mli:
