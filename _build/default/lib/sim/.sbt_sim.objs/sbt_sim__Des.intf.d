lib/sim/des.mli:
