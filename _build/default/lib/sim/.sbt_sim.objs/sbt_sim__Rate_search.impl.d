lib/sim/rate_search.ml: Float Trace
