lib/sim/clock.ml: Int64 Monotonic_clock
