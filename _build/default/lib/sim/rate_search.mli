(** Maximum-sustainable-rate search (the paper's throughput methodology).

    §9.2: "We report the engine performance as its maximum input
    throughput when the pipeline output delay remains under a target."
    Given a recorded trace, this finds — by bracketing and bisection over
    trace replays — the highest ingestion rate whose worst per-window
    output delay stays within the target. *)

type result = {
  rate_eps : float;  (** max sustainable events/second *)
  delay_at_rate_ns : float;  (** worst window delay at that rate *)
  utilization : float;
  evals : int;  (** replays performed by the search *)
}

val max_rate :
  ?tolerance:float ->
  trace:Trace.t ->
  cores:int ->
  target_delay_ns:float ->
  unit ->
  result
(** [tolerance] is the relative bisection width at which the search stops
    (default 0.02).  Returns rate 0 if even an idle trickle misses the
    target (the per-window compute alone exceeds the delay bound). *)
