(** Monotonic host clock (ns). *)

val now_ns : unit -> float
val elapsed_ns : since:float -> float
