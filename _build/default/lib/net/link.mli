(** Link cost model: bandwidth-limited, fixed-latency transfer times.

    Used to model the source-edge link (GbE-class on IoT gateways) and
    the constrained edge-cloud uplink whose bandwidth the audit-record
    compression of Figure 12 exists to save. *)

type t = { bandwidth_bytes_per_s : float; latency_ns : float }

val gbe : t
(** 1 Gbit/s, 100 us. *)

val uplink : t
(** A slow field uplink: 1 Mbit/s, 20 ms (satellite/cellular class,
    paper §2.3). *)

val transfer_ns : t -> bytes_len:int -> float
val seconds_to_send : t -> bytes_len:int -> float
