lib/net/link.mli:
