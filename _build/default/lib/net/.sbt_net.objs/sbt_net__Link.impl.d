lib/net/link.ml:
