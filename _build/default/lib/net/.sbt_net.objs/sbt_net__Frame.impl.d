lib/net/frame.ml: Array Bytes Char Int32 Int64 Sbt_crypto
