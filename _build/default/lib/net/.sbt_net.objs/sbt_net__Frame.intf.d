lib/net/frame.mli:
