type t = { bandwidth_bytes_per_s : float; latency_ns : float }

let gbe = { bandwidth_bytes_per_s = 125_000_000.0; latency_ns = 100_000.0 }
let uplink = { bandwidth_bytes_per_s = 125_000.0; latency_ns = 20_000_000.0 }

let transfer_ns t ~bytes_len =
  t.latency_ns +. (float_of_int bytes_len /. t.bandwidth_bytes_per_s *. 1e9)

let seconds_to_send t ~bytes_len = transfer_ns t ~bytes_len /. 1e9
