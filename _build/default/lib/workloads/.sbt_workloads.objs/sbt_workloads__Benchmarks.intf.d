lib/workloads/benchmarks.mli: Datagen Sbt_core Sbt_net
