lib/workloads/zipf.mli: Sbt_crypto
