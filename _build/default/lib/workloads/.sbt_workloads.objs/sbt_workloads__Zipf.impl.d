lib/workloads/zipf.ml: Array Float Sbt_crypto
