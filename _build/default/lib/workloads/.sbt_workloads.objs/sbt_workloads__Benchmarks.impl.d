lib/workloads/benchmarks.ml: Array Datagen Int32 Sbt_core Sbt_crypto String Zipf
