lib/workloads/datagen.mli: Sbt_core Sbt_crypto Sbt_net
