lib/workloads/datagen.ml: Array Bytes Int32 Int64 List Option Sbt_core Sbt_crypto Sbt_net Sbt_prim
