type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Sbt_crypto.Rng.float_unit rng in
  (* First index whose cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
