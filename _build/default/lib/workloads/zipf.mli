(** Zipf-distributed sampler over ranks [0, n).

    Real telemetry keys are skewed (the taxi-id dataset most of all);
    note that SBT's sort-merge GroupBy is insensitive to key skew
    (paper §9.2), which the benchmarks can demonstrate by flipping
    between uniform and Zipf keys. *)

type t

val create : n:int -> s:float -> t
(** [s] is the exponent (1.0 ~ classic Zipf; 0.0 ~ uniform). *)

val sample : t -> Sbt_crypto.Rng.t -> int
(** Draw a rank in [0, n) by inverse-CDF binary search. *)
