module U = Sbt_umem.Uarray

let get (buf : U.buf) w r f = Bigarray.Array1.unsafe_get buf ((r * w) + f)

let count_in_band ~src ~field ~lo ~hi =
  let w = U.width src and n = U.length src in
  let buf = U.raw src in
  let lo = Int32.to_int lo and hi = Int32.to_int hi in
  let c = ref 0 in
  for r = 0 to n - 1 do
    let v = Int32.to_int (get buf w r field) in
    if v >= lo && v <= hi then incr c
  done;
  !c

let copy_matching src dst pred =
  let w = U.width src and n = U.length src in
  if U.width dst <> w then invalid_arg "Filter: width mismatch";
  let buf = U.raw src in
  for r = 0 to n - 1 do
    if pred buf w r then begin
      let at = U.reserve dst 1 in
      let dbuf = U.raw dst in
      for f = 0 to w - 1 do
        Bigarray.Array1.unsafe_set dbuf ((at * w) + f) (get buf w r f)
      done
    end
  done

let filter_band ~src ~dst ~field ~lo ~hi =
  let lo = Int32.to_int lo and hi = Int32.to_int hi in
  copy_matching src dst (fun buf w r ->
      let v = Int32.to_int (get buf w r field) in
      v >= lo && v <= hi)

let select_eq ~src ~dst ~field ~value =
  copy_matching src dst (fun buf w r -> get buf w r field = value)

let sample_stride ~src ~dst ~stride =
  if stride <= 0 then invalid_arg "Filter.sample_stride: stride must be positive";
  let counter = ref 0 in
  copy_matching src dst (fun _ _ _ ->
      let keep = !counter mod stride = 0 in
      incr counter;
      keep)
