module U = Sbt_umem.Uarray

let window_of ~ts ~window_size =
  if window_size <= 0 then invalid_arg "Segment.window_of: window_size must be positive";
  Int32.to_int ts / window_size

let windows_of ~ts ~size ~slide =
  if size <= 0 || slide <= 0 then invalid_arg "Segment.windows_of: size and slide must be positive";
  let hi = ts / slide in
  let lo =
    (* smallest w with w*slide + size > ts *)
    let d = ts - size in
    if d < 0 then 0 else (d / slide) + 1
  in
  (lo, hi)

let count_per_window ~src ~ts_field ~window_size ?slide () =
  let slide = Option.value ~default:window_size slide in
  let w = U.width src and n = U.length src in
  let buf = U.raw src in
  let counts = Hashtbl.create 8 in
  for r = 0 to n - 1 do
    let ts = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + ts_field)) in
    let lo, hi = windows_of ~ts ~size:window_size ~slide in
    for win = lo to hi do
      Hashtbl.replace counts win (1 + Option.value ~default:0 (Hashtbl.find_opt counts win))
    done
  done;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let segment ~src ~ts_field ~window_size ?slide ~dst_for_window () =
  let slide = Option.value ~default:window_size slide in
  let w = U.width src and n = U.length src in
  let buf = U.raw src in
  let dsts = Hashtbl.create 8 in
  (* Streams are near-time-ordered, so consecutive records overwhelmingly
     hit the same window: cache the last destination and write records
     through reserve + raw stores (no per-record allocation). *)
  let last_win = ref min_int in
  let last_dst = ref None in
  let dst_of win =
    if win = !last_win then Option.get !last_dst
    else begin
      let d =
        match Hashtbl.find_opt dsts win with
        | Some d -> d
        | None ->
            let d = dst_for_window win in
            if U.width d <> w then invalid_arg "Segment.segment: width mismatch";
            Hashtbl.replace dsts win d;
            d
      in
      last_win := win;
      last_dst := Some d;
      d
    end
  in
  for r = 0 to n - 1 do
    let ts = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + ts_field)) in
    let lo, hi = windows_of ~ts ~size:window_size ~slide in
    for win = lo to hi do
      let dst = dst_of win in
      let at = U.reserve dst 1 in
      let dbuf = U.raw dst in
      for f = 0 to w - 1 do
        Bigarray.Array1.unsafe_set dbuf ((at * w) + f) (Bigarray.Array1.unsafe_get buf ((r * w) + f))
      done
    done
  done
