(** Concat, Project, whole-array TopK and ShiftKey trusted primitives. *)

val concat : inputs:Sbt_umem.Uarray.t list -> dst:Sbt_umem.Uarray.t -> unit
(** Append all inputs' records to [dst] in list order (Union's backbone). *)

val project :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> fields:int array -> unit
(** Narrow records to the given source fields, in the given order; [dst]
    width must equal [Array.length fields]. *)

val top_k_records :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> field:int -> k:int -> unit
(** Copy the (up to) [k] records with the largest [field] values into
    [dst], descending by that field. *)

val shift_key :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> field:int -> shift:int -> unit
(** Copy records with [field] arithmetically right-shifted by [shift] —
    used to coarsen composite keys, e.g. plug key to house id. *)
