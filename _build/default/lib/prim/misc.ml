module U = Sbt_umem.Uarray

let concat ~inputs ~dst =
  List.iter (fun src -> U.append_blit dst ~src ~src_pos:0 ~len:(U.length src)) inputs

let top_k_records ~src ~dst ~field ~k =
  if k <= 0 then invalid_arg "Misc.top_k_records: k must be positive";
  let w = U.width src and n = U.length src in
  if U.width dst <> w then invalid_arg "Misc.top_k_records: width mismatch";
  if field < 0 || field >= w then invalid_arg "Misc.top_k_records: bad field";
  let buf = U.raw src in
  let order = Array.init n (fun r -> r) in
  let value r = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + field)) in
  Array.sort (fun a b -> compare (value b) (value a)) order;
  let fields_buf = Array.make w 0l in
  for i = 0 to min k n - 1 do
    let r = order.(i) in
    for f = 0 to w - 1 do
      fields_buf.(f) <- Bigarray.Array1.unsafe_get buf ((r * w) + f)
    done;
    U.append dst fields_buf
  done

let shift_key ~src ~dst ~field ~shift =
  let w = U.width src and n = U.length src in
  if U.width dst <> w then invalid_arg "Misc.shift_key: width mismatch";
  if field < 0 || field >= w then invalid_arg "Misc.shift_key: bad field";
  if shift < 0 || shift > 31 then invalid_arg "Misc.shift_key: bad shift";
  let buf = U.raw src in
  let fields_buf = Array.make w 0l in
  for r = 0 to n - 1 do
    for f = 0 to w - 1 do
      fields_buf.(f) <- Bigarray.Array1.unsafe_get buf ((r * w) + f)
    done;
    fields_buf.(field) <- Int32.shift_right fields_buf.(field) shift;
    U.append dst fields_buf
  done

let project ~src ~dst ~fields =
  let w = U.width src and n = U.length src in
  let dw = Array.length fields in
  if U.width dst <> dw then invalid_arg "Misc.project: dst width mismatch";
  Array.iter (fun f -> if f < 0 || f >= w then invalid_arg "Misc.project: bad field") fields;
  let buf = U.raw src in
  let out = Array.make dw 0l in
  for r = 0 to n - 1 do
    for i = 0 to dw - 1 do
      out.(i) <- Bigarray.Array1.unsafe_get buf ((r * w) + fields.(i))
    done;
    U.append dst out
  done
