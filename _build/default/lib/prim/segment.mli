(** Segment trusted primitive: split a batch by event-time window.

    The Windowing operator is compiled to Segment: each input record is
    routed to the output uArray of the fixed window its timestamp falls
    in.  Outputs are pre-sized by a counting pass, keeping uArray
    capacities exact. *)

val window_of : ts:int32 -> window_size:int -> int
(** Fixed-window index [ts / window_size] (timestamps are non-negative
    ticks). *)

val windows_of : ts:int -> size:int -> slide:int -> int * int
(** Sliding windows: the inclusive [lo, hi] range of window indices
    containing [ts], where window [w] covers
    [\[w*slide, w*slide + size)].  [slide = size] degenerates to the
    fixed-window case with [lo = hi]. *)

val count_per_window :
  src:Sbt_umem.Uarray.t -> ts_field:int -> window_size:int -> ?slide:int -> unit -> (int * int) list
(** [(window_index, record_count)] for every non-empty window in [src],
    ascending by window index.  With [slide < window_size] a record
    counts toward every window containing it. *)

val segment :
  src:Sbt_umem.Uarray.t ->
  ts_field:int ->
  window_size:int ->
  ?slide:int ->
  dst_for_window:(int -> Sbt_umem.Uarray.t) ->
  unit ->
  unit
(** Route each record of [src] to [dst_for_window w] for every window [w]
    containing it.  The callback is invoked once per distinct window
    (memoized here); destinations must be open with sufficient
    capacity. *)
