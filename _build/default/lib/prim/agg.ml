module U = Sbt_umem.Uarray

let fold_field ua ~field ~init ~f =
  let w = U.width ua and n = U.length ua in
  if field < 0 || field >= w then invalid_arg "Agg: bad field";
  let buf = U.raw ua in
  let acc = ref init in
  for r = 0 to n - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get buf ((r * w) + field))
  done;
  !acc

let sum ua ~field = fold_field ua ~field ~init:0L ~f:(fun acc v -> Int64.add acc (Int64.of_int32 v))
let count ua = U.length ua

let sum_count ua ~field = (sum ua ~field, U.length ua)

let average ua ~field =
  let s, n = sum_count ua ~field in
  if n = 0 then 0.0 else Int64.to_float s /. float_of_int n

let min_max ua ~field =
  if U.length ua = 0 then None
  else
    Some
      (fold_field ua ~field
         ~init:(Int32.max_int, Int32.min_int)
         ~f:(fun (lo, hi) v -> ((if v < lo then v else lo), if v > hi then v else hi)))

let median ua ~field =
  let n = U.length ua in
  if n = 0 then None
  else begin
    let w = U.width ua in
    let buf = U.raw ua in
    let vals = Array.init n (fun r -> Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + field))) in
    Array.sort compare vals;
    Some (Int32.of_int vals.((n - 1) / 2))
  end
