(** Whole-array aggregation trusted primitives: Sum, Count, SumCnt,
    Average, MinMax, Median.

    These operate over one field of a whole uArray (typically the records
    of one window after Segment) and return scalars; the keyed variants
    live in {!Keyed}.  All arithmetic is 64-bit to avoid overflow on
    32-bit inputs. *)

val sum : Sbt_umem.Uarray.t -> field:int -> int64
val count : Sbt_umem.Uarray.t -> int
val sum_count : Sbt_umem.Uarray.t -> field:int -> int64 * int
(** The paper's SumCnt: one pass producing both (feeding Average). *)

val average : Sbt_umem.Uarray.t -> field:int -> float
(** 0.0 on an empty array. *)

val min_max : Sbt_umem.Uarray.t -> field:int -> (int32 * int32) option
(** [None] on an empty array. *)

val median : Sbt_umem.Uarray.t -> field:int -> int32 option
(** Median by copy-and-sort of the field values (array-based, as in the
    paper's Median primitive); lower median for even lengths. *)
