(** Per-key trusted primitives over key-sorted input.

    Every GroupBy-family operator in StreamBox-TZ compiles to Sort (by
    key) followed by one of these sequential scans over the sorted runs —
    the array-based replacement for the hash tables commodity engines use
    (paper §5).  Inputs must be sorted ascending by [key_field]; outputs
    are (key, value) records of width {!Layout.kv_width}. *)

val sum_per_key :
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit
(** One output record per distinct key with the 32-bit-truncated sum of
    its values. *)

val count_per_key :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> key_field:int -> unit

val avg_per_key :
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit
(** Integer average (floor). *)

val median_per_key :
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit
(** Lower median of each key's values; runs need only be key-sorted
    (values are ordered in a per-run temporary). *)

val topk_per_key :
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  k:int ->
  unit
(** Emits up to [k] (key, value) records per key — that key's largest
    values, descending. *)

val distinct_keys :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> key_field:int -> unit
(** One (key, 1) record per distinct key (the Unique primitive). *)

val group_count : src:Sbt_umem.Uarray.t -> key_field:int -> int
(** Number of distinct keys (sizing pass for output allocation). *)
