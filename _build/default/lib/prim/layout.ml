let event_width = 3
let key_field = 0
let value_field = 1
let ts_field = 2

let power_width = 4
let house_field = 0
let plug_field = 1
let power_field = 2
let power_ts_field = 3

let kv_width = 2
