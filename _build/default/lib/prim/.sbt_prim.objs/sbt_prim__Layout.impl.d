lib/prim/layout.ml:
