lib/prim/misc.ml: Array Bigarray Int32 List Sbt_umem
