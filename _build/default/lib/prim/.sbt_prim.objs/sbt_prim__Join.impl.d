lib/prim/join.ml: Bigarray Int32 Sbt_umem
