lib/prim/primitive.mli:
