lib/prim/agg.mli: Sbt_umem
