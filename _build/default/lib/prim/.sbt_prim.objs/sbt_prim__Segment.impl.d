lib/prim/segment.ml: Bigarray Hashtbl Int32 List Option Sbt_umem
