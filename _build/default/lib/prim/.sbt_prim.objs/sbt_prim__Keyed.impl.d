lib/prim/keyed.ml: Array Bigarray Int32 Int64 Sbt_umem
