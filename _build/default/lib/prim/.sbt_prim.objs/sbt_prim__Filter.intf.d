lib/prim/filter.mli: Sbt_umem
