lib/prim/keyed.mli: Sbt_umem
