lib/prim/merge.mli: Sbt_umem
