lib/prim/primitive.ml: List
