lib/prim/filter.ml: Bigarray Int32 Sbt_umem
