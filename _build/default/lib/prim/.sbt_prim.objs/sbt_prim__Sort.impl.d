lib/prim/sort.ml: Array Bigarray Int32 Sbt_umem Stdlib
