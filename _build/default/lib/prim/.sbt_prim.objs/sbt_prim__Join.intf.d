lib/prim/join.mli: Sbt_umem
