lib/prim/layout.mli:
