lib/prim/merge.ml: Bigarray Int32 List Sbt_umem
