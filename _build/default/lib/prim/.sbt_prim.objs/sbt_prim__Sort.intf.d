lib/prim/sort.mli: Sbt_umem
