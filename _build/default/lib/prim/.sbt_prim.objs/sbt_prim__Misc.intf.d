lib/prim/misc.mli: Sbt_umem
