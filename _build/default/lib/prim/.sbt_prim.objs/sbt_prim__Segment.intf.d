lib/prim/segment.mli: Sbt_umem
