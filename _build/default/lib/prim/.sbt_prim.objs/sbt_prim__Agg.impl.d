lib/prim/agg.ml: Array Bigarray Int32 Int64 Sbt_umem
