(** Temporal-join trusted primitive (sort-merge equi-join).

    Joins two key-sorted inputs on equal keys — the windowed TempJoin
    operator feeds it the two sides of one window.  Output records are
    (key, left value, right value).  A counting pass sizes the output
    exactly, so the caller can allocate the destination uArray before the
    emit pass. *)

val count_matches :
  left:Sbt_umem.Uarray.t -> right:Sbt_umem.Uarray.t -> key_field:int -> int
(** Number of output records (sum over keys of |left run| * |right run|). *)

val join :
  left:Sbt_umem.Uarray.t ->
  right:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit
(** [dst] must be open, width 3, with capacity for {!count_matches}
    more records. *)
