(** Filter trusted primitives: FilterBand, Select and Sample.

    FilterBand keeps records whose field value lies inside a closed band
    — the paper's Filter benchmark uses it at 1% selectivity.  A counting
    pass sizes the output exactly. *)

val count_in_band :
  src:Sbt_umem.Uarray.t -> field:int -> lo:int32 -> hi:int32 -> int

val filter_band :
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  field:int ->
  lo:int32 ->
  hi:int32 ->
  unit
(** Copy records with [lo <= v <= hi] on [field] into the open [dst]
    (same width). *)

val select_eq :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> field:int -> value:int32 -> unit
(** Keep records whose [field] equals [value] (the Select primitive). *)

val sample_stride :
  src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> stride:int -> unit
(** Keep every [stride]-th record (deterministic down-sampling). *)
