(** Record-layout conventions shared by the trusted primitives.

    All analytics data lives in uArrays of fixed-width records of 32-bit
    fields.  The engine's standard event is 3 fields (12 bytes, the
    paper's default); the power-grid benchmark uses 4 fields (16 bytes).
    Primitives take the relevant field indices as parameters, so these
    constants are conventions, not requirements. *)

val event_width : int
(** 3: {!key_field}, {!value_field}, {!ts_field}. *)

val key_field : int
val value_field : int
val ts_field : int

val power_width : int
(** 4: {!house_field}, {!plug_field}, {!power_field}, {!power_ts_field} —
    the <power, plug, house, time> sample of Figure 2. *)

val house_field : int
val plug_field : int
val power_field : int
val power_ts_field : int

val kv_width : int
(** 2: key, value — the shape of per-key aggregation results. *)
