module U = Sbt_umem.Uarray

(* Merge raw buffers [a] (na records) and [b] (nb) into [dst] at [dst_r0].
   The record copy is open-coded: a helper containing a loop would not be
   inlined, and a call per record dominates this - one of the two hottest
   loops in the engine (paper 5). *)
let merge_buffers (a : U.buf) na (b : U.buf) nb (dst : U.buf) dst_r0 w kf =
  let o = ref (dst_r0 * w) in
  let end_a = na * w and end_b = nb * w in
  let ia = ref 0 and jb = ref 0 in
  (* [ia]/[jb] are field offsets (record index * w), avoiding a multiply
     per access. *)
  while !ia < end_a && !jb < end_b do
    let ka = Int32.to_int (Bigarray.Array1.unsafe_get a (!ia + kf)) in
    let kb = Int32.to_int (Bigarray.Array1.unsafe_get b (!jb + kf)) in
    if ka <= kb then begin
      for f = 0 to w - 1 do
        Bigarray.Array1.unsafe_set dst (!o + f) (Bigarray.Array1.unsafe_get a (!ia + f))
      done;
      ia := !ia + w
    end
    else begin
      for f = 0 to w - 1 do
        Bigarray.Array1.unsafe_set dst (!o + f) (Bigarray.Array1.unsafe_get b (!jb + f))
      done;
      jb := !jb + w
    end;
    o := !o + w
  done;
  while !ia < end_a do
    for f = 0 to w - 1 do
      Bigarray.Array1.unsafe_set dst (!o + f) (Bigarray.Array1.unsafe_get a (!ia + f))
    done;
    ia := !ia + w;
    o := !o + w
  done;
  while !jb < end_b do
    for f = 0 to w - 1 do
      Bigarray.Array1.unsafe_set dst (!o + f) (Bigarray.Array1.unsafe_get b (!jb + f))
    done;
    jb := !jb + w;
    o := !o + w
  done;
  ()

let merge2 ~a ~b ~dst ~key_field =
  let w = U.width a in
  if U.width b <> w || U.width dst <> w then invalid_arg "Merge.merge2: width mismatch";
  let na = U.length a and nb = U.length b in
  let first = U.reserve dst (na + nb) in
  merge_buffers (U.raw a) na (U.raw b) nb (U.raw dst) first w key_field

let kway ~inputs ~dst ~key_field =
  match inputs with
  | [] -> ()
  | [ only ] -> U.append_blit dst ~src:only ~src_pos:0 ~len:(U.length only)
  | _ :: _ :: _ ->
      let w = U.width (List.hd inputs) in
      List.iter
        (fun ua -> if U.width ua <> w then invalid_arg "Merge.kway: width mismatch")
        inputs;
      (* Tournament of binary merges over plain host buffers; only the
         final round writes into [dst]. *)
      let bufs =
        List.map
          (fun ua ->
            let n = U.length ua in
            (Bigarray.Array1.sub (U.raw ua) 0 (n * w), n))
          inputs
      in
      let rec rounds = function
        | [] -> invalid_arg "Merge.kway: empty round"
        | [ (buf, n) ] ->
            let first = U.reserve dst n in
            let draw = U.raw dst in
            Bigarray.Array1.blit buf (Bigarray.Array1.sub draw (first * w) (n * w))
        | pairs ->
            let rec merge_pairs acc = function
              | [] -> List.rev acc
              | [ last ] -> List.rev (last :: acc)
              | (a, na) :: (b, nb) :: rest ->
                  let out =
                    Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout ((na + nb) * w)
                  in
                  merge_buffers a na b nb out 0 w key_field;
                  merge_pairs ((out, na + nb) :: acc) rest
            in
            rounds (merge_pairs [] pairs)
      in
      rounds bufs
