module U = Sbt_umem.Uarray

let get (buf : U.buf) w r f = Bigarray.Array1.unsafe_get buf ((r * w) + f)
let get_int (buf : U.buf) w r f = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + f))

(* Iterate runs of equal keys in a key-sorted array: calls
   [f key run_start run_len] for each run.  Keys compare as native ints
   to keep the scan allocation- and branch-cheap. *)
let iter_runs src ~key_field f =
  let w = U.width src and n = U.length src in
  let buf = U.raw src in
  let r = ref 0 in
  while !r < n do
    let k = get_int buf w !r key_field in
    let start = !r in
    incr r;
    while !r < n && get_int buf w !r key_field = k do incr r done;
    f (Int32.of_int k) start (!r - start)
  done

let check_kv dst = if U.width dst <> 2 then invalid_arg "Keyed: dst width must be 2 (key, value)"

let sum_per_key ~src ~dst ~key_field ~value_field =
  check_kv dst;
  let w = U.width src in
  let buf = U.raw src in
  iter_runs src ~key_field (fun k start len ->
      let acc = ref 0L in
      for r = start to start + len - 1 do
        acc := Int64.add !acc (Int64.of_int32 (get buf w r value_field))
      done;
      U.append dst [| k; Int64.to_int32 !acc |])

let count_per_key ~src ~dst ~key_field =
  check_kv dst;
  iter_runs src ~key_field (fun k _ len -> U.append dst [| k; Int32.of_int len |])

let avg_per_key ~src ~dst ~key_field ~value_field =
  check_kv dst;
  let w = U.width src in
  let buf = U.raw src in
  iter_runs src ~key_field (fun k start len ->
      let acc = ref 0L in
      for r = start to start + len - 1 do
        acc := Int64.add !acc (Int64.of_int32 (get buf w r value_field))
      done;
      let avg = Int64.div !acc (Int64.of_int len) in
      U.append dst [| k; Int64.to_int32 avg |])

let median_per_key ~src ~dst ~key_field ~value_field =
  check_kv dst;
  let w = U.width src in
  let buf = U.raw src in
  iter_runs src ~key_field (fun k start len ->
      (* Runs are only key-sorted (merging loses per-key value order), so
         sort each run's values in a temporary — runs are small. *)
      let vals = Array.init len (fun i -> Int32.to_int (get buf w (start + i) value_field)) in
      Array.sort compare vals;
      U.append dst [| k; Int32.of_int vals.((len - 1) / 2) |])

let topk_per_key ~src ~dst ~key_field ~value_field ~k =
  check_kv dst;
  if k <= 0 then invalid_arg "Keyed.topk_per_key: k must be positive";
  let w = U.width src in
  let buf = U.raw src in
  iter_runs src ~key_field (fun key start len ->
      (* Partial selection: copy the run's values, sort, take the top k.
         Runs are typically small (events per key per window). *)
      let vals = Array.init len (fun i -> Int32.to_int (get buf w (start + i) value_field)) in
      Array.sort (fun a b -> compare b a) vals;
      for i = 0 to min k len - 1 do
        U.append dst [| key; Int32.of_int vals.(i) |]
      done)

let distinct_keys ~src ~dst ~key_field =
  check_kv dst;
  iter_runs src ~key_field (fun k _ _ -> U.append dst [| k; 1l |])

let group_count ~src ~key_field =
  let n = ref 0 in
  iter_runs src ~key_field (fun _ _ _ -> incr n);
  !n
