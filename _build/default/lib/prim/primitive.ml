type t =
  | Sort
  | Merge
  | Kway_merge
  | Segment
  | Sum_cnt
  | Top_k
  | Concat
  | Join
  | Count
  | Sum
  | Unique
  | Filter_band
  | Median
  | Min_max
  | Average
  | Sum_per_key
  | Count_per_key
  | Avg_per_key
  | Median_per_key
  | Top_k_per_key
  | Select
  | Project
  | Shift_key

let all =
  [
    Sort; Merge; Kway_merge; Segment; Sum_cnt; Top_k; Concat; Join; Count; Sum; Unique;
    Filter_band; Median; Min_max; Average; Sum_per_key; Count_per_key; Avg_per_key;
    Median_per_key; Top_k_per_key; Select; Project; Shift_key;
  ]

let count = List.length all

let to_id t =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = t then i else index (i + 1) rest
  in
  index 0 all

let of_id i = List.nth_opt all i

let name = function
  | Sort -> "Sort"
  | Merge -> "Merge"
  | Kway_merge -> "KwayMerge"
  | Segment -> "Segment"
  | Sum_cnt -> "SumCnt"
  | Top_k -> "TopK"
  | Concat -> "Concat"
  | Join -> "Join"
  | Count -> "Count"
  | Sum -> "Sum"
  | Unique -> "Unique"
  | Filter_band -> "FilterBand"
  | Median -> "Median"
  | Min_max -> "MinMax"
  | Average -> "Average"
  | Sum_per_key -> "SumPerKey"
  | Count_per_key -> "CountPerKey"
  | Avg_per_key -> "AvgPerKey"
  | Median_per_key -> "MedianPerKey"
  | Top_k_per_key -> "TopKPerKey"
  | Select -> "Select"
  | Project -> "Project"
  | Shift_key -> "ShiftKey"

let of_name s = List.find_opt (fun t -> name t = s) all

let ingress_id = 100
let egress_id = 101
let windowing_id = 102
let udf_id = 103
