module U = Sbt_umem.Uarray

let get (buf : U.buf) w r f = Bigarray.Array1.unsafe_get buf ((r * w) + f)
let get_int (buf : U.buf) w r f = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + f))

(* Walk both sorted inputs once; [on_match] receives the two runs.  Keys
   compare as native ints in the hot scan. *)
let scan ~left ~right ~key_field on_match =
  let wl = U.width left and wr = U.width right in
  let nl = U.length left and nr = U.length right in
  let lb = U.raw left and rb = U.raw right in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let kl = get_int lb wl !i key_field and kr = get_int rb wr !j key_field in
    if kl < kr then incr i
    else if kl > kr then incr j
    else begin
      let li = !i and rj = !j in
      while !i < nl && get_int lb wl !i key_field = kl do incr i done;
      while !j < nr && get_int rb wr !j key_field = kl do incr j done;
      on_match (Int32.of_int kl) li (!i - li) rj (!j - rj)
    end
  done

let count_matches ~left ~right ~key_field =
  let total = ref 0 in
  scan ~left ~right ~key_field (fun _ _ ll _ rl -> total := !total + (ll * rl));
  !total

let join ~left ~right ~dst ~key_field ~value_field =
  if U.width dst <> 3 then invalid_arg "Join.join: dst width must be 3";
  let wl = U.width left and wr = U.width right in
  let lb = U.raw left and rb = U.raw right in
  scan ~left ~right ~key_field (fun k li ll rj rl ->
      for a = li to li + ll - 1 do
        let vl = get lb wl a value_field in
        for b = rj to rj + rl - 1 do
          U.append_fields3 dst k vl (get rb wr b value_field)
        done
      done)
