(** Merge trusted primitive: combine key-sorted uArrays.

    GroupBy and Join in StreamBox-TZ are sort-merge based, so Merge is —
    with Sort — one of the two primitives the paper identifies as
    dominating execution (§5). *)

val merge2 :
  a:Sbt_umem.Uarray.t ->
  b:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  unit
(** Merge two uArrays sorted by [key_field] into [dst] (open, same width,
    capacity for [length a + length b] more records).  Stable: ties take
    [a]'s records first. *)

val kway :
  inputs:Sbt_umem.Uarray.t list ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  unit
(** K-way merge via a tournament of binary merges (the N-way merge shape
    of the Figure 11 microbenchmark).  Allocates temporary host buffers
    for intermediate rounds. *)
