(** Certified user-defined functions (paper §4.2).

    "SBT supports User Defined Functions (UDFs) that are certified by a
    trusted party, which is a common requirement in TEE-based systems
    [91]."  A UDF here is a per-record map or predicate over one field;
    the trusted party (the cloud consumer, in our deployment model) signs
    the UDF's name, version and semantic fingerprint with the shared key,
    and the data plane refuses to install or run any UDF whose
    certificate does not verify — an uncertified computation never touches
    protected data.

    The semantic fingerprint hashes the function's observable behaviour
    on a fixed probe vector, so a control plane cannot swap the body
    behind a valid certificate without detection. *)

type body =
  | Map_value of (int32 -> int32)  (** rewrite the value field *)
  | Predicate of (int32 -> bool)  (** keep records whose value satisfies it *)
  | Combine2 of (int32 -> int32 -> int32)
      (** combine two value fields of a width-3 (key, a, b) record into a
          (key, f a b) output — the shape of stateful per-key updates such
          as the Figure 2 EWMA load prediction *)

type t = { name : string; version : int; body : body }

type certificate
(** An HMAC over (name, version, fingerprint) under the trusted party's
    key. *)

val fingerprint : body -> bytes
(** Behaviour hash over the fixed probe vector. *)

val certify : key:bytes -> t -> certificate
(** The trusted party's signing step (cloud side). *)

val verify : key:bytes -> t -> certificate -> bool
(** The data plane's admission check. *)

val certificate_bytes : certificate -> bytes
val certificate_of_bytes : bytes -> certificate
(** Wire format for shipping certificates with pipeline installs. *)
