type body =
  | Map_value of (int32 -> int32)
  | Predicate of (int32 -> bool)
  | Combine2 of (int32 -> int32 -> int32)
type t = { name : string; version : int; body : body }
type certificate = { tag : bytes }

(* Deterministic probe vector: edge values plus a pseudo-random spread. *)
let probe_vector =
  lazy
    (let rng = Sbt_crypto.Rng.create ~seed:0x5D5D5D5DL in
     Array.append
       [| 0l; 1l; -1l; Int32.max_int; Int32.min_int |]
       (Array.init 59 (fun _ -> Sbt_crypto.Rng.int32_any rng)))

let fingerprint body =
  let buf = Buffer.create 512 in
  let probes = Lazy.force probe_vector in
  Array.iteri
    (fun i v ->
      match body with
      | Map_value f -> Buffer.add_int32_le buf (f v)
      | Predicate p -> Buffer.add_char buf (if p v then '\001' else '\000')
      | Combine2 f -> Buffer.add_int32_le buf (f v probes.((i + 7) mod Array.length probes)))
    probes;
  Buffer.add_string buf
    (match body with Map_value _ -> "map" | Predicate _ -> "pred" | Combine2 _ -> "comb2");
  Sbt_crypto.Sha256.digest (Buffer.to_bytes buf)

let signed_payload t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf t.name;
  Buffer.add_char buf '\000';
  Buffer.add_int32_le buf (Int32.of_int t.version);
  Buffer.add_bytes buf (fingerprint t.body);
  Buffer.to_bytes buf

let certify ~key t = { tag = Sbt_crypto.Hmac.mac ~key (signed_payload t) }
let verify ~key t cert = Sbt_crypto.Hmac.verify ~key ~tag:cert.tag (signed_payload t)
let certificate_bytes c = Bytes.copy c.tag

let certificate_of_bytes b =
  if Bytes.length b <> 32 then invalid_arg "Udf.certificate_of_bytes: expected 32 bytes";
  { tag = Bytes.copy b }
