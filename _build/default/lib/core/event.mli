(** Event schemas.

    An event is a fixed-width record of 32-bit fields.  The engine's
    default schema is the paper's 12-byte 3-field event (key, value,
    event-time); the power-grid benchmark uses a 16-byte 4-field sample.
    Timestamps are event-time ticks (the workloads use 1000 ticks per
    second of event time). *)

type schema = {
  width : int;
  key_field : int;
  value_field : int;
  ts_field : int;
}

val default : schema
(** 3 fields: key=0, value=1, ts=2. *)

val power : schema
(** 4 fields: plugkey=0 (house*256+plug), power=1, ts=2, house=3.  The
    key field is the plug key so GroupBy groups per plug. *)

val bytes_per_event : schema -> int

val ticks_per_second : int
(** 1000: event-time resolution of all workloads and window sizes. *)
