type t = { rng : Sbt_crypto.Rng.t; table : (int64, Sbt_umem.Uarray.t) Hashtbl.t }

exception Invalid_reference of int64

let create ~rng = { rng; table = Hashtbl.create 256 }

let rec fresh_ref t =
  let r = Sbt_crypto.Rng.next_int64 t.rng in
  if Int64.equal r 0L || Hashtbl.mem t.table r then fresh_ref t else r

let register t ua =
  let r = fresh_ref t in
  Hashtbl.replace t.table r ua;
  r

let resolve t r =
  match Hashtbl.find_opt t.table r with
  | Some ua -> ua
  | None -> raise (Invalid_reference r)

let remove t r =
  if not (Hashtbl.mem t.table r) then raise (Invalid_reference r);
  Hashtbl.remove t.table r

let live_count t = Hashtbl.length t.table
let mem t r = Hashtbl.mem t.table r
