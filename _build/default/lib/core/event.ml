type schema = { width : int; key_field : int; value_field : int; ts_field : int }

let default = { width = 3; key_field = 0; value_field = 1; ts_field = 2 }
let power = { width = 4; key_field = 0; value_field = 1; ts_field = 2 }
let bytes_per_event s = s.width * 4
let ticks_per_second = 1000
