lib/core/opaque.ml: Hashtbl Int64 Sbt_crypto Sbt_umem
