lib/core/udf.mli:
