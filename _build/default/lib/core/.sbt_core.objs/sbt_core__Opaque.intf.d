lib/core/opaque.mli: Sbt_crypto Sbt_umem
