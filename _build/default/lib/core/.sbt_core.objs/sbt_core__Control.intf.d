lib/core/control.mli: Dataplane Pipeline Sbt_attest Sbt_net Sbt_sim
