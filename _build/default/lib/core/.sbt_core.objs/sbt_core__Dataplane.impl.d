lib/core/dataplane.ml: Array Bigarray Bytes Float Hashtbl Int32 Int64 List Opaque Option Printf Sbt_attest Sbt_crypto Sbt_prim Sbt_sim Sbt_tz Sbt_umem Udf
