lib/core/event.ml:
