lib/core/pipeline.mli: Dataplane Event Sbt_attest Sbt_prim Udf
