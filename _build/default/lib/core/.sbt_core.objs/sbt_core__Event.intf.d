lib/core/event.mli:
