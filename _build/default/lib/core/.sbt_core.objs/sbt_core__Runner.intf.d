lib/core/runner.mli: Dataplane Format Pipeline Sbt_attest Sbt_net Sbt_prim Sbt_umem
