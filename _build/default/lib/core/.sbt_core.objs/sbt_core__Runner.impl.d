lib/core/runner.ml: Bytes Control Dataplane Event Format Gc List Pipeline Sbt_attest Sbt_prim Sbt_sim Sbt_umem
