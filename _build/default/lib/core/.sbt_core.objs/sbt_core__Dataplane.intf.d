lib/core/dataplane.mli: Sbt_attest Sbt_prim Sbt_tz Sbt_umem Udf
