lib/core/control.ml: Array Dataplane Event Hashtbl List Option Pipeline Printf Queue Sbt_attest Sbt_net Sbt_prim Sbt_sim Sbt_tz
