lib/core/pipeline.ml: Bytes Dataplane Event Int64 List Option Sbt_attest Sbt_prim Udf
