lib/core/udf.ml: Array Buffer Bytes Int32 Lazy Sbt_crypto
