type t = { key : Aes.key; nonce : int64 }

let create ~key ~nonce = { key = Aes.expand_key key; nonce }

let keystream_block t index block =
  (* Counter block layout: 8-byte big-endian nonce, 8-byte big-endian index. *)
  let set64 b off v =
    for i = 0 to 7 do
      Bytes.set b (off + i)
        (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xFF))
    done
  in
  set64 block 0 t.nonce;
  set64 block 8 index;
  Aes.encrypt_block t.key block 0 block 0

let xcrypt t ~pos buf off len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then invalid_arg "Ctr.xcrypt";
  let block = Bytes.create 16 in
  let i = ref 0 in
  while !i < len do
    let abs = Int64.add pos (Int64.of_int !i) in
    let blk_index = Int64.div abs 16L in
    let blk_off = Int64.to_int (Int64.rem abs 16L) in
    keystream_block t blk_index block;
    let n = min (16 - blk_off) (len - !i) in
    for j = 0 to n - 1 do
      let c = Char.code (Bytes.get buf (off + !i + j)) in
      let k = Char.code (Bytes.get block (blk_off + j)) in
      Bytes.set buf (off + !i + j) (Char.unsafe_chr (c lxor k))
    done;
    i := !i + n
  done

let xcrypt_bytes ~key ~nonce src =
  let t = create ~key ~nonce in
  let dst = Bytes.copy src in
  xcrypt t ~pos:0L dst 0 (Bytes.length dst);
  dst
