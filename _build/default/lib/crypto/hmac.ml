let block = 64

let mac ~key msg =
  let k0 =
    if Bytes.length key > block then
      let d = Sha256.digest key in
      let b = Bytes.make block '\000' in
      Bytes.blit d 0 b 0 32;
      b
    else begin
      let b = Bytes.make block '\000' in
      Bytes.blit key 0 b 0 (Bytes.length key);
      b
    end
  in
  let xor_pad pad =
    let b = Bytes.create block in
    for i = 0 to block - 1 do
      Bytes.set b i (Char.unsafe_chr (Char.code (Bytes.get k0 i) lxor pad))
    done;
    b
  in
  let inner = Sha256.init () in
  let ipad = xor_pad 0x36 in
  Sha256.update inner ipad 0 block;
  Sha256.update inner msg 0 (Bytes.length msg);
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  let opad = xor_pad 0x5C in
  Sha256.update outer opad 0 block;
  Sha256.update outer inner_digest 0 32;
  Sha256.finalize outer

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  if Bytes.length tag <> 32 then false
  else begin
    let diff = ref 0 in
    for i = 0 to 31 do
      diff := !diff lor (Char.code (Bytes.get tag i) lxor Char.code (Bytes.get expected i))
    done;
    !diff = 0
  end
