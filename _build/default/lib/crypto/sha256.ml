(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes (FIPS 180-4 §4.2.2); we derive them numerically
   rather than embedding the table, which doubles as a self-check. *)

let primes =
  let rec sieve acc n =
    if List.length acc = 64 then List.rev acc
    else
      let is_prime = List.for_all (fun p -> n mod p <> 0) acc in
      sieve (if is_prime then n :: acc else acc) (n + 1)
  in
  Array.of_list (sieve [] 2)

let frac_bits f = Int64.to_int32 (Int64.of_float (Float.rem f 1.0 *. 4294967296.0))

let k = Array.map (fun p -> frac_bits (Float.cbrt (float_of_int p))) primes
let h0 = Array.init 8 (fun i -> frac_bits (sqrt (float_of_int primes.(i))))

type ctx = {
  h : int32 array;
  buf : bytes; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* bytes absorbed *)
}

let init () = { h = Array.copy h0; buf = Bytes.create 64; buf_len = 0; total = 0L }

let ( >>> ) x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^: ) = Int32.logxor
let ( &: ) = Int32.logand
let ( +: ) = Int32.add
let lnot32 = Int32.lognot

let w = Array.make 64 0l

let compress h block off =
  for t = 0 to 15 do
    w.(t) <-
      Int32.logor
        (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block (off + (4 * t))))) 24)
        (Int32.logor
           (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block (off + (4 * t) + 1)))) 16)
           (Int32.logor
              (Int32.shift_left (Int32.of_int (Char.code (Bytes.get block (off + (4 * t) + 2)))) 8)
              (Int32.of_int (Char.code (Bytes.get block (off + (4 * t) + 3))))))
  done;
  for t = 16 to 63 do
    let s0 = (w.(t - 15) >>> 7) ^: (w.(t - 15) >>> 18) ^: Int32.shift_right_logical w.(t - 15) 3 in
    let s1 = (w.(t - 2) >>> 17) ^: (w.(t - 2) >>> 19) ^: Int32.shift_right_logical w.(t - 2) 10 in
    w.(t) <- w.(t - 16) +: s0 +: w.(t - 7) +: s1
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = (!e >>> 6) ^: (!e >>> 11) ^: (!e >>> 25) in
    let ch = (!e &: !f) ^: (lnot32 !e &: !g) in
    let t1 = !hh +: s1 +: ch +: k.(t) +: w.(t) in
    let s0 = (!a >>> 2) ^: (!a >>> 13) ^: (!a >>> 22) in
    let maj = (!a &: !b) ^: (!a &: !c) ^: (!b &: !c) in
    let t2 = s0 +: maj in
    hh := !g; g := !f; f := !e; e := !d +: t1;
    d := !c; c := !b; b := !a; a := t1 +: t2
  done;
  h.(0) <- h.(0) +: !a; h.(1) <- h.(1) +: !b;
  h.(2) <- h.(2) +: !c; h.(3) <- h.(3) +: !d;
  h.(4) <- h.(4) +: !e; h.(5) <- h.(5) +: !f;
  h.(6) <- h.(6) +: !g; h.(7) <- h.(7) +: !hh

let update ctx buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "Sha256.update";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  if ctx.buf_len > 0 then begin
    let n = min (64 - ctx.buf_len) !remaining in
    Bytes.blit buf !pos ctx.buf ctx.buf_len n;
    ctx.buf_len <- ctx.buf_len + n;
    pos := !pos + n;
    remaining := !remaining - n;
    if ctx.buf_len = 64 then begin
      compress ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx.h buf !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit buf !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i)
      (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bit_len (56 - (8 * i))) land 0xFF))
  done;
  (* Bypass [update]'s total accounting for the padding. *)
  let total_saved = ctx.total in
  update ctx tail 0 (Bytes.length tail);
  ctx.total <- total_saved;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j)
        (Char.unsafe_chr (Int32.to_int (Int32.shift_right_logical v (24 - (8 * j))) land 0xFF))
    done
  done;
  out

let digest buf =
  let ctx = init () in
  update ctx buf 0 (Bytes.length buf);
  finalize ctx

let digest_hex buf =
  let d = digest buf in
  let b = Buffer.create 64 in
  Bytes.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b
