lib/crypto/sha256.ml: Array Buffer Bytes Char Float Int32 Int64 List Printf
