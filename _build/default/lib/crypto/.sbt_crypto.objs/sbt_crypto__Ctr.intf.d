lib/crypto/ctr.mli:
