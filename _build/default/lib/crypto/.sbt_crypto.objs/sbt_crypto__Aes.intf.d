lib/crypto/aes.mli:
