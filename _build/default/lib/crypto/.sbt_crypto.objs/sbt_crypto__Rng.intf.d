lib/crypto/rng.mli:
