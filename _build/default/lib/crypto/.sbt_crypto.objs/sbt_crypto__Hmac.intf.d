lib/crypto/hmac.mli:
