lib/crypto/ctr.ml: Aes Bytes Char Int64
