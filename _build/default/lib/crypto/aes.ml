let block_size = 16

(* The AES S-box, generated from multiplicative inverses in GF(2^8)
   followed by the affine transform (FIPS-197 §5.1.1).  We compute it at
   startup instead of embedding the 256-entry literal: fewer magic numbers
   and the generation doubles as a self-check of our GF(2^8) arithmetic. *)

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1B) land 0xFF else (b lsl 1) land 0xFF

let gf_mul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 <> 0 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xFF

let gf_inv a =
  if a = 0 then 0
  else begin
    (* a^254 = a^-1 in GF(2^8); square-and-multiply over the 8-bit field. *)
    let rec pow base e acc =
      if e = 0 then acc
      else pow (gf_mul base base) (e lsr 1) (if e land 1 = 1 then gf_mul acc base else acc)
    in
    pow a 254 1
  end

let sbox =
  let rotl8 x k = ((x lsl k) lor (x lsr (8 - k))) land 0xFF in
  Array.init 256 (fun i ->
      let b = gf_inv i in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

type key = { rk : int array (* 44 words, big-endian per FIPS-197 *) }

let expand_key raw =
  if Bytes.length raw <> 16 then invalid_arg "Aes.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code (Bytes.get raw (4 * i)) lsl 24)
      lor (Char.code (Bytes.get raw ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get raw ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get raw ((4 * i) + 3))
  done;
  let sub_word x =
    (sbox.((x lsr 24) land 0xFF) lsl 24)
    lor (sbox.((x lsr 16) land 0xFF) lsl 16)
    lor (sbox.((x lsr 8) land 0xFF) lsl 8)
    lor sbox.(x land 0xFF)
  in
  let rot_word x = ((x lsl 8) lor (x lsr 24)) land 0xFFFFFFFF in
  for i = 4 to 43 do
    let tmp = w.(i - 1) in
    let tmp = if i mod 4 = 0 then sub_word (rot_word tmp) lxor (rcon.((i / 4) - 1) lsl 24) else tmp in
    w.(i) <- w.(i - 4) lxor tmp land 0xFFFFFFFF
  done;
  { rk = w }

(* State is kept as 16 ints in column-major order (s.(4*c+r)). *)

let add_round_key st rk round =
  for c = 0 to 3 do
    let w = rk.((4 * round) + c) in
    st.(4 * c) <- st.(4 * c) lxor ((w lsr 24) land 0xFF);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((w lsr 16) land 0xFF);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((w lsr 8) land 0xFF);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (w land 0xFF)
  done

let sub_bytes st = for i = 0 to 15 do st.(i) <- sbox.(st.(i)) done
let inv_sub_bytes st = for i = 0 to 15 do st.(i) <- inv_sbox.(st.(i)) done

let shift_rows st =
  (* Row r rotates left by r; indices are 4*c+r. *)
  let t = st.(1) in
  st.(1) <- st.(5); st.(5) <- st.(9); st.(9) <- st.(13); st.(13) <- t;
  let a = st.(2) and b = st.(6) in
  st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- a; st.(14) <- b;
  let t = st.(15) in
  st.(15) <- st.(11); st.(11) <- st.(7); st.(7) <- st.(3); st.(3) <- t

let inv_shift_rows st =
  let t = st.(13) in
  st.(13) <- st.(9); st.(9) <- st.(5); st.(5) <- st.(1); st.(1) <- t;
  let a = st.(2) and b = st.(6) in
  st.(2) <- st.(10); st.(6) <- st.(14); st.(10) <- a; st.(14) <- b;
  let t = st.(3) in
  st.(3) <- st.(7); st.(7) <- st.(11); st.(11) <- st.(15); st.(15) <- t

let mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- xtime a0 lxor (xtime a1 lxor a1) lxor a2 lxor a3;
    st.(i + 1) <- a0 lxor xtime a1 lxor (xtime a2 lxor a2) lxor a3;
    st.(i + 2) <- a0 lxor a1 lxor xtime a2 lxor (xtime a3 lxor a3);
    st.(i + 3) <- (xtime a0 lxor a0) lxor a1 lxor a2 lxor xtime a3
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- gf_mul a0 0x0E lxor gf_mul a1 0x0B lxor gf_mul a2 0x0D lxor gf_mul a3 0x09;
    st.(i + 1) <- gf_mul a0 0x09 lxor gf_mul a1 0x0E lxor gf_mul a2 0x0B lxor gf_mul a3 0x0D;
    st.(i + 2) <- gf_mul a0 0x0D lxor gf_mul a1 0x09 lxor gf_mul a2 0x0E lxor gf_mul a3 0x0B;
    st.(i + 3) <- gf_mul a0 0x0B lxor gf_mul a1 0x0D lxor gf_mul a2 0x09 lxor gf_mul a3 0x0E
  done

let load st src soff =
  for i = 0 to 15 do st.(i) <- Char.code (Bytes.get src (soff + i)) done

let store st dst doff =
  for i = 0 to 15 do Bytes.set dst (doff + i) (Char.unsafe_chr st.(i)) done

let encrypt_block key src soff dst doff =
  let st = Array.make 16 0 in
  load st src soff;
  add_round_key st key.rk 0;
  for round = 1 to 9 do
    sub_bytes st;
    shift_rows st;
    mix_columns st;
    add_round_key st key.rk round
  done;
  sub_bytes st;
  shift_rows st;
  add_round_key st key.rk 10;
  store st dst doff

let decrypt_block key src soff dst doff =
  let st = Array.make 16 0 in
  load st src soff;
  add_round_key st key.rk 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    inv_sub_bytes st;
    add_round_key st key.rk round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  inv_sub_bytes st;
  add_round_key st key.rk 0;
  store st dst doff
