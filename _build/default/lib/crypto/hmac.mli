(** HMAC-SHA-256 (RFC 2104).

    The data plane signs every egress batch and every flushed audit-record
    batch with an HMAC under a key shared with the cloud consumer; the
    verifier recomputes it before replaying. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag of [msg]. *)

val verify : key:bytes -> tag:bytes -> bytes -> bool
(** Constant-time comparison of [tag] against the recomputed tag. *)
