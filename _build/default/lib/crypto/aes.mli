(** AES-128 block cipher (FIPS-197), from scratch.

    Used by the engine for ingress decryption and egress encryption (in CTR
    mode, see {!Ctr}).  The implementation is table-based: one S-box lookup
    table plus on-the-fly MixColumns, which keeps the code small — the paper
    counts crypto inside the data-plane TCB, so we keep it lean too. *)

type key
(** Expanded 128-bit key schedule (11 round keys). *)

val expand_key : bytes -> key
(** [expand_key raw] expands a 16-byte key.  Raises [Invalid_argument] if
    [raw] is not 16 bytes long. *)

val encrypt_block : key -> bytes -> int -> bytes -> int -> unit
(** [encrypt_block k src soff dst doff] encrypts the 16-byte block at
    [src+soff] into [dst+doff].  [src] and [dst] may be the same buffer. *)

val decrypt_block : key -> bytes -> int -> bytes -> int -> unit
(** Inverse cipher of {!encrypt_block}. *)

val block_size : int
(** 16. *)
