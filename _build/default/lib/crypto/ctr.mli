(** AES-128 in counter (CTR) mode.

    CTR turns the block cipher into a stream cipher, so encryption and
    decryption are the same operation and arbitrary lengths are supported
    without padding — the right fit for streaming batches of fixed-size
    events. *)

type t
(** A CTR stream keyed with an AES key and a 8-byte nonce. *)

val create : key:bytes -> nonce:int64 -> t
(** [create ~key ~nonce] builds a stream.  [key] must be 16 bytes.
    The counter block is [nonce || block_index]. *)

val xcrypt : t -> pos:int64 -> bytes -> int -> int -> unit
(** [xcrypt t ~pos buf off len] en/decrypts [len] bytes of [buf] in place,
    treating [pos] as the absolute byte offset within the stream (so
    batches can be processed independently and out of order). *)

val xcrypt_bytes : key:bytes -> nonce:int64 -> bytes -> bytes
(** One-shot convenience: fresh stream, position 0, returns a copy. *)
