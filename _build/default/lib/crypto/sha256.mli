(** SHA-256 (FIPS 180-4), from scratch.

    Backs egress signing (through {!Hmac}) and the verifier's integrity
    checks on uploaded audit-record batches. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val update : ctx -> bytes -> int -> int -> unit
(** [update ctx buf off len] absorbs [len] bytes of [buf] at [off]. *)

val finalize : ctx -> bytes
(** Returns the 32-byte digest; the context must not be reused. *)

val digest : bytes -> bytes
(** One-shot hash of a whole buffer. *)

val digest_hex : bytes -> string
(** One-shot hash rendered as lowercase hex (for tests and logs). *)
