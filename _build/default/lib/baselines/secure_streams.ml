type result = {
  window_sums : (int * int64) list;
  elapsed_ns : float;
  events : int;
  hops : int;
  bytes_reencrypted : int;
}

let key = Bytes.of_string "secure-streams-k"

(* One encrypted hop: the producing enclave seals the buffer, the bus
   carries ciphertext, the consuming enclave unseals it. *)
let hop nonce payload counters =
  let c, b = counters in
  incr c;
  b := !b + (2 * Bytes.length payload);
  let sealed = Sbt_crypto.Ctr.xcrypt_bytes ~key ~nonce payload in
  Sbt_crypto.Ctr.xcrypt_bytes ~key ~nonce sealed

let run_win_sum ~window_ticks frames =
  let t0 = Sbt_sim.Clock.now_ns () in
  let events = ref 0 in
  let counters = (ref 0, ref 0) in
  let state : (int, int64 ref) Hashtbl.t = Hashtbl.create 64 in
  let nonce = ref 0L in
  List.iter
    (fun frame ->
      match frame with
      | Sbt_net.Frame.Watermark _ -> ()
      | Sbt_net.Frame.Events { payload; encrypted; _ } ->
          if encrypted then invalid_arg "Secure_streams.run_win_sum: cleartext frames only";
          nonce := Int64.add !nonce 1L;
          (* Enclave 1 (windowing) -> enclave 2 (aggregation). *)
          let payload = hop !nonce payload counters in
          let records = Sbt_net.Frame.unpack_events ~width:3 payload in
          let touched = Hashtbl.create 4 in
          Array.iter
            (fun (fields : int32 array) ->
              incr events;
              let w = Int32.to_int fields.(2) / window_ticks in
              let sum =
                match Hashtbl.find_opt state w with
                | Some s -> s
                | None ->
                    let s = ref 0L in
                    Hashtbl.replace state w s;
                    s
              in
              sum := Int64.add !sum (Int64.of_int32 fields.(1));
              Hashtbl.replace touched w ())
            records;
          (* Enclave 2 -> enclave 3 (egress): ship the touched partials. *)
          let partial = Bytes.create (Hashtbl.length touched * 12) in
          nonce := Int64.add !nonce 1L;
          ignore (hop !nonce partial counters))
    frames;
  let sums =
    Hashtbl.fold (fun w s acc -> (w, !s) :: acc) state []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let c, b = counters in
  {
    window_sums = sums;
    elapsed_ns = Sbt_sim.Clock.elapsed_ns ~since:t0;
    events = !events;
    hops = !c;
    bytes_reencrypted = !b;
  }
