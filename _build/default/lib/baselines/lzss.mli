(** LZSS with a fixed-size sliding window — the generic (gzip-class)
    compressor that Figure 12 compares the domain-specific columnar
    coder against.

    Deflate combines LZ77 matching with Huffman coding of the symbol
    stream; this implementation does the same (LZSS token stream fed
    through the {!Sbt_attest.Huffman} coder), so its ratios land in the
    same class as gzip on structured binary data. *)

val compress : bytes -> bytes
val decompress : bytes -> bytes
(** Exact inverse of {!compress}. *)

val ratio : bytes -> float
(** input size / compressed size (1.0 for empty input). *)
