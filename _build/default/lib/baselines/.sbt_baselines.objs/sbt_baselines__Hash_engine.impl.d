lib/baselines/hash_engine.ml: Array Hashtbl Int32 Int64 List Sbt_net Sbt_sim
