lib/baselines/secure_streams.ml: Array Bytes Hashtbl Int32 Int64 List Sbt_crypto Sbt_net Sbt_sim
