lib/baselines/secure_streams.mli: Sbt_net
