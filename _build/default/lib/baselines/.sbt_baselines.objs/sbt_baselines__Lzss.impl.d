lib/baselines/lzss.ml: Array Buffer Bytes Char Int64 Sbt_attest
