lib/baselines/lzss.mli:
