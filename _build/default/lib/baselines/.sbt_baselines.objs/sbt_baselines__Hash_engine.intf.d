lib/baselines/hash_engine.mli: Sbt_net
