(** Hash-based commodity stream engines — the design class the paper
    contrasts with (Figure 8: Flink, Esper, SensorBee on the same
    hardware).

    These engines process events one at a time as boxed values, group by
    key in per-window hash tables and rely on the generic allocator/GC —
    exactly the structure §4.1 argues mismatches a TEE.  Three
    configurations model the three systems' salient traits:

    - [Flink_like]: per-event objects + hash grouping, but efficient
      window bookkeeping (best of the three).
    - [Esper_like]: adds per-event boxed timestamps and listener-style
      dispatch (an extra closure call per event).
    - [Sensorbee_like]: additionally copies each event into an
      intermediate tuple (the dynamic-typing tax), slowest.

    They compute the same windowed aggregation as WinSum so outputs can
    be cross-checked against the array engine. *)

type flavor = Flink_like | Esper_like | Sensorbee_like

val flavor_name : flavor -> string

type result = {
  window_sums : (int * int64) list;  (** (window, sum) in window order *)
  elapsed_ns : float;
  events : int;
  peak_live_words : int;  (** rough live-heap footprint in words *)
}

val run_win_sum :
  flavor -> window_ticks:int -> Sbt_net.Frame.t list -> result
(** Ingest the frame stream (cleartext frames only) and compute per-window
    sums of the value field, one event at a time. *)
