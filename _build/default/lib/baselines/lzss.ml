(* Token stream: a flag byte precedes each group of 8 tokens; bit i set
   means token i is a (distance, length) match, clear means a literal.
   Matches are 3 bytes: 12-bit distance, 4-bit length-3, packed
   big-endian-ish.  The token stream is then Huffman-coded as a whole. *)

let window_size = 4096
let min_match = 3
let max_match = 18

let compress input =
  let n = Bytes.length input in
  let out = Buffer.create (n / 2) in
  Sbt_attest.Varint.write_unsigned out (Int64.of_int n);
  let tokens = Buffer.create n in
  (* Hash chains over 3-byte prefixes for match finding. *)
  let head = Array.make 16384 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let hash3 i =
    (Char.code (Bytes.unsafe_get input i) lsl 6)
    lxor (Char.code (Bytes.unsafe_get input (i + 1)) lsl 3)
    lxor Char.code (Bytes.unsafe_get input (i + 2))
    land 16383
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let find_match i =
    if i + min_match > n then None
    else begin
      let best_len = ref 0 and best_pos = ref (-1) in
      let candidate = ref head.(hash3 i) in
      let tries = ref 16 in
      while !candidate >= 0 && !tries > 0 do
        let c = !candidate in
        if i - c <= window_size && c < i then begin
          let len = ref 0 in
          let limit = min max_match (n - i) in
          while !len < limit && Bytes.get input (c + !len) = Bytes.get input (i + !len) do
            incr len
          done;
          if !len > !best_len then begin
            best_len := !len;
            best_pos := c
          end
        end;
        candidate := prev.(c);
        decr tries
      done;
      if !best_len >= min_match then Some (i - !best_pos, !best_len) else None
    end
  in
  let flags = ref 0 and flag_count = ref 0 in
  let group = Buffer.create 24 in
  let flush_group () =
    if !flag_count > 0 then begin
      Buffer.add_char tokens (Char.unsafe_chr !flags);
      Buffer.add_buffer tokens group;
      Buffer.clear group;
      flags := 0;
      flag_count := 0
    end
  in
  let i = ref 0 in
  while !i < n do
    (match find_match !i with
    | Some (dist, len) ->
        flags := !flags lor (1 lsl !flag_count);
        Buffer.add_char group (Char.unsafe_chr (dist land 0xFF));
        Buffer.add_char group (Char.unsafe_chr (((dist lsr 8) lsl 4) lor (len - min_match)));
        for j = !i to min (n - 1) (!i + len - 1) do
          insert j
        done;
        i := !i + len
    | None ->
        Buffer.add_char group (Bytes.get input !i);
        insert !i;
        incr i);
    incr flag_count;
    if !flag_count = 8 then flush_group ()
  done;
  flush_group ();
  (* Huffman over the token stream: the deflate-style entropy stage. *)
  Buffer.add_bytes out (Sbt_attest.Huffman.encode (Buffer.to_bytes tokens));
  Buffer.to_bytes out

let decompress data =
  let pos = ref 0 in
  let n = Int64.to_int (Sbt_attest.Varint.read_unsigned data pos) in
  let tokens = Sbt_attest.Huffman.decode (Bytes.sub data !pos (Bytes.length data - !pos)) in
  let out = Buffer.create n in
  let tn = Bytes.length tokens in
  let i = ref 0 in
  while Buffer.length out < n && !i < tn do
    let flags = Char.code (Bytes.get tokens !i) in
    incr i;
    let k = ref 0 in
    while !k < 8 && Buffer.length out < n && !i < tn do
      if (flags lsr !k) land 1 = 1 then begin
        let b0 = Char.code (Bytes.get tokens !i) in
        let b1 = Char.code (Bytes.get tokens (!i + 1)) in
        i := !i + 2;
        let dist = b0 lor ((b1 lsr 4) lsl 8) in
        let len = (b1 land 0xF) + min_match in
        let start = Buffer.length out - dist in
        if start < 0 then invalid_arg "Lzss.decompress: bad distance";
        for j = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + j))
        done
      end
      else begin
        Buffer.add_char out (Bytes.get tokens !i);
        incr i
      end;
      incr k
    done
  done;
  if Buffer.length out <> n then invalid_arg "Lzss.decompress: truncated stream";
  Buffer.to_bytes out

let ratio input =
  if Bytes.length input = 0 then 1.0
  else float_of_int (Bytes.length input) /. float_of_int (Bytes.length (compress input))
