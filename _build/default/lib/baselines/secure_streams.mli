(** A SecureStreams-style baseline: per-operator enclaves exchanging
    encrypted messages (paper §9.2's qualitative comparison, [53]).

    SecureStreams isolates each stream operator in its own SGX enclave;
    operators exchange AES-encrypted batches over the untrusted message
    bus.  StreamBox-TZ instead shares one cache-coherent TEE address
    space across all primitives.  This model reproduces the structural
    difference: the same WinSum computation, but every inter-operator
    hop pays serialize + encrypt + decrypt + deserialize. *)

type result = {
  window_sums : (int * int64) list;
  elapsed_ns : float;
  events : int;
  hops : int;  (** encrypted inter-operator transfers performed *)
  bytes_reencrypted : int;
}

val run_win_sum : window_ticks:int -> Sbt_net.Frame.t list -> result
(** Three "enclaves": windowing, aggregation, egress; two encrypted hops
    per batch. *)
