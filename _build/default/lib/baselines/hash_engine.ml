type flavor = Flink_like | Esper_like | Sensorbee_like

let flavor_name = function
  | Flink_like -> "flink-like"
  | Esper_like -> "esper-like"
  | Sensorbee_like -> "sensorbee-like"

(* Boxed per-event representation: the small-object churn commodity
   engines pay (§4.1). *)
type boxed_event = { key : int32 ref; value : int32 ref; ts : int32 ref }

type result = {
  window_sums : (int * int64) list;
  elapsed_ns : float;
  events : int;
  peak_live_words : int;
}

let run_win_sum flavor ~window_ticks frames =
  let t0 = Sbt_sim.Clock.now_ns () in
  (* window -> (sum ref, count ref): hash-table state per window. *)
  let state : (int, int64 ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let events = ref 0 in
  let peak = ref 0 in
  let live = ref 0 in
  let listener =
    (* Esper/SensorBee dispatch events through listener closures. *)
    match flavor with
    | Flink_like -> None
    | Esper_like | Sensorbee_like ->
        Some (fun (e : boxed_event) k -> k e)
  in
  let process (e : boxed_event) =
    let w = Int32.to_int !(e.ts) / window_ticks in
    let sum, count =
      match Hashtbl.find_opt state w with
      | Some sc -> sc
      | None ->
          let sc = (ref 0L, ref 0) in
          Hashtbl.replace state w sc;
          sc
    in
    sum := Int64.add !sum (Int64.of_int32 !(e.value));
    incr count
  in
  List.iter
    (fun frame ->
      match frame with
      | Sbt_net.Frame.Watermark _ -> ()
      | Sbt_net.Frame.Events { payload; encrypted; _ } ->
          if encrypted then invalid_arg "Hash_engine.run_win_sum: cleartext frames only";
          let records = Sbt_net.Frame.unpack_events ~width:3 payload in
          Array.iter
            (fun fields ->
              incr events;
              (* One fresh boxed object per event. *)
              let e = { key = ref fields.(0); value = ref fields.(1); ts = ref fields.(2) } in
              live := !live + 8;
              if !live > !peak then peak := !live;
              let e =
                match flavor with
                | Sensorbee_like ->
                    (* Extra intermediate tuple copy. *)
                    { key = ref !(e.key); value = ref !(e.value); ts = ref !(e.ts) }
                | Flink_like | Esper_like -> e
              in
              (match listener with
              | Some dispatch -> dispatch e process
              | None -> process e);
              live := !live - 8)
            records)
    frames;
  let sums =
    Hashtbl.fold (fun w (sum, _) acc -> (w, !sum) :: acc) state []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    window_sums = sums;
    elapsed_ns = Sbt_sim.Clock.elapsed_ns ~since:t0;
    events = !events;
    peak_live_words = !peak + (Hashtbl.length state * 16);
  }
