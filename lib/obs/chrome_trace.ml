let us ns = ns /. 1e3

let json_of_arg = function
  | Tracer.Int i -> Json.num_of_int i
  | Tracer.Float f -> Json.Num f
  | Tracer.Str s -> Json.Str s

let json_of_args args = Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)

let json_of_event = function
  | Tracer.Complete { name; cat; ts_ns; dur_ns; pid; tid; args } ->
      Json.Obj
        ([
           ("name", Json.Str name);
           ("cat", Json.Str cat);
           ("ph", Json.Str "X");
           ("ts", Json.Num (us ts_ns));
           ("dur", Json.Num (us dur_ns));
           ("pid", Json.num_of_int pid);
           ("tid", Json.num_of_int tid);
         ]
        @ if args = [] then [] else [ ("args", json_of_args args) ])
  | Tracer.Instant { name; cat; ts_ns; pid; tid; args } ->
      Json.Obj
        ([
           ("name", Json.Str name);
           ("cat", Json.Str cat);
           ("ph", Json.Str "i");
           ("s", Json.Str "t");
           ("ts", Json.Num (us ts_ns));
           ("pid", Json.num_of_int pid);
           ("tid", Json.num_of_int tid);
         ]
        @ if args = [] then [] else [ ("args", json_of_args args) ])
  | Tracer.Counter_sample { name; ts_ns; pid; tid; series } ->
      Json.Obj
        [
          ("name", Json.Str name);
          ("ph", Json.Str "C");
          ("ts", Json.Num (us ts_ns));
          ("pid", Json.num_of_int pid);
          ("tid", Json.num_of_int tid);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) series));
        ]

let metadata_event pid name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("ts", Json.Num 0.0);
      ("pid", Json.num_of_int pid);
      ("tid", Json.num_of_int 0);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let default_process_names = [ (0, "normal-world"); (1, "secure-world") ]

let to_json ?(process_names = default_process_names) tracer =
  let events =
    List.map (fun (pid, name) -> metadata_event pid name) process_names
    @ List.map json_of_event (Tracer.events tracer)
  in
  Json.to_string
    (Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ms") ])

let write_file ?process_names tracer ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?process_names tracer))
