(** Virtual-time tracing spans.

    Every timestamp handed to this module is a *virtual* nanosecond from
    the DES clock (or a modeled cost) — never a host wall-clock reading.
    That is the load-bearing design rule: recording a span only appends
    to a buffer, consults no clock and no RNG, so a run with tracing
    enabled is byte-identical (sealed results, audit log, verifier
    verdict) to the same run with tracing disabled.

    Track convention: [pid 0] is the normal world (control plane + DES
    cores, [tid] = virtual core), [pid 1] is the secure world (SMC
    layer, data plane, allocator). *)

type arg = Int of int | Float of float | Str of string

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_ns : float;
      dur_ns : float;
      pid : int;
      tid : int;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_ns : float;
      pid : int;
      tid : int;
      args : (string * arg) list;
    }
  | Counter_sample of {
      name : string;
      ts_ns : float;
      pid : int;
      tid : int;
      series : (string * float) list;
    }

type t

val create : unit -> t

val complete :
  ?args:(string * arg) list ->
  t ->
  pid:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ts_ns:float ->
  dur_ns:float ->
  unit ->
  unit

val instant :
  ?args:(string * arg) list ->
  t ->
  pid:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ts_ns:float ->
  unit ->
  unit

val counter :
  t -> pid:int -> tid:int -> name:string -> ts_ns:float -> series:(string * float) list -> unit

(** {2 Open/close spans}

    Spans on the same (pid, tid) track must nest: {!close_span} accepts
    only the innermost open span of its track.  The [Complete] event is
    emitted at close time with [dur_ns] = close − open. *)

type span

val open_span :
  ?args:(string * arg) list ->
  t ->
  pid:int ->
  tid:int ->
  cat:string ->
  name:string ->
  ts_ns:float ->
  span

val close_span : t -> span -> ts_ns:float -> unit
(** Raises [Invalid_argument] if [span] is not the innermost open span
    of its track, was already closed, or [ts_ns] precedes its open
    time. *)

val open_depth : t -> pid:int -> tid:int -> int

val events : t -> event list
(** In emission order (a nested span appears before its parent, at its
    close). *)

val event_count : t -> int

val reset : t -> unit
(** Drop all recorded events and any open spans (used between repeated
    recordings of the same run). *)
