(** Machine-readable bench output: one [BENCH_<section>.json] file per
    bench section, one JSON object per line.

    The first append a process makes to a given file truncates it, so
    every bench run starts its section files fresh (stale lines from
    earlier runs would silently skew trend plots); appends after the
    first, within the same process, accumulate.

    The destination directory is [SBT_BENCH_OUT_DIR] when set, else the
    working directory (dune exec runs from the invocation directory, so
    by default the files land at the repo root). *)

val path : ?dir:string -> section:string -> unit -> string
(** Raises [Invalid_argument] if [section] is not a bare
    [[A-Za-z0-9_-]+] token. *)

val append : ?dir:string -> section:string -> (string * Json.t) list -> string
(** Appends one line [{"section": <section>, ...fields}] and returns
    the file path.  The process's first append to each path truncates
    the file (see above). *)
