(** Machine-readable bench output: one [BENCH_<section>.json] file per
    bench section, one JSON object per line, appended per run — the
    repo's perf trajectory.

    The destination directory is [SBT_BENCH_OUT_DIR] when set, else the
    working directory (dune exec runs from the invocation directory, so
    by default the files land at the repo root). *)

val path : ?dir:string -> section:string -> unit -> string
(** Raises [Invalid_argument] if [section] is not a bare
    [[A-Za-z0-9_-]+] token. *)

val append : ?dir:string -> section:string -> (string * Json.t) list -> string
(** Appends one line [{"section": <section>, ...fields}] and returns
    the file path. *)
