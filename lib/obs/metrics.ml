type counter = { mutable count : int }
type gauge = { mutable value : float; mutable high_water : float }

type histogram = {
  bounds : float array; (* strictly increasing inclusive upper bounds *)
  counts : int array; (* length bounds + 1; last is the overflow bucket *)
  mutable n : int;
  mutable total : float;
}

type entry = E_counter of counter | E_gauge of gauge | E_histogram of histogram

type root = {
  entries : (string, entry) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

(* A registry handle is a view onto a shared root: [scoped] derives a
   handle whose prefix is prepended to every name, so M fleet nodes can
   share one root without colliding, while existing call sites (empty
   prefix) are untouched. *)
type t = { root : root; prefix : string }

let create () = { root = { entries = Hashtbl.create 32; order = [] }; prefix = "" }

let check_name name =
  if name = "" then invalid_arg "Metrics: empty name";
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Metrics: name %S contains whitespace" name))
    name

let scoped t scope =
  check_name scope;
  { root = t.root; prefix = t.prefix ^ scope ^ "." }

let full t name = if t.prefix = "" then name else t.prefix ^ name

let register t name mk wrong =
  check_name name;
  let name = full t name in
  match Hashtbl.find_opt t.root.entries name with
  | Some e -> wrong e
  | None ->
      let e = mk () in
      Hashtbl.replace t.root.entries name e;
      t.root.order <- name :: t.root.order;
      e

let kind_error name =
  invalid_arg (Printf.sprintf "Metrics: %S already registered with a different kind" name)

let counter t name =
  match
    register t name (fun () -> E_counter { count = 0 }) (fun e -> e)
  with
  | E_counter c -> c
  | E_gauge _ | E_histogram _ -> kind_error name

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic (negative delta)";
  c.count <- c.count + n

let counter_value c = c.count

let gauge t name =
  match register t name (fun () -> E_gauge { value = 0.0; high_water = 0.0 }) (fun e -> e) with
  | E_gauge g -> g
  | E_counter _ | E_histogram _ -> kind_error name

let set_gauge g v =
  g.value <- v;
  if v > g.high_water then g.high_water <- v

let gauge_value g = g.value
let gauge_high_water g = g.high_water

let default_bounds =
  (* 1-2-5 decades, 1 us .. 10 s, in ns. *)
  let decades = [ 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ] in
  Array.of_list (List.concat_map (fun d -> [ d; 2.0 *. d; 5.0 *. d ]) decades @ [ 1e10 ])

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?(bounds = default_bounds) t name =
  check_bounds bounds;
  match
    register t name
      (fun () ->
        E_histogram
          {
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            n = 0;
            total = 0.0;
          })
      (fun e -> e)
  with
  | E_histogram h ->
      if h.bounds <> bounds then
        invalid_arg (Printf.sprintf "Metrics.histogram: %S re-registered with different bounds" name);
      h
  | E_counter _ | E_gauge _ -> kind_error name

let bucket_of h v =
  (* First bucket whose inclusive upper bound covers [v]; the trailing
     slot is the overflow bucket. *)
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    i := !i + 1
  done;
  !i

let observe h v =
  let b = bucket_of h v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.n <- h.n + 1;
  h.total <- h.total +. v

let observations h = h.n
let sum h = h.total
let bucket_counts h = Array.copy h.counts

let percentile h p =
  if p <= 0.0 || p > 100.0 then invalid_arg "Metrics.percentile: p must be in (0, 100]";
  if h.n = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.n))) in
    let cum = ref 0 in
    let result = ref Float.infinity in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             result := (if i < Array.length h.bounds then h.bounds.(i) else Float.infinity);
             raise Exit
           end)
         h.counts
     with Exit -> ());
    !result
  end

type sample =
  | S_counter of { name : string; value : int }
  | S_gauge of { name : string; value : float; high_water : float }
  | S_histogram of {
      name : string;
      count : int;
      sum : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

let sample_of t name =
  match Hashtbl.find t.root.entries name with
  | E_counter c -> S_counter { name; value = c.count }
  | E_gauge g -> S_gauge { name; value = g.value; high_water = g.high_water }
  | E_histogram h ->
      S_histogram
        {
          name;
          count = h.n;
          sum = h.total;
          p50 = (if h.n = 0 then Float.nan else percentile h 50.0);
          p95 = (if h.n = 0 then Float.nan else percentile h 95.0);
          p99 = (if h.n = 0 then Float.nan else percentile h 99.0);
        }

let snapshot t = List.rev_map (sample_of t) t.root.order

let find_counter t name =
  match Hashtbl.find_opt t.root.entries (full t name) with
  | Some (E_counter c) -> c.count
  | Some _ | None -> raise Not_found

let find_gauge_high_water t name =
  match Hashtbl.find_opt t.root.entries (full t name) with
  | Some (E_gauge g) -> g.high_water
  | Some _ | None -> raise Not_found

(* --- snapshot serialization (the TEE export format) -------------------- *)

let fmt_f v = Printf.sprintf "%.17g" v

let encode_snapshot t =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      (match s with
      | S_counter { name; value } -> Buffer.add_string buf (Printf.sprintf "C %s %d" name value)
      | S_gauge { name; value; high_water } ->
          Buffer.add_string buf (Printf.sprintf "G %s %s %s" name (fmt_f value) (fmt_f high_water))
      | S_histogram { name; count; sum; p50; p95; p99 } ->
          Buffer.add_string buf
            (Printf.sprintf "H %s %d %s %s %s %s" name count (fmt_f sum) (fmt_f p50) (fmt_f p95)
               (fmt_f p99)));
      Buffer.add_char buf '\n')
    (snapshot t);
  Buffer.to_bytes buf

let decode_snapshot payload =
  let bad line = invalid_arg (Printf.sprintf "Metrics.decode_snapshot: malformed line %S" line) in
  let float_field line s = try float_of_string s with Failure _ -> bad line in
  let int_field line s = try int_of_string s with Failure _ -> bad line in
  String.split_on_char '\n' (Bytes.to_string payload)
  |> List.filter (fun l -> l <> "")
  |> List.map (fun line ->
         match String.split_on_char ' ' line with
         | [ "C"; name; v ] -> S_counter { name; value = int_field line v }
         | [ "G"; name; v; hw ] ->
             S_gauge { name; value = float_field line v; high_water = float_field line hw }
         | [ "H"; name; n; s; p50; p95; p99 ] ->
             S_histogram
               {
                 name;
                 count = int_field line n;
                 sum = float_field line s;
                 p50 = float_field line p50;
                 p95 = float_field line p95;
                 p99 = float_field line p99;
               }
         | _ -> bad line)

let to_json t =
  Json.Obj
    (List.map
       (function
         | S_counter { name; value } -> (name, Json.num_of_int value)
         | S_gauge { name; value; high_water } ->
             (name, Json.Obj [ ("value", Json.Num value); ("high_water", Json.Num high_water) ])
         | S_histogram { name; count; sum; p50; p95; p99 } ->
             ( name,
               Json.Obj
                 [
                   ("count", Json.num_of_int count);
                   ("sum", Json.Num sum);
                   ("p50", Json.Num p50);
                   ("p95", Json.Num p95);
                   ("p99", Json.Num p99);
                 ] ))
       (snapshot t))
