(** Minimal JSON emission — just enough for the trace and bench
    exporters, with no external dependency.  Emission only; the test
    suite carries its own tiny parser to check well-formedness. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Integral numbers
    print without a fractional part; non-finite numbers render as
    [null] (JSON has no representation for them). *)
