type arg = Int of int | Float of float | Str of string

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_ns : float;
      dur_ns : float;
      pid : int;
      tid : int;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_ns : float;
      pid : int;
      tid : int;
      args : (string * arg) list;
    }
  | Counter_sample of {
      name : string;
      ts_ns : float;
      pid : int;
      tid : int;
      series : (string * float) list;
    }

type span = {
  s_name : string;
  s_cat : string;
  s_ts : float;
  s_pid : int;
  s_tid : int;
  s_args : (string * arg) list;
  mutable s_closed : bool;
}

type t = {
  mutable rev_events : event list;
  mutable n : int;
  stacks : (int * int, span list) Hashtbl.t; (* (pid, tid) -> open spans, innermost first *)
}

let create () = { rev_events = []; n = 0; stacks = Hashtbl.create 8 }

let emit t e =
  t.rev_events <- e :: t.rev_events;
  t.n <- t.n + 1

let complete ?(args = []) t ~pid ~tid ~cat ~name ~ts_ns ~dur_ns () =
  emit t (Complete { name; cat; ts_ns; dur_ns; pid; tid; args })

let instant ?(args = []) t ~pid ~tid ~cat ~name ~ts_ns () =
  emit t (Instant { name; cat; ts_ns; pid; tid; args })

let counter t ~pid ~tid ~name ~ts_ns ~series = emit t (Counter_sample { name; ts_ns; pid; tid; series })

let stack t key = Option.value ~default:[] (Hashtbl.find_opt t.stacks key)

let open_span ?(args = []) t ~pid ~tid ~cat ~name ~ts_ns =
  let sp = { s_name = name; s_cat = cat; s_ts = ts_ns; s_pid = pid; s_tid = tid; s_args = args; s_closed = false } in
  Hashtbl.replace t.stacks (pid, tid) (sp :: stack t (pid, tid));
  sp

let close_span t sp ~ts_ns =
  if sp.s_closed then invalid_arg "Tracer.close_span: span already closed";
  if ts_ns < sp.s_ts then invalid_arg "Tracer.close_span: close precedes open";
  (match stack t (sp.s_pid, sp.s_tid) with
  | top :: rest when top == sp -> Hashtbl.replace t.stacks (sp.s_pid, sp.s_tid) rest
  | _ -> invalid_arg "Tracer.close_span: not the innermost open span of its track");
  sp.s_closed <- true;
  emit t
    (Complete
       {
         name = sp.s_name;
         cat = sp.s_cat;
         ts_ns = sp.s_ts;
         dur_ns = ts_ns -. sp.s_ts;
         pid = sp.s_pid;
         tid = sp.s_tid;
         args = sp.s_args;
       })

let open_depth t ~pid ~tid = List.length (stack t (pid, tid))

let events t = List.rev t.rev_events
let event_count t = t.n

let reset t =
  t.rev_events <- [];
  t.n <- 0;
  Hashtbl.reset t.stacks
