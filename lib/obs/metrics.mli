(** The metrics registry: counters, gauges and fixed-bucket latency
    histograms.

    Both worlds keep a registry of their own.  The normal-world (control
    plane) registry is read directly; the TEE-side registry must never be
    read across the boundary — the data plane serializes a snapshot with
    {!encode_snapshot} and exports it through the quote path
    ({!Sbt_core.Dataplane.metrics_quote}), so secure-world numbers reach
    the normal world only as an attested blob.

    Everything recorded here is a deterministic count or a modeled
    (virtual-time) quantity — never a host wall-clock reading — which is
    what keeps instrumentation observer-effect-free: the registry's
    content is identical run to run and independent of whether tracing
    is enabled. *)

type t
(** A registry.  Lookups are get-or-create by name; re-registering a
    name with a different kind raises [Invalid_argument].  Names must be
    non-empty and free of spaces and newlines (they key the line-based
    snapshot encoding). *)

val create : unit -> t
(** A fresh root registry (empty scope prefix). *)

val scoped : t -> string -> t
(** [scoped t "edge3"] is a view onto [t]'s underlying store that
    prefixes every metric name with ["edge3."] — M fleet nodes share one
    registry without colliding, and existing unscoped call sites keep
    their bare ["control.*"]/["exec.*"] names via the default root
    scope.  Scopes nest ([scoped (scoped t "edge3") "boot1"] prefixes
    ["edge3.boot1."]); {!snapshot} and friends always cover the whole
    shared store, in global registration order.  The scope name obeys
    the same lexical rules as metric names. *)

(** {2 Counters (monotonic)} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative delta — counters only move
    forward. *)

val counter_value : counter -> int

(** {2 Gauges (with high-water tracking)} *)

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Sets the current value and folds it into the high-water mark. *)

val gauge_value : gauge -> float
val gauge_high_water : gauge -> float

(** {2 Fixed-bucket histograms} *)

type histogram

val default_bounds : float array
(** 1-2-5 decades from 1 us to 10 s, in nanoseconds — a latency
    histogram usable for anything from a world switch to a window
    close. *)

val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are strictly increasing inclusive upper bucket bounds; an
    implicit overflow bucket catches everything above the last bound.
    Raises [Invalid_argument] on empty or non-increasing bounds, or when
    re-registering an existing histogram with different bounds. *)

val observe : histogram -> float -> unit

val observations : histogram -> int
val sum : histogram -> float

val bucket_counts : histogram -> int array
(** One count per bound plus the final overflow bucket. *)

val percentile : histogram -> float -> float
(** [percentile h p] with [p] in [(0, 100]]: the inclusive upper bound
    of the bucket containing the ceil(p% * n)-th smallest observation;
    [infinity] when that observation sits in the overflow bucket; [nan]
    on an empty histogram. *)

(** {2 Snapshots} *)

type sample =
  | S_counter of { name : string; value : int }
  | S_gauge of { name : string; value : float; high_water : float }
  | S_histogram of {
      name : string;
      count : int;
      sum : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

val snapshot : t -> sample list
(** All samples, in registration order (deterministic). *)

val find_counter : t -> string -> int
(** Read a counter back by name; raises [Not_found] if absent or of a
    different kind.  ({!find_gauge_high_water} likewise.) *)

val find_gauge_high_water : t -> string -> float

val encode_snapshot : t -> bytes
(** Deterministic line-based serialization of {!snapshot} — the TEE
    export format (MAC'd by the quote path). *)

val decode_snapshot : bytes -> sample list
(** Inverse of {!encode_snapshot}; raises [Invalid_argument] on a
    malformed payload. *)

val to_json : t -> Json.t
(** The snapshot as a JSON object keyed by metric name (for the
    machine-readable bench output). *)
