type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.12g" v)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf
