(** Chrome [trace_event] export (the JSON object format), loadable in
    Perfetto or chrome://tracing.

    Timestamps are converted from the tracer's virtual nanoseconds to
    the format's microseconds.  Event mapping: complete spans are
    [ph = "X"], instants [ph = "i"] (thread scope), counter samples
    [ph = "C"], plus [ph = "M"] metadata naming the two worlds. *)

val to_json : ?process_names:(int * string) list -> Tracer.t -> string
(** [process_names] defaults to
    [[(0, "normal-world"); (1, "secure-world")]]. *)

val write_file : ?process_names:(int * string) list -> Tracer.t -> path:string -> unit
