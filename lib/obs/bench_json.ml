let check_section s =
  if s = "" then invalid_arg "Bench_json: empty section";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Bench_json: section %S is not a bare token" s))
    s

let out_dir = function
  | Some dir -> dir
  | None -> ( try Sys.getenv "SBT_BENCH_OUT_DIR" with Not_found -> ".")

let path ?dir ~section () =
  check_section section;
  Filename.concat (out_dir dir) (Printf.sprintf "BENCH_%s.json" section)

(* Files touched by this process: the first append to a path truncates it,
   so a bench run starts each section file fresh instead of accreting lines
   across runs; later appends within the run accumulate as before. *)
let touched : (string, unit) Hashtbl.t = Hashtbl.create 8

let append ?dir ~section fields =
  let file = path ?dir ~section () in
  let line = Json.to_string (Json.Obj (("section", Json.Str section) :: fields)) in
  let flags =
    if Hashtbl.mem touched file then [ Open_append; Open_creat ]
    else begin
      Hashtbl.replace touched file ();
      [ Open_wronly; Open_creat; Open_trunc ]
    end
  in
  let oc = open_out_gen flags 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n');
  file
