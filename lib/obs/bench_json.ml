let check_section s =
  if s = "" then invalid_arg "Bench_json: empty section";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Bench_json: section %S is not a bare token" s))
    s

let out_dir = function
  | Some dir -> dir
  | None -> ( try Sys.getenv "SBT_BENCH_OUT_DIR" with Not_found -> ".")

let path ?dir ~section () =
  check_section section;
  Filename.concat (out_dir dir) (Printf.sprintf "BENCH_%s.json" section)

let append ?dir ~section fields =
  let file = path ?dir ~section () in
  let line = Json.to_string (Json.Obj (("section", Json.Str section) :: fields)) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n');
  file
