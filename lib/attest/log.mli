(** The in-TEE audit log and its flush policy.

    The data plane appends a record per boundary event; the log compresses
    pending records and signs the batch (HMAC-SHA-256 under the
    edge/cloud key) when flushed.  Flushes happen periodically and upon
    every result externalization (paper §7). *)

type t

type batch = { payload : bytes; tag : bytes; seq : int }
(** A signed upload unit: columnar-compressed records plus its MAC.  [seq]
    increments per flush so the verifier can detect dropped batches. *)

val create : key:bytes -> flush_every:int -> t
(** Flush automatically once [flush_every] records are pending (a
    size-based stand-in for the paper's periodic flush). *)

val append : t -> Record.t -> batch option
(** Returns a batch when the append triggered an automatic flush. *)

val flush : t -> batch option
(** Force a flush; [None] when nothing is pending. *)

val open_batch : key:bytes -> batch -> Record.t list
(** Verify the MAC and decompress — the cloud side.  Raises
    [Invalid_argument] on a bad tag (tampered or forged batch). *)

val records_produced : t -> int
val raw_bytes : t -> int
(** Total row-encoded size of everything appended so far. *)

val compressed_bytes : t -> int
(** Total size of all flushed payloads. *)

val seq : t -> int
(** The next batch sequence number (= batches flushed so far). *)

val restore_cursor :
  t -> seq:int -> records_produced:int -> raw_bytes:int -> compressed_bytes:int -> unit
(** Restore the log's cursor from a sealed checkpoint, so a recovered
    data plane continues the batch sequence exactly where the
    checkpointed one left off.  Only legal on a log with no pending
    records (checkpoints are taken right after a flush). *)

(** {2 Domain-safe sharded appends}

    For the real-parallel executor: each domain stages records into its
    own shard (lock-free — a shard must only ever be touched by its
    owning domain), tagging every record with a deterministic sequence
    key (its task's schedule index).  {!merge_shards} then replays all
    staged records through the serial append/flush path in ascending key
    order, so the resulting batches — payloads, MACs, batch sequence
    numbers — are byte-identical to a serial run, however execution
    interleaved across domains. *)

type shard

val shard : unit -> shard

val shard_append : shard -> seq:int -> Record.t -> unit
(** Stage a record under sequence key [seq].  No lock, no flush, no MAC:
    nothing observable happens until {!merge_shards}. *)

val shard_count : shard -> int

val merge_shards : t -> shard array -> batch list
(** Drain every shard into [t] in ascending [seq] order (ties break by
    shard index) and return the batches flushed along the way, oldest
    first. *)
