(* Attested partition-handoff manifests.

   When the fleet's failure detector declares an edge permanently dead,
   the dead node's key partition is re-assigned to a survivor, which
   resumes from the partition's newest durable checkpoint and replay
   cursor.  The manifest — sealed under the device key, like an epoch
   manifest — is the normal world's signed claim that this particular
   cross-edge stitch was authorized: it names the partition, the donor
   edge and the last epoch it executed, the recipient edge, and the
   exact resume coordinates (checkpoint seq, replay frame cursor, audit
   batch seq) the recipient's first epoch must carry.  The fleet
   verifier refuses to stitch donor and recipient chains without one,
   which is what turns a silent re-ingestion into a visible cross-edge
   duplicate violation. *)

let magic = "SBTH1"

type manifest = {
  partition : int;
  donor : int;
  donor_epoch : int;
  recipient : int;
  resume_ckpt : int;
  resume_cursor : int;
  resume_batch_seq : int;
}

type sealed = { payload : bytes; tag : bytes }

let fields = 7

let i64_to buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let i64_of b off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !v

let seal ~key m =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  List.iter
    (fun v -> i64_to buf (Int64.of_int v))
    [
      m.partition;
      m.donor;
      m.donor_epoch;
      m.recipient;
      m.resume_ckpt;
      m.resume_cursor;
      m.resume_batch_seq;
    ];
  let payload = Buffer.to_bytes buf in
  { payload; tag = Sbt_crypto.Hmac.mac ~key payload }

let open_ ~key s =
  if not (Sbt_crypto.Hmac.verify ~key ~tag:s.tag s.payload) then
    invalid_arg "Handoff.open_: MAC verification failed";
  if
    Bytes.length s.payload <> String.length magic + (8 * fields)
    || Bytes.sub_string s.payload 0 (String.length magic) <> magic
  then invalid_arg "Handoff.open_: malformed manifest";
  let base = String.length magic in
  let f i = Int64.to_int (i64_of s.payload (base + (8 * i))) in
  {
    partition = f 0;
    donor = f 1;
    donor_epoch = f 2;
    recipient = f 3;
    resume_ckpt = f 4;
    resume_cursor = f 5;
    resume_batch_seq = f 6;
  }
