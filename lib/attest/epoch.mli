(** Boot-epoch manifests for multi-epoch audit stitching.

    A run that survives crashes spans several boot epochs, each
    producing a slice of the audit stream.  The manifest — sealed
    under the device key — binds an epoch to the checkpoint it resumed
    from and the audit-batch sequence number it resumed at, which is
    exactly what {!Verifier.verify_epochs} needs to (a) order and trim
    the per-epoch batch lists, (b) prove the chain has no missing
    epoch, and (c) reject a restart from a stale (rolled-back)
    checkpoint.  Manifests live beside the audit stream rather than in
    it, so recovered and uninterrupted runs emit byte-identical audit
    batches. *)

type manifest = {
  epoch : int;  (** boot number, 0-based and contiguous *)
  resumed_from : int;  (** checkpoint sequence resumed from; -1 = fresh *)
  resume_batch_seq : int;
      (** first audit-batch sequence this epoch produces; earlier
          batches belong to prior epochs *)
}

type sealed = { payload : bytes; tag : bytes }

val seal : key:bytes -> manifest -> sealed
val open_ : key:bytes -> sealed -> manifest
(** Raises [Invalid_argument] on a bad MAC or malformed payload. *)
