(** Audit records (paper §7, Figure 6).

    The data plane emits one record per boundary event: data/watermark
    ingestion, window assignment, primitive execution, and result
    externalization.  Records reference uArrays by the data plane's
    monotonically increasing identifiers (never by address or opaque
    reference) and carry the data-plane timestamp. *)

type gap_reason =
  | Link_loss  (** frame never arrived (sequence hole at ingress) *)
  | Corrupt_ingress  (** frame arrived but failed MAC/decode and was rejected *)
  | Smc_unavailable  (** SMC retry budget exhausted; batch dropped outside *)
  | Pool_pressure  (** secure pool shed the batch under memory pressure *)

val gap_reason_name : gap_reason -> string
val gap_reason_tag : gap_reason -> int
val gap_reason_of_tag : int -> gap_reason

type t =
  | Ingress of { ts : int; uarray : int; stream : int; seq : int }
      (** A batch entered the TEE and became uArray [uarray].  [stream]
          and [seq] carry the frame's wire identity so the verifier can
          check per-stream sequence continuity (loss-awareness). *)
  | Ingress_watermark of { ts : int; id : int; value : int }
      (** A watermark with event-time [value] was ingested; it gets an id
          so later execution records can name it as a trigger. *)
  | Windowing of { ts : int; data_in : int; win_no : int; data_out : int }
      (** Segment assigned part of [data_in] to window [win_no],
          producing [data_out]. *)
  | Execution of {
      ts : int;
      op : int;  (** {!Sbt_prim.Primitive.to_id} *)
      inputs : int list;
      outputs : int list;
      hints : int64 list;  (** encoded consumption hints, optional *)
    }
  | Egress of { ts : int; uarray : int; win_no : int }
      (** A window result left the TEE (encrypted and signed). *)
  | Gap of {
      ts : int;
      stream : int;
      seq : int;
      events : int;  (** declared event count lost (0 when unknown) *)
      windows : int list;  (** windows the lost batch would have fed *)
      reason : gap_reason;
    }
      (** The edge declares, inside the TEE, that frame [seq] of [stream]
          was lost to a benign fault.  Declared gaps let the verifier
          report degradation instead of flagging a violation; missing
          dataflow {e without} a covering gap remains a violation. *)
  | Checkpoint of { ts : int; seq : int; watermark : int }
      (** In-TEE state was sealed as checkpoint [seq] after watermark
          [watermark].  Riding in the signed audit stream makes the
          latest checkpoint sequence number attestable: on restart the
          recovery path derives its rollback lower bound from these
          records, so the normal world cannot present a stale blob as
          fresh without also truncating the (MAC'd, sequenced) log. *)
  | Fused of {
      ts : int;
      ops : int list;
          (** ordered primitive ids of the fused chain
              ({!Sbt_prim.Primitive.to_id}), first-executed first *)
      params : bytes;  (** the chain's {!Sbt_prim.Fused.encode_steps} blob *)
      chain : bytes;  (** {!chain_hash} over [ops] and [params], computed in-TEE *)
      inputs : int list;
      outputs : int list;
      hints : int64 list;
    }
      (** One fused super-kernel execution (PR 7): the whole chain ran in
          a single trusted entry and emits this single composite record
          instead of one {!Execution} row per primitive.  The verifier
          replays it as the equivalent unfused chain and rejects forged
          compositions: a [chain] that does not match [ops]/[params], or
          an op {!Sbt_prim.Primitive.fusable} says cannot be fused. *)
  | Late_drop of { ts : int; uarray : int; win_no : int; events : int }
      (** [events] late records destined for already-closed window
          [win_no] were dropped {e and declared} under the drop+declare
          policy.  Like {!Gap}, the declaration downgrades what would be
          a violation into reported degradation — but only when the
          attested policy actually is drop+declare; under any other
          declared policy the verifier fires [Undeclared_late_handling]. *)
  | Correction of { ts : int; uarray : int; win_no : int; gen : int }
      (** Window [win_no] was reopened for late data and re-emitted as
          correction generation [gen] (1-based, contiguous) under the
          retract-and-reemit policy.  The sealed correction supersedes
          the window's prior egress; the cloud-side merge applies
          corrections in generation order. *)

val chain_hash : ops:int list -> params:bytes -> bytes
(** 16-byte truncated SHA-256 commitment to a fused chain: the ordered op
    ids and the parameter blob under a domain-separation prefix.  Both
    the data plane (when emitting) and the verifier (when replaying)
    compute it with this one function. *)

val pp : Format.formatter -> t -> unit

val encode_row : Buffer.t -> t -> unit
(** Raw row-order binary encoding (the uncompressed on-edge format whose
    size Figure 12 reports as "Raw"). *)

val decode_row : bytes -> int ref -> t
(** Raises [Invalid_argument] on malformed input. *)

val encode_all : t list -> bytes
val decode_all : bytes -> t list

val ts_of : t -> int
