type batch = { payload : bytes; tag : bytes; seq : int }

type t = {
  key : bytes;
  flush_every : int;
  mutable pending : Record.t list; (* reversed *)
  mutable pending_count : int;
  mutable seq : int;
  mutable records_produced : int;
  mutable raw_bytes : int;
  mutable compressed_bytes : int;
}

let create ~key ~flush_every =
  if flush_every <= 0 then invalid_arg "Log.create: flush_every must be positive";
  {
    key;
    flush_every;
    pending = [];
    pending_count = 0;
    seq = 0;
    records_produced = 0;
    raw_bytes = 0;
    compressed_bytes = 0;
  }

let flush t =
  match t.pending with
  | [] -> None
  | _ :: _ ->
      let records = List.rev t.pending in
      t.pending <- [];
      t.pending_count <- 0;
      let body = Columnar.compress records in
      (* The sequence number is authenticated together with the payload. *)
      let seq_prefix = Bytes.create 4 in
      for i = 0 to 3 do
        Bytes.set seq_prefix i (Char.unsafe_chr ((t.seq lsr (8 * i)) land 0xFF))
      done;
      let payload = Bytes.cat seq_prefix body in
      let tag = Sbt_crypto.Hmac.mac ~key:t.key payload in
      let b = { payload; tag; seq = t.seq } in
      t.seq <- t.seq + 1;
      t.compressed_bytes <- t.compressed_bytes + Bytes.length payload;
      Some b

let append t r =
  t.pending <- r :: t.pending;
  t.pending_count <- t.pending_count + 1;
  t.records_produced <- t.records_produced + 1;
  t.raw_bytes <- t.raw_bytes + Bytes.length (Record.encode_all [ r ]) - 1;
  (* -1: don't count the per-batch record-count varint for single records *)
  if t.pending_count >= t.flush_every then flush t else None

let open_batch ~key b =
  if not (Sbt_crypto.Hmac.verify ~key ~tag:b.tag b.payload) then
    invalid_arg "Log.open_batch: MAC verification failed";
  let seq = ref 0 in
  for i = 3 downto 0 do
    seq := (!seq lsl 8) lor Char.code (Bytes.get b.payload i)
  done;
  if !seq <> b.seq then invalid_arg "Log.open_batch: sequence number mismatch";
  Columnar.decompress (Bytes.sub b.payload 4 (Bytes.length b.payload - 4))

let records_produced t = t.records_produced
let raw_bytes t = t.raw_bytes
let compressed_bytes t = t.compressed_bytes
let seq t = t.seq

let restore_cursor t ~seq ~records_produced ~raw_bytes ~compressed_bytes =
  if t.pending_count > 0 then invalid_arg "Log.restore_cursor: pending records";
  if seq < 0 || records_produced < 0 || raw_bytes < 0 || compressed_bytes < 0 then
    invalid_arg "Log.restore_cursor: negative cursor";
  t.seq <- seq;
  t.records_produced <- records_produced;
  t.raw_bytes <- raw_bytes;
  t.compressed_bytes <- compressed_bytes

(* --- per-domain shards ---------------------------------------------------

   A shard is a lock-free, domain-local staging buffer: appends touch only
   the shard's own fields, so concurrent domains never contend (each
   domain owns exactly one shard).  Records carry a caller-assigned
   sequence key — the task's schedule index — and [merge_shards] replays
   all staged records through the ordinary append/flush path in ascending
   key order.  Because batches, MACs and batch sequence numbers are all
   produced by that single serial replay, the merged audit bytes are
   byte-identical to a serial run that appended the same records in key
   order, regardless of how execution interleaved across domains. *)

type shard = {
  mutable staged : (int * Record.t) list; (* newest first *)
  mutable staged_count : int;
}

let shard () = { staged = []; staged_count = 0 }

let shard_append s ~seq r =
  s.staged <- (seq, r) :: s.staged;
  s.staged_count <- s.staged_count + 1

let shard_count s = s.staged_count

let merge_shards t shards =
  let all =
    Array.to_list shards
    |> List.concat_map (fun s -> List.rev s.staged)
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  in
  Array.iter
    (fun s ->
      s.staged <- [];
      s.staged_count <- 0)
    shards;
  List.filter_map (fun (_, r) -> append t r) all
