type spec = {
  batch_ops : int list;
  window_ops : int list;
  window_size : int;
  window_slide : int;
  freshness_bound : int option;
  late_policy : int;
  session_gap : int option;
}

type violation =
  | Unknown_uarray of { record_index : int; id : int }
  | Unexpected_batch_op of { id : int; expected : int; got : int }
  | Window_ops_mismatch of { window : int; expected : int list; got : int list }
  | Unprocessed_batch of { id : int }
  | Unprocessed_window_data of { window : int; ids : int list }
  | Double_consumption of { record_index : int; id : int }
  | Missing_egress of { window : int }
  | Duplicate_egress of { window : int }
  | Stale_result of { window : int; delay : int; bound : int }
  | Mixed_window_inputs of { record_index : int }
  | Watermark_regression of { id : int; value : int; prev : int }
  | Egress_of_non_result of { record_index : int; id : int }
  | Undeclared_loss of { stream : int; seq : int }
  | Missing_epoch of { expected : int; got : int }
  | Checkpoint_rollback of { epoch : int; resumed_from : int; latest : int }
  | Duplicate_window_across_epochs of { window : int; first_epoch : int; second_epoch : int }
  | Fleet_partition_loss of { partition : int; missing_windows : int; total_windows : int }
  | Cross_edge_duplicate of { partition : int; window : int; first_edge : int; second_edge : int }
  | Handoff_unattested of { partition : int; donor : int; recipient : int }
  | Handoff_mismatch of { partition : int; donor : int; recipient : int; reason : string }
  | Fused_chain_mismatch of { record_index : int }
  | Fused_non_fusable of { record_index : int; op : int }
  | Tenant_log_unverifiable of { tenant : int; reason : string }
  | Undeclared_late_handling of { record_index : int; window : int }
  | Correction_mismatch of { window : int; expected_gen : int; got_gen : int }
  | Retraction_without_reemit of { window : int; declared : int; replayed : int }

let pp_violation fmt = function
  | Unknown_uarray { record_index; id } ->
      Format.fprintf fmt "record %d references unknown uArray %d" record_index id
  | Unexpected_batch_op { id; expected; got } ->
      Format.fprintf fmt "uArray %d: expected batch op %d, got %d" id expected got
  | Window_ops_mismatch { window; expected; got } ->
      let l ids = String.concat "," (List.map string_of_int ids) in
      Format.fprintf fmt "window %d: expected ops {%s}, got {%s}" window (l expected) (l got)
  | Unprocessed_batch { id } -> Format.fprintf fmt "ingested batch %d never windowed" id
  | Unprocessed_window_data { window; ids } ->
      Format.fprintf fmt "window %d: uArrays %s never processed" window
        (String.concat "," (List.map string_of_int ids))
  | Double_consumption { record_index; id } ->
      Format.fprintf fmt "record %d consumes already-consumed uArray %d" record_index id
  | Missing_egress { window } -> Format.fprintf fmt "window %d closed but produced no result" window
  | Duplicate_egress { window } -> Format.fprintf fmt "window %d externalized more than once" window
  | Stale_result { window; delay; bound } ->
      Format.fprintf fmt "window %d result delayed %d > bound %d" window delay bound
  | Mixed_window_inputs { record_index } ->
      Format.fprintf fmt "record %d mixes inputs across windows/stages" record_index
  | Watermark_regression { id; value; prev } ->
      Format.fprintf fmt "watermark %d regresses (%d after %d)" id value prev
  | Egress_of_non_result { record_index; id } ->
      Format.fprintf fmt "record %d externalizes non-result uArray %d" record_index id
  | Undeclared_loss { stream; seq } ->
      Format.fprintf fmt "stream %d frame %d missing with no declared gap" stream seq
  | Missing_epoch { expected; got } ->
      Format.fprintf fmt "epoch chain broken: expected epoch %d, got %d" expected got
  | Checkpoint_rollback { epoch; resumed_from; latest } ->
      Format.fprintf fmt "epoch %d resumed from checkpoint %d but the log attests checkpoint %d"
        epoch resumed_from latest
  | Duplicate_window_across_epochs { window; first_epoch; second_epoch } ->
      Format.fprintf fmt "window %d emitted in both epoch %d and epoch %d" window first_epoch
        second_epoch
  | Fleet_partition_loss { partition; missing_windows; total_windows } ->
      Format.fprintf fmt "partition %d: %d of %d window(s) egressed nowhere with no declared gap"
        partition missing_windows total_windows
  | Cross_edge_duplicate { partition; window; first_edge; second_edge } ->
      Format.fprintf fmt "partition %d window %d egressed by both edge %d and edge %d" partition
        window first_edge second_edge
  | Handoff_unattested { partition; donor; recipient } ->
      Format.fprintf fmt
        "partition %d executed on edge %d then edge %d with no handoff manifest linking them"
        partition donor recipient
  | Handoff_mismatch { partition; donor; recipient; reason } ->
      Format.fprintf fmt "partition %d handoff edge %d -> edge %d invalid: %s" partition donor
        recipient reason
  | Fused_chain_mismatch { record_index } ->
      Format.fprintf fmt "record %d: fused chain hash does not match its ops/params" record_index
  | Fused_non_fusable { record_index; op } ->
      Format.fprintf fmt "record %d: fused chain contains non-fusable op %d" record_index op
  | Tenant_log_unverifiable { tenant; reason } ->
      Format.fprintf fmt "tenant %d: audit stream fails authentication (%s)" tenant reason
  | Undeclared_late_handling { record_index; window } ->
      Format.fprintf fmt
        "record %d: late data of window %d handled under a policy the quote never declared"
        record_index window
  | Correction_mismatch { window; expected_gen; got_gen } ->
      Format.fprintf fmt "window %d: correction generation %d where %d was expected" window got_gen
        expected_gen
  | Retraction_without_reemit { window; declared; replayed } ->
      Format.fprintf fmt
        "window %d: replayed %d evaluation(s) but only %d emission(s) were declared" window
        replayed declared

type report = {
  violations : violation list;
  misleading_hints : int;
  windows_verified : int;
  records_replayed : int;
  max_delay : int;
  delays : (int * int) list;
  declared_gaps : int;
  gap_events : int;
  lost_batches : int;
  loss_fraction : float;
  degraded_windows : int list;
  late_drops : int;
  late_events : int;
  corrections : int;
  corrected_windows : int list;
}

let ok r = r.violations = []

(* Provenance of every identifier the data plane has mentioned. *)
type batch_info = { mutable windowed : bool }
type seg_info = { seg_window : int; mutable stage : int; mutable consumed : bool }
type ready_info = { ready_window : int; mutable read : bool }
type mid_info = { mid_window : int; mutable mid_read : bool; mutable egressed : bool }

type prov =
  | Batch of batch_info
  | Watermark of { value : int; ts : int }
  | Segment of seg_info
  | Ready of ready_info
  | Group_mid of mid_info

type win_state = {
  mutable ready_ids : int list;
  mutable group_ops : int list;
  mutable egress_count : int;
  mutable egress_ts : int option;
}

let verify spec records =
  let table : (int, prov) Hashtbl.t = Hashtbl.create 256 in
  let windows : (int, win_state) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  let violate v = violations := v :: !violations in
  (* Consumption order is the index of the record that first consumed an
     id; all inputs of one execution tie, so a hint between them is not
     misleading. *)
  let consumption_seq : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let note_consumed ~idx id =
    if not (Hashtbl.mem consumption_seq id) then Hashtbl.replace consumption_seq id idx
  in
  (* hints recorded as (predecessor id, output id) pairs *)
  let hints_seen = ref [] in
  let watermarks = ref [] (* (value, ts), record order *) in
  let prev_wm = ref min_int in
  let win_state w =
    match Hashtbl.find_opt windows w with
    | Some s -> s
    | None ->
        let s = { ready_ids = []; group_ops = []; egress_count = 0; egress_ts = None } in
        Hashtbl.replace windows w s;
        s
  in
  let batch_op_count = List.length spec.batch_ops in
  (* Loss accounting: ingress and declared-gap frame identities, per
     stream.  Holes inside a stream's observed sequence range that no Gap
     record covers are undeclared loss — the tamper-evidence property the
     fault model must preserve. *)
  let ingress_seqs : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let gap_seqs : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let seq_set tbl stream =
    match Hashtbl.find_opt tbl stream with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.replace tbl stream s;
        s
  in
  let declared_gaps = ref 0 and gap_events = ref 0 in
  let gap_windows : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Late-data accounting.  [corr_gens] keeps correction generations per
     window in record order; [late_drop_windows] suppresses
     [Missing_egress] the same way declared gaps do — a window whose
     entire content arrived late and was (declaredly) dropped never
     egresses, and that is degradation, not tampering. *)
  let late_drops = ref 0 and late_events = ref 0 in
  let late_drop_windows : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let corr_gens : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let corrections_of w = match Hashtbl.find_opt corr_gens w with None -> [] | Some l -> List.rev l in
  let register_output window stage_done id =
    if Hashtbl.mem table id then violate (Double_consumption { record_index = -1; id })
    else if stage_done then begin
      Hashtbl.replace table id (Ready { ready_window = window; read = false });
      let s = win_state window in
      s.ready_ids <- id :: s.ready_ids
    end
    else Hashtbl.replace table id (Segment { seg_window = window; stage = 0; consumed = false })
  in
  List.iteri
    (fun idx r ->
      match r with
      | Record.Ingress { ts = _; uarray; stream; seq } ->
          Hashtbl.replace (seq_set ingress_seqs stream) seq ();
          if Hashtbl.mem table uarray then
            violate (Double_consumption { record_index = idx; id = uarray })
          else Hashtbl.replace table uarray (Batch { windowed = false })
      | Record.Ingress_watermark { ts; id; value } ->
          if value < !prev_wm then violate (Watermark_regression { id; value; prev = !prev_wm });
          prev_wm := max !prev_wm value;
          Hashtbl.replace table id (Watermark { value; ts });
          watermarks := (value, ts) :: !watermarks
      | Record.Windowing { ts = _; data_in; win_no; data_out } -> (
          match Hashtbl.find_opt table data_in with
          | Some (Batch b) ->
              b.windowed <- true;
              note_consumed ~idx data_in;
              (* Segments with no batch stages are immediately window-ready. *)
              register_output win_no (batch_op_count = 0) data_out
          | Some (Watermark _ | Segment _ | Ready _ | Group_mid _) ->
              violate (Mixed_window_inputs { record_index = idx })
          | None -> violate (Unknown_uarray { record_index = idx; id = data_in }))
      | Record.Execution { ts = _; op; inputs; outputs; hints } -> (
          (* Classify the inputs. *)
          let wm = ref None and segs = ref [] and window_inputs = ref [] in
          let bad = ref false in
          List.iter
            (fun id ->
              match Hashtbl.find_opt table id with
              | None ->
                  violate (Unknown_uarray { record_index = idx; id });
                  bad := true
              | Some (Watermark _) -> wm := Some id
              | Some (Segment s) -> segs := (id, s) :: !segs
              | Some (Ready r) -> window_inputs := (id, `Ready r) :: !window_inputs
              | Some (Group_mid g) -> window_inputs := (id, `Mid g) :: !window_inputs
              | Some (Batch _) ->
                  violate (Mixed_window_inputs { record_index = idx });
                  bad := true)
            inputs;
          (if not !bad then
            match (!segs, !window_inputs, !wm) with
            | [ (id, s) ], [], None ->
                (* Batch-stage execution. *)
                if s.consumed then violate (Double_consumption { record_index = idx; id })
                else begin
                  s.consumed <- true;
                  note_consumed ~idx id;
                  let expected = List.nth spec.batch_ops s.stage in
                  if op <> expected then violate (Unexpected_batch_op { id; expected; got = op });
                  let done_after = s.stage + 1 >= batch_op_count in
                  List.iter
                    (fun out ->
                      if done_after then register_output s.seg_window true out
                      else begin
                        Hashtbl.replace table out
                          (Segment { seg_window = s.seg_window; stage = s.stage + 1; consumed = false });
                        ignore (win_state s.seg_window)
                      end)
                    outputs
                end
            | [], ((_ :: _) as wins), _ ->
                (* Window-group execution.  The group belongs to the newest
                   window among its inputs; Ready (segment) inputs must all
                   belong to that window, while Group_mid inputs from
                   earlier windows are legal - that is operator state
                   flowing forward (paper 7: stateful operators). *)
                let window_of (_, i) = match i with `Ready r -> r.ready_window | `Mid g -> g.mid_window in
                let w0 = List.fold_left (fun acc x -> max acc (window_of x)) min_int wins in
                let ok =
                  List.for_all
                    (fun (_, i) ->
                      match i with
                      | `Ready r -> r.ready_window = w0
                      | `Mid g -> g.mid_window <= w0)
                    wins
                in
                if ok then begin
                  List.iter
                    (fun (id, i) ->
                      note_consumed ~idx id;
                      match i with `Ready r -> r.read <- true | `Mid g -> g.mid_read <- true)
                    wins;
                  let s = win_state w0 in
                  s.group_ops <- op :: s.group_ops;
                  List.iter
                    (fun out ->
                      Hashtbl.replace table out
                        (Group_mid { mid_window = w0; mid_read = false; egressed = false }))
                    outputs
                end
                else violate (Mixed_window_inputs { record_index = idx })
            | _, _, _ -> violate (Mixed_window_inputs { record_index = idx }));
          (* Hints pair the first output with a predecessor uArray. *)
          List.iter
            (fun h ->
              let pred = Int64.to_int (Int64.shift_right_logical h 32) in
              let succ = Int64.to_int (Int64.logand h 0xFFFFFFFFL) in
              hints_seen := (pred, succ) :: !hints_seen)
            hints)
      | Record.Fused { ts = _; ops; params; chain; inputs; outputs; hints } -> (
          (* One composite record claims a whole chain of per-record
             primitives ran as a single trusted entry.  Judge the claim
             itself first — the chain hash must commit to exactly these
             ops and params, the params blob must decode to the same op
             sequence, and every op must be one the type system allows to
             fuse — then replay it as the equivalent unfused sequence of
             batch stages. *)
          if not (Bytes.equal chain (Record.chain_hash ~ops ~params)) then
            violate (Fused_chain_mismatch { record_index = idx });
          (match Sbt_prim.Fused.decode_steps params with
          | Some steps
            when List.map (fun s -> Sbt_prim.Primitive.to_id (Sbt_prim.Fused.step_op s)) steps
                 = ops ->
              ()
          | Some _ | None -> violate (Fused_chain_mismatch { record_index = idx }));
          List.iter
            (fun op ->
              match Sbt_prim.Primitive.of_id op with
              | Some p when Sbt_prim.Primitive.fusable p -> ()
              | Some _ | None -> violate (Fused_non_fusable { record_index = idx; op }))
            ops;
          let n_ops = List.length ops in
          let wm = ref None and segs = ref [] and window_inputs = ref [] in
          let bad = ref false in
          List.iter
            (fun id ->
              match Hashtbl.find_opt table id with
              | None ->
                  violate (Unknown_uarray { record_index = idx; id });
                  bad := true
              | Some (Watermark _) -> wm := Some id
              | Some (Segment s) -> segs := (id, s) :: !segs
              | Some (Ready r) -> window_inputs := (id, `Ready r) :: !window_inputs
              | Some (Group_mid g) -> window_inputs := (id, `Mid g) :: !window_inputs
              | Some (Batch _) ->
                  violate (Mixed_window_inputs { record_index = idx });
                  bad := true)
            inputs;
          (if not !bad then
            match (!segs, !window_inputs, !wm) with
            | [ (id, s) ], [], None ->
                (* Fused batch-stage execution: the chain must line up
                   with the declared batch ops starting at the segment's
                   current stage, and advances the stage by the whole
                   chain length at once. *)
                if s.consumed then violate (Double_consumption { record_index = idx; id })
                else begin
                  s.consumed <- true;
                  note_consumed ~idx id;
                  List.iteri
                    (fun k op ->
                      if s.stage + k >= batch_op_count then
                        violate (Unexpected_batch_op { id; expected = -1; got = op })
                      else
                        let expected = List.nth spec.batch_ops (s.stage + k) in
                        if op <> expected then
                          violate (Unexpected_batch_op { id; expected; got = op }))
                    ops;
                  let done_after = s.stage + n_ops >= batch_op_count in
                  List.iter
                    (fun out ->
                      if done_after then register_output s.seg_window true out
                      else begin
                        Hashtbl.replace table out
                          (Segment
                             { seg_window = s.seg_window; stage = s.stage + n_ops; consumed = false });
                        ignore (win_state s.seg_window)
                      end)
                    outputs
                end
            | [], ((_ :: _) as wins), _ ->
                (* Fused window-group execution: all chain ops count
                   toward the window's op multiset. *)
                let window_of (_, i) = match i with `Ready r -> r.ready_window | `Mid g -> g.mid_window in
                let w0 = List.fold_left (fun acc x -> max acc (window_of x)) min_int wins in
                let ok =
                  List.for_all
                    (fun (_, i) ->
                      match i with
                      | `Ready r -> r.ready_window = w0
                      | `Mid g -> g.mid_window <= w0)
                    wins
                in
                if ok then begin
                  List.iter
                    (fun (id, i) ->
                      note_consumed ~idx id;
                      match i with `Ready r -> r.read <- true | `Mid g -> g.mid_read <- true)
                    wins;
                  let s = win_state w0 in
                  List.iter (fun op -> s.group_ops <- op :: s.group_ops) ops;
                  List.iter
                    (fun out ->
                      Hashtbl.replace table out
                        (Group_mid { mid_window = w0; mid_read = false; egressed = false }))
                    outputs
                end
                else violate (Mixed_window_inputs { record_index = idx })
            | _, _, _ -> violate (Mixed_window_inputs { record_index = idx }));
          List.iter
            (fun h ->
              let pred = Int64.to_int (Int64.shift_right_logical h 32) in
              let succ = Int64.to_int (Int64.logand h 0xFFFFFFFFL) in
              hints_seen := (pred, succ) :: !hints_seen)
            hints)
      | Record.Egress { ts; uarray; win_no } -> (
          match Hashtbl.find_opt table uarray with
          | Some (Group_mid g) when g.mid_window = win_no && not g.egressed ->
              g.egressed <- true;
              note_consumed ~idx uarray;
              let s = win_state win_no in
              s.egress_count <- s.egress_count + 1;
              if s.egress_count > 1 then violate (Duplicate_egress { window = win_no });
              if s.egress_ts = None then s.egress_ts <- Some ts
          | Some (Ready r) when r.ready_window = win_no && spec.window_ops = [] ->
              r.read <- true;
              note_consumed ~idx uarray;
              let s = win_state win_no in
              s.egress_count <- s.egress_count + 1;
              if s.egress_count > 1 then violate (Duplicate_egress { window = win_no });
              if s.egress_ts = None then s.egress_ts <- Some ts
          | Some (Batch _ | Watermark _ | Segment _ | Ready _ | Group_mid _) ->
              violate (Egress_of_non_result { record_index = idx; id = uarray })
          | None -> violate (Unknown_uarray { record_index = idx; id = uarray }))
      | Record.Gap { ts = _; stream; seq; events; windows = ws; reason = _ } ->
          Hashtbl.replace (seq_set gap_seqs stream) seq ();
          incr declared_gaps;
          gap_events := !gap_events + events;
          List.iter (fun w -> Hashtbl.replace gap_windows w ()) ws
      | Record.Checkpoint _ ->
          (* State sealing has no dataflow of its own; its sequence
             numbers matter to [verify_epochs], not to single-log replay. *)
          ()
      | Record.Late_drop { ts = _; uarray; win_no; events } -> (
          (* Declared late shedding is only a declaration when the quote
             committed to drop+declare; under any other attested policy
             the record is itself the deviation. *)
          if spec.late_policy <> 1 then
            violate (Undeclared_late_handling { record_index = idx; window = win_no });
          incr late_drops;
          late_events := !late_events + events;
          Hashtbl.replace late_drop_windows win_no ();
          match Hashtbl.find_opt table uarray with
          | Some (Ready r) when r.ready_window = win_no ->
              r.read <- true;
              note_consumed ~idx uarray
          | Some (Batch _ | Watermark _ | Segment _ | Ready _ | Group_mid _) ->
              violate (Mixed_window_inputs { record_index = idx })
          | None -> violate (Unknown_uarray { record_index = idx; id = uarray }))
      | Record.Correction { ts = _; uarray; win_no; gen } -> (
          if spec.late_policy <> 2 then
            violate (Undeclared_late_handling { record_index = idx; window = win_no });
          Hashtbl.replace corr_gens win_no
            (gen :: (match Hashtbl.find_opt corr_gens win_no with None -> [] | Some l -> l));
          (* A correction externalizes a window result exactly like an
             egress, but supersedes rather than duplicates the original:
             it neither bumps the egress count nor touches the delay
             accounting (freshness is judged on first emission). *)
          match Hashtbl.find_opt table uarray with
          | Some (Group_mid g) when g.mid_window = win_no && not g.egressed ->
              g.egressed <- true;
              note_consumed ~idx uarray
          | Some (Ready r) when r.ready_window = win_no && spec.window_ops = [] ->
              r.read <- true;
              note_consumed ~idx uarray
          | Some (Batch _ | Watermark _ | Segment _ | Ready _ | Group_mid _) ->
              violate (Egress_of_non_result { record_index = idx; id = uarray })
          | None -> violate (Unknown_uarray { record_index = idx; id = uarray })))
    records;
  (* Correction generations must be contiguous from 1 in emission order:
     a skipped, repeated, or reordered generation means the cloud-side
     merge would apply a different history than the TEE emitted. *)
  Hashtbl.iter
    (fun w gens ->
      List.iteri
        (fun i g ->
          if g <> i + 1 then
            violate (Correction_mismatch { window = w; expected_gen = i + 1; got_gen = g }))
        (List.rev gens))
    corr_gens;
  (* Final sweep. *)
  Hashtbl.iter
    (fun id prov ->
      match prov with
      | Batch b -> if not b.windowed then violate (Unprocessed_batch { id })
      | Watermark _ | Segment _ | Ready _ | Group_mid _ -> ())
    table;
  let windows_verified = ref 0 in
  let delays = ref [] and max_delay = ref 0 in
  (* Closing watermark of a window: the first (in record order) whose value
     covers the window end.  Records may interleave watermarks ahead of a
     window's stage records under parallel execution, so closing is decided
     here, not while scanning. *)
  let wms_in_order = List.rev !watermarks in
  let closing_wm_ts w =
    let win_end = (w * spec.window_slide) + spec.window_size in
    List.find_map (fun (value, ts) -> if value >= win_end then Some ts else None) wms_in_order
  in
  let session_mode = spec.session_gap <> None in
  Hashtbl.iter
    (fun w s ->
      let n_corr = List.length (corrections_of w) in
      (* Session windows close by inactivity gap, not by a spec-derivable
         watermark boundary, so the sweep judges exactly the sessions the
         log emitted (completeness across sessions has no static window
         grid to check against).  [Some None] = "closed, but no watermark
         timestamp to measure delay from". *)
      let closing =
        if session_mode then if s.egress_count > 0 || n_corr > 0 then Some None else None
        else Option.map Option.some (closing_wm_ts w)
      in
      match closing with
      | None -> () (* window still open at end of log: nothing to assert yet *)
      | Some wm_ts ->
          incr windows_verified;
          if s.egress_count = 0 && n_corr = 0 then begin
            (* A window named by a declared gap (or one whose whole
               content was declaredly dropped as late) may legitimately
               have shed all its remaining work: degradation, not
               violation. *)
            if not (Hashtbl.mem gap_windows w || Hashtbl.mem late_drop_windows w) then
              violate (Missing_egress { window = w })
          end
          else begin
            (* Every emission — the original egress and each correction —
               replays the whole window chain, so the op multiset scales
               with the emission count.  More replays than emissions is
               the retract-without-reemit signature: a window was
               reopened and re-evaluated, but the superseding result
               never left the TEE. *)
            let runs = n_corr + (if s.egress_count > 0 then 1 else 0) in
            let n_copies k = List.concat (List.init k (fun _ -> spec.window_ops)) in
            let expected = List.sort compare (n_copies runs) in
            let got = List.sort compare s.group_ops in
            if expected <> got then begin
              let wlen = List.length spec.window_ops in
              let glen = List.length got in
              if
                wlen > 0
                && glen mod wlen = 0
                && glen / wlen > runs
                && List.sort compare (n_copies (glen / wlen)) = got
              then
                violate
                  (Retraction_without_reemit { window = w; declared = runs; replayed = glen / wlen })
              else violate (Window_ops_mismatch { window = w; expected; got })
            end;
            let unread =
              List.filter
                (fun id ->
                  match Hashtbl.find_opt table id with
                  | Some (Ready r) -> not r.read
                  | Some (Batch _ | Watermark _ | Segment _ | Group_mid _) | None -> false)
                s.ready_ids
            in
            if unread <> [] then violate (Unprocessed_window_data { window = w; ids = unread });
            match (s.egress_ts, wm_ts) with
            | Some ets, Some wm_ts ->
                let d = ets - wm_ts in
                delays := (w, d) :: !delays;
                if d > !max_delay then max_delay := d;
                (match spec.freshness_bound with
                | Some bound when d > bound -> violate (Stale_result { window = w; delay = d; bound })
                | Some _ | None -> ())
            | _, _ -> ()
          end)
    windows;
  (* Misleading hints: successor consumed before its predecessor. *)
  let misleading =
    List.fold_left
      (fun acc (pred, succ) ->
        match (Hashtbl.find_opt consumption_seq pred, Hashtbl.find_opt consumption_seq succ) with
        | Some p, Some s when s < p -> acc + 1
        | _, _ -> acc)
      0 !hints_seen
  in
  (* Sequence-continuity sweep: every hole in a stream's covered range
     [min, max] must be explained by an ingress record or a declared gap.
     Loss before the first or after the last observed frame of a stream is
     invisible here (nothing anchors the range); DESIGN.md documents the
     limitation. *)
  let streams_seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter (fun s _ -> Hashtbl.replace streams_seen s ()) ingress_seqs;
  Hashtbl.iter (fun s _ -> Hashtbl.replace streams_seen s ()) gap_seqs;
  let lost_batches = ref 0 and expected_batches = ref 0 in
  let stream_ids = Hashtbl.fold (fun s () acc -> s :: acc) streams_seen [] in
  List.iter
    (fun stream ->
      let ing = seq_set ingress_seqs stream and gap = seq_set gap_seqs stream in
      let bounds tbl acc =
        Hashtbl.fold (fun seq () (lo, hi) -> (min lo seq, max hi seq)) tbl acc
      in
      let lo, hi = bounds ing (bounds gap (max_int, min_int)) in
      if lo <= hi then begin
        expected_batches := !expected_batches + (hi - lo + 1);
        for seq = lo to hi do
          let ingested = Hashtbl.mem ing seq and declared = Hashtbl.mem gap seq in
          if declared && not ingested then incr lost_batches
          else if (not ingested) && not declared then
            violate (Undeclared_loss { stream; seq })
        done
      end)
    (List.sort compare stream_ids);
  let loss_fraction =
    if !expected_batches = 0 then 0.0
    else float_of_int !lost_batches /. float_of_int !expected_batches
  in
  {
    violations = List.rev !violations;
    misleading_hints = misleading;
    windows_verified = !windows_verified;
    records_replayed = List.length records;
    max_delay = !max_delay;
    delays = List.rev !delays;
    declared_gaps = !declared_gaps;
    gap_events = !gap_events;
    lost_batches = !lost_batches;
    loss_fraction;
    degraded_windows =
      (let degraded = Hashtbl.copy gap_windows in
       Hashtbl.iter (fun w () -> Hashtbl.replace degraded w ()) late_drop_windows;
       List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) degraded []));
    late_drops = !late_drops;
    late_events = !late_events;
    corrections = Hashtbl.fold (fun _ gens acc -> acc + List.length gens) corr_gens 0;
    corrected_windows =
      List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) corr_gens []);
  }

let pp_report fmt r =
  Format.fprintf fmt "replayed %d records, %d windows verified, max delay %d, %d misleading hints@."
    r.records_replayed r.windows_verified r.max_delay r.misleading_hints;
  if r.declared_gaps > 0 then
    Format.fprintf fmt
      "degradation: %d declared gap(s), %d batch(es) lost (%.1f%% of expected), ~%d event(s); \
       degraded windows: %s@."
      r.declared_gaps r.lost_batches (100.0 *. r.loss_fraction) r.gap_events
      (String.concat "," (List.map string_of_int r.degraded_windows));
  if r.late_drops > 0 then
    Format.fprintf fmt "late data: %d declared drop(s), ~%d event(s) shed past the watermark@."
      r.late_drops r.late_events;
  if r.corrections > 0 then
    Format.fprintf fmt "late data: %d correction(s) re-emitted over window(s) %s@." r.corrections
      (String.concat "," (List.map string_of_int r.corrected_windows));
  if r.violations = [] then Format.fprintf fmt "verdict: OK@."
  else begin
    Format.fprintf fmt "verdict: %d VIOLATION(S)@." (List.length r.violations);
    List.iter (fun v -> Format.fprintf fmt "  - %a@." pp_violation v) r.violations
  end

(* --- multi-epoch stitching ---------------------------------------------

   A recovered run presents one (manifest, batches) segment per boot
   epoch.  Stitching proves three cross-epoch properties before handing
   the concatenated records to the ordinary replay above:

   - the epoch chain is contiguous from 0 (a dropped epoch would be the
     place to hide a whole boot's worth of emissions);
   - each restart resumed from the *latest* checkpoint the presented
     log attests (an authentic-but-stale blob, or "this was a fresh
     run", is a rollback);
   - no window result was externalized in two different epochs (the
     exactly-once guarantee a replayed suffix could otherwise break).

   Trimming: a crashed epoch may have flushed batches after its last
   checkpoint; the next epoch regenerates them byte-identically.  The
   successor's authenticated [resume_batch_seq] says where the cut is,
   so duplicates between a crashed tail and its regeneration are
   resolved by construction, not by content comparison.  The rollback
   check deliberately runs on the *untrimmed* prior batches: checkpoint
   records past the claimed resume point are exactly the evidence of a
   rollback. *)

let verify_epochs ~key spec segments =
  let epoch_violations = ref [] in
  let violate v = epoch_violations := v :: !epoch_violations in
  let opened =
    List.map (fun (sealed, batches) -> (Epoch.open_ ~key sealed, batches)) segments
    |> List.sort (fun (a, _) (b, _) -> compare a.Epoch.epoch b.Epoch.epoch)
  in
  List.iteri
    (fun i (m, _) ->
      if m.Epoch.epoch <> i then violate (Missing_epoch { expected = i; got = m.Epoch.epoch }))
    opened;
  let arr = Array.of_list opened in
  let n = Array.length arr in
  let all_records =
    Array.map (fun (m, batches) -> (m, List.concat_map (fun b -> Log.open_batch ~key b) batches)) arr
  in
  (* Rollback: each epoch after the first must resume from the newest
     checkpoint attested by everything that came before it. *)
  let max_ckpt = ref (-1) in
  Array.iteri
    (fun i (m, records) ->
      if i > 0 && m.Epoch.resumed_from < !max_ckpt then
        violate
          (Checkpoint_rollback
             { epoch = m.Epoch.epoch; resumed_from = m.Epoch.resumed_from; latest = !max_ckpt });
      List.iter
        (function
          | Record.Checkpoint { seq; _ } -> if seq > !max_ckpt then max_ckpt := seq
          | _ -> ())
        records)
    all_records;
  (* Trim each epoch's batches to the earliest resume point of any later
     epoch (not just its immediate successor: a later fresh restart
     resuming at batch 0 invalidates every prior epoch's stream, or the
     stitch would carry overlapping batch ranges).  Re-open only the
     retained ones for the stitched replay. *)
  let retained =
    Array.mapi
      (fun i (m, batches) ->
        let limit = ref max_int in
        for j = i + 1 to n - 1 do
          limit := min !limit (fst arr.(j)).Epoch.resume_batch_seq
        done;
        (m, List.filter (fun b -> b.Log.seq < !limit) batches))
      arr
  in
  let retained_records =
    Array.map (fun (m, batches) -> (m, List.concat_map (fun b -> Log.open_batch ~key b) batches)) retained
  in
  (* Exactly-once across the restart gap: a window may only ever leave
     the TEE in one epoch of the retained stream. *)
  let emitted : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (m, records) ->
      List.iter
        (function
          | Record.Egress { win_no; _ } -> (
              match Hashtbl.find_opt emitted win_no with
              | Some e0 when e0 <> m.Epoch.epoch ->
                  violate
                    (Duplicate_window_across_epochs
                       { window = win_no; first_epoch = e0; second_epoch = m.Epoch.epoch })
              | Some _ -> ()
              | None -> Hashtbl.replace emitted win_no m.Epoch.epoch)
          | _ -> ())
        records)
    retained_records;
  let stitched = List.concat_map snd (Array.to_list retained_records) in
  let base = verify spec stitched in
  { base with violations = List.rev !epoch_violations @ base.violations }

(* --- fleet-scope verification ------------------------------------------

   The fleet dimension adds one question per partition — "whose epoch
   chains may be stitched into one?" — and two fleet-wide invariants:
   every partition of every window egressed exactly once, somewhere.

   Stitching authority is the sealed handoff manifest: donor and
   recipient fragments are joined into one chain (then judged by
   [verify_epochs], independently per chain so one node's violation
   cannot taint another's verdict) only where a manifest names that
   exact donor epoch, recipient, and resume coordinates, all
   cross-checked against both logs.  Fragments left unlinked are judged
   alone — a recipient chain starting past epoch 0 then fails chain
   contiguity on its own — and any window egressed by two unlinked
   chains is a cross-edge duplicate: precisely the double-ingestion an
   omitted manifest would otherwise hide. *)

type edge_chains = {
  edge : int;
  chains : (int * (Epoch.sealed * Log.batch list) list) list;
}

type chain_report = { cr_partition : int; cr_edges : int list; cr_report : report }

type fleet_report = {
  fleet_violations : violation list;
  chain_reports : chain_report list;
  partitions_expected : int;
  partitions_present : int;
  fleet_windows : int;
  handoffs_verified : int;
}

let fleet_ok fr =
  fr.fleet_violations = [] && List.for_all (fun c -> ok c.cr_report) fr.chain_reports

(* One fragment: the contiguous run of boot epochs a single edge
   executed for one partition. *)
type fragment = {
  f_edge : int;
  f_segs : (Epoch.sealed * Log.batch list) list;
  f_manifests : Epoch.manifest list; (* opened, epoch-ascending *)
  f_first : int;
  f_last : int;
}

(* A chain under assembly: fragments joined by valid handoff manifests. *)
type group = {
  mutable g_frags : fragment list; (* chain order, oldest first *)
  mutable g_last : int; (* newest epoch in the chain *)
  mutable g_last_edge : int;
}

let records_of_segs ~key segs =
  List.concat_map (fun (_, batches) -> List.concat_map (fun b -> Log.open_batch ~key b) batches) segs

let verify_fleet ~key spec ~partitions ~windows ~edges ~handoffs =
  if partitions <= 0 then invalid_arg "Verifier.verify_fleet: partitions must be positive";
  let fleet_violations = ref [] in
  let violate v = fleet_violations := v :: !fleet_violations in
  let handoffs = List.map (fun s -> Handoff.open_ ~key s) handoffs in
  let handoffs_verified = ref 0 in
  let chain_reports = ref [] in
  let partitions_present = ref 0 in
  for p = 0 to partitions - 1 do
    let frags =
      List.concat_map
        (fun ec ->
          List.filter_map
            (fun (part, segs) ->
              if part <> p || segs = [] then None
              else begin
                let ms =
                  List.map (fun (s, _) -> Epoch.open_ ~key s) segs
                  |> List.sort (fun a b -> compare a.Epoch.epoch b.Epoch.epoch)
                in
                let f_first = (List.hd ms).Epoch.epoch in
                let f_last = (List.hd (List.rev ms)).Epoch.epoch in
                Some { f_edge = ec.edge; f_segs = segs; f_manifests = ms; f_first; f_last }
              end)
            ec.chains)
        edges
      |> List.sort (fun a b -> compare (a.f_first, a.f_edge) (b.f_first, b.f_edge))
    in
    if frags = [] then
      violate
        (Fleet_partition_loss { partition = p; missing_windows = windows; total_windows = windows })
    else begin
      incr partitions_present;
      (* Assemble chains: a fragment continues the open chain only under
         a valid manifest; otherwise it opens a chain of its own. *)
      let groups = ref [] in (* newest group first *)
      List.iter
        (fun f ->
          let continued =
            match !groups with
            | g :: _ when f.f_first = g.g_last + 1 -> (
                match
                  List.find_opt
                    (fun (h : Handoff.manifest) ->
                      h.Handoff.partition = p && h.Handoff.donor_epoch = g.g_last
                      && h.Handoff.recipient = f.f_edge)
                    handoffs
                with
                | Some h ->
                    let first_m = List.hd f.f_manifests in
                    let problems = ref [] in
                    if h.Handoff.donor <> g.g_last_edge then
                      problems := "manifest names a different donor edge" :: !problems;
                    if first_m.Epoch.resumed_from <> h.Handoff.resume_ckpt then
                      problems := "recipient resumed from a different checkpoint" :: !problems;
                    if first_m.Epoch.resume_batch_seq <> h.Handoff.resume_batch_seq then
                      problems := "recipient resumed at a different batch seq" :: !problems;
                    let donor_records =
                      records_of_segs ~key (List.concat_map (fun fr -> fr.f_segs) g.g_frags)
                    in
                    if
                      not
                        (List.exists
                           (function
                             | Record.Checkpoint { seq; _ } -> seq = h.Handoff.resume_ckpt
                             | _ -> false)
                           donor_records)
                    then problems := "donor log attests no such checkpoint" :: !problems;
                    if !problems = [] then begin
                      incr handoffs_verified;
                      true
                    end
                    else begin
                      violate
                        (Handoff_mismatch
                           {
                             partition = p;
                             donor = h.Handoff.donor;
                             recipient = f.f_edge;
                             reason = String.concat "; " (List.rev !problems);
                           });
                      (* The stitch claim exists; link so the chain is
                         judged as the presentation intends — the
                         mismatch violation already fails the fleet. *)
                      true
                    end
                | None -> false)
            | _ -> false
          in
          match !groups with
          | g :: _ when continued ->
              g.g_frags <- g.g_frags @ [ f ];
              g.g_last <- f.f_last;
              g.g_last_edge <- f.f_edge
          | g :: _ ->
              (* A second chain for the same partition: dual execution
                 with no (valid) stitching authority. *)
              (match
                 List.find_opt
                   (fun (h : Handoff.manifest) ->
                     h.Handoff.partition = p && h.Handoff.recipient = f.f_edge)
                   handoffs
               with
              | Some h ->
                  violate
                    (Handoff_mismatch
                       {
                         partition = p;
                         donor = h.Handoff.donor;
                         recipient = f.f_edge;
                         reason = "recipient chain does not resume at donor_epoch + 1";
                       })
              | None ->
                  violate
                    (Handoff_unattested
                       { partition = p; donor = g.g_last_edge; recipient = f.f_edge }));
              groups :=
                { g_frags = [ f ]; g_last = f.f_last; g_last_edge = f.f_edge } :: !groups
          | [] ->
              groups :=
                { g_frags = [ f ]; g_last = f.f_last; g_last_edge = f.f_edge } :: !groups)
        frags;
      let groups = List.rev !groups in
      (* Judge each chain independently. *)
      let degraded = Hashtbl.create 8 in
      List.iter
        (fun g ->
          let segs = List.concat_map (fun fr -> fr.f_segs) g.g_frags in
          let r = verify_epochs ~key spec segs in
          List.iter (fun w -> Hashtbl.replace degraded w ()) r.degraded_windows;
          chain_reports :=
            {
              cr_partition = p;
              cr_edges = List.map (fun fr -> fr.f_edge) g.g_frags;
              cr_report = r;
            }
            :: !chain_reports)
        groups;
      (* Fleet-scope exactly-once: each window of the partition must
         leave some edge exactly once across chains.  Within one chain,
         [verify_epochs] has already resolved checkpoint-tail replays by
         manifest-authorized trimming; across chains there is no such
         authority, so raw overlap is a duplicate. *)
      let emitted : (int, int) Hashtbl.t = Hashtbl.create 32 in (* window -> edge *)
      List.iter
        (fun g ->
          let seen_here = Hashtbl.create 32 in
          List.iter
            (fun fr ->
              List.iter
                (function
                  | Record.Egress { win_no; _ } when not (Hashtbl.mem seen_here win_no) -> (
                      Hashtbl.replace seen_here win_no ();
                      match Hashtbl.find_opt emitted win_no with
                      | Some e0 ->
                          violate
                            (Cross_edge_duplicate
                               {
                                 partition = p;
                                 window = win_no;
                                 first_edge = e0;
                                 second_edge = fr.f_edge;
                               })
                      | None -> Hashtbl.replace emitted win_no fr.f_edge)
                  | _ -> ())
                (records_of_segs ~key fr.f_segs))
            g.g_frags)
        groups;
      (* Fleet-scope completeness: windows egressed nowhere and covered
         by no declared gap are undeclared loss at fleet scope. *)
      let missing = ref 0 in
      for w = 0 to windows - 1 do
        if not (Hashtbl.mem emitted w) && not (Hashtbl.mem degraded w) then incr missing
      done;
      if !missing > 0 then
        violate
          (Fleet_partition_loss
             { partition = p; missing_windows = !missing; total_windows = windows })
    end
  done;
  {
    fleet_violations = List.rev !fleet_violations;
    chain_reports = List.rev !chain_reports;
    partitions_expected = partitions;
    partitions_present = !partitions_present;
    fleet_windows = windows;
    handoffs_verified = !handoffs_verified;
  }

let pp_fleet_report fmt fr =
  Format.fprintf fmt "fleet: %d/%d partition(s) present over %d window(s), %d handoff(s) verified@."
    fr.partitions_present fr.partitions_expected fr.fleet_windows fr.handoffs_verified;
  List.iter
    (fun c ->
      Format.fprintf fmt "partition %d via edge(s) %s: %s@." c.cr_partition
        (String.concat "->" (List.map string_of_int c.cr_edges))
        (if ok c.cr_report then "OK"
         else Printf.sprintf "%d violation(s)" (List.length c.cr_report.violations));
      List.iter
        (fun v -> Format.fprintf fmt "  - %a@." pp_violation v)
        c.cr_report.violations)
    fr.chain_reports;
  if fr.fleet_violations = [] then
    (if List.for_all (fun c -> ok c.cr_report) fr.chain_reports then
       Format.fprintf fmt "fleet verdict: OK@."
     else Format.fprintf fmt "fleet verdict: CHAIN VIOLATION(S)@.")
  else begin
    Format.fprintf fmt "fleet verdict: %d FLEET VIOLATION(S)@."
      (List.length fr.fleet_violations);
    List.iter (fun v -> Format.fprintf fmt "  - %a@." pp_violation v) fr.fleet_violations
  end

(* --- tenant-scope verification -----------------------------------------

   Multi-tenant consolidation (one enclave, N pipelines) keeps the
   verifier's unit of judgment the single tenant: each tenant's audit
   sub-stream is MAC'd under its own KDF-derived key and replayed through
   the ordinary [verify] completely independently, so one tenant's
   violation — or an unverifiable stream — never taints another's
   verdict.  There is deliberately no cross-tenant invariant here: the
   in-enclave namespace guard (Dataplane.Cross_tenant_ref) is what keeps
   dataflow from crossing tenants, and a guard failure aborts the run
   long before any audit bytes reach us. *)

let tenant_key ~base tenant =
  if tenant = 0 then base
  else Sbt_crypto.Kdf.derive ~master:base ~label:(Printf.sprintf "tenant-%d:egress" tenant) 16

type tenant_chain = { tenant : int; t_spec : spec; t_audit : Log.batch list }
type tenant_report = { tn_tenant : int; tn_report : report }

type tenants_report = {
  tenant_reports : tenant_report list;
  tenants_total : int;
  tenants_clean : int;
  tenants_degraded : int;
  tenants_violating : int;
}

let tenants_ok tr = List.for_all (fun t -> ok t.tn_report) tr.tenant_reports

let empty_report violations =
  {
    violations;
    misleading_hints = 0;
    windows_verified = 0;
    records_replayed = 0;
    max_delay = 0;
    delays = [];
    declared_gaps = 0;
    gap_events = 0;
    lost_batches = 0;
    loss_fraction = 0.0;
    degraded_windows = [];
    late_drops = 0;
    late_events = 0;
    corrections = 0;
    corrected_windows = [];
  }

let verify_tenants ~key chains =
  let reports =
    List.map
      (fun c ->
        let k = tenant_key ~base:key c.tenant in
        let report =
          match List.concat_map (fun b -> Log.open_batch ~key:k b) c.t_audit with
          | records -> verify c.t_spec records
          | exception Invalid_argument reason ->
              empty_report [ Tenant_log_unverifiable { tenant = c.tenant; reason } ]
        in
        { tn_tenant = c.tenant; tn_report = report })
      (List.sort (fun a b -> compare a.tenant b.tenant) chains)
  in
  let clean =
    List.length
      (List.filter (fun t -> ok t.tn_report && t.tn_report.declared_gaps = 0) reports)
  in
  let degraded =
    List.length
      (List.filter (fun t -> ok t.tn_report && t.tn_report.declared_gaps > 0) reports)
  in
  let violating = List.length (List.filter (fun t -> not (ok t.tn_report)) reports) in
  {
    tenant_reports = reports;
    tenants_total = List.length reports;
    tenants_clean = clean;
    tenants_degraded = degraded;
    tenants_violating = violating;
  }

let pp_tenants_report fmt tr =
  Format.fprintf fmt "tenants: %d total — %d clean, %d degraded, %d violating@."
    tr.tenants_total tr.tenants_clean tr.tenants_degraded tr.tenants_violating;
  List.iter
    (fun t ->
      let r = t.tn_report in
      if ok r then
        if r.declared_gaps > 0 then
          Format.fprintf fmt "tenant %d: DEGRADED (%.1f%% declared loss over %d window(s))@."
            t.tn_tenant (100.0 *. r.loss_fraction)
            (List.length r.degraded_windows)
        else Format.fprintf fmt "tenant %d: OK (%d window(s))@." t.tn_tenant r.windows_verified
      else begin
        Format.fprintf fmt "tenant %d: %d VIOLATION(S)@." t.tn_tenant (List.length r.violations);
        List.iter (fun v -> Format.fprintf fmt "  - %a@." pp_violation v) r.violations
      end)
    tr.tenant_reports
