(* Boot-epoch manifests.

   Every boot of the data plane — the initial one and each supervised
   restart — seals a manifest naming its epoch number, the checkpoint
   it resumed from (-1 for a fresh start) and the audit-batch sequence
   number it resumes at.  Manifests travel beside the audit stream,
   not inside it, so the audit bytes of a recovered run stay identical
   to an uninterrupted one; the MAC (device key) is what lets the
   verifier trust the stitching metadata. *)

let magic = "SBTE1"

type manifest = { epoch : int; resumed_from : int; resume_batch_seq : int }
type sealed = { payload : bytes; tag : bytes }

let i64_to buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let i64_of b off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !v

let seal ~key m =
  let buf = Buffer.create 32 in
  Buffer.add_string buf magic;
  i64_to buf (Int64.of_int m.epoch);
  i64_to buf (Int64.of_int m.resumed_from);
  i64_to buf (Int64.of_int m.resume_batch_seq);
  let payload = Buffer.to_bytes buf in
  { payload; tag = Sbt_crypto.Hmac.mac ~key payload }

let open_ ~key s =
  if not (Sbt_crypto.Hmac.verify ~key ~tag:s.tag s.payload) then
    invalid_arg "Epoch.open_: MAC verification failed";
  if
    Bytes.length s.payload <> String.length magic + 24
    || Bytes.sub_string s.payload 0 (String.length magic) <> magic
  then invalid_arg "Epoch.open_: malformed manifest";
  let base = String.length magic in
  {
    epoch = Int64.to_int (i64_of s.payload base);
    resumed_from = Int64.to_int (i64_of s.payload (base + 8));
    resume_batch_seq = Int64.to_int (i64_of s.payload (base + 16));
  }
