type gap_reason = Link_loss | Corrupt_ingress | Smc_unavailable | Pool_pressure

let gap_reason_tag = function
  | Link_loss -> 0
  | Corrupt_ingress -> 1
  | Smc_unavailable -> 2
  | Pool_pressure -> 3

let gap_reason_of_tag = function
  | 0 -> Link_loss
  | 1 -> Corrupt_ingress
  | 2 -> Smc_unavailable
  | 3 -> Pool_pressure
  | t -> invalid_arg (Printf.sprintf "Record.gap_reason_of_tag: %d" t)

let gap_reason_name = function
  | Link_loss -> "link-loss"
  | Corrupt_ingress -> "corrupt-ingress"
  | Smc_unavailable -> "smc-unavailable"
  | Pool_pressure -> "pool-pressure"

type t =
  | Ingress of { ts : int; uarray : int; stream : int; seq : int }
  | Ingress_watermark of { ts : int; id : int; value : int }
  | Windowing of { ts : int; data_in : int; win_no : int; data_out : int }
  | Execution of { ts : int; op : int; inputs : int list; outputs : int list; hints : int64 list }
  | Egress of { ts : int; uarray : int; win_no : int }
  | Gap of { ts : int; stream : int; seq : int; events : int; windows : int list; reason : gap_reason }
  | Checkpoint of { ts : int; seq : int; watermark : int }
  | Fused of {
      ts : int;
      ops : int list;
      params : bytes;
      chain : bytes;
      inputs : int list;
      outputs : int list;
      hints : int64 list;
    }
  | Late_drop of { ts : int; uarray : int; win_no : int; events : int }
  | Correction of { ts : int; uarray : int; win_no : int; gen : int }

(* The composite record's chain hash commits to the ordered op ids AND
   their parameter blob: reordering the chain, swapping an op, or editing
   a parameter all change the digest.  Truncated to 16 bytes — the hash
   rides in every fused record, and 128 bits is ample for a second
   preimage the normal world would have to find. *)
let chain_hash ~ops ~params =
  let b = Buffer.create (16 + (2 * List.length ops) + Bytes.length params) in
  Buffer.add_string b "sbt-fused-chain1";
  List.iter
    (fun op ->
      Buffer.add_char b (Char.chr (op land 0xff));
      Buffer.add_char b (Char.chr ((op lsr 8) land 0xff)))
    ops;
  Buffer.add_bytes b params;
  Bytes.sub (Sbt_crypto.Sha256.digest (Buffer.to_bytes b)) 0 16

let pp fmt = function
  | Ingress { ts; uarray; stream; seq } ->
      Format.fprintf fmt "ts=%d INGRESS data=%d stream=%d seq=%d" ts uarray stream seq
  | Ingress_watermark { ts; id; value } ->
      Format.fprintf fmt "ts=%d INGRESS data=%d (watermark=%d)" ts id value
  | Windowing { ts; data_in; win_no; data_out } ->
      Format.fprintf fmt "ts=%d WND data_in=%d win_no=%d data_out=%d" ts data_in win_no data_out
  | Execution { ts; op; inputs; outputs; hints } ->
      let ints l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt "ts=%d EXEC op=%d in=%s out=%s hints=%d" ts op (ints inputs)
        (ints outputs) (List.length hints)
  | Egress { ts; uarray; win_no } ->
      Format.fprintf fmt "ts=%d EGRESS data=%d win_no=%d" ts uarray win_no
  | Gap { ts; stream; seq; events; windows; reason } ->
      Format.fprintf fmt "ts=%d GAP stream=%d seq=%d events=%d windows=%s reason=%s" ts stream
        seq events
        (String.concat "," (List.map string_of_int windows))
        (gap_reason_name reason)
  | Checkpoint { ts; seq; watermark } ->
      Format.fprintf fmt "ts=%d CKPT seq=%d watermark=%d" ts seq watermark
  | Fused { ts; ops; inputs; outputs; hints; _ } ->
      let ints l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt "ts=%d FUSED ops=%s in=%s out=%s hints=%d" ts (ints ops) (ints inputs)
        (ints outputs) (List.length hints)
  | Late_drop { ts; uarray; win_no; events } ->
      Format.fprintf fmt "ts=%d LATE-DROP data=%d win_no=%d events=%d" ts uarray win_no events
  | Correction { ts; uarray; win_no; gen } ->
      Format.fprintf fmt "ts=%d CORRECTION data=%d win_no=%d gen=%d" ts uarray win_no gen

let tag = function
  | Ingress _ -> 0
  | Ingress_watermark _ -> 1
  | Windowing _ -> 2
  | Execution _ -> 3
  | Egress _ -> 4
  | Gap _ -> 5
  | Checkpoint _ -> 6
  | Fused _ -> 7
  | Late_drop _ -> 8
  | Correction _ -> 9

let ts_of = function
  | Ingress { ts; _ } | Ingress_watermark { ts; _ } | Windowing { ts; _ }
  | Execution { ts; _ } | Egress { ts; _ } | Gap { ts; _ } | Checkpoint { ts; _ }
  | Fused { ts; _ } | Late_drop { ts; _ } | Correction { ts; _ } ->
      ts

let encode_row buf r =
  Buffer.add_char buf (Char.unsafe_chr (tag r));
  let u32 v =
    for i = 0 to 3 do
      Buffer.add_char buf (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
    done
  in
  let u16 v =
    Buffer.add_char buf (Char.unsafe_chr (v land 0xFF));
    Buffer.add_char buf (Char.unsafe_chr ((v lsr 8) land 0xFF))
  in
  match r with
  | Ingress { ts; uarray; stream; seq } ->
      u32 ts;
      u32 uarray;
      u16 stream;
      u32 seq
  | Ingress_watermark { ts; id; value } ->
      u32 ts;
      u32 id;
      u32 value
  | Windowing { ts; data_in; win_no; data_out } ->
      u32 ts;
      u32 data_in;
      u16 win_no;
      u32 data_out
  | Execution { ts; op; inputs; outputs; hints } ->
      u32 ts;
      u16 op;
      u16 (List.length inputs);
      List.iter u32 inputs;
      u16 (List.length outputs);
      List.iter u32 outputs;
      u16 (List.length hints);
      List.iter
        (fun h ->
          u32 (Int64.to_int (Int64.logand h 0xFFFFFFFFL));
          u32 (Int64.to_int (Int64.shift_right_logical h 32)))
        hints
  | Egress { ts; uarray; win_no } ->
      u32 ts;
      u32 uarray;
      u16 win_no
  | Gap { ts; stream; seq; events; windows; reason } ->
      u32 ts;
      u16 stream;
      u32 seq;
      u32 events;
      u16 (gap_reason_tag reason);
      u16 (List.length windows);
      List.iter u32 windows
  | Checkpoint { ts; seq; watermark } ->
      u32 ts;
      u32 seq;
      u32 watermark
  | Fused { ts; ops; params; chain; inputs; outputs; hints } ->
      u32 ts;
      u16 (List.length ops);
      List.iter u16 ops;
      u16 (Bytes.length params);
      Buffer.add_bytes buf params;
      u16 (Bytes.length chain);
      Buffer.add_bytes buf chain;
      u16 (List.length inputs);
      List.iter u32 inputs;
      u16 (List.length outputs);
      List.iter u32 outputs;
      u16 (List.length hints);
      List.iter
        (fun h ->
          u32 (Int64.to_int (Int64.logand h 0xFFFFFFFFL));
          u32 (Int64.to_int (Int64.shift_right_logical h 32)))
        hints
  | Late_drop { ts; uarray; win_no; events } ->
      u32 ts;
      u32 uarray;
      u16 win_no;
      u32 events
  | Correction { ts; uarray; win_no; gen } ->
      u32 ts;
      u32 uarray;
      u16 win_no;
      u16 gen

let decode_row data pos =
  let byte () =
    if !pos >= Bytes.length data then invalid_arg "Record.decode_row: truncated";
    let c = Char.code (Bytes.get data !pos) in
    incr pos;
    c
  in
  let u32 () =
    let a = byte () and b = byte () and c = byte () and d = byte () in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)
  in
  let u16 () =
    let a = byte () and b = byte () in
    a lor (b lsl 8)
  in
  match byte () with
  | 0 ->
      let ts = u32 () in
      let uarray = u32 () in
      let stream = u16 () in
      let seq = u32 () in
      Ingress { ts; uarray; stream; seq }
  | 1 ->
      let ts = u32 () in
      let id = u32 () in
      let value = u32 () in
      Ingress_watermark { ts; id; value }
  | 2 ->
      let ts = u32 () in
      let data_in = u32 () in
      let win_no = u16 () in
      let data_out = u32 () in
      Windowing { ts; data_in; win_no; data_out }
  | 3 ->
      let ts = u32 () in
      let op = u16 () in
      let n_in = u16 () in
      let inputs = List.init n_in (fun _ -> u32 ()) in
      let n_out = u16 () in
      let outputs = List.init n_out (fun _ -> u32 ()) in
      let n_h = u16 () in
      let hints =
        List.init n_h (fun _ ->
            let lo = u32 () in
            let hi = u32 () in
            Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))
      in
      Execution { ts; op; inputs; outputs; hints }
  | 4 ->
      let ts = u32 () in
      let uarray = u32 () in
      let win_no = u16 () in
      Egress { ts; uarray; win_no }
  | 5 ->
      let ts = u32 () in
      let stream = u16 () in
      let seq = u32 () in
      let events = u32 () in
      let reason = gap_reason_of_tag (u16 ()) in
      let n = u16 () in
      let windows = List.init n (fun _ -> u32 ()) in
      Gap { ts; stream; seq; events; windows; reason }
  | 6 ->
      let ts = u32 () in
      let seq = u32 () in
      let watermark = u32 () in
      Checkpoint { ts; seq; watermark }
  | 7 ->
      let bytes_n n =
        if !pos + n > Bytes.length data then invalid_arg "Record.decode_row: truncated";
        let b = Bytes.sub data !pos n in
        pos := !pos + n;
        b
      in
      let ts = u32 () in
      let n_ops = u16 () in
      let ops = List.init n_ops (fun _ -> u16 ()) in
      let params = bytes_n (u16 ()) in
      let chain = bytes_n (u16 ()) in
      let n_in = u16 () in
      let inputs = List.init n_in (fun _ -> u32 ()) in
      let n_out = u16 () in
      let outputs = List.init n_out (fun _ -> u32 ()) in
      let n_h = u16 () in
      let hints =
        List.init n_h (fun _ ->
            let lo = u32 () in
            let hi = u32 () in
            Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))
      in
      Fused { ts; ops; params; chain; inputs; outputs; hints }
  | 8 ->
      let ts = u32 () in
      let uarray = u32 () in
      let win_no = u16 () in
      let events = u32 () in
      Late_drop { ts; uarray; win_no; events }
  | 9 ->
      let ts = u32 () in
      let uarray = u32 () in
      let win_no = u16 () in
      let gen = u16 () in
      Correction { ts; uarray; win_no; gen }
  | t -> invalid_arg (Printf.sprintf "Record.decode_row: bad tag %d" t)

let encode_all records =
  let buf = Buffer.create 4096 in
  Varint.write_unsigned buf (Int64.of_int (List.length records));
  List.iter (encode_row buf) records;
  Buffer.to_bytes buf

let decode_all data =
  let pos = ref 0 in
  let n = Int64.to_int (Varint.read_unsigned data pos) in
  List.init n (fun _ -> decode_row data pos)
