(** Attested partition-handoff manifests for cross-edge failover.

    A handoff moves a key partition from a dead edge (the donor) to a
    survivor (the recipient), which resumes from the partition's newest
    durable checkpoint.  The manifest is the signed stitching authority
    the fleet verifier demands before it will treat donor and recipient
    epoch chains as one: it binds the partition, the donor and its last
    executed epoch, the recipient, and the resume coordinates the
    recipient's first epoch manifest must repeat ({!Verifier.verify_fleet}
    cross-checks all of them against both logs).  Without a valid
    manifest the chains are judged independently, and any overlap in
    egressed windows surfaces as a cross-edge duplicate violation — a
    re-ingestion cannot hide by discarding its paperwork. *)

type manifest = {
  partition : int;  (** the key partition being handed off *)
  donor : int;  (** edge declared dead *)
  donor_epoch : int;
      (** last boot epoch the donor executed; the recipient's first
          epoch must be [donor_epoch + 1] *)
  recipient : int;  (** surviving edge adopting the partition *)
  resume_ckpt : int;  (** checkpoint sequence the recipient resumes from *)
  resume_cursor : int;  (** replay-buffer frame index re-ingestion starts at *)
  resume_batch_seq : int;
      (** audit-batch sequence the recipient's epoch resumes at — must
          equal the recipient's first epoch manifest's field *)
}

type sealed = { payload : bytes; tag : bytes }

val seal : key:bytes -> manifest -> sealed

val open_ : key:bytes -> sealed -> manifest
(** Raises [Invalid_argument] on a bad MAC or malformed payload. *)
