(* Column streams. Every record contributes its tag; other columns are
   appended to only by the record kinds that have the field.  Decoding
   replays tags first, then pulls from each column in the same order. *)

type columns = {
  tags : Buffer.t; (* byte per record -> Huffman *)
  ts : Buffer.t; (* delta varint *)
  ops : Buffer.t; (* byte per execution -> Huffman *)
  counts : Buffer.t; (* bytes (in/out/hint counts) -> Huffman *)
  new_ids : Buffer.t; (* ids at creation (near-monotonic) - delta varint *)
  used_ids : Buffer.t; (* ids at consumption - delta varint, own cursor *)
  win_nos : Buffer.t; (* delta varint *)
  values : Buffer.t; (* delta varint (watermark values, gap event counts) *)
  hints : Buffer.t; (* (pred, succ) id pairs, delta varints *)
  streams : Buffer.t; (* ingress/gap stream ids - delta varint *)
  seqs : Buffer.t; (* ingress/gap frame seqs (near-monotonic) - delta varint *)
  blobs : Buffer.t; (* length-prefixed opaque bytes (fused params + chain hashes) *)
}

let split records =
  let c =
    {
      tags = Buffer.create 256;
      ts = Buffer.create 256;
      ops = Buffer.create 64;
      counts = Buffer.create 64;
      new_ids = Buffer.create 256;
      used_ids = Buffer.create 256;
      win_nos = Buffer.create 64;
      values = Buffer.create 64;
      hints = Buffer.create 64;
      streams = Buffer.create 64;
      seqs = Buffer.create 64;
      blobs = Buffer.create 64;
    }
  in
  let prev_ts = ref 0 and prev_id = ref 0 and prev_win = ref 0 and prev_val = ref 0 in
  let prev_hint = ref 0 in
  let put_hint h =
    (* Hints pack two 32-bit ids; both are near the current id cursor, so
       encode each as a delta against a dedicated cursor. *)
    let pred = Int64.to_int (Int64.shift_right_logical h 32) in
    let succ = Int64.to_int (Int64.logand h 0xFFFFFFFFL) in
    Varint.write_signed c.hints (Int64.of_int (pred - !prev_hint));
    prev_hint := pred;
    Varint.write_signed c.hints (Int64.of_int (succ - !prev_hint));
    prev_hint := succ
  in
  let put_ts v =
    Varint.write_signed c.ts (Int64.of_int (v - !prev_ts));
    prev_ts := v
  in
  let prev_used = ref 0 in
  let put_new_id v =
    Varint.write_signed c.new_ids (Int64.of_int (v - !prev_id));
    prev_id := v
  in
  let put_used_id v =
    Varint.write_signed c.used_ids (Int64.of_int (v - !prev_used));
    prev_used := v
  in
  let put_win v =
    Varint.write_signed c.win_nos (Int64.of_int (v - !prev_win));
    prev_win := v
  in
  let put_val v =
    Varint.write_signed c.values (Int64.of_int (v - !prev_val));
    prev_val := v
  in
  (* Fused params and chain hashes repeat verbatim across segments of the
     same pipeline (the chain is a function of ops+params alone), so the
     blob column back-references per field: 0 = "same as this field's
     previous blob", n > 0 = a literal of n-1 bytes.  This is what keeps
     composite audit records cheaper than the per-op rows they replace. *)
  let prev_params_blob = ref Bytes.empty and prev_chain_blob = ref Bytes.empty in
  let put_blob prev b =
    if Bytes.equal b !prev then Varint.write_unsigned c.blobs 0L
    else begin
      Varint.write_unsigned c.blobs (Int64.of_int (Bytes.length b + 1));
      Buffer.add_bytes c.blobs b;
      prev := b
    end
  in
  let prev_stream = ref 0 and prev_seq = ref 0 in
  let put_stream v =
    Varint.write_signed c.streams (Int64.of_int (v - !prev_stream));
    prev_stream := v
  in
  let put_seq v =
    Varint.write_signed c.seqs (Int64.of_int (v - !prev_seq));
    prev_seq := v
  in
  List.iter
    (fun r ->
      match r with
      | Record.Ingress { ts; uarray; stream; seq } ->
          Buffer.add_char c.tags '\000';
          put_ts ts;
          put_new_id uarray;
          put_stream stream;
          put_seq seq
      | Record.Ingress_watermark { ts; id; value } ->
          Buffer.add_char c.tags '\001';
          put_ts ts;
          put_new_id id;
          put_val value
      | Record.Windowing { ts; data_in; win_no; data_out } ->
          Buffer.add_char c.tags '\002';
          put_ts ts;
          put_used_id data_in;
          put_win win_no;
          put_new_id data_out
      | Record.Execution { ts; op; inputs; outputs; hints } ->
          Buffer.add_char c.tags '\003';
          put_ts ts;
          Buffer.add_char c.ops (Char.unsafe_chr (op land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length inputs land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length outputs land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length hints land 0xFF));
          List.iter put_used_id inputs;
          List.iter put_new_id outputs;
          List.iter put_hint hints
      | Record.Egress { ts; uarray; win_no } ->
          Buffer.add_char c.tags '\004';
          put_ts ts;
          put_used_id uarray;
          put_win win_no
      | Record.Gap { ts; stream; seq; events; windows; reason } ->
          Buffer.add_char c.tags '\005';
          put_ts ts;
          put_stream stream;
          put_seq seq;
          put_val events;
          Buffer.add_char c.counts (Char.unsafe_chr (Record.gap_reason_tag reason land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length windows land 0xFF));
          List.iter put_win windows
      | Record.Checkpoint { ts; seq; watermark } ->
          Buffer.add_char c.tags '\006';
          put_ts ts;
          put_seq seq;
          put_val watermark
      | Record.Fused { ts; ops; params; chain; inputs; outputs; hints } ->
          Buffer.add_char c.tags '\007';
          put_ts ts;
          Buffer.add_char c.counts (Char.unsafe_chr (List.length ops land 0xFF));
          List.iter (fun op -> Buffer.add_char c.ops (Char.unsafe_chr (op land 0xFF))) ops;
          put_blob prev_params_blob params;
          put_blob prev_chain_blob chain;
          Buffer.add_char c.counts (Char.unsafe_chr (List.length inputs land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length outputs land 0xFF));
          Buffer.add_char c.counts (Char.unsafe_chr (List.length hints land 0xFF));
          List.iter put_used_id inputs;
          List.iter put_new_id outputs;
          List.iter put_hint hints
      | Record.Late_drop { ts; uarray; win_no; events } ->
          Buffer.add_char c.tags '\008';
          put_ts ts;
          put_used_id uarray;
          put_win win_no;
          put_val events
      | Record.Correction { ts; uarray; win_no; gen } ->
          Buffer.add_char c.tags '\009';
          put_ts ts;
          put_used_id uarray;
          put_win win_no;
          put_val gen)
    records;
  c

let compress records =
  let c = split records in
  let out = Buffer.create 1024 in
  Varint.write_unsigned out (Int64.of_int (List.length records));
  let add_block b =
    Varint.write_unsigned out (Int64.of_int (Bytes.length b));
    Buffer.add_bytes out b
  in
  (* Every column gets an entropy stage on top: delta-varint bytes are
     heavily skewed toward small values, so canonical Huffman shaves
     another 25-40% beyond the delta coding. *)
  add_block (Huffman.encode (Buffer.to_bytes c.tags));
  add_block (Huffman.encode (Buffer.to_bytes c.ts));
  add_block (Huffman.encode (Buffer.to_bytes c.ops));
  add_block (Huffman.encode (Buffer.to_bytes c.counts));
  add_block (Huffman.encode (Buffer.to_bytes c.new_ids));
  add_block (Huffman.encode (Buffer.to_bytes c.used_ids));
  add_block (Huffman.encode (Buffer.to_bytes c.win_nos));
  add_block (Huffman.encode (Buffer.to_bytes c.values));
  add_block (Huffman.encode (Buffer.to_bytes c.hints));
  add_block (Huffman.encode (Buffer.to_bytes c.streams));
  add_block (Huffman.encode (Buffer.to_bytes c.seqs));
  add_block (Huffman.encode (Buffer.to_bytes c.blobs));
  Buffer.to_bytes out

let decompress data =
  let pos = ref 0 in
  let n = Int64.to_int (Varint.read_unsigned data pos) in
  let block () =
    let len = Int64.to_int (Varint.read_unsigned data pos) in
    if !pos + len > Bytes.length data then invalid_arg "Columnar.decompress: truncated";
    let b = Bytes.sub data !pos len in
    pos := !pos + len;
    b
  in
  let tags = Huffman.decode (block ()) in
  let ts_col = Huffman.decode (block ()) in
  let ops = Huffman.decode (block ()) in
  let counts = Huffman.decode (block ()) in
  let new_ids_col = Huffman.decode (block ()) in
  let used_ids_col = Huffman.decode (block ()) in
  let wins_col = Huffman.decode (block ()) in
  let vals_col = Huffman.decode (block ()) in
  let hints_col = Huffman.decode (block ()) in
  let streams_col = Huffman.decode (block ()) in
  let seqs_col = Huffman.decode (block ()) in
  let blobs_col = Huffman.decode (block ()) in
  let ts_pos = ref 0 and new_id_pos = ref 0 and used_id_pos = ref 0 in
  let win_pos = ref 0 and val_pos = ref 0 in
  let hint_pos = ref 0 and op_pos = ref 0 and cnt_pos = ref 0 in
  let stream_pos = ref 0 and seq_pos = ref 0 in
  let blob_pos = ref 0 in
  let prev_params_blob = ref Bytes.empty and prev_chain_blob = ref Bytes.empty in
  let get_blob prev =
    (* 0 is a back-reference to this field's previous blob; n > 0 is a
       literal of n-1 bytes (see [split]). *)
    let tag = Int64.to_int (Varint.read_unsigned blobs_col blob_pos) in
    if tag = 0 then !prev
    else begin
      let len = tag - 1 in
      if !blob_pos + len > Bytes.length blobs_col then
        invalid_arg "Columnar.decompress: truncated blob";
      let b = Bytes.sub blobs_col !blob_pos len in
      blob_pos := !blob_pos + len;
      prev := b;
      b
    end
  in
  let prev_ts = ref 0 and prev_id = ref 0 and prev_win = ref 0 and prev_val = ref 0 in
  let prev_hint = ref 0 and prev_stream = ref 0 and prev_seq = ref 0 in
  let get_hint () =
    prev_hint := !prev_hint + Int64.to_int (Varint.read_signed hints_col hint_pos);
    let pred = !prev_hint in
    prev_hint := !prev_hint + Int64.to_int (Varint.read_signed hints_col hint_pos);
    let succ = !prev_hint in
    Int64.logor (Int64.shift_left (Int64.of_int pred) 32) (Int64.of_int succ)
  in
  let get_ts () =
    prev_ts := !prev_ts + Int64.to_int (Varint.read_signed ts_col ts_pos);
    !prev_ts
  in
  let prev_used = ref 0 in
  let get_new_id () =
    prev_id := !prev_id + Int64.to_int (Varint.read_signed new_ids_col new_id_pos);
    !prev_id
  in
  let get_used_id () =
    prev_used := !prev_used + Int64.to_int (Varint.read_signed used_ids_col used_id_pos);
    !prev_used
  in
  let get_win () =
    prev_win := !prev_win + Int64.to_int (Varint.read_signed wins_col win_pos);
    !prev_win
  in
  let get_val () =
    prev_val := !prev_val + Int64.to_int (Varint.read_signed vals_col val_pos);
    !prev_val
  in
  let get_stream () =
    prev_stream := !prev_stream + Int64.to_int (Varint.read_signed streams_col stream_pos);
    !prev_stream
  in
  let get_seq () =
    prev_seq := !prev_seq + Int64.to_int (Varint.read_signed seqs_col seq_pos);
    !prev_seq
  in
  let get_byte buf pos =
    let c = Char.code (Bytes.get buf !pos) in
    incr pos;
    c
  in
  List.init n (fun i ->
      match Char.code (Bytes.get tags i) with
      | 0 ->
          let ts = get_ts () in
          let uarray = get_new_id () in
          let stream = get_stream () in
          let seq = get_seq () in
          Record.Ingress { ts; uarray; stream; seq }
      | 1 ->
          let ts = get_ts () in
          let id = get_new_id () in
          let value = get_val () in
          Record.Ingress_watermark { ts; id; value }
      | 2 ->
          let ts = get_ts () in
          let data_in = get_used_id () in
          let win_no = get_win () in
          let data_out = get_new_id () in
          Record.Windowing { ts; data_in; win_no; data_out }
      | 3 ->
          let ts = get_ts () in
          let op = get_byte ops op_pos in
          let n_in = get_byte counts cnt_pos in
          let n_out = get_byte counts cnt_pos in
          let n_h = get_byte counts cnt_pos in
          let inputs = List.init n_in (fun _ -> get_used_id ()) in
          let outputs = List.init n_out (fun _ -> get_new_id ()) in
          let hints = List.init n_h (fun _ -> get_hint ()) in
          Record.Execution { ts; op; inputs; outputs; hints }
      | 4 ->
          let ts = get_ts () in
          let uarray = get_used_id () in
          let win_no = get_win () in
          Record.Egress { ts; uarray; win_no }
      | 5 ->
          let ts = get_ts () in
          let stream = get_stream () in
          let seq = get_seq () in
          let events = get_val () in
          let reason = Record.gap_reason_of_tag (get_byte counts cnt_pos) in
          let n_w = get_byte counts cnt_pos in
          let windows = List.init n_w (fun _ -> get_win ()) in
          Record.Gap { ts; stream; seq; events; windows; reason }
      | 6 ->
          let ts = get_ts () in
          let seq = get_seq () in
          let watermark = get_val () in
          Record.Checkpoint { ts; seq; watermark }
      | 7 ->
          let ts = get_ts () in
          let n_ops = get_byte counts cnt_pos in
          let ops = List.init n_ops (fun _ -> get_byte ops op_pos) in
          let params = get_blob prev_params_blob in
          let chain = get_blob prev_chain_blob in
          let n_in = get_byte counts cnt_pos in
          let n_out = get_byte counts cnt_pos in
          let n_h = get_byte counts cnt_pos in
          let inputs = List.init n_in (fun _ -> get_used_id ()) in
          let outputs = List.init n_out (fun _ -> get_new_id ()) in
          let hints = List.init n_h (fun _ -> get_hint ()) in
          Record.Fused { ts; ops; params; chain; inputs; outputs; hints }
      | 8 ->
          let ts = get_ts () in
          let uarray = get_used_id () in
          let win_no = get_win () in
          let events = get_val () in
          Record.Late_drop { ts; uarray; win_no; events }
      | 9 ->
          let ts = get_ts () in
          let uarray = get_used_id () in
          let win_no = get_win () in
          let gen = get_val () in
          Record.Correction { ts; uarray; win_no; gen }
      | t -> invalid_arg (Printf.sprintf "Columnar.decompress: bad tag %d" t))

let raw_size records = Bytes.length (Record.encode_all records)

let ratio records =
  match records with
  | [] -> 1.0
  | _ :: _ -> float_of_int (raw_size records) /. float_of_int (Bytes.length (compress records))
