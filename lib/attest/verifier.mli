(** Cloud-side verification of edge analytics (paper §7).

    The verifier holds its own copy of the pipeline declaration ({!spec})
    and replays the audit records symbolically — no actual computation —
    checking that

    - every ingested batch was windowed, and every window's data flowed
      through exactly the declared primitives once the window's watermark
      arrived ({e correctness});
    - each result was externalized within the declared delay bound after
      its triggering watermark ({e freshness});
    - no record references a uArray the data plane never produced
      ({e fabricated dataflow});
    - watermarks are monotone.

    Consumption hints are additionally checked in retrospect: a
    consumed-after hint contradicted by the observed consumption order is
    reported as a {e misleading hint} warning — by design a performance
    matter, never a correctness violation (paper §6.2). *)

type spec = {
  batch_ops : int list;
      (** Primitive ids applied, in order, to each windowed segment as it
          is produced (e.g. [\[Sort\]]); each stage is 1-in/1-out. *)
  window_ops : int list;
      (** Multiset of primitive ids executed per window when its watermark
          arrives.  Connectivity inside the group is checked; order
          between parallel branches is not over-constrained. *)
  window_size : int;  (** event-time ticks a window spans *)
  window_slide : int;
      (** ticks between window starts; window [w] covers
          [\[w*slide, w*slide + size)].  Equal to [window_size] for the
          paper's fixed windows. *)
  freshness_bound : int option;
      (** Max tolerated output delay in data-plane timestamp ticks. *)
}

type violation =
  | Unknown_uarray of { record_index : int; id : int }
  | Unexpected_batch_op of { id : int; expected : int; got : int }
  | Window_ops_mismatch of { window : int; expected : int list; got : int list }
  | Unprocessed_batch of { id : int }
  | Unprocessed_window_data of { window : int; ids : int list }
  | Double_consumption of { record_index : int; id : int }
  | Missing_egress of { window : int }
  | Duplicate_egress of { window : int }
  | Stale_result of { window : int; delay : int; bound : int }
  | Mixed_window_inputs of { record_index : int }
  | Watermark_regression of { id : int; value : int; prev : int }
  | Egress_of_non_result of { record_index : int; id : int }
  | Undeclared_loss of { stream : int; seq : int }
      (** a frame inside a stream's observed sequence range was neither
          ingested nor covered by a {!Record.Gap} declaration — dataflow
          vanished without the TEE vouching for the loss *)
  | Missing_epoch of { expected : int; got : int }
      (** the boot-epoch chain presented to {!verify_epochs} skips an
          epoch — a whole boot's emissions could hide in the hole *)
  | Checkpoint_rollback of { epoch : int; resumed_from : int; latest : int }
      (** a restart resumed from checkpoint [resumed_from] although the
          presented log attests a newer checkpoint [latest] — a stale
          (or "fresh run") presentation of rolled-back state *)
  | Duplicate_window_across_epochs of { window : int; first_epoch : int; second_epoch : int }
      (** the same window result left the TEE in two different boot
          epochs — exactly-once across the restart gap is broken *)

val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;
  misleading_hints : int;
  windows_verified : int;
  records_replayed : int;
  max_delay : int;  (** worst observed output delay (ts ticks) *)
  delays : (int * int) list;  (** (window, delay) per verified window *)
  declared_gaps : int;  (** Gap records replayed *)
  gap_events : int;  (** events the edge declared lost *)
  lost_batches : int;  (** declared-gap frames never ingested *)
  loss_fraction : float;
      (** lost batches over the expected batch count (per-stream observed
          sequence ranges); 0 on a clean run *)
  degraded_windows : int list;  (** windows named by declared gaps *)
}

val ok : report -> bool
(** No violations.  Declared gaps degrade the report (loss summary,
    degraded windows) but never make it not-[ok]; only undeclared missing
    dataflow does. *)

val verify : spec -> Record.t list -> report
(** Replay one contiguous record stream. *)

val verify_epochs : key:bytes -> spec -> (Epoch.sealed * Log.batch list) list -> report
(** Verify a run that spans boot epochs: one (sealed manifest, audit
    batches) segment per epoch.  Authenticates every manifest and batch
    under [key], then checks the chain is contiguous from epoch 0
    ({!Missing_epoch}), that each restart resumed from the newest
    checkpoint the presented log attests ({!Checkpoint_rollback} —
    this also catches a resumed run presented as fresh), and that no
    window was externalized in two epochs
    ({!Duplicate_window_across_epochs}).  Each epoch's batches are then
    trimmed at its successor's authenticated [resume_batch_seq] —
    batches a crashed epoch flushed after its last checkpoint are
    regenerated by the next epoch, and the resume point says which copy
    is canonical — and the concatenation replays through {!verify}.  A
    single-epoch run degenerates to plain {!verify} of its records.
    Raises [Invalid_argument] if a manifest or batch fails its MAC. *)

val pp_report : Format.formatter -> report -> unit
