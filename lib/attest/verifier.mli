(** Cloud-side verification of edge analytics (paper §7).

    The verifier holds its own copy of the pipeline declaration ({!spec})
    and replays the audit records symbolically — no actual computation —
    checking that

    - every ingested batch was windowed, and every window's data flowed
      through exactly the declared primitives once the window's watermark
      arrived ({e correctness});
    - each result was externalized within the declared delay bound after
      its triggering watermark ({e freshness});
    - no record references a uArray the data plane never produced
      ({e fabricated dataflow});
    - watermarks are monotone.

    Consumption hints are additionally checked in retrospect: a
    consumed-after hint contradicted by the observed consumption order is
    reported as a {e misleading hint} warning — by design a performance
    matter, never a correctness violation (paper §6.2). *)

type spec = {
  batch_ops : int list;
      (** Primitive ids applied, in order, to each windowed segment as it
          is produced (e.g. [\[Sort\]]); each stage is 1-in/1-out. *)
  window_ops : int list;
      (** Multiset of primitive ids executed per window when its watermark
          arrives.  Connectivity inside the group is checked; order
          between parallel branches is not over-constrained. *)
  window_size : int;  (** event-time ticks a window spans *)
  window_slide : int;
      (** ticks between window starts; window [w] covers
          [\[w*slide, w*slide + size)].  Equal to [window_size] for the
          paper's fixed windows. *)
  freshness_bound : int option;
      (** Max tolerated output delay in data-plane timestamp ticks. *)
}

type violation =
  | Unknown_uarray of { record_index : int; id : int }
  | Unexpected_batch_op of { id : int; expected : int; got : int }
  | Window_ops_mismatch of { window : int; expected : int list; got : int list }
  | Unprocessed_batch of { id : int }
  | Unprocessed_window_data of { window : int; ids : int list }
  | Double_consumption of { record_index : int; id : int }
  | Missing_egress of { window : int }
  | Duplicate_egress of { window : int }
  | Stale_result of { window : int; delay : int; bound : int }
  | Mixed_window_inputs of { record_index : int }
  | Watermark_regression of { id : int; value : int; prev : int }
  | Egress_of_non_result of { record_index : int; id : int }
  | Undeclared_loss of { stream : int; seq : int }
      (** a frame inside a stream's observed sequence range was neither
          ingested nor covered by a {!Record.Gap} declaration — dataflow
          vanished without the TEE vouching for the loss *)

val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;
  misleading_hints : int;
  windows_verified : int;
  records_replayed : int;
  max_delay : int;  (** worst observed output delay (ts ticks) *)
  delays : (int * int) list;  (** (window, delay) per verified window *)
  declared_gaps : int;  (** Gap records replayed *)
  gap_events : int;  (** events the edge declared lost *)
  lost_batches : int;  (** declared-gap frames never ingested *)
  loss_fraction : float;
      (** lost batches over the expected batch count (per-stream observed
          sequence ranges); 0 on a clean run *)
  degraded_windows : int list;  (** windows named by declared gaps *)
}

val ok : report -> bool
(** No violations.  Declared gaps degrade the report (loss summary,
    degraded windows) but never make it not-[ok]; only undeclared missing
    dataflow does. *)

val verify : spec -> Record.t list -> report
(** Replay one contiguous record stream. *)

val pp_report : Format.formatter -> report -> unit
