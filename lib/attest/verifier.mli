(** Cloud-side verification of edge analytics (paper §7).

    The verifier holds its own copy of the pipeline declaration ({!spec})
    and replays the audit records symbolically — no actual computation —
    checking that

    - every ingested batch was windowed, and every window's data flowed
      through exactly the declared primitives once the window's watermark
      arrived ({e correctness});
    - each result was externalized within the declared delay bound after
      its triggering watermark ({e freshness});
    - no record references a uArray the data plane never produced
      ({e fabricated dataflow});
    - watermarks are monotone.

    Consumption hints are additionally checked in retrospect: a
    consumed-after hint contradicted by the observed consumption order is
    reported as a {e misleading hint} warning — by design a performance
    matter, never a correctness violation (paper §6.2). *)

type spec = {
  batch_ops : int list;
      (** Primitive ids applied, in order, to each windowed segment as it
          is produced (e.g. [\[Sort\]]); each stage is 1-in/1-out. *)
  window_ops : int list;
      (** Multiset of primitive ids executed per window when its watermark
          arrives.  Connectivity inside the group is checked; order
          between parallel branches is not over-constrained. *)
  window_size : int;  (** event-time ticks a window spans *)
  window_slide : int;
      (** ticks between window starts; window [w] covers
          [\[w*slide, w*slide + size)].  Equal to [window_size] for the
          paper's fixed windows. *)
  freshness_bound : int option;
      (** Max tolerated output delay in data-plane timestamp ticks. *)
  late_policy : int;
      (** The attested late-data policy the quote declared: 0 = silent
          (pre-disorder default: late data must simply never surface in
          the audit stream), 1 = drop+declare ({!Record.Late_drop}
          expected), 2 = retract-and-reemit ({!Record.Correction}
          expected).  Late-handling records under any {e other} policy
          fire {!Undeclared_late_handling}. *)
  session_gap : int option;
      (** [Some g]: windows are gap-based sessions (closed after [g]
          ticks of per-window inactivity) rather than a fixed grid.
          Sessions have no spec-derivable closing watermark, so the
          sweep judges exactly the sessions the log emitted — op
          multiset and consumption per emitted window — and skips the
          grid-based completeness and freshness checks. *)
}

type violation =
  | Unknown_uarray of { record_index : int; id : int }
  | Unexpected_batch_op of { id : int; expected : int; got : int }
  | Window_ops_mismatch of { window : int; expected : int list; got : int list }
  | Unprocessed_batch of { id : int }
  | Unprocessed_window_data of { window : int; ids : int list }
  | Double_consumption of { record_index : int; id : int }
  | Missing_egress of { window : int }
  | Duplicate_egress of { window : int }
  | Stale_result of { window : int; delay : int; bound : int }
  | Mixed_window_inputs of { record_index : int }
  | Watermark_regression of { id : int; value : int; prev : int }
  | Egress_of_non_result of { record_index : int; id : int }
  | Undeclared_loss of { stream : int; seq : int }
      (** a frame inside a stream's observed sequence range was neither
          ingested nor covered by a {!Record.Gap} declaration — dataflow
          vanished without the TEE vouching for the loss *)
  | Missing_epoch of { expected : int; got : int }
      (** the boot-epoch chain presented to {!verify_epochs} skips an
          epoch — a whole boot's emissions could hide in the hole *)
  | Checkpoint_rollback of { epoch : int; resumed_from : int; latest : int }
      (** a restart resumed from checkpoint [resumed_from] although the
          presented log attests a newer checkpoint [latest] — a stale
          (or "fresh run") presentation of rolled-back state *)
  | Duplicate_window_across_epochs of { window : int; first_epoch : int; second_epoch : int }
      (** the same window result left the TEE in two different boot
          epochs — exactly-once across the restart gap is broken *)
  | Fleet_partition_loss of { partition : int; missing_windows : int; total_windows : int }
      (** {!Undeclared_loss} at fleet scope: windows of a key partition
          egressed from no edge and were covered by no declared gap — a
          partition silently dropped (wholly, when
          [missing_windows = total_windows]) *)
  | Cross_edge_duplicate of { partition : int; window : int; first_edge : int; second_edge : int }
      (** a partition's window left the TEE on two edges whose chains no
          handoff manifest links — the double-ingestion a manifest-less
          failover hides *)
  | Handoff_unattested of { partition : int; donor : int; recipient : int }
      (** a partition's execution moved between edges with no handoff
          manifest presenting the stitching authority *)
  | Handoff_mismatch of { partition : int; donor : int; recipient : int; reason : string }
      (** a handoff manifest exists but contradicts the donor or
          recipient log (wrong donor edge, resume coordinates the
          recipient's first epoch does not carry, or a resume checkpoint
          the donor log never attested) *)
  | Fused_chain_mismatch of { record_index : int }
      (** a composite {!Record.Fused} record whose chain hash does not
          match its claimed op ids and parameter blob (tampered hash,
          edited params, or a params blob that decodes to a different op
          sequence than the record names) — the composition is forged *)
  | Fused_non_fusable of { record_index : int; op : int }
      (** a composite {!Record.Fused} record smuggles in an op that
          {!Sbt_prim.Primitive.fusable} forbids from fusing (or an id no
          primitive carries) — a stateful or windowing op hidden inside
          one opaque trusted entry *)
  | Tenant_log_unverifiable of { tenant : int; reason : string }
      (** a tenant's audit sub-stream fails authentication under its
          derived key ({!tenant_key}) — that tenant's verdict is a
          violation, but {!verify_tenants} still judges every other
          tenant on its own stream *)
  | Undeclared_late_handling of { record_index : int; window : int }
      (** a {!Record.Late_drop} or {!Record.Correction} record appears
          although the quote declared a different late-data policy — the
          edge handled disorder, but not the way it promised to *)
  | Correction_mismatch of { window : int; expected_gen : int; got_gen : int }
      (** a window's correction generations are not contiguous from 1 in
          emission order (skipped, repeated, or reordered) — the
          cloud-side merge would apply a different history than the TEE
          emitted *)
  | Retraction_without_reemit of { window : int; declared : int; replayed : int }
      (** the log replays more whole-window evaluations than it declares
          emissions (original egress + corrections): a closed window was
          reopened and re-evaluated but the superseding result never
          left the TEE — downstream still trusts a result the edge
          itself retracted *)

val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;
  misleading_hints : int;
  windows_verified : int;
  records_replayed : int;
  max_delay : int;  (** worst observed output delay (ts ticks) *)
  delays : (int * int) list;  (** (window, delay) per verified window *)
  declared_gaps : int;  (** Gap records replayed *)
  gap_events : int;  (** events the edge declared lost *)
  lost_batches : int;  (** declared-gap frames never ingested *)
  loss_fraction : float;
      (** lost batches over the expected batch count (per-stream observed
          sequence ranges); 0 on a clean run *)
  degraded_windows : int list;
      (** windows named by declared gaps or declared late drops *)
  late_drops : int;  (** {!Record.Late_drop} records replayed *)
  late_events : int;  (** events the edge declared dropped as late *)
  corrections : int;  (** {!Record.Correction} records replayed *)
  corrected_windows : int list;  (** windows with at least one correction *)
}

val ok : report -> bool
(** No violations.  Declared gaps degrade the report (loss summary,
    degraded windows) but never make it not-[ok]; only undeclared missing
    dataflow does. *)

val verify : spec -> Record.t list -> report
(** Replay one contiguous record stream. *)

val verify_epochs : key:bytes -> spec -> (Epoch.sealed * Log.batch list) list -> report
(** Verify a run that spans boot epochs: one (sealed manifest, audit
    batches) segment per epoch.  Authenticates every manifest and batch
    under [key], then checks the chain is contiguous from epoch 0
    ({!Missing_epoch}), that each restart resumed from the newest
    checkpoint the presented log attests ({!Checkpoint_rollback} —
    this also catches a resumed run presented as fresh), and that no
    window was externalized in two epochs
    ({!Duplicate_window_across_epochs}).  Each epoch's batches are then
    trimmed at its successor's authenticated [resume_batch_seq] —
    batches a crashed epoch flushed after its last checkpoint are
    regenerated by the next epoch, and the resume point says which copy
    is canonical — and the concatenation replays through {!verify}.  A
    single-epoch run degenerates to plain {!verify} of its records.
    Raises [Invalid_argument] if a manifest or batch fails its MAC. *)

val pp_report : Format.formatter -> report -> unit

(** {2 Fleet-scope verification}

    [verify_fleet] lifts {!verify_epochs} to M edges over P key
    partitions: each partition's epoch chains are stitched across edges
    only where a sealed {!Handoff} manifest authorizes the link (and its
    coordinates survive cross-checking against both logs), every
    resulting chain is judged by {!verify_epochs} {e independently} — one
    node's violation never taints another's verdict — and two fleet-wide
    invariants are swept on top: every partition of every window egressed
    exactly once somewhere ({!Fleet_partition_loss},
    {!Cross_edge_duplicate}), and no cross-edge execution moved without
    its paperwork ({!Handoff_unattested}, {!Handoff_mismatch}). *)

type edge_chains = {
  edge : int;  (** edge node id *)
  chains : (int * (Epoch.sealed * Log.batch list) list) list;
      (** per partition this edge executed: the contiguous run of boot
          epochs it ran, each with its audit slice (epoch order free —
          manifests carry the ordering) *)
}

type chain_report = {
  cr_partition : int;
  cr_edges : int list;  (** executing edges, chain order *)
  cr_report : report;  (** the chain's independent {!verify_epochs} verdict *)
}

type fleet_report = {
  fleet_violations : violation list;  (** fleet-scope only *)
  chain_reports : chain_report list;  (** per stitched chain, partition-ascending *)
  partitions_expected : int;
  partitions_present : int;  (** partitions with at least one fragment *)
  fleet_windows : int;  (** expected windows per partition *)
  handoffs_verified : int;  (** manifests that authorized a stitch and validated *)
}

val fleet_ok : fleet_report -> bool
(** No fleet-scope violations and every chain report {!ok}. *)

val verify_fleet :
  key:bytes ->
  spec ->
  partitions:int ->
  windows:int ->
  edges:edge_chains list ->
  handoffs:Handoff.sealed list ->
  fleet_report
(** Verify a fleet run of [partitions] key partitions over [windows]
    windows each.  An absent partition, or windows egressed nowhere
    (and not covered by a declared gap), is {!Fleet_partition_loss};
    a partition executing on a second edge without a valid manifest
    leaves two independent chains whose egress overlap surfaces as
    {!Cross_edge_duplicate} (plus {!Handoff_unattested}).  Raises
    [Invalid_argument] if any manifest or batch fails its MAC, or
    [partitions <= 0]. *)

val pp_fleet_report : Format.formatter -> fleet_report -> unit

(** {2 Tenant-scope verification}

    Multi-tenant consolidation (one enclave serving N pipelines) keeps
    the verifier's unit of judgment the single tenant: each tenant's
    audit sub-stream is authenticated under its own derived key and
    replayed through {!verify} independently, so one tenant's violation
    never taints another's verdict.  Cross-tenant dataflow is prevented
    in-enclave (the opaque-ref namespace guard), not re-checked here. *)

val tenant_key : base:bytes -> int -> bytes
(** The egress/audit key of tenant [id], derived from the [base] key the
    edge shares with the cloud: tenant 0 inherits [base] itself (the
    single-tenant run is the 1-tenant special case, byte for byte),
    tenant [id <> 0] gets [Kdf.derive ~master:base ~label:"tenant-<id>:egress"].
    Derivation depends only on the tenant id — never on how many
    co-tenants shared the enclave — so a tenant's sealed results and
    audit stream are identical whether it ran jointly or solo. *)

type tenant_chain = {
  tenant : int;
  t_spec : spec;  (** the tenant's declared pipeline *)
  t_audit : Log.batch list;  (** its audit sub-stream, oldest first *)
}

type tenant_report = { tn_tenant : int; tn_report : report }

type tenants_report = {
  tenant_reports : tenant_report list;  (** tenant-ascending *)
  tenants_total : int;
  tenants_clean : int;  (** [ok] with no declared gaps *)
  tenants_degraded : int;  (** [ok] but with declared loss (e.g. quota sheds) *)
  tenants_violating : int;  (** not [ok] *)
}

val tenants_ok : tenants_report -> bool
(** Every tenant report {!ok} (degraded-but-declared still counts as ok,
    exactly as in single-tenant {!verify}). *)

val verify_tenants : key:bytes -> tenant_chain list -> tenants_report
(** Judge each tenant's audit sub-stream independently under
    [tenant_key ~base:key tenant].  A sub-stream that fails its MAC
    yields {!Tenant_log_unverifiable} for that tenant only — never an
    exception — so co-tenants' verdicts are unaffected. *)

val pp_tenants_report : Format.formatter -> tenants_report -> unit
