module Frame = Sbt_net.Frame
module Rng = Sbt_crypto.Rng

type spec = {
  schema : Sbt_core.Event.schema;
  windows : int;
  events_per_window : int;
  batch_events : int;
  window_ticks : int;
  window_span_ticks : int option;
  streams : int;
  encrypted : bool;
  authenticated : bool;
  key : bytes;
  seed : int64;
  gen_record : Rng.t -> ts:int32 -> int32 array;
}

let default_key = Bytes.of_string "sbt-ingress-k16!"

let uniform_record rng ~ts =
  [| Int32.of_int (Rng.int_below rng 10_000); Rng.int32_any rng; ts |]

let default_spec ?(windows = 4) ?(events_per_window = 100_000) ?(batch_events = 10_000) () =
  {
    schema = Sbt_core.Event.default;
    windows;
    events_per_window;
    batch_events;
    window_ticks = Sbt_core.Event.ticks_per_second;
    window_span_ticks = None;
    streams = 1;
    encrypted = false;
    authenticated = false;
    key = default_key;
    seed = 7L;
    gen_record = uniform_record;
  }

let total_events spec = spec.windows * spec.events_per_window

(* Stream state: one pending batch per stream, flushed when full or at
   watermark boundaries. *)
type stream_state = {
  mutable buffer : int32 array list; (* reversed *)
  mutable buffered : int;
  mutable windows_touched : int list;
  mutable seq : int;
}

let frames spec =
  if spec.windows <= 0 || spec.events_per_window <= 0 then invalid_arg "Datagen.frames";
  let rng = Rng.create ~seed:spec.seed in
  let out = ref [] in
  let states = Array.init spec.streams (fun _ -> { buffer = []; buffered = 0; windows_touched = []; seq = 0 }) in
  let wm_seq = ref 0 in
  let flush stream st =
    if st.buffered > 0 then begin
      let records = Array.of_list (List.rev st.buffer) in
      let payload = Frame.pack_events ~width:spec.schema.Sbt_core.Event.width records in
      let frame =
        Frame.Events
          {
            seq = st.seq;
            stream;
            events = st.buffered;
            windows = List.sort_uniq compare st.windows_touched;
            payload;
            encrypted = false;
            mac = Bytes.empty;
          }
      in
      let frame =
        if spec.encrypted then
          Frame.encrypt_payload ~key:spec.key ~stream_nonce:(Int64.of_int stream) frame
        else frame
      in
      let frame = if spec.authenticated then Frame.seal ~key:spec.key frame else frame in
      out := frame :: !out;
      st.seq <- st.seq + 1;
      st.buffer <- [];
      st.buffered <- 0;
      st.windows_touched <- []
    end
  in
  for w = 0 to spec.windows - 1 do
    let base_ts = w * spec.window_ticks in
    for i = 0 to spec.events_per_window - 1 do
      (* Event times advance uniformly within the window. *)
      let ts =
        Int32.of_int (base_ts + (i * spec.window_ticks / spec.events_per_window))
      in
      let stream = if spec.streams = 1 then 0 else i mod spec.streams in
      let st = states.(stream) in
      let record = spec.gen_record rng ~ts in
      st.buffer <- record :: st.buffer;
      st.buffered <- st.buffered + 1;
      let size = Option.value ~default:spec.window_ticks spec.window_span_ticks in
      let lo, hi =
        Sbt_prim.Segment.windows_of ~ts:(Int32.to_int ts) ~size ~slide:spec.window_ticks
      in
      for wi = lo to hi do
        if not (List.mem wi st.windows_touched) then st.windows_touched <- wi :: st.windows_touched
      done;
      if st.buffered >= spec.batch_events then flush stream st
    done;
    (* Window complete: flush partials, then the watermark. *)
    Array.iteri flush states;
    out := Frame.Watermark { seq = !wm_seq; value = (w + 1) * spec.window_ticks } :: !out;
    incr wm_seq
  done;
  List.rev !out
