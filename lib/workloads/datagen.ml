module Frame = Sbt_net.Frame
module Rng = Sbt_crypto.Rng
module Fault = Sbt_fault.Fault

type watermark_strategy = Punctuation | Heuristic of int

type spec = {
  schema : Sbt_core.Event.schema;
  windows : int;
  events_per_window : int;
  batch_events : int;
  window_ticks : int;
  window_span_ticks : int option;
  streams : int;
  encrypted : bool;
  authenticated : bool;
  key : bytes;
  seed : int64;
  gen_record : Rng.t -> ts:int32 -> int32 array;
  disorder : Fault.plan;
  max_lateness_ticks : int;
  watermark : watermark_strategy;
}

let default_key = Bytes.of_string "sbt-ingress-k16!"

let uniform_record rng ~ts =
  [| Int32.of_int (Rng.int_below rng 10_000); Rng.int32_any rng; ts |]

let default_spec ?(windows = 4) ?(events_per_window = 100_000) ?(batch_events = 10_000) () =
  {
    schema = Sbt_core.Event.default;
    windows;
    events_per_window;
    batch_events;
    window_ticks = Sbt_core.Event.ticks_per_second;
    window_span_ticks = None;
    streams = 1;
    encrypted = false;
    authenticated = false;
    key = default_key;
    seed = 7L;
    gen_record = uniform_record;
    disorder = Fault.none;
    max_lateness_ticks = Sbt_core.Event.ticks_per_second;
    watermark = Punctuation;
  }

let total_events spec = spec.windows * spec.events_per_window

(* Stream state: one pending batch per stream, flushed when full or at
   watermark boundaries. *)
type stream_state = {
  mutable buffer : int32 array list; (* reversed *)
  mutable buffered : int;
  mutable windows_touched : int list;
  mutable seq : int;
}

let frames spec =
  if spec.windows <= 0 || spec.events_per_window <= 0 then invalid_arg "Datagen.frames";
  let rng = Rng.create ~seed:spec.seed in
  let n = total_events spec in
  (* Pass 1: source order.  Records consume the RNG in generation order,
     so a disorder plan only permutes delivery — every record's bytes are
     identical to the in-order run's. *)
  let evs =
    Array.init n (fun idx ->
        let w = idx / spec.events_per_window in
        let i = idx mod spec.events_per_window in
        (* Event times advance uniformly within the window. *)
        let ts = (w * spec.window_ticks) + (i * spec.window_ticks / spec.events_per_window) in
        let stream = if spec.streams = 1 then 0 else i mod spec.streams in
        let record = spec.gen_record rng ~ts:(Int32.of_int ts) in
        let lateness =
          if Fault.delays_event spec.disorder ~stream ~seq:idx then
            Fault.lateness_ticks spec.disorder ~stream ~seq:idx
              ~max:spec.max_lateness_ticks
          else 0
        in
        (ts + lateness, idx, ts, stream, record))
  in
  (* Arrival order; ties break on generation index, so zero disorder is
     the identity permutation. *)
  Array.sort
    (fun (a, ia, _, _, _) (b, ib, _, _, _) -> compare (a, ia) (b, ib))
    evs;
  (* Punctuation needs "smallest event time still undelivered". *)
  let suffix_min = Array.make (n + 1) max_int in
  for pos = n - 1 downto 0 do
    let _, _, ts, _, _ = evs.(pos) in
    suffix_min.(pos) <- min ts suffix_min.(pos + 1)
  done;
  let out = ref [] in
  let states = Array.init spec.streams (fun _ -> { buffer = []; buffered = 0; windows_touched = []; seq = 0 }) in
  let wm_seq = ref 0 in
  let last_wm = ref None in
  let max_ts_seen = ref (-1) in
  let flush stream st =
    if st.buffered > 0 then begin
      let records = Array.of_list (List.rev st.buffer) in
      let payload = Frame.pack_events ~width:spec.schema.Sbt_core.Event.width records in
      let frame =
        Frame.Events
          {
            seq = st.seq;
            stream;
            events = st.buffered;
            windows = List.sort_uniq compare st.windows_touched;
            payload;
            encrypted = false;
            mac = Bytes.empty;
          }
      in
      let frame =
        if spec.encrypted then
          Frame.encrypt_payload ~key:spec.key ~stream_nonce:(Int64.of_int stream) frame
        else frame
      in
      let frame = if spec.authenticated then Frame.seal ~key:spec.key frame else frame in
      out := frame :: !out;
      st.seq <- st.seq + 1;
      st.buffer <- [];
      st.buffered <- 0;
      st.windows_touched <- []
    end
  in
  let emit_watermark value =
    (* Monotone by construction (clamped to the last emission); the
       assert and the checked constructor both guard the invariant. *)
    let value = match !last_wm with Some l -> max l value | None -> value in
    (match !last_wm with Some l -> assert (value >= l) | None -> ());
    out := Frame.watermark ?last:!last_wm ~seq:!wm_seq ~value () :: !out;
    incr wm_seq;
    last_wm := Some value
  in
  Array.iteri
    (fun pos (_, _, ts, stream, record) ->
      if ts > !max_ts_seen then max_ts_seen := ts;
      let st = states.(stream) in
      st.buffer <- record :: st.buffer;
      st.buffered <- st.buffered + 1;
      let size = Option.value ~default:spec.window_ticks spec.window_span_ticks in
      let lo, hi = Sbt_prim.Segment.windows_of ~ts ~size ~slide:spec.window_ticks in
      for wi = lo to hi do
        if not (List.mem wi st.windows_touched) then st.windows_touched <- wi :: st.windows_touched
      done;
      if st.buffered >= spec.batch_events then flush stream st;
      (* One watermark per window's worth of deliveries — the in-order
         cadence, whatever the permutation did. *)
      if (pos + 1) mod spec.events_per_window = 0 then begin
        Array.iteri flush states;
        let w = pos / spec.events_per_window in
        match spec.watermark with
        | Punctuation ->
            (* Exact: never overtakes an undelivered event, so punctuated
               sources produce no late data — windows just close later. *)
            emit_watermark (min ((w + 1) * spec.window_ticks) suffix_min.(pos + 1))
        | Heuristic bound ->
            (* Bounded-disorder estimate: admits late data whenever real
               lateness exceeds [bound]. *)
            emit_watermark (max 0 (!max_ts_seen - bound))
      end)
    evs;
  (* The source closing the stream is itself punctuation: everything has
     been delivered, so the final watermark is exact under either
     strategy. *)
  let final = spec.windows * spec.window_ticks in
  if !last_wm <> Some final then begin
    Array.iteri flush states;
    emit_watermark final
  end;
  List.rev !out
