module P = Sbt_core.Pipeline
module Rng = Sbt_crypto.Rng

type t = {
  name : string;
  pipeline : P.t;
  target_delay_ms : float;
  spec : Datagen.spec;
}

let base_spec ?(windows = 4) ?(events_per_window = 100_000) ?(batch_events = 10_000)
    ?(encrypted = false) ~schema ~streams ~seed ~gen () =
  {
    (Datagen.default_spec ~windows ~events_per_window ~batch_events ()) with
    Datagen.schema;
    streams;
    encrypted;
    seed;
    gen_record = gen;
  }

(* Synthetic 3-field events: bounded keys (grouping needs groups), uniform
   32-bit values (the paper's synthetic datasets). *)
let synthetic_gen ~nkeys rng ~ts =
  [| Int32.of_int (Rng.int_below rng nkeys); Rng.int32_any rng; ts |]

let topk ?windows ?events_per_window ?batch_events ?encrypted () =
  {
    name = "TopK";
    pipeline = P.group_topk ~k:10 ();
    target_delay_ms = 500.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:11L
        ~gen:(synthetic_gen ~nkeys:10_000) ();
  }

(* DEBS'15 taxi model: 11k distinct taxi ids, Zipf popularity (busy cabs
   report more), value = trip fare in cents. *)
let taxi_ids = 11_000

let distinct ?windows ?events_per_window ?batch_events ?encrypted () =
  let zipf = Zipf.create ~n:taxi_ids ~s:0.9 in
  let gen rng ~ts =
    [| Int32.of_int (Zipf.sample zipf rng); Int32.of_int (500 + Rng.int_below rng 5_000); ts |]
  in
  {
    name = "Distinct";
    pipeline = P.distinct ();
    target_delay_ms = 200.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:15L ~gen ();
  }

let join ?windows ?events_per_window ?batch_events ?encrypted () =
  (* Keys drawn from a moderate space so windows produce real matches. *)
  let gen rng ~ts =
    [| Int32.of_int (Rng.int_below rng 50_000); Rng.int32_any rng; ts |]
  in
  {
    name = "Join";
    pipeline = P.temp_join ();
    target_delay_ms = 250.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:2 ~seed:23L ~gen ();
  }

(* Intel Lab model: 54 motes, temperature random walks (x100 fixed point). *)
let win_sum ?windows ?events_per_window ?batch_events ?encrypted () =
  let temps = Array.make 54 2_200 in
  let gen rng ~ts =
    let mote = Rng.int_below rng 54 in
    temps.(mote) <- max 1_000 (min 4_500 (temps.(mote) + Rng.int_below rng 21 - 10));
    [| Int32.of_int mote; Int32.of_int temps.(mote); ts |]
  in
  {
    name = "WinSum";
    pipeline = P.win_sum ();
    target_delay_ms = 20.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:31L ~gen ();
  }

(* The fusion showcase: five adjacent per-record batch stages.  With
   --fuse on the whole chain runs as one fused super-kernel per segment;
   the bench's fusion section measures the world-switch and audit-volume
   savings on exactly this workload. *)
let fps ?windows ?events_per_window ?batch_events ?encrypted () =
  {
    name = "FpsChain";
    pipeline = P.fps_chain ();
    target_delay_ms = 10.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:43L
        ~gen:(synthetic_gen ~nkeys:10_000) ();
  }

let filter ?windows ?events_per_window ?batch_events ?encrypted () =
  {
    name = "Filter";
    pipeline = P.filter (); (* default band keeps ~1% of uniform values *)
    target_delay_ms = 10.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:37L
        ~gen:(synthetic_gen ~nkeys:10_000) ();
  }

(* DEBS'14 power model: 40 houses x 20 plugs; each plug has a baseline load
   plus noise; 4-field 16-byte events as in the paper. *)
let houses = 40
let plugs_per_house = 20

let power ?windows ?events_per_window ?batch_events ?encrypted () =
  let baselines =
    let rng = Rng.create ~seed:77L in
    Array.init (houses * plugs_per_house) (fun _ -> 20 + Rng.int_below rng 380)
  in
  let gen rng ~ts =
    let house = Rng.int_below rng houses in
    let plug = Rng.int_below rng plugs_per_house in
    let idx = (house * plugs_per_house) + plug in
    let load = max 0 (baselines.(idx) + Rng.int_below rng 41 - 20) in
    [| Int32.of_int ((house * 256) + plug); Int32.of_int load; ts; Int32.of_int house |]
  in
  {
    name = "Power";
    pipeline = P.power_grid ~k:10 ();
    target_delay_ms = 600.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.power ~streams:1 ~seed:41L ~gen ();
  }

(* Medical vitals model: 200 patients, heart-rate random walks (bpm x 10
   fixed point), keyed by patient id.  The pipeline's sort + per-key
   average canonicalizes segment contents, so sealed output is
   arrival-order-insensitive — the basis of the disorder property. *)
let patients = 200

let vitals ?windows ?events_per_window ?batch_events ?encrypted () =
  let rates = Array.make patients 750 in
  let gen rng ~ts =
    let p = Rng.int_below rng patients in
    rates.(p) <- max 400 (min 1_800 (rates.(p) + Rng.int_below rng 31 - 15));
    [| Int32.of_int p; Int32.of_int rates.(p); ts |]
  in
  {
    name = "Vitals";
    pipeline = P.vitals ();
    target_delay_ms = 500.0;
    spec =
      base_spec ?windows ?events_per_window ?batch_events ?encrypted
        ~schema:Sbt_core.Event.default ~streams:1 ~seed:53L ~gen ();
  }

let all ?windows ?events_per_window ?batch_events ?encrypted () =
  [
    topk ?windows ?events_per_window ?batch_events ?encrypted ();
    distinct ?windows ?events_per_window ?batch_events ?encrypted ();
    join ?windows ?events_per_window ?batch_events ?encrypted ();
    win_sum ?windows ?events_per_window ?batch_events ?encrypted ();
    fps ?windows ?events_per_window ?batch_events ?encrypted ();
    filter ?windows ?events_per_window ?batch_events ?encrypted ();
    power ?windows ?events_per_window ?batch_events ?encrypted ();
  ]

let by_name name =
  match String.lowercase_ascii name with
  | "topk" -> Some topk
  | "distinct" -> Some distinct
  | "join" -> Some join
  | "winsum" -> Some win_sum
  | "fps" -> Some fps
  | "filter" -> Some filter
  | "power" -> Some power
  | "vitals" -> Some vitals
  | _ -> None

let frames t = Datagen.frames t.spec

(* Multi-tenant mixes: the named workload families the tenants bench and
   `sbt_run --tenant-mix` drive through one enclave.  Tenant [i] of a mix
   cycles through the family's constructors, so "hundreds of small
   pipelines" need only a mix name and a count. *)
let mix_names = [ "taxi"; "power"; "mixed" ]

let mix ?windows ?events_per_window ?batch_events ?encrypted name i =
  let pick ctors = List.nth ctors (i mod List.length ctors) in
  let family =
    match String.lowercase_ascii name with
    | "taxi" -> Some [ topk; distinct ] (* per-fleet taxi analytics *)
    | "power" -> Some [ power; win_sum ] (* per-district grid monitoring *)
    | "mixed" -> Some [ topk; distinct; join; win_sum; fps; filter; power ]
    | _ -> None
  in
  Option.map
    (fun ctors -> (pick ctors) ?windows ?events_per_window ?batch_events ?encrypted ())
    family
