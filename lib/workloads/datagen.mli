(** Frame-stream generation (the paper's Generator program).

    Produces a source-ordered stream of event frames and watermarks:
    event times increase monotonically; after all events of a window have
    been emitted, a watermark carrying the window's end time follows; a
    final watermark closes the last window.  Batches may span window
    boundaries, exactly as in a real stream.

    A [disorder] fault plan splits event time from arrival order: each
    delayed event keeps its timestamp but re-arrives [1, max_lateness]
    ticks later (seeded, deterministic — same plan, same permutation).
    The {!watermark_strategy} then decides what the source claims about
    completeness, which is exactly what the in-TEE window close trusts. *)

type watermark_strategy =
  | Punctuation
      (** per-source punctuation: the generator emits the largest value
          that no undelivered event precedes — exact, so disorder delays
          window closes but never produces late data *)
  | Heuristic of int
      (** bounded-disorder estimate [max_ts_seen - bound]: cheap, but any
          event later than [bound] ticks arrives behind the watermark and
          becomes late data the engine's late policy must handle *)

type spec = {
  schema : Sbt_core.Event.schema;
  windows : int;  (** number of fixed windows to generate *)
  events_per_window : int;
  batch_events : int;
  window_ticks : int;  (** ticks between watermarks = the window slide *)
  window_span_ticks : int option;
      (** window size when sliding (> window_ticks); [None] = fixed *)
  streams : int;  (** interleaved source streams (2 for Join) *)
  encrypted : bool;
  authenticated : bool;
      (** seal each Events frame with an HMAC (encrypt-then-MAC when
          [encrypted]); off by default — ingress then behaves exactly as
          before the fault model existed *)
  key : bytes;  (** source-edge AES/HMAC key used when [encrypted]/[authenticated] *)
  seed : int64;
  gen_record : Sbt_crypto.Rng.t -> ts:int32 -> int32 array;
      (** Fill one record given its event time; must return [schema.width]
          fields with the timestamp at [schema.ts_field]. *)
  disorder : Sbt_fault.Fault.plan;
      (** the reorder/delay plan ({!Sbt_fault.Fault.disorder_plan});
          [Fault.none] keeps the stream byte-identical to the historical
          in-order generator *)
  max_lateness_ticks : int;  (** upper bound on injected lateness *)
  watermark : watermark_strategy;
}

val default_spec : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> unit -> spec
(** Uniform 3-field events: keys in [0, 10k), values uniform 32-bit. *)

val frames : spec -> Sbt_net.Frame.t list
val total_events : spec -> int
