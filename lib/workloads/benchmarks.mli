(** The six benchmarks of the paper's evaluation (§9.2), each pairing a
    pipeline with its workload generator and the paper's per-benchmark
    output-delay target.

    Dataset substitutions (see DESIGN.md §2): the DEBS'15 taxi trace is
    modeled by 11k distinct ids under Zipf popularity; the Intel Lab
    sensor trace by per-mote temperature random walks; the DEBS'14 power
    trace by house x plug structured samples with per-plug baselines. *)

type t = {
  name : string;
  pipeline : Sbt_core.Pipeline.t;
  target_delay_ms : float;  (** Figure 7's per-benchmark delay target *)
  spec : Datagen.spec;
}

val topk : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
val distinct : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
val join : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
val win_sum : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t

val fps : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
(** The fusion showcase ({!Sbt_core.Pipeline.fps_chain}): five adjacent
    fusable per-record batch stages, run with [--fuse on|off] to measure
    world-switch and audit-volume savings. *)

val filter : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
val power : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t

val vitals : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t
(** Medical vitals ({!Sbt_core.Pipeline.vitals}): patient-keyed
    heart-rate walks through sort + per-key average — sealed output is
    insensitive to arrival order, the reference workload for disorder
    and late-data runs.  Not part of the paper's six ({!all}). *)

val all : ?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t list
(** The paper's six (Figure 7 order) plus [fps]. *)

val by_name : string -> (?windows:int -> ?events_per_window:int -> ?batch_events:int -> ?encrypted:bool -> unit -> t) option

val frames : t -> Sbt_net.Frame.t list

val mix_names : string list
(** The named multi-tenant workload mixes: ["taxi"] (per-fleet taxi
    analytics: topk/distinct), ["power"] (per-district grid monitoring:
    power/winsum), ["mixed"] (all seven benchmarks round-robin). *)

val mix :
  ?windows:int ->
  ?events_per_window:int ->
  ?batch_events:int ->
  ?encrypted:bool ->
  string ->
  int ->
  t option
(** [mix name i] is tenant [i]'s workload in the named mix — tenants
    cycle through the mix's constructors — or [None] for an unknown mix
    name. *)
