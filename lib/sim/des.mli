(** Discrete-event simulation of an N-core edge platform.

    The reproduction container has a single physical core, so the paper's
    2/4/8-core scaling (Figure 7) is reproduced by *virtual-time*
    scheduling: tasks really execute (host-serialized, in virtual dispatch
    order, so all data and memory behaviour is real), their wall-clock
    compute time is measured, and a greedy list scheduler places them on N
    virtual cores.  A task's virtual cost is

      measured host ns * host_scale + modeled extra ns

    where the modeled extra covers costs the host cannot pay for real
    (world switches, boundary copies).  Tasks may schedule further tasks
    from inside their work function, so pipelines unfold dynamically.

    Determinism: given the same inputs, the task graph and every modeled
    cost are identical between runs; only measured compute varies with
    host noise.  The replayed-trace mode used by the rate-search harness
    ({!Rate_search}) eliminates even that. *)

type t
type task

val create : ?host_scale:float -> ?tracer:Sbt_obs.Tracer.t -> cores:int -> unit -> t
(** [tracer] records one complete span per executed task (pid 0, tid =
    virtual core, category ["des"]) at the task's virtual start/cost —
    never host wall-clock, so tracing cannot change the schedule. *)

val schedule :
  t ->
  ?deps:task list ->
  ?not_before:float ->
  label:string ->
  work:(start_ns:float -> float) ->
  unit ->
  task
(** [work ~start_ns] runs when the task is dispatched (at virtual time
    [start_ns]) and returns the modeled extra ns.  [not_before] is an
    earliest virtual start (used to pace ingestion at a target rate).
    [deps] may include tasks that already finished and the task currently
    executing. *)

val run : t -> unit
(** Drain the simulation.  Raises [Invalid_argument] if some scheduled
    task never became ready (dependency cycle). *)

val finish_ns : task -> float
(** Virtual completion time; raises [Invalid_argument] before {!run}
    completes the task. *)

val start_ns_of : task -> float
val cost_ns_of : task -> float
val label_of : task -> string
val makespan_ns : t -> float
val busy_ns : t -> float
val tasks_executed : t -> int
val utilization : t -> float
(** busy / (makespan * cores). *)
