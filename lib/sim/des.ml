type task = {
  id : int;
  label : string;
  work : start_ns:float -> float;
  mutable deps_left : int;
  mutable children : task list;
  mutable ready_ns : float; (* max of not_before and finished deps *)
  mutable state : [ `Waiting | `Ready | `Done ];
  mutable start_ns : float;
  mutable finish : float;
  mutable cost : float;
}

(* Min-heap of (ready time, sequence, task); the sequence breaks ties
   deterministically in schedule order. *)
module Heap = struct
  type entry = { key : float; seq : int; t : task }
  type h = { mutable data : entry array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (max 16 (2 * h.len)) e in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let t = h.data.(!i) in
      h.data.(!i) <- h.data.(p);
      h.data.(p) <- t;
      i := p
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && less h.data.(l) h.data.(!m) then m := l;
      if r < h.len && less h.data.(r) h.data.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let t = h.data.(!i) in
        h.data.(!i) <- h.data.(!m);
        h.data.(!m) <- t;
        i := !m
      end
    done;
    top

  let is_empty h = h.len = 0
end

type t = {
  cores : int;
  host_scale : float;
  tracer : Sbt_obs.Tracer.t option;
  core_free : float array;
  ready : Heap.h;
  mutable next_id : int;
  mutable scheduled : int;
  mutable executed : int;
  mutable makespan : float;
  mutable busy : float;
}

let create ?(host_scale = 1.0) ?tracer ~cores () =
  if cores <= 0 then invalid_arg "Des.create: cores must be positive";
  {
    cores;
    host_scale;
    tracer;
    core_free = Array.make cores 0.0;
    ready = Heap.create ();
    next_id = 0;
    scheduled = 0;
    executed = 0;
    makespan = 0.0;
    busy = 0.0;
  }

let schedule t ?(deps = []) ?(not_before = 0.0) ~label ~work () =
  let task =
    {
      id = t.next_id;
      label;
      work;
      deps_left = 0;
      children = [];
      ready_ns = not_before;
      state = `Waiting;
      start_ns = nan;
      finish = nan;
      cost = nan;
    }
  in
  t.next_id <- t.next_id + 1;
  t.scheduled <- t.scheduled + 1;
  List.iter
    (fun dep ->
      match dep.state with
      | `Done -> task.ready_ns <- Float.max task.ready_ns dep.finish
      | `Waiting | `Ready ->
          task.deps_left <- task.deps_left + 1;
          dep.children <- task :: dep.children)
    deps;
  if task.deps_left = 0 then begin
    task.state <- `Ready;
    Heap.push t.ready { Heap.key = task.ready_ns; seq = task.id; t = task }
  end;
  task

let complete t task finish =
  task.state <- `Done;
  task.finish <- finish;
  t.executed <- t.executed + 1;
  if finish > t.makespan then t.makespan <- finish;
  List.iter
    (fun child ->
      child.ready_ns <- Float.max child.ready_ns finish;
      child.deps_left <- child.deps_left - 1;
      if child.deps_left = 0 then begin
        child.state <- `Ready;
        Heap.push t.ready { Heap.key = child.ready_ns; seq = child.id; t = child }
      end)
    task.children;
  task.children <- []

let run t =
  while not (Heap.is_empty t.ready) do
    let { Heap.t = task; _ } = Heap.pop t.ready in
    (* Greedy list scheduling: earliest-free core. *)
    let core = ref 0 in
    for c = 1 to t.cores - 1 do
      if t.core_free.(c) < t.core_free.(!core) then core := c
    done;
    let start = Float.max t.core_free.(!core) task.ready_ns in
    task.start_ns <- start;
    let host_t0 = Clock.now_ns () in
    let extra = task.work ~start_ns:start in
    let measured = Clock.elapsed_ns ~since:host_t0 in
    let cost = (measured *. t.host_scale) +. extra in
    task.cost <- cost;
    let finish = start +. cost in
    t.core_free.(!core) <- finish;
    t.busy <- t.busy +. cost;
    (match t.tracer with
    | None -> ()
    | Some tr ->
        (* Virtual times only: the span mirrors the schedule the DES
           computed, so tracing cannot perturb it. *)
        Sbt_obs.Tracer.complete tr ~pid:0 ~tid:!core ~cat:"des" ~name:task.label
          ~ts_ns:start ~dur_ns:cost ());
    complete t task finish
  done;
  if t.executed <> t.scheduled then
    invalid_arg
      (Printf.sprintf "Des.run: %d task(s) never became ready (dependency cycle?)"
         (t.scheduled - t.executed))

let finish_ns task =
  match task.state with
  | `Done -> task.finish
  | `Waiting | `Ready -> invalid_arg "Des.finish_ns: task not finished"

let start_ns_of task = task.start_ns
let cost_ns_of task = task.cost
let label_of task = task.label
let makespan_ns t = t.makespan
let busy_ns t = t.busy
let tasks_executed t = t.executed

let utilization t =
  if t.makespan = 0.0 then 0.0 else t.busy /. (t.makespan *. float_of_int t.cores)
