(** Recorded task graphs and their replay.

    The engine executes a workload once for real (under {!Des}), records
    every task's measured virtual cost and dependencies, and then replays
    the graph here — at any core count and any ingestion rate — without
    re-running the computation.  The rate search of Figure 7 performs
    thousands of such replays in milliseconds.

    Arrival pacing: a node with [arrival_events = Some n] models a source
    message that arrives once [n] events have been emitted at the target
    rate, i.e. at virtual time [n / rate]. *)

type role = Plain | Watermark_arrival of int | Egress_of of int
(** Window roles used to measure per-window output delay. *)

type node = {
  label : string;
  cost_ns : float;
  deps : int list;  (** indices of earlier nodes *)
  arrival_events : int option;
  role : role;
}

type t

val of_nodes : node array -> t
(** Validates that deps point backwards; raises [Invalid_argument]
    otherwise. *)

val node_count : t -> int

val nodes : t -> node array
(** A copy of the recorded nodes in schedule order — the edge list the
    real-parallel executor ({!Sbt_exec.Executor}) walks. *)

val total_cost_ns : t -> float

val total_events : t -> int
(** Largest arrival count in the trace = events the source emitted. *)

type replay_result = {
  makespan_ns : float;
  delays : (int * float) list;  (** (window, output delay ns), windows in order *)
  max_delay_ns : float;  (** 0 when no window completed *)
  mean_delay_ns : float;
  utilization : float;
}

val replay : t -> cores:int -> rate_eps:float -> replay_result
(** [rate_eps] is the ingestion rate in events per second;
    [Float.infinity] disables pacing.  Output delay for window [w] is
    measured from the {e arrival} of its watermark to the completion of
    its egress task, matching the paper's §2.2 definition. *)
