type role = Plain | Watermark_arrival of int | Egress_of of int

type node = {
  label : string;
  cost_ns : float;
  deps : int list;
  arrival_events : int option;
  role : role;
}

type t = { nodes : node array }

let of_nodes nodes =
  Array.iteri
    (fun i n ->
      List.iter
        (fun d -> if d < 0 || d >= i then invalid_arg "Trace.of_nodes: deps must point backwards")
        n.deps)
    nodes;
  { nodes }

let node_count t = Array.length t.nodes
let nodes t = Array.copy t.nodes
let total_cost_ns t = Array.fold_left (fun acc n -> acc +. n.cost_ns) 0.0 t.nodes

let total_events t =
  Array.fold_left
    (fun acc n -> match n.arrival_events with Some e -> max acc e | None -> acc)
    0 t.nodes

type replay_result = {
  makespan_ns : float;
  delays : (int * float) list;
  max_delay_ns : float;
  mean_delay_ns : float;
  utilization : float;
}

let replay t ~cores ~rate_eps =
  let des = Des.create ~host_scale:0.0 ~cores () in
  let n = Array.length t.nodes in
  let tasks = Array.make n None in
  let wm_arrival : (int, float) Hashtbl.t = Hashtbl.create 32 in
  let egress_tasks = ref [] in
  for i = 0 to n - 1 do
    let node = t.nodes.(i) in
    let deps =
      List.map
        (fun d -> match tasks.(d) with Some task -> task | None -> assert false)
        node.deps
    in
    let not_before =
      match node.arrival_events with
      | None -> 0.0
      | Some events ->
          if rate_eps = Float.infinity then 0.0
          else float_of_int events /. rate_eps *. 1e9
    in
    (match node.role with
    | Watermark_arrival w -> Hashtbl.replace wm_arrival w not_before
    | Plain | Egress_of _ -> ());
    let cost = node.cost_ns in
    let task = Des.schedule des ~deps ~not_before ~label:node.label ~work:(fun ~start_ns:_ -> cost) () in
    tasks.(i) <- Some task;
    match node.role with
    | Egress_of w -> egress_tasks := (w, task) :: !egress_tasks
    | Plain | Watermark_arrival _ -> ()
  done;
  Des.run des;
  let delays =
    List.rev_map
      (fun (w, task) ->
        let arrival = Option.value ~default:0.0 (Hashtbl.find_opt wm_arrival w) in
        (w, Des.finish_ns task -. arrival))
      !egress_tasks
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let max_delay = List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 delays in
  let mean_delay =
    match delays with
    | [] -> 0.0
    | _ :: _ ->
        List.fold_left (fun acc (_, d) -> acc +. d) 0.0 delays /. float_of_int (List.length delays)
  in
  {
    makespan_ns = Des.makespan_ns des;
    delays;
    max_delay_ns = max_delay;
    mean_delay_ns = mean_delay;
    utilization = Des.utilization des;
  }
