(** Deterministic, replayable fault injection.

    A {!plan} assigns a {!spec} to each fault {!site}: the ingress link
    (frame drop/corruption), the SMC boundary (transient entry refusal),
    the secure pool (artificial pressure), and the uplink (audit-batch
    loss).  Every injection decision is a pure function of the plan seed
    and the stable identity of the work item — [(site, stream, seq)] —
    so identical plans reproduce identical faults regardless of task
    scheduling or host timing.  {!none} disables everything and is the
    zero-cost default threaded through the stack. *)

type site =
  | Ingress_link
  | Smc_boundary
  | Secure_pool
  | Uplink
  | Crash_control  (** the untrusted control process is killed mid-run *)
  | Crash_reboot  (** the whole edge box reboots (TEE state also lost) *)
  | Disorder
      (** the source-side reorder/delay site: events re-arrive later than
          their event time (never lost, never damaged) — what watermark
          policies and late-data handling must survive *)

exception Crash of site
(** Raised at an injected crash point.  Both crash sites lose all
    in-TEE volatile state; what survives either way is what the normal
    world already held durably — sealed checkpoints, uploaded audit
    batches, sealed egress results. *)

val site_name : site -> string

type spec = {
  drop_p : float;  (** probability a frame/batch is silently dropped *)
  corrupt_p : float;  (** probability a frame payload is damaged in flight *)
  fail_p : float;  (** probability of a transient failure (SMC/pool) *)
  max_burst : int;  (** max consecutive failures per faulting request *)
  schedule : (int * int) option;
      (** inclusive sequence-number range the spec applies to; [None] =
          always.  Seq-keyed rather than clock-keyed to stay replayable. *)
}

val quiet : spec
(** All probabilities zero. *)

type plan = {
  seed : int64;
  ingress : spec;
  smc : spec;
  pool : spec;
  uplink : spec;
  disorder : spec;
      (** reorder/delay site: [drop_p] is the per-event delay probability
          (nothing is actually dropped); applied source-side by [Datagen] *)
  retry_budget : int;  (** SMC retries before degrading to a gap *)
  backoff_base_ns : float;  (** first-retry backoff; doubles per attempt *)
  backoff_cap_ns : float;  (** upper bound on any single backoff *)
  crash : (site * int) option;
      (** kill the run at a crash site after N executed tasks; [None] =
          never.  Task-count-keyed rather than clock-keyed so the crash
          point replays deterministically. *)
}

val none : plan
(** No faults anywhere; [retry_budget = 3], [backoff_base_ns = 50us],
    [backoff_cap_ns = 10ms], no crash. *)

val is_none : plan -> bool
(** True when every site is quiet (injection short-circuits). *)

val uniform : ?seed:int64 -> rate:float -> unit -> plan
(** A plan applying [rate] to every site's relevant probabilities. *)

val drops_frame : plan -> stream:int -> seq:int -> bool
val corrupts_frame : plan -> stream:int -> seq:int -> bool

val corrupt_byte : plan -> stream:int -> seq:int -> len:int -> int * int
(** [(index, xor_mask)] to damage one payload byte; mask is nonzero. *)

val smc_failures : plan -> stream:int -> seq:int -> int
(** Consecutive transient SMC entry failures to inject for this request
    (0 = none, else 1..[max_burst]). *)

val pool_sheds : plan -> stream:int -> seq:int -> bool
(** Whether the secure pool artificially sheds this allocation. *)

val uplink_drops : plan -> seq:int -> bool
(** Whether the uplink loses audit batch [seq]. *)

val disorder_plan : ?seed:int64 -> rate:float -> unit -> plan
(** A plan delaying each event with probability [rate] and nothing else;
    the source-side disorder knob [Datagen] consumes. *)

val delays_event : plan -> stream:int -> seq:int -> bool
(** Whether event [seq] of [stream] is delayed in flight ([seq] is the
    event's global generation index, not a frame number). *)

val lateness_ticks : plan -> stream:int -> seq:int -> max:int -> int
(** Deterministic lateness for a delayed event: uniform in [1, max]
    event-time ticks (0 when [max <= 0]). *)

val crash_after : plan -> (site * int) option
(** The plan's crash point, if any. *)

val with_crash : plan -> site:site -> after_tasks:int -> plan
(** [with_crash plan ~site ~after_tasks] arms a crash at [site] once
    [after_tasks] tasks have executed.  [site] must be a crash site and
    [after_tasks] positive. *)

val without_crash : plan -> plan
(** Disarm the crash point (a supervisor restarts with this so an
    injected crash fires exactly once). *)

val backoff_ns : ?retrier:int -> plan -> stream:int -> seq:int -> attempt:int -> float
(** Deterministic exponential backoff with jitter for retry [attempt]
    (1-based), clamped to [backoff_cap_ns].  [retrier] (default 0)
    names the retrying agent: distinct retriers contending on the same
    [(stream, seq)] draw decorrelated jitter so they do not re-arrive
    in lockstep.  [retrier = 0] is bit-compatible with the historical
    single-retrier sequence. *)

(** {2 Fleet churn scenarios}

    The deterministic vocabulary the fleet runner interprets.  Beats are
    the fleet's virtual-time heartbeat unit — one beat per closed window
    — so scenarios replay identically run to run; no event is keyed to a
    wall clock. *)

type fleet_event =
  | Kill of { node : int; at_beat : int; permanent : bool }
      (** the edge halts after closing window [at_beat] (its checkpoint
          for that beat is durable; in-TEE state is lost).  Transient
          kills reboot [recover_after] beats later; permanent ones never
          come back *)
  | Uplink_partition of { node : int; at_beat : int; beats : int }
      (** heartbeats from [node] stop reaching the fleet for [beats]
          beats starting at [at_beat]; the node itself keeps working and
          reconnects with the plan's backoff'd jitter *)
  | Straggle of { node : int; factor : float }
      (** the node runs [factor] >= 1 times slower in virtual time, so
          its heartbeats thin out by the same factor *)

type fleet_scenario = {
  events : fleet_event list;
  suspect_after : int;  (** missed beats before a suspect is declared dead *)
  recover_after : int;  (** beats a transiently-killed edge stays down *)
}

val fleet_scenario : ?recover_after:int -> suspect_after:int -> fleet_event list -> fleet_scenario
(** Validates the scenario: [suspect_after >= 1], [recover_after >= 1]
    (default 1), non-negative nodes/beats, straggle factors >= 1, and at
    most one event per node.  Raises [Invalid_argument] otherwise. *)

val fleet_none : suspect_after:int -> fleet_scenario
(** No churn. *)

val fleet_event_node : fleet_event -> int

val reconnect_beat : plan -> node:int -> at_beat:int -> beats:int -> beat_ns:float -> int
(** First beat a partitioned node's heartbeats reach the fleet again:
    the outage end plus the plan's deterministic jittered first-attempt
    backoff ({!backoff_ns}, retrier-keyed by node), rounded up to whole
    beats of [beat_ns]. *)
