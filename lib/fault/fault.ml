(* Deterministic fault injection.

   A [plan] describes, per site, how the world misbehaves: the ingress
   link drops or corrupts frames, the SMC boundary refuses entry
   transiently, the secure pool hits pressure it cannot absorb, the
   uplink loses signed audit batches.  Every decision is a pure function
   of (plan seed, site, stream, seq) — hashed through splitmix64 chains —
   never of call order or wall-clock time, so a faulty run replays
   bit-identically however the scheduler interleaves tasks.  An optional
   per-site [schedule] restricts a fault to a sequence-number range,
   which is the replayable analogue of "fail between t0 and t1" (the sim
   clock itself is host-measured in this reproduction, so gating on it
   would break determinism; see DESIGN.md "Fault model & degradation"). *)

module Rng = Sbt_crypto.Rng

type site =
  | Ingress_link
  | Smc_boundary
  | Secure_pool
  | Uplink
  | Crash_control
  | Crash_reboot
  | Disorder

exception Crash of site

let site_tag = function
  | Ingress_link -> 0x11
  | Smc_boundary -> 0x22
  | Secure_pool -> 0x33
  | Uplink -> 0x44
  | Crash_control -> 0x55
  | Crash_reboot -> 0x66
  | Disorder -> 0x77

let site_name = function
  | Ingress_link -> "ingress-link"
  | Smc_boundary -> "smc-boundary"
  | Secure_pool -> "secure-pool"
  | Uplink -> "uplink"
  | Crash_control -> "crash-control"
  | Crash_reboot -> "crash-reboot"
  | Disorder -> "disorder"

type spec = {
  drop_p : float;
  corrupt_p : float;
  fail_p : float;
  max_burst : int;
  schedule : (int * int) option;
}

let quiet = { drop_p = 0.0; corrupt_p = 0.0; fail_p = 0.0; max_burst = 1; schedule = None }

type plan = {
  seed : int64;
  ingress : spec;
  smc : spec;
  pool : spec;
  uplink : spec;
  disorder : spec;
  retry_budget : int;
  backoff_base_ns : float;
  backoff_cap_ns : float;
  crash : (site * int) option;
}

let none =
  {
    seed = 0L;
    ingress = quiet;
    smc = quiet;
    pool = quiet;
    uplink = quiet;
    disorder = quiet;
    retry_budget = 3;
    backoff_base_ns = 50_000.0;
    backoff_cap_ns = 10_000_000.0;
    crash = None;
  }

let spec_quiet s = s.drop_p = 0.0 && s.corrupt_p = 0.0 && s.fail_p = 0.0

let is_none p =
  spec_quiet p.ingress && spec_quiet p.smc && spec_quiet p.pool && spec_quiet p.uplink

let uniform ?(seed = 1L) ~rate () =
  let faulty = { quiet with drop_p = rate; corrupt_p = rate; fail_p = rate } in
  {
    none with
    seed;
    ingress = faulty;
    smc = { quiet with fail_p = rate; max_burst = 2 };
    pool = { quiet with fail_p = rate };
    uplink = { quiet with drop_p = rate };
  }

let spec_for plan site =
  match site with
  | Ingress_link -> plan.ingress
  | Smc_boundary -> plan.smc
  | Secure_pool -> plan.pool
  | Uplink -> plan.uplink
  | Disorder -> plan.disorder
  (* Crash sites trigger on an executed-task count, not a probability. *)
  | Crash_control | Crash_reboot -> quiet

let crash_after plan = plan.crash

let with_crash plan ~site ~after_tasks =
  (match site with
  | Crash_control | Crash_reboot -> ()
  | _ -> invalid_arg "Fault.with_crash: not a crash site");
  if after_tasks <= 0 then invalid_arg "Fault.with_crash: after_tasks must be positive";
  { plan with crash = Some (site, after_tasks) }

let without_crash plan = { plan with crash = None }

(* --- deterministic draws ------------------------------------------------ *)

let fold s v =
  let s = Int64.logxor s v in
  fst (Rng.splitmix64 s)

(* Raw 64-bit draw keyed by (seed, site, salt, stream, seq). *)
let draw plan ~site ~salt ~stream ~seq =
  let s = plan.seed in
  let s = fold s (Int64.of_int (site_tag site)) in
  let s = fold s (Int64.of_int salt) in
  let s = fold s (Int64.of_int stream) in
  let s = Int64.logxor s (Int64.of_int seq) in
  snd (Rng.splitmix64 s)

let to_unit x =
  (* Top 53 bits -> [0,1). *)
  Int64.to_float (Int64.shift_right_logical x 11) *. (1.0 /. 9007199254740992.0)

let scheduled spec ~seq =
  match spec.schedule with None -> true | Some (lo, hi) -> seq >= lo && seq <= hi

let chance plan ~site ~salt ~stream ~seq p =
  p > 0.0
  && scheduled (spec_for plan site) ~seq
  && to_unit (draw plan ~site ~salt ~stream ~seq) < p

(* --- per-site helpers --------------------------------------------------- *)

let drops_frame plan ~stream ~seq =
  chance plan ~site:Ingress_link ~salt:1 ~stream ~seq plan.ingress.drop_p

let corrupts_frame plan ~stream ~seq =
  chance plan ~site:Ingress_link ~salt:2 ~stream ~seq plan.ingress.corrupt_p

(* Which byte to damage and a guaranteed-nonzero xor mask for it. *)
let corrupt_byte plan ~stream ~seq ~len =
  if len <= 0 then (0, 1)
  else
    let x = draw plan ~site:Ingress_link ~salt:3 ~stream ~seq in
    let idx = Int64.to_int (Int64.rem (Int64.shift_right_logical x 8) (Int64.of_int len)) in
    let mask = 1 + (Int64.to_int (Int64.logand x 0xffL) land 0xfe) in
    (idx, mask)

(* Number of consecutive transient SMC entry failures for this request:
   0 most of the time; when faulting, between 1 and [max_burst]. *)
let smc_failures plan ~stream ~seq =
  if not (chance plan ~site:Smc_boundary ~salt:1 ~stream ~seq plan.smc.fail_p) then 0
  else
    let burst = max 1 plan.smc.max_burst in
    let x = draw plan ~site:Smc_boundary ~salt:2 ~stream ~seq in
    1 + Int64.to_int (Int64.rem (Int64.shift_right_logical x 8) (Int64.of_int burst))

let pool_sheds plan ~stream ~seq =
  chance plan ~site:Secure_pool ~salt:1 ~stream ~seq plan.pool.fail_p

let uplink_drops plan ~seq =
  chance plan ~site:Uplink ~salt:1 ~stream:0 ~seq plan.uplink.drop_p

(* --- disorder (reorder/delay) site ------------------------------------------

   The source-side fault site: an event is held back in flight and
   re-arrives later than its event time says it should.  Keyed by the
   event's stable identity (stream, global event index), so a disorder
   plan permutes the arrival order identically run to run — the
   reproducibility contract every other site already honors.  The site
   never drops or damages anything; it only decouples arrival order
   from event time, which is exactly what the watermark/late-data
   machinery must survive. *)

let disorder_plan ?(seed = 9L) ~rate () =
  { none with seed; disorder = { quiet with drop_p = rate } }

let delays_event plan ~stream ~seq =
  chance plan ~site:Disorder ~salt:1 ~stream ~seq plan.disorder.drop_p

(* Lateness in ticks for a delayed event: uniform in [1, max]. *)
let lateness_ticks plan ~stream ~seq ~max:m =
  if m <= 0 then 0
  else
    let x = draw plan ~site:Disorder ~salt:2 ~stream ~seq in
    1 + Int64.to_int (Int64.rem (Int64.shift_right_logical x 8) (Int64.of_int m))

(* Exponential backoff with full deterministic jitter, attempt >= 1.
   [retrier] decorrelates concurrent retriers contending on the same
   (stream, seq): each retrier identity perturbs the jitter key, so two
   sources backing off from the same busy SMC entry re-arrive at
   different times instead of colliding in lockstep.  [retrier = 0]
   (the default) reproduces the historical single-retrier sequence
   bit-for-bit.  The doubling is clamped by [backoff_cap_ns] so a deep
   retry burst cannot stall ingest unboundedly. *)
let backoff_ns ?(retrier = 0) plan ~stream ~seq ~attempt =
  let base = plan.backoff_base_ns *. Float.of_int (1 lsl min 16 (max 0 (attempt - 1))) in
  let key_stream = if retrier = 0 then stream else stream lxor (retrier * 0x10000) in
  let jitter =
    to_unit (draw plan ~site:Smc_boundary ~salt:(100 + attempt) ~stream:key_stream ~seq)
  in
  Float.min plan.backoff_cap_ns (base *. (0.5 +. (0.5 *. jitter)))

(* --- fleet churn scenarios -------------------------------------------------

   The fleet runner's deterministic churn vocabulary.  Beats are the
   fleet's virtual-time heartbeat unit (one beat per closed window), so
   a scenario is replayable by construction: no wall clock anywhere.
   At most one event per node keeps the failover story well-defined —
   a node that died cannot also straggle. *)

type fleet_event =
  | Kill of { node : int; at_beat : int; permanent : bool }
  | Uplink_partition of { node : int; at_beat : int; beats : int }
  | Straggle of { node : int; factor : float }

type fleet_scenario = {
  events : fleet_event list;
  suspect_after : int;
  recover_after : int;
}

let fleet_event_node = function
  | Kill { node; _ } | Uplink_partition { node; _ } | Straggle { node; _ } -> node

let fleet_scenario ?(recover_after = 1) ~suspect_after events =
  if suspect_after < 1 then invalid_arg "Fault.fleet_scenario: suspect_after must be >= 1";
  if recover_after < 1 then invalid_arg "Fault.fleet_scenario: recover_after must be >= 1";
  List.iter
    (function
      | Kill { node; at_beat; _ } ->
          if node < 0 || at_beat < 0 then invalid_arg "Fault.fleet_scenario: bad kill"
      | Uplink_partition { node; at_beat; beats } ->
          if node < 0 || at_beat < 0 || beats < 1 then
            invalid_arg "Fault.fleet_scenario: bad uplink partition"
      | Straggle { node; factor } ->
          if node < 0 || factor < 1.0 then invalid_arg "Fault.fleet_scenario: bad straggler")
    events;
  let nodes = List.map fleet_event_node events in
  if List.length (List.sort_uniq compare nodes) <> List.length nodes then
    invalid_arg "Fault.fleet_scenario: at most one event per node";
  { events; suspect_after; recover_after }

let fleet_none ~suspect_after = fleet_scenario ~suspect_after []

(* An uplink outage ends with a backoff'd reconnect: the node re-tries
   its heartbeat with the plan's deterministic jittered backoff (keyed
   by node identity), expressed in whole beats of [beat_ns]. *)
let reconnect_beat plan ~node ~at_beat ~beats ~beat_ns =
  if beat_ns <= 0.0 then invalid_arg "Fault.reconnect_beat: beat_ns must be positive";
  let delay = backoff_ns ~retrier:(node + 1) plan ~stream:node ~seq:at_beat ~attempt:1 in
  at_beat + beats + int_of_float (Float.ceil (delay /. beat_ns))
