type entry = Init | Finalize | Debug | Invoke | Fused

let entry_count = 5

let entry_name = function
  | Init -> "init"
  | Finalize -> "finalize"
  | Debug -> "debug"
  | Invoke -> "invoke"
  | Fused -> "fused"

let entry_index = function Init -> 0 | Finalize -> 1 | Debug -> 2 | Invoke -> 3 | Fused -> 4

exception Entry_busy of entry

type ('req, 'resp) t = {
  platform : Platform.t;
  handlers : ('req -> 'resp) option array;
  mutable fault_hook : (entry -> 'req -> bool) option;
  mutable busy_rejections : int;
  mutable observer : (Sbt_obs.Tracer.t * (unit -> float)) option;
}

let create platform =
  {
    platform;
    handlers = Array.make entry_count None;
    fault_hook = None;
    busy_rejections = 0;
    observer = None;
  }

let set_fault_hook t hook = t.fault_hook <- Some hook
let clear_fault_hook t = t.fault_hook <- None
let busy_rejections t = t.busy_rejections

let set_observer t ~tracer ~now_ns = t.observer <- Some (tracer, now_ns)
let clear_observer t = t.observer <- None

(* One "smc" complete span per charged switch pair, so a trace's span
   count can be checked against Platform accounting.  Times come from
   the caller's virtual clock and the modeled switch cost — never the
   host clock. *)
let trace_switch t entry =
  match t.observer with
  | None -> ()
  | Some (tracer, now_ns) ->
      Sbt_obs.Tracer.complete tracer ~pid:1 ~tid:0 ~cat:"smc" ~name:(entry_name entry)
        ~ts_ns:(now_ns ()) ~dur_ns:t.platform.Platform.cost.Cost_model.world_switch_ns ()

let trace_busy t entry =
  match t.observer with
  | None -> ()
  | Some (tracer, now_ns) ->
      Sbt_obs.Tracer.instant tracer ~pid:1 ~tid:0 ~cat:"smc-busy"
        ~name:("busy:" ^ entry_name entry) ~ts_ns:(now_ns ()) ()

let register t entry f =
  let i = entry_index entry in
  match t.handlers.(i) with
  | Some _ -> invalid_arg ("Smc.register: handler already registered for " ^ entry_name entry)
  | None -> t.handlers.(i) <- Some f

let call t entry req =
  match t.handlers.(entry_index entry) with
  | None -> raise Not_found
  | Some f ->
      (match t.fault_hook with
      | Some hook when hook entry req ->
          (* Refused at the monitor: no world switch happened, so none is
             charged and none needs restoring. *)
          t.busy_rejections <- t.busy_rejections + 1;
          trace_busy t entry;
          raise (Entry_busy entry)
      | _ -> ());
      Platform.enter_secure t.platform;
      let resp =
        try f req
        with exn ->
          Platform.exit_secure t.platform;
          trace_switch t entry;
          raise exn
      in
      Platform.exit_secure t.platform;
      trace_switch t entry;
      resp

let switch_pairs t = t.platform.Platform.switch_pairs
