(** Secure-monitor-call (SMC) dispatch: the TEE's entire entry surface.

    The StreamBox-TZ data plane exports exactly four entry functions
    (paper §9.1): initialization, finalization, one debugging hook, and one
    function shared by all 23 trusted primitives — plus, since PR 7, one
    entry for fused super-kernels, which executes a whole chain of
    per-record primitives in a single world-switch pair.  This module
    enforces that surface — handlers can only be registered for these five
    entries, and every call crosses the world boundary exactly once, with
    the switch pair charged to the platform's accounting. *)

type entry = Init | Finalize | Debug | Invoke | Fused

exception Entry_busy of entry
(** Raised by {!call} when an installed fault hook refuses the entry —
    modelling a transient secure-monitor failure (the monitor bounces the
    call before any world switch).  Callers are expected to retry with
    backoff and degrade gracefully past their budget. *)

val entry_count : int
(** 5, by construction. *)

val entry_name : entry -> string

type ('req, 'resp) t
(** A dispatch table whose handlers map ['req] to ['resp]. *)

val create : Platform.t -> ('req, 'resp) t

val register : ('req, 'resp) t -> entry -> ('req -> 'resp) -> unit
(** Raises [Invalid_argument] if [entry] already has a handler.  Handlers
    run in the secure world (the platform's world is [Secure] for their
    whole duration). *)

val call : ('req, 'resp) t -> entry -> 'req -> 'resp
(** Crosses into the secure world, runs the handler, crosses back.
    Raises [Not_found] if no handler is registered.  Exceptions raised by
    the handler still restore the normal world before propagating — a
    crashing primitive must not leave the model stuck in the TEE. *)

val switch_pairs : ('req, 'resp) t -> int

val set_fault_hook : ('req, 'resp) t -> (entry -> 'req -> bool) -> unit
(** Install a fault-injection hook consulted before every {!call}; when
    it returns [true] the call raises {!Entry_busy} without entering the
    secure world (no switch pair is charged).  Used by the deterministic
    fault layer; absent by default, in which case {!call} is exactly the
    pre-fault-model path. *)

val clear_fault_hook : ('req, 'resp) t -> unit

val busy_rejections : ('req, 'resp) t -> int
(** How many calls the fault hook has refused so far. *)

val set_observer :
  ('req, 'resp) t -> tracer:Sbt_obs.Tracer.t -> now_ns:(unit -> float) -> unit
(** Record one complete span (pid 1, category ["smc"]) per charged
    switch pair — including calls whose handler raised, since those
    still switch worlds — and one instant (category ["smc-busy"]) per
    {!Entry_busy} rejection.  Span timestamps come from [now_ns] (the
    caller's virtual clock) and durations from the platform's modeled
    switch cost, so observation cannot perturb the run. *)

val clear_observer : ('req, 'resp) t -> unit
