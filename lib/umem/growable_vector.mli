(** Relocating growable buffer — the C++ [std::vector] model.

    The baseline uArray is compared against in Figure 11: it grows
    transparently but by doubling into a freshly allocated region and
    copying, where a uArray grows in place.  Page accounting mirrors
    uArray's so the two are also comparable on memory.

    With a {!Slab} arena attached ([?slab]), small vectors grow through
    the slab size classes instead of page-doubling — a 64-byte vector
    accounts 64 bytes, not a pinned 4 KB page — and the old backing
    (slot or pages) is released eagerly as soon as the growth copy
    completes, rather than parking until window close. *)

type t

val create : ?slab:Slab.t -> pool:Page_pool.t -> width:int -> unit -> t
(** Starts with a small capacity (16 records), like a freshly constructed
    vector. *)

val length : t -> int
val capacity : t -> int
val relocations : t -> int
(** How many times the buffer has been reallocated and copied. *)

val append_fields3 : t -> int32 -> int32 -> int32 -> unit
val append : t -> int32 array -> unit
val get_field : t -> int -> int -> int32
val raw : t -> Uarray.buf
val reserve : t -> int -> int
(** Grow by [n] uninitialized records (relocating as needed); returns the
    first new index. *)

val set_field : t -> int -> int -> int32 -> unit
val free : t -> unit
(** Release all committed pages back to the pool. *)
