(** Size-class slab allocator for small transient secure-memory objects.

    The uArray region allocator keeps bulk stream data fast, but small
    transient allocations — per-piece segment tables, merge scratch,
    fused-step rows, egress staging, growable-vector backing — previously
    funnelled through shared {!Page_pool} commit/release paths at page
    granularity: a 24-byte scratch row pinned a full 4 KB page.

    A slab arena carves whole pool pages into fixed-size slots of one of
    six size classes (64..2048 bytes) tracked by a per-page free-slot
    bitmap (the [POOL_PAGE_T] shape): allocation is find-first-set on the
    bitmap, free is O(1) address arithmetic back to (page, slot).  An
    arena is single-owner (one domain) and lock-free; it touches its
    backing {!Page_pool} (or {!Page_pool.shard}) only in bulk — one page
    per slab refill, and empty-page returns at {!drain} (window close).
    Pages held by an arena are counted as committed in the parent pool,
    so pool committed/high-water accounting (Figures 7/10, per-tenant
    quotas) stays a conservative bound on real usage. *)

type t
(** A per-domain arena.  Not thread-safe: exactly one domain may use a
    given arena, matching the {!Page_pool.shard} ownership rule. *)

type ptr = int
(** Opaque slot address: [page_id * page_size + slot * class_bytes].
    Only meaningful to the arena that returned it. *)

val size_classes : int array
(** The slot sizes in bytes: [\[|64; 128; 256; 512; 1024; 2048|\]]. *)

val max_class_bytes : int
(** 2048 — requests above this must use the page-granular paths. *)

val fits : int -> bool
(** [fits bytes] is true when [0 < bytes <= max_class_bytes]. *)

val class_bytes_for : int -> int
(** Slot size of the smallest class covering a request.
    Raises [Invalid_argument] unless [fits bytes]. *)

(** {2 Global switch}

    Process-wide allocator toggle ([sbt_run --slab on|off]).  Call sites
    fall back to their historical page-granular / host paths when
    disabled; sealed results, audit streams, and verdicts are
    byte-identical either way (property-tested and CI-cmp'd). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {2 Arenas} *)

val over_pool : Page_pool.t -> t
(** Arena drawing slab pages directly from a pool (single-threaded
    contexts: the data plane, benches, tests). *)

val over_shard : Page_pool.shard -> t
(** Arena drawing slab pages through a domain's pool shard (the
    real-parallel executor): refills ride the shard's bulk quota chunks
    and {!drain} + {!Page_pool.merge_shard} folds everything back at
    window close. *)

val alloc : t -> bytes:int -> ptr
(** Allocate one slot of the smallest class covering [bytes].  Raises
    [Invalid_argument] unless [fits bytes]; propagates
    {!Page_pool.Out_of_secure_memory} when a needed slab-page refill
    exceeds the backing pool's budget. *)

val free : t -> ptr -> unit
(** O(1) by address arithmetic.  Raises [Invalid_argument] on a pointer
    the arena does not own, a misaligned address, or a double free. *)

val view : t -> ptr -> Uarray.buf
(** The slot's backing store as an int32 view of [class_bytes / 4]
    cells, valid until the slot is freed. *)

val slot_bytes : t -> ptr -> int
(** The class size backing [ptr] (>= the requested bytes). *)

val drain : t -> unit
(** Window close: return every fully-free slab page to the backing
    pool/shard.  Partially-occupied pages stay held (and counted as
    committed in the parent — the conservative bound). *)

(** {2 Introspection / metrics} *)

type class_stats = { cls_bytes : int; cls_allocs : int; cls_frees : int }

type stats = {
  per_class : class_stats array;
  live_bytes : int;  (** bytes in currently-allocated slots *)
  live_high_water_bytes : int;
  held_bytes : int;  (** slab pages currently held, live or not *)
  held_high_water_bytes : int;
  frag_high_water_bytes : int;
      (** peak of [held_bytes - live_bytes]: internal fragmentation plus
          empty-page slack not yet drained *)
  refills : int;  (** slab pages drawn from the backing pool *)
  drains : int;  (** slab pages returned at {!drain} *)
}

val stats : t -> stats
val live_bytes : t -> int
val held_bytes : t -> int

val publish : t -> Sbt_obs.Metrics.t -> unit
(** Register and populate the [umem.*] metrics from this arena's
    counters: [umem.slab.alloc.<class>] / [umem.slab.free.<class>]
    counters, [umem.slab.live_bytes] / [umem.slab.held_bytes] /
    [umem.slab.frag_bytes] gauges (high-water tracked by the registry),
    and [umem.arena.refills] / [umem.arena.drains] counters.  Counter
    pushes are deltas since the arena's last publish, so republishing
    (e.g. once per metrics quote) never double-counts; several arenas
    publishing into one registry sum. *)

(** {2 Free-slot bitmaps}

    Exposed for direct testing (word-boundary cases) and reuse. *)

module Bitmap : sig
  val make : slots:int -> int64 array
  (** All [slots] bits set (free). *)

  val find_first_set : int64 array -> int
  (** Index of the lowest set bit, or [-1] when none. *)

  val test : int64 array -> int -> bool
  val set : int64 array -> int -> unit
  val clear : int64 array -> int -> unit
end
