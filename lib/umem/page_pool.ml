type t = {
  budget_pages : int;
  mutable committed : int;
  mutable high_water : int;
  lock : Mutex.t;
      (* Taken only on the shard refill/return paths.  The single-threaded
         data-plane paths never contend: recording and parallel execution
         are sequential phases, and shards are the only multi-domain
         clients of the pool. *)
}

exception Out_of_secure_memory of { requested_pages : int; available_pages : int }

let page_size = 4096
let pages_for_bytes n = (n + page_size - 1) / page_size

let create ~budget_bytes =
  if budget_bytes <= 0 then invalid_arg "Page_pool.create: budget must be positive";
  {
    budget_pages = pages_for_bytes budget_bytes;
    committed = 0;
    high_water = 0;
    lock = Mutex.create ();
  }

let available_pages t = t.budget_pages - t.committed

let commit t ~pages =
  if pages < 0 then invalid_arg "Page_pool.commit: negative pages";
  if t.committed + pages > t.budget_pages then
    raise (Out_of_secure_memory { requested_pages = pages; available_pages = available_pages t });
  t.committed <- t.committed + pages;
  if t.committed > t.high_water then t.high_water <- t.committed

let release t ~pages =
  if pages < 0 || pages > t.committed then invalid_arg "Page_pool.release: bad page count";
  t.committed <- t.committed - pages

let committed_pages t = t.committed
let committed_bytes t = t.committed * page_size
let budget_bytes t = t.budget_pages * page_size
let high_water_bytes t = t.high_water * page_size
let reset_high_water t = t.high_water <- t.committed

(* --- per-domain shards ---------------------------------------------------

   A shard is a domain-local view of the parent pool: the owning domain
   commits and releases against shard-local counters without taking any
   lock, and the shard draws page quota from the parent in chunks (under
   the parent lock) only when its local quota runs dry.

   The chunk size adapts: it starts at [base_refill] and doubles on every
   dry run (capped at [max_refill_factor] times the base), so a shard
   under sustained allocation pressure — a slab arena refilling page
   after page — amortizes the parent lock over ever-larger grants instead
   of inheriting the fixed-chunk contention PR 3 documented.  Both drain
   paths return slack eagerly: [shard_release] caps idle quota against
   the *current* chunk size, and [merge_shard] (window close) returns all
   quota and decays the chunk back to [base_refill].

   Quota held by a shard is counted as committed in the parent, so the
   parent's committed/high-water accounting — the source of truth behind
   Figures 7 and 10 — stays a conservative bound on real usage; the slack
   is bounded by twice the current chunk size per shard and is returned
   in full at every [merge_shard]. *)

type shard = {
  parent : t;
  base_refill : int;
  mutable refill : int;  (* current (adaptive) refill chunk *)
  mutable quota : int;  (* parent pages granted but not locally committed *)
  mutable s_committed : int;
  mutable s_high_water : int;
  mutable s_refills : int;  (* dry runs that took the parent lock *)
  mutable s_drains : int;  (* slack-return trips to the parent *)
}

let max_refill_factor = 8

let default_refill_pages = 16

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let shards ?(refill_pages = default_refill_pages) t ~n =
  if n <= 0 then invalid_arg "Page_pool.shards: n must be positive";
  if refill_pages <= 0 then invalid_arg "Page_pool.shards: refill_pages must be positive";
  Array.init n (fun _ ->
      {
        parent = t;
        base_refill = refill_pages;
        refill = refill_pages;
        quota = 0;
        s_committed = 0;
        s_high_water = 0;
        s_refills = 0;
        s_drains = 0;
      })

let shard_commit s ~pages =
  if pages < 0 then invalid_arg "Page_pool.shard_commit: negative pages";
  if s.quota < pages then begin
    let need = pages - s.quota in
    let want = max need s.refill in
    locked s.parent (fun () ->
        let take = min want (available_pages s.parent) in
        if take < need then
          raise
            (Out_of_secure_memory
               { requested_pages = need; available_pages = available_pages s.parent });
        commit s.parent ~pages:take;
        s.quota <- s.quota + take);
    s.s_refills <- s.s_refills + 1;
    (* Repeated dry runs mean the chunk is too small for this phase's
       allocation rate: double it (bounded) so lock trips amortize. *)
    s.refill <- min (2 * s.refill) (max_refill_factor * s.base_refill)
  end;
  s.quota <- s.quota - pages;
  s.s_committed <- s.s_committed + pages;
  if s.s_committed > s.s_high_water then s.s_high_water <- s.s_committed

let shard_release s ~pages =
  if pages < 0 || pages > s.s_committed then
    invalid_arg "Page_pool.shard_release: bad page count";
  s.s_committed <- s.s_committed - pages;
  s.quota <- s.quota + pages;
  (* Cap the idle quota a shard sits on so one domain cannot starve the
     others between merges.  The cap tracks the adaptive chunk size, so a
     shard that just finished a hot phase sheds its extra slack as soon
     as frees outpace allocations. *)
  if s.quota > 2 * s.refill then begin
    let spare = s.quota - s.refill in
    locked s.parent (fun () -> release s.parent ~pages:spare);
    s.quota <- s.quota - spare;
    s.s_drains <- s.s_drains + 1
  end

let merge_shard s =
  (* Window close: return every unused quota page to the parent so its
     committed count drops back to real (shard-committed) usage, and
     decay the refill chunk back to its base — the next window re-earns
     any growth.  Only the owning domain may call this — shard counters
     are unlocked. *)
  if s.quota > 0 then begin
    let spare = s.quota in
    locked s.parent (fun () -> release s.parent ~pages:spare);
    s.quota <- 0;
    s.s_drains <- s.s_drains + 1
  end;
  s.refill <- s.base_refill

let shard_committed_bytes s = s.s_committed * page_size
let shard_high_water_bytes s = s.s_high_water * page_size
let shard_refill_pages s = s.refill
let shard_refills s = s.s_refills
let shard_drains s = s.s_drains
