type backing =
  | Host  (* initial capacity only: nothing committed yet *)
  | Pages of int  (* page-granular commitment, in pages *)
  | Slot of Slab.ptr  (* slab slot of the matching size class *)

type t = {
  pool : Page_pool.t;
  slab : Slab.t option;
  width : int;
  mutable buf : Uarray.buf;
  mutable len : int;
  mutable cap : int;
  mutable backing : backing;
  mutable relocations : int;
}

let initial_capacity = 16

let create ?slab ~pool ~width () =
  if width <= 0 then invalid_arg "Growable_vector.create: width must be positive";
  let buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (initial_capacity * width) in
  { pool; slab; width; buf; len = 0; cap = initial_capacity; backing = Host; relocations = 0 }

let length t = t.len
let capacity t = t.cap
let relocations t = t.relocations

let committed_pages t = match t.backing with Pages p -> p | Host | Slot _ -> 0

let release_backing t =
  match t.backing with
  | Host -> ()
  | Pages p ->
      Page_pool.release t.pool ~pages:p;
      t.backing <- Host
  | Slot ptr ->
      (match t.slab with Some a -> Slab.free a ptr | None -> assert false);
      t.backing <- Host

(* Doubling growth: allocate a fresh region, copy everything over, release
   the old backing — the relocation cost uArray avoids.  During the copy
   both regions are committed, which is also how a real vector behaves.

   With a slab arena attached, small vectors grow slot-to-slot through the
   size classes instead of page-doubling: the new capacity is whatever the
   matching class holds, and the old slot (or pages) is freed eagerly the
   moment the copy completes — no 4 KB page pinned under a 64-byte vector,
   no stale backing parked until window close. *)
let grow_capacity t needed =
  let live = t.len * t.width in
  let blit_into (new_buf : Uarray.buf) =
    if live > 0 then
      Bigarray.Array1.blit (Bigarray.Array1.sub t.buf 0 live) (Bigarray.Array1.sub new_buf 0 live)
  in
  let slab_grow a =
    let want_bytes = needed * t.width * 4 in
    if Slab.fits want_bytes then begin
      let ptr = Slab.alloc a ~bytes:want_bytes in
      let slot = Slab.view a ptr in
      blit_into slot;
      release_backing t;
      t.buf <- slot;
      t.cap <- Bigarray.Array1.dim slot / t.width;
      t.backing <- Slot ptr;
      true
    end
    else false
  in
  let grown = match t.slab with Some a -> slab_grow a | None -> false in
  if not grown then begin
    let new_cap = ref (max t.cap 1) in
    while !new_cap < needed do
      new_cap := !new_cap * 2
    done;
    let new_pages = Page_pool.pages_for_bytes (!new_cap * t.width * 4) in
    Page_pool.commit t.pool ~pages:new_pages;
    let new_buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (!new_cap * t.width) in
    blit_into new_buf;
    release_backing t;
    t.buf <- new_buf;
    t.cap <- !new_cap;
    t.backing <- Pages new_pages
  end;
  t.relocations <- t.relocations + 1

let ensure t needed =
  if needed > t.cap then grow_capacity t needed
  else
    match t.backing with
    | Slot _ -> () (* the whole slot is committed at alloc time *)
    | Host | Pages _ ->
        if Option.is_some t.slab && t.backing = Host && needed > 0 then
          (* Slab-backed vectors adopt a slot as soon as they hold data,
             so even the never-grown case is slot-accounted. *)
          grow_capacity t (max needed 1)
        else begin
          let pages = Page_pool.pages_for_bytes (needed * t.width * 4) in
          let committed = committed_pages t in
          if pages > committed then begin
            Page_pool.commit t.pool ~pages:(pages - committed);
            t.backing <- Pages pages
          end
        end

let reserve t n =
  if n < 0 then invalid_arg "Growable_vector.reserve: negative count";
  let first = t.len in
  ensure t (t.len + n);
  t.len <- t.len + n;
  first

let append_fields3 t a b c =
  if t.width <> 3 then invalid_arg "Growable_vector.append_fields3: width <> 3";
  let r = reserve t 1 in
  let base = r * 3 in
  Bigarray.Array1.unsafe_set t.buf base a;
  Bigarray.Array1.unsafe_set t.buf (base + 1) b;
  Bigarray.Array1.unsafe_set t.buf (base + 2) c

let append t fields =
  if Array.length fields <> t.width then invalid_arg "Growable_vector.append: wrong field count";
  let r = reserve t 1 in
  for i = 0 to t.width - 1 do
    Bigarray.Array1.unsafe_set t.buf ((r * t.width) + i) fields.(i)
  done

let get_field t r f =
  if r < 0 || r >= t.len || f < 0 || f >= t.width then
    invalid_arg "Growable_vector.get_field: out of bounds";
  Bigarray.Array1.unsafe_get t.buf ((r * t.width) + f)

let set_field t r f v =
  if r < 0 || r >= t.len || f < 0 || f >= t.width then
    invalid_arg "Growable_vector.set_field: out of bounds";
  Bigarray.Array1.unsafe_set t.buf ((r * t.width) + f) v

let raw t = t.buf

let free t =
  release_backing t;
  t.len <- 0
