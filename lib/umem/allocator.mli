(** The specialized TEE memory allocator (paper §6).

    Places uArrays into uGroups guided by the control plane's (untrusted)
    consumption hints:

    - {b Consumed-after} [b1 <= b2]: the new uArray [b2] will be consumed
      after the existing [b1].  The allocator walks [b2]'s consumed-after
      chain backwards and appends [b2] to the uGroup of the first
      predecessor that is (a) produced and (b) at the end of its group;
      otherwise it opens a fresh group.
    - {b Consumed-in-parallel} [(||k)]: the k new uArrays will be consumed
      by independent workers; each goes into its own uGroup so a straggler
      cannot pin the others' memory.

    Hints are advisory: a misleading hint can only waste memory (slowing
    reclamation), never corrupt data — which tests assert.

    The [`Producer_grouping] mode implements the ablation of Figure 10:
    ignore hints and co-locate uArrays produced by the same primitive
    instance, on the heuristic that one generation is reclaimed together. *)

type mode =
  | Hint_guided
  | Producer_grouping

type hint =
  | No_hint
  | Consumed_after of Uarray.t
  | Consumed_in_parallel
      (** the array is one of a [(||k)] set: always isolate it. *)

type t

val create :
  ?mode:mode -> pool:Page_pool.t -> ?vspace_stride:int -> unit -> t
(** [vspace_stride] defaults to the pool budget (one secure-DRAM-sized
    virtual range per uGroup). *)

val mode : t -> mode

val alloc :
  t ->
  ?hint:hint ->
  ?scope:Uarray.scope ->
  ?producer:int ->
  width:int ->
  capacity:int ->
  unit ->
  Uarray.t
(** Allocate and place a new open uArray.  [producer] identifies the
    producing primitive instance (used by [`Producer_grouping] and by the
    audit log). *)

val retire : t -> Uarray.t -> unit
(** Retire the array, run reclamation on its group, and release the
    group's virtual range if it is exhausted. *)

val produce : t -> Uarray.t -> unit
(** Seal the array and run reclamation on its group (sealing the tail can
    unblock nothing, but keeps group state canonical). *)

val live_groups : t -> int
val live_uarrays : t -> int
val committed_bytes : t -> int
val pinned_bytes : t -> int
(** Total bytes pinned behind stragglers across groups (Figure 10's
    waste metric). *)

val vspace_utilization : t -> float
val next_uarray_id : t -> int
(** Peek at the next id the allocator will assign (monotonic; ids also key
    audit records). *)

val reserve_id : t -> int
(** Consume and return the next id without allocating a uArray.  The data
    plane assigns watermarks ids from the same sequence, so audit-record
    identifiers stay near-monotonic and delta-compress well. *)

val alloc_restored :
  t -> id:int -> ?scope:Uarray.scope -> width:int -> capacity:int -> unit -> Uarray.t
(** Checkpoint restore: allocate a uArray under its {e original} id (each
    in a fresh group) and advance the id counter past it, so audit
    records emitted after recovery name exactly the ids the uninterrupted
    run would have. *)

val force_next_id : t -> next:int -> unit
(** Pin the id counter to the checkpointed value after restoring live
    arrays.  Refuses to move backwards (ids must never be reused). *)

val set_observer : t -> tracer:Sbt_obs.Tracer.t -> now_ns:(unit -> float) -> unit
(** Emit a ["secure-pool"] counter sample (committed bytes, live
    uArrays/uGroups) on every allocation and every reclamation that
    released arrays, plus a ["ugroup-reclaim"] instant per such
    reclamation.  Timestamps come from [now_ns] (the data plane's
    virtual clock); observation never touches allocator decisions. *)

val clear_observer : t -> unit
