type mode = Hint_guided | Producer_grouping

type hint = No_hint | Consumed_after of Uarray.t | Consumed_in_parallel

type t = {
  mode : mode;
  pool : Page_pool.t;
  vspace : Vspace.t;
  group_of : (int, Ugroup.t) Hashtbl.t; (* uarray id -> group *)
  producer_group : (int, Ugroup.t) Hashtbl.t; (* producer id -> its current group *)
  mutable groups : Ugroup.t list;
  mutable next_uarray_id : int;
  mutable next_group_id : int;
  mutable live_arrays : int;
  mutable observer : (Sbt_obs.Tracer.t * (unit -> float)) option;
}

let create ?(mode = Hint_guided) ~pool ?vspace_stride () =
  let stride =
    match vspace_stride with Some s -> s | None -> Page_pool.budget_bytes pool
  in
  {
    mode;
    pool;
    vspace = Vspace.create ~stride_bytes:stride ();
    group_of = Hashtbl.create 64;
    producer_group = Hashtbl.create 16;
    groups = [];
    next_uarray_id = 0;
    next_group_id = 0;
    live_arrays = 0;
    observer = None;
  }

let mode t = t.mode

let set_observer t ~tracer ~now_ns = t.observer <- Some (tracer, now_ns)
let clear_observer t = t.observer <- None

let sample_pool t =
  match t.observer with
  | None -> ()
  | Some (tracer, now_ns) ->
      Sbt_obs.Tracer.counter tracer ~pid:1 ~tid:0 ~name:"secure-pool" ~ts_ns:(now_ns ())
        ~series:
          [
            ("committed_bytes", float_of_int (Page_pool.committed_bytes t.pool));
            ("live_uarrays", float_of_int t.live_arrays);
            ("live_groups", float_of_int (List.length t.groups));
          ]

let fresh_group t =
  let g = Ugroup.create ~id:t.next_group_id ~vbase:(Vspace.reserve t.vspace) in
  t.next_group_id <- t.next_group_id + 1;
  t.groups <- g :: t.groups;
  g

(* A group can accept a new member only if its tail is not open. *)
let tail_accepts g =
  match Ugroup.last g with
  | None -> true
  | Some ua -> not (Uarray.is_open ua)

(* Walk back the consumed-after chain from [pred]: append after the first
   predecessor that is produced and sits at the end of its group. *)
let rec place_after t pred =
  match Hashtbl.find_opt t.group_of (Uarray.id pred) with
  | None -> fresh_group t (* predecessor already fully reclaimed: start anew *)
  | Some g -> (
      let at_end =
        match Ugroup.last g with
        | Some last -> Uarray.id last = Uarray.id pred
        | None -> false
      in
      match Uarray.state pred with
      | Uarray.Produced when at_end -> g
      | Uarray.Retired when at_end && tail_accepts g -> g
      | Uarray.Open | Uarray.Produced | Uarray.Retired ->
          (* Not placeable here; the paper keeps walking the chain, which we
             approximate by checking the group tail (the chain is laid out
             in group order). *)
          (match Ugroup.last g with
          | Some last when Uarray.id last <> Uarray.id pred && tail_accepts g -> g
          | Some last when Uarray.id last <> Uarray.id pred -> place_after t last
          | Some _ | None -> fresh_group t))

let choose_group t hint producer =
  match t.mode with
  | Producer_grouping -> (
      (* Ablation heuristic: same producer => same generation => same group. *)
      let key = match producer with Some p -> p | None -> -1 in
      match Hashtbl.find_opt t.producer_group key with
      | Some g when tail_accepts g -> g
      | Some _ | None ->
          let g = fresh_group t in
          Hashtbl.replace t.producer_group key g;
          g)
  | Hint_guided -> (
      match hint with
      | Consumed_in_parallel -> fresh_group t
      | Consumed_after pred -> place_after t pred
      | No_hint -> fresh_group t)

let alloc t ?(hint = No_hint) ?scope ?producer ~width ~capacity () =
  let g = choose_group t hint producer in
  let ua =
    match scope with
    | Some scope -> Uarray.create ~id:t.next_uarray_id ~pool:t.pool ~width ~capacity ~scope ()
    | None -> Uarray.create ~id:t.next_uarray_id ~pool:t.pool ~width ~capacity ()
  in
  t.next_uarray_id <- t.next_uarray_id + 1;
  Ugroup.append g ua;
  Hashtbl.replace t.group_of (Uarray.id ua) g;
  t.live_arrays <- t.live_arrays + 1;
  sample_pool t;
  ua

(* Checkpoint restore: re-materialize an array under its original id.
   Each restored array gets its own fresh group — hint-guided grouping
   reflects a production order the restored plane no longer replays —
   and the id counter only ever moves forward so post-restore allocs
   continue the original sequence. *)
let alloc_restored t ~id ?scope ~width ~capacity () =
  if id < 0 then invalid_arg "Allocator.alloc_restored: negative id";
  let g = fresh_group t in
  let ua =
    match scope with
    | Some scope -> Uarray.create ~id ~pool:t.pool ~width ~capacity ~scope ()
    | None -> Uarray.create ~id ~pool:t.pool ~width ~capacity ()
  in
  if id >= t.next_uarray_id then t.next_uarray_id <- id + 1;
  Ugroup.append g ua;
  Hashtbl.replace t.group_of (Uarray.id ua) g;
  t.live_arrays <- t.live_arrays + 1;
  sample_pool t;
  ua

let force_next_id t ~next =
  if next < t.next_uarray_id then invalid_arg "Allocator.force_next_id: would reuse ids";
  t.next_uarray_id <- next

(* Released members were all retired earlier, and [retire] already dropped
   their [group_of] entries, so only the live-array count needs updating. *)
let reclaim_group t g =
  let released = Ugroup.reclaim g in
  t.live_arrays <- t.live_arrays - released;
  if Ugroup.is_exhausted g then begin
    Vspace.release t.vspace (Ugroup.vbase g);
    t.groups <- List.filter (fun g' -> Ugroup.id g' <> Ugroup.id g) t.groups
  end;
  if released > 0 then begin
    (match t.observer with
    | None -> ()
    | Some (tracer, now_ns) ->
        Sbt_obs.Tracer.instant tracer ~pid:1 ~tid:0 ~cat:"umem" ~name:"ugroup-reclaim"
          ~ts_ns:(now_ns ())
          ~args:[ ("group", Sbt_obs.Tracer.Int (Ugroup.id g)); ("released", Sbt_obs.Tracer.Int released) ]
          ());
    sample_pool t
  end

let retire t ua =
  Uarray.retire ua;
  match Hashtbl.find_opt t.group_of (Uarray.id ua) with
  | None -> invalid_arg "Allocator.retire: unknown uArray"
  | Some g ->
      Hashtbl.remove t.group_of (Uarray.id ua);
      reclaim_group t g

let produce t ua =
  Uarray.produce ua;
  match Hashtbl.find_opt t.group_of (Uarray.id ua) with
  | None -> invalid_arg "Allocator.produce: unknown uArray"
  | Some g -> reclaim_group t g

let live_groups t = List.length t.groups
let live_uarrays t = t.live_arrays
let committed_bytes t = Page_pool.committed_bytes t.pool

let pinned_bytes t = List.fold_left (fun acc g -> acc + Ugroup.pinned_bytes g) 0 t.groups

let vspace_utilization t = Vspace.utilization t.vspace
let next_uarray_id t = t.next_uarray_id

let reserve_id t =
  let id = t.next_uarray_id in
  t.next_uarray_id <- id + 1;
  id
