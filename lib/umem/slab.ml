module Pool = Page_pool

(* --- free-slot bitmaps --------------------------------------------------

   One int64 word per 64 slots, bit set = slot free (the POOL_PAGE_T
   free_ptrs_bmap shape).  Allocation is find-first-set; a 2048-byte page
   of 64-byte slots needs exactly one word, larger classes a fraction. *)

module Bitmap = struct
  let make ~slots =
    if slots <= 0 then invalid_arg "Slab.Bitmap.make: slots must be positive";
    let words = (slots + 63) / 64 in
    let bm = Array.make words 0L in
    for w = 0 to words - 1 do
      let bits = min 64 (slots - (w * 64)) in
      bm.(w) <-
        (if bits = 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L)
    done;
    bm

  (* Count trailing zeros of a non-zero word by binary descent. *)
  let ctz64 x =
    let n = ref 0 and x = ref x in
    if Int64.equal (Int64.logand !x 0xFFFFFFFFL) 0L then begin
      n := !n + 32;
      x := Int64.shift_right_logical !x 32
    end;
    if Int64.equal (Int64.logand !x 0xFFFFL) 0L then begin
      n := !n + 16;
      x := Int64.shift_right_logical !x 16
    end;
    if Int64.equal (Int64.logand !x 0xFFL) 0L then begin
      n := !n + 8;
      x := Int64.shift_right_logical !x 8
    end;
    if Int64.equal (Int64.logand !x 0xFL) 0L then begin
      n := !n + 4;
      x := Int64.shift_right_logical !x 4
    end;
    if Int64.equal (Int64.logand !x 0x3L) 0L then begin
      n := !n + 2;
      x := Int64.shift_right_logical !x 2
    end;
    if Int64.equal (Int64.logand !x 0x1L) 0L then incr n;
    !n

  let find_first_set bm =
    let words = Array.length bm in
    let rec go w =
      if w >= words then -1
      else if not (Int64.equal bm.(w) 0L) then (w * 64) + ctz64 bm.(w)
      else go (w + 1)
    in
    go 0

  let mask i = Int64.shift_left 1L (i land 63)
  let test bm i = not (Int64.equal (Int64.logand bm.(i lsr 6) (mask i)) 0L)
  let set bm i = bm.(i lsr 6) <- Int64.logor bm.(i lsr 6) (mask i)
  let clear bm i = bm.(i lsr 6) <- Int64.logand bm.(i lsr 6) (Int64.lognot (mask i))
end

(* --- size classes ------------------------------------------------------- *)

let size_classes = [| 64; 128; 256; 512; 1024; 2048 |]
let n_classes = Array.length size_classes
let max_class_bytes = size_classes.(n_classes - 1)
let fits bytes = bytes > 0 && bytes <= max_class_bytes

let class_of_bytes bytes =
  if not (fits bytes) then
    invalid_arg (Printf.sprintf "Slab: %d bytes outside slab classes (1..%d)" bytes max_class_bytes);
  let rec go c = if size_classes.(c) >= bytes then c else go (c + 1) in
  go 0

let class_bytes_for bytes = size_classes.(class_of_bytes bytes)

(* --- global switch ------------------------------------------------------ *)

let switch = Atomic.make true
let enabled () = Atomic.get switch
let set_enabled v = Atomic.set switch v

(* --- slab pages and arenas ---------------------------------------------- *)

type page = {
  cls : int;
  p_slot_bytes : int;
  slots : int;
  bitmap : int64 array;
  mutable free_slots : int;
  pid : int;
  store : Uarray.buf; (* page_size bytes of real backing, as int32 cells *)
}

type source = Pool_src of Pool.t | Shard_src of Pool.shard

type ptr = int

type t = {
  source : source;
  pages : (int, page) Hashtbl.t; (* pid -> page: O(1) free by arithmetic *)
  partial : page list array; (* per class, pages with >= 1 free slot *)
  mutable next_pid : int;
  allocs : int array; (* per class *)
  frees : int array;
  mutable live : int; (* bytes in allocated slots *)
  mutable live_hw : int;
  mutable held : int; (* bytes of slab pages held *)
  mutable held_hw : int;
  mutable frag_hw : int; (* peak held - live *)
  mutable refills : int; (* pages drawn from the source *)
  mutable drains : int; (* pages returned to the source *)
  (* Counter values already pushed to a registry, so [publish] adds only
     the delta and stays safe to call repeatedly (e.g. once per metrics
     quote) without double counting. *)
  pub_allocs : int array;
  pub_frees : int array;
  mutable pub_refills : int;
  mutable pub_drains : int;
}

let make source =
  {
    source;
    pages = Hashtbl.create 64;
    partial = Array.make n_classes [];
    next_pid = 0;
    allocs = Array.make n_classes 0;
    frees = Array.make n_classes 0;
    live = 0;
    live_hw = 0;
    held = 0;
    held_hw = 0;
    frag_hw = 0;
    refills = 0;
    drains = 0;
    pub_allocs = Array.make n_classes 0;
    pub_frees = Array.make n_classes 0;
    pub_refills = 0;
    pub_drains = 0;
  }

let over_pool pool = make (Pool_src pool)
let over_shard shard = make (Shard_src shard)

let source_commit t ~pages =
  match t.source with
  | Pool_src p -> Pool.commit p ~pages
  | Shard_src s -> Pool.shard_commit s ~pages

let source_release t ~pages =
  match t.source with
  | Pool_src p -> Pool.release p ~pages
  | Shard_src s -> Pool.shard_release s ~pages

let note_frag t =
  let f = t.held - t.live in
  if f > t.frag_hw then t.frag_hw <- f

let new_page t cls =
  (* The only point an allocation touches the shared pool: one whole slab
     page.  Shard-backed arenas additionally batch this behind the
     shard's (adaptive) bulk refill, so parent-lock traffic is O(pages /
     refill chunk), not O(allocations). *)
  source_commit t ~pages:1;
  t.refills <- t.refills + 1;
  let sb = size_classes.(cls) in
  let slots = Pool.page_size / sb in
  let p =
    {
      cls;
      p_slot_bytes = sb;
      slots;
      bitmap = Bitmap.make ~slots;
      free_slots = slots;
      pid = t.next_pid;
      store = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (Pool.page_size / 4);
    }
  in
  t.next_pid <- t.next_pid + 1;
  Hashtbl.replace t.pages p.pid p;
  t.partial.(cls) <- p :: t.partial.(cls);
  t.held <- t.held + Pool.page_size;
  if t.held > t.held_hw then t.held_hw <- t.held;
  note_frag t;
  p

let alloc t ~bytes =
  let cls = class_of_bytes bytes in
  let page = match t.partial.(cls) with p :: _ -> p | [] -> new_page t cls in
  let slot = Bitmap.find_first_set page.bitmap in
  (* A page on the partial list always has a free slot. *)
  assert (slot >= 0);
  Bitmap.clear page.bitmap slot;
  page.free_slots <- page.free_slots - 1;
  if page.free_slots = 0 then t.partial.(cls) <- List.tl t.partial.(cls);
  t.allocs.(cls) <- t.allocs.(cls) + 1;
  t.live <- t.live + page.p_slot_bytes;
  if t.live > t.live_hw then t.live_hw <- t.live;
  (page.pid * Pool.page_size) + (slot * page.p_slot_bytes)

let page_of t ptr =
  let pid = ptr / Pool.page_size in
  match Hashtbl.find_opt t.pages pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Slab: pointer 0x%x not from this arena" ptr)

let slot_of page ptr =
  let off = ptr mod Pool.page_size in
  if off mod page.p_slot_bytes <> 0 then
    invalid_arg (Printf.sprintf "Slab: misaligned pointer 0x%x" ptr);
  off / page.p_slot_bytes

let free t ptr =
  let page = page_of t ptr in
  let slot = slot_of page ptr in
  if Bitmap.test page.bitmap slot then
    invalid_arg (Printf.sprintf "Slab: double free of 0x%x" ptr);
  Bitmap.set page.bitmap slot;
  page.free_slots <- page.free_slots + 1;
  if page.free_slots = 1 then t.partial.(page.cls) <- page :: t.partial.(page.cls);
  t.frees.(page.cls) <- t.frees.(page.cls) + 1;
  t.live <- t.live - page.p_slot_bytes;
  note_frag t

let view t ptr =
  let page = page_of t ptr in
  let slot = slot_of page ptr in
  Bigarray.Array1.sub page.store (slot * page.p_slot_bytes / 4) (page.p_slot_bytes / 4)

let slot_bytes t ptr = (page_of t ptr).p_slot_bytes

let drain t =
  (* Window close: give every fully-free slab page back to the source in
     one sweep.  Partial pages stay — their slack is what makes parent
     accounting a conservative bound rather than an exact census. *)
  let freed = ref 0 in
  Hashtbl.iter (fun _ p -> if p.free_slots = p.slots then incr freed) t.pages;
  if !freed > 0 then begin
    let keep = Hashtbl.create (Hashtbl.length t.pages) in
    Hashtbl.iter (fun pid p -> if p.free_slots < p.slots then Hashtbl.replace keep pid p) t.pages;
    Hashtbl.reset t.pages;
    Hashtbl.iter (fun pid p -> Hashtbl.replace t.pages pid p) keep;
    for c = 0 to n_classes - 1 do
      t.partial.(c) <- List.filter (fun p -> p.free_slots < p.slots) t.partial.(c)
    done;
    source_release t ~pages:!freed;
    t.drains <- t.drains + !freed;
    t.held <- t.held - (!freed * Pool.page_size);
    note_frag t
  end

(* --- introspection / metrics -------------------------------------------- *)

type class_stats = { cls_bytes : int; cls_allocs : int; cls_frees : int }

type stats = {
  per_class : class_stats array;
  live_bytes : int;
  live_high_water_bytes : int;
  held_bytes : int;
  held_high_water_bytes : int;
  frag_high_water_bytes : int;
  refills : int;
  drains : int;
}

let stats t =
  {
    per_class =
      Array.init n_classes (fun c ->
          { cls_bytes = size_classes.(c); cls_allocs = t.allocs.(c); cls_frees = t.frees.(c) });
    live_bytes = t.live;
    live_high_water_bytes = t.live_hw;
    held_bytes = t.held;
    held_high_water_bytes = t.held_hw;
    frag_high_water_bytes = t.frag_hw;
    refills = t.refills;
    drains = t.drains;
  }

let live_bytes t = t.live
let held_bytes t = t.held

let publish t reg =
  let open Sbt_obs.Metrics in
  for c = 0 to n_classes - 1 do
    let da = t.allocs.(c) - t.pub_allocs.(c) in
    if da > 0 then add (counter reg (Printf.sprintf "umem.slab.alloc.%d" size_classes.(c))) da;
    t.pub_allocs.(c) <- t.allocs.(c);
    let df = t.frees.(c) - t.pub_frees.(c) in
    if df > 0 then add (counter reg (Printf.sprintf "umem.slab.free.%d" size_classes.(c))) df;
    t.pub_frees.(c) <- t.frees.(c)
  done;
  (* Gauges track high-water in the registry: publishing the arena's own
     peaks (then its current values) pins both value and high_water. *)
  let setf name peak now =
    let g = gauge reg name in
    set_gauge g (float_of_int peak);
    set_gauge g (float_of_int now)
  in
  setf "umem.slab.live_bytes" t.live_hw t.live;
  setf "umem.slab.held_bytes" t.held_hw t.held;
  setf "umem.slab.frag_bytes" t.frag_hw (t.held - t.live);
  let dr = t.refills - t.pub_refills in
  if dr > 0 then add (counter reg "umem.arena.refills") dr;
  t.pub_refills <- t.refills;
  let dd = t.drains - t.pub_drains in
  if dd > 0 then add (counter reg "umem.arena.drains") dd;
  t.pub_drains <- t.drains
