(** Secure physical-page pool.

    Models the TEE's share of DRAM (carved out by the TZASC).  uArrays
    commit pages here as they grow and release them when their uGroup
    reclaims them.  The pool is the source of truth for the "TEE memory
    usage" columns of Figure 7 and the hint ablation of Figure 10, and it
    is what runs out when ingestion outpaces compute — triggering the
    engine's backpressure (paper §4.2). *)

type t

exception Out_of_secure_memory of { requested_pages : int; available_pages : int }

val page_size : int
(** 4096 bytes. *)

val create : budget_bytes:int -> t
val commit : t -> pages:int -> unit
(** Raises {!Out_of_secure_memory} when the budget would be exceeded. *)

val release : t -> pages:int -> unit
(** Raises [Invalid_argument] if releasing more than is committed. *)

val committed_pages : t -> int
val committed_bytes : t -> int
val budget_bytes : t -> int
val high_water_bytes : t -> int
(** Peak committed bytes since creation (or the last {!reset_high_water}). *)

val reset_high_water : t -> unit
val available_pages : t -> int
val pages_for_bytes : int -> int
(** ceil(bytes / page_size). *)

(** {2 Per-domain shards}

    Domain-local views of the pool for the real-parallel executor
    ({!Sbt_exec.Executor}) and for {!Slab} arenas: each domain owns one
    shard and commits scratch pages against lock-free shard-local
    counters, drawing page quota from the parent in adaptive chunks
    under the parent's lock — the chunk starts at [refill_pages],
    doubles on every dry run (capped at 8x), and decays back at
    {!merge_shard}.  Quota held by a shard counts as committed in the
    parent, so parent accounting (Figures 7/10) remains a conservative
    bound — at most twice the current chunk of slack per shard, all
    returned at every {!merge_shard} (window close).  Shard counters are
    unlocked: only the owning domain may touch a given shard. *)

type shard

val shards : ?refill_pages:int -> t -> n:int -> shard array
(** [refill_pages] (the base refill chunk) defaults to 16. *)

val shard_commit : shard -> pages:int -> unit
(** Raises {!Out_of_secure_memory} when the parent budget cannot cover
    the refill — shard pressure is parent pressure. *)

val shard_release : shard -> pages:int -> unit
val merge_shard : shard -> unit
(** Return all unused quota to the parent (call at window close). *)

val shard_committed_bytes : shard -> int
val shard_high_water_bytes : shard -> int

val shard_refill_pages : shard -> int
(** The current (adaptive) refill chunk, in pages. *)

val shard_refills : shard -> int
(** Dry runs so far: parent-lock trips that granted new quota. *)

val shard_drains : shard -> int
(** Slack-return trips to the parent ({!shard_release} cap overflows and
    non-empty {!merge_shard} calls). *)
