(* Sealed-blob format (all little-endian):

     magic   5 bytes  "SBTC1"
     seq     4 bytes  checkpoint sequence number
     len     4 bytes  ciphertext length
     cipher  len      AES-128-CTR under K_enc, nonce derived from seq
     tag     32 bytes HMAC-SHA-256 under K_mac over magic..cipher

   K_enc / K_mac are derived from the device master key with the
   "sbt-ckpt" label, so checkpoint sealing never shares key material
   with egress or audit signing.  The sequence number is authenticated
   (it is under the MAC) and doubles as the CTR nonce, so two different
   checkpoints can never reuse a keystream. *)

let magic = "SBTC1"
let label = "sbt-ckpt"

exception Tamper
exception Rollback of { got : int; expected : int }

let nonce_of_seq seq = Int64.logor 0x434B5054_00000000L (Int64.of_int seq)

let put_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let header seq cipher_len =
  let hdr = Bytes.create (String.length magic + 8) in
  Bytes.blit_string magic 0 hdr 0 (String.length magic);
  put_u32 hdr (String.length magic) seq;
  put_u32 hdr (String.length magic + 4) cipher_len;
  hdr

let seal ~device_key ~seq plaintext =
  if seq < 0 then invalid_arg "Seal.seal: negative sequence number";
  let enc = Sbt_crypto.Kdf.enc_key ~master:device_key ~label in
  let mac = Sbt_crypto.Kdf.mac_key ~master:device_key ~label in
  let cipher = Sbt_crypto.Ctr.xcrypt_bytes ~key:enc ~nonce:(nonce_of_seq seq) plaintext in
  let hdr = header seq (Bytes.length cipher) in
  let signed = Bytes.cat hdr cipher in
  let tag = Sbt_crypto.Hmac.mac ~key:mac signed in
  Bytes.cat signed tag

let unseal ~device_key ?(expect_at_least = 0) blob =
  let mac = Sbt_crypto.Kdf.mac_key ~master:device_key ~label in
  let hdr_len = String.length magic + 8 in
  if Bytes.length blob < hdr_len + 32 then raise Tamper;
  if Bytes.sub_string blob 0 (String.length magic) <> magic then raise Tamper;
  let signed_len = Bytes.length blob - 32 in
  let signed = Bytes.sub blob 0 signed_len in
  let tag = Bytes.sub blob signed_len 32 in
  if not (Sbt_crypto.Hmac.verify ~key:mac ~tag signed) then raise Tamper;
  let r = Codec.reader (Bytes.sub blob (String.length magic) 8) in
  let seq = Codec.get_u32 r in
  let cipher_len = Codec.get_u32 r in
  if cipher_len <> signed_len - hdr_len then raise Tamper;
  (* Freshness: a valid-but-stale blob is a rollback attack, not noise. *)
  if seq < expect_at_least then raise (Rollback { got = seq; expected = expect_at_least });
  let enc = Sbt_crypto.Kdf.enc_key ~master:device_key ~label in
  let cipher = Bytes.sub blob hdr_len cipher_len in
  let plaintext = Sbt_crypto.Ctr.xcrypt_bytes ~key:enc ~nonce:(nonce_of_seq seq) cipher in
  (seq, plaintext)

let seq_of blob =
  if
    Bytes.length blob < String.length magic + 8
    || Bytes.sub_string blob 0 (String.length magic) <> magic
  then raise Tamper;
  let r = Codec.reader (Bytes.sub blob (String.length magic) 4) in
  Codec.get_u32 r
