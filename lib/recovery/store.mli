(** Normal-world (untrusted) storage for sealed checkpoints.

    Holds ciphertext blobs keyed by checkpoint sequence number.  The
    adversarial operations ([tamper], [truncate_to]) let tests and the
    resilience harness play the normal world: flip ciphertext bits, or
    roll the store back to a stale checkpoint.  The TEE-side unseal is
    what must catch both. *)

type t

val create : unit -> t
val put : t -> seq:int -> bytes -> unit
val latest : t -> (int * bytes) option
val get : t -> seq:int -> bytes option
val count : t -> int
val total_bytes : t -> int

val tamper : t -> seq:int -> at:int -> unit
(** Flip one bit of byte [at] of the stored blob [seq]. *)

val truncate_to : t -> seq:int -> unit
(** Drop every checkpoint newer than [seq] (rollback attack). *)
