(** Little-endian byte codec for checkpoint serialization.

    Field order is the schema: the writer and reader of a blob must
    emit/consume fields in the same sequence.  The sealed-blob magic in
    {!Seal} versions the layout as a whole. *)

type writer

val writer : unit -> writer
val contents : writer -> bytes

val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val i64 : writer -> int64 -> unit

val int_ : writer -> int -> unit
(** Signed OCaml int as int64 (handles -1 sentinels). *)

val i32 : writer -> int32 -> unit

val f64 : writer -> float -> unit
val bytes_ : writer -> bytes -> unit
(** Length-prefixed byte block. *)

val list_ : writer -> (writer -> 'a -> unit) -> 'a list -> unit
(** Count-prefixed sequence. *)

type reader

exception Truncated
(** Raised when a read runs past the end of the blob. *)

val reader : bytes -> reader
val at_end : reader -> bool

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int64
val get_int : reader -> int
val get_i32 : reader -> int32
val get_f64 : reader -> float
val get_bytes : reader -> bytes
val get_list : reader -> (reader -> 'a) -> 'a list
