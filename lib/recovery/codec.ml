(* Little-endian append-only byte codec shared by the checkpoint
   serializers.  A writer is a growable buffer; a reader is a byte
   string plus a mutable cursor.  Both sides must agree on field order —
   there is no tagging, the layout *is* the schema (versioned by the
   seal header magic). *)

type writer = Buffer.t

let writer () = Buffer.create 1024
let contents w = Buffer.to_bytes w

let u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let u32 w v =
  if v < 0 then invalid_arg "Codec.u32: negative";
  Buffer.add_char w (Char.chr (v land 0xFF));
  Buffer.add_char w (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char w (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char w (Char.chr ((v lsr 24) land 0xFF))

let i64 w v =
  for i = 0 to 7 do
    Buffer.add_char w (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

(* Signed ints (e.g. epoch back-pointers that may be -1) ride as int64. *)
let int_ w v = i64 w (Int64.of_int v)
let i32 w v = u32 w (Int32.to_int v land 0xFFFFFFFF)
let f64 w v = i64 w (Int64.bits_of_float v)

let bytes_ w b =
  u32 w (Bytes.length b);
  Buffer.add_bytes w b

let list_ w f items =
  u32 w (List.length items);
  List.iter (f w) items

type reader = { buf : bytes; mutable pos : int }

exception Truncated

let reader buf = { buf; pos = 0 }
let at_end r = r.pos = Bytes.length r.buf

let need r n = if r.pos + n > Bytes.length r.buf then raise Truncated

let get_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let b i = Char.code (Bytes.get r.buf (r.pos + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get r.buf (r.pos + i))))
  done;
  r.pos <- r.pos + 8;
  !v

let get_int r = Int64.to_int (get_i64 r)
let get_i32 r = Int32.of_int (get_u32 r)
let get_f64 r = Int64.float_of_bits (get_i64 r)

let get_bytes r =
  let n = get_u32 r in
  need r n;
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

let get_list r f =
  let n = get_u32 r in
  List.init n (fun _ -> f r)
