(** Sealing of checkpoint blobs with a device-derived key.

    A checkpoint leaves the TEE only as ciphertext: AES-128-CTR under a
    key derived from the device master secret, authenticated (header
    included) by HMAC-SHA-256 under a second derived key.  The
    checkpoint sequence number is bound under the MAC and is also the
    CTR nonce, so sealing is deterministic per sequence number and no
    two checkpoints share a keystream.

    Unsealing enforces two properties the recovery path depends on:
    integrity (any bit flip anywhere in the blob raises {!Tamper}) and
    freshness (a blob whose authenticated sequence number is below the
    caller's expectation raises {!Rollback} — the caller derives the
    expectation from the audit log, which the normal world cannot forge). *)

exception Tamper
(** The blob failed authentication (or is structurally invalid). *)

exception Rollback of { got : int; expected : int }
(** The blob is authentic but stale: its sequence number [got] is below
    the [expected] lower bound. *)

val seal : device_key:bytes -> seq:int -> bytes -> bytes
(** [seal ~device_key ~seq plaintext] is the sealed blob ("SBTC1"). *)

val unseal : device_key:bytes -> ?expect_at_least:int -> bytes -> int * bytes
(** [unseal ~device_key ~expect_at_least blob] is [(seq, plaintext)].
    Raises {!Tamper} or {!Rollback}. *)

val seq_of : bytes -> int
(** The (unauthenticated) sequence number in a sealed blob's header —
    for store bookkeeping only; trust requires {!unseal}. *)
