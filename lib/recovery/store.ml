(* Normal-world checkpoint storage: a mutable map seq -> sealed blob.
   The store is untrusted by construction — it only ever sees
   ciphertext, and tests use [tamper]/[truncate_to] to play the
   adversary (bit flips, rollback to a stale blob). *)

type t = { mutable blobs : (int * bytes) list (* newest first *) }

let create () = { blobs = [] }

let put t ~seq blob =
  t.blobs <- (seq, blob) :: List.filter (fun (s, _) -> s <> seq) t.blobs

let latest t =
  match t.blobs with
  | [] -> None
  | l ->
      let seq, blob = List.fold_left (fun (bs, bb) (s, b) -> if s > bs then (s, b) else (bs, bb)) (List.hd l) (List.tl l) in
      Some (seq, blob)

let get t ~seq = List.assoc_opt seq t.blobs
let count t = List.length t.blobs
let total_bytes t = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.blobs

let tamper t ~seq ~at =
  match List.assoc_opt seq t.blobs with
  | None -> invalid_arg "Store.tamper: no such checkpoint"
  | Some blob ->
      let bad = Bytes.copy blob in
      Bytes.set bad at (Char.chr (Char.code (Bytes.get bad at) lxor 0x01));
      t.blobs <- (seq, bad) :: List.filter (fun (s, _) -> s <> seq) t.blobs

let truncate_to t ~seq = t.blobs <- List.filter (fun (s, _) -> s <= seq) t.blobs
