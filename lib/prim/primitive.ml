type t =
  | Sort
  | Merge
  | Kway_merge
  | Segment
  | Sum_cnt
  | Top_k
  | Concat
  | Join
  | Count
  | Sum
  | Unique
  | Filter_band
  | Median
  | Min_max
  | Average
  | Sum_per_key
  | Count_per_key
  | Avg_per_key
  | Median_per_key
  | Top_k_per_key
  | Select
  | Project
  | Shift_key

let all =
  [
    Sort; Merge; Kway_merge; Segment; Sum_cnt; Top_k; Concat; Join; Count; Sum; Unique;
    Filter_band; Median; Min_max; Average; Sum_per_key; Count_per_key; Avg_per_key;
    Median_per_key; Top_k_per_key; Select; Project; Shift_key;
  ]

(* Lookup tables are precomputed once at module init: to_id/of_id/of_name
   sit on the audit and planning hot paths, where per-call list scans cost
   O(|all|) each. *)
let by_id = Array.of_list all

let count = Array.length by_id

let id_of : (t, int) Hashtbl.t = Hashtbl.create count

let () = Array.iteri (fun i t -> Hashtbl.replace id_of t i) by_id

let to_id t = Hashtbl.find id_of t

let of_id i = if i >= 0 && i < count then Some by_id.(i) else None

let name = function
  | Sort -> "Sort"
  | Merge -> "Merge"
  | Kway_merge -> "KwayMerge"
  | Segment -> "Segment"
  | Sum_cnt -> "SumCnt"
  | Top_k -> "TopK"
  | Concat -> "Concat"
  | Join -> "Join"
  | Count -> "Count"
  | Sum -> "Sum"
  | Unique -> "Unique"
  | Filter_band -> "FilterBand"
  | Median -> "Median"
  | Min_max -> "MinMax"
  | Average -> "Average"
  | Sum_per_key -> "SumPerKey"
  | Count_per_key -> "CountPerKey"
  | Avg_per_key -> "AvgPerKey"
  | Median_per_key -> "MedianPerKey"
  | Top_k_per_key -> "TopKPerKey"
  | Select -> "Select"
  | Project -> "Project"
  | Shift_key -> "ShiftKey"

let name_of : (string, t) Hashtbl.t = Hashtbl.create count

let () = Array.iter (fun t -> Hashtbl.replace name_of (name t) t) by_id

let of_name s = Hashtbl.find_opt name_of s

(* Only stateless 1-in/1-out per-record operators may join a fused chain:
   they neither reorder records, nor carry state across them, nor change
   the record count other than by dropping — so a single left-to-right
   pass per record reproduces the unfused composition byte for byte.
   Everything else (sorts, merges, windowing, aggregations, joins) breaks
   a chain. *)
let fusable = function
  | Filter_band | Select | Project | Shift_key -> true
  | Sort | Merge | Kway_merge | Segment | Sum_cnt | Top_k | Concat | Join | Count | Sum
  | Unique | Median | Min_max | Average | Sum_per_key | Count_per_key | Avg_per_key
  | Median_per_key | Top_k_per_key ->
      false

let ingress_id = 100
let egress_id = 101
let windowing_id = 102
let udf_id = 103
