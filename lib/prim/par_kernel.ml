module U = Sbt_umem.Uarray
module Pool = Sbt_umem.Page_pool
module Slab = Sbt_umem.Slab

type chunk = { scratch_bytes : int; run : unit -> unit }
type runner = { width : int; run_chunks : chunk array -> unit }

type slice = { buf : U.buf; off : int; len : int }

let slice_of_uarray ua = { buf = U.raw ua; off = 0; len = U.length ua }

let serial = { width = 1; run_chunks = (fun cs -> Array.iter (fun c -> c.run ()) cs) }

let domains ~n =
  if n < 1 then invalid_arg "Par_kernel.domains: n must be >= 1";
  let run_chunks chunks =
    let m = Array.length chunks in
    if m = 0 then ()
    else if n = 1 || m = 1 then Array.iter (fun c -> c.run ()) chunks
    else begin
      let next = Atomic.make 0 in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i < m then chunks.(i).run () else continue := false
        done
      in
      let helpers = Array.init (min (n - 1) (m - 1)) (fun _ -> Domain.spawn work) in
      work ();
      Array.iter Domain.join helpers
    end
  in
  { width = n; run_chunks }

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let get (buf : U.buf) i = Bigarray.Array1.unsafe_get buf i
let set (buf : U.buf) i v = Bigarray.Array1.unsafe_set buf i v
let key (buf : U.buf) w kf r = Int32.to_int (get buf ((r * w) + kf))

let copy_record ~(src : U.buf) ~src_r ~(dst : U.buf) ~dst_r w =
  let bs = src_r * w and bd = dst_r * w in
  for f = 0 to w - 1 do
    set dst (bd + f) (get src (bs + f))
  done

let blit_records ~(src : U.buf) ~src_r ~(dst : U.buf) ~dst_r ~w ~n =
  if n > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src (src_r * w) (n * w))
      (Bigarray.Array1.sub dst (dst_r * w) (n * w))

let host_buf cells : U.buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max 1 cells)

let bytes_for_records w n = n * w * 4

(* Domain-local slab arena backing the real small kernel scratch (the
   flat per-piece window tables below).  Each domain lazily gets its own
   arena over a private 4 MB host-modeling pool, so chunk bodies running
   on executor workers allocate scratch without locks; usage is strictly
   transient (alloc and free within one chunk), so an arena never holds
   more than a page or two per size class. *)
let scratch_arena_key =
  Domain.DLS.new_key (fun () -> Slab.over_pool (Pool.create ~budget_bytes:(4 * 1024 * 1024)))

let scratch_arena () = Domain.DLS.get scratch_arena_key

(* Contiguous record-range splits: piece [i] covers
   [i*n/pieces, (i+1)*n/pieces).  Pieces may be empty when n < pieces. *)
let ranges ~n ~pieces =
  Array.init pieces (fun i ->
      let s = i * n / pieces and e = (i + 1) * n / pieces in
      (s, e - s))

(* Below this size a chunked pass costs more in coordination than the scan
   itself; callers can override with ~pieces to force the parallel path in
   tests. *)
let min_piece_records = 2048

let pieces_for runner pieces n =
  match pieces with
  | Some p -> if p < 1 then invalid_arg "Par_kernel: pieces must be >= 1" else p
  | None ->
      if runner.width <= 1 || n < 2 * min_piece_records then 1
      else min runner.width (max 1 (n / min_piece_records))

(* ------------------------------------------------------------------ *)
(* Stable k-way merge of sorted runs.

   Determinism hinges on the tie-break: equal keys are emitted in run-index
   order, and records with equal keys from the same run keep their order.
   That is exactly the order a full stable sort produces when run [i] holds
   the records that preceded run [i+1]'s in the input, and exactly the
   order [Merge.kway]'s tournament of left-preferring binary merges
   produces over its input list. *)

(* Records of [s] with key strictly below / at most [v]. *)
let count_lt s ~w ~kf v =
  let lo = ref 0 and hi = ref s.len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if key s.buf w kf (s.off + mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let count_le s ~w ~kf v =
  let lo = ref 0 and hi = ref s.len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if key s.buf w kf (s.off + mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* Per-run prefix lengths whose concatenation is the first [t] records of
   the stable k-way merge (co-rank selection).  Binary-search the key
   space for the smallest key value v with #\{key <= v\} >= t, take every
   record below v, then hand out records equal to v greedily in run-index
   order — the same order the merge emits them. *)
let split_at runs ~w ~kf ~total t =
  let k = Array.length runs in
  if t <= 0 then Array.make k 0
  else if t >= total then Array.map (fun r -> r.len) runs
  else begin
    let lo = ref (Int32.to_int Int32.min_int) and hi = ref (Int32.to_int Int32.max_int) in
    while !lo < !hi do
      let mid = (!lo + !hi) asr 1 in
      let c = Array.fold_left (fun a r -> a + count_le r ~w ~kf mid) 0 runs in
      if c >= t then hi := mid else lo := mid + 1
    done;
    let v = !lo in
    let cut = Array.map (fun r -> count_lt r ~w ~kf v) runs in
    let rem = ref (t - Array.fold_left ( + ) 0 cut) in
    Array.iteri
      (fun i r ->
        if !rem > 0 then begin
          let eq = count_le r ~w ~kf v - cut.(i) in
          let take = min eq !rem in
          cut.(i) <- cut.(i) + take;
          rem := !rem - take
        end)
      runs;
    cut
  end

(* Merge the sub-ranges [los.(j), his.(j)) of each run into [dst] at
   [dst_r0]: linear min-scan with lowest-run-index tie-break, degrading to
   a blit once a single run survives. *)
let merge_ranges runs ~los ~his ~(dst : U.buf) ~dst_r0 ~w ~kf =
  let k = Array.length runs in
  let pos = Array.copy los in
  let o = ref dst_r0 in
  let active = ref 0 in
  for j = 0 to k - 1 do
    if pos.(j) < his.(j) then incr active
  done;
  while !active > 1 do
    let best = ref (-1) and bestk = ref 0 in
    for j = 0 to k - 1 do
      if pos.(j) < his.(j) then begin
        let kj = key runs.(j).buf w kf (runs.(j).off + pos.(j)) in
        if !best < 0 || kj < !bestk then begin
          best := j;
          bestk := kj
        end
      end
    done;
    let j = !best in
    copy_record ~src:runs.(j).buf ~src_r:(runs.(j).off + pos.(j)) ~dst ~dst_r:!o w;
    pos.(j) <- pos.(j) + 1;
    incr o;
    if pos.(j) >= his.(j) then decr active
  done;
  for j = 0 to k - 1 do
    if pos.(j) < his.(j) then begin
      let len = his.(j) - pos.(j) in
      blit_records ~src:runs.(j).buf ~src_r:(runs.(j).off + pos.(j)) ~dst ~dst_r:!o ~w ~n:len;
      o := !o + len
    end
  done

let merge_sorted_runs ~runner ~pieces ~w ~kf ~runs ~total ~dst_buf ~dst_off =
  if total > 0 then begin
    if pieces <= 1 || Array.length runs = 1 then
      merge_ranges runs ~los:(Array.map (fun _ -> 0) runs)
        ~his:(Array.map (fun r -> r.len) runs)
        ~dst:dst_buf ~dst_r0:dst_off ~w ~kf
    else begin
      let cuts =
        Array.init (pieces + 1) (fun p -> split_at runs ~w ~kf ~total (p * total / pieces))
      in
      let chunks =
        Array.init pieces (fun p ->
            let los = cuts.(p) and his = cuts.(p + 1) in
            let out_off = p * total / pieces in
            let out_len = ((p + 1) * total / pieces) - out_off in
            {
              scratch_bytes = bytes_for_records w out_len;
              run =
                (fun () ->
                  if out_len > 0 then
                    merge_ranges runs ~los ~his ~dst:dst_buf ~dst_r0:(dst_off + out_off) ~w
                      ~kf);
            })
      in
      runner.run_chunks chunks
    end
  end

let merge_raw ?(runner = serial) ?pieces ~w ~key_field ~runs ~dst_buf ~dst_off () =
  let total = Array.fold_left (fun a r -> a + r.len) 0 runs in
  if total > 0 then begin
    let pieces = pieces_for runner pieces total in
    merge_sorted_runs ~runner ~pieces ~w ~kf:key_field ~runs ~total ~dst_buf ~dst_off
  end

(* ------------------------------------------------------------------ *)
(* Parallel stable radix sort: per-piece stable LSD radix into a runs
   buffer, then the stable k-way merge above.  Chunk-sort + stable merge
   over contiguous pieces is extensionally equal to one full stable sort,
   so the result is byte-identical to [Sort.sort Radix]. *)

let sort_raw ?(runner = serial) ?pieces ~w ~key_field ~src ~dst_buf ~dst_off () =
  let kf = key_field and n = src.len in
  if n > 0 then begin
    let pieces = pieces_for runner pieces n in
    if pieces <= 1 then begin
      if not (src.buf == dst_buf && src.off = dst_off) then
        blit_records ~src:src.buf ~src_r:src.off ~dst:dst_buf ~dst_r:dst_off ~w ~n;
      let slice = Bigarray.Array1.sub dst_buf (dst_off * w) (n * w) in
      Sort.radix_sort_range slice ~scratch:(host_buf (n * w)) ~w ~key_field:kf ~n
    end
    else begin
      let runs_buf = host_buf (n * w) in
      let scratch = host_buf (n * w) in
      let rs = ranges ~n ~pieces in
      let sort_chunks =
        Array.map
          (fun (s, len) ->
            {
              scratch_bytes = bytes_for_records w (2 * len);
              run =
                (fun () ->
                  if len > 0 then begin
                    blit_records ~src:src.buf ~src_r:(src.off + s) ~dst:runs_buf ~dst_r:s ~w
                      ~n:len;
                    let sub b = Bigarray.Array1.sub b (s * w) (len * w) in
                    Sort.radix_sort_range (sub runs_buf) ~scratch:(sub scratch) ~w
                      ~key_field:kf ~n:len
                  end);
            })
          rs
      in
      runner.run_chunks sort_chunks;
      let runs = Array.map (fun (s, len) -> { buf = runs_buf; off = s; len }) rs in
      merge_sorted_runs ~runner ~pieces ~w ~kf ~runs ~total:n ~dst_buf ~dst_off
    end
  end

(* ------------------------------------------------------------------ *)
(* Segment: per-piece partial window->count hash tables merged in
   canonical (ascending window) order, then an order-preserving parallel
   scatter — piece [i]'s records land after pieces [0..i-1]'s within every
   window, which is exactly the serial record order. *)

(* The per-piece partial table.  When the piece's window range is dense
   enough to fit a slab slot (the overwhelmingly common case: a batch
   spans a handful of windows), counting runs over a flat slot-backed
   array — one increment per record instead of two hash probes and a
   boxed option — and only the non-zero cells are folded into the
   Hashtbl the merge layer expects.  The table contents are identical
   either way, so sealed results cannot depend on the path taken. *)
let window_counts_of_piece (buf : U.buf) ~w ~ts_field ~size ~slide ~off ~len =
  let t = Hashtbl.create 32 in
  let via_hashtbl () =
    for r = off to off + len - 1 do
      let ts = Int32.to_int (get buf ((r * w) + ts_field)) in
      let lo, hi = Segment.windows_of ~ts ~size ~slide in
      for win = lo to hi do
        Hashtbl.replace t win (1 + Option.value ~default:0 (Hashtbl.find_opt t win))
      done
    done
  in
  if len > 0 && Slab.enabled () then begin
    let lo_min = ref max_int and hi_max = ref min_int in
    for r = off to off + len - 1 do
      let ts = Int32.to_int (get buf ((r * w) + ts_field)) in
      let lo, hi = Segment.windows_of ~ts ~size ~slide in
      if lo < !lo_min then lo_min := lo;
      if hi > !hi_max then hi_max := hi
    done;
    let range = !hi_max - !lo_min + 1 in
    if range > 0 && Slab.fits (range * 4) then begin
      let arena = scratch_arena () in
      match Slab.alloc arena ~bytes:(range * 4) with
      | exception Pool.Out_of_secure_memory _ -> via_hashtbl ()
      | ptr ->
          let counts = Slab.view arena ptr in
          Fun.protect
            ~finally:(fun () -> Slab.free arena ptr)
            (fun () ->
              for i = 0 to range - 1 do
                Bigarray.Array1.unsafe_set counts i 0l
              done;
              for r = off to off + len - 1 do
                let ts = Int32.to_int (get buf ((r * w) + ts_field)) in
                let lo, hi = Segment.windows_of ~ts ~size ~slide in
                for win = lo to hi do
                  let i = win - !lo_min in
                  Bigarray.Array1.unsafe_set counts i
                    (Int32.add (Bigarray.Array1.unsafe_get counts i) 1l)
                done
              done;
              for i = 0 to range - 1 do
                let c = Bigarray.Array1.unsafe_get counts i in
                if c <> 0l then Hashtbl.replace t (!lo_min + i) (Int32.to_int c)
              done)
    end
    else via_hashtbl ()
  end
  else via_hashtbl ();
  t

let segment_count_tables ~runner ~pieces ~w ~ts_field ~size ~slide ~src =
  let rs = ranges ~n:src.len ~pieces in
  let tables = Array.make pieces None in
  let chunks =
    Array.mapi
      (fun i (s, len) ->
        {
          scratch_bytes = len * 16;
          run =
            (fun () ->
              tables.(i) <-
                Some
                  (window_counts_of_piece src.buf ~w ~ts_field ~size ~slide ~off:(src.off + s)
                     ~len));
        })
      rs
  in
  runner.run_chunks chunks;
  (rs, Array.map (function Some t -> t | None -> Hashtbl.create 1) tables)

let merge_count_tables tables =
  let merged = Hashtbl.create 64 in
  Array.iter
    (fun t ->
      Hashtbl.iter
        (fun win c ->
          Hashtbl.replace merged win (c + Option.value ~default:0 (Hashtbl.find_opt merged win)))
        t)
    tables;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

let segment_counts ?(runner = serial) ?pieces ~w ~ts_field ~window_size ?slide ~src () =
  let slide = Option.value ~default:window_size slide in
  let pieces = pieces_for runner pieces src.len in
  let _, tables =
    segment_count_tables ~runner ~pieces ~w ~ts_field ~size:window_size ~slide ~src
  in
  merge_count_tables tables

let segment_raw ?(runner = serial) ?pieces ~w ~ts_field ~window_size ?slide ~src ~alloc () =
  let slide = Option.value ~default:window_size slide in
  let pieces = pieces_for runner pieces src.len in
  let rs, tables =
    segment_count_tables ~runner ~pieces ~w ~ts_field ~size:window_size ~slide ~src
  in
  let counts = merge_count_tables tables in
  (* Destinations are allocated serially in ascending window order — the
     same order the serial counting pass reports them. *)
  let dst_tbl = Hashtbl.create 64 in
  List.iter (fun (win, c) -> Hashtbl.replace dst_tbl win (alloc win c)) counts;
  (* Start offset of piece [i] within window [win] = records earlier
     pieces route there. *)
  let piece_start = Array.map (fun _ -> Hashtbl.create 32) tables in
  List.iter
    (fun (win, _) ->
      let acc = ref 0 in
      Array.iteri
        (fun i t ->
          Hashtbl.replace piece_start.(i) win !acc;
          acc := !acc + Option.value ~default:0 (Hashtbl.find_opt t win))
        tables)
    counts;
  let chunks =
    Array.mapi
      (fun i (s, len) ->
        let written = Hashtbl.fold (fun _ c a -> a + c) tables.(i) 0 in
        {
          scratch_bytes = bytes_for_records w written;
          run =
            (fun () ->
              let cursors = Hashtbl.create 32 in
              for r = src.off + s to src.off + s + len - 1 do
                let ts = Int32.to_int (get src.buf ((r * w) + ts_field)) in
                let lo, hi = Segment.windows_of ~ts ~size:window_size ~slide in
                for win = lo to hi do
                  let dbuf, base = Hashtbl.find dst_tbl win in
                  let cur =
                    match Hashtbl.find_opt cursors win with
                    | Some c -> c
                    | None ->
                        let c = ref (Hashtbl.find piece_start.(i) win) in
                        Hashtbl.replace cursors win c;
                        c
                  in
                  copy_record ~src:src.buf ~src_r:r ~dst:dbuf ~dst_r:(base + !cur) w;
                  incr cur
                done
              done);
        })
      rs
  in
  runner.run_chunks chunks

(* ------------------------------------------------------------------ *)
(* Per-key aggregation over key-sorted input: piece boundaries are aligned
   to run (equal-key group) boundaries so no group straddles two pieces;
   per-piece group counts give each piece's output offset, and pieces in
   index order emit groups in canonical key order. *)

type agg = Agg_sum | Agg_count | Agg_avg

let aligned_ranges src ~w ~kf ~pieces =
  let n = src.len in
  let bounds =
    Array.init (pieces + 1) (fun i ->
        if i = 0 then 0
        else if i = pieces then n
        else begin
          let r = ref (i * n / pieces) in
          while !r < n && !r > 0 && key src.buf w kf (src.off + !r) = key src.buf w kf (src.off + !r - 1) do
            incr r
          done;
          !r
        end)
  in
  Array.init pieces (fun i -> (bounds.(i), bounds.(i + 1) - bounds.(i)))

let groups_in src ~w ~kf (s, len) =
  let c = ref 0 in
  for r = s to s + len - 1 do
    if r = 0 || key src.buf w kf (src.off + r) <> key src.buf w kf (src.off + r - 1) then incr c
  done;
  !c

(* Mirrors Keyed's arithmetic exactly: Int64 accumulator, truncating
   Int64.to_int32 on the way out, Int64.div for the average. *)
let aggregate_piece src ~w ~kf ~vf ~agg (s, len) ~(dst_buf : U.buf) ~dst_r0 =
  let o = ref dst_r0 in
  let r = ref s in
  let e = s + len in
  while !r < e do
    let k = key src.buf w kf (src.off + !r) in
    let start = !r in
    incr r;
    while !r < e && key src.buf w kf (src.off + !r) = k do incr r done;
    let run_len = !r - start in
    let v =
      match agg with
      | Agg_count -> Int32.of_int run_len
      | Agg_sum | Agg_avg ->
          let acc = ref 0L in
          for q = start to start + run_len - 1 do
            acc := Int64.add !acc (Int64.of_int32 (get src.buf (((src.off + q) * w) + vf)))
          done;
          if agg = Agg_sum then Int64.to_int32 !acc
          else Int64.to_int32 (Int64.div !acc (Int64.of_int run_len))
    in
    set dst_buf (!o * 2) (Int32.of_int k);
    set dst_buf ((!o * 2) + 1) v;
    incr o
  done;
  !o - dst_r0

let per_key_raw ?(runner = serial) ?pieces ~w ~key_field ~value_field ~agg ~src ~alloc () =
  let kf = key_field and vf = value_field in
  if src.len = 0 then ignore (alloc 0)
  else begin
    let pieces = pieces_for runner pieces src.len in
    if pieces <= 1 then begin
      let groups = groups_in src ~w ~kf (0, src.len) in
      let dst_buf, dst_off = alloc groups in
      ignore (aggregate_piece src ~w ~kf ~vf ~agg (0, src.len) ~dst_buf ~dst_r0:dst_off)
    end
    else begin
      let rs = aligned_ranges src ~w ~kf ~pieces in
      let gcounts = Array.make pieces 0 in
      let count_chunks =
        Array.mapi
          (fun i range ->
            { scratch_bytes = 0; run = (fun () -> gcounts.(i) <- groups_in src ~w ~kf range) })
          rs
      in
      runner.run_chunks count_chunks;
      let offs = Array.make (pieces + 1) 0 in
      for i = 0 to pieces - 1 do
        offs.(i + 1) <- offs.(i) + gcounts.(i)
      done;
      let dst_buf, dst_off = alloc offs.(pieces) in
      let write_chunks =
        Array.mapi
          (fun i range ->
            {
              scratch_bytes = bytes_for_records 2 gcounts.(i);
              run =
                (fun () ->
                  ignore
                    (aggregate_piece src ~w ~kf ~vf ~agg range ~dst_buf
                       ~dst_r0:(dst_off + offs.(i))));
            })
          rs
      in
      runner.run_chunks write_chunks
    end
  end

(* ------------------------------------------------------------------ *)
(* Chunked filter/select: per-piece match counts, serial prefix sum, then
   a parallel scatter at stable offsets — order-preserving by
   construction. *)

let filter_band_raw ?(runner = serial) ?pieces ~w ~field ~lo ~hi ~src ~alloc () =
  let loi = Int32.to_int lo and hii = Int32.to_int hi in
  let matches r =
    let v = Int32.to_int (get src.buf ((r * w) + field)) in
    v >= loi && v <= hii
  in
  if src.len = 0 then ignore (alloc 0)
  else begin
    let pieces = pieces_for runner pieces src.len in
    let rs = ranges ~n:src.len ~pieces in
    let mcounts = Array.make pieces 0 in
    let count_chunks =
      Array.mapi
        (fun i (s, len) ->
          {
            scratch_bytes = 0;
            run =
              (fun () ->
                let c = ref 0 in
                for r = src.off + s to src.off + s + len - 1 do
                  if matches r then incr c
                done;
                mcounts.(i) <- !c);
          })
        rs
    in
    runner.run_chunks count_chunks;
    let offs = Array.make (pieces + 1) 0 in
    for i = 0 to pieces - 1 do
      offs.(i + 1) <- offs.(i) + mcounts.(i)
    done;
    let dst_buf, dst_off = alloc offs.(pieces) in
    let write_chunks =
      Array.mapi
        (fun i (s, len) ->
          {
            scratch_bytes = bytes_for_records w mcounts.(i);
            run =
              (fun () ->
                let o = ref (dst_off + offs.(i)) in
                for r = src.off + s to src.off + s + len - 1 do
                  if matches r then begin
                    copy_record ~src:src.buf ~src_r:r ~dst:dst_buf ~dst_r:!o w;
                    incr o
                  end
                done);
          })
        rs
    in
    runner.run_chunks write_chunks
  end

(* ------------------------------------------------------------------ *)
(* Fused chain: one pass per record through the whole step list, via the
   same per-piece count -> serial prefix -> parallel scatter shape as the
   band filter, so fused kernels run under the `Work executor unchanged.
   The chain is evaluated fully in BOTH passes (a projection or key shift
   can change what a later filter sees), on a per-chunk scratch row. *)

let fused_eval steps ~w ~(src : U.buf) ~r ~(row : int32 array) ~(tmp : int32 array) =
  for f = 0 to w - 1 do
    row.(f) <- get src ((r * w) + f)
  done;
  let rec go cw = function
    | [] -> Some cw
    | Fused.F_filter_band { field; lo; hi } :: rest ->
        let v = Int32.to_int row.(field) in
        if v >= Int32.to_int lo && v <= Int32.to_int hi then go cw rest else None
    | Fused.F_select { field; value } :: rest ->
        if row.(field) = value then go cw rest else None
    | Fused.F_project { fields } :: rest ->
        let dw = Array.length fields in
        for i = 0 to dw - 1 do
          tmp.(i) <- row.(fields.(i))
        done;
        Array.blit tmp 0 row 0 dw;
        go dw rest
    | Fused.F_shift_key { field; shift } :: rest ->
        row.(field) <- Int32.shift_right row.(field) shift;
        go cw rest
  in
  go w steps

let fused_raw ?(runner = serial) ?pieces ~w ~steps ~src ~alloc () =
  let dw =
    match Fused.width_after w steps with
    | Some d -> d
    | None -> invalid_arg "Par_kernel.fused_raw: step chain invalid for input width"
  in
  let mw = max 1 (Fused.max_width w steps) in
  if src.len = 0 then ignore (alloc 0)
  else begin
    let pieces = pieces_for runner pieces src.len in
    let rs = ranges ~n:src.len ~pieces in
    let mcounts = Array.make pieces 0 in
    let count_chunks =
      Array.mapi
        (fun i (s, len) ->
          {
            scratch_bytes = bytes_for_records mw 2;
            run =
              (fun () ->
                let row = Array.make mw 0l and tmp = Array.make mw 0l in
                let c = ref 0 in
                for r = src.off + s to src.off + s + len - 1 do
                  if fused_eval steps ~w ~src:src.buf ~r ~row ~tmp <> None then incr c
                done;
                mcounts.(i) <- !c);
          })
        rs
    in
    runner.run_chunks count_chunks;
    let offs = Array.make (pieces + 1) 0 in
    for i = 0 to pieces - 1 do
      offs.(i + 1) <- offs.(i) + mcounts.(i)
    done;
    let dst_buf, dst_off = alloc offs.(pieces) in
    let write_chunks =
      Array.mapi
        (fun i (s, len) ->
          {
            scratch_bytes = bytes_for_records dw mcounts.(i);
            run =
              (fun () ->
                let row = Array.make mw 0l and tmp = Array.make mw 0l in
                let o = ref (dst_off + offs.(i)) in
                for r = src.off + s to src.off + s + len - 1 do
                  match fused_eval steps ~w ~src:src.buf ~r ~row ~tmp with
                  | Some _ ->
                      let b = !o * dw in
                      for f = 0 to dw - 1 do
                        set dst_buf (b + f) row.(f)
                      done;
                      incr o
                  | None -> ()
                done);
          })
        rs
    in
    runner.run_chunks write_chunks
  end

(* ------------------------------------------------------------------ *)
(* Chunked 1:1 projection and order-preserving concat. *)

let project_raw ?(runner = serial) ?pieces ~w ~fields ~src ~dst_buf ~dst_off () =
  let dw = Array.length fields in
  if src.len > 0 then begin
    let pieces = pieces_for runner pieces src.len in
    let rs = ranges ~n:src.len ~pieces in
    let chunks =
      Array.map
        (fun (s, len) ->
          {
            scratch_bytes = bytes_for_records dw len;
            run =
              (fun () ->
                for r = s to s + len - 1 do
                  let sb = (src.off + r) * w and db = (dst_off + r) * dw in
                  for i = 0 to dw - 1 do
                    set dst_buf (db + i) (get src.buf (sb + fields.(i)))
                  done
                done);
          })
        rs
    in
    runner.run_chunks chunks
  end

let concat_raw ?(runner = serial) ~w ~inputs ~dst_buf ~dst_off () =
  let k = Array.length inputs in
  let offs = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    offs.(i + 1) <- offs.(i) + inputs.(i).len
  done;
  let chunks =
    Array.mapi
      (fun i s ->
        {
          scratch_bytes = bytes_for_records w s.len;
          run =
            (fun () ->
              blit_records ~src:s.buf ~src_r:s.off ~dst:dst_buf ~dst_r:(dst_off + offs.(i)) ~w
                ~n:s.len);
        })
      inputs
  in
  runner.run_chunks chunks

(* ------------------------------------------------------------------ *)
(* uArray-level wrappers, byte-compatible with the serial primitives. *)

let sort ?runner ?pieces ~src ~dst ~key_field () =
  let w = U.width src in
  if U.width dst <> w then invalid_arg "Par_kernel.sort: width mismatch";
  if key_field < 0 || key_field >= w then invalid_arg "Par_kernel.sort: bad key field";
  let n = U.length src in
  let first = U.reserve dst n in
  sort_raw ?runner ?pieces ~w ~key_field ~src:(slice_of_uarray src) ~dst_buf:(U.raw dst)
    ~dst_off:first ()

let sort_in_place ?runner ?pieces ua ~key_field =
  if not (U.is_open ua) then raise (U.Sealed { id = U.id ua });
  let w = U.width ua and n = U.length ua in
  if key_field < 0 || key_field >= w then invalid_arg "Par_kernel.sort_in_place: bad key field";
  sort_raw ?runner ?pieces ~w ~key_field
    ~src:{ buf = U.raw ua; off = 0; len = n }
    ~dst_buf:(U.raw ua) ~dst_off:0 ()

let kway ?runner ?pieces ~inputs ~dst ~key_field () =
  match inputs with
  | [] -> ()
  | hd :: _ ->
      let w = U.width hd in
      List.iter
        (fun ua -> if U.width ua <> w then invalid_arg "Par_kernel.kway: width mismatch")
        inputs;
      if U.width dst <> w then invalid_arg "Par_kernel.kway: width mismatch";
      let runs = Array.of_list (List.map slice_of_uarray inputs) in
      let total = Array.fold_left (fun a r -> a + r.len) 0 runs in
      let first = U.reserve dst total in
      merge_raw ?runner ?pieces ~w ~key_field ~runs ~dst_buf:(U.raw dst) ~dst_off:first ()

let count_per_window ?runner ?pieces ~src ~ts_field ~window_size ?slide () =
  segment_counts ?runner ?pieces ~w:(U.width src) ~ts_field ~window_size ?slide
    ~src:(slice_of_uarray src) ()

let segment ?runner ?pieces ~src ~ts_field ~window_size ?slide ~dst_for_window () =
  let w = U.width src in
  let alloc win count =
    let d = dst_for_window win in
    if U.width d <> w then invalid_arg "Par_kernel.segment: width mismatch";
    let first = U.reserve d count in
    (U.raw d, first)
  in
  segment_raw ?runner ?pieces ~w ~ts_field ~window_size ?slide ~src:(slice_of_uarray src)
    ~alloc ()

let per_key ?runner ?pieces ~agg ~src ~dst ~key_field ~value_field () =
  if U.width dst <> 2 then invalid_arg "Keyed: dst width must be 2 (key, value)";
  let w = U.width src in
  let alloc groups =
    let first = U.reserve dst groups in
    (U.raw dst, first)
  in
  per_key_raw ?runner ?pieces ~w ~key_field ~value_field ~agg ~src:(slice_of_uarray src) ~alloc
    ()

let sum_per_key ?runner ?pieces ~src ~dst ~key_field ~value_field () =
  per_key ?runner ?pieces ~agg:Agg_sum ~src ~dst ~key_field ~value_field ()

let count_per_key ?runner ?pieces ~src ~dst ~key_field () =
  per_key ?runner ?pieces ~agg:Agg_count ~src ~dst ~key_field ~value_field:0 ()

let avg_per_key ?runner ?pieces ~src ~dst ~key_field ~value_field () =
  per_key ?runner ?pieces ~agg:Agg_avg ~src ~dst ~key_field ~value_field ()

let filter_band ?runner ?pieces ~src ~dst ~field ~lo ~hi () =
  let w = U.width src in
  if U.width dst <> w then invalid_arg "Filter: width mismatch";
  let alloc matches =
    let first = U.reserve dst matches in
    (U.raw dst, first)
  in
  filter_band_raw ?runner ?pieces ~w ~field ~lo ~hi ~src:(slice_of_uarray src) ~alloc ()

let select_eq ?runner ?pieces ~src ~dst ~field ~value () =
  filter_band ?runner ?pieces ~src ~dst ~field ~lo:value ~hi:value ()

let project ?runner ?pieces ~src ~dst ~fields () =
  let w = U.width src and n = U.length src in
  let dw = Array.length fields in
  if U.width dst <> dw then invalid_arg "Misc.project: dst width mismatch";
  Array.iter (fun f -> if f < 0 || f >= w then invalid_arg "Misc.project: bad field") fields;
  let first = U.reserve dst n in
  project_raw ?runner ?pieces ~w ~fields ~src:(slice_of_uarray src) ~dst_buf:(U.raw dst)
    ~dst_off:first ()

let fused ?runner ?pieces ~src ~dst ~steps () =
  let w = U.width src in
  (match Fused.width_after w steps with
  | Some dw when dw = U.width dst -> ()
  | Some _ -> invalid_arg "Par_kernel.fused: dst width mismatch"
  | None -> invalid_arg "Par_kernel.fused: step chain invalid for input width");
  let alloc kept =
    let first = U.reserve dst kept in
    (U.raw dst, first)
  in
  fused_raw ?runner ?pieces ~w ~steps ~src:(slice_of_uarray src) ~alloc ()

let concat ?runner ~inputs ~dst () =
  match inputs with
  | [] -> ()
  | hd :: _ ->
      let w = U.width hd in
      List.iter
        (fun ua -> if U.width ua <> w then invalid_arg "Par_kernel.concat: width mismatch")
        inputs;
      let slices = Array.of_list (List.map slice_of_uarray inputs) in
      let total = Array.fold_left (fun a s -> a + s.len) 0 slices in
      let first = U.reserve dst total in
      concat_raw ?runner ~w ~inputs:slices ~dst_buf:(U.raw dst) ~dst_off:first ()
