(* Fused super-kernel descriptors: an ordered chain of per-record
   primitives executed in a single pass (and a single trusted entry).
   Only stateless 1-in/1-out per-record operators are fusable; anything
   that reorders, splits or aggregates records (Sort, Segment, per-key
   aggregation) breaks a chain. *)

type step =
  | F_filter_band of { field : int; lo : int32; hi : int32 }
  | F_select of { field : int; value : int32 }
  | F_project of { fields : int array }
  | F_shift_key of { field : int; shift : int }

let step_op = function
  | F_filter_band _ -> Primitive.Filter_band
  | F_select _ -> Primitive.Select
  | F_project _ -> Primitive.Project
  | F_shift_key _ -> Primitive.Shift_key

let step_name s = Primitive.name (step_op s)

(* Record width after each step, threading projections through; [None] if
   any step references a field outside the width it actually sees (the
   in-TEE validity check before a fused chain may run). *)
let width_after w steps =
  let rec go cw = function
    | [] -> Some cw
    | F_filter_band { field; _ } :: rest | F_select { field; _ } :: rest ->
        if field < 0 || field >= cw then None else go cw rest
    | F_shift_key { field; shift } :: rest ->
        if field < 0 || field >= cw || shift < 0 || shift > 31 then None else go cw rest
    | F_project { fields } :: rest ->
        if Array.length fields = 0 then None
        else if Array.exists (fun f -> f < 0 || f >= cw) fields then None
        else go (Array.length fields) rest
  in
  go w steps

(* Widest row any step of the chain sees — scratch sizing for the
   single-pass kernels (a projection may widen by duplicating fields). *)
let max_width w steps =
  let rec go cw acc = function
    | [] -> acc
    | F_project { fields } :: rest ->
        let cw = Array.length fields in
        go cw (max acc cw) rest
    | _ :: rest -> go cw acc rest
  in
  go w w steps

(* --- wire codec -----------------------------------------------------------

   Canonical byte encoding of a chain, carried in the fused-plan SMC
   descriptor and verbatim in the composite audit record (so the verifier
   replays exactly the parameters the TEE executed). *)

let u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let u32 b v =
  u16 b (Int32.to_int (Int32.logand v 0xffffl));
  u16 b (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffffl))

let encode_steps steps =
  let n = List.length steps in
  if n > 0xff then invalid_arg "Fused.encode_steps: too many steps";
  let b = Buffer.create 32 in
  Buffer.add_char b (Char.chr n);
  List.iter
    (fun s ->
      Buffer.add_char b (Char.chr (Primitive.to_id (step_op s)));
      match s with
      | F_filter_band { field; lo; hi } ->
          u16 b field;
          u32 b lo;
          u32 b hi
      | F_select { field; value } ->
          u16 b field;
          u32 b value
      | F_project { fields } ->
          u16 b (Array.length fields);
          Array.iter (u16 b) fields
      | F_shift_key { field; shift } ->
          u16 b field;
          u16 b shift)
    steps;
  Buffer.to_bytes b

let decode_steps bytes =
  let pos = ref 0 in
  let len = Bytes.length bytes in
  let byte () =
    if !pos >= len then raise Exit;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let u16 () =
    let a = byte () in
    a lor (byte () lsl 8)
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    Int32.logor (Int32.of_int lo) (Int32.shift_left (Int32.of_int hi) 16)
  in
  try
    let n = byte () in
    let steps =
      List.init n (fun _ ->
          match Primitive.of_id (byte ()) with
          | Some Primitive.Filter_band ->
              let field = u16 () in
              let lo = u32 () in
              let hi = u32 () in
              F_filter_band { field; lo; hi }
          | Some Primitive.Select ->
              let field = u16 () in
              let value = u32 () in
              F_select { field; value }
          | Some Primitive.Project ->
              let k = u16 () in
              F_project { fields = Array.init k (fun _ -> u16 ()) }
          | Some Primitive.Shift_key ->
              let field = u16 () in
              let shift = u16 () in
              F_shift_key { field; shift }
          | _ -> raise Exit)
    in
    if !pos = len then Some steps else None
  with Exit -> None

let pp fmt s =
  match s with
  | F_filter_band { field; lo; hi } ->
      Format.fprintf fmt "FilterBand(f%d in [%ld,%ld])" field lo hi
  | F_select { field; value } -> Format.fprintf fmt "Select(f%d = %ld)" field value
  | F_project { fields } ->
      Format.fprintf fmt "Project(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int fields)))
  | F_shift_key { field; shift } -> Format.fprintf fmt "ShiftKey(f%d >> %d)" field shift
