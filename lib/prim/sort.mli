(** Sort trusted primitive — three implementations (paper §5, §9.3).

    Sort dominates stream-analytics execution in StreamBox-TZ (GroupBy and
    friends are built on sort-merge), so the paper hand-vectorizes it with
    ARMv8 NEON and reports it beating libc [qsort] by ~7x and C++
    [std::sort] by ~2x.  We reproduce the three design points:

    - {!Radix}: LSD radix sort, branch-free sequential passes — the model
      of the vectorized implementation (data-parallel inner loops, no
      comparisons).
    - {!Std}: comparison sort with the comparator inlined at the call site
      (the [std::sort] template-instantiation model).
    - {!Qsort}: the same comparison sort but calling the comparator through
      a closure, reproducing C [qsort]'s function-pointer indirection.

    All three sort whole records by one field, ascending in signed 32-bit
    order, and are stable only in the {!Radix} case (as in the paper's
    engine, nothing relies on stability). *)

type algorithm = Radix | Std | Qsort

val sort :
  algorithm -> src:Sbt_umem.Uarray.t -> dst:Sbt_umem.Uarray.t -> key_field:int -> unit
(** Copy [src]'s records into [dst] ordered by [key_field].  [dst] must be
    open, same width as [src], with capacity for [length src] more
    records. *)

val sort_in_place : algorithm -> Sbt_umem.Uarray.t -> key_field:int -> unit
(** Sort an {e open} uArray's records in place (used on temporary
    uArrays inside other primitives). *)

val is_sorted : Sbt_umem.Uarray.t -> key_field:int -> bool
(** [true] iff records are ascending by [key_field]; stops scanning at the
    first inversion. *)

(**/**)

val radix_sort_range :
  Sbt_umem.Uarray.buf -> scratch:Sbt_umem.Uarray.buf -> w:int -> key_field:int -> n:int -> unit
(** Stable LSD radix sort of the first [n] records of a raw buffer; the
    sorted result is left in the buffer.  [scratch] must hold at least
    [n * w] elements.  Exposed for {!Par_kernel}'s per-chunk run sorts. *)
