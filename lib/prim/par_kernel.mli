(** Data-parallel execution paths for the hot trusted primitives.

    The paper's engine (§5, §9) runs sort/merge/aggregate data-parallel on
    the big cores inside the TEE.  This module is the chunking substrate
    and the parallel kernel variants: contiguous record-range splits over
    {!Sbt_umem.Uarray.raw} buffers, per-chunk scratch accounted in
    {!Sbt_umem.Slab} slots or {!Sbt_umem.Page_pool} pages, and deterministic stitching so every
    parallel variant produces output {e byte-identical} to its serial
    counterpart (see DESIGN.md §9 for the determinism argument).

    Work is expressed as {!chunk} arrays handed to a {!runner}.  Runners
    only choose {e where} chunks execute, never output bytes: the chunks
    of one [run_chunks] call write disjoint ranges, so any execution order
    (or interleaving) yields the same result. *)

type chunk = {
  scratch_bytes : int;
      (** Modeled secure-memory scratch footprint of this chunk, in
          bytes.  The executor accounts it on the executing domain's
          slab arena (slot-granular, for footprints within the
          {!Sbt_umem.Slab} size classes) or pool shard (page-granular
          beyond them, or with the slab disabled). *)
  run : unit -> unit;
}

type runner = {
  width : int;  (** Parallelism hint used to pick the default chunk count. *)
  run_chunks : chunk array -> unit;
      (** Execute every chunk and return only once all have completed,
          with a synchronizing barrier (join or atomic handshake) so chunk
          writes are visible to the caller.  Chunks of one call are
          mutually independent; calls must not overlap. *)
}

val serial : runner
(** Runs chunks in order on the calling domain. *)

val domains : n:int -> runner
(** Self-contained runner: [n - 1] freshly spawned helper domains plus the
    caller claim chunks from a shared atomic counter.  Used by benches and
    tests; the [Domains] engine instead supplies a runner backed by its
    resident worker domains (see {!Sbt_exec.Executor}). *)

type slice = { buf : Sbt_umem.Uarray.buf; off : int; len : int }
(** [len] records of width [w] starting at record offset [off] in a raw
    buffer. *)

val slice_of_uarray : Sbt_umem.Uarray.t -> slice

val ranges : n:int -> pieces:int -> (int * int) array
(** [(start, len)] record ranges splitting [n] records into [pieces]
    contiguous pieces ([pieces >= 1]; pieces may be empty when
    [n < pieces]). *)

(** {1 Raw kernels}

    Operate on raw buffers; inputs and outputs must not overlap (except
    [sort_raw] with [src] identical to the destination range, which sorts
    in place).  [?pieces] overrides the chunk count chosen from
    [runner.width] — with [runner = serial] the chunked path still runs,
    just on one domain, which the equivalence tests use.  Kernels taking
    [~alloc] call it exactly once (serially, on the calling domain) with
    the output record count and write from the returned (buffer, record
    offset). *)

val sort_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  key_field:int ->
  src:slice ->
  dst_buf:Sbt_umem.Uarray.buf ->
  dst_off:int ->
  unit ->
  unit
(** Stable parallel radix sort: per-piece stable LSD radix runs, then a
    stable k-way merge with lowest-run-index tie-break.  Byte-identical to
    {!Sort.sort} with {!Sort.Radix}. *)

val merge_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  key_field:int ->
  runs:slice array ->
  dst_buf:Sbt_umem.Uarray.buf ->
  dst_off:int ->
  unit ->
  unit
(** Stable k-way merge of key-sorted runs; output pieces are cut by
    co-rank selection and merged independently.  Equal keys are emitted in
    run-index order — the order {!Merge.kway}'s tournament of
    left-preferring binary merges produces. *)

val segment_counts :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  ts_field:int ->
  window_size:int ->
  ?slide:int ->
  src:slice ->
  unit ->
  (int * int) list
(** Per-piece partial window->count hash tables merged into the same
    ascending [(window, count)] list {!Segment.count_per_window}
    returns. *)

val segment_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  ts_field:int ->
  window_size:int ->
  ?slide:int ->
  src:slice ->
  alloc:(int -> int -> Sbt_umem.Uarray.buf * int) ->
  unit ->
  unit
(** Parallel window routing.  [alloc win count] is called serially per
    non-empty window in ascending order; the scatter then writes each
    window's records in source order. *)

type agg = Agg_sum | Agg_count | Agg_avg

val per_key_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  key_field:int ->
  value_field:int ->
  agg:agg ->
  src:slice ->
  alloc:(int -> Sbt_umem.Uarray.buf * int) ->
  unit ->
  unit
(** Per-key aggregation over key-sorted input into (key, value) records of
    width 2.  Piece boundaries are aligned to equal-key runs, so groups
    never straddle pieces and pieces emit groups in canonical key order;
    the arithmetic mirrors {!Keyed} exactly. *)

val filter_band_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  field:int ->
  lo:int32 ->
  hi:int32 ->
  src:slice ->
  alloc:(int -> Sbt_umem.Uarray.buf * int) ->
  unit ->
  unit
(** Order-preserving chunked band filter: per-piece match counts, serial
    prefix sum, parallel scatter at stable offsets. *)

val fused_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  steps:Fused.step list ->
  src:slice ->
  alloc:(int -> Sbt_umem.Uarray.buf * int) ->
  unit ->
  unit
(** Single-pass fused chain (PR 7): every record runs the whole
    {!Fused.step} list on a per-chunk scratch row, dropped at the first
    failing filter/select; survivors are scattered at stable offsets via
    the same count -> prefix -> scatter shape as {!filter_band_raw}, so
    the output is byte-identical to applying the unfused primitives in
    sequence.  Raises [Invalid_argument] if the chain is invalid for the
    input width ({!Fused.width_after}). *)

val project_raw :
  ?runner:runner ->
  ?pieces:int ->
  w:int ->
  fields:int array ->
  src:slice ->
  dst_buf:Sbt_umem.Uarray.buf ->
  dst_off:int ->
  unit ->
  unit

val concat_raw :
  ?runner:runner ->
  w:int ->
  inputs:slice array ->
  dst_buf:Sbt_umem.Uarray.buf ->
  dst_off:int ->
  unit ->
  unit
(** One blit chunk per input at precomputed offsets — input order is
    preserved. *)

(** {1 uArray wrappers}

    Same contracts as the serial primitives they shadow ({!Sort.sort}
    Radix, {!Merge.kway}, {!Segment}, {!Keyed}, {!Filter}, {!Misc}); each
    produces byte-identical destination contents. *)

val sort :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  unit ->
  unit

val sort_in_place :
  ?runner:runner -> ?pieces:int -> Sbt_umem.Uarray.t -> key_field:int -> unit

val kway :
  ?runner:runner ->
  ?pieces:int ->
  inputs:Sbt_umem.Uarray.t list ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  unit ->
  unit

val count_per_window :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  ts_field:int ->
  window_size:int ->
  ?slide:int ->
  unit ->
  (int * int) list

val segment :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  ts_field:int ->
  window_size:int ->
  ?slide:int ->
  dst_for_window:(int -> Sbt_umem.Uarray.t) ->
  unit ->
  unit

val sum_per_key :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit ->
  unit

val count_per_key :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  unit ->
  unit

val avg_per_key :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  key_field:int ->
  value_field:int ->
  unit ->
  unit

val filter_band :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  field:int ->
  lo:int32 ->
  hi:int32 ->
  unit ->
  unit

val select_eq :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  field:int ->
  value:int32 ->
  unit ->
  unit

val project :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  fields:int array ->
  unit ->
  unit

val fused :
  ?runner:runner ->
  ?pieces:int ->
  src:Sbt_umem.Uarray.t ->
  dst:Sbt_umem.Uarray.t ->
  steps:Fused.step list ->
  unit ->
  unit
(** uArray wrapper over {!fused_raw}; [dst] must have the chain's final
    width ({!Fused.width_after}). *)

val concat :
  ?runner:runner -> inputs:Sbt_umem.Uarray.t list -> dst:Sbt_umem.Uarray.t -> unit -> unit
