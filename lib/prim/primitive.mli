(** The registry of trusted primitives.

    StreamBox-TZ ships 23 trusted primitives (paper Table 2); all of them
    are dispatched through the single shared SMC [Invoke] entry, so every
    one needs a stable numeric identifier for the call ABI and for audit
    records (the [Op] field of Figure 6). *)

type t =
  | Sort
  | Merge
  | Kway_merge
  | Segment
  | Sum_cnt
  | Top_k
  | Concat
  | Join
  | Count
  | Sum
  | Unique
  | Filter_band
  | Median
  | Min_max
  | Average
  | Sum_per_key
  | Count_per_key
  | Avg_per_key
  | Median_per_key
  | Top_k_per_key
  | Select
  | Project
  | Shift_key

val all : t list
val count : int
(** 23. *)

val to_id : t -> int
(** Stable id in [\[0, count)]. *)

val of_id : int -> t option
val name : t -> string

val of_name : string -> t option
(** Total: [Some] for every name {!name} produces, [None] for any other
    string (lookup is case-sensitive and never raises). *)

val fusable : t -> bool
(** Whether the primitive may appear inside a fused chain (PR 7): true
    only for the stateless per-record operators [Filter_band], [Select],
    [Project] and [Shift_key].  The verifier uses this to reject composite
    audit records smuggling in a non-fusable op. *)

val ingress_id : int
(** Pseudo-op id used in audit records for data ingestion. *)

val egress_id : int
(** Pseudo-op id for result externalization. *)

val windowing_id : int
(** Pseudo-op id for window-assignment records. *)

val udf_id : int
(** Pseudo-op id for certified user-defined functions. *)
