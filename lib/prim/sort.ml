module U = Sbt_umem.Uarray

type algorithm = Radix | Std | Qsort

(* Key extraction: signed int32 order, handled as native ints. *)
let key (buf : U.buf) w kf r = Int32.to_int (Bigarray.Array1.unsafe_get buf ((r * w) + kf))

let swap_records (buf : U.buf) w i j =
  let bi = i * w and bj = j * w in
  for f = 0 to w - 1 do
    let t = Bigarray.Array1.unsafe_get buf (bi + f) in
    Bigarray.Array1.unsafe_set buf (bi + f) (Bigarray.Array1.unsafe_get buf (bj + f));
    Bigarray.Array1.unsafe_set buf (bj + f) t
  done

let copy_record ~(src : U.buf) ~src_r ~(dst : U.buf) ~dst_r w =
  let bs = src_r * w and bd = dst_r * w in
  for f = 0 to w - 1 do
    Bigarray.Array1.unsafe_set dst (bd + f) (Bigarray.Array1.unsafe_get src (bs + f))
  done

(* ------------------------------------------------------------------ *)
(* Radix sort: LSD over four 8-bit digits.  The top digit is biased to
   order signed keys correctly.  This is the model of the hand-vectorized
   NEON sort: no comparisons, sequential passes over contiguous memory. *)

let radix_passes = 4

let radix_sort (buf : U.buf) (scratch : U.buf) w kf n =
  let hist = Array.make 256 0 in
  let src = ref buf and dst = ref scratch in
  for pass = 0 to radix_passes - 1 do
    let shift = 8 * pass in
    let bias = if pass = radix_passes - 1 then 0x80 else 0 in
    Array.fill hist 0 256 0;
    let s = !src in
    for r = 0 to n - 1 do
      let d = ((key s w kf r lsr shift) land 0xFF) lxor bias in
      hist.(d) <- hist.(d) + 1
    done;
    let acc = ref 0 in
    for d = 0 to 255 do
      let c = hist.(d) in
      hist.(d) <- !acc;
      acc := !acc + c
    done;
    let dstb = !dst in
    for r = 0 to n - 1 do
      let d = ((key s w kf r lsr shift) land 0xFF) lxor bias in
      copy_record ~src:s ~src_r:r ~dst:dstb ~dst_r:hist.(d) w;
      hist.(d) <- hist.(d) + 1
    done;
    let t = !src in
    src := !dst;
    dst := t
  done
(* radix_passes is even, so the sorted data ends up back in [buf]. *)

let radix_sort_range buf ~scratch ~w ~key_field ~n = radix_sort buf scratch w key_field n

(* ------------------------------------------------------------------ *)
(* Comparison sorts: one specialized version with the key comparison
   inlined (the std::sort template model) and one driven through a
   comparator closure (the libc qsort function-pointer model).  The two
   are intentionally separate implementations of the same introsort-lite
   (quicksort + insertion-sort cutoff): the paper's 2x-vs-7x gap between
   std::sort and qsort comes precisely from comparator inlining, so we
   preserve that structural difference rather than sharing the code. *)

let cutoff = 24

let std_sort (buf : U.buf) w kf n =
  let insertion lo hi =
    for i = lo + 1 to hi do
      let j = ref i in
      while !j > lo && key buf w kf (!j - 1) > key buf w kf !j do
        swap_records buf w (!j - 1) !j;
        decr j
      done
    done
  in
  let rec qs lo hi =
    if hi - lo < cutoff then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median-of-three pivot selection, pivot parked at [lo] *)
      if key buf w kf mid < key buf w kf lo then swap_records buf w mid lo;
      if key buf w kf hi < key buf w kf lo then swap_records buf w hi lo;
      if key buf w kf hi < key buf w kf mid then swap_records buf w hi mid;
      swap_records buf w lo mid;
      let pivot = key buf w kf lo in
      let i = ref lo and j = ref (hi + 1) in
      let continue = ref true in
      while !continue do
        incr i;
        while !i <= hi && key buf w kf !i < pivot do incr i done;
        decr j;
        while key buf w kf !j > pivot do decr j done;
        if !i >= !j then continue := false else swap_records buf w !i !j
      done;
      swap_records buf w lo !j;
      qs lo (!j - 1);
      qs (!j + 1) hi
    end
  in
  if n > 1 then qs 0 (n - 1)

let qsort_with_comparator (buf : U.buf) w n ~cmp =
  let insertion lo hi =
    for i = lo + 1 to hi do
      let j = ref i in
      while !j > lo && cmp (!j - 1) !j > 0 do
        swap_records buf w (!j - 1) !j;
        decr j
      done
    done
  in
  let rec qs lo hi =
    if hi - lo < cutoff then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if cmp mid lo < 0 then swap_records buf w mid lo;
      if cmp hi lo < 0 then swap_records buf w hi lo;
      if cmp hi mid < 0 then swap_records buf w hi mid;
      swap_records buf w lo mid;
      let i = ref lo and j = ref (hi + 1) in
      let continue = ref true in
      while !continue do
        incr i;
        while !i <= hi && cmp !i lo < 0 do incr i done;
        decr j;
        while cmp !j lo > 0 do decr j done;
        if !i >= !j then continue := false else swap_records buf w !i !j
      done;
      swap_records buf w lo !j;
      qs lo (!j - 1);
      qs (!j + 1) hi
    end
  in
  if n > 1 then qs 0 (n - 1)

(* Pivot-relative comparison needs care: the pivot sits at [lo] and moves
   when records swap, so [qsort_with_comparator] compares against index
   [lo] directly; because the Hoare scan never swaps index [lo] until the
   final pivot placement, this is sound. *)

let sort_open_buffer algorithm buf scratch w kf n =
  match algorithm with
  | Radix -> radix_sort buf scratch w kf n
  | Std -> std_sort buf w kf n
  | Qsort ->
      (* A closure invoked per comparison, comparing through the generic
         (boxed) path - the function-pointer-plus-no-inlining cost profile
         of libc qsort. *)
      let cmp i j =
        Stdlib.compare
          (Bigarray.Array1.unsafe_get buf ((i * w) + kf))
          (Bigarray.Array1.unsafe_get buf ((j * w) + kf))
      in
      qsort_with_comparator buf w n ~cmp

let sort algorithm ~src ~dst ~key_field =
  let w = U.width src in
  if U.width dst <> w then invalid_arg "Sort.sort: width mismatch";
  if key_field < 0 || key_field >= w then invalid_arg "Sort.sort: bad key field";
  let n = U.length src in
  let first = U.reserve dst n in
  let dbuf = U.raw dst in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub (U.raw src) 0 (n * w))
    (Bigarray.Array1.sub dbuf (first * w) (n * w));
  (* All algorithms work on the slice starting at [first], so sorting
     composes with pre-filled destinations. *)
  let slice = Bigarray.Array1.sub dbuf (first * w) (n * w) in
  match algorithm with
  | Radix ->
      let scratch = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (n * w) in
      radix_sort slice scratch w key_field n
  | Std | Qsort -> sort_open_buffer algorithm slice slice w key_field n

let sort_in_place algorithm ua ~key_field =
  if not (U.is_open ua) then raise (U.Sealed { id = U.id ua });
  let w = U.width ua and n = U.length ua in
  if key_field < 0 || key_field >= w then invalid_arg "Sort.sort_in_place: bad key field";
  let buf = Bigarray.Array1.sub (U.raw ua) 0 (n * w) in
  match algorithm with
  | Radix ->
      let scratch = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (n * w) in
      radix_sort buf scratch w key_field n
  | Std | Qsort -> sort_open_buffer algorithm buf buf w key_field n

let is_sorted ua ~key_field =
  let w = U.width ua and n = U.length ua in
  let buf = U.raw ua in
  let r = ref 1 in
  while !r < n && key buf w key_field (!r - 1) <= key buf w key_field !r do incr r done;
  !r >= n
