(** Fused super-kernel descriptors (PR 7).

    A fused chain is an ordered list of stateless per-record primitives
    (band filter, equality select, projection, key shift) executed in one
    single-pass kernel behind one trusted entry, instead of one SMC round
    trip per primitive.  The chain descriptor is the call ABI of the
    [Fused] SMC entry and — encoded with {!encode_steps} — the parameter
    blob of the composite audit record the execution emits.

    Chain semantics are defined by the unfused primitives they collapse:
    running the steps left-to-right over each record, dropping it at the
    first failing filter/select, must produce output byte-identical to
    invoking {!Filter.filter_band}, {!Filter.select_eq}, {!Misc.project}
    and {!Misc.shift_key} in sequence over whole batches. *)

type step =
  | F_filter_band of { field : int; lo : int32; hi : int32 }
      (** keep records with [lo <= field <= hi] (signed compare, as
          {!Filter.filter_band}) *)
  | F_select of { field : int; value : int32 }  (** keep records with [field = value] *)
  | F_project of { fields : int array }
      (** re-emit the record as [fields] (reorder / narrow / duplicate);
          subsequent steps see the projected width *)
  | F_shift_key of { field : int; shift : int }
      (** arithmetic right-shift of one field, as {!Misc.shift_key} *)

val step_op : step -> Primitive.t
(** The unfused primitive a step stands for. *)

val step_name : step -> string

val width_after : int -> step list -> int option
(** [width_after w steps] is the record width after the whole chain runs
    over width-[w] input, or [None] if any step references a field outside
    the width it would actually see (or an invalid shift) — the validity
    check a fused plan must pass before it executes. *)

val max_width : int -> step list -> int
(** Widest row any step of the chain sees; scratch sizing for the
    single-pass kernels. *)

val encode_steps : step list -> bytes
(** Canonical byte encoding of a chain (at most 255 steps).  Injective:
    equal encodings mean equal chains, which is what the composite audit
    record's chain hash signs. *)

val decode_steps : bytes -> step list option
(** Inverse of {!encode_steps}; [None] on any malformed or trailing
    bytes. *)

val pp : Format.formatter -> step -> unit
