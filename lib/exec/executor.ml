module Trace = Sbt_sim.Trace
module Clock = Sbt_sim.Clock
module Pool = Sbt_umem.Page_pool
module Slab = Sbt_umem.Slab
module PK = Sbt_prim.Par_kernel

type mode = [ `Paced | `Spin | `Work ]

type work_fn = PK.runner -> unit

type domain_stats = {
  tasks : int;
  steals : int;
  steal_attempts : int;
  parks : int;
  chunks : int;
  busy_ns : float;
}

type report = {
  domains : int;
  wall_ns : float;
  tasks_executed : int;
  chunks_executed : int;
  per_domain : domain_stats array;
  pool_merges : int;
  scratch_high_water_bytes : int;
  journal : string;
}

let total_steals r = Array.fold_left (fun a s -> a + s.steals) 0 r.per_domain
let total_parks r = Array.fold_left (fun a s -> a + s.parks) 0 r.per_domain

(* --- the task kernel ------------------------------------------------------

   One chunk = 64 rounds of an integer mix written through the domain's
   scratch buffer: real loads/stores and real ALU work, deterministic,
   allocation-free.  [`Spin] runs a calibrated number of chunks; [`Paced]
   runs chunks until a wall deadline (with a coarse sleep first, so paced
   tasks overlap on oversubscribed hosts instead of fighting for the
   core). *)

let chunk_rounds = 64

let spin_chunk scratch h0 =
  let len = Bytes.length scratch in
  let h = ref h0 in
  for _ = 1 to chunk_rounds do
    h := (!h * 0x9E3779B97F4A7C) + 0x165667B19E3779F9;
    h := !h lxor (!h lsr 29);
    let off = (!h land max_int) mod (len - 8) in
    let prev = Bytes.get_uint8 scratch off in
    Bytes.unsafe_set scratch off (Char.unsafe_chr ((prev + (!h land 0x7F)) land 0xFF))
  done;
  !h

(* Chunks per nanosecond, measured once on the calling domain before any
   worker spawns (so the lazy cell is never forced concurrently). *)
let chunks_per_ns =
  lazy
    (let scratch = Bytes.create 4096 in
     let warm = ref 1 in
     for _ = 1 to 1_000 do
       warm := spin_chunk scratch !warm
     done;
     let t0 = Clock.now_ns () in
     let n = 20_000 in
     let h = ref !warm in
     for _ = 1 to n do
       h := spin_chunk scratch !h
     done;
     let dt = Float.max 1.0 (Clock.elapsed_ns ~since:t0) in
     ignore (Sys.opaque_identity !h);
     float_of_int n /. dt)

(* Sleep resolution is tens of microseconds at best: sleep short of the
   deadline and close the gap with the spin loop.  The margin must stay
   small — spinning burns a real core, and on an oversubscribed host a
   fat spin tail serializes the domains and erases the very overlap
   [`Paced] exists to show. *)
let sleep_margin_ns = 30_000.

let run_kernel ~(mode : [ `Paced | `Spin ]) ~scratch ~target_ns =
  if target_ns > 0.0 then
    match mode with
    | `Spin ->
        let chunks =
          int_of_float (Float.min 1e9 (target_ns *. Lazy.force chunks_per_ns))
        in
        let h = ref 1 in
        for _ = 1 to chunks do
          h := spin_chunk scratch !h
        done;
        ignore (Sys.opaque_identity !h)
    | `Paced ->
        let deadline = Clock.now_ns () +. target_ns in
        if target_ns > sleep_margin_ns then
          Unix.sleepf ((target_ns -. sleep_margin_ns) /. 1e9);
        let h = ref 1 in
        while Clock.now_ns () < deadline do
          h := spin_chunk scratch !h
        done;
        ignore (Sys.opaque_identity !h)

(* --- per-domain mutable state --------------------------------------------- *)

type worker = {
  id : int;
  deque : int Deque.t;
  shard : Pool.shard;
  slab : Slab.t;
      (* Arena over [shard]: small chunk scratch is slot-accounted here,
         so a 24-byte fused row no longer pins a 4 KB page, and the
         shared pool is only touched on bulk shard refills. *)
  scratch : Bytes.t;
  mutable w_tasks : int;
  mutable w_steals : int;
  mutable w_steal_attempts : int;
  mutable w_parks : int;
  mutable w_chunks : int;
  mutable w_busy : float;
  (* Buffered observability: spans and journal entries are collected
     domain-locally and merged after the join, so recording never makes
     one domain wait on another. *)
  mutable spans : (int * string * float * float) list; (* (node, label, start, dur) *)
}

(* A [`Work] task's parallel kernel publishes its chunk array here; idle
   workers claim chunks through [next] and bump [completed] per finished
   chunk, so the owner can wait for stragglers without a lock. *)
type batch = { b_chunks : PK.chunk array; b_next : int Atomic.t; b_completed : int Atomic.t }

let run ?tracer ?registry ?pool ?(time_scale = 1.0) ?(mode : mode = `Paced)
    ?(scratch_pages = 8) ?work ~domains trace =
  if domains <= 0 then invalid_arg "Executor.run: domains must be positive";
  if time_scale < 0.0 then invalid_arg "Executor.run: negative time_scale";
  if scratch_pages <= 0 then invalid_arg "Executor.run: scratch_pages must be positive";
  let nodes = Trace.nodes trace in
  let n = Array.length nodes in
  let pool =
    match pool with Some p -> p | None -> Pool.create ~budget_bytes:(64 * 1024 * 1024)
  in
  let shards = Pool.shards pool ~n:domains in
  (* Dependency countdowns and inverted edges, straight from the trace. *)
  let deps_left = Array.init n (fun i -> Atomic.make (List.length nodes.(i).Trace.deps)) in
  let children = Array.make n [] in
  Array.iteri
    (fun i node -> List.iter (fun d -> children.(d) <- i :: children.(d)) node.Trace.deps)
    nodes;
  for i = 0 to n - 1 do
    children.(i) <- List.rev children.(i)
  done;
  let remaining = Atomic.make n in
  let pool_merges = Atomic.make 0 in
  (match mode with `Spin -> ignore (Lazy.force chunks_per_ns) | `Paced | `Work -> ());
  let workers =
    Array.init domains (fun id ->
        {
          id;
          deque = Deque.create ();
          shard = shards.(id);
          slab = Slab.over_shard shards.(id);
          scratch = Bytes.create (scratch_pages * Pool.page_size);
          w_tasks = 0;
          w_steals = 0;
          w_steal_attempts = 0;
          w_parks = 0;
          w_chunks = 0;
          w_busy = 0.0;
          spans = [];
        })
  in
  (* --- intra-task chunk parallelism (`Work` mode) ---------------------- *)
  let slots : batch option Atomic.t array = Array.init domains (fun _ -> Atomic.make None) in
  let run_chunk w (c : PK.chunk) =
    let bytes = max 0 c.PK.scratch_bytes in
    if bytes = 0 then c.PK.run ()
    else if Slab.enabled () && Slab.fits bytes then begin
      (* Small scratch: one slab slot of the matching class, no lock,
         accounted through the shard the arena refills from. *)
      let ptr = Slab.alloc w.slab ~bytes in
      Fun.protect ~finally:(fun () -> Slab.free w.slab ptr) c.PK.run
    end
    else begin
      let pages = Pool.pages_for_bytes bytes in
      Pool.shard_commit w.shard ~pages;
      Fun.protect ~finally:(fun () -> Pool.shard_release w.shard ~pages) c.PK.run
    end;
    w.w_chunks <- w.w_chunks + 1
  in
  let help_batch w (b : batch) =
    let m = Array.length b.b_chunks in
    let rec loop () =
      let i = Atomic.fetch_and_add b.b_next 1 in
      if i < m then begin
        run_chunk w b.b_chunks.(i);
        Atomic.incr b.b_completed;
        loop ()
      end
    in
    loop ()
  in
  (* Idle path: before parking, look for a published batch with unclaimed
     chunks and help drain it. *)
  let try_help w =
    let rec probe k =
      if k >= domains then false
      else
        match Atomic.get slots.((w.id + k) mod domains) with
        | Some b when Atomic.get b.b_next < Array.length b.b_chunks ->
            help_batch w b;
            true
        | _ -> probe (k + 1)
    in
    probe 1
  in
  (* The runner a [`Work] task body sees: chunks are published in this
     worker's slot, claimed by whoever is idle, and the owner both works
     and waits for the last claimed chunk to finish (spin — chunk bodies
     are compute, not I/O). *)
  let runner_for w : PK.runner =
    let run_chunks chunks =
      let m = Array.length chunks in
      if m = 0 then ()
      else if m = 1 || domains = 1 then Array.iter (run_chunk w) chunks
      else begin
        let b = { b_chunks = chunks; b_next = Atomic.make 0; b_completed = Atomic.make 0 } in
        Atomic.set slots.(w.id) (Some b);
        help_batch w b;
        while Atomic.get b.b_completed < m do
          Domain.cpu_relax ()
        done;
        Atomic.set slots.(w.id) None
      end
    in
    { PK.width = domains; run_chunks }
  in
  (* Seed the roots round-robin so even the initial frontier is spread. *)
  let seeded = ref 0 in
  for i = 0 to n - 1 do
    if Atomic.get deps_left.(i) = 0 then begin
      Deque.push workers.(!seeded mod domains).deque i;
      incr seeded
    end
  done;
  let t_start = Clock.now_ns () in
  let execute w i =
    let node = nodes.(i) in
    let t0 = Clock.now_ns () in
    (match mode with
    | `Work ->
        (* Real work: replay this node's captured kernels through the
           chunk pool.  Nodes without captured kernels (pacing, control
           bookkeeping) cost nothing here.  Chunk scratch is accounted on
           the executing worker's shard inside [run_chunk]. *)
        let fn = match work with None -> None | Some lookup -> lookup i in
        Option.iter (fun f -> f (runner_for w)) fn
    | (`Paced | `Spin) as m ->
        Pool.shard_commit w.shard ~pages:scratch_pages;
        Fun.protect
          ~finally:(fun () -> Pool.shard_release w.shard ~pages:scratch_pages)
          (fun () ->
            run_kernel ~mode:m ~scratch:w.scratch ~target_ns:(node.Trace.cost_ns *. time_scale)));
    (* Window close: drain the slab arena (empty slab pages back to the
       shard), then fold the shard's quota back into the parent pool so
       its accounting drops to real usage. *)
    (match node.Trace.role with
    | Trace.Egress_of _ ->
        Slab.drain w.slab;
        Pool.merge_shard w.shard;
        Atomic.incr pool_merges
    | Trace.Plain | Trace.Watermark_arrival _ -> ());
    let t1 = Clock.now_ns () in
    w.w_busy <- w.w_busy +. (t1 -. t0);
    w.w_tasks <- w.w_tasks + 1;
    w.spans <- (i, node.Trace.label, t0 -. t_start, t1 -. t0) :: w.spans;
    List.iter
      (fun c ->
        if Atomic.fetch_and_add deps_left.(c) (-1) = 1 then Deque.push w.deque c)
      children.(i);
    Atomic.decr remaining
  in
  let try_steal w =
    let rec probe k =
      if k >= domains then None
      else begin
        let victim = workers.((w.id + k) mod domains) in
        w.w_steal_attempts <- w.w_steal_attempts + 1;
        match Deque.steal_half victim.deque with
        | [] -> probe (k + 1)
        | first :: rest ->
            w.w_steals <- w.w_steals + 1;
            (* Keep the oldest task; queue the rest so LIFO pops replay
               them oldest-first. *)
            List.iter (Deque.push w.deque) (List.rev rest);
            Some first
      end
    in
    probe 1
  in
  let worker_loop w =
    let backoff = ref 20e-6 in
    let rec loop () =
      if Atomic.get remaining > 0 then begin
        (match Deque.pop w.deque with
        | Some i ->
            backoff := 20e-6;
            execute w i
        | None -> (
            match try_steal w with
            | Some i ->
                backoff := 20e-6;
                execute w i
            | None ->
                if try_help w then backoff := 20e-6
                else begin
                  (* Nothing runnable anywhere: dependencies are still in
                     flight on other domains.  Back off (bounded) and
                     re-probe. *)
                  w.w_parks <- w.w_parks + 1;
                  Unix.sleepf !backoff;
                  backoff := Float.min 1e-3 (!backoff *. 2.0)
                end));
        loop ()
      end
    in
    loop ()
  in
  let spawned =
    Array.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker_loop workers.(k + 1)))
  in
  worker_loop workers.(0);
  Array.iter Domain.join spawned;
  let wall_ns = Clock.elapsed_ns ~since:t_start in
  Array.iter (fun w -> Slab.drain w.slab) workers;
  Array.iter (fun s -> Pool.merge_shard s) shards;
  let executed = Array.fold_left (fun a w -> a + w.w_tasks) 0 workers in
  if executed <> n then
    invalid_arg
      (Printf.sprintf "Executor.run: %d task(s) never became ready (dependency cycle?)"
         (n - executed));
  (* Canonical journal: every domain's completions, merged in schedule
     order — byte-identical however the domains interleaved. *)
  let completions =
    Array.to_list workers
    |> List.concat_map (fun w -> List.rev_map (fun (i, l, s, d) -> (i, l, s, d, w.id)) w.spans)
    |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
  in
  let journal = Buffer.create (16 * n) in
  List.iter (fun (i, label, _, _, _) -> Buffer.add_string journal (Printf.sprintf "%d %s\n" i label)) completions;
  (match tracer with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (_, label, start, dur, dom) ->
          Sbt_obs.Tracer.complete tr ~pid:2 ~tid:dom ~cat:"exec" ~name:label ~ts_ns:start
            ~dur_ns:dur ())
        completions);
  let per_domain =
    Array.map
      (fun w ->
        {
          tasks = w.w_tasks;
          steals = w.w_steals;
          steal_attempts = w.w_steal_attempts;
          parks = w.w_parks;
          chunks = w.w_chunks;
          busy_ns = w.w_busy;
        })
      workers
  in
  let scratch_hw =
    Array.fold_left (fun a s -> a + Pool.shard_high_water_bytes s) 0 shards
  in
  let report =
    {
      domains;
      wall_ns;
      tasks_executed = executed;
      chunks_executed = Array.fold_left (fun a w -> a + w.w_chunks) 0 workers;
      per_domain;
      pool_merges = Atomic.get pool_merges;
      scratch_high_water_bytes = scratch_hw;
      journal = Buffer.contents journal;
    }
  in
  (match registry with
  | None -> ()
  | Some reg ->
      let open Sbt_obs.Metrics in
      add (counter reg "exec.tasks") executed;
      add (counter reg "exec.steals") (total_steals report);
      add (counter reg "exec.steal_attempts")
        (Array.fold_left (fun a s -> a + s.steal_attempts) 0 per_domain);
      add (counter reg "exec.parks") (total_parks report);
      add (counter reg "exec.chunks") report.chunks_executed;
      add (counter reg "exec.pool_merges") report.pool_merges;
      add (counter reg "exec.domains") domains;
      add (counter reg "exec.wall_ns") (int_of_float (Float.max 0.0 wall_ns));
      (* umem.*: every worker arena publishes into the same registry
         after the join — counters sum across domains, gauges keep the
         per-arena peak via the registry's high-water tracking. *)
      Array.iter (fun w -> Slab.publish w.slab reg) workers;
      add (counter reg "umem.shard.refills")
        (Array.fold_left (fun a s -> a + Pool.shard_refills s) 0 shards);
      add (counter reg "umem.shard.drains")
        (Array.fold_left (fun a s -> a + Pool.shard_drains s) 0 shards));
  report
