(** Work-stealing executor on OCaml 5 Domains.

    Runs a recorded control-plane task graph ({!Sbt_sim.Trace}) for real:
    every node becomes a task on a per-domain work deque, dependencies are
    tracked with atomic countdowns over the trace's edges, idle domains
    steal the oldest half of a victim's deque, and the wall clock — not
    the DES's virtual clock — measures the result.  This is the
    measured-hardware counterpart to {!Sbt_sim.Trace.replay}: the replay
    answers "what would N cores do" in virtual time; this module answers
    "what does this host actually do" with N domains.

    {b What a task does.}  The recorded graph's {e observable} effects on
    the data plane happened during recording (re-running them concurrently
    would race on ids, audit order and allocator state — see DESIGN.md
    §8), so a task's body reproduces its cost, three ways:

    - [`Paced] (default): the task occupies its domain for
      [cost_ns * time_scale] of wall time (coarse sleep + a short
      calibrated spin tail), touching its domain's scratch arena as it
      goes.  Paced tasks overlap across domains even on a single-core
      host, so the measured speedup reflects the executor's real
      scheduling — deques, steals, dependency stalls — rather than the
      host's core count.
    - [`Spin]: the task performs [cost_ns * time_scale] worth of
      calibrated integer/memory work.  On a multicore host this measures
      genuine parallel compute; on a single-core host spinning domains
      time-slice and show no speedup.
    - [`Work]: the task re-executes the {e real} primitive kernels the
      recording captured for its node ([?work]) through the data-parallel
      {!Sbt_prim.Par_kernel} variants, into throwaway buffers — honest
      compute with the recorded pass's bytes untouched (DESIGN.md §9).
      Each kernel's chunks are published in the executing worker's slot;
      idle domains claim chunks before parking, so a lone window-close
      merge still spreads across the machine.  [time_scale] is ignored,
      and nodes with no captured kernels cost ~nothing.

    {b Memory.}  Each domain owns one {!Sbt_umem.Page_pool} shard as its
    scratch arena: commits and releases hit lock-free shard-local
    counters, and every window-close task ([Egress_of]) merges its
    domain's shard back into the parent pool, so secure-pool accounting
    stays race-free and the parent's committed/high-water numbers remain
    the conservative bound Figures 7/10 report.

    {b Determinism.}  Scheduling order is nondeterministic; observable
    outputs are not derived from it.  The {!report}'s [journal] lists
    completed tasks merged from per-domain buffers in schedule-index
    order, so it is byte-identical across domain counts and runs — the
    executor-level instance of the audit-merge discipline
    ({!Sbt_attest.Log.merge_shards}). *)

type mode = [ `Paced | `Spin | `Work ]

type work_fn = Sbt_prim.Par_kernel.runner -> unit
(** A node's captured real work: invoked with a runner backed by the
    executor's worker domains. *)

type domain_stats = {
  tasks : int;  (** tasks this domain executed *)
  steals : int;  (** successful steal-half operations *)
  steal_attempts : int;  (** steal probes, successful or not *)
  parks : int;  (** backoff sleeps while the graph had no ready task *)
  chunks : int;  (** parallel kernel chunks this domain executed ([`Work]) *)
  busy_ns : float;  (** wall time spent inside task bodies *)
}

type report = {
  domains : int;
  wall_ns : float;  (** wall time from first dispatch to last completion *)
  tasks_executed : int;
  chunks_executed : int;  (** total kernel chunks across domains ([`Work]) *)
  per_domain : domain_stats array;
  pool_merges : int;  (** shard-to-parent merges (one per window close) *)
  scratch_high_water_bytes : int;  (** sum of per-shard high waters *)
  journal : string;
      (** canonical completion journal: ["<index> <label>\n"] per task,
          in schedule-index order — byte-identical across domain counts *)
}

val total_steals : report -> int
val total_parks : report -> int

val run :
  ?tracer:Sbt_obs.Tracer.t ->
  ?registry:Sbt_obs.Metrics.t ->
  ?pool:Sbt_umem.Page_pool.t ->
  ?time_scale:float ->
  ?mode:mode ->
  ?scratch_pages:int ->
  ?work:(int -> work_fn option) ->
  domains:int ->
  Sbt_sim.Trace.t ->
  report
(** Execute the graph on [domains] domains (the caller's domain plus
    [domains - 1] spawned ones).

    [time_scale] (default 1.0) multiplies every task's recorded cost —
    benches use it to shrink big recordings to a measurable-but-quick
    wall footprint.  [pool] is the parent secure pool backing the
    per-domain scratch shards (a private 64 MB pool by default);
    [scratch_pages] (default 8) is each task's scratch working set in
    [`Paced]/[`Spin] mode ([`Work] accounts each chunk's own
    [scratch_pages] instead).  [work] maps a schedule index to the node's
    captured kernels; only consulted in [`Work] mode.

    [tracer] receives one span per task on the real-parallel track
    (pid 2, tid = domain index, cat ["exec"]) with {e wall-clock}
    timestamps relative to the run start — the one track where wall time
    is the point; spans are buffered per domain and emitted after the
    run, so tracing never synchronizes domains.  [registry] gains
    [exec.tasks], [exec.steals], [exec.steal_attempts], [exec.parks],
    [exec.pool_merges], [exec.domains] and [exec.wall_ns] counters.

    Raises [Invalid_argument] if [domains <= 0] or the trace's
    dependency edges are malformed. *)
