type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
}

(* A growable ring of ['a option] would box every slot; instead keep a
   plain ['a array] that is empty until the first push provides a seed
   value for [Array.make]. *)

let create () = { lock = Mutex.create (); buf = [||]; head = 0; len = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t seed =
  let cap = Array.length t.buf in
  let cap' = max 16 (2 * cap) in
  let buf' = Array.make cap' seed in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf';
  t.head <- 0

let push t x =
  locked t (fun () ->
      if t.len = Array.length t.buf then grow t x;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
      t.len <- t.len + 1)

let pop t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        t.len <- t.len - 1;
        Some t.buf.((t.head + t.len) mod Array.length t.buf)
      end)

let steal_half t =
  locked t (fun () ->
      if t.len = 0 then []
      else begin
        let k = (t.len + 1) / 2 in
        let cap = Array.length t.buf in
        let out = List.init k (fun i -> t.buf.((t.head + i) mod cap)) in
        t.head <- (t.head + k) mod cap;
        t.len <- t.len - k;
        out
      end)

let length t = locked t (fun () -> t.len)
