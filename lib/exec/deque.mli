(** Per-domain work deque with steal-half.

    The owning domain pushes and pops at the hot (newest) end — LIFO, so
    freshly unblocked children run while their inputs are warm.  Thieves
    take the *oldest* half in one locked operation ([steal_half]), which
    moves whole subtree roots and amortizes steal traffic the way
    Cilk-style deques do.

    The implementation is a mutex-protected growable ring: every
    operation is O(1) amortized and the critical sections are a few
    dozen instructions, which at this executor's task granularity
    (tens of microseconds and up) never shows up in profiles.  All
    operations are safe to call from any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner: push at the newest end. *)

val pop : 'a t -> 'a option
(** Owner: pop the newest element ([None] when empty). *)

val steal_half : 'a t -> 'a list
(** Thief: remove ceil(n/2) elements from the *oldest* end, returned
    oldest first ([[]] when empty). *)

val length : 'a t -> int
