(* Fleet runner: M simulated edge nodes over one key-partitioned
   workload, a beat-indexed failure detector driving attested partition
   handoff on permanent death, and a cloud-side combiner + fleet
   verifier on the egress.

   Time model: one beat per closed window.  An edge heartbeats at every
   beat it closes a window; the detector ticks after each beat's
   deliveries.  Kills halt an edge exactly at a checkpoint boundary (the
   checkpoint for the beat is durable, in-TEE state is lost), which is
   what makes churned runs byte-identical to clean ones: recovery — on
   the same edge for a transient crash, on a survivor via handoff for a
   declared death — resumes from that durable cut and re-ingests the
   un-acknowledged replay suffix, exactly the PR-5 crash invariant
   lifted to the fleet. *)

module D = Sbt_core.Dataplane
module R = Sbt_core.Runtime
module P = Sbt_core.Pipeline
module F = Sbt_net.Frame
module E = Sbt_attest.Epoch
module V = Sbt_attest.Verifier
module H = Sbt_attest.Handoff
module Fault = Sbt_fault.Fault
module M = Sbt_obs.Metrics

exception No_survivor of { partition : int; beat : int }

type fate =
  | Ran
  | Recovered of { halted_at : int; resumed_beat : int }
  | Dead of { declared_at : int; fenced_window : int option; recipient : int option }

type summary = {
  nodes : int;
  windows : int;
  merged : (int * int * D.sealed_result) list;
  report : V.fleet_report;
  edges : V.edge_chains list;
  handoffs : (H.manifest * H.sealed) list;
  fates : fate array;
  deaths : int;
  suspicions_raised : int;
  suspicions_cleared : int;
  fenced_heartbeats : int;
  replayed_frames : int;
  total_events : int;
  makespan_ns : float;
  uplink_bytes : int;
  registry : M.t;
}

let range a b = if a > b then [] else List.init (b - a + 1) (fun i -> a + i)

let closable_windows ~size ~slide frames =
  let wm_max =
    List.fold_left
      (fun acc f -> match f with F.Watermark { value; _ } -> max acc value | _ -> acc)
      0 frames
  in
  if wm_max >= size then ((wm_max - size) / slide) + 1 else 0

let run_impl ?registry ?(ckpt_every = 1) ?(rogue_handoff = false) ?(plan = Fault.none) ~scenario
    ~nodes:m ~batch_events cfg pipe frames =
  if m < 1 then invalid_arg "Fleet.run: nodes must be >= 1";
  let size = pipe.P.window_size_ticks and slide = pipe.P.window_slide_ticks in
  let w_total = closable_windows ~size ~slide frames in
  if w_total < 1 then invalid_arg "Fleet.run: workload closes no windows";
  let last = w_total - 1 in
  let sa = scenario.Fault.suspect_after and ra = scenario.Fault.recover_after in
  let event_of = Array.make m None in
  List.iter
    (fun e ->
      let n = Fault.fleet_event_node e in
      if n >= m then invalid_arg "Fleet.run: scenario event for node outside the fleet";
      event_of.(n) <- Some e)
    scenario.Fault.events;
  let parts =
    Partition.split ~parts:m ~schema:pipe.P.schema ~window_size:size ~window_slide:slide
      ~batch_events frames
  in
  let total_events =
    List.fold_left
      (fun acc f -> match f with F.Events { events; _ } -> acc + events | _ -> acc)
      0 frames
  in
  (* ---- heartbeat delivery schedules (1 tick = 1ms of virtual time) ---- *)
  let beat_ns = float_of_int slide *. 1e6 in
  let hb_schedule n =
    match event_of.(n) with
    | None -> range 0 last
    | Some (Fault.Kill { at_beat = k; _ }) when k > last -> range 0 last
    | Some (Fault.Kill { at_beat = k; permanent; _ }) ->
        let base = range 0 k in
        if permanent then base
        else
          (* reboot recover_after beats after the halt; remaining windows
             close one per beat from there (a bare liveness ping if the
             halt already closed the last window) *)
          let r = k + ra in
          base @ (if k >= last then [ r ] else range r (r + last - k - 1))
    | Some (Fault.Uplink_partition { at_beat = a; beats = b; _ }) ->
        let r = Fault.reconnect_beat plan ~node:n ~at_beat:a ~beats:b ~beat_ns in
        range 0 (min (a - 1) last) @ (if r <= last then range r last else [ r ])
    | Some (Fault.Straggle { factor; _ }) ->
        List.sort_uniq compare
          (List.init w_total (fun w -> int_of_float (Float.round (float_of_int w *. factor))))
  in
  let schedules = Array.init m hb_schedule in
  (* ---- detector replay over the full beat horizon ---- *)
  (* The horizon runs suspect_after past the newest scheduled heartbeat
     so every pending death matures.  A node that finishes its stream is
     idle, not dead: everyone except a permanently-killed edge keeps
     pinging through the horizon after its last working heartbeat. *)
  let max_hb = Array.fold_left (fun acc l -> List.fold_left max acc l) last schedules in
  let horizon = max_hb + sa + 1 in
  let idles_after_finish n =
    match event_of.(n) with
    | Some (Fault.Kill { at_beat = k; permanent = true; _ }) when k <= last -> false
    | _ -> true
  in
  let schedules =
    Array.mapi
      (fun n sched ->
        if idles_after_finish n && sched <> [] then
          let l = List.fold_left max 0 sched in
          sched @ range (l + 1) horizon
        else sched)
      schedules
  in
  let det = Detector.create ~nodes:m ~suspect_after:sa in
  let deaths = Array.make m None in
  for beat = 0 to horizon do
    Array.iteri
      (fun n sched -> if List.mem beat sched then Detector.heartbeat det ~node:n ~beat)
      schedules;
    List.iter (fun n -> deaths.(n) <- Some beat) (Detector.tick det ~beat)
  done;
  (* Where a dead node's execution is fenced: kills halt where they
     struck; uplink deaths fence at the declaration window (the node
     kept computing, but its authority ends where the fleet cut it off);
     stragglers fence at the window they had reached by declaration. *)
  let fence n =
    match (deaths.(n), event_of.(n)) with
    | None, _ -> None
    | Some _, Some (Fault.Kill { at_beat = k; _ }) -> Some (min k last)
    | Some d, Some (Fault.Uplink_partition _) -> if d <= last then Some d else None
    | Some d, Some (Fault.Straggle { factor; _ }) ->
        let h = int_of_float (float_of_int d /. factor) in
        if h < last then Some h else None
    | Some _, None -> assert false (* a fully-scheduled node cannot die *)
  in
  let halt_of n =
    match event_of.(n) with
    | Some (Fault.Kill { at_beat = k; _ }) when k <= last -> Some k
    | _ -> fence n
  in
  (* Survivor policy: lowest-id edge that is never declared dead and has
     no kill of its own this run (a crashed-and-recovered edge is not
     entrusted with extra partitions).  Slow or blipped-but-alive edges
     are eligible. *)
  let eligible e =
    deaths.(e) = None
    && match event_of.(e) with Some (Fault.Kill _) -> false | _ -> true
  in
  let survivor_for p d =
    let rec find e =
      if e >= m then raise (No_survivor { partition = p; beat = d })
      else if e <> p && eligible e then e
      else find (e + 1)
    in
    find 0
  in
  (* ---- execution ---- *)
  let reg = match registry with Some r -> r | None -> M.create () in
  let scope e = M.scoped reg (Printf.sprintf "edge%d" e) in
  let key = cfg.R.dp_config.D.egress_key in
  let fates = Array.make m Ran in
  let handoffs = ref [] in
  let edge_chains = Array.make m [] in
  let merged = ref [] in
  let replayed = ref 0 in
  let vt_max = ref 0. in
  let scale n =
    match event_of.(n) with Some (Fault.Straggle { factor; _ }) -> factor | _ -> 1.0
  in
  for p = 0 to m - 1 do
    let node = R.Node.create ~ckpt_every cfg pipe parts.(p) in
    let attribute e segs = edge_chains.(e) <- (p, segs) :: edge_chains.(e) in
    let ship n = merged := List.rev_append (List.rev_map (fun (w, s) -> (w, p, s)) (R.Node.results n)) !merged in
    (match halt_of p with
    | None ->
        let (_ : R.Node.outcome) = R.Node.boot ~registry:(scope p) node in
        attribute p (R.Node.epochs node)
    | Some h -> (
        match R.Node.boot ~registry:(scope p) ~halt_after_window:h node with
        | R.Node.Completed ->
            (* stream ended before the halt boundary; nothing to recover *)
            attribute p (R.Node.epochs node);
            (match deaths.(p) with
            | Some d -> fates.(p) <- Dead { declared_at = d; fenced_window = None; recipient = None }
            | None -> ())
        | R.Node.Halted _ -> (
            match deaths.(p) with
            | None ->
                (* transient crash: the same edge reboots from its own
                   durable checkpoint before suspicion matures *)
                let (_ : R.Node.outcome) = R.Node.boot ~registry:(scope p) node in
                fates.(p) <- Recovered { halted_at = h; resumed_beat = h + ra };
                attribute p (R.Node.epochs node)
            | Some d ->
                let s = survivor_for p d in
                fates.(p) <- Dead { declared_at = d; fenced_window = Some h; recipient = Some s };
                if rogue_handoff then begin
                  (* adversarial failover: the survivor re-runs the
                     partition from scratch and discards the paperwork —
                     two epoch-0 chains whose overlap the fleet verifier
                     must flag *)
                  let rogue = R.Node.create ~ckpt_every cfg pipe parts.(p) in
                  let (_ : R.Node.outcome) = R.Node.boot ~registry:(scope s) rogue in
                  attribute p (R.Node.epochs node);
                  attribute s (R.Node.epochs rogue);
                  merged :=
                    List.rev_append
                      (List.rev_map (fun (w, sr) -> (w, p, sr)) (R.Node.results rogue))
                      !merged;
                  replayed := !replayed + R.Node.replayed_frames rogue;
                  vt_max := Float.max !vt_max (R.Node.vt_ns rogue)
                end
                else begin
                  (* attested handoff: the survivor adopts the dead
                     edge's store and replay buffer, resumes from the
                     last acknowledged checkpoint, and the handoff
                     manifest binds the resume coordinates its first
                     epoch must repeat *)
                  let e_d = R.Node.epoch_count node in
                  let cursor = R.Node.acked_frames node in
                  let (_ : R.Node.outcome) = R.Node.boot ~registry:(scope s) node in
                  let first_m = List.nth (R.Node.manifests node) e_d in
                  let manifest =
                    {
                      H.partition = p;
                      donor = p;
                      donor_epoch = e_d - 1;
                      recipient = s;
                      resume_ckpt = first_m.E.resumed_from;
                      resume_cursor = cursor;
                      resume_batch_seq = first_m.E.resume_batch_seq;
                    }
                  in
                  handoffs := (manifest, H.seal ~key manifest) :: !handoffs;
                  let eps = R.Node.epochs node in
                  attribute p (List.filteri (fun i _ -> i < e_d) eps);
                  attribute s (List.filteri (fun i _ -> i >= e_d) eps)
                end)));
    ship node;
    replayed := !replayed + R.Node.replayed_frames node;
    vt_max := Float.max !vt_max (R.Node.vt_ns node *. scale p)
  done;
  (* ---- cloud-side combiner: canonical (window, partition) order ---- *)
  let merged =
    List.stable_sort
      (fun (w1, p1, _) (w2, p2, _) -> if w1 <> w2 then compare w1 w2 else compare p1 p2)
      (List.rev !merged)
  in
  let uplink_bytes =
    List.fold_left
      (fun acc (_, _, s) -> acc + Bytes.length s.D.cipher + Bytes.length s.D.tag + 24)
      0 merged
  in
  let uplink_ns = Sbt_net.Link.transfer_ns Sbt_net.Link.uplink ~bytes_len:uplink_bytes in
  let death_count = Array.fold_left (fun acc d -> if d = None then acc else acc + 1) 0 deaths in
  let handoffs = List.rev !handoffs in
  (* ---- fleet verification ---- *)
  let spec = P.verifier_spec pipe in
  let edges = List.init m (fun e -> { V.edge = e; chains = List.rev edge_chains.(e) }) in
  let report =
    V.verify_fleet ~key spec ~partitions:m ~windows:w_total ~edges
      ~handoffs:(List.map snd handoffs)
  in
  M.add (M.counter reg "fleet.deaths") death_count;
  M.add (M.counter reg "fleet.handoffs_sealed") (List.length handoffs);
  M.add (M.counter reg "fleet.suspicions_raised") (Detector.suspicions_raised det);
  M.add (M.counter reg "fleet.suspicions_cleared") (Detector.suspicions_cleared det);
  M.add (M.counter reg "fleet.fenced_heartbeats") (Detector.fenced_heartbeats det);
  M.add (M.counter reg "fleet.replayed_frames") !replayed;
  M.add (M.counter reg "fleet.uplink_bytes") uplink_bytes;
  {
    nodes = m;
    windows = w_total;
    merged;
    report;
    edges;
    handoffs;
    fates;
    deaths = death_count;
    suspicions_raised = Detector.suspicions_raised det;
    suspicions_cleared = Detector.suspicions_cleared det;
    fenced_heartbeats = Detector.fenced_heartbeats det;
    replayed_frames = !replayed;
    total_events;
    makespan_ns = !vt_max +. uplink_ns;
    uplink_bytes;
    registry = reg;
  }

(* The Session-facing entry: a fleet partitions exactly one tenant's
   pipeline M ways (multi-tenant fleets would be M x N sessions — out of
   scope; compose Multi per node instead). *)
let run_session ?registry ?ckpt_every ?rogue_handoff ?plan ~scenario ~nodes ~batch_events
    session =
  match Sbt_core.Session.tenants session with
  | [ t ] ->
      run_impl ?registry ?ckpt_every ?rogue_handoff ?plan ~scenario ~nodes ~batch_events
        (Sbt_core.Session.config session)
        t.Sbt_core.Multi.pipeline t.Sbt_core.Multi.source
  | _ -> invalid_arg "Fleet.run_session: a fleet partitions exactly one tenant pipeline"

(* Deprecated wrapper over [run_session]. *)
let run ?registry ?ckpt_every ?rogue_handoff ?plan ~scenario ~nodes ~batch_events cfg pipe
    frames =
  run_session ?registry ?ckpt_every ?rogue_handoff ?plan ~scenario ~nodes ~batch_events
    (Sbt_core.Session.create cfg
    |> Sbt_core.Session.add_tenant ~pipeline:pipe ~source:frames)
