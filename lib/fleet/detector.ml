(* Virtual-time heartbeat failure detector.

   Beats are the fleet's discrete heartbeat unit: each edge reports once
   per window it closes, and the detector ticks once per beat after
   deliveries.  A node whose newest heartbeat is [suspect_after] beats
   old at a tick is declared dead — sticky: later heartbeats from a dead
   node are fenced (counted, never honored), which is what keeps a
   late-returning node from double-emitting after its partition was
   handed off.  Everything is integer beat arithmetic on delivered
   heartbeats, so verdicts are a pure function of the delivery schedule. *)

type verdict = Alive | Suspect of { missed : int } | Dead of { declared_at : int }

type node_state = {
  mutable last_beat : int;
  mutable suspected : bool;
  mutable dead_at : int option;
}

type t = {
  suspect_after : int;
  states : node_state array;
  mutable now : int;
  mutable suspicions_raised : int;
  mutable suspicions_cleared : int;
  mutable fenced_heartbeats : int;
}

let create ~nodes ~suspect_after =
  if nodes < 1 then invalid_arg "Detector.create: nodes must be >= 1";
  if suspect_after < 1 then invalid_arg "Detector.create: suspect_after must be >= 1";
  {
    suspect_after;
    states =
      Array.init nodes (fun _ -> { last_beat = -1; suspected = false; dead_at = None });
    now = -1;
    suspicions_raised = 0;
    suspicions_cleared = 0;
    fenced_heartbeats = 0;
  }

let nodes t = Array.length t.states

let check_node t node =
  if node < 0 || node >= nodes t then invalid_arg "Detector: node out of range"

let heartbeat t ~node ~beat =
  check_node t node;
  let s = t.states.(node) in
  match s.dead_at with
  | Some _ -> t.fenced_heartbeats <- t.fenced_heartbeats + 1
  | None ->
      if beat > s.last_beat then s.last_beat <- beat;
      if s.suspected then begin
        s.suspected <- false;
        t.suspicions_cleared <- t.suspicions_cleared + 1
      end

let tick t ~beat =
  if beat <= t.now then invalid_arg "Detector.tick: beats must advance";
  t.now <- beat;
  let newly_dead = ref [] in
  Array.iteri
    (fun i s ->
      match s.dead_at with
      | Some _ -> ()
      | None ->
          let missed = beat - s.last_beat in
          if missed >= 1 && not s.suspected then begin
            s.suspected <- true;
            t.suspicions_raised <- t.suspicions_raised + 1
          end;
          if missed >= t.suspect_after then begin
            s.dead_at <- Some beat;
            newly_dead := i :: !newly_dead
          end)
    t.states;
  List.rev !newly_dead

let verdict t ~node =
  check_node t node;
  let s = t.states.(node) in
  match s.dead_at with
  | Some declared_at -> Dead { declared_at }
  | None ->
      if s.suspected then Suspect { missed = max 0 (t.now - s.last_beat) } else Alive

let is_dead t ~node = match verdict t ~node with Dead _ -> true | _ -> false
let suspicions_raised t = t.suspicions_raised
let suspicions_cleared t = t.suspicions_cleared
let fenced_heartbeats t = t.fenced_heartbeats
