(** Virtual-time heartbeat failure detector (beat-indexed).

    Each edge delivers one heartbeat per window it closes; the fleet
    ticks the detector once per beat after deliveries.  A node whose
    newest delivered heartbeat is [suspect_after] beats old at a tick is
    declared dead — permanently: later heartbeats are {e fenced}
    (counted, never honored), so a node that went silent long enough to
    lose its partition can never double-emit into the fleet.  A
    heartbeat delivered one beat before the boundary clears the
    suspicion and no death is declared.  Verdicts are a pure function of
    the delivery schedule — no wall clock anywhere. *)

type t

type verdict =
  | Alive
  | Suspect of { missed : int }  (** beats since the newest heartbeat *)
  | Dead of { declared_at : int }

val create : nodes:int -> suspect_after:int -> t
(** All nodes start alive with an implicit registration heartbeat at
    beat [-1] (so a node must miss [suspect_after] beats from the start
    to die without ever reporting).  Raises [Invalid_argument] on
    [nodes < 1] or [suspect_after < 1]. *)

val nodes : t -> int

val heartbeat : t -> node:int -> beat:int -> unit
(** Deliver a heartbeat.  Clears an active suspicion; fenced (counted,
    ignored) if the node is already dead. *)

val tick : t -> beat:int -> int list
(** Advance to [beat] (strictly increasing; raises otherwise) and
    return the nodes newly declared dead at this tick, ascending.  A
    node with [beat - last_heartbeat >= suspect_after] dies exactly at
    this boundary; with one less missed beat it is only suspected. *)

val verdict : t -> node:int -> verdict
val is_dead : t -> node:int -> bool

val suspicions_raised : t -> int
val suspicions_cleared : t -> int

val fenced_heartbeats : t -> int
(** Heartbeats delivered by already-dead (fenced) nodes. *)
