(** Source-side key-range partitioner.

    Splits one generated workload into [parts] disjoint frame streams by
    hashing each record's key field, so M edge nodes can ingest one
    logical workload side by side.  Each partition is a well-formed
    source stream of its own: per-stream frame sequences restart at 0,
    batch window metadata is recomputed from the partition's actual
    records, and every watermark is copied to every partition (event
    time is global; a partition with few records still closes its
    windows).  Batches flush at [batch_events] and at watermark
    boundaries, mirroring the generator, so a partitioned stream is
    byte-reproducible from (workload, parts). *)

val assign : parts:int -> int32 -> int
(** The partition a key routes to: [key mod parts] on the key's
    non-negative image.  Raises [Invalid_argument] on [parts < 1]. *)

val split :
  parts:int ->
  schema:Sbt_core.Event.schema ->
  window_size:int ->
  window_slide:int ->
  batch_events:int ->
  Sbt_net.Frame.t list ->
  Sbt_net.Frame.t list array
(** Partition a cleartext frame stream ([parts] lists, index =
    partition).  Window metadata is recomputed per partition under the
    given window geometry (event-time ticks).  Raises
    [Invalid_argument] on encrypted or sealed input — partitioning
    happens at the source, before wire protection — and on non-positive
    [parts], [batch_events], or window geometry. *)
