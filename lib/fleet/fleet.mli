(** Edge fleet under churn: partitioned multi-node ingestion, consistent
    key-range failover, and fleet-scope verification.

    [run] drives M simulated edge nodes — each its own engine + TEE
    instance ({!Sbt_core.Runtime.Node}) with its own durable store and
    source-replay buffer — over one workload key-partitioned M ways
    ({!Partition}), then merges per-edge egress cloud-side in canonical
    [(window, partition)] order and judges the whole fleet with
    {!Sbt_attest.Verifier.verify_fleet}.

    {b Time model.}  One beat per closed window.  Edges heartbeat at
    each beat they close; the {!Detector} ticks after deliveries.  A
    scenario ({!Sbt_fault.Fault.fleet_scenario}) is interpreted
    deterministically:

    - a {e transient kill} halts the edge at the checkpoint boundary for
      its beat and reboots it [recover_after] beats later — if that is
      inside the suspicion window, the same edge resumes from its own
      durable checkpoint and no death is declared;
    - a {e permanent kill} (or any silence reaching [suspect_after]
      missed beats — a long uplink partition, a straggler too slow to
      beat the detector) declares the edge dead, permanently fenced;
    - death triggers {e attested handoff}: the partition's key range is
      re-assigned to the lowest-id eligible survivor (never-dead, no
      kill of its own this run), which adopts the dead edge's store and
      replay buffer, resumes from the last acknowledged checkpoint
      cursor, and re-ingests the un-acknowledged suffix.  A signed
      {!Sbt_attest.Handoff} manifest (range, donor epoch, recipient,
      resume coordinates) is sealed as the stitching authority the
      fleet verifier demands.

    Because kills cut exactly at durable checkpoint boundaries, a
    churned fleet's merged egress is byte-identical to the un-churned
    run's — the PR-5 crash-recovery invariant lifted to fleet scope. *)

exception No_survivor of { partition : int; beat : int }
(** Raised when a partition's edge dies and no eligible survivor
    remains ([sbt_run] maps this to exit 3). *)

type fate =
  | Ran  (** no churn, or survived its event *)
  | Recovered of { halted_at : int; resumed_beat : int }
      (** transient crash, recovered on the same edge *)
  | Dead of { declared_at : int; fenced_window : int option; recipient : int option }
      (** declared dead; [fenced_window] is where execution authority
          ended ([None] if the partition finished first), [recipient]
          the adopting survivor ([None] if nothing was left to adopt) *)

type summary = {
  nodes : int;
  windows : int;  (** windows the workload closes (also the beat count) *)
  merged : (int * int * Sbt_core.Dataplane.sealed_result) list;
      (** combiner output: [(window, partition, sealed)] in canonical
          ascending [(window, partition)] order *)
  report : Sbt_attest.Verifier.fleet_report;
  edges : Sbt_attest.Verifier.edge_chains list;
      (** the verifier input: per-edge epoch chains by partition — what
          an audit bundle ships to the cloud *)
  handoffs : (Sbt_attest.Handoff.manifest * Sbt_attest.Handoff.sealed) list;
  fates : fate array;  (** per edge *)
  deaths : int;
  suspicions_raised : int;
  suspicions_cleared : int;
  fenced_heartbeats : int;
  replayed_frames : int;  (** replay-buffer frames re-ingested by recoveries *)
  total_events : int;  (** workload events (all partitions) *)
  makespan_ns : float;
      (** slowest edge's virtual time (straggle-scaled) plus shipping
          the merged egress over the {!Sbt_net.Link.uplink} *)
  uplink_bytes : int;  (** sealed egress bytes shipped to the combiner *)
  registry : Sbt_obs.Metrics.t;
      (** per-edge scoped engine counters ([edge3.control.*]) plus
          fleet-scope totals ([fleet.*]) *)
}

val run_session :
  ?registry:Sbt_obs.Metrics.t ->
  ?ckpt_every:int ->
  ?rogue_handoff:bool ->
  ?plan:Sbt_fault.Fault.plan ->
  scenario:Sbt_fault.Fault.fleet_scenario ->
  nodes:int ->
  batch_events:int ->
  Sbt_core.Session.t ->
  summary
(** The {!Sbt_core.Session}-facing entry: partition the session's single
    tenant pipeline across [nodes] edges and run the churn scenario.
    Raises [Invalid_argument] unless the session admitted exactly one
    tenant (a fleet partitions one workload; multi-tenant enclaves
    compose per node via {!Sbt_core.Multi} instead). *)

val run :
  ?registry:Sbt_obs.Metrics.t ->
  ?ckpt_every:int ->
  ?rogue_handoff:bool ->
  ?plan:Sbt_fault.Fault.plan ->
  scenario:Sbt_fault.Fault.fleet_scenario ->
  nodes:int ->
  batch_events:int ->
  Sbt_core.Runtime.config ->
  Sbt_core.Pipeline.t ->
  Sbt_net.Frame.t list ->
  summary
(** Deprecated wrapper: builds a 1-tenant session and calls
    {!run_session}.  Run the fleet over a cleartext workload frame
    stream (see
    {!Partition.split} for partitioning rules; [batch_events] is the
    workload's batch size).  [ckpt_every] defaults to 1 so every beat is
    a consistent kill point.  [plan] supplies the reconnect backoff for
    uplink partitions (default {!Sbt_fault.Fault.none}).

    [rogue_handoff] simulates an adversarial failover: the survivor
    re-runs the dead edge's partition from scratch and discards the
    manifest, leaving two unlinked chains whose overlapping egress the
    fleet verifier must flag ({!Sbt_attest.Verifier.Handoff_unattested}
    + [Cross_edge_duplicate]); the merged output then contains the
    duplicates — it is an attack demonstration, not a recovery mode.

    Raises {!No_survivor} when a death finds no eligible adopter, and
    [Invalid_argument] on an empty fleet, a workload closing no
    windows, or a scenario naming a node outside the fleet. *)
