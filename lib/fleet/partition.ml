(* Key-range partitioner: splits one generated workload into M
   disjoint per-partition frame streams, each a valid source stream in
   its own right (fresh per-stream frame sequences, watermarks copied to
   every partition).  Partitioning happens at the source, before
   encryption/sealing — a frame protected for the wire cannot be split
   without the source key, so encrypted input is rejected rather than
   silently decrypted. *)

module Frame = Sbt_net.Frame

let assign ~parts key =
  if parts < 1 then invalid_arg "Partition.assign: parts must be >= 1";
  Int32.to_int key land max_int mod parts

(* Same shape as Datagen's per-stream accumulator: one pending batch,
   flushed when full and at watermark boundaries. *)
type pstate = {
  mutable buffer : int32 array list; (* reversed *)
  mutable buffered : int;
  mutable windows_touched : int list;
  mutable seq : int;
}

let split ~parts ~schema ~window_size ~window_slide ~batch_events frames =
  if parts < 1 then invalid_arg "Partition.split: parts must be >= 1";
  if batch_events < 1 then invalid_arg "Partition.split: batch_events must be >= 1";
  if window_size < 1 || window_slide < 1 then
    invalid_arg "Partition.split: window geometry must be positive";
  let width = schema.Sbt_core.Event.width in
  let key_field = schema.Sbt_core.Event.key_field in
  let ts_field = schema.Sbt_core.Event.ts_field in
  let out = Array.make parts [] in
  let states : (int, pstate) Hashtbl.t array = Array.init parts (fun _ -> Hashtbl.create 4) in
  let state p stream =
    match Hashtbl.find_opt states.(p) stream with
    | Some st -> st
    | None ->
        let st = { buffer = []; buffered = 0; windows_touched = []; seq = 0 } in
        Hashtbl.add states.(p) stream st;
        st
  in
  let flush p stream st =
    if st.buffered > 0 then begin
      let records = Array.of_list (List.rev st.buffer) in
      let payload = Frame.pack_events ~width records in
      out.(p) <-
        Frame.Events
          {
            seq = st.seq;
            stream;
            events = st.buffered;
            windows = List.sort_uniq compare st.windows_touched;
            payload;
            encrypted = false;
            mac = Bytes.empty;
          }
        :: out.(p);
      st.seq <- st.seq + 1;
      st.buffer <- [];
      st.buffered <- 0;
      st.windows_touched <- []
    end
  in
  (* Hashtbl iteration order is unspecified; flush streams in ascending
     id order so partitioned streams are byte-reproducible. *)
  let flush_all p =
    Hashtbl.fold (fun stream _ acc -> stream :: acc) states.(p) []
    |> List.sort compare
    |> List.iter (fun stream -> flush p stream (Hashtbl.find states.(p) stream))
  in
  List.iter
    (fun frame ->
      match frame with
      | Frame.Events { payload; encrypted; stream; _ } ->
          if encrypted then
            invalid_arg "Partition.split: encrypted frame (partition at the source, before encryption)";
          if Frame.sealed frame then
            invalid_arg "Partition.split: sealed frame (partition at the source, before sealing)";
          let records = Frame.unpack_events ~width payload in
          Array.iter
            (fun r ->
              let p = assign ~parts r.(key_field) in
              let st = state p stream in
              st.buffer <- r :: st.buffer;
              st.buffered <- st.buffered + 1;
              let lo, hi =
                Sbt_prim.Segment.windows_of ~ts:(Int32.to_int r.(ts_field)) ~size:window_size
                  ~slide:window_slide
              in
              for wi = lo to hi do
                if not (List.mem wi st.windows_touched) then
                  st.windows_touched <- wi :: st.windows_touched
              done;
              if st.buffered >= batch_events then flush p stream st)
            records
      | Frame.Watermark { seq; value } ->
          for p = 0 to parts - 1 do
            flush_all p;
            out.(p) <- Frame.Watermark { seq; value } :: out.(p)
          done)
    frames;
  Array.iteri (fun p _ -> flush_all p) out;
  Array.map List.rev out
