(* A faulty source-to-edge link.

   Applies an ingress fault plan to a frame sequence: Events frames are
   dropped or get one payload byte damaged in flight; watermarks always
   survive (losing them would stall window close forever, which is a
   different failure mode than data loss — the paper's watermarks travel
   on the control path).  Damage is deterministic per (plan, stream,
   seq), so a lossy run replays exactly.  The MAC is left untouched when
   a payload is corrupted: detection is the receiver's job. *)

module Fault = Sbt_fault.Fault

type stats = { delivered : int; dropped : int; corrupted : int }

let apply plan frames =
  if Fault.is_none plan then (frames, { delivered = List.length frames; dropped = 0; corrupted = 0 })
  else begin
    let dropped = ref 0 and corrupted = ref 0 and delivered = ref 0 in
    let out =
      List.filter_map
        (function
          | Frame.Watermark _ as f ->
              incr delivered;
              Some f
          | Frame.Events e as f ->
              if Fault.drops_frame plan ~stream:e.stream ~seq:e.seq then begin
                incr dropped;
                None
              end
              else if
                Fault.corrupts_frame plan ~stream:e.stream ~seq:e.seq
                && Bytes.length e.payload > 0
              then begin
                let idx, mask =
                  Fault.corrupt_byte plan ~stream:e.stream ~seq:e.seq
                    ~len:(Bytes.length e.payload)
                in
                let p = Bytes.copy e.payload in
                Bytes.set p idx (Char.unsafe_chr (Char.code (Bytes.get p idx) lxor mask));
                incr corrupted;
                incr delivered;
                Some (Frame.Events { e with payload = p })
              end
              else begin
                incr delivered;
                Some f
              end)
        frames
    in
    (out, { delivered = !delivered; dropped = !dropped; corrupted = !corrupted })
  end
