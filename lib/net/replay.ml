(* Source-side replay buffer.

   The source keeps every frame it has sent until the sink acknowledges
   a checkpoint covering it; on restart the sink asks for exactly the
   unacknowledged suffix.  Frames are indexed by their position in the
   original send order (the control plane's frame index), which is also
   what a sealed checkpoint records as "next frame to process" — so the
   ack watermark and the replay cursor speak the same coordinate. *)

type t = {
  frames : Frame.t array;
  mutable acked : int; (* frames [0, acked) are trimmed *)
}

let create frames = { frames = Array.of_list frames; acked = 0 }

let length t = Array.length t.frames

let ack t ~upto =
  if upto > Array.length t.frames then invalid_arg "Replay.ack: beyond last frame";
  (* Acks never regress: a stale (reordered) ack is a no-op. *)
  if upto > t.acked then t.acked <- upto

let acked t = t.acked
let pending t = Array.length t.frames - t.acked

let suffix t ~from =
  if from < t.acked then
    invalid_arg
      (Printf.sprintf "Replay.suffix: frames before %d were trimmed (asked for %d)" t.acked from);
  if from > Array.length t.frames then invalid_arg "Replay.suffix: beyond last frame";
  Array.to_list (Array.sub t.frames from (Array.length t.frames - from))
