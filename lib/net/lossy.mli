(** Lossy/corrupting link wrapper.

    Applies a {!Sbt_fault.Fault.plan}'s ingress spec to a frame stream:
    Events frames may be dropped or have one payload byte flipped;
    watermarks always survive.  Deterministic per (plan, stream, seq).
    Corruption leaves the MAC untouched so the edge detects it via
    {!Frame.mac_valid} (or the decrypt/unpack path) and rejects the
    batch instead of crashing. *)

type stats = { delivered : int; dropped : int; corrupted : int }

val apply : Sbt_fault.Fault.plan -> Frame.t list -> Frame.t list * stats
(** [apply plan frames] returns the damaged stream and what was done to
    it.  With {!Sbt_fault.Fault.is_none} plans this is the identity. *)
