type t =
  | Events of {
      seq : int;
      stream : int;
      events : int;
      windows : int list;
      payload : bytes;
      encrypted : bool;
      mac : bytes;
    }
  | Watermark of { seq : int; value : int }

let pack_events ~width records =
  let n = Array.length records in
  let b = Bytes.create (n * width * 4) in
  Array.iteri
    (fun r fields ->
      if Array.length fields <> width then invalid_arg "Frame.pack_events: bad record width";
      Array.iteri
        (fun f v ->
          let off = ((r * width) + f) * 4 in
          Bytes.set b off (Char.unsafe_chr (Int32.to_int v land 0xFF));
          Bytes.set b (off + 1) (Char.unsafe_chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
          Bytes.set b (off + 2) (Char.unsafe_chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
          Bytes.set b (off + 3) (Char.unsafe_chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF)))
        fields)
    records;
  b

let unpack_events ~width payload =
  let total = Bytes.length payload / 4 in
  if total mod width <> 0 then invalid_arg "Frame.unpack_events: payload not a record multiple";
  let n = total / width in
  Array.init n (fun r ->
      Array.init width (fun f ->
          let off = ((r * width) + f) * 4 in
          let byte i = Int32.of_int (Char.code (Bytes.get payload (off + i))) in
          Int32.logor (byte 0)
            (Int32.logor
               (Int32.shift_left (byte 1) 8)
               (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))))

let payload_bytes = function
  | Events { payload; _ } -> Bytes.length payload
  | Watermark _ -> 8

(* A watermark is a promise — "no event time below [value] is still in
   flight" — and a promise cannot be taken back: a frame regressing below
   the stream's last emitted value would retroactively legitimize data
   the edge already classified as late.  Constructing one is a programming
   error at the source, so it is rejected here rather than at the edge. *)
let watermark ?last ~seq ~value () =
  (match last with
  | Some prev when value < prev ->
      invalid_arg
        (Printf.sprintf "Frame.watermark: regression (value %d < last emitted %d)" value prev)
  | _ -> ());
  Watermark { seq; value }

let watermark_value = function Watermark { value; _ } -> Some value | Events _ -> None

let ctr_pos seq = Int64.shift_left (Int64.of_int seq) 32

(* Authenticated bytes: a 12-byte little-endian header binding the frame
   to its (stream, seq, events) identity, then the payload as carried on
   the wire (encrypt-then-MAC when the link is encrypted). *)
let auth_input ~stream ~seq ~events payload =
  let b = Bytes.create (12 + Bytes.length payload) in
  let set_u32 off v =
    Bytes.set b off (Char.unsafe_chr (v land 0xFF));
    Bytes.set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  in
  set_u32 0 stream;
  set_u32 4 seq;
  set_u32 8 events;
  Bytes.blit payload 0 b 12 (Bytes.length payload);
  b

let mac_payload ~key ~stream ~seq ~events payload =
  Sbt_crypto.Hmac.mac ~key (auth_input ~stream ~seq ~events payload)

let payload_mac_valid ~key ~stream ~seq ~events ~mac payload =
  Bytes.length mac > 0
  && Sbt_crypto.Hmac.verify ~key ~tag:mac (auth_input ~stream ~seq ~events payload)

let seal ~key = function
  | Watermark _ as f -> f
  | Events e ->
      Events
        { e with mac = mac_payload ~key ~stream:e.stream ~seq:e.seq ~events:e.events e.payload }

let sealed = function Watermark _ -> false | Events e -> Bytes.length e.mac > 0

let mac_valid ~key = function
  | Watermark _ -> true
  | Events e ->
      payload_mac_valid ~key ~stream:e.stream ~seq:e.seq ~events:e.events ~mac:e.mac e.payload

let encrypt_payload ~key ~stream_nonce = function
  | Watermark _ as f -> f
  | Events e ->
      if e.encrypted then Events e
      else begin
        let ctr = Sbt_crypto.Ctr.create ~key ~nonce:stream_nonce in
        let p = Bytes.copy e.payload in
        Sbt_crypto.Ctr.xcrypt ctr ~pos:(ctr_pos e.seq) p 0 (Bytes.length p);
        Events { e with payload = p; encrypted = true }
      end

let decrypt_payload ~key ~stream_nonce = function
  | Watermark _ as f -> f
  | Events e ->
      if not e.encrypted then Events e
      else begin
        let ctr = Sbt_crypto.Ctr.create ~key ~nonce:stream_nonce in
        let p = Bytes.copy e.payload in
        Sbt_crypto.Ctr.xcrypt ctr ~pos:(ctr_pos e.seq) p 0 (Bytes.length p);
        Events { e with payload = p; encrypted = false }
      end
