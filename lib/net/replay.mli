(** Source-side replay buffer for crash recovery.

    Retains sent frames until a checkpoint-acknowledged watermark trims
    them; after a sink restart, {!suffix} returns exactly the
    unacknowledged tail for re-ingestion.  Indices are frame positions
    in the original send order — the same coordinate a sealed
    checkpoint stores as its resume point. *)

type t

val create : Frame.t list -> t
(** Buffer the full send-order frame list. *)

val length : t -> int

val ack : t -> upto:int -> unit
(** [ack t ~upto] trims frames with index [< upto].  Monotonic: a stale
    ack is a no-op.  Raises [Invalid_argument] past the last frame. *)

val acked : t -> int
(** Current ack watermark (first retained index). *)

val pending : t -> int
(** Frames still retained for possible replay. *)

val suffix : t -> from:int -> Frame.t list
(** The frames from index [from] to the end.  Raises
    [Invalid_argument] if [from] precedes the ack watermark (those
    frames are gone — the checkpoint that acked them supersedes them). *)
