(** Source-to-edge wire frames.

    The Generator packs event batches into frames (little-endian 32-bit
    fields, one record after another) and interleaves watermark frames,
    mirroring the paper's ZeroMQ transport.  On untrusted source-edge
    links the payload is AES-128-CTR encrypted with a per-stream nonce
    and sequence-derived positions, so frames can be decrypted
    independently and out of order. *)

type t =
  | Events of {
      seq : int;  (** frame sequence within the stream *)
      stream : int;  (** source stream id (Join uses two) *)
      events : int;
      windows : int list;
          (** distinct window indices the batch spans — source-side
              manifest metadata (derivable from the data; carried in the
              clear like lengths and sequence numbers) *)
      payload : bytes;
      encrypted : bool;
      mac : bytes;
          (** HMAC-SHA256 over header (stream, seq, events) + wire
              payload; [Bytes.empty] on unauthenticated links (the
              pre-fault-model default) *)
    }
  | Watermark of { seq : int; value : int }

val pack_events : width:int -> int32 array array -> bytes
(** Pack records (each an array of [width] fields) into a payload. *)

val unpack_events : width:int -> bytes -> int32 array array
(** Test helper; the data plane unpacks straight into uArrays instead. *)

val payload_bytes : t -> int

val watermark : ?last:int -> seq:int -> value:int -> unit -> t
(** Checked watermark constructor: raises [Invalid_argument] when [value]
    regresses below [last] (the stream's previously emitted watermark).
    A watermark is a promise that no earlier event time is still in
    flight; regressing would retroactively legitimize data already
    classified as late, so a regression is rejected at construction. *)

val watermark_value : t -> int option
(** [watermark_value f] is [Some value] for a [Watermark] frame and
    [None] for [Events]. *)

val encrypt_payload : key:bytes -> stream_nonce:int64 -> t -> t
(** En/decrypt an [Events] payload in a fresh copy (CTR position =
    [seq * 2^32]); identity on watermarks and on already-(un)encrypted
    frames as indicated by the [encrypted] flag. *)

val decrypt_payload : key:bytes -> stream_nonce:int64 -> t -> t

val seal : key:bytes -> t -> t
(** Attach an HMAC-SHA256 tag binding the frame header (stream, seq,
    events) and the payload as carried on the wire.  Seal {e after}
    {!encrypt_payload} (encrypt-then-MAC).  Identity on watermarks. *)

val sealed : t -> bool
(** Whether an [Events] frame carries a tag ([false] for watermarks). *)

val mac_valid : key:bytes -> t -> bool
(** Verify a sealed frame's tag; [false] for unsealed [Events] frames,
    [true] for watermarks (they carry no payload to protect). *)

val mac_payload : key:bytes -> stream:int -> seq:int -> events:int -> bytes -> bytes
(** The tag {!seal} attaches, for callers holding the fields unbundled
    (the data plane receives payloads, not frames). *)

val payload_mac_valid :
  key:bytes -> stream:int -> seq:int -> events:int -> mac:bytes -> bytes -> bool
