(** Deterministic pseudo-random number generators.

    Two generators are provided: {!splitmix64}, used to seed other state,
    and xoshiro256** ({!t}), the engine's general-purpose PRNG.  Both are
    deterministic given their seed, which keeps every experiment in this
    repository reproducible.  The data plane also draws its opaque
    references from a {!t} seeded at TEE initialization. *)

type t
(** Mutable xoshiro256** state. *)

val create : seed:int64 -> t
(** [create ~seed] expands [seed] with splitmix64 into a full state. *)

val splitmix64 : int64 -> int64 * int64
(** [splitmix64 s] returns [(next_state, output)]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float_unit : t -> float
(** Uniform float in [\[0, 1)]. *)

val int32_any : t -> int32
(** Uniform 32-bit value. *)

val bytes : t -> int -> bytes
(** [bytes t n] returns [n] pseudo-random bytes. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle driven by [t]. *)

val state : t -> int64 * int64 * int64 * int64
(** Snapshot of the four xoshiro256** limbs, for sealed checkpoints.  A
    generator restored with {!set_state} continues the exact output
    sequence of the snapshotted one. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** Rebuild a generator from a {!state} snapshot. *)

val set_state : t -> int64 * int64 * int64 * int64 -> unit
(** Overwrite [t]'s limbs with a {!state} snapshot in place. *)
