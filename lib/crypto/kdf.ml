(* HKDF-style expand-only derivation: one HMAC invocation per output
   block, keyed by the master secret, with the label and a block counter
   as the message.  A single 32-byte block covers every key size used in
   this repository, but the loop keeps the construction general. *)

let derive ~master ~label n =
  if n <= 0 then invalid_arg "Kdf.derive: length must be positive";
  let out = Bytes.create n in
  let blocks = (n + 31) / 32 in
  for i = 0 to blocks - 1 do
    let msg = Bytes.of_string (Printf.sprintf "sbt-kdf:%s:%d" label i) in
    let block = Hmac.mac ~key:master msg in
    Bytes.blit block 0 out (i * 32) (min 32 (n - (i * 32)))
  done;
  out

let enc_key ~master ~label = derive ~master ~label:(label ^ ":enc") 16
let mac_key ~master ~label = derive ~master ~label:(label ^ ":mac") 32
