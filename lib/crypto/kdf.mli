(** Key derivation from a device master secret.

    The data plane owns a single master key (the device key fused at
    manufacture in the StreamBox-TZ fiction).  Every sub-protocol —
    checkpoint sealing, egress, attestation — must use an independent
    key so a compromise or nonce collision in one cannot cross into
    another.  [derive] expands the master into labeled sub-keys with an
    HKDF-style HMAC-SHA-256 expand step; equal labels always derive
    equal keys, distinct labels derive independent ones. *)

val derive : master:bytes -> label:string -> int -> bytes
(** [derive ~master ~label n] is [n] bytes of key material bound to
    [label].  Deterministic in [(master, label, n)]. *)

val enc_key : master:bytes -> label:string -> bytes
(** 16-byte AES-CTR encryption key for [label] (label suffix [":enc"]). *)

val mac_key : master:bytes -> label:string -> bytes
(** 32-byte HMAC key for [label] (label suffix [":mac"]). *)
