type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let create ~seed =
  let s, a = splitmix64 seed in
  let s, b = splitmix64 s in
  let s, c = splitmix64 s in
  let _, d = splitmix64 s in
  { s0 = a; s1 = b; s2 = c; s3 = d }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int_below t n =
  assert (n > 0);
  (* Rejection sampling over the top 62 bits keeps the draw unbiased. *)
  let bound = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 t) 2 in
    let v = Int64.rem r bound in
    if Int64.sub r v > Int64.sub (Int64.sub 0x3FFFFFFFFFFFFFFFL bound) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float_unit t =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let int32_any t = Int64.to_int32 (next_int64 t)

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let r = ref (next_int64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.unsafe_set b (!i + j) (Char.unsafe_chr (Int64.to_int !r land 0xFF));
      r := Int64.shift_right_logical !r 8
    done;
    i := !i + k
  done;
  b

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let state t = (t.s0, t.s1, t.s2, t.s3)
let of_state (s0, s1, s2, s3) = { s0; s1; s2; s3 }

let set_state t (s0, s1, s2, s3) =
  t.s0 <- s0;
  t.s1 <- s1;
  t.s2 <- s2;
  t.s3 <- s3
