type t = { rng : Sbt_crypto.Rng.t; table : (int64, Sbt_umem.Uarray.t) Hashtbl.t }

exception Invalid_reference of int64

let create ~rng = { rng; table = Hashtbl.create 256 }

let rec fresh_ref t =
  let r = Sbt_crypto.Rng.next_int64 t.rng in
  if Int64.equal r 0L || Hashtbl.mem t.table r then fresh_ref t else r

let register t ua =
  let r = fresh_ref t in
  Hashtbl.replace t.table r ua;
  r

let resolve t r =
  match Hashtbl.find_opt t.table r with
  | Some ua -> ua
  | None -> raise (Invalid_reference r)

let remove t r =
  if not (Hashtbl.mem t.table r) then raise (Invalid_reference r);
  Hashtbl.remove t.table r

let live_count t = Hashtbl.length t.table
let mem t r = Hashtbl.mem t.table r

(* Checkpoint restore: re-bind a recorded (reference, uArray) pair
   without drawing from the RNG — the generator's limbs are restored
   separately and must continue the original draw sequence exactly. *)
let restore t ~ref_ ua =
  if Int64.equal ref_ 0L then invalid_arg "Opaque.restore: zero reference";
  if Hashtbl.mem t.table ref_ then invalid_arg "Opaque.restore: reference already bound";
  Hashtbl.replace t.table ref_ ua

(* Canonical order for serialization: Hashtbl iteration order is
   unspecified, uArray ids are unique and stable. *)
let sorted_bindings t =
  Hashtbl.fold (fun r ua acc -> (r, ua) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare (Sbt_umem.Uarray.id a) (Sbt_umem.Uarray.id b))
