(** Multi-tenant consolidation: N pipelines in one enclave (DESIGN.md §13).

    One TEE hosts many small tenant pipelines — the paper's
    consolidation argument (§4) at scale, and the opposite design point
    from per-stage-enclave systems.  Isolation is internal:

    - {b quotas} — a tenant's secure pool is capped at [quota_pages]
      4 KiB pages; going over sheds {e that tenant's} ingest, which
      degrades it (signed Gap, declared loss, verdict still ok) while
      its co-tenants run clean;
    - {b namespaces} — opaque refs are minted into a shared in-enclave
      ownership map; a ref crossing tenants is rejected in-TEE
      ({!Dataplane.Cross_tenant_ref});
    - {b fair scheduling} — the recorded task graphs interleave by
      deficit round-robin, so one heavy tenant cannot starve the p99
      output delay of the rest, and the [`Domains] engine runs the
      merged schedule through {!Sbt_exec.Executor} once, all tenants
      sharing the domains;
    - {b tenant-scoped attestation} — each tenant's audit sub-stream is
      MAC'd under its own derived key
      ({!Sbt_attest.Verifier.tenant_key}) and judged independently
      ({!Sbt_attest.Verifier.verify_tenants}).

    {b Invariant} (tested by the joint-equals-solo property): a tenant's
    sealed results, audit bytes and verdict depend only on its own
    [{id; pipeline; source; quota}] — never on its co-tenants.  The
    merged schedule and every fairness number are measurement. *)

type tenant = {
  id : int;  (** unique, non-negative; tenant 0 inherits the base egress key *)
  pipeline : Pipeline.t;
  source : Sbt_net.Frame.t list;
  quota_pages : int option;
      (** secure-DRAM quota in 4 KiB pages; [None] = uncapped (the
          platform's full secure region) *)
}

type tenant_result = {
  tr_id : int;
  tr_run : Runtime.run_result;  (** the tenant's own full recording *)
  tr_delays : (int * float) list;
      (** (window, output delay ns) in the merged fair schedule *)
  tr_max_delay_ns : float;
  tr_mean_delay_ns : float;
}

type result = {
  tenants : tenant_result list;  (** id-ascending *)
  report : Sbt_attest.Verifier.tenants_report option;
      (** per-tenant independent verdicts; [None] iff [~verify:false] *)
  merged : Sbt_sim.Trace.t;  (** the DRR-interleaved task graph *)
  makespan_ns : float;  (** merged schedule on [cfg.cores] virtual cores *)
  agg_events : int;
  agg_events_per_sec : float;  (** aggregate enclave throughput *)
  p99_delay_ns : float;  (** p99 of per-window output delay across all tenants *)
  max_delay_ns : float;
  exec : Sbt_exec.Executor.report option;
      (** the merged schedule's real-parallel run — [Some] iff the
          engine was [`Domains _] *)
  registry : Sbt_obs.Metrics.t;
      (** root registry: each tenant's counters live under
          [tenant<id>.*] and enclave totals under [tenants.*]
          ([count], [events], [windows], [sheds], [gaps_declared],
          [events_dropped]) *)
}

val window_stride : int
(** Merged-trace window ids are [w + slot * window_stride] so replay
    delays can be attributed per tenant — a measurement encoding only. *)

val tenant_config : Runtime.config -> owners:(int64, int) Hashtbl.t -> tenant -> Runtime.config
(** The tenant's view of a shared-enclave config: egress/audit key
    derived from the base key by tenant id, secure pool capped at the
    tenant's quota, opaque refs minted into (and guarded against)
    [owners].  Tenant 0 with no quota yields a config observably
    identical to the input — the 1-tenant special case. *)

val run :
  ?engine:Runtime.engine ->
  ?exec_time_scale:float ->
  ?exec_mode:Sbt_exec.Executor.mode ->
  ?capture:bool ->
  ?registry:Sbt_obs.Metrics.t ->
  ?verify:bool ->
  Runtime.config ->
  tenant list ->
  result
(** Admit the tenants into one enclave and run them all.  Each tenant
    records under its own data plane (derived egress key, quota-capped
    pool, shared ref namespace, [tenant<id>.*] metrics scope); the
    merged DRR schedule is then replayed for fairness numbers and, under
    [`Domains n], executed for real.  [engine] defaults to
    [`Des cfg.cores]; [verify] (default true) runs
    {!Sbt_attest.Verifier.verify_tenants}.  Raises [Invalid_argument]
    on an empty tenant list, duplicate or negative ids, or a
    non-positive quota. *)
