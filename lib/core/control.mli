(** The untrusted control plane.

    Orchestrates pipeline execution (paper §4.2): batches arriving frames,
    invokes the data plane through opaque references, creates abundant
    task parallelism (per-batch stages run concurrently across batches and
    windows; window plans fire on watermarks), generates consumption
    hints, and applies backpressure.  It runs under the discrete-event
    scheduler so the recorded task graph can be replayed at any core
    count and ingestion rate. *)

type config = {
  dp_config : Dataplane.config;
  cores : int;  (** virtual cores for the recording run *)
  hints_enabled : bool;
}

val default_config : ?version:Dataplane.version -> ?cores:int -> unit -> config

type run_result = {
  results : (int * Dataplane.sealed_result) list;  (** per closed window *)
  trace : Sbt_sim.Trace.t;
  dp_stats : Dataplane.stats;
  pool_high_water_bytes : int;
  mem_samples_bytes : int list;
      (** committed secure memory sampled at every window close — the
          steady-state usage Figure 7 annotates *)
  audit : Sbt_attest.Log.batch list;
  verifier_spec : Sbt_attest.Verifier.spec;
  makespan_ns : float;
  total_events : int;
  tasks_executed : int;
  live_refs_after : int;
  gaps_declared : int;
      (** signed Gap records emitted: link holes + dropped batches *)
  batches_dropped : int;
      (** frames lost to the link or shed past the retry budget *)
  events_dropped : int;  (** events inside dropped frames (link holes excluded) *)
  registry : Sbt_obs.Metrics.t;
      (** the normal-world metrics registry for this run (always
          populated; counting is deterministic and costs no virtual
          time).  Control-plane counters here double-book the loss
          accounting above so tests can cross-check them. *)
  tee_metrics : bytes;
      (** TEE-side registry snapshot ({!Sbt_obs.Metrics.encode_snapshot}),
          exported through the quote path — never read directly *)
  tee_quote : Sbt_attest.Quote.quote;
      (** quote over [Sha256 (tee_metrics)] under the device key, nonce
          ["sbt-run-final"] *)
}

val run : config -> Pipeline.t -> Sbt_net.Frame.t list -> run_result
(** Execute the pipeline over the frame stream once, for real, recording
    the task graph.  Frames must arrive in source order (watermarks after
    the data they cover); the last frame should be a watermark closing
    every window.

    Faults degrade, never crash: transient SMC refusals are retried with
    exponential backoff up to the fault plan's budget; corrupt or
    unauthenticated frames, pool sheds, and link sequence holes each drop
    the affected batch and emit a signed Gap audit record, so the cloud
    verifier reports the loss as degradation instead of tampering. *)
