(** The untrusted control plane (historical entry point).

    Orchestrates pipeline execution (paper §4.2): batches arriving frames,
    invokes the data plane through opaque references, creates abundant
    task parallelism (per-batch stages run concurrently across batches and
    windows; window plans fire on watermarks), generates consumption
    hints, and applies backpressure.

    Since the {!Runtime} redesign this module is a thin veneer:
    {!Control.run} is exactly [Runtime.run ~engine:(`Des cfg.cores)], and
    every type here is an equation onto {!Runtime}'s, so the two APIs mix
    freely.  New code should call {!Runtime.run} and pick an engine. *)

type config = Runtime.config = {
  dp_config : Dataplane.config;
  cores : int;  (** virtual cores for the recording run *)
  hints_enabled : bool;
  fuse : bool;  (** run batch stages through the {!Ir.fuse} pass *)
}

module Config = Runtime.Config
module Loss = Runtime.Loss

val default_config : ?version:Dataplane.version -> ?cores:int -> unit -> config

type run_result = Runtime.run_result = {
  results : (int * Dataplane.sealed_result) list;  (** per closed window *)
  corrections : (int * int * Dataplane.sealed_result) list;
  trace : Sbt_sim.Trace.t;
  dp_stats : Dataplane.stats;
  pool_high_water_bytes : int;
  mem_samples_bytes : int list;
  audit : Sbt_attest.Log.batch list;
  verifier_spec : Sbt_attest.Verifier.spec;
  makespan_ns : float;
  total_events : int;
  tasks_executed : int;
  live_refs_after : int;
  loss : Loss.t;
  registry : Sbt_obs.Metrics.t;
  tee_metrics : bytes;
  tee_quote : Sbt_attest.Quote.quote;
  exec : Sbt_exec.Executor.report option;
  work : (int -> Sbt_exec.Executor.work_fn option) option;
}
(** See {!Runtime.run_result} for per-field documentation. *)

val run : config -> Pipeline.t -> Sbt_net.Frame.t list -> run_result
(** Deprecated wrapper: a 1-tenant {!Session} run under the
    discrete-event engine at [cfg.cores] virtual cores, byte-identical
    to the historical [Runtime.run ~engine:(`Des cfg.cores)].  New code
    should build a {!Session} directly. *)
