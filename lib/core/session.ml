(* The unified Session API (PR 8): one builder in front of every way to
   run a pipeline.

   Historically the entry points accreted one per feature — Control.run
   (one pipeline, DES), Runtime.run (engine choice), Runtime.run_supervised
   (crash recovery), Runner.run (rate search + ?fuse), Fleet.run
   (multi-node) — each with its own argument spelling.  A Session is the
   common prefix of all of them: a run configuration plus the set of
   tenant pipelines admitted into the enclave.  Single-tenant is the
   1-tenant special case (tenant 0 inherits the base egress key, so a
   1-tenant Session run is byte-identical to the old Runtime.run), and
   the old functions survive as thin wrappers over a Session. *)

type t = {
  cfg : Runtime.config;
  engine : Runtime.engine option;
  exec_time_scale : float option;
  exec_mode : Sbt_exec.Executor.mode option;
  capture : bool option;
  registry : Sbt_obs.Metrics.t option;
  verify : bool;
  tenants : Multi.tenant list; (* newest first *)
}

let create ?engine ?exec_time_scale ?exec_mode ?capture ?registry ?(verify = true) cfg =
  { cfg; engine; exec_time_scale; exec_mode; capture; registry; verify; tenants = [] }

let next_id tenants =
  List.fold_left (fun acc t -> max acc (t.Multi.id + 1)) 0 tenants

let add_tenant ?id ?quota_pages ~pipeline ~source t =
  let id = match id with Some i -> i | None -> next_id t.tenants in
  { t with tenants = { Multi.id; pipeline; source; quota_pages } :: t.tenants }

let tenants t = List.sort (fun a b -> compare a.Multi.id b.Multi.id) t.tenants
let config t = t.cfg
let engine t = t.engine

let run t =
  Multi.run ?engine:t.engine ?exec_time_scale:t.exec_time_scale ?exec_mode:t.exec_mode
    ?capture:t.capture ?registry:t.registry ~verify:t.verify t.cfg (tenants t)

let the_tenant t =
  match t.tenants with
  | [ tn ] -> tn
  | [] -> invalid_arg "Session: no tenant admitted"
  | _ -> invalid_arg "Session: expected exactly one tenant"

(* The single-tenant fast path the legacy wrappers ride: one recording,
   no merged-schedule replay, no verification — exactly what the old
   entry points did, so their cost and observables are unchanged. *)
let run_single t =
  let tn = the_tenant t in
  let owners : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  let tcfg = Multi.tenant_config t.cfg ~owners tn in
  let registry =
    match t.registry with
    | Some root -> Some (Sbt_obs.Metrics.scoped root (Printf.sprintf "tenant%d" tn.Multi.id))
    | None -> None
  in
  Runtime.run ?engine:t.engine ?exec_time_scale:t.exec_time_scale ?exec_mode:t.exec_mode
    ?capture:t.capture ?registry tcfg tn.Multi.pipeline tn.Multi.source

(* Crash recovery composes per tenant: each tenant's supervised run is
   already independent (own sealed checkpoints, own replay buffer, own
   epoch manifests), so N-tenant supervision is N independent
   supervisors over tenant-scoped configs. *)
let run_supervised ?max_restarts ?ckpt_every t =
  (match t.tenants with [] -> invalid_arg "Session: no tenant admitted" | _ -> ());
  let owners : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  List.map
    (fun tn ->
      let tcfg = Multi.tenant_config t.cfg ~owners tn in
      (tn.Multi.id, Runtime.run_supervised ?max_restarts ?ckpt_every tcfg tn.Multi.pipeline tn.Multi.source))
    (tenants t)
