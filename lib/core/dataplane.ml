module U = Sbt_umem.Uarray
module Alloc = Sbt_umem.Allocator
module Pool = Sbt_umem.Page_pool
module Slab = Sbt_umem.Slab
module P = Sbt_prim.Primitive
module Tz = Sbt_tz

type version = Full | Clear_ingress | Io_via_os | Insecure

let version_name = function
  | Full -> "StreamBox-TZ"
  | Clear_ingress -> "SBT ClearIngress"
  | Io_via_os -> "SBT IOviaOS"
  | Insecure -> "Insecure"

(* A tenant namespace: the enclave-level ownership map for opaque refs
   when several tenant pipelines share one TEE.  Every ref this data
   plane mints is recorded against [ns_tenant] in the shared [ns_owners]
   table; any incoming ref owned by a different tenant is rejected
   in-TEE with {!Cross_tenant_ref} — a confused (or malicious) control
   plane cannot cross-wire one tenant's buffers into another's pipeline.
   The table is host-side bookkeeping: no virtual time, no RNG draws, no
   audit bytes, so installing a namespace never perturbs observables. *)
type namespace = { ns_tenant : int; ns_owners : (int64, int) Hashtbl.t }

(* What the TEE does with a record whose window already closed.  The
   policy is part of the attestation surface: anything but [Silent]
   registers as a "tee.late_policy" gauge in the quoted metrics snapshot,
   and the verifier holds the audit stream to the declared code. *)
type late_policy = Silent | Drop_declare | Retract_reemit

let late_policy_code = function Silent -> 0 | Drop_declare -> 1 | Retract_reemit -> 2

let late_policy_name = function
  | Silent -> "silent"
  | Drop_declare -> "drop-declare"
  | Retract_reemit -> "retract-reemit"

type config = {
  version : version;
  platform : Tz.Platform.t;
  alloc_mode : Alloc.mode;
  sort_algorithm : Sbt_prim.Sort.algorithm;
  ingress_key : bytes;
  egress_key : bytes;
  audit_flush_every : int;
  audit_enabled : bool;
  backpressure_threshold : float;
  adaptive_backpressure : bool;
  seed : int64;
  fault_plan : Sbt_fault.Fault.plan;
  late_policy : late_policy;
  tracer : Sbt_obs.Tracer.t option;
  pool_budget_bytes : int option;
      (* secure-pool budget override (page-granular tenant quotas);
         [None] = the platform's full secure-DRAM region *)
  namespace : namespace option;
}

module Config = struct
  type t = config

  let make ?(version = Full) ?(cores = 8) ?(secure_mb = 512) ?cost ?platform
      ?(alloc_mode = Alloc.Hint_guided) ?(sort_algorithm = Sbt_prim.Sort.Radix)
      ?(ingress_key = Bytes.of_string "sbt-ingress-k16!")
      ?(egress_key = Bytes.of_string "sbt-egress-key16")
      ?(audit_flush_every = 256) ?audit_enabled ?(backpressure_threshold = 0.90)
      ?(adaptive_backpressure = false) ?(seed = 42L)
      ?(fault_plan = Sbt_fault.Fault.none) ?(late_policy = Silent) ?tracer
      ?pool_budget_bytes ?namespace () =
    let platform =
      match platform with
      | Some p -> p
      | None ->
          let cost =
            match (cost, version) with
            | Some c, _ -> c
            | None, Insecure -> Tz.Cost_model.free
            | None, (Full | Clear_ingress | Io_via_os) -> Tz.Cost_model.default
          in
          Tz.Platform.create ~cores ~cost ~secure_mb ()
    in
    let audit_enabled =
      match (audit_enabled, version) with
      | Some b, _ -> b
      | None, Insecure -> false
      | None, (Full | Clear_ingress | Io_via_os) -> true
    in
    {
      version;
      platform;
      alloc_mode;
      sort_algorithm;
      ingress_key;
      egress_key;
      audit_flush_every;
      audit_enabled;
      backpressure_threshold;
      adaptive_backpressure;
      seed;
      fault_plan;
      late_policy;
      tracer;
      pool_budget_bytes;
      namespace;
    }

  let with_platform platform cfg = { cfg with platform }
  let with_alloc_mode alloc_mode cfg = { cfg with alloc_mode }
  let with_sort_algorithm sort_algorithm cfg = { cfg with sort_algorithm }
  let with_fault_plan fault_plan cfg = { cfg with fault_plan }
  let with_tracer tracer cfg = { cfg with tracer = Some tracer }

  let with_backpressure ?(adaptive = false) threshold cfg =
    { cfg with backpressure_threshold = threshold; adaptive_backpressure = adaptive }

  let with_audit ?(flush_every = 256) enabled cfg =
    { cfg with audit_enabled = enabled; audit_flush_every = flush_every }
end

let default_config ?version ?cores ?secure_mb () =
  Config.make ?version ?cores ?secure_mb ()

type hint = H_after of int64 | H_parallel

type param =
  | P_key_field of int
  | P_value_field of int
  | P_ts_field of int
  | P_window_size of int
  | P_slide of int
  | P_k of int
  | P_lo of int32
  | P_hi of int32
  | P_shift of int
  | P_fields of int array
  | P_session_gap of int

type request =
  | R_ingest_events of { payload : bytes; encrypted : bool; stream : int; seq : int; mac : bytes }
  | R_ingest_watermark of { value : int }
  | R_declare_gap of {
      stream : int;
      seq : int;
      events : int;
      windows : int list;
      reason : Sbt_attest.Record.gap_reason;
    }
  | R_invoke of {
      op : P.t;
      inputs : int64 list;
      trigger : int option;
      params : param list;
      hints : hint list;
      retire_inputs : bool;
    }
  | R_invoke_fused of {
      steps : Sbt_prim.Fused.step list;
      inputs : int64 list;
      trigger : int option;
      hints : hint list;
      retire_inputs : bool;
    }
  | R_egress of { input : int64; window : int }
  | R_late_drop of { input : int64; window : int }
  | R_egress_correction of { input : int64; window : int; gen : int }
  | R_install_udf of { udf : Udf.t; cert : bytes }
  | R_invoke_udf of {
      name : string;
      version : int;
      inputs : int64 list;
      trigger : int option;
      value_field : int;
      hints : hint list;
      retire_inputs : bool;
      state_output : bool;
    }
  | R_retire of { input : int64 }
  | R_checkpoint of { control : bytes; watermark : int }

type output = { win : int; ref_ : int64; events : int }
type sealed_result = { window : int; cipher : bytes; tag : bytes; events : int; width : int }

type response =
  | Rs_outputs of output list
  | Rs_watermark of { audit_id : int; value : int }
  | Rs_egress of sealed_result
  | Rs_ingested of { out : output; stalled_ns : float }
  | Rs_checkpoint of { blob : bytes; seq : int }

exception Rejected of string
exception Overloaded of { stalled_ns : float }

exception Cross_tenant_ref of { ref_ : int64; owner : int; tenant : int }
(* A reference minted for one tenant arrived at another tenant's
   dispatch.  Distinct from {!Opaque.Invalid_reference} (a fabricated or
   stale ref): the ref is live in the enclave, just not this tenant's —
   the namespace check fires before the per-tenant table lookup ever
   sees it. *)

(* Internal SMC message wrappers so the entire surface is the paper's
   four entries: init, finalize, debug, and one shared invoke. *)
type rpc = Rpc_init | Rpc_finalize | Rpc_debug | Rpc_op of request
type rpc_resp = Rr_unit | Rr_debug of string | Rr_op of response

(* Snapshot of a heavy primitive invocation, taken before inputs retire.
   The executor's [`Work] mode replays these through Par_kernel into
   throwaway buffers so measured wall time reflects the real kernels
   without touching the recorded pass's observables (DESIGN.md §9). *)
type capture = {
  cap_op : P.t;
  cap_params : param list;
  cap_inputs : (int * int * U.buf) list; (* width, records, host snapshot *)
  cap_steps : Sbt_prim.Fused.step list; (* non-empty iff a fused super-kernel *)
}

type t = {
  cfg : config;
  pool : Pool.t;
  (* Small-object staging arena for egress payload marshalling.  It sits
     over its own tiny private pool, never the data-plane pool above:
     shed/backpressure decisions key off [Pool.committed_bytes pool], so
     staging scratch must not perturb them — that is what keeps sealed
     outputs byte-identical with the slab on or off. *)
  staging : Slab.t;
  alloc : Alloc.t;
  refs : Opaque.t;
  log : Sbt_attest.Log.t;
  rng : Sbt_crypto.Rng.t;
  smc : (rpc, rpc_resp) Tz.Smc.t;
  mutable now_ns : float;
  mutable compute_ns : float;
  mutable mem_ns : float;
  mutable crypto_ns : float;
  mutable ingest_ns : float;
  mutable invocations : int;
  mutable events_ingested : int;
  mutable bytes_ingested : int;
  mutable backpressure_stalls : int;
  mutable sheds : int;
  mutable consecutive_sheds : int;
  mutable uploaded : Sbt_attest.Log.batch list; (* newest first *)
  mutable next_ckpt_seq : int;
  mutable ingest_width : int; (* set per stream schema via first ingest params *)
  mutable capture : (capture -> unit) option; (* heavy-kernel snapshot sink *)
  (* Session-window state (only touched when a Segment invocation carries
     P_session_gap).  Assignment is global and in-order over the event
     stream: a new session opens after [sess_gap] ticks of event-time
     silence.  [sess_ends] remembers each session's last event time so
     egress can refuse to seal a session the watermark has not closed. *)
  mutable sess_gap : int; (* 0 = no session windowing seen yet *)
  mutable sess_last_ts : int;
  mutable sess_next_id : int;
  sess_ends : (int, int) Hashtbl.t;
  mutable last_wm : int; (* highest ingested watermark (-1 before any) *)
  udfs : (string * int, Udf.t) Hashtbl.t; (* certified-and-installed UDFs *)
  (* TEE-side metrics registry: never read across the boundary directly;
     exported only as an attested snapshot via [metrics_quote]. *)
  reg : Sbt_obs.Metrics.t;
  m_events : Sbt_obs.Metrics.counter;
  m_bytes : Sbt_obs.Metrics.counter;
  m_sheds : Sbt_obs.Metrics.counter;
  m_stalls : Sbt_obs.Metrics.counter;
  m_invocations : Sbt_obs.Metrics.counter;
  m_gaps : Sbt_obs.Metrics.counter;
  m_batch_events : Sbt_obs.Metrics.histogram;
  m_pool : Sbt_obs.Metrics.gauge;
}

type stats = {
  compute_ns : float;
  mem_ns : float;
  crypto_ns : float;
  ingest_ns : float;
  switch_pairs : int;
  modeled_switch_ns : float;
  modeled_copy_ns : float;
  invocations : int;
  events_ingested : int;
  bytes_ingested : int;
  backpressure_stalls : int;
  sheds : int;
  smc_busy_rejections : int;
}

let now_us t = int_of_float (t.now_ns /. 1e3)

let append_record t r =
  if t.cfg.audit_enabled then
    match Sbt_attest.Log.append t.log r with
    | Some batch -> t.uploaded <- batch :: t.uploaded
    | None -> ()

let flush_log t =
  if t.cfg.audit_enabled then
    match Sbt_attest.Log.flush t.log with
    | Some batch -> t.uploaded <- batch :: t.uploaded
    | None -> ()

(* --- timing helpers: measured host nanoseconds per cost category ------ *)

let timed (t : t) category f =
  let t0 = Sbt_sim.Clock.now_ns () in
  let r = f () in
  let dt = Sbt_sim.Clock.elapsed_ns ~since:t0 in
  (match category with
  | `Compute -> t.compute_ns <- t.compute_ns +. dt
  | `Mem -> t.mem_ns <- t.mem_ns +. dt
  | `Crypto -> t.crypto_ns <- t.crypto_ns +. dt
  | `Ingest -> t.ingest_ns <- t.ingest_ns +. dt);
  r

let hint_of t = function
  | Some (H_after r) -> Alloc.Consumed_after (Opaque.resolve t.refs r)
  | Some H_parallel -> Alloc.Consumed_in_parallel
  | None -> Alloc.No_hint

(* Hints are advisory and arrive from the untrusted control plane; a hint
   naming a dead reference must not fault the data plane. *)
let safe_hint t h = try hint_of t h with Opaque.Invalid_reference _ -> Alloc.No_hint

let encode_hint_for_audit t h out_id =
  let pred =
    match h with
    | H_after r -> (
        try U.id (Opaque.resolve t.refs r) with Opaque.Invalid_reference _ -> 0xFFFFFFFF)
    | H_parallel -> 0xFFFFFFFF
  in
  Int64.logor (Int64.shift_left (Int64.of_int pred) 32) (Int64.of_int out_id)

let alloc_out t ?hint ?(scope = U.Streaming) ~producer ~width ~capacity () =
  timed t `Mem (fun () ->
      Alloc.alloc t.alloc ~hint:(safe_hint t hint) ~scope ~producer ~width ~capacity ())

let produce t ua = timed t `Mem (fun () -> Alloc.produce t.alloc ua)

(* --- tenant namespace -------------------------------------------------- *)
(* When several tenant pipelines share one enclave, every ref minted for a
   tenant is recorded in the shared owner map.  [guard_ref] fires on refs
   that are live but foreign — the confused-control-plane case — before
   the per-tenant table lookup turns them into Invalid_reference.  All of
   this is host-side bookkeeping on the shared Hashtbl: it never touches
   virtual time, the RNG, or audit bytes, so a namespaced run is
   observably identical to a solo run. *)

let guard_ref t r =
  match t.cfg.namespace with
  | None -> ()
  | Some ns -> (
      match Hashtbl.find_opt ns.ns_owners r with
      | Some owner when owner <> ns.ns_tenant ->
          raise (Cross_tenant_ref { ref_ = r; owner; tenant = ns.ns_tenant })
      | _ -> ())

let mint_ref t ua =
  let r = Opaque.register t.refs ua in
  (match t.cfg.namespace with
  | Some ns -> Hashtbl.replace ns.ns_owners r ns.ns_tenant
  | None -> ());
  r

let drop_ref t r =
  Opaque.remove t.refs r;
  match t.cfg.namespace with
  | Some ns -> Hashtbl.remove ns.ns_owners r
  | None -> ()

let retire_ref t r =
  guard_ref t r;
  let ua = Opaque.resolve t.refs r in
  timed t `Mem (fun () ->
      (* State uArrays outlive primitive executions; never retire them
         behind the control plane's back. *)
      match U.scope ua with
      | U.State -> ()
      | U.Streaming | U.Temporary ->
          Alloc.retire t.alloc ua;
          drop_ref t r)

let find_param params f = List.find_map f params

let key_field params default =
  Option.value ~default (find_param params (function P_key_field k -> Some k | _ -> None))

let value_field params default =
  Option.value ~default (find_param params (function P_value_field v -> Some v | _ -> None))

(* --- ingestion -------------------------------------------------------- *)

let unpack_payload t ~producer payload width =
  let bytes_len = Bytes.length payload in
  if bytes_len mod (4 * width) <> 0 then raise (Rejected "ingest: payload not a record multiple");
  let events = bytes_len / (4 * width) in
  let ua = alloc_out t ~hint:H_parallel ~producer ~width ~capacity:events () in
  timed t `Ingest (fun () ->
      let first = U.reserve ua events in
      assert (first = 0);
      let buf = U.raw ua in
      for i = 0 to (events * width) - 1 do
        Bigarray.Array1.unsafe_set buf i (Bytes.get_int32_le payload (4 * i))
      done);
  produce t ua;
  (ua, events)

let do_ingest_events t ~payload ~encrypted ~stream ~seq ~mac =
  let platform = t.cfg.platform in
  (* Authenticated links: verify the frame tag over the wire payload
     before anything else is spent on the batch.  Damage anywhere in
     header or payload surfaces here as a clean rejection. *)
  if Bytes.length mac > 0 then begin
    let events = Bytes.length payload / (4 * t.ingest_width) in
    let valid =
      timed t `Crypto (fun () ->
          Sbt_net.Frame.payload_mac_valid ~key:t.cfg.ingress_key ~stream ~seq ~events ~mac
            payload)
    in
    if not valid then raise (Rejected "ingest: frame authentication failed")
  end;
  (* Pool pressure the backpressure stall cannot absorb: shed the batch
     instead of letting the allocator raise mid-ingest.  The refusal
     carries an escalating stall so a persistently full pool slows the
     source down harder each time (load shedding, not crash). *)
  let forced_shed = Sbt_fault.Fault.pool_sheds t.cfg.fault_plan ~stream ~seq in
  (* A quota-constrained tenant (pool_budget_bytes) sheds at admission
     time, before operator state can outgrow what is left: a batch is
     admitted only while committed bytes stay under 1/3 of the budget.
     Window-close kernels (sort/merge) can transiently allocate about
     as much again as the accumulated state, so admitting up to B/3
     keeps the close-time peak under B.  Unconstrained pools keep the
     exact historical check (payload fits), so default runs are
     byte-identical. *)
  let quota_shed =
    match t.cfg.pool_budget_bytes with
    | Some b -> Pool.committed_bytes t.pool + Bytes.length payload > b / 3
    | None -> false
  in
  if
    forced_shed || quota_shed
    || Pool.available_pages t.pool < Pool.pages_for_bytes (Bytes.length payload)
  then begin
    t.sheds <- t.sheds + 1;
    Sbt_obs.Metrics.incr t.m_sheds;
    t.consecutive_sheds <- t.consecutive_sheds + 1;
    let stalled_ns =
      Float.min 16_000_000.0 (1_000_000.0 *. float_of_int (1 lsl min 4 t.consecutive_sheds))
    in
    raise (Overloaded { stalled_ns })
  end;
  (* Backpressure: above the threshold the source is stalled before this
     batch may enter (paper §4.2). *)
  let pressure =
    float_of_int (Pool.committed_bytes t.pool) /. float_of_int (Pool.budget_bytes t.pool)
  in
  let stalled_ns =
    if pressure > t.cfg.backpressure_threshold then begin
      t.backpressure_stalls <- t.backpressure_stalls + 1;
      Sbt_obs.Metrics.incr t.m_stalls;
      if t.cfg.adaptive_backpressure then begin
        (* Automatic flow control (the paper's stated future work, 4.2):
           the stall grows with how deep past the threshold the pool is,
           so the source slows proportionally to the backlog instead of by
           a fixed step. *)
        let over =
          (pressure -. t.cfg.backpressure_threshold)
          /. Float.max 0.01 (1.0 -. t.cfg.backpressure_threshold)
        in
        Float.min 10_000_000.0 (Float.max 100_000.0 (10_000_000.0 *. over))
      end
      else 1_000_000.0 (* fixed 1 ms source stall *)
    end
    else 0.0
  in
  let payload =
    match t.cfg.version with
    | Io_via_os ->
        (* Data landed in the untrusted OS and is copied across the TEE
           boundary: check the normal-world NIC, do the copy, charge it. *)
        Tz.Tzpc.check_access platform.Tz.Platform.tzpc ~accessor:Tz.World.Normal
          ~peripheral:"usb-eth";
        Tz.Platform.charge_copy platform ~bytes_len:(Bytes.length payload);
        timed t `Ingest (fun () -> Bytes.copy payload)
    | Full | Clear_ingress ->
        (* Trusted IO: the secure world owns the NIC; no boundary copy. *)
        Tz.Tzpc.check_access platform.Tz.Platform.tzpc ~accessor:Tz.World.Secure ~peripheral:"net0";
        payload
    | Insecure -> payload
  in
  let payload =
    if encrypted then
      timed t `Crypto (fun () ->
          let ctr = Sbt_crypto.Ctr.create ~key:t.cfg.ingress_key ~nonce:(Int64.of_int stream) in
          let p = Bytes.copy payload in
          Sbt_crypto.Ctr.xcrypt ctr ~pos:(Int64.shift_left (Int64.of_int seq) 32) p 0
            (Bytes.length p);
          p)
    else payload
  in
  let ua, events = unpack_payload t ~producer:P.ingress_id payload t.ingest_width in
  t.consecutive_sheds <- 0;
  t.events_ingested <- t.events_ingested + events;
  t.bytes_ingested <- t.bytes_ingested + Bytes.length payload;
  Sbt_obs.Metrics.add t.m_events events;
  Sbt_obs.Metrics.add t.m_bytes (Bytes.length payload);
  Sbt_obs.Metrics.observe t.m_batch_events (float_of_int events);
  Sbt_obs.Metrics.set_gauge t.m_pool (float_of_int (Pool.committed_bytes t.pool));
  append_record t (Sbt_attest.Record.Ingress { ts = now_us t; uarray = U.id ua; stream; seq });
  let r = mint_ref t ua in
  Rs_ingested { out = { win = -1; ref_ = r; events }; stalled_ns }

(* The edge vouches, from inside the TEE, that a frame was lost to a
   benign fault: the signed Gap record is what lets the verifier tell
   degradation from tampering. *)
let do_declare_gap t ~stream ~seq ~events ~windows ~reason =
  Sbt_obs.Metrics.incr t.m_gaps;
  append_record t
    (Sbt_attest.Record.Gap { ts = now_us t; stream; seq; events; windows; reason });
  Rs_outputs []

let do_ingest_watermark t ~value =
  (* Watermark ids come from the allocator's id sequence so all audit
     identifiers stay near-monotonic (better delta compression, 7). *)
  if value > t.last_wm then t.last_wm <- value;
  let id = Alloc.reserve_id t.alloc in
  append_record t (Sbt_attest.Record.Ingress_watermark { ts = now_us t; id; value });
  Rs_watermark { audit_id = id; value }

(* --- primitive dispatch ------------------------------------------------ *)

let as_one = function [ x ] -> x | _ -> raise (Rejected "primitive expects one input")
let as_two = function [ a; b ] -> (a, b) | _ -> raise (Rejected "primitive expects two inputs")

let scalar_i64 v =
  let lo = Int64.to_int32 v in
  let hi = Int64.to_int32 (Int64.shift_right_logical v 32) in
  [| lo; hi |]

(* Ops whose cost is dominated by a data-parallel kernel worth replaying
   on real domains.  Scalar folds (Sum, Count, ...) are not worth a
   snapshot: their replay cost would be dwarfed by the copy. *)
let capture_worthy = function
  | P.Sort | P.Merge | P.Kway_merge | P.Segment | P.Sum_per_key | P.Count_per_key
  | P.Avg_per_key | P.Filter_band | P.Select | P.Project | P.Concat ->
      true
  | _ -> false

let set_capture t sink = t.capture <- sink

(* Snapshots live on the host heap, not in the secure pool: captures are
   a measurement aid for the normal-world executor and must not perturb
   the recorded pass's pool accounting. *)
let snapshot_input ua =
  let w = U.width ua and n = U.length ua in
  let copy = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (n * w) in
  if n * w > 0 then
    Bigarray.Array1.blit (Bigarray.Array1.sub (U.raw ua) 0 (n * w)) copy;
  (w, n, copy)

let do_invoke (t : t) ~op ~inputs ~trigger ~params ~hints ~retire_inputs =
  t.invocations <- t.invocations + 1;
  Sbt_obs.Metrics.incr t.m_invocations;
  List.iter (guard_ref t) inputs;
  let uas = List.map (Opaque.resolve t.refs) inputs in
  (match t.capture with
  | Some sink when capture_worthy op ->
      sink { cap_op = op; cap_params = params; cap_inputs = List.map snapshot_input uas; cap_steps = [] }
  | _ -> ());
  let producer = P.to_id op in
  let hint_for i =
    match hints with [] -> None | [ h ] -> Some h | l -> List.nth_opt l i
  in
  let mk ?(i = 0) ?scope ~width ~capacity () =
    alloc_out t ?hint:(hint_for i) ?scope ~producer ~width ~capacity ()
  in
  let outputs : (int * U.t) list =
    (* (window, array) pairs; window -1 when not window-scoped *)
    match op with
    | P.Sort ->
        let src = as_one uas in
        let kf = key_field params 0 in
        let dst = mk ~width:(U.width src) ~capacity:(U.length src) () in
        timed t `Compute (fun () ->
            match find_param params (function P_value_field v -> Some v | _ -> None) with
            | Some vf ->
                (* Secondary order: stable radix by value, then by key. *)
                Sbt_prim.Sort.sort Sbt_prim.Sort.Radix ~src ~dst ~key_field:vf;
                Sbt_prim.Sort.sort_in_place Sbt_prim.Sort.Radix dst ~key_field:kf
            | None -> Sbt_prim.Sort.sort t.cfg.sort_algorithm ~src ~dst ~key_field:kf);
        [ (-1, dst) ]
    | P.Merge ->
        let a, b = as_two uas in
        let kf = key_field params 0 in
        let dst = mk ~width:(U.width a) ~capacity:(U.length a + U.length b) () in
        timed t `Compute (fun () -> Sbt_prim.Merge.merge2 ~a ~b ~dst ~key_field:kf);
        [ (-1, dst) ]
    | P.Kway_merge ->
        let kf = key_field params 0 in
        let total = List.fold_left (fun acc ua -> acc + U.length ua) 0 uas in
        let width = match uas with [] -> raise (Rejected "kway: no inputs") | ua :: _ -> U.width ua in
        let dst = mk ~width ~capacity:total () in
        timed t `Compute (fun () -> Sbt_prim.Merge.kway ~inputs:uas ~dst ~key_field:kf);
        [ (-1, dst) ]
    | P.Segment -> (
        let src = as_one uas in
        let tf =
          Option.value ~default:2 (find_param params (function P_ts_field f -> Some f | _ -> None))
        in
        match find_param params (function P_session_gap g -> Some g | _ -> None) with
        | Some gap ->
            (* Gap-based session windowing.  Assignment is global, stateful
               and in-order: the enclave remembers the last event time
               across batches, opens a new session after [gap] ticks of
               silence, and records each session's end so egress can hold a
               session open until the watermark clears end + gap. *)
            if gap <= 0 then raise (Rejected "segment: session gap must be positive");
            t.sess_gap <- gap;
            let n = U.length src in
            let w = U.width src in
            let ids = Array.make (max n 1) 0 in
            timed t `Compute (fun () ->
                for i = 0 to n - 1 do
                  let ts = Int32.to_int (U.get_field src i tf) in
                  if ts < t.sess_last_ts then
                    raise (Rejected "segment: session windows need in-order event times");
                  if t.sess_next_id = 0 || ts - t.sess_last_ts > gap then
                    t.sess_next_id <- t.sess_next_id + 1;
                  let sid = t.sess_next_id - 1 in
                  ids.(i) <- sid;
                  t.sess_last_ts <- ts;
                  Hashtbl.replace t.sess_ends sid ts
                done);
            (* Distinct session ids in first-appearance order (ids are
               non-decreasing, so this is also ascending id order). *)
            let order = ref [] in
            Array.iteri
              (fun i sid ->
                if i < n then
                  match !order with s :: _ when s = sid -> () | _ -> order := sid :: !order)
              ids;
            let sids = List.rev !order in
            let count sid =
              let c = ref 0 in
              for i = 0 to n - 1 do
                if ids.(i) = sid then incr c
              done;
              !c
            in
            let dsts =
              List.mapi (fun i sid -> (sid, mk ~i ~width:w ~capacity:(count sid) ())) sids
            in
            timed t `Compute (fun () ->
                let row = Array.make w 0l in
                for i = 0 to n - 1 do
                  for f = 0 to w - 1 do
                    row.(f) <- U.get_field src i f
                  done;
                  U.append (List.assoc ids.(i) dsts) row
                done);
            dsts
        | None ->
            let ws =
              match find_param params (function P_window_size w -> Some w | _ -> None) with
              | Some w -> w
              | None -> raise (Rejected "segment: missing window size")
            in
            let slide =
              Option.value ~default:ws (find_param params (function P_slide v -> Some v | _ -> None))
            in
            let counts =
              timed t `Compute (fun () ->
                  Sbt_prim.Segment.count_per_window ~src ~ts_field:tf ~window_size:ws ~slide ())
            in
            let dsts =
              List.mapi
                (fun i (win, count) -> (win, mk ~i ~width:(U.width src) ~capacity:count ()))
                counts
            in
            timed t `Compute (fun () ->
                Sbt_prim.Segment.segment ~src ~ts_field:tf ~window_size:ws ~slide
                  ~dst_for_window:(fun w -> List.assoc w dsts)
                  ());
            List.map (fun (w, d) -> (w, d)) dsts)
    | P.Sum_cnt ->
        let src = as_one uas in
        let vf = value_field params 1 in
        let s, n = timed t `Compute (fun () -> Sbt_prim.Agg.sum_count src ~field:vf) in
        let dst = mk ~width:2 ~capacity:1 () in
        U.append dst [| Int64.to_int32 s; Int32.of_int n |];
        [ (-1, dst) ]
    | P.Top_k ->
        let src = as_one uas in
        let vf = value_field params 1 in
        let k =
          Option.value ~default:10 (find_param params (function P_k k -> Some k | _ -> None))
        in
        let dst = mk ~width:(U.width src) ~capacity:(min k (U.length src)) () in
        timed t `Compute (fun () -> Sbt_prim.Misc.top_k_records ~src ~dst ~field:vf ~k);
        [ (-1, dst) ]
    | P.Concat ->
        let total = List.fold_left (fun acc ua -> acc + U.length ua) 0 uas in
        let width = match uas with [] -> raise (Rejected "concat: no inputs") | ua :: _ -> U.width ua in
        let dst = mk ~width ~capacity:total () in
        timed t `Compute (fun () -> Sbt_prim.Misc.concat ~inputs:uas ~dst);
        [ (-1, dst) ]
    | P.Join ->
        let left, right = as_two uas in
        let kf = key_field params 0 in
        let vf = value_field params 1 in
        let matches =
          timed t `Compute (fun () -> Sbt_prim.Join.count_matches ~left ~right ~key_field:kf)
        in
        let dst = mk ~width:3 ~capacity:matches () in
        timed t `Compute (fun () ->
            Sbt_prim.Join.join ~left ~right ~dst ~key_field:kf ~value_field:vf);
        [ (-1, dst) ]
    | P.Count ->
        let src = as_one uas in
        let dst = mk ~width:1 ~capacity:1 () in
        U.append dst [| Int32.of_int (Sbt_prim.Agg.count src) |];
        [ (-1, dst) ]
    | P.Sum ->
        (* WinSum consumes all of a window's segments directly. *)
        let vf = value_field params 1 in
        let total =
          timed t `Compute (fun () ->
              List.fold_left (fun acc ua -> Int64.add acc (Sbt_prim.Agg.sum ua ~field:vf)) 0L uas)
        in
        let dst = mk ~width:2 ~capacity:1 () in
        U.append dst (scalar_i64 total);
        [ (-1, dst) ]
    | P.Unique ->
        let src = as_one uas in
        let kf = key_field params 0 in
        let groups = timed t `Compute (fun () -> Sbt_prim.Keyed.group_count ~src ~key_field:kf) in
        let dst = mk ~width:2 ~capacity:groups () in
        timed t `Compute (fun () -> Sbt_prim.Keyed.distinct_keys ~src ~dst ~key_field:kf);
        [ (-1, dst) ]
    | P.Filter_band ->
        let src, threshold =
          match uas with
          | [ s ] -> (s, None)
          | [ s; th ] when U.width th = 1 || U.width th = 2 -> (s, Some th)
          | _ -> raise (Rejected "filter: expects data [+ threshold] inputs")
        in
        let f = value_field params 1 in
        let lo, hi =
          match threshold with
          | Some th ->
              (* Runtime threshold (e.g. the window's global average):
                 strictly-above-threshold band. *)
              (Int32.add (U.get_field th 0 0) 1l, Int32.max_int)
          | None ->
              ( Option.value ~default:Int32.min_int
                  (find_param params (function P_lo v -> Some v | _ -> None)),
                Option.value ~default:Int32.max_int
                  (find_param params (function P_hi v -> Some v | _ -> None)) )
        in
        let n = timed t `Compute (fun () -> Sbt_prim.Filter.count_in_band ~src ~field:f ~lo ~hi) in
        let dst = mk ~width:(U.width src) ~capacity:n () in
        timed t `Compute (fun () -> Sbt_prim.Filter.filter_band ~src ~dst ~field:f ~lo ~hi);
        [ (-1, dst) ]
    | P.Median ->
        let src = as_one uas in
        let vf = value_field params 1 in
        let m = timed t `Compute (fun () -> Sbt_prim.Agg.median src ~field:vf) in
        let dst = mk ~width:1 ~capacity:1 () in
        U.append dst [| Option.value ~default:0l m |];
        [ (-1, dst) ]
    | P.Min_max ->
        let src = as_one uas in
        let vf = value_field params 1 in
        let mm = timed t `Compute (fun () -> Sbt_prim.Agg.min_max src ~field:vf) in
        let dst = mk ~width:2 ~capacity:1 () in
        let lo, hi = Option.value ~default:(0l, 0l) mm in
        U.append dst [| lo; hi |];
        [ (-1, dst) ]
    | P.Average ->
        let src = as_one uas in
        let vf = value_field params 1 in
        let avg =
          timed t `Compute (fun () ->
              let s, n = Sbt_prim.Agg.sum_count src ~field:vf in
              if n = 0 then 0L else Int64.div s (Int64.of_int n))
        in
        let dst = mk ~width:1 ~capacity:1 () in
        U.append dst [| Int64.to_int32 avg |];
        [ (-1, dst) ]
    | P.Sum_per_key | P.Count_per_key | P.Avg_per_key | P.Median_per_key ->
        let src = as_one uas in
        let kf = key_field params 0 in
        let vf = value_field params 1 in
        let groups = timed t `Compute (fun () -> Sbt_prim.Keyed.group_count ~src ~key_field:kf) in
        let dst = mk ~width:2 ~capacity:groups () in
        timed t `Compute (fun () ->
            match op with
            | P.Sum_per_key -> Sbt_prim.Keyed.sum_per_key ~src ~dst ~key_field:kf ~value_field:vf
            | P.Count_per_key -> Sbt_prim.Keyed.count_per_key ~src ~dst ~key_field:kf
            | P.Avg_per_key -> Sbt_prim.Keyed.avg_per_key ~src ~dst ~key_field:kf ~value_field:vf
            | P.Median_per_key ->
                Sbt_prim.Keyed.median_per_key ~src ~dst ~key_field:kf ~value_field:vf
            | _ -> assert false);
        [ (-1, dst) ]
    | P.Top_k_per_key ->
        let src = as_one uas in
        let kf = key_field params 0 in
        let vf = value_field params 1 in
        let k =
          Option.value ~default:10 (find_param params (function P_k k -> Some k | _ -> None))
        in
        let groups = timed t `Compute (fun () -> Sbt_prim.Keyed.group_count ~src ~key_field:kf) in
        let dst = mk ~width:2 ~capacity:(groups * k) () in
        timed t `Compute (fun () ->
            Sbt_prim.Keyed.topk_per_key ~src ~dst ~key_field:kf ~value_field:vf ~k);
        [ (-1, dst) ]
    | P.Select ->
        let src = as_one uas in
        let f = value_field params 0 in
        let v =
          Option.value ~default:0l (find_param params (function P_lo v -> Some v | _ -> None))
        in
        let n = timed t `Compute (fun () -> Sbt_prim.Filter.count_in_band ~src ~field:f ~lo:v ~hi:v) in
        let dst = mk ~width:(U.width src) ~capacity:n () in
        timed t `Compute (fun () -> Sbt_prim.Filter.select_eq ~src ~dst ~field:f ~value:v);
        [ (-1, dst) ]
    | P.Project ->
        let src = as_one uas in
        let fields =
          match find_param params (function P_fields f -> Some f | _ -> None) with
          | Some f -> f
          | None -> raise (Rejected "project: missing fields")
        in
        let dst = mk ~width:(Array.length fields) ~capacity:(U.length src) () in
        timed t `Compute (fun () -> Sbt_prim.Misc.project ~src ~dst ~fields);
        [ (-1, dst) ]
    | P.Shift_key ->
        let src = as_one uas in
        let f = key_field params 0 in
        let shift =
          Option.value ~default:8 (find_param params (function P_shift s -> Some s | _ -> None))
        in
        let dst = mk ~width:(U.width src) ~capacity:(U.length src) () in
        timed t `Compute (fun () -> Sbt_prim.Misc.shift_key ~src ~dst ~field:f ~shift);
        [ (-1, dst) ]
  in
  List.iter (fun (_, ua) -> produce t ua) outputs;
  (* Audit before retiring: Segment gets Windowing records, everything else
     one Execution record. *)
  let in_ids = List.map U.id uas @ Option.to_list trigger in
  (match op with
  | P.Segment ->
      let batch_id = U.id (List.hd uas) in
      List.iter
        (fun (win, ua) ->
          append_record t
            (Sbt_attest.Record.Windowing
               { ts = now_us t; data_in = batch_id; win_no = win; data_out = U.id ua }))
        outputs
  | _ ->
      let audit_hints =
        List.concat
          (List.mapi
             (fun i (_, ua) ->
               match hint_for i with
               | Some h -> [ encode_hint_for_audit t h (U.id ua) ]
               | None -> [])
             outputs)
      in
      append_record t
        (Sbt_attest.Record.Execution
           {
             ts = now_us t;
             op = P.to_id op;
             inputs = in_ids;
             outputs = List.map (fun (_, ua) -> U.id ua) outputs;
             hints = audit_hints;
           }));
  let out_refs =
    List.map (fun (win, ua) -> { win; ref_ = mint_ref t ua; events = U.length ua }) outputs
  in
  if retire_inputs then List.iter (retire_ref t) inputs;
  Rs_outputs out_refs

(* Fused super-kernel (PR 7): a whole chain of per-record primitives runs
   in this one entry — one world-switch pair, one pass over the data, one
   composite audit record.  The chain hash is computed here, in-TEE, so
   the normal world cannot later present a different composition as the
   one that ran. *)
let do_invoke_fused (t : t) ~steps ~inputs ~trigger ~hints ~retire_inputs =
  t.invocations <- t.invocations + 1;
  Sbt_obs.Metrics.incr t.m_invocations;
  (match steps with
  | [] | [ _ ] -> raise (Rejected "fused: chain needs at least two steps")
  | _ -> ());
  List.iter (guard_ref t) inputs;
  let uas = List.map (Opaque.resolve t.refs) inputs in
  let src = as_one uas in
  let w = U.width src in
  let dw =
    match Sbt_prim.Fused.width_after w steps with
    | Some dw -> dw
    | None -> raise (Rejected "fused: chain invalid for input width")
  in
  (match t.capture with
  | Some sink ->
      sink
        {
          cap_op = Sbt_prim.Fused.step_op (List.hd steps);
          cap_params = [];
          cap_inputs = [ snapshot_input src ];
          cap_steps = steps;
        }
  | None -> ());
  let producer = P.to_id (Sbt_prim.Fused.step_op (List.hd steps)) in
  let hint = match hints with h :: _ -> Some h | [] -> None in
  let dst_ref = ref None in
  timed t `Compute (fun () ->
      Sbt_prim.Par_kernel.fused_raw ~w ~steps
        ~src:(Sbt_prim.Par_kernel.slice_of_uarray src)
        ~alloc:(fun n ->
          (* The single alloc happens mid-kernel (after the count pass),
             so its host time lands in the `Compute bucket — a stats
             nuance only; no result or audit byte depends on it. *)
          let dst =
            Alloc.alloc t.alloc ~hint:(safe_hint t hint) ~scope:U.Streaming ~producer ~width:dw
              ~capacity:n ()
          in
          dst_ref := Some dst;
          let off = U.reserve dst n in
          (U.raw dst, off))
        ());
  let dst = match !dst_ref with Some d -> d | None -> assert false in
  produce t dst;
  let ops = List.map (fun s -> P.to_id (Sbt_prim.Fused.step_op s)) steps in
  let params = Sbt_prim.Fused.encode_steps steps in
  let chain =
    timed t `Crypto (fun () -> Sbt_attest.Record.chain_hash ~ops ~params)
  in
  let in_ids = List.map U.id uas @ Option.to_list trigger in
  let audit_hints =
    match hint with Some h -> [ encode_hint_for_audit t h (U.id dst) ] | None -> []
  in
  append_record t
    (Sbt_attest.Record.Fused
       {
         ts = now_us t;
         ops;
         params;
         chain;
         inputs = in_ids;
         outputs = [ U.id dst ];
         hints = audit_hints;
       });
  let out = { win = -1; ref_ = mint_ref t dst; events = U.length dst } in
  if retire_inputs then List.iter (retire_ref t) inputs;
  Rs_outputs [ out ]

let egress_nonce window = Int64.logor 0x4547000000000000L (Int64.of_int window)

(* Corrections seal under their own nonce domain ("CT" vs the egress
   "EG"), keyed by (window, generation): a superseded result and its
   correction can never be confused or replayed for one another, and the
   cloud-side merge re-seals the winning generation under the canonical
   egress nonce so corrected output is byte-compatible with an in-order
   run. *)
let correction_nonce ~window ~gen =
  Int64.logor 0x4354000000000000L (Int64.of_int ((window * 256) + gen))

let seal_out t ~input ~window ~nonce ~mk_record =
  guard_ref t input;
  let ua = Opaque.resolve t.refs input in
  let events = U.length ua and width = U.width ua in
  let cipher =
    timed t `Crypto (fun () ->
        let cells = events * width in
        let payload = Bytes.create (cells * 4) in
        let buf = U.raw ua in
        let marshal (src : U.buf) =
          for i = 0 to cells - 1 do
            Bytes.set_int32_le payload (4 * i) (Bigarray.Array1.get src i)
          done
        in
        (* Small results stage through a slab slot of the matching size
           class instead of conjuring page-granular scratch; the slot is
           freed the moment the copy-out completes.  The staged cells are
           the same int32s, serialized by the same loop, so the sealed
           bytes are identical either way. *)
        let staged =
          Slab.enabled () && Slab.fits (cells * 4) &&
          match Slab.alloc t.staging ~bytes:(cells * 4) with
          | ptr ->
              Fun.protect
                ~finally:(fun () -> Slab.free t.staging ptr)
                (fun () ->
                  let stage = Slab.view t.staging ptr in
                  Bigarray.Array1.blit (Bigarray.Array1.sub buf 0 cells)
                    (Bigarray.Array1.sub stage 0 cells);
                  marshal stage);
              true
          | exception Pool.Out_of_secure_memory _ -> false
        in
        if not staged then marshal buf;
        match t.cfg.version with
        | Insecure -> payload
        | Full | Clear_ingress | Io_via_os ->
            let ctr = Sbt_crypto.Ctr.create ~key:t.cfg.egress_key ~nonce in
            Sbt_crypto.Ctr.xcrypt ctr ~pos:0L payload 0 (Bytes.length payload);
            payload)
  in
  let tag =
    match t.cfg.version with
    | Insecure -> Bytes.create 0
    | Full | Clear_ingress | Io_via_os ->
        timed t `Crypto (fun () -> Sbt_crypto.Hmac.mac ~key:t.cfg.egress_key cipher)
  in
  append_record t (mk_record ~ts:(now_us t) ~uarray:(U.id ua));
  retire_ref t input;
  (* Audit records are flushed upon externalizing any result (paper §7). *)
  flush_log t;
  Rs_egress { window; cipher; tag; events; width }

let do_egress t ~input ~window =
  (* A session window may only seal once the watermark clears its end
     plus the gap — the in-TEE half of session close (the control plane
     schedules the close; the enclave refuses a premature one).  Fixed
     windows never populate [sess_ends], so this is inert by default. *)
  (match Hashtbl.find_opt t.sess_ends window with
  | Some end_ts when t.last_wm < end_ts + t.sess_gap ->
      raise
        (Rejected
           (Printf.sprintf "egress: session %d still open (last event %d, gap %d, watermark %d)"
              window end_ts t.sess_gap t.last_wm))
  | _ -> ());
  seal_out t ~input ~window ~nonce:(egress_nonce window) ~mk_record:(fun ~ts ~uarray ->
      Sbt_attest.Record.Egress { ts; uarray; win_no = window })

(* Drop+declare: the late batch dies inside the TEE, but its death is a
   signed audit fact (window, events) rather than silence — the verifier
   downgrades the would-be violation to declared degradation iff the
   quoted policy is drop+declare. *)
let do_late_drop t ~input ~window =
  guard_ref t input;
  let ua = Opaque.resolve t.refs input in
  let events = U.length ua in
  append_record t
    (Sbt_attest.Record.Late_drop { ts = now_us t; uarray = U.id ua; win_no = window; events });
  retire_ref t input;
  Rs_outputs []

let do_egress_correction t ~input ~window ~gen =
  if gen <= 0 || gen > 255 then raise (Rejected "correction: generation out of range");
  seal_out t ~input ~window
    ~nonce:(correction_nonce ~window ~gen)
    ~mk_record:(fun ~ts ~uarray -> Sbt_attest.Record.Correction { ts; uarray; win_no = window; gen })

(* --- certified UDFs (paper 4.2) ---------------------------------------- *)

let do_install_udf t ~udf ~cert =
  (* The trusted party is the cloud consumer; its key doubles as the UDF
     certification key.  Anything with a bad certificate never runs. *)
  let cert = Udf.certificate_of_bytes cert in
  if not (Udf.verify ~key:t.cfg.egress_key udf cert) then
    raise (Rejected "udf: certificate verification failed");
  Hashtbl.replace t.udfs (udf.Udf.name, udf.Udf.version) udf;
  Rs_outputs []

let do_invoke_udf t ~name ~version ~inputs ~trigger ~value_field ~hints ~retire_inputs
    ~state_output =
  let udf =
    match Hashtbl.find_opt t.udfs (name, version) with
    | Some u -> u
    | None -> raise (Rejected (Printf.sprintf "udf: %s v%d not installed" name version))
  in
  t.invocations <- t.invocations + 1;
  Sbt_obs.Metrics.incr t.m_invocations;
  List.iter (guard_ref t) inputs;
  let src = as_one (List.map (Opaque.resolve t.refs) inputs) in
  let w = U.width src in
  if value_field < 0 || value_field >= w then raise (Rejected "udf: bad value field");
  let hint = match hints with h :: _ -> Some h | [] -> None in
  let scope = if state_output then U.State else U.Streaming in
  let dst =
    match udf.Udf.body with
    | Udf.Map_value map_fn ->
        let dst =
          alloc_out t ?hint ~scope ~producer:P.udf_id ~width:w ~capacity:(U.length src) ()
        in
        timed t `Compute (fun () ->
            let n = U.length src in
            let sbuf = U.raw src in
            let first = U.reserve dst n in
            let dbuf = U.raw dst in
            for r = 0 to n - 1 do
              for f = 0 to w - 1 do
                let v = Bigarray.Array1.unsafe_get sbuf ((r * w) + f) in
                Bigarray.Array1.unsafe_set dbuf (((first + r) * w) + f)
                  (if f = value_field then map_fn v else v)
              done
            done);
        dst
    | Udf.Predicate p ->
        let n =
          timed t `Compute (fun () ->
              let n = U.length src in
              let sbuf = U.raw src in
              let c = ref 0 in
              for r = 0 to n - 1 do
                if p (Bigarray.Array1.unsafe_get sbuf ((r * w) + value_field)) then incr c
              done;
              !c)
        in
        let dst = alloc_out t ?hint ~scope ~producer:P.udf_id ~width:w ~capacity:n () in
        timed t `Compute (fun () ->
            let total = U.length src in
            let sbuf = U.raw src in
            for r = 0 to total - 1 do
              if p (Bigarray.Array1.unsafe_get sbuf ((r * w) + value_field)) then begin
                let at = U.reserve dst 1 in
                let dbuf = U.raw dst in
                for f = 0 to w - 1 do
                  Bigarray.Array1.unsafe_set dbuf ((at * w) + f)
                    (Bigarray.Array1.unsafe_get sbuf ((r * w) + f))
                done
              end
            done);
        dst
    | Udf.Combine2 combine ->
        (* (key, a, b) -> (key, combine a b): the stateful per-key update
           shape (e.g. EWMA over the previous prediction and the current
           window's average). *)
        if w <> 3 then raise (Rejected "udf: Combine2 expects width-3 (key, a, b) input");
        let n = U.length src in
        let dst = alloc_out t ?hint ~scope ~producer:P.udf_id ~width:2 ~capacity:n () in
        timed t `Compute (fun () ->
            let sbuf = U.raw src in
            let first = U.reserve dst n in
            let dbuf = U.raw dst in
            for r = 0 to n - 1 do
              Bigarray.Array1.unsafe_set dbuf ((first + r) * 2)
                (Bigarray.Array1.unsafe_get sbuf (r * 3));
              Bigarray.Array1.unsafe_set dbuf (((first + r) * 2) + 1)
                (combine
                   (Bigarray.Array1.unsafe_get sbuf ((r * 3) + 1))
                   (Bigarray.Array1.unsafe_get sbuf ((r * 3) + 2)))
            done);
        dst
  in
  produce t dst;
  let in_ids = List.map (fun r -> U.id (Opaque.resolve t.refs r)) inputs @ Option.to_list trigger in
  let audit_hints =
    match hint with Some h -> [ encode_hint_for_audit t h (U.id dst) ] | None -> []
  in
  append_record t
    (Sbt_attest.Record.Execution
       { ts = now_us t; op = P.udf_id; inputs = in_ids; outputs = [ U.id dst ]; hints = audit_hints });
  let out = { win = -1; ref_ = mint_ref t dst; events = U.length dst } in
  if retire_inputs then List.iter (retire_ref t) inputs;
  Rs_outputs [ out ]

(* Explicit retirement: the only way a State-scope uArray dies (the data
   plane never retires state behind the control plane's back, but the
   control plane replaces state each window and must free the old one). *)
let do_retire t ~input =
  guard_ref t input;
  let ua = Opaque.resolve t.refs input in
  timed t `Mem (fun () ->
      Alloc.retire t.alloc ua;
      drop_ref t input);
  Rs_outputs []

(* --- checkpoint sealing ------------------------------------------------

   The Checkpoint trusted primitive serializes everything volatile the
   data plane would need to continue after a reboot — PRNG limbs (so
   opaque references and any future draws continue the exact sequence),
   the allocator's id counter, the audit-log cursor, ingest/ingest-width
   counters, and every live uArray with its contents and its opaque
   reference — plus an opaque control-plane section the runtime hands
   in.  The whole state leaves the TEE only through Seal (AES-CTR +
   HMAC under device-derived keys); a Checkpoint audit record is
   appended and the log flushed *first*, so the sealed cursor is clean
   and the checkpoint's own sequence number is attested in the signed
   log the cloud already holds. *)

module C = Sbt_recovery.Codec

let state_version = 1

let scope_tag = function U.Streaming -> 0 | U.State -> 1 | U.Temporary -> 2

let scope_of_tag = function
  | 0 -> U.Streaming
  | 1 -> U.State
  | 2 -> U.Temporary
  | tag -> invalid_arg (Printf.sprintf "Dataplane.restore: bad scope tag %d" tag)

let serialize_state t ~control =
  let w = C.writer () in
  C.u8 w state_version;
  let s0, s1, s2, s3 = Sbt_crypto.Rng.state t.rng in
  C.i64 w s0;
  C.i64 w s1;
  C.i64 w s2;
  C.i64 w s3;
  C.int_ w t.next_ckpt_seq;
  C.int_ w (Sbt_attest.Log.seq t.log);
  C.int_ w (Sbt_attest.Log.records_produced t.log);
  C.int_ w (Sbt_attest.Log.raw_bytes t.log);
  C.int_ w (Sbt_attest.Log.compressed_bytes t.log);
  C.int_ w t.ingest_width;
  C.int_ w t.invocations;
  C.int_ w t.events_ingested;
  C.int_ w t.bytes_ingested;
  C.int_ w t.backpressure_stalls;
  C.int_ w t.sheds;
  C.int_ w t.consecutive_sheds;
  C.f64 w t.compute_ns;
  C.f64 w t.mem_ns;
  C.f64 w t.crypto_ns;
  C.f64 w t.ingest_ns;
  C.list_ w
    (fun w (ref_, ua) ->
      C.i64 w ref_;
      C.int_ w (U.id ua);
      C.int_ w (U.width ua);
      C.int_ w (U.capacity ua);
      C.u8 w (scope_tag (U.scope ua));
      C.u8 w (match U.state ua with U.Open -> 0 | U.Produced -> 1 | U.Retired -> 2);
      C.int_ w (U.length ua);
      let n = U.length ua * U.width ua in
      let buf = U.raw ua in
      C.u32 w n;
      for i = 0 to n - 1 do
        C.i32 w (Bigarray.Array1.get buf i)
      done)
    (Opaque.sorted_bindings t.refs);
  C.int_ w (Alloc.next_uarray_id t.alloc);
  C.bytes_ w control;
  C.contents w

let do_checkpoint t ~control ~watermark =
  let seq = t.next_ckpt_seq in
  t.next_ckpt_seq <- seq + 1;
  append_record t (Sbt_attest.Record.Checkpoint { ts = now_us t; seq; watermark });
  flush_log t;
  let state = serialize_state t ~control in
  let blob =
    timed t `Crypto (fun () ->
        Sbt_recovery.Seal.seal ~device_key:t.cfg.egress_key ~seq state)
  in
  Rs_checkpoint { blob; seq }

let measured_total (t : t) = t.compute_ns +. t.mem_ns +. t.crypto_ns +. t.ingest_ns

(* One "prim" span per primitive/udf/seal execution, at the TEE's virtual
   clock.  The duration is the measured-time delta scaled by the cost
   model's host_scale — the same virtual quantity the DES charges — so at
   host_scale 0 even the trace bytes are deterministic. *)
let traced_prim t name f =
  match t.cfg.tracer with
  | None -> f ()
  | Some tr ->
      let ts = t.now_ns and before = measured_total t in
      let r = f () in
      let dur =
        (measured_total t -. before)
        *. t.cfg.platform.Tz.Platform.cost.Tz.Cost_model.host_scale
      in
      Sbt_obs.Tracer.complete tr ~pid:1 ~tid:0 ~cat:"prim" ~name ~ts_ns:ts ~dur_ns:dur ();
      r

let dispatch t = function
  | R_ingest_events { payload; encrypted; stream; seq; mac } ->
      do_ingest_events t ~payload ~encrypted ~stream ~seq ~mac
  | R_ingest_watermark { value } -> do_ingest_watermark t ~value
  | R_declare_gap { stream; seq; events; windows; reason } ->
      do_declare_gap t ~stream ~seq ~events ~windows ~reason
  | R_invoke { op; inputs; trigger; params; hints; retire_inputs } ->
      traced_prim t (P.name op) (fun () ->
          do_invoke t ~op ~inputs ~trigger ~params ~hints ~retire_inputs)
  | R_invoke_fused { steps; inputs; trigger; hints; retire_inputs } ->
      traced_prim t "fused" (fun () ->
          do_invoke_fused t ~steps ~inputs ~trigger ~hints ~retire_inputs)
  | R_egress { input; window } -> traced_prim t "seal" (fun () -> do_egress t ~input ~window)
  | R_late_drop { input; window } -> do_late_drop t ~input ~window
  | R_egress_correction { input; window; gen } ->
      traced_prim t "seal" (fun () -> do_egress_correction t ~input ~window ~gen)
  | R_install_udf { udf; cert } -> do_install_udf t ~udf ~cert
  | R_invoke_udf { name; version; inputs; trigger; value_field; hints; retire_inputs; state_output } ->
      traced_prim t ("udf:" ^ name) (fun () ->
          do_invoke_udf t ~name ~version ~inputs ~trigger ~value_field ~hints ~retire_inputs
            ~state_output)
  | R_retire { input } -> do_retire t ~input
  | R_checkpoint { control; watermark } -> do_checkpoint t ~control ~watermark

let create cfg =
  let budget =
    match cfg.pool_budget_bytes with
    | Some b -> b
    | None -> Tz.Platform.secure_bytes cfg.platform
  in
  let pool = Pool.create ~budget_bytes:budget in
  let alloc = Alloc.create ~mode:cfg.alloc_mode ~pool () in
  let rng = Sbt_crypto.Rng.create ~seed:cfg.seed in
  let smc = Tz.Smc.create cfg.platform in
  let reg = Sbt_obs.Metrics.create () in
  let batch_bounds = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. |] in
  let t =
    {
      cfg;
      pool;
      staging = Slab.over_pool (Pool.create ~budget_bytes:(1024 * 1024));
      alloc;
      refs = Opaque.create ~rng;
      log = Sbt_attest.Log.create ~key:cfg.egress_key ~flush_every:cfg.audit_flush_every;
      rng;
      smc;
      now_ns = 0.0;
      compute_ns = 0.0;
      mem_ns = 0.0;
      crypto_ns = 0.0;
      ingest_ns = 0.0;
      invocations = 0;
      events_ingested = 0;
      bytes_ingested = 0;
      backpressure_stalls = 0;
      sheds = 0;
      consecutive_sheds = 0;
      uploaded = [];
      next_ckpt_seq = 0;
      ingest_width = 3;
      capture = None;
      sess_gap = 0;
      sess_last_ts = 0;
      sess_next_id = 0;
      sess_ends = Hashtbl.create 16;
      last_wm = -1;
      udfs = Hashtbl.create 8;
      reg;
      m_events = Sbt_obs.Metrics.counter reg "tee.events_ingested";
      m_bytes = Sbt_obs.Metrics.counter reg "tee.bytes_ingested";
      m_sheds = Sbt_obs.Metrics.counter reg "tee.sheds";
      m_stalls = Sbt_obs.Metrics.counter reg "tee.backpressure_stalls";
      m_invocations = Sbt_obs.Metrics.counter reg "tee.invocations";
      m_gaps = Sbt_obs.Metrics.counter reg "tee.gaps_declared";
      m_batch_events = Sbt_obs.Metrics.histogram ~bounds:batch_bounds reg "tee.batch_events";
      m_pool = Sbt_obs.Metrics.gauge reg "tee.pool_committed_bytes";
    }
  in
  (* The declared late-data policy is part of the attestation surface: any
     policy but Silent registers as a gauge in the quoted metrics
     snapshot, so the cloud verifier can hold the audit stream to it.
     Silent registers nothing — default quote bytes stay identical. *)
  if cfg.late_policy <> Silent then
    Sbt_obs.Metrics.set_gauge
      (Sbt_obs.Metrics.gauge reg "tee.late_policy")
      (float_of_int (late_policy_code cfg.late_policy));
  (* Observers go in before Init so a trace's "smc" span count equals the
     platform's switch-pair count exactly. *)
  (match cfg.tracer with
  | None -> ()
  | Some tracer ->
      let now_ns () = t.now_ns in
      Tz.Smc.set_observer smc ~tracer ~now_ns;
      Alloc.set_observer alloc ~tracer ~now_ns);
  Tz.Smc.register smc Tz.Smc.Init (fun _ -> Rr_unit);
  Tz.Smc.register smc Tz.Smc.Finalize (fun _ ->
      flush_log t;
      Rr_unit);
  Tz.Smc.register smc Tz.Smc.Debug (fun _ ->
      Rr_debug
        (Printf.sprintf "refs=%d committed=%dB groups=%d" (Opaque.live_count t.refs)
           (Pool.committed_bytes pool) (Alloc.live_groups alloc)));
  Tz.Smc.register smc Tz.Smc.Invoke (fun rpc ->
      match rpc with
      | Rpc_op (R_invoke_fused _) -> raise (Rejected "wrong entry")
      | Rpc_op req -> Rr_op (dispatch t req)
      | Rpc_init | Rpc_finalize | Rpc_debug -> raise (Rejected "wrong entry"));
  Tz.Smc.register smc Tz.Smc.Fused (fun rpc ->
      match rpc with
      | Rpc_op (R_invoke_fused _ as req) -> Rr_op (dispatch t req)
      | Rpc_op _ | Rpc_init | Rpc_finalize | Rpc_debug -> raise (Rejected "wrong entry"));
  (* Transient SMC entry failures: the plan decides, per ingest frame
     identity, how many consecutive attempts the monitor refuses — so the
     schedule replays identically whatever order tasks run in. *)
  if not (Sbt_fault.Fault.is_none cfg.fault_plan) then begin
    let refused : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    Tz.Smc.set_fault_hook smc (fun entry rpc ->
        match (entry, rpc) with
        | Tz.Smc.Invoke, Rpc_op (R_ingest_events { stream; seq; _ }) ->
            let budget = Sbt_fault.Fault.smc_failures cfg.fault_plan ~stream ~seq in
            budget > 0
            &&
            let done_ = Option.value ~default:0 (Hashtbl.find_opt refused (stream, seq)) in
            done_ < budget
            && begin
                 Hashtbl.replace refused (stream, seq) (done_ + 1);
                 true
               end
        | _ -> false)
  end;
  (match cfg.version with
  | Insecure -> ()
  | Full | Clear_ingress | Io_via_os -> ignore (Tz.Smc.call smc Tz.Smc.Init Rpc_init));
  t

(* Boot-time recovery: build a fresh data plane (fresh SMC monitor, fresh
   pool — the old TEE memory is gone), unseal the checkpoint under the
   device key, and replay the serialized state into it.  Opaque refs are
   re-bound to their *original* 64-bit values without consuming PRNG
   draws, and the PRNG limbs themselves are restored, so every reference
   and nonce the recovered plane hands out matches what the uninterrupted
   run would have produced. *)

type restored = { rt : t; control : bytes; ckpt_seq : int; log_seq : int }

let restore cfg ~expect_seq blob =
  let seq, plain =
    Sbt_recovery.Seal.unseal ~device_key:cfg.egress_key ~expect_at_least:expect_seq blob
  in
  let r = C.reader plain in
  let v = C.get_u8 r in
  if v <> state_version then
    invalid_arg (Printf.sprintf "Dataplane.restore: state version %d (want %d)" v state_version);
  let t = create cfg in
  let s0 = C.get_i64 r in
  let s1 = C.get_i64 r in
  let s2 = C.get_i64 r in
  let s3 = C.get_i64 r in
  Sbt_crypto.Rng.set_state t.rng (s0, s1, s2, s3);
  t.next_ckpt_seq <- C.get_int r;
  let log_seq = C.get_int r in
  let records_produced = C.get_int r in
  let raw_bytes = C.get_int r in
  let compressed_bytes = C.get_int r in
  Sbt_attest.Log.restore_cursor t.log ~seq:log_seq ~records_produced ~raw_bytes
    ~compressed_bytes;
  t.ingest_width <- C.get_int r;
  t.invocations <- C.get_int r;
  t.events_ingested <- C.get_int r;
  t.bytes_ingested <- C.get_int r;
  t.backpressure_stalls <- C.get_int r;
  t.sheds <- C.get_int r;
  t.consecutive_sheds <- C.get_int r;
  t.compute_ns <- C.get_f64 r;
  t.mem_ns <- C.get_f64 r;
  t.crypto_ns <- C.get_f64 r;
  t.ingest_ns <- C.get_f64 r;
  let arrays =
    C.get_list r (fun r ->
        let ref_ = C.get_i64 r in
        let id = C.get_int r in
        let width = C.get_int r in
        let capacity = C.get_int r in
        let scope = scope_of_tag (C.get_u8 r) in
        let state_tag = C.get_u8 r in
        let length = C.get_int r in
        let n = C.get_u32 r in
        if n <> length * width then invalid_arg "Dataplane.restore: field count mismatch";
        let fields = Array.init n (fun _ -> C.get_i32 r) in
        (ref_, id, width, capacity, scope, state_tag, length, fields))
  in
  List.iter
    (fun (ref_, id, width, capacity, scope, state_tag, length, fields) ->
      let ua = Alloc.alloc_restored t.alloc ~id ~scope ~width ~capacity () in
      if length > 0 then begin
        ignore (U.reserve ua length);
        let buf = U.raw ua in
        Array.iteri (fun i v -> Bigarray.Array1.set buf i v) fields
      end;
      (match state_tag with
      | 0 -> ()
      | 1 -> Alloc.produce t.alloc ua
      | 2 -> invalid_arg "Dataplane.restore: retired array in checkpoint"
      | n -> invalid_arg (Printf.sprintf "Dataplane.restore: bad state tag %d" n));
      Opaque.restore t.refs ~ref_ ua;
      match t.cfg.namespace with
      | Some ns -> Hashtbl.replace ns.ns_owners ref_ ns.ns_tenant
      | None -> ())
    arrays;
  Alloc.force_next_id t.alloc ~next:(C.get_int r);
  let control = C.get_bytes r in
  if not (C.at_end r) then invalid_arg "Dataplane.restore: trailing bytes";
  { rt = t; control; ckpt_seq = seq; log_seq }

let call t req =
  match t.cfg.version with
  | Insecure -> dispatch t req
  | Full | Clear_ingress | Io_via_os -> (
      let entry =
        match req with R_invoke_fused _ -> Tz.Smc.Fused | _ -> Tz.Smc.Invoke
      in
      match Tz.Smc.call t.smc entry (Rpc_op req) with
      | Rr_op resp -> resp
      | Rr_unit | Rr_debug _ -> raise (Rejected "unexpected response"))

let debug_dump t =
  match t.cfg.version with
  | Insecure -> "insecure: no TEE"
  | Full | Clear_ingress | Io_via_os -> (
      match Tz.Smc.call t.smc Tz.Smc.Debug Rpc_debug with
      | Rr_debug s -> s
      | Rr_unit | Rr_op _ -> raise (Rejected "unexpected response"))

let finalize t =
  match t.cfg.version with
  | Insecure -> flush_log t
  | Full | Clear_ingress | Io_via_os ->
      ignore (Tz.Smc.call t.smc Tz.Smc.Finalize Rpc_finalize)

let uploaded_batches t = List.rev t.uploaded

let audit_records_for_test t =
  flush_log t;
  List.concat_map
    (fun b -> Sbt_attest.Log.open_batch ~key:t.cfg.egress_key b)
    (uploaded_batches t)

let open_result ~egress_key (r : sealed_result) =
  if Bytes.length r.tag > 0 && not (Sbt_crypto.Hmac.verify ~key:egress_key ~tag:r.tag r.cipher)
  then invalid_arg "Dataplane.open_result: MAC verification failed";
  let payload =
    if Bytes.length r.tag = 0 then Bytes.copy r.cipher
    else begin
      let p = Bytes.copy r.cipher in
      let ctr = Sbt_crypto.Ctr.create ~key:egress_key ~nonce:(egress_nonce r.window) in
      Sbt_crypto.Ctr.xcrypt ctr ~pos:0L p 0 (Bytes.length p);
      p
    end
  in
  Array.init r.events (fun i ->
      Array.init r.width (fun f -> Bytes.get_int32_le payload (4 * ((i * r.width) + f))))

(* Cloud-side correction merge: authenticate the winning correction,
   open it under its (window, gen) nonce, and re-seal the plaintext
   under the canonical egress nonce — after the merge, corrected output
   is byte-identical to what an in-order run seals for the window.
   Identity on unauthenticated (Insecure) results, which are plaintext
   under either nonce. *)
let reseal_correction ~egress_key ~gen (r : sealed_result) =
  if Bytes.length r.tag = 0 then r
  else begin
    if not (Sbt_crypto.Hmac.verify ~key:egress_key ~tag:r.tag r.cipher) then
      invalid_arg "Dataplane.reseal_correction: MAC verification failed";
    let p = Bytes.copy r.cipher in
    let open_ctr =
      Sbt_crypto.Ctr.create ~key:egress_key ~nonce:(correction_nonce ~window:r.window ~gen)
    in
    Sbt_crypto.Ctr.xcrypt open_ctr ~pos:0L p 0 (Bytes.length p);
    let seal_ctr = Sbt_crypto.Ctr.create ~key:egress_key ~nonce:(egress_nonce r.window) in
    Sbt_crypto.Ctr.xcrypt seal_ctr ~pos:0L p 0 (Bytes.length p);
    let tag = Sbt_crypto.Hmac.mac ~key:egress_key p in
    { r with cipher = p; tag }
  end

let stats (t : t) =
  {
    compute_ns = t.compute_ns;
    mem_ns = t.mem_ns;
    crypto_ns = t.crypto_ns;
    ingest_ns = t.ingest_ns;
    switch_pairs = t.cfg.platform.Tz.Platform.switch_pairs;
    modeled_switch_ns = t.cfg.platform.Tz.Platform.modeled_switch_ns;
    modeled_copy_ns = t.cfg.platform.Tz.Platform.modeled_copy_ns;
    invocations = t.invocations;
    events_ingested = t.events_ingested;
    bytes_ingested = t.bytes_ingested;
    backpressure_stalls = t.backpressure_stalls;
    sheds = t.sheds;
    smc_busy_rejections = Tz.Smc.busy_rejections t.smc;
  }

let live_refs t = Opaque.live_count t.refs
let pool_committed_bytes t = Pool.committed_bytes t.pool
let pool_high_water_bytes t = Pool.high_water_bytes t.pool
let reset_high_water t = Pool.reset_high_water t.pool
let allocator t = t.alloc
let set_now_ns t ns = t.now_ns <- ns
let now_ns t = t.now_ns

let metrics_quote t ~nonce =
  (* Fold the staging arena's umem.* metrics in just before the snapshot
     is sealed; [Slab.publish] pushes deltas, so repeated quotes never
     double-count. *)
  Slab.publish t.staging t.reg;
  let payload = Sbt_obs.Metrics.encode_snapshot t.reg in
  let measurement = Sbt_crypto.Sha256.digest payload in
  (payload, Sbt_attest.Quote.issue ~device_key:t.cfg.egress_key measurement ~nonce)

let set_ingest_width t w =
  if w <= 0 then invalid_arg "Dataplane.set_ingest_width: width must be positive";
  t.ingest_width <- w

let audit_log_stats t =
  ( Sbt_attest.Log.records_produced t.log,
    Sbt_attest.Log.raw_bytes t.log,
    Sbt_attest.Log.compressed_bytes t.log )
