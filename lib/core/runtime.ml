module D = Dataplane
module P = Sbt_prim.Primitive
module Trace = Sbt_sim.Trace
module Des = Sbt_sim.Des

type engine = [ `Des of int | `Domains of int ]

type config = {
  dp_config : D.config;
  cores : int;
  hints_enabled : bool;
  fuse : bool;
}

module Config = struct
  type t = config

  let make ?version ?(cores = 8) ?secure_mb ?cost ?platform ?alloc_mode
      ?sort_algorithm ?ingress_key ?egress_key ?audit_flush_every ?audit_enabled
      ?backpressure_threshold ?adaptive_backpressure ?seed ?fault_plan ?late_policy
      ?tracer ?(hints_enabled = true) ?(fuse = false) ?dp_config () =
    let dp_config =
      match dp_config with
      | Some c -> c
      | None ->
          D.Config.make ?version ~cores ?secure_mb ?cost ?platform ?alloc_mode
            ?sort_algorithm ?ingress_key ?egress_key ?audit_flush_every
            ?audit_enabled ?backpressure_threshold ?adaptive_backpressure ?seed
            ?fault_plan ?late_policy ?tracer ()
    in
    { dp_config; cores; hints_enabled; fuse }

  let with_dp_config dp_config cfg = { cfg with dp_config }
  let with_cores cores cfg = { cfg with cores }
  let with_hints hints_enabled cfg = { cfg with hints_enabled }
  let with_fuse fuse cfg = { cfg with fuse }

  let with_tracer tracer cfg =
    { cfg with dp_config = D.Config.with_tracer tracer cfg.dp_config }

  let with_fault_plan plan cfg =
    { cfg with dp_config = D.Config.with_fault_plan plan cfg.dp_config }
end

let default_config ?version ?cores () = Config.make ?version ?cores ()

module Loss = struct
  type t = { gaps_declared : int; batches_dropped : int; events_dropped : int }

  let none = { gaps_declared = 0; batches_dropped = 0; events_dropped = 0 }
  let v ~gaps_declared ~batches_dropped ~events_dropped =
    { gaps_declared; batches_dropped; events_dropped }

  let gaps_declared t = t.gaps_declared
  let batches_dropped t = t.batches_dropped
  let events_dropped t = t.events_dropped
  let is_lossless t = t = none

  let pp fmt t =
    Format.fprintf fmt "gaps=%d batches_dropped=%d events_dropped=%d"
      t.gaps_declared t.batches_dropped t.events_dropped
end

exception
  Crashed of {
    site : Sbt_fault.Fault.site;
    uploads : Sbt_attest.Log.batch list;  (** durable at crash, oldest first *)
    results : (int * Dataplane.sealed_result) list;  (** egressed before the crash *)
  }

(* A fleet-scheduled stop at a checkpoint boundary: like [Crash_reboot]
   (checkpoint durable, in-TEE state lost) but requested by the caller —
   the fleet runner uses it to fell a node at a given virtual-time beat.
   Internal: [Node.boot] turns it into an [outcome]. *)
exception
  Halted_at of {
    uploads : Sbt_attest.Log.batch list;
    results : (int * Dataplane.sealed_result) list;
    ckpt_seq : int;
    frame_idx : int;
    vt_ns : float;
  }

(* --- real-work replay ------------------------------------------------------

   Maps captured invocations ({!Dataplane.capture}) back onto the
   data-parallel kernels.  Replays write into throwaway host buffers: the
   recorded pass's outputs, audit bytes and pool accounting are already
   fixed, so the only thing a replay produces is honest wall-clock work
   for the executor's [`Work] mode to measure (DESIGN.md §9). *)

module PK = Sbt_prim.Par_kernel

let host_buf cells = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max 1 cells)
let cap_find params f = List.find_map f params

let cap_key_field params d =
  Option.value ~default:d (cap_find params (function D.P_key_field k -> Some k | _ -> None))

let cap_value_field params d =
  Option.value ~default:d (cap_find params (function D.P_value_field v -> Some v | _ -> None))

let cap_slice (_, n, buf) = { PK.buf; off = 0; len = n }

let replay_capture runner (c : D.capture) =
  let params = c.D.cap_params in
  (* Fused super-kernels carry their whole step chain in [cap_steps];
     [cap_op] is only the head of the chain, so dispatch on the chain
     first. *)
  match (c.D.cap_steps, c.D.cap_inputs) with
  | (_ :: _ as steps), [ ((w, _, _) as inp) ] -> (
      match Sbt_prim.Fused.width_after w steps with
      | Some dw ->
          PK.fused_raw ~runner ~w ~steps ~src:(cap_slice inp)
            ~alloc:(fun n -> (host_buf (n * max 1 dw), 0))
            ()
      | None -> ())
  | _ -> (
  match (c.D.cap_op, c.D.cap_inputs) with
  | P.Sort, [ ((w, n, _) as inp) ] ->
      let kf = cap_key_field params 0 in
      let dst = host_buf (n * w) in
      (match cap_find params (function D.P_value_field v -> Some v | _ -> None) with
      | Some vf ->
          (* Secondary order, as recorded: stable by value, then by key. *)
          PK.sort_raw ~runner ~w ~key_field:vf ~src:(cap_slice inp) ~dst_buf:dst ~dst_off:0 ();
          PK.sort_raw ~runner ~w ~key_field:kf
            ~src:{ PK.buf = dst; off = 0; len = n }
            ~dst_buf:dst ~dst_off:0 ()
      | None ->
          PK.sort_raw ~runner ~w ~key_field:kf ~src:(cap_slice inp) ~dst_buf:dst ~dst_off:0 ())
  | (P.Merge | P.Kway_merge), ((w, _, _) :: _ as inputs) ->
      let kf = cap_key_field params 0 in
      let total = List.fold_left (fun acc (_, n, _) -> acc + n) 0 inputs in
      let dst = host_buf (total * w) in
      PK.merge_raw ~runner ~w ~key_field:kf
        ~runs:(Array.of_list (List.map cap_slice inputs))
        ~dst_buf:dst ~dst_off:0 ()
  | P.Segment, [ ((w, _, _) as inp) ] ->
      let ws =
        match cap_find params (function D.P_window_size v -> Some v | _ -> None) with
        | Some v -> v
        | None -> 1
      in
      let tf =
        Option.value ~default:2 (cap_find params (function D.P_ts_field f -> Some f | _ -> None))
      in
      let slide =
        Option.value ~default:ws (cap_find params (function D.P_slide v -> Some v | _ -> None))
      in
      PK.segment_raw ~runner ~w ~ts_field:tf ~window_size:ws ~slide ~src:(cap_slice inp)
        ~alloc:(fun _win count -> (host_buf (count * w), 0))
        ()
  | (P.Sum_per_key | P.Count_per_key | P.Avg_per_key), [ ((w, _, _) as inp) ] ->
      let kf = cap_key_field params 0 in
      let vf = cap_value_field params 1 in
      let agg =
        match c.D.cap_op with
        | P.Sum_per_key -> PK.Agg_sum
        | P.Count_per_key -> PK.Agg_count
        | _ -> PK.Agg_avg
      in
      PK.per_key_raw ~runner ~w ~key_field:kf ~value_field:vf ~agg ~src:(cap_slice inp)
        ~alloc:(fun groups -> (host_buf (groups * 2), 0))
        ()
  | P.Filter_band, ((w, _, _) as inp) :: rest ->
      let f = cap_value_field params 1 in
      let lo, hi =
        match rest with
        | [ (tw, tn, tbuf) ] when tn > 0 && (tw = 1 || tw = 2) ->
            (* Runtime threshold input, as recorded: strictly above. *)
            (Int32.add tbuf.{0} 1l, Int32.max_int)
        | _ ->
            ( Option.value ~default:Int32.min_int
                (cap_find params (function D.P_lo v -> Some v | _ -> None)),
              Option.value ~default:Int32.max_int
                (cap_find params (function D.P_hi v -> Some v | _ -> None)) )
      in
      PK.filter_band_raw ~runner ~w ~field:f ~lo ~hi ~src:(cap_slice inp)
        ~alloc:(fun n -> (host_buf (n * w), 0))
        ()
  | P.Select, [ ((w, _, _) as inp) ] ->
      let f = cap_value_field params 0 in
      let v =
        Option.value ~default:0l (cap_find params (function D.P_lo v -> Some v | _ -> None))
      in
      PK.filter_band_raw ~runner ~w ~field:f ~lo:v ~hi:v ~src:(cap_slice inp)
        ~alloc:(fun n -> (host_buf (n * w), 0))
        ()
  | P.Project, [ ((w, n, _) as inp) ] -> (
      match cap_find params (function D.P_fields f -> Some f | _ -> None) with
      | Some fields ->
          let dst = host_buf (n * Array.length fields) in
          PK.project_raw ~runner ~w ~fields ~src:(cap_slice inp) ~dst_buf:dst ~dst_off:0 ()
      | None -> ())
  | P.Concat, ((w, _, _) :: _ as inputs) ->
      let total = List.fold_left (fun acc (_, n, _) -> acc + n) 0 inputs in
      let dst = host_buf (total * w) in
      PK.concat_raw ~runner ~w
        ~inputs:(Array.of_list (List.map cap_slice inputs))
        ~dst_buf:dst ~dst_off:0 ()
  | _ -> () (* shape the replayer doesn't model: contributes no work *))

type run_result = {
  results : (int * D.sealed_result) list;
  corrections : (int * int * D.sealed_result) list;
      (* (window, gen, sealed) — superseding re-emissions under the
         retract-and-reemit late policy, in emission order *)
  trace : Trace.t;
  dp_stats : D.stats;
  pool_high_water_bytes : int;
  mem_samples_bytes : int list;
  audit : Sbt_attest.Log.batch list;
  verifier_spec : Sbt_attest.Verifier.spec;
  makespan_ns : float;
  total_events : int;
  tasks_executed : int;
  live_refs_after : int;
  loss : Loss.t;
  registry : Sbt_obs.Metrics.t;
  tee_metrics : bytes;
  tee_quote : Sbt_attest.Quote.quote;
  exec : Sbt_exec.Executor.report option;
  work : (int -> Sbt_exec.Executor.work_fn option) option;
}

(* Per-window control state. *)
type win_state = {
  mutable ready : (int * int64) list; (* (stream, ref), newest first *)
  mutable dep_tasks : (Des.task * int) list; (* tasks (and trace indices) preceding the close *)
  mutable last_ready : (int * int64) list; (* per-stream chain anchors for consumed-after hints *)
  mutable pending_segments : (int * int64) Queue.t option; (* (stream, ref) awaiting stages *)
  mutable closed : bool;
}

let new_win () =
  { ready = []; dep_tasks = []; last_ready = []; pending_segments = None; closed = false }

let pending_q ws =
  match ws.pending_segments with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      ws.pending_segments <- Some q;
      q

(* --- checkpointed control state --------------------------------------------

   The control plane's resume coordinates, carried as the opaque [control]
   section of a sealed checkpoint: the data plane seals it without
   interpreting it, and only a successfully unsealed checkpoint can hand
   it back.  References inside window states are the same opaque 64-bit
   values the restored data plane re-binds, so the rebuilt control state
   points at exactly the arrays it did before the crash. *)

module C = Sbt_recovery.Codec

type win_ckpt = {
  wk_win : int;
  wk_ready : (int * int64) list;
  wk_last_ready : (int * int64) list;
  wk_pending : (int * int64) list; (* queue contents, front first *)
}

type ctl_state = {
  ck_frame_idx : int; (* absolute index of the next frame to ingest *)
  ck_base_ns : float; (* virtual time the next segment starts at *)
  ck_next_window_to_close : int;
  ck_total_events : int;
  ck_cum_events : int;
  ck_gaps_declared : int;
  ck_batches_dropped : int;
  ck_events_dropped : int;
  ck_wm_audit_ref : int;
  ck_expected_seq : (int * int) list; (* per-stream next expected frame seq *)
  ck_windows : win_ckpt list; (* open windows only, ascending *)
}

let put_sref w (s, r) =
  C.int_ w s;
  C.i64 w r

let get_sref r =
  let s = C.get_int r in
  let v = C.get_i64 r in
  (s, v)

let encode_control st =
  let w = C.writer () in
  C.int_ w st.ck_frame_idx;
  C.f64 w st.ck_base_ns;
  C.int_ w st.ck_next_window_to_close;
  C.int_ w st.ck_total_events;
  C.int_ w st.ck_cum_events;
  C.int_ w st.ck_gaps_declared;
  C.int_ w st.ck_batches_dropped;
  C.int_ w st.ck_events_dropped;
  C.int_ w st.ck_wm_audit_ref;
  C.list_ w
    (fun w (s, n) ->
      C.int_ w s;
      C.int_ w n)
    st.ck_expected_seq;
  C.list_ w
    (fun w wk ->
      C.int_ w wk.wk_win;
      C.list_ w put_sref wk.wk_ready;
      C.list_ w put_sref wk.wk_last_ready;
      C.list_ w put_sref wk.wk_pending)
    st.ck_windows;
  C.contents w

let decode_control blob =
  let r = C.reader blob in
  let ck_frame_idx = C.get_int r in
  let ck_base_ns = C.get_f64 r in
  let ck_next_window_to_close = C.get_int r in
  let ck_total_events = C.get_int r in
  let ck_cum_events = C.get_int r in
  let ck_gaps_declared = C.get_int r in
  let ck_batches_dropped = C.get_int r in
  let ck_events_dropped = C.get_int r in
  let ck_wm_audit_ref = C.get_int r in
  let ck_expected_seq =
    C.get_list r (fun r ->
        let s = C.get_int r in
        let n = C.get_int r in
        (s, n))
  in
  let ck_windows =
    C.get_list r (fun r ->
        let wk_win = C.get_int r in
        let wk_ready = C.get_list r get_sref in
        let wk_last_ready = C.get_list r get_sref in
        let wk_pending = C.get_list r get_sref in
        { wk_win; wk_ready; wk_last_ready; wk_pending })
  in
  if not (C.at_end r) then invalid_arg "Runtime.decode_control: trailing bytes";
  {
    ck_frame_idx;
    ck_base_ns;
    ck_next_window_to_close;
    ck_total_events;
    ck_cum_events;
    ck_gaps_declared;
    ck_batches_dropped;
    ck_events_dropped;
    ck_wm_audit_ref;
    ck_expected_seq;
    ck_windows;
  }

(* --- the recording loop ----------------------------------------------------

   Identical under both engines: the observable outputs (sealed results,
   audit bytes, verifier verdicts) come from this serial, DES-driven pass.
   [`Domains n] adds a real-parallel measurement phase afterwards but never
   feeds anything back into the observables — that separation is what makes
   them byte-identical across engines and domain counts. *)

let record ~recording_cores ?(capture = false) ?ckpt_every ?on_checkpoint ?resume
    ?(frame_offset = 0) ?registry ?halt_after_window cfg (pipe : Pipeline.t) frames =
  let dp, resume_ctl =
    match resume with
    | None -> (D.create cfg.dp_config, None)
    | Some (rt, ctl) -> (rt, Some ctl)
  in
  let ctl_or v f = match resume_ctl with None -> v | Some c -> f c in
  (* Retract-and-reemit re-runs the window plan over {original + late}
     segments, so those segments must reach the plan unmodified; batch
     stages would have consumed them long before the close. *)
  if cfg.dp_config.D.late_policy = D.Retract_reemit && pipe.Pipeline.batch_ops <> [] then
    invalid_arg "Runtime: retract-and-reemit needs a pipeline with no batch stages";
  D.set_ingest_width dp pipe.Pipeline.schema.Event.width;
  let platform = cfg.dp_config.D.platform in
  let cost = platform.Sbt_tz.Platform.cost in
  let tracer = cfg.dp_config.D.tracer in
  (* The DES inherits the platform's host_scale so that at host_scale 0
     the whole schedule — and every audit timestamp derived from it — is
     free of host noise (what the observer-effect tests rely on). *)
  let fresh_des () =
    Des.create ?tracer ~host_scale:cost.Sbt_tz.Cost_model.host_scale
      ~cores:recording_cores ()
  in
  (* With checkpointing, the run is split into segments at checkpoint
     boundaries: each segment drains its own DES, and the next segment's
     tasks are released no earlier than the accumulated makespan.  The
     segmentation — hence the schedule, hence every audit timestamp — is a
     function of [ckpt_every] alone, so a crashed-and-recovered run and an
     uninterrupted run with the same interval produce identical bytes. *)
  let des = ref (fresh_des ()) in
  let base_ns = ref (ctl_or 0.0 (fun c -> c.ck_base_ns)) in
  let tasks_total = ref 0 in
  (* Deterministic crash injection: the fault plan names a site and how
     many control tasks may complete this boot before it fires. *)
  let crash_arm = Sbt_fault.Fault.crash_after cfg.dp_config.D.fault_plan in
  let executed_tasks = ref 0 in
  (* Normal-world registry: always on (counting is deterministic and
     cheap); the tracer alone is optional.  A caller-supplied (possibly
     scoped) registry lets M fleet nodes share one store. *)
  let reg = match registry with Some r -> r | None -> Sbt_obs.Metrics.create () in
  let c_frames = Sbt_obs.Metrics.counter reg "control.frames" in
  let c_gaps = Sbt_obs.Metrics.counter reg "control.gaps_declared" in
  let c_batches_dropped = Sbt_obs.Metrics.counter reg "control.batches_dropped" in
  let c_events_dropped = Sbt_obs.Metrics.counter reg "control.events_dropped" in
  let c_sheds = Sbt_obs.Metrics.counter reg "control.sheds_observed" in
  let c_busy = Sbt_obs.Metrics.counter reg "control.smc_busy" in
  let c_closes = Sbt_obs.Metrics.counter reg "control.windows_closed" in
  let h_stall = Sbt_obs.Metrics.histogram reg "control.ingest_stall_ns" in
  (* Control-plane instants ride the secure clock (set by the enclosing
     DES task), so they are virtual-time like everything else. *)
  let instant ?args name =
    match tracer with
    | None -> ()
    | Some tr ->
        Sbt_obs.Tracer.instant tr ?args ~pid:0 ~tid:0 ~cat:"control" ~name
          ~ts_ns:(D.now_ns dp) ()
  in
  (* Trace assembly: one pending node per DES task, costs filled after run. *)
  let pending_nodes :
      (string * Des.task * int list * int option * Trace.role) list ref =
    ref []
  in
  let node_count = ref 0 in
  (* Heavy-kernel captures, in invocation order; [node_caps] maps a node's
     schedule index to its [c0, c1) slice of that sequence so the executor
     can replay exactly the kernels each task ran. *)
  let captures = ref [] in
  let ncap = ref 0 in
  let node_caps : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  if capture then
    D.set_capture dp
      (Some
         (fun c ->
           captures := c :: !captures;
           incr ncap));
  let windows : (int, win_state) Hashtbl.t = Hashtbl.create 64 in
  (* Open windows from the checkpoint: same ready/last-ready/pending
     structure (references re-bound by the restored data plane), empty
     dep-task lists — the checkpoint boundary drained its segment, so
     there is nothing scheduled to depend on. *)
  List.iter
    (fun wk ->
      let q =
        if wk.wk_pending = [] then None
        else begin
          let q = Queue.create () in
          List.iter (fun sr -> Queue.add sr q) wk.wk_pending;
          Some q
        end
      in
      Hashtbl.replace windows wk.wk_win
        {
          ready = wk.wk_ready;
          dep_tasks = [];
          last_ready = wk.wk_last_ready;
          pending_segments = q;
          closed = false;
        })
    (ctl_or [] (fun c -> c.ck_windows));
  let win w =
    match Hashtbl.find_opt windows w with
    | Some ws -> ws
    | None ->
        let ws = new_win () in
        Hashtbl.replace windows w ws;
        ws
  in
  let results = ref [] in
  let corrections = ref [] in
  (* Under retract-and-reemit, plan inputs and intermediates stay live
     past the close (a later correction re-runs the plan over them). *)
  let protect = cfg.dp_config.D.late_policy = D.Retract_reemit in
  let correction_gen : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let max_wm_seen = ref 0 in
  let mem_samples = ref [] in
  (* Wrap a work function with secure-clock propagation and modeled-cost
     extraction (world switches, boundary copies, crypto scaling, stalls). *)
  let add_task ?(deps = []) ?arrival ?(role = Trace.Plain) ~label body =
    let idx = !node_count in
    incr node_count;
    let work ~start_ns =
      (match crash_arm with
      | Some (Sbt_fault.Fault.Crash_control, after) when !executed_tasks >= after ->
          raise (Sbt_fault.Fault.Crash Sbt_fault.Fault.Crash_control)
      | _ -> ());
      D.set_now_ns dp start_ns;
      let c0 = !ncap in
      let s0 = dp |> D.stats in
      let r = body () in
      let s1 = dp |> D.stats in
      incr executed_tasks;
      if !ncap > c0 then Hashtbl.replace node_caps idx (c0, !ncap);
      let switch_delta = s1.D.modeled_switch_ns -. s0.D.modeled_switch_ns in
      let copy_delta = s1.D.modeled_copy_ns -. s0.D.modeled_copy_ns in
      let crypto_delta = s1.D.crypto_ns -. s0.D.crypto_ns in
      let crypto_adjust =
        crypto_delta *. (cost.Sbt_tz.Cost_model.crypto_scale -. 1.0)
        *. cost.Sbt_tz.Cost_model.host_scale
      in
      switch_delta +. copy_delta +. crypto_adjust +. r
    in
    (* Segments start at the accumulated virtual time; within the first
       (or only) segment this is 0 and scheduling is unconstrained, as
       before checkpointing existed. *)
    let not_before = !base_ns in
    let deps_tasks = List.map fst deps in
    let task = Des.schedule !des ~deps:deps_tasks ~not_before ~label ~work () in
    pending_nodes := (label, task, List.map snd deps, arrival, role) :: !pending_nodes;
    (task, idx)
  in
  (* --- batch-stage execution -------------------------------------------- *)
  let hint_for ws stream =
    if not cfg.hints_enabled then []
    else
      match List.assoc_opt stream ws.last_ready with
      | Some r -> [ D.H_after r ]
      | None -> [ D.H_parallel ]
  in
  let set_last_ready ws stream r =
    ws.last_ready <- (stream, r) :: List.remove_assoc stream ws.last_ready
  in
  (* The batch-stage plan: lowered once per run, fused when the control
     plane asked for it.  With fusion off the plan is exactly the declared
     op list (plus the window barrier, which executes nothing), so the
     default path is byte-identical to the unfused runtime. *)
  let batch_plan =
    let lowered = Ir.lower pipe in
    if cfg.fuse then Ir.fuse lowered else lowered
  in
  let run_batch_stages w stream seg_ref =
    let ws = win w in
    let r = ref seg_ref in
    List.iter
      (fun node ->
        match node with
        | Ir.N_window -> ()
        | Ir.N_fused steps -> (
            let hints = hint_for ws stream in
            match
              D.call dp
                (D.R_invoke_fused
                   { steps; inputs = [ !r ]; trigger = None; hints; retire_inputs = true })
            with
            | D.Rs_outputs [ out ] -> r := out.D.ref_
            | _ -> failwith "control: unexpected fused batch-stage response")
        | Ir.N_op bop -> (
            let hints = hint_for ws stream in
            let params, op =
              match bop with
              | Pipeline.B_sort { key_field; secondary_value } ->
                  let p = [ D.P_key_field key_field ] in
                  let p =
                    match secondary_value with Some v -> D.P_value_field v :: p | None -> p
                  in
                  (p, P.Sort)
              | Pipeline.B_filter_band { field; lo; hi } ->
                  ([ D.P_value_field field; D.P_lo lo; D.P_hi hi ], P.Filter_band)
              | Pipeline.B_project fields -> ([ D.P_fields fields ], P.Project)
              | Pipeline.B_select { field; value } ->
                  ([ D.P_value_field field; D.P_lo value ], P.Select)
              | Pipeline.B_shift_key { field; shift } ->
                  ([ D.P_key_field field; D.P_shift shift ], P.Shift_key)
            in
            match
              D.call dp
                (D.R_invoke
                   { op; inputs = [ !r ]; trigger = None; params; hints; retire_inputs = true })
            with
            | D.Rs_outputs [ out ] -> r := out.D.ref_
            | D.Rs_outputs _ | D.Rs_watermark _ | D.Rs_egress _ | D.Rs_ingested _
            | D.Rs_checkpoint _ ->
                failwith "control: unexpected batch-stage response"))
      batch_plan;
    ws.ready <- (stream, !r) :: ws.ready;
    set_last_ready ws stream !r
  in
  (* --- frame loop -------------------------------------------------------- *)
  (* Certified UDFs ship with the pipeline install. *)
  List.iter
    (fun (udf, cert) ->
      match D.call dp (D.R_install_udf { udf; cert }) with
      | D.Rs_outputs [] -> ()
      | _ -> failwith "control: unexpected UDF install response")
    pipe.Pipeline.udfs;
  let cum_events = ref (ctl_or 0 (fun c -> c.ck_cum_events)) in
  let total_events = ref (ctl_or 0 (fun c -> c.ck_total_events)) in
  let next_window_to_close = ref (ctl_or 0 (fun c -> c.ck_next_window_to_close)) in
  let wm_audit_ref = ref (ctl_or 0 (fun c -> c.ck_wm_audit_ref)) in
  (* --- graceful degradation --------------------------------------------- *)
  let plan = cfg.dp_config.D.fault_plan in
  let gaps_declared = ref (ctl_or 0 (fun c -> c.ck_gaps_declared)) in
  let batches_dropped = ref (ctl_or 0 (fun c -> c.ck_batches_dropped)) in
  let events_dropped = ref (ctl_or 0 (fun c -> c.ck_events_dropped)) in
  let declare_gap ~stream ~seq ~events ~windows ~reason =
    match D.call dp (D.R_declare_gap { stream; seq; events; windows; reason }) with
    | D.Rs_outputs [] ->
        incr gaps_declared;
        Sbt_obs.Metrics.incr c_gaps;
        instant "gap"
          ~args:
            [
              ("stream", Sbt_obs.Tracer.Int stream);
              ("seq", Sbt_obs.Tracer.Int seq);
              ("events", Sbt_obs.Tracer.Int events);
            ]
    | _ -> failwith "control: unexpected gap response"
  in
  (* Next expected frame seq per stream: a jump means the link dropped
     frames, which the edge must declare before ingesting past the hole —
     otherwise the verifier reads the hole as tampering. *)
  let expected_seq : (int, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (s, n) -> Hashtbl.replace expected_seq s n)
    (ctl_or [] (fun c -> c.ck_expected_seq));
  let link_holes ~stream ~seq =
    let exp = Option.value ~default:0 (Hashtbl.find_opt expected_seq stream) in
    Hashtbl.replace expected_seq stream (max (seq + 1) exp);
    if seq > exp then List.init (seq - exp) (fun i -> exp + i) else []
  in
  (* Ingest with bounded retry against transient SMC refusals.  Returns
     [Ok (ref, stall)] or [Error (stall, reason)]; every failure path is a
     declared gap, never an escaped exception. *)
  let ingest_with_retry ~payload ~encrypted ~stream ~seq ~mac =
    let rec attempt n stall =
      match D.call dp (D.R_ingest_events { payload; encrypted; stream; seq; mac }) with
      | D.Rs_ingested { out; stalled_ns } -> Ok (out, stall +. stalled_ns)
      | D.Rs_outputs _ | D.Rs_watermark _ | D.Rs_egress _ | D.Rs_checkpoint _ ->
          failwith "control: unexpected ingest response"
      | exception Sbt_tz.Smc.Entry_busy _ ->
          Sbt_obs.Metrics.incr c_busy;
          if n < plan.Sbt_fault.Fault.retry_budget then
            let backoff = Sbt_fault.Fault.backoff_ns plan ~stream ~seq ~attempt:(n + 1) in
            attempt (n + 1) (stall +. backoff)
          else Error (stall, Sbt_attest.Record.Smc_unavailable)
      | exception D.Rejected _ -> Error (stall, Sbt_attest.Record.Corrupt_ingress)
      | exception D.Overloaded { stalled_ns } ->
          Sbt_obs.Metrics.incr c_sheds;
          instant "shed"
            ~args:[ ("stream", Sbt_obs.Tracer.Int stream); ("seq", Sbt_obs.Tracer.Int seq) ];
          Error (stall +. stalled_ns, Sbt_attest.Record.Pool_pressure)
    in
    attempt 0 0.0
  in
  (* Windows egress in watermark order: each close depends on the previous
     one, which also serializes any cross-window operator state. *)
  let last_close = ref None in
  (* --- checkpointing ------------------------------------------------------ *)
  let last_ckpt_window = ref !next_window_to_close in
  let crashed site =
    raise (Crashed { site; uploads = D.uploaded_batches dp; results = List.rev !results })
  in
  let drain_segment () =
    (try Des.run !des with Sbt_fault.Fault.Crash site -> crashed site);
    tasks_total := !tasks_total + Des.tasks_executed !des;
    base_ns := Float.max !base_ns (Des.makespan_ns !des)
  in
  (* The shared window-plan execution path, used by ordinary closes,
     session closes and retract-and-reemit corrections.  Under the
     protecting policy every invocation runs with [retire_inputs:false]
     and the produced intermediates are swept after sealing — minus the
     result (retired by the seal itself) and anything the plan retired
     explicitly — so the window's ready segments outlive the close and a
     later correction can re-run the plan over {originals + late}. *)
  let run_plan_and_seal ~w ~ready ~seal =
    let trigger_used = ref false in
    let produced = ref [] in
    let explicit = ref [] in
    let plain_retire r =
      match D.call dp (D.R_retire { input = r }) with
      | D.Rs_outputs [] -> ()
      | _ -> failwith "control: unexpected retire response"
    in
    let invoke ?(params = []) ?(hints = []) ?(retire = true) op inputs =
      let trigger =
        if !trigger_used then None
        else begin
          trigger_used := true;
          Some !wm_audit_ref
        end
      in
      let hints = if cfg.hints_enabled && hints = [] then [] else hints in
      match
        D.call dp
          (D.R_invoke
             { op; inputs; trigger; params; hints; retire_inputs = retire && not protect })
      with
      | D.Rs_outputs outs ->
          let refs = List.map (fun (o : D.output) -> o.D.ref_) outs in
          if protect then produced := refs @ !produced;
          refs
      | D.Rs_watermark _ | D.Rs_egress _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
          failwith "control: unexpected invoke response"
    in
    let invoke_udf ?(hints = []) ?(retire = true) ?(state_output = false) ~name ~version
        ~value_field inputs =
      let trigger =
        if !trigger_used then None
        else begin
          trigger_used := true;
          Some !wm_audit_ref
        end
      in
      match
        D.call dp
          (D.R_invoke_udf
             {
               name;
               version;
               inputs;
               trigger;
               value_field;
               hints;
               retire_inputs = retire && not protect;
               state_output;
             })
      with
      | D.Rs_outputs outs ->
          let refs = List.map (fun (o : D.output) -> o.D.ref_) outs in
          if protect then produced := refs @ !produced;
          refs
      | D.Rs_watermark _ | D.Rs_egress _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
          failwith "control: unexpected UDF invoke response"
    in
    let retire_ref r =
      plain_retire r;
      if protect then explicit := r :: !explicit
    in
    let ctx = { Pipeline.window = w; ready; invoke; invoke_udf; retire_ref } in
    (* Sample steady memory while the window's data is still live
       (before the plan consumes it). *)
    mem_samples := D.pool_committed_bytes dp :: !mem_samples;
    let result_ref = pipe.Pipeline.plan ctx in
    seal result_ref;
    if protect then
      List.iter
        (fun r -> if r <> result_ref && not (List.mem r !explicit) then plain_retire r)
        (List.rev !produced)
  in
  let run_close w ws =
    Sbt_obs.Metrics.incr c_closes;
    instant "window-close" ~args:[ ("win", Sbt_obs.Tracer.Int w) ];
    if ws.ready = [] then
      (* Every batch of this window was lost and declared as a gap:
         degrade by producing no result rather than invoking the plan on
         nothing. *)
      0.0
    else begin
      run_plan_and_seal ~w ~ready:(List.rev ws.ready) ~seal:(fun result_ref ->
          match D.call dp (D.R_egress { input = result_ref; window = w }) with
          | D.Rs_egress sealed -> results := (w, sealed) :: !results
          | D.Rs_outputs _ | D.Rs_watermark _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
              failwith "control: unexpected egress response");
      0.0
    end
  in
  let take_checkpoint ~next_frame_idx ~watermark =
    (* Quiesce: drain everything scheduled so far, then start a fresh DES
       for the next segment.  Cross-segment orderings (previous close,
       stages feeding a close) are enforced by [base_ns] rather than task
       dependencies, so the drained task handles can be dropped. *)
    drain_segment ();
    des := fresh_des ();
    Hashtbl.iter (fun _ ws -> ws.dep_tasks <- []) windows;
    last_close := None;
    D.set_now_ns dp !base_ns;
    let open_windows =
      Hashtbl.fold
        (fun w ws acc -> if w >= !next_window_to_close then (w, ws) :: acc else acc)
        windows []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let control =
      encode_control
        {
          ck_frame_idx = next_frame_idx;
          ck_base_ns = !base_ns;
          ck_next_window_to_close = !next_window_to_close;
          ck_total_events = !total_events;
          ck_cum_events = !cum_events;
          ck_gaps_declared = !gaps_declared;
          ck_batches_dropped = !batches_dropped;
          ck_events_dropped = !events_dropped;
          ck_wm_audit_ref = !wm_audit_ref;
          ck_expected_seq =
            Hashtbl.fold (fun s n acc -> (s, n) :: acc) expected_seq []
            |> List.sort compare;
          ck_windows =
            List.map
              (fun (w, ws) ->
                {
                  wk_win = w;
                  wk_ready = ws.ready;
                  wk_last_ready = ws.last_ready;
                  wk_pending =
                    (match ws.pending_segments with
                    | None -> []
                    | Some q -> List.of_seq (Queue.to_seq q));
                })
              open_windows;
        }
    in
    let ckpt_seq =
      match D.call dp (D.R_checkpoint { control; watermark }) with
      | D.Rs_checkpoint { blob; seq } ->
          last_ckpt_window := !next_window_to_close;
          instant "checkpoint"
            ~args:[ ("seq", Sbt_obs.Tracer.Int seq); ("bytes", Sbt_obs.Tracer.Int (Bytes.length blob)) ];
          (match on_checkpoint with
          | Some f -> f ~blob ~seq ~frame_idx:next_frame_idx
          | None -> ());
          seq
      | _ -> failwith "control: unexpected checkpoint response"
    in
    (* A reboot crash is modeled at the boundary where TEE state is lost
       with the checkpoint already durable: right after persisting it. *)
    (match crash_arm with
    | Some (Sbt_fault.Fault.Crash_reboot, after) when !executed_tasks >= after ->
        crashed Sbt_fault.Fault.Crash_reboot
    | _ -> ());
    (* A scheduled halt stops the node at the same durable boundary: the
       checkpoint just persisted is exactly where a resume (or a handoff
       recipient) picks up, so the stitched run stays byte-identical. *)
    match halt_after_window with
    | Some h when !next_window_to_close > h ->
        raise
          (Halted_at
             {
               uploads = D.uploaded_batches dp;
               results = List.rev !results;
               ckpt_seq;
               frame_idx = next_frame_idx;
               vt_ns = !base_ns;
             })
    | Some _ | None -> ()
  in
  List.iteri
    (fun frame_i frame ->
      match frame with
      | Sbt_net.Frame.Events
          { seq; stream; events; windows = frame_windows; payload; encrypted; mac } ->
          let arrival = !cum_events + events in
          cum_events := arrival;
          total_events := !total_events + events;
          Sbt_obs.Metrics.incr c_frames;
          let holes = link_holes ~stream ~seq in
          let batch_ref = ref 0L in
          let batch_ok = ref false in
          let ingest_task, ingest_idx =
            add_task ~arrival
              ~label:(Printf.sprintf "ingest:%d.%d" stream seq)
              (fun () ->
                (* Frames the link lost before this one: declared first so
                   the audit log vouches for the hole in stream order. *)
                List.iter
                  (fun missing ->
                    incr batches_dropped;
                    Sbt_obs.Metrics.incr c_batches_dropped;
                    declare_gap ~stream ~seq:missing ~events:0 ~windows:[]
                      ~reason:Sbt_attest.Record.Link_loss)
                  holes;
                match ingest_with_retry ~payload ~encrypted ~stream ~seq ~mac with
                | Ok (out, stalled_ns) ->
                    batch_ref := out.D.ref_;
                    batch_ok := true;
                    Sbt_obs.Metrics.observe h_stall stalled_ns;
                    stalled_ns
                | Error (stalled_ns, reason) ->
                    (* Past the retry budget / rejected / shed: degrade by
                       dropping the batch and leaving a signed gap. *)
                    incr batches_dropped;
                    Sbt_obs.Metrics.incr c_batches_dropped;
                    events_dropped := !events_dropped + events;
                    Sbt_obs.Metrics.add c_events_dropped events;
                    declare_gap ~stream ~seq ~events ~windows:frame_windows ~reason;
                    Sbt_obs.Metrics.observe h_stall stalled_ns;
                    stalled_ns)
          in
          (* Windows already closed when this batch was scheduled: data for
             them is late (the source broke the watermark contract).  The
             control plane drops it - and precisely because the drop leaves
             the segment unconsumed in the audit log, the cloud verifier
             flags the incident. *)
          let closed_below = !next_window_to_close in
          let windowing_task, windowing_idx =
            add_task
              ~deps:[ (ingest_task, ingest_idx) ]
              ~label:(Printf.sprintf "windowing:%d.%d" stream seq)
              (fun () ->
                if not !batch_ok then 0.0
                else begin
                (match
                   D.call dp
                     (D.R_invoke
                        {
                          op = P.Segment;
                          inputs = [ !batch_ref ];
                          trigger = None;
                          params =
                            ([
                               D.P_window_size pipe.Pipeline.window_size_ticks;
                               D.P_slide pipe.Pipeline.window_slide_ticks;
                               D.P_ts_field pipe.Pipeline.schema.Event.ts_field;
                             ]
                            @
                            match Pipeline.session_gap pipe with
                            | Some g -> [ D.P_session_gap g ]
                            | None -> []);
                          hints = (if cfg.hints_enabled then [ D.H_parallel ] else []);
                          retire_inputs = true;
                        })
                 with
                | D.Rs_outputs outs ->
                    List.iter
                      (fun (o : D.output) ->
                        if o.D.win < closed_below then begin
                          match cfg.dp_config.D.late_policy with
                          | D.Silent -> (
                              (* late segment: reclaim its memory, leave its
                                 audit trail unconsumed — precisely because
                                 the drop is silent, the cloud verifier
                                 flags the incident *)
                              match D.call dp (D.R_retire { input = o.D.ref_ }) with
                              | D.Rs_outputs [] -> ()
                              | _ -> failwith "control: unexpected retire response")
                          | D.Drop_declare -> (
                              (* the drop becomes a signed Late_drop audit
                                 fact: declared degradation, not silence *)
                              match
                                D.call dp
                                  (D.R_late_drop { input = o.D.ref_; window = o.D.win })
                              with
                              | D.Rs_outputs [] -> ()
                              | _ -> failwith "control: unexpected late-drop response")
                          | D.Retract_reemit ->
                              (* the late segment joins the closed window's
                                 (still live) ready list; the correction
                                 task scheduled below re-runs the plan *)
                              let ws = win o.D.win in
                              ws.ready <- (stream, o.D.ref_) :: ws.ready;
                              set_last_ready ws stream o.D.ref_
                        end
                        else begin
                          let ws = win o.D.win in
                          if pipe.Pipeline.batch_ops = [] then begin
                            ws.ready <- (stream, o.D.ref_) :: ws.ready;
                            set_last_ready ws stream o.D.ref_
                          end
                          else Queue.add (stream, o.D.ref_) (pending_q ws)
                        end)
                      outs
                | D.Rs_watermark _ | D.Rs_egress _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
                    failwith "control: unexpected windowing response");
                0.0
                end)
          in
          List.iter
            (fun w ->
              let ws = win w in
              if pipe.Pipeline.batch_ops = [] then
                (* Segments become ready inside the windowing task. *)
                ws.dep_tasks <- (windowing_task, windowing_idx) :: ws.dep_tasks
              else begin
                let stage_task, stage_idx =
                  add_task
                    ~deps:[ (windowing_task, windowing_idx) ]
                    ~label:(Printf.sprintf "stage:w%d.%d.%d" w stream seq)
                    (fun () ->
                      let ws = win w in
                      (match ws.pending_segments with
                      | Some q when not (Queue.is_empty q) ->
                          let stream', seg = Queue.pop q in
                          run_batch_stages w stream' seg
                      | Some _ | None -> () (* window predicted but empty in this batch *));
                      0.0)
                in
                ws.dep_tasks <- (stage_task, stage_idx) :: ws.dep_tasks
              end)
            frame_windows;
          (* Retract-and-reemit: windows this frame touches that already
             closed get a correction scheduled right here, at
             graph-construction time, from the frame's own window
             metadata.  The correction chains behind the windowing task
             (which routes the late segments into the window's ready
             list) and the previous close/correction, so generations stay
             ordered and contiguous. *)
          if protect then
            List.filter (fun w -> w < closed_below) frame_windows
            |> List.sort_uniq compare
            |> List.iter (fun w ->
                   let deps =
                     (windowing_task, windowing_idx) :: Option.to_list !last_close
                   in
                   let corr_task, corr_idx =
                     add_task ~deps ~role:(Trace.Egress_of w)
                       ~label:(Printf.sprintf "correct:w%d" w)
                       (fun () ->
                         match Hashtbl.find_opt windows w with
                         | None -> 0.0 (* the late batch was lost: nothing to correct *)
                         | Some ws when ws.ready = [] -> 0.0
                         | Some ws ->
                             let gen =
                               1 + Option.value ~default:0 (Hashtbl.find_opt correction_gen w)
                             in
                             Hashtbl.replace correction_gen w gen;
                             instant "window-correct"
                               ~args:
                                 [
                                   ("win", Sbt_obs.Tracer.Int w);
                                   ("gen", Sbt_obs.Tracer.Int gen);
                                 ];
                             run_plan_and_seal ~w ~ready:(List.rev ws.ready)
                               ~seal:(fun result_ref ->
                                 match
                                   D.call dp
                                     (D.R_egress_correction
                                        { input = result_ref; window = w; gen })
                                 with
                                 | D.Rs_egress sealed ->
                                     corrections := (w, gen, sealed) :: !corrections
                                 | D.Rs_outputs _ | D.Rs_watermark _ | D.Rs_ingested _
                                 | D.Rs_checkpoint _ ->
                                     failwith "control: unexpected correction response");
                             0.0)
                   in
                   last_close := Some (corr_task, corr_idx))
      | Sbt_net.Frame.Watermark { seq; value } ->
          let arrival = !cum_events in
          if value > !max_wm_seen then max_wm_seen := value;
          let wm_task, wm_idx =
            add_task ~arrival ~label:(Printf.sprintf "watermark:%d" seq) (fun () ->
                match D.call dp (D.R_ingest_watermark { value }) with
                | D.Rs_watermark { audit_id; _ } ->
                    wm_audit_ref := audit_id;
                    0.0
                | D.Rs_outputs _ | D.Rs_egress _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
                    failwith "control: unexpected watermark response")
          in
          (* Close, in order, every window whose end has passed.  Session
             windows are exempt: which sessions exist is in-TEE state the
             control plane only learns after the windowing tasks run, so
             their closes are scheduled after the last frame instead. *)
          while
            Pipeline.session_gap pipe = None
            && (!next_window_to_close * pipe.Pipeline.window_slide_ticks)
               + pipe.Pipeline.window_size_ticks
               <= value
          do
            let w = !next_window_to_close in
            incr next_window_to_close;
            match Hashtbl.find_opt windows w with
            | None -> () (* empty window: nothing to do *)
            | Some ws ->
                ws.closed <- true;
                let marker_deps = [ (wm_task, wm_idx) ] in
                let _marker, marker_idx =
                  add_task ~deps:marker_deps ~arrival ~role:(Trace.Watermark_arrival w)
                    ~label:(Printf.sprintf "wm-arrive:w%d" w)
                    (fun () -> 0.0)
                in
                ignore marker_idx;
                let close_deps =
                  (wm_task, wm_idx) :: (Option.to_list !last_close @ ws.dep_tasks)
                in
                let close_task, close_idx =
                  add_task ~deps:close_deps ~role:(Trace.Egress_of w)
                    ~label:(Printf.sprintf "close:w%d" w)
                    (fun () -> run_close w ws)
                in
                last_close := Some (close_task, close_idx)
          done;
          (match ckpt_every with
          | Some every when !next_window_to_close - !last_ckpt_window >= every ->
              take_checkpoint ~next_frame_idx:(frame_offset + frame_i + 1) ~watermark:value
          | Some _ | None -> ()))
    frames;
  (* Session close scheduling: drain everything so the windowing tasks
     have populated the session table, then close each discovered
     session behind one synthetic final watermark that clears every
     session's last event time plus the gap (the in-TEE egress check
     refuses anything earlier). *)
  (match Pipeline.session_gap pipe with
  | None -> ()
  | Some gap ->
      drain_segment ();
      des := fresh_des ();
      Hashtbl.iter (fun _ ws -> ws.dep_tasks <- []) windows;
      last_close := None;
      D.set_now_ns dp !base_ns;
      let final_wm = !max_wm_seen + gap + 1 in
      let wm_task, wm_idx =
        add_task ~arrival:!cum_events ~label:"wm:session-final" (fun () ->
            match D.call dp (D.R_ingest_watermark { value = final_wm }) with
            | D.Rs_watermark { audit_id; _ } ->
                wm_audit_ref := audit_id;
                0.0
            | D.Rs_outputs _ | D.Rs_egress _ | D.Rs_ingested _ | D.Rs_checkpoint _ ->
                failwith "control: unexpected watermark response")
      in
      Hashtbl.fold (fun w _ acc -> w :: acc) windows []
      |> List.sort compare
      |> List.iter (fun w ->
             let ws = win w in
             ws.closed <- true;
             let close_deps = (wm_task, wm_idx) :: Option.to_list !last_close in
             let close_task, close_idx =
               add_task ~deps:close_deps ~role:(Trace.Egress_of w)
                 ~label:(Printf.sprintf "close:s%d" w)
                 (fun () -> run_close w ws)
             in
             last_close := Some (close_task, close_idx)));
  drain_segment ();
  (* Retract-and-reemit kept every window's segments alive for possible
     corrections; reclaim them now that no more can arrive (R_retire is
     audit-silent, so the sweep leaves no trace in the signed log). *)
  if protect then
    Hashtbl.fold (fun w _ acc -> w :: acc) windows []
    |> List.sort compare
    |> List.iter (fun w ->
           let ws = win w in
           List.iter
             (fun (_, r) ->
               match D.call dp (D.R_retire { input = r }) with
               | D.Rs_outputs [] -> ()
               | _ -> failwith "control: unexpected retire response")
             (List.rev ws.ready);
           ws.ready <- []);
  D.finalize dp;
  (* Assemble the trace: node order is schedule order (reverse of the
     accumulation list). *)
  let nodes_in_order = List.rev !pending_nodes in
  let trace_nodes =
    Array.of_list
      (List.map
         (fun (label, task, dep_idxs, arrival, role) ->
           {
             Trace.label;
             cost_ns = Des.cost_ns_of task;
             deps = dep_idxs;
             arrival_events = arrival;
             role;
           })
         nodes_in_order)
  in
  let trace = Trace.of_nodes trace_nodes in
  let work =
    if not capture then None
    else begin
      let caps = Array.of_list (List.rev !captures) in
      Some
        (fun i ->
          match Hashtbl.find_opt node_caps i with
          | None -> None
          | Some (c0, c1) ->
              Some
                (fun runner ->
                  for j = c0 to c1 - 1 do
                    replay_capture runner caps.(j)
                  done))
    end
  in
  let dp_stats = D.stats dp in
  (* PR 7 observability: world-switch pairs the run cost, and the audit
     volume it shipped (compressed, authenticated batch payloads).  Both
     are what operator fusion is meant to shrink, so they get first-class
     counters (added to, not reset, so a shared fleet registry
     accumulates across nodes). *)
  Sbt_obs.Metrics.add
    (Sbt_obs.Metrics.counter reg "smc.switches")
    dp_stats.D.switch_pairs;
  Sbt_obs.Metrics.add
    (Sbt_obs.Metrics.counter reg "audit.bytes")
    (List.fold_left
       (fun acc (b : Sbt_attest.Log.batch) -> acc + Bytes.length b.payload)
       0 (D.uploaded_batches dp));
  let tee_metrics, tee_quote = D.metrics_quote dp ~nonce:(Bytes.of_string "sbt-run-final") in
  {
    results = List.rev !results;
    corrections = List.rev !corrections;
    trace;
    dp_stats;
    pool_high_water_bytes = D.pool_high_water_bytes dp;
    mem_samples_bytes = List.rev !mem_samples;
    audit = D.uploaded_batches dp;
    verifier_spec =
      Pipeline.verifier_spec
        ~late_policy:(D.late_policy_code cfg.dp_config.D.late_policy)
        pipe;
    makespan_ns = !base_ns;
    total_events = !total_events;
    tasks_executed = !tasks_total;
    live_refs_after = D.live_refs dp;
    loss =
      Loss.v ~gaps_declared:!gaps_declared ~batches_dropped:!batches_dropped
        ~events_dropped:!events_dropped;
    registry = reg;
    tee_metrics;
    tee_quote;
    exec = None;
    work;
  }

let exec_trace ?time_scale ?mode ?scratch_pages ~domains cfg (r : run_result) =
  (* The executor's scratch shards draw from a pool with the same budget
     as the platform's secure DRAM, so real-parallel scratch pressure is
     bounded by the same number Figure 7 reports against. *)
  let pool =
    Sbt_umem.Page_pool.create
      ~budget_bytes:(Sbt_tz.Platform.secure_bytes cfg.dp_config.D.platform)
  in
  Sbt_exec.Executor.run
    ?tracer:cfg.dp_config.D.tracer
    ~registry:r.registry ~pool ?time_scale ?mode ?scratch_pages ?work:r.work ~domains
    r.trace

let run ?engine ?exec_time_scale ?exec_mode ?capture ?registry cfg pipe frames =
  let engine = match engine with Some e -> e | None -> `Des cfg.cores in
  (* [`Work] measurement needs kernel captures from the recording pass;
     capture them by default exactly when that mode is requested. *)
  let capture =
    match capture with Some c -> c | None -> exec_mode = Some `Work
  in
  match engine with
  | `Des cores -> record ~recording_cores:cores ~capture ?registry cfg pipe frames
  | `Domains domains ->
      (* Record with cfg.cores untouched — [domains] sizes only the real
         executor — so a [`Domains n] run's observables match [`Des
         cfg.cores] byte for byte. *)
      let r = record ~recording_cores:cfg.cores ~capture ?registry cfg pipe frames in
      let report =
        exec_trace ?time_scale:exec_time_scale ?mode:exec_mode ~domains cfg r
      in
      { r with exec = Some report }

(* --- supervised restart ----------------------------------------------------

   The normal-world supervisor around a checkpointed run: it owns the
   durable stores (sealed checkpoints, uploaded audit batches, sealed
   results, the source's replay buffer) and the restart policy.  On a
   crash it derives the newest attested checkpoint sequence from the
   signed audit stream — so a rolled-back blob cannot pose as the latest
   — unseals, rebuilds a fresh data plane, trims durable state back to
   the checkpoint's cut, re-ingests the replay suffix, and stamps each
   boot with a sealed epoch manifest for the multi-epoch verifier. *)

type supervised = {
  sv_results : (int * D.sealed_result) list;  (* stitched, ascending window *)
  sv_audit : Sbt_attest.Log.batch list;  (* stitched, oldest first *)
  sv_epochs : (Sbt_attest.Epoch.sealed * Sbt_attest.Log.batch list) list;
  sv_report : Sbt_attest.Verifier.report;
  sv_crash_sites : Sbt_fault.Fault.site list;
  sv_epoch_count : int;
  sv_replayed_frames : int;
  sv_checkpoints : int;
  sv_checkpoint_bytes : int;
  sv_last_run : run_result option;  (* the completing boot's full result *)
}

let run_supervised ?(max_restarts = 3) ?(ckpt_every = 1) cfg pipe frames =
  let key = cfg.dp_config.D.egress_key in
  let store = Sbt_recovery.Store.create () in
  let replay = Sbt_net.Replay.create frames in
  let ckpts = ref 0 and ckpt_bytes = ref 0 in
  let replayed = ref 0 in
  let crash_sites = ref [] in
  let epochs = ref [] in (* (manifest, that boot's batches), newest first *)
  let durable_uploads = ref [] in (* stitched normal-world storage, oldest first *)
  let durable_results = ref [] in
  let on_checkpoint ~blob ~seq ~frame_idx =
    Sbt_recovery.Store.put store ~seq blob;
    incr ckpts;
    ckpt_bytes := !ckpt_bytes + Bytes.length blob;
    Sbt_net.Replay.ack replay ~upto:frame_idx
  in
  let rec boot ~epoch ~resume ~frame_offset ~resumed_from ~resume_batch_seq cfgb suffix =
    let manifest = { Sbt_attest.Epoch.epoch; resumed_from; resume_batch_seq } in
    match
      record ~recording_cores:cfgb.cores ~ckpt_every ~on_checkpoint ?resume ~frame_offset
        cfgb pipe suffix
    with
    | r ->
        epochs := (manifest, r.audit) :: !epochs;
        durable_uploads := !durable_uploads @ r.audit;
        durable_results := !durable_results @ r.results;
        Some r
    | exception Crashed { site; uploads; results } ->
        crash_sites := site :: !crash_sites;
        epochs := (manifest, uploads) :: !epochs;
        durable_uploads := !durable_uploads @ uploads;
        durable_results := !durable_results @ results;
        if epoch >= max_restarts then
          raise (Crashed { site; uploads = !durable_uploads; results = !durable_results })
        else begin
          (* The newest checkpoint the durable (signed) audit stream
             attests: the floor below which a presented blob is a
             rollback. *)
          let attested_ckpt =
            List.fold_left
              (fun acc b ->
                List.fold_left
                  (fun acc r ->
                    match r with
                    | Sbt_attest.Record.Checkpoint { seq; _ } -> max acc seq
                    | _ -> acc)
                  acc
                  (Sbt_attest.Log.open_batch ~key b))
              (-1) !durable_uploads
          in
          let cfgb =
            Config.with_fault_plan
              (Sbt_fault.Fault.without_crash cfgb.dp_config.D.fault_plan)
              cfgb
          in
          match Sbt_recovery.Store.latest store with
          | None ->
              (* Crashed before any checkpoint: nothing was acked, the
                 source still holds every frame — restart from scratch,
                 and the fresh boot regenerates everything durable. *)
              durable_uploads := [];
              durable_results := [];
              let suffix = Sbt_net.Replay.suffix replay ~from:0 in
              replayed := !replayed + List.length suffix;
              boot ~epoch:(epoch + 1) ~resume:None ~frame_offset:0 ~resumed_from:(-1)
                ~resume_batch_seq:0 cfgb suffix
          | Some (_, blob) ->
              let restored =
                D.restore cfgb.dp_config ~expect_seq:(max attested_ckpt 0) blob
              in
              let ctl = decode_control restored.D.control in
              (* Trim durable state back to the checkpoint's cut: batches
                 and windows past it are regenerated by the resumed boot,
                 byte for byte. *)
              durable_uploads :=
                List.filter
                  (fun b -> b.Sbt_attest.Log.seq < restored.D.log_seq)
                  !durable_uploads;
              durable_results :=
                List.filter (fun (w, _) -> w < ctl.ck_next_window_to_close) !durable_results;
              let suffix = Sbt_net.Replay.suffix replay ~from:ctl.ck_frame_idx in
              replayed := !replayed + List.length suffix;
              boot ~epoch:(epoch + 1)
                ~resume:(Some (restored.D.rt, ctl))
                ~frame_offset:ctl.ck_frame_idx ~resumed_from:restored.D.ckpt_seq
                ~resume_batch_seq:restored.D.log_seq cfgb suffix
        end
  in
  let last =
    boot ~epoch:0 ~resume:None ~frame_offset:0 ~resumed_from:(-1) ~resume_batch_seq:0 cfg
      frames
  in
  let sealed_epochs =
    List.rev_map (fun (m, batches) -> (Sbt_attest.Epoch.seal ~key m, batches)) !epochs
  in
  let report =
    Sbt_attest.Verifier.verify_epochs ~key (Pipeline.verifier_spec pipe) sealed_epochs
  in
  {
    sv_results = List.sort (fun (a, _) (b, _) -> compare a b) !durable_results;
    sv_audit = !durable_uploads;
    sv_epochs = sealed_epochs;
    sv_report = report;
    sv_crash_sites = List.rev !crash_sites;
    sv_epoch_count = List.length !epochs;
    sv_replayed_frames = !replayed;
    sv_checkpoints = !ckpts;
    sv_checkpoint_bytes = !ckpt_bytes;
    sv_last_run = last;
  }

(* --- resumable partition node ----------------------------------------------

   The fleet-facing decomposition of [run_supervised]: one [Node.t] per
   key partition owns the partition's durable normal-world state (sealed
   checkpoint store, source replay buffer, uploaded audit batches,
   sealed results) and runs it one boot epoch at a time.  A boot either
   completes the stream or halts at a scheduled checkpoint boundary (the
   fleet's kill/fence point); the next [boot] — issued by whichever edge
   owns the partition after a handoff — resumes from the newest durable
   checkpoint exactly as the supervisor's crash path does, so donor +
   recipient stitched output is byte-identical to an uninterrupted run
   with the same [ckpt_every]. *)

module Node = struct
  type outcome = Completed | Halted of { at_window : int }

  type t = {
    n_cfg : config;
    n_pipe : Pipeline.t;
    n_ckpt_every : int;
    n_store : Sbt_recovery.Store.t;
    n_replay : Sbt_net.Replay.t;
    mutable n_epochs : (Sbt_attest.Epoch.manifest * Sbt_attest.Log.batch list) list;
        (* newest first *)
    mutable n_uploads : Sbt_attest.Log.batch list; (* stitched, oldest first *)
    mutable n_results : (int * D.sealed_result) list; (* stitched, ascending *)
    mutable n_finished : bool;
    mutable n_vt_ns : float;
    mutable n_total_events : int;
    mutable n_replayed : int;
    mutable n_ckpts : int;
    mutable n_ckpt_bytes : int;
  }

  let create ?(ckpt_every = 1) cfg pipe frames =
    {
      n_cfg = cfg;
      n_pipe = pipe;
      n_ckpt_every = ckpt_every;
      n_store = Sbt_recovery.Store.create ();
      n_replay = Sbt_net.Replay.create frames;
      n_epochs = [];
      n_uploads = [];
      n_results = [];
      n_finished = false;
      n_vt_ns = 0.0;
      n_total_events = 0;
      n_replayed = 0;
      n_ckpts = 0;
      n_ckpt_bytes = 0;
    }

  let key t = t.n_cfg.dp_config.D.egress_key

  let boot ?registry ?halt_after_window t =
    if t.n_finished then Completed
    else begin
      let epoch = List.length t.n_epochs in
      let resume, frame_offset, resumed_from, resume_batch_seq =
        if epoch = 0 then (None, 0, -1, 0)
        else begin
          (* Rollback floor: the newest checkpoint the signed audit
             stream attests (same derivation as [run_supervised]). *)
          let attested_ckpt =
            List.fold_left
              (fun acc b ->
                List.fold_left
                  (fun acc r ->
                    match r with
                    | Sbt_attest.Record.Checkpoint { seq; _ } -> max acc seq
                    | _ -> acc)
                  acc
                  (Sbt_attest.Log.open_batch ~key:(key t) b))
              (-1) t.n_uploads
          in
          match Sbt_recovery.Store.latest t.n_store with
          | None ->
              (* Died before any checkpoint: nothing acked, restart from
                 scratch; the fresh boot regenerates all durable state. *)
              t.n_uploads <- [];
              t.n_results <- [];
              (None, 0, -1, 0)
          | Some (_, blob) ->
              let restored =
                D.restore t.n_cfg.dp_config ~expect_seq:(max attested_ckpt 0) blob
              in
              let ctl = decode_control restored.D.control in
              t.n_uploads <-
                List.filter
                  (fun b -> b.Sbt_attest.Log.seq < restored.D.log_seq)
                  t.n_uploads;
              t.n_results <-
                List.filter (fun (w, _) -> w < ctl.ck_next_window_to_close) t.n_results;
              ( Some (restored.D.rt, ctl),
                ctl.ck_frame_idx,
                restored.D.ckpt_seq,
                restored.D.log_seq )
        end
      in
      let suffix = Sbt_net.Replay.suffix t.n_replay ~from:frame_offset in
      if epoch > 0 then t.n_replayed <- t.n_replayed + List.length suffix;
      let manifest = { Sbt_attest.Epoch.epoch; resumed_from; resume_batch_seq } in
      let on_checkpoint ~blob ~seq ~frame_idx =
        Sbt_recovery.Store.put t.n_store ~seq blob;
        t.n_ckpts <- t.n_ckpts + 1;
        t.n_ckpt_bytes <- t.n_ckpt_bytes + Bytes.length blob;
        Sbt_net.Replay.ack t.n_replay ~upto:frame_idx
      in
      match
        record ~recording_cores:t.n_cfg.cores ~ckpt_every:t.n_ckpt_every ~on_checkpoint
          ?resume ~frame_offset ?registry ?halt_after_window t.n_cfg t.n_pipe suffix
      with
      | r ->
          t.n_epochs <- (manifest, r.audit) :: t.n_epochs;
          t.n_uploads <- t.n_uploads @ r.audit;
          t.n_results <- t.n_results @ r.results;
          t.n_finished <- true;
          t.n_vt_ns <- Float.max t.n_vt_ns r.makespan_ns;
          t.n_total_events <- r.total_events;
          Completed
      | exception Halted_at { uploads; results; vt_ns; _ } ->
          t.n_epochs <- (manifest, uploads) :: t.n_epochs;
          t.n_uploads <- t.n_uploads @ uploads;
          t.n_results <- t.n_results @ results;
          t.n_vt_ns <- Float.max t.n_vt_ns vt_ns;
          Halted { at_window = Option.value ~default:0 halt_after_window }
    end

  let finished t = t.n_finished
  let epoch_count t = List.length t.n_epochs
  let results t = List.sort (fun (a, _) (b, _) -> compare a b) t.n_results
  let audit t = t.n_uploads

  let epochs t =
    List.rev_map
      (fun (m, batches) -> (Sbt_attest.Epoch.seal ~key:(key t) m, batches))
      t.n_epochs

  let manifests t = List.rev_map fst t.n_epochs
  let acked_frames t = Sbt_net.Replay.acked t.n_replay

  let last_ckpt_seq t =
    match Sbt_recovery.Store.latest t.n_store with Some (seq, _) -> seq | None -> -1

  let vt_ns t = t.n_vt_ns
  let total_events t = t.n_total_events
  let replayed_frames t = t.n_replayed
  let checkpoints t = t.n_ckpts
  let checkpoint_bytes t = t.n_ckpt_bytes
end
