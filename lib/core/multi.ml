(* Multi-tenant consolidation: N pipelines in one enclave.

   The paper's consolidation argument (§4) says the enclave should host
   the *whole* data plane — one TCB, minimal crossings — where
   per-stage-enclave designs (SecureStreams) pay a boundary per operator.
   This module demonstrates the argument at its natural scale: many small
   tenant pipelines admitted into one TEE, isolated from each other by

   - page-granular secure-DRAM quotas (a tenant over budget sheds *its
     own* ingest, degrading with a signed Gap — PR 1's loss accounting —
     while its co-tenants run clean);
   - per-tenant opaque-ref namespaces (a confused control plane handing
     tenant B's ref to tenant A is rejected in-TEE,
     {!Dataplane.Cross_tenant_ref});
   - per-tenant KDF-derived egress/audit keys
     ({!Sbt_attest.Verifier.tenant_key}), so audit becomes independent
     per-tenant sub-streams and one tenant's violation cannot taint
     another's verdict ({!Sbt_attest.Verifier.verify_tenants});
   - deficit-round-robin interleaving of the recorded task graphs, so
     one heavy tenant cannot starve the p99 output delay of the rest.

   Determinism invariant: a tenant's sealed results, audit bytes and
   verdict depend only on its own spec (id, pipeline, source, quota) —
   never on who else shared the enclave.  Joint and solo runs are
   byte-identical per tenant; the merged schedule and all fairness
   numbers are measurement, downstream of the recordings. *)

module D = Dataplane

type tenant = {
  id : int;
  pipeline : Pipeline.t;
  source : Sbt_net.Frame.t list;
  quota_pages : int option;
}

type tenant_result = {
  tr_id : int;
  tr_run : Runtime.run_result;
  tr_delays : (int * float) list;
  tr_max_delay_ns : float;
  tr_mean_delay_ns : float;
}

type result = {
  tenants : tenant_result list;
  report : Sbt_attest.Verifier.tenants_report option;
  merged : Sbt_sim.Trace.t;
  makespan_ns : float;
  agg_events : int;
  agg_events_per_sec : float;
  p99_delay_ns : float;
  max_delay_ns : float;
  exec : Sbt_exec.Executor.report option;
  registry : Sbt_obs.Metrics.t;
}

(* Merged-trace window ids are [w + slot * window_stride] so the replay's
   per-window delays can be attributed back to tenants.  Purely a
   measurement encoding — recorded traces and observables never carry
   offset ids. *)
let window_stride = 1 lsl 20

let page_size = 4096

let tenant_config (cfg : Runtime.config) ~owners t =
  let dpc = cfg.Runtime.dp_config in
  let dpc =
    {
      dpc with
      D.egress_key = Sbt_attest.Verifier.tenant_key ~base:dpc.D.egress_key t.id;
      pool_budget_bytes =
        (match t.quota_pages with
        | Some pages -> Some (pages * page_size)
        | None -> dpc.D.pool_budget_bytes);
      namespace = Some { D.ns_tenant = t.id; ns_owners = owners };
    }
  in
  { cfg with Runtime.dp_config = dpc }

(* Deficit round-robin merge: repeatedly hand the next task to the
   unfinished tenant with the least accumulated scheduled cost (ties to
   the lower slot), keeping each tenant's nodes in recording order so
   intra-tenant deps stay backward.  Returns the merged trace and, per
   merged index, its (slot, original index) provenance. *)
let merge_traces traces =
  let n = Array.length traces in
  let nodes = Array.map Sbt_sim.Trace.nodes traces in
  let total = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 nodes in
  let pos = Array.make n 0 in
  let credit = Array.make n 0.0 in
  let remap = Array.map (fun ns -> Array.make (Array.length ns) (-1)) nodes in
  let provenance = Array.make total (0, 0) in
  let out = ref [] in
  for merged_idx = 0 to total - 1 do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if pos.(i) < Array.length nodes.(i) && (!best < 0 || credit.(i) < credit.(!best)) then
        best := i
    done;
    let i = !best in
    let node = nodes.(i).(pos.(i)) in
    let deps = List.map (fun d -> remap.(i).(d)) node.Sbt_sim.Trace.deps in
    let role =
      match node.Sbt_sim.Trace.role with
      | Sbt_sim.Trace.Plain -> Sbt_sim.Trace.Plain
      | Sbt_sim.Trace.Watermark_arrival w ->
          Sbt_sim.Trace.Watermark_arrival (w + (i * window_stride))
      | Sbt_sim.Trace.Egress_of w -> Sbt_sim.Trace.Egress_of (w + (i * window_stride))
    in
    let label = Printf.sprintf "t%d:%s" i node.Sbt_sim.Trace.label in
    out := { node with Sbt_sim.Trace.deps; role; label } :: !out;
    remap.(i).(pos.(i)) <- merged_idx;
    provenance.(merged_idx) <- (i, pos.(i));
    pos.(i) <- pos.(i) + 1;
    credit.(i) <- credit.(i) +. node.Sbt_sim.Trace.cost_ns
  done;
  (Sbt_sim.Trace.of_nodes (Array.of_list (List.rev !out)), provenance)

let percentile p values =
  match values with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list values in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      arr.(max 0 (min (n - 1) (rank - 1)))

let validate tenants =
  if tenants = [] then invalid_arg "Multi.run: no tenants admitted";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.id < 0 then invalid_arg "Multi.run: tenant ids must be non-negative";
      if Hashtbl.mem seen t.id then
        invalid_arg (Printf.sprintf "Multi.run: duplicate tenant id %d" t.id);
      Hashtbl.replace seen t.id ();
      match t.quota_pages with
      | Some p when p <= 0 -> invalid_arg "Multi.run: tenant quota must be positive"
      | _ -> ())
    tenants

let run ?engine ?exec_time_scale ?exec_mode ?capture ?registry ?(verify = true)
    (cfg : Runtime.config) tenants =
  validate tenants;
  let tenants = List.sort (fun a b -> compare a.id b.id) tenants in
  let engine = match engine with Some e -> e | None -> `Des cfg.Runtime.cores in
  let capture =
    match capture with Some c -> c | None -> exec_mode = Some `Work
  in
  let root = match registry with Some r -> r | None -> Sbt_obs.Metrics.create () in
  (* The enclave-level ref-ownership map every tenant's plane shares. *)
  let owners : (int64, int) Hashtbl.t = Hashtbl.create 256 in
  (* Record each tenant serially — the recording pass is the one place
     the data plane's effects happen for real, and its observables must
     be a pure function of the tenant's own spec. *)
  let runs =
    List.map
      (fun t ->
        let tcfg = tenant_config cfg ~owners t in
        let treg = Sbt_obs.Metrics.scoped root (Printf.sprintf "tenant%d" t.id) in
        let r =
          Runtime.run ~engine:(`Des cfg.Runtime.cores) ~capture ~registry:treg tcfg
            t.pipeline t.source
        in
        (t, r))
      tenants
  in
  (* Fair interleaving of the recorded task graphs. *)
  let slots = Array.of_list (List.map snd runs) in
  let merged, provenance = merge_traces (Array.map (fun r -> r.Runtime.trace) slots) in
  let replay =
    Sbt_sim.Trace.replay merged ~cores:cfg.Runtime.cores ~rate_eps:Float.infinity
  in
  (* Attribute the merged schedule's per-window delays back to tenants. *)
  let slot_delays = Array.make (Array.length slots) [] in
  List.iter
    (fun (w, d) ->
      let slot = w / window_stride in
      if slot >= 0 && slot < Array.length slot_delays then
        slot_delays.(slot) <- (w mod window_stride, d) :: slot_delays.(slot))
    replay.Sbt_sim.Trace.delays;
  let tenant_results =
    List.mapi
      (fun slot (t, r) ->
        let delays = List.rev slot_delays.(slot) in
        let ds = List.map snd delays in
        {
          tr_id = t.id;
          tr_run = r;
          tr_delays = delays;
          tr_max_delay_ns = List.fold_left max 0.0 ds;
          tr_mean_delay_ns =
            (match ds with
            | [] -> 0.0
            | _ -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds));
        })
      runs
  in
  (* Fleet-style totals over the shared root registry. *)
  let add name v = Sbt_obs.Metrics.add (Sbt_obs.Metrics.counter root name) v in
  add "tenants.count" (List.length tenants);
  add "tenants.events"
    (List.fold_left (fun acc (_, r) -> acc + r.Runtime.total_events) 0 runs);
  add "tenants.windows"
    (List.fold_left (fun acc (_, r) -> acc + List.length r.Runtime.results) 0 runs);
  add "tenants.sheds"
    (List.fold_left (fun acc (_, r) -> acc + r.Runtime.dp_stats.D.sheds) 0 runs);
  add "tenants.gaps_declared"
    (List.fold_left
       (fun acc (_, r) -> acc + Runtime.Loss.gaps_declared r.Runtime.loss)
       0 runs);
  add "tenants.events_dropped"
    (List.fold_left
       (fun acc (_, r) -> acc + Runtime.Loss.events_dropped r.Runtime.loss)
       0 runs);
  (* Tenant-scoped attestation: judge each sub-stream independently. *)
  let report =
    if not verify then None
    else
      Some
        (Sbt_attest.Verifier.verify_tenants ~key:cfg.Runtime.dp_config.D.egress_key
           (List.map
              (fun (t, r) ->
                {
                  Sbt_attest.Verifier.tenant = t.id;
                  t_spec = r.Runtime.verifier_spec;
                  t_audit = r.Runtime.audit;
                })
              runs))
  in
  (* Real-parallel measurement: the merged DRR schedule runs once through
     the work-stealing executor, all tenants sharing the domains. *)
  let exec =
    match engine with
    | `Des _ -> None
    | `Domains domains ->
        let pool =
          Sbt_umem.Page_pool.create
            ~budget_bytes:
              (Sbt_tz.Platform.secure_bytes cfg.Runtime.dp_config.D.platform)
        in
        let work =
          if Array.exists (fun r -> r.Runtime.work <> None) slots then
            Some
              (fun merged_idx ->
                if merged_idx < 0 || merged_idx >= Array.length provenance then None
                else
                  let slot, orig = provenance.(merged_idx) in
                  match slots.(slot).Runtime.work with
                  | Some f -> f orig
                  | None -> None)
          else None
        in
        Some
          (Sbt_exec.Executor.run
             ?tracer:cfg.Runtime.dp_config.D.tracer
             ~registry:root ~pool ?time_scale:exec_time_scale ?mode:exec_mode ?work
             ~domains merged)
  in
  let agg_events = List.fold_left (fun acc (_, r) -> acc + r.Runtime.total_events) 0 runs in
  let makespan_ns = replay.Sbt_sim.Trace.makespan_ns in
  let all_delays = List.concat_map (fun tr -> List.map snd tr.tr_delays) tenant_results in
  {
    tenants = tenant_results;
    report;
    merged;
    makespan_ns;
    agg_events;
    agg_events_per_sec =
      (if makespan_ns > 0.0 then float_of_int agg_events /. (makespan_ns /. 1e9) else 0.0);
    p99_delay_ns = percentile 99.0 all_delays;
    max_delay_ns = List.fold_left max 0.0 all_delays;
    exec;
    registry = root;
  }
