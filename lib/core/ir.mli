(** Typed pipeline IR and the in-TEE operator fusion pass (PR 7).

    The control plane {!lower}s a declared pipeline's per-batch stages
    into a flat node list; {!fuse} then collapses every maximal run of
    two or more adjacent per-record primitives
    (Filter∘Project∘Select∘ShiftKey chains) into a single
    {!N_fused} super-kernel, executed by the data plane in {e one}
    trusted entry ({!Dataplane.request.R_invoke_fused}) with one
    composite audit record.  Non-fusable ops (Sort — it is not
    per-record) and the window boundary are hard barriers: fusion never
    crosses them. *)

type node =
  | N_op of Pipeline.batch_op  (** one batch stage, one trusted entry *)
  | N_fused of Sbt_prim.Fused.step list
      (** a fused chain: >= 2 steps, one trusted entry *)
  | N_window
      (** the batch/window phase boundary — a fusion barrier by
          construction (window ops run under the watermark trigger, not
          per segment) *)

val step_of_op : Pipeline.batch_op -> Sbt_prim.Fused.step option
(** The fused-kernel step equivalent to a batch op, or [None] for ops
    the fusion pass must not absorb (exactly the ops whose primitive
    {!Sbt_prim.Primitive.fusable} rejects). *)

val lower : Pipeline.t -> node list
(** The pipeline's batch stages in declaration order, terminated by
    {!N_window}. *)

val fuse : node list -> node list
(** Greedy maximal-run fusion.  Runs of >= 2 adjacent fusable ops become
    one {!N_fused}; lone fusable ops stay as {!N_op} (fusing one op buys
    nothing).  Existing {!N_fused} nodes and {!N_window} are barriers
    and pass through untouched, so the pass is idempotent:
    [fuse (fuse l) = fuse l]. *)

val node_ops : node -> int list
(** Primitive ids a node executes, in order ([[]] for {!N_window}). *)

val switch_count : node list -> int
(** Trusted entries (world-switch pairs) the plan costs per segment. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> node list -> unit
