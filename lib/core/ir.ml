(* Typed pipeline IR (PR 7).  The control plane lowers a declared
   pipeline's per-batch stages into a flat node list, then an optional
   fusion pass collapses maximal runs of adjacent per-record primitives
   into fused super-kernels.  The IR is deliberately tiny: batch stages
   are a straight line (1-in/1-out by construction), so fusion is a
   single left-to-right sweep with two barriers — non-fusable ops and
   the window boundary. *)

module F = Sbt_prim.Fused

type node =
  | N_op of Pipeline.batch_op
  | N_fused of F.step list
  | N_window

let step_of_op = function
  | Pipeline.B_filter_band { field; lo; hi } -> Some (F.F_filter_band { field; lo; hi })
  | Pipeline.B_select { field; value } -> Some (F.F_select { field; value })
  | Pipeline.B_project fields -> Some (F.F_project { fields })
  | Pipeline.B_shift_key { field; shift } -> Some (F.F_shift_key { field; shift })
  | Pipeline.B_sort _ -> None

let lower (p : Pipeline.t) = List.map (fun op -> N_op op) p.Pipeline.batch_ops @ [ N_window ]

(* Greedy maximal-run fusion.  A run of >= 2 consecutive fusable ops
   becomes one N_fused; a lone fusable op is not worth a fused descriptor
   (it already costs exactly one switch).  N_fused nodes and N_window are
   barriers and pass through untouched, which makes the pass idempotent:
   a second sweep finds no adjacent fusable pair it did not already
   absorb. *)
let fuse nodes =
  let flush acc run =
    match run with
    | [] -> acc
    | [ (op, _) ] -> N_op op :: acc
    | _ -> N_fused (List.rev_map snd run) :: acc
  in
  let rec go acc run = function
    | [] -> List.rev (flush acc run)
    | N_op op :: rest -> (
        match step_of_op op with
        | Some step -> go acc ((op, step) :: run) rest
        | None -> go (N_op op :: flush acc run) [] rest)
    | (N_fused _ as n) :: rest | (N_window as n) :: rest -> go (n :: flush acc run) [] rest
  in
  go [] [] nodes

let node_ops = function
  | N_op op -> [ Sbt_prim.Primitive.to_id (Pipeline.batch_op_primitive op) ]
  | N_fused steps -> List.map (fun s -> Sbt_prim.Primitive.to_id (F.step_op s)) steps
  | N_window -> []

let switch_count nodes =
  List.fold_left
    (fun acc n -> match n with N_op _ | N_fused _ -> acc + 1 | N_window -> acc)
    0 nodes

let pp_node fmt = function
  | N_op op -> Format.fprintf fmt "%s" (Sbt_prim.Primitive.name (Pipeline.batch_op_primitive op))
  | N_fused steps ->
      Format.fprintf fmt "fused[%s]"
        (String.concat ";" (List.map F.step_name steps))
  | N_window -> Format.fprintf fmt "|window|"

let pp fmt nodes =
  Format.fprintf fmt "%s"
    (String.concat " -> " (List.map (Format.asprintf "%a" pp_node) nodes))
