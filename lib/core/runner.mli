(** End-to-end experiment runner.

    Wraps one (pipeline, engine version) pair: executes the workload once
    for real under the DES (recording the task graph, memory behaviour,
    audit records and results), then replays the trace at the requested
    core counts to find the maximum sustainable throughput under the
    paper's output-delay targets — the methodology behind Figure 7. *)

type throughput_point = {
  cores : int;
  events_per_sec : float;
  mb_per_sec : float;
  delay_ms : float;  (** worst window delay at the reported rate *)
  utilization : float;
}

type outcome = {
  version : Dataplane.version;
  pipeline_name : string;
  points : throughput_point list;
  mem_steady_mb : float;  (** mean committed secure memory at window closes *)
  mem_high_water_mb : float;
  total_events : int;
  dp_stats : Dataplane.stats;
  audit_records : int;
  audit_raw_bytes : int;
  audit_compressed_bytes : int;
  verified : bool;  (** cloud verifier replayed the audit log cleanly *)
  verifier_report : Sbt_attest.Verifier.report;
  loss : Runtime.Loss.t;  (** what graceful degradation dropped and declared *)
  results : (int * Dataplane.sealed_result) list;  (** sorted by window *)
  corrections : (int * int * Dataplane.sealed_result) list;
      (** (window, generation, sealed) correction egress under
          retract-and-reemit, in emission order; empty otherwise *)
  results_corrected : (int * Dataplane.sealed_result) list;
      (** the cloud-side merge: [results] with each corrected window
          replaced by its highest-generation correction re-sealed under
          the canonical egress nonce ({!Dataplane.reseal_correction}) —
          byte-comparable against an in-order run's [results] *)
  audit : Sbt_attest.Log.batch list;  (** the signed upload, oldest first *)
  spec : Sbt_attest.Verifier.spec;  (** the declaration the verifier used *)
  registry : Sbt_obs.Metrics.t;  (** control-plane metrics for the kept recording *)
  tee_metrics : bytes;  (** attested TEE registry snapshot *)
  tee_quote : Sbt_attest.Quote.quote;
  exec : Sbt_exec.Executor.report option;
      (** real-parallel wall-clock report for the kept recording —
          [Some] iff [exec_domains] was passed *)
}

val merge_corrections :
  egress_key:bytes ->
  (int * Dataplane.sealed_result) list ->
  (int * int * Dataplane.sealed_result) list ->
  (int * Dataplane.sealed_result) list
(** [merge_corrections ~egress_key results corrections] applies the
    cloud-side merge in order: for every window the highest-generation
    correction wins, is re-sealed under the canonical egress nonce and
    replaces (or, for a window with no original egress, joins) the
    sealed results; output sorted by window. *)

val run :
  ?cores_list:int list ->
  ?target_delay_ms:float ->
  ?version:Dataplane.version ->
  ?hints_enabled:bool ->
  ?fuse:bool ->
  ?alloc_mode:Sbt_umem.Allocator.mode ->
  ?sort_algorithm:Sbt_prim.Sort.algorithm ->
  ?secure_mb:int ->
  ?repeats:int ->
  ?fault_plan:Sbt_fault.Fault.plan ->
  ?late_policy:Dataplane.late_policy ->
  ?tracer:Sbt_obs.Tracer.t ->
  ?deterministic:bool ->
  ?exec_domains:int ->
  ?exec_time_scale:float ->
  ?exec_mode:Sbt_exec.Executor.mode ->
  Pipeline.t ->
  Sbt_net.Frame.t list ->
  outcome
(** Defaults: cores [\[2;4;8\]], 500 ms target, [Full] version, hints on,
    fusion off ([fuse] runs adjacent per-record batch stages as fused
    super-kernels — fewer world switches, same bytes out), hint-guided
    allocator, radix sort, 512 MB secure DRAM, one recording run.  [repeats > 1] records several times and keeps the cheapest
    trace, suppressing host measurement noise.  [tracer] records
    virtual-time spans for the recording run (use [repeats = 1] so the
    trace matches the kept recording; the buffer is reset before each
    repeat and holds the last one).

    [deterministic] zeroes the cost model's host_scale so recorded costs
    carry no measured host time — results, audit bytes and verdicts
    become byte-reproducible across processes (and [repeats] is then
    pointless: every recording is identical).  [exec_domains] runs the
    real-parallel executor ({!Runtime.exec_trace}) once over the kept
    recording; [exec_time_scale]/[exec_mode] tune that phase. *)

val pp_outcome : Format.formatter -> outcome -> unit
