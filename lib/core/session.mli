(** The unified Session API: one builder in front of every way to run.

    A Session is a run configuration plus the tenant pipelines admitted
    into the enclave:

    {[
      let res =
        Session.create (Runtime.Config.make ())
        |> Session.add_tenant ~pipeline ~source:frames
        |> Session.run
    ]}

    Single-tenant is the 1-tenant special case — tenant 0 inherits the
    base egress key and an uncapped pool, so a 1-tenant {!run_single} is
    byte-identical to the historical [Runtime.run].  The legacy entry
    points ([Control.run], [Runtime.run], [Runtime.run_supervised],
    [Runner.run], [Fleet.run]) survive as thin wrappers and should not
    be used in new code. *)

type t

val create :
  ?engine:Runtime.engine ->
  ?exec_time_scale:float ->
  ?exec_mode:Sbt_exec.Executor.mode ->
  ?capture:bool ->
  ?registry:Sbt_obs.Metrics.t ->
  ?verify:bool ->
  Runtime.config ->
  t
(** A session with no tenants yet.  [engine] defaults to
    [`Des cfg.cores]; [registry] supplies the shared root registry
    (tenants scope themselves under [tenant<id>.*]); [verify] (default
    true) controls whether {!run} judges the tenants'
    audit sub-streams ({!Sbt_attest.Verifier.verify_tenants}). *)

val add_tenant :
  ?id:int -> ?quota_pages:int -> pipeline:Pipeline.t -> source:Sbt_net.Frame.t list -> t -> t
(** Admit a tenant.  [id] defaults to one past the highest admitted id
    (0 for the first); [quota_pages] caps the tenant's secure pool in
    4 KiB pages (omitted = uncapped). *)

val tenants : t -> Multi.tenant list
(** Admitted tenants, id-ascending. *)

val config : t -> Runtime.config

val engine : t -> Runtime.engine option

val run : t -> Multi.result
(** Run all admitted tenants in one enclave — see {!Multi.run}.
    Raises [Invalid_argument] if no tenant was admitted. *)

val run_single : t -> Runtime.run_result
(** The single-tenant fast path: one recording, no merged-schedule
    replay, no verification — the historical [Runtime.run] semantics,
    byte-identical observables included.  Raises [Invalid_argument]
    unless exactly one tenant was admitted. *)

val run_supervised :
  ?max_restarts:int -> ?ckpt_every:int -> t -> (int * Runtime.supervised) list
(** Crash-recovering run, one independent supervisor per tenant (own
    sealed checkpoints, replay buffer, epoch manifests); returns
    per-tenant supervised results, id-ascending.  See
    {!Runtime.run_supervised} for the recovery semantics. *)
