(** Event schemas.

    An event is a fixed-width record of 32-bit fields.  The engine's
    default schema is the paper's 12-byte 3-field event (key, value,
    event-time); the power-grid benchmark uses a 16-byte 4-field sample.
    Timestamps are event-time ticks (the workloads use 1000 ticks per
    second of event time). *)

type schema = {
  width : int;
  key_field : int;
  value_field : int;
  ts_field : int;
}

val default : schema
(** 3 fields: key=0, value=1, ts=2. *)

val power : schema
(** 4 fields: plugkey=0 (house*256+plug), power=1, ts=2, house=3.  The
    key field is the plug key so GroupBy groups per plug. *)

val bytes_per_event : schema -> int

val ticks_per_second : int
(** 1000: event-time resolution of all workloads and window sizes. *)

(** {2 Event time vs arrival order}

    Windowing consults only [event_ts] (the in-record timestamp);
    [arrival_ts] is when the network actually delivered the event.  The
    two coincide on an orderly stream — disorder is their divergence, and
    a watermark policy is a promise about how large it may get. *)

type timing = { event_ts : int; arrival_ts : int }

val timing : event_ts:int -> arrival_ts:int -> timing
(** Raises [Invalid_argument] if [arrival_ts < event_ts]. *)

val delay_ticks : timing -> int
(** How long the event was in flight, in event-time ticks. *)

val is_late : timing -> watermark:int -> bool
(** The watermark frontier already passed the event's time: its window
    may have closed, and the configured late-data policy decides what
    happens to it. *)
