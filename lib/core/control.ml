(* The historical entry point, now a thin wrapper over a 1-tenant
   Session (deprecated — new code should build a Session directly).
   Types are equations onto Runtime's so existing call sites and the new
   API interoperate without conversion. *)

type config = Runtime.config = {
  dp_config : Dataplane.config;
  cores : int;
  hints_enabled : bool;
  fuse : bool;
}

module Config = Runtime.Config
module Loss = Runtime.Loss

let default_config = Runtime.default_config

type run_result = Runtime.run_result = {
  results : (int * Dataplane.sealed_result) list;
  corrections : (int * int * Dataplane.sealed_result) list;
  trace : Sbt_sim.Trace.t;
  dp_stats : Dataplane.stats;
  pool_high_water_bytes : int;
  mem_samples_bytes : int list;
  audit : Sbt_attest.Log.batch list;
  verifier_spec : Sbt_attest.Verifier.spec;
  makespan_ns : float;
  total_events : int;
  tasks_executed : int;
  live_refs_after : int;
  loss : Loss.t;
  registry : Sbt_obs.Metrics.t;
  tee_metrics : bytes;
  tee_quote : Sbt_attest.Quote.quote;
  exec : Sbt_exec.Executor.report option;
  work : (int -> Sbt_exec.Executor.work_fn option) option;
}

let run cfg pipe frames =
  Session.create ~engine:(`Des cfg.cores) ~verify:false cfg
  |> Session.add_tenant ~pipeline:pipe ~source:frames
  |> Session.run_single
