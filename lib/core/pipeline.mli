(** Declarative pipelines (the Figure 2(c) programming model).

    A pipeline names the event schema, the fixed window, the per-batch
    operator stages and the per-window plan.  The control plane compiles
    it into trusted-primitive invocations; the same declaration doubles as
    the cloud verifier's replay specification.

    Per-batch stages ([batch_ops]) run eagerly on every windowed segment
    as soon as it is produced — this is where GroupBy's Sort happens, in
    parallel across batches.  The window plan runs once per window when
    the closing watermark arrives, over all the window's ready uArrays. *)

type batch_op =
  | B_sort of { key_field : int; secondary_value : int option }
      (** Sort segments by key (GroupBy's first half).  A secondary value
          field requests a stable (value, key) two-pass radix order. *)
  | B_filter_band of { field : int; lo : int32; hi : int32 }
  | B_project of int array
  | B_select of { field : int; value : int32 }
      (** Keep records whose [field] equals [value] exactly. *)
  | B_shift_key of { field : int; shift : int }
      (** Arithmetic right-shift of [field] by [shift] bits (key
          coarsening, e.g. plug id -> house id). *)

(** Context handed to a window plan when its watermark fires. *)
type wctx = {
  window : int;
  ready : (int * int64) list;  (** (stream, opaque ref) of ready arrays *)
  invoke :
    ?params:Dataplane.param list ->
    ?hints:Dataplane.hint list ->
    ?retire:bool ->
    Sbt_prim.Primitive.t ->
    int64 list ->
    int64 list;
      (** Invoke a trusted primitive on opaque refs; returns output refs.
          The window's triggering watermark is attached automatically to
          the first invocation (it appears in that audit record as the
          execution trigger). *)
  invoke_udf :
    ?hints:Dataplane.hint list ->
    ?retire:bool ->
    ?state_output:bool ->
    name:string ->
    version:int ->
    value_field:int ->
    int64 list ->
    int64 list;
      (** Invoke an installed certified UDF; [state_output] allocates the
          result as cross-window operator state. *)
  retire_ref : int64 -> unit;
      (** Explicitly retire a uArray (required for state the plan
          replaces). *)
}

type window_kind = [ `Fixed | `Session of int ]
(** [`Fixed]: the grid of [window_slide_ticks]-spaced windows (sliding
    when slide < size).  [`Session gap]: windows are per-window activity
    sessions — window [w] starts at its first event and closes once the
    watermark clears its last event time plus [gap] ticks of silence. *)

type t = {
  name : string;
  schema : Event.schema;
  window_size_ticks : int;
  window_slide_ticks : int;
      (** window [w] covers [\[w*slide, w*slide + size)]; equal to
          [window_size_ticks] for the paper's fixed windows *)
  window_kind : window_kind;
  streams : int;  (** 1, or 2 for joins *)
  batch_ops : batch_op list;
  window_ops : Sbt_prim.Primitive.t list;
      (** declared per-window primitive multiset — the verifier's copy *)
  window_udf_invocations : int;
      (** certified-UDF executions per window, also part of the declared
          multiset (they audit under {!Sbt_prim.Primitive.udf_id}) *)
  udfs : (Udf.t * bytes) list;
      (** UDFs (with their certificates) installed with the pipeline *)
  plan : wctx -> int64;  (** runs the window phase; returns the result ref *)
}

val batch_op_primitive : batch_op -> Sbt_prim.Primitive.t

val session_gap : t -> int option
(** [Some gap] for session-windowed pipelines, [None] for the fixed grid. *)

val with_session_gap : t -> gap_ticks:int -> t
(** Turn a fixed-window pipeline into a gap-based session pipeline:
    events are assigned to activity sessions in-TEE (a new session opens
    after [gap_ticks] of event-time silence) and a session closes only
    when the watermark clears its end plus the gap.  Requires a pipeline
    with no batch stages (session assignment happens at windowing time);
    raises [Invalid_argument] otherwise or if [gap_ticks <= 0]. *)

val verifier_spec : ?freshness_bound_us:int -> ?late_policy:int -> t -> Sbt_attest.Verifier.spec
(** [late_policy] is the attested policy code the run declared (0 =
    silent, 1 = drop+declare, 2 = retract-and-reemit; default 0); the
    session gap is taken from the pipeline's [window_kind]. *)

(** {2 The paper's six benchmark pipelines (§9.2)} *)

val win_sum : ?window_size_ticks:int -> ?window_slide_ticks:int -> unit -> t
(** Windowed aggregation over the value field; pass a slide smaller than
    the size for sliding windows (each event then contributes to
    size/slide consecutive windows). *)

val filter : ?window_size_ticks:int -> ?lo:int32 -> ?hi:int32 -> unit -> t
(** FilterBand at the given selectivity band (defaults give ~1%). *)

val fps_chain : ?window_size_ticks:int -> unit -> t
(** Five adjacent fusable per-record batch stages
    (Filter∘Project∘ShiftKey∘Select∘Filter) — the PR 7 fusion showcase.
    With [--fuse on] the whole chain runs as one fused super-kernel per
    segment (one world switch, one composite audit record) instead of
    five separate trusted entries; results are byte-identical either
    way. *)

val group_topk : ?window_size_ticks:int -> ?k:int -> unit -> t
(** Top-K values per key per window. *)

val distinct : ?window_size_ticks:int -> unit -> t
(** Count of distinct keys per window (the taxi benchmark). *)

val temp_join : ?window_size_ticks:int -> unit -> t
(** Temporal join of two input streams on equal keys per window. *)

val power_grid : ?window_size_ticks:int -> ?k:int -> unit -> t
(** The Figure 2 power pipeline: per-plug average, global average,
    per-house count of above-average plugs, top-K houses. *)

(** {2 Additional operator pipelines (Table 2 coverage)} *)

val union_count : ?window_size_ticks:int -> unit -> t
(** Union of two input streams, counted per window (Table 2's Union). *)

val load_predict : ?window_size_ticks:int -> ?alpha_percent:int -> unit -> t
(** The full Figure 2 example: per-house average load per window, then an
    in-TEE exponentially weighted moving average over recent windows as
    the next-window prediction.  The EWMA runs as a certified [Combine2]
    UDF over a cross-window state uArray; [alpha_percent] is the EWMA
    weight on the current window (default 50).  Stateful: build a fresh
    pipeline per run. *)

val sum_per_key : ?window_size_ticks:int -> unit -> t
val avg_per_key : ?window_size_ticks:int -> unit -> t
val median_per_key : ?window_size_ticks:int -> unit -> t
val count_by_window : ?window_size_ticks:int -> unit -> t
val min_max : ?window_size_ticks:int -> unit -> t

val vitals : ?window_size_ticks:int -> unit -> t
(** Medical telemetry: per-patient (key) average vitals per window, after
    the TEE medical-streaming case study.  No batch stages, and the
    window plan (Concat, Sort, Avg_per_key) is insensitive to segment
    arrival order, so a retract-and-reemit correction over
    {originals + late arrivals} reproduces the in-order run's bytes
    exactly — the disorder workhorse. *)
