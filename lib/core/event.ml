type schema = { width : int; key_field : int; value_field : int; ts_field : int }

let default = { width = 3; key_field = 0; value_field = 1; ts_field = 2 }
let power = { width = 4; key_field = 0; value_field = 1; ts_field = 2 }
let bytes_per_event s = s.width * 4
let ticks_per_second = 1000

(* Event time vs arrival order.  An event carries one timestamp — when it
   happened ([event_ts], the only time windowing ever consults) — but the
   network delivers it at its own pace, so the engine additionally tracks
   when it showed up ([arrival_ts]).  The two coincide on an orderly
   stream; disorder is exactly their divergence. *)

type timing = { event_ts : int; arrival_ts : int }

let timing ~event_ts ~arrival_ts =
  if arrival_ts < event_ts then
    invalid_arg "Event.timing: an event cannot arrive before it happened";
  { event_ts; arrival_ts }

let delay_ticks t = t.arrival_ts - t.event_ts

(* Late relative to a watermark: the frontier already passed the event's
   time when it arrived, so its window may have closed. *)
let is_late t ~watermark = t.event_ts < watermark
