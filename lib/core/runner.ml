module D = Dataplane

type throughput_point = {
  cores : int;
  events_per_sec : float;
  mb_per_sec : float;
  delay_ms : float;
  utilization : float;
}

type outcome = {
  version : D.version;
  pipeline_name : string;
  points : throughput_point list;
  mem_steady_mb : float;
  mem_high_water_mb : float;
  total_events : int;
  dp_stats : D.stats;
  audit_records : int;
  audit_raw_bytes : int;
  audit_compressed_bytes : int;
  verified : bool;
  verifier_report : Sbt_attest.Verifier.report;
  loss : Runtime.Loss.t;
  results : (int * D.sealed_result) list;
  corrections : (int * int * D.sealed_result) list;
  results_corrected : (int * D.sealed_result) list;
  audit : Sbt_attest.Log.batch list;
  spec : Sbt_attest.Verifier.spec;
  registry : Sbt_obs.Metrics.t;
  tee_metrics : bytes;
  tee_quote : Sbt_attest.Quote.quote;
  exec : Sbt_exec.Executor.report option;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 (List.map float_of_int l) /. float_of_int (List.length l)

(* The cloud-side correction merge: for every corrected window keep the
   highest generation, re-seal it under the canonical egress nonce
   ({!Dataplane.reseal_correction}) and splice it over the original
   egress (or in, for a window whose only output was a correction).
   Result: ascending-window sealed output byte-compatible with an
   in-order run. *)
let merge_corrections ~egress_key results corrections =
  let best : (int, int * D.sealed_result) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (w, gen, s) ->
      match Hashtbl.find_opt best w with
      | Some (g, _) when g >= gen -> ()
      | _ -> Hashtbl.replace best w (gen, s))
    corrections;
  let merged =
    List.map
      (fun (w, s) ->
        match Hashtbl.find_opt best w with
        | Some (gen, c) ->
            Hashtbl.remove best w;
            (w, D.reseal_correction ~egress_key ~gen c)
        | None -> (w, s))
      results
  in
  let extra =
    Hashtbl.fold
      (fun w (gen, c) acc -> (w, D.reseal_correction ~egress_key ~gen c) :: acc)
      best []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (merged @ extra)

let run ?(cores_list = [ 2; 4; 8 ]) ?(target_delay_ms = 500.0) ?(version = D.Full)
    ?(hints_enabled = true) ?(fuse = false)
    ?(alloc_mode = Sbt_umem.Allocator.Hint_guided)
    ?(sort_algorithm = Sbt_prim.Sort.Radix) ?(secure_mb = 512) ?(repeats = 1)
    ?(fault_plan = Sbt_fault.Fault.none) ?(late_policy = D.Silent) ?tracer
    ?(deterministic = false) ?exec_domains ?exec_time_scale ?exec_mode
    (pipe : Pipeline.t) frames =
  let max_cores = List.fold_left max 1 cores_list in
  (* Deterministic runs zero the host_scale so no measured host time leaks
     into costs — recordings become byte-reproducible across processes. *)
  let cost =
    if not deterministic then None
    else
      let base =
        match version with
        | D.Insecure -> Sbt_tz.Cost_model.free
        | D.Full | D.Clear_ingress | D.Io_via_os -> Sbt_tz.Cost_model.default
      in
      Some { base with Sbt_tz.Cost_model.host_scale = 0.0 }
  in
  let cfg =
    Runtime.Config.make ~version ~cores:max_cores ~secure_mb ?cost ~alloc_mode
      ~sort_algorithm ~fault_plan ~late_policy ?tracer ~hints_enabled ~fuse ()
  in
  let record () =
    (* With repeats > 1 the trace buffer would accumulate every
       recording; keep only the latest (callers wanting a trace use
       repeats = 1, where latest = kept). *)
    Option.iter Sbt_obs.Tracer.reset tracer;
    Gc.full_major ();
    (* Capture heavy-kernel inputs only when a [`Work] measurement will
       replay them; snapshot copies are pure overhead otherwise. *)
    let capture = exec_domains <> None && exec_mode = Some `Work in
    Session.create ~engine:(`Des max_cores) ~capture ~verify:false cfg
    |> Session.add_tenant ~pipeline:pipe ~source:frames
    |> Session.run_single
  in
  (* Host noise shows up as inflated task costs; repeated recordings keep
     the least-noisy (cheapest) trace. *)
  let r = ref (record ()) in
  for _ = 2 to repeats do
    let r' = record () in
    if
      Sbt_sim.Trace.total_cost_ns r'.Control.trace
      < Sbt_sim.Trace.total_cost_ns !r.Control.trace
    then r := r'
  done;
  let r = !r in
  (* Real-parallel phase: once, on the kept recording, so the wall-clock
     report always corresponds to the trace the outcome carries. *)
  let exec_report =
    Option.map
      (fun domains ->
        Runtime.exec_trace ?time_scale:exec_time_scale ?mode:exec_mode ~domains cfg r)
      exec_domains
  in
  let egress_key = cfg.Runtime.dp_config.D.egress_key in
  let bytes_per_event = Event.bytes_per_event pipe.Pipeline.schema in
  let points =
    List.map
      (fun cores ->
        let res =
          Sbt_sim.Rate_search.max_rate ~trace:r.Control.trace ~cores
            ~target_delay_ns:(target_delay_ms *. 1e6)
            ()
        in
        {
          cores;
          events_per_sec = res.Sbt_sim.Rate_search.rate_eps;
          mb_per_sec =
            res.Sbt_sim.Rate_search.rate_eps *. float_of_int bytes_per_event /. 1e6;
          delay_ms = res.Sbt_sim.Rate_search.delay_at_rate_ns /. 1e6;
          utilization = res.Sbt_sim.Rate_search.utilization;
        })
      cores_list
  in
  (* Cloud-side verification: decode the signed batches and replay. *)
  let records =
    List.concat_map
      (fun b -> Sbt_attest.Log.open_batch ~key:egress_key b)
      r.Control.audit
  in
  let report = Sbt_attest.Verifier.verify r.Control.verifier_spec records in
  let verified =
    match version with
    | D.Insecure -> true (* no attestation in the insecure baseline *)
    | D.Full | D.Clear_ingress | D.Io_via_os -> Sbt_attest.Verifier.ok report
  in
  let audit_records = List.length records in
  let audit_raw = Sbt_attest.Columnar.raw_size records in
  let audit_compressed =
    List.fold_left (fun acc b -> acc + Bytes.length b.Sbt_attest.Log.payload) 0 r.Control.audit
  in
  {
    version;
    pipeline_name = pipe.Pipeline.name;
    points;
    mem_steady_mb = mean r.Control.mem_samples_bytes /. 1e6;
    mem_high_water_mb = float_of_int r.Control.pool_high_water_bytes /. 1e6;
    total_events = r.Control.total_events;
    dp_stats = r.Control.dp_stats;
    audit_records;
    audit_raw_bytes = audit_raw;
    audit_compressed_bytes = audit_compressed;
    verified;
    verifier_report = report;
    loss = r.Control.loss;
    results = List.sort (fun (a, _) (b, _) -> compare a b) r.Control.results;
    corrections = r.Control.corrections;
    results_corrected =
      merge_corrections ~egress_key
        (List.sort (fun (a, _) (b, _) -> compare a b) r.Control.results)
        r.Control.corrections;
    audit = r.Control.audit;
    spec = r.Control.verifier_spec;
    registry = r.Control.registry;
    tee_metrics = r.Control.tee_metrics;
    tee_quote = r.Control.tee_quote;
    exec = exec_report;
  }

let pp_outcome fmt o =
  Format.fprintf fmt "%s / %s: " o.pipeline_name (D.version_name o.version);
  List.iter
    (fun p ->
      Format.fprintf fmt "%dc=%.2fMev/s (%.1fMB/s, delay %.0fms) " p.cores
        (p.events_per_sec /. 1e6) p.mb_per_sec p.delay_ms)
    o.points;
  Format.fprintf fmt "mem=%.0fMB verified=%b@." o.mem_steady_mb o.verified
