(** The StreamBox-TZ data plane: everything that lives in the TEE.

    The data plane encloses (i) all analytics data in uArrays, (ii) the
    trusted primitives as the only computations allowed on that data, and
    (iii) the minimum runtime: the specialized memory allocator and the
    audit log.  The untrusted control plane reaches it exclusively through
    {!Sbt_tz.Smc} with the paper's four-entry interface (plus the PR 7
    fused-super-kernel entry), passing opaque references (paper §3.2,
    §4.2).

    Engine versions (paper Table 5) differ only in their ingestion path
    and cost model; they are selected by {!version}. *)

type version =
  | Full  (** trusted IO, encrypted ingress *)
  | Clear_ingress  (** trusted IO, cleartext ingress (trusted link) *)
  | Io_via_os  (** ingress copied through the untrusted OS *)
  | Insecure  (** no TEE at all: native StreamBox with SBT's compute *)

val version_name : version -> string

type namespace = { ns_tenant : int; ns_owners : (int64, int) Hashtbl.t }
(** A tenant namespace for multi-tenant enclaves (PR 8): [ns_owners] is
    the enclave-level ownership map shared by every tenant's data plane,
    [ns_tenant] the tenant this config's plane mints refs for.  A ref
    presented by the wrong tenant raises {!Cross_tenant_ref} in-TEE.  The
    map is host-side bookkeeping: it never perturbs virtual time, the
    RNG, results, or audit bytes, so a namespaced run is observably
    identical to a solo run. *)

(** What the TEE does with a record whose window has already closed (the
    out-of-order story).  The policy is part of the attestation surface:
    anything but [Silent] is registered as a ["tee.late_policy"] gauge in
    the quoted metrics snapshot, and
    {!Sbt_attest.Verifier.Undeclared_late_handling} fires when the audit
    stream shows late handling the quote never declared. *)
type late_policy =
  | Silent  (** late data is retired without a trace (the historical behaviour) *)
  | Drop_declare
      (** late data is dropped in-TEE but declared: a signed
          {!Sbt_attest.Record.Late_drop} record feeds the verifier's
          degradation verdict *)
  | Retract_reemit
      (** a closed window reopens: the enclave re-runs the window plan
          over {originals + late data} and seals a superseding
          {!Sbt_attest.Record.Correction}; the cloud merge applies
          corrections in generation order *)

val late_policy_code : late_policy -> int
(** The attested wire code: 0 = silent, 1 = drop+declare, 2 = retract+reemit. *)

val late_policy_name : late_policy -> string

type config = {
  version : version;
  platform : Sbt_tz.Platform.t;
  alloc_mode : Sbt_umem.Allocator.mode;
  sort_algorithm : Sbt_prim.Sort.algorithm;
  ingress_key : bytes;  (** AES-128 key shared with sources *)
  egress_key : bytes;  (** key shared with the cloud consumer (egress + audit MAC) *)
  audit_flush_every : int;
  audit_enabled : bool;
  backpressure_threshold : float;
      (** pool-usage fraction above which ingestion stalls the source *)
  adaptive_backpressure : bool;
      (** scale the stall with how far past the threshold the pool is —
          the automatic flow control the paper leaves as future work
          (§4.2); off by default to match the paper's implementation *)
  seed : int64;
  fault_plan : Sbt_fault.Fault.plan;
      (** deterministic fault injection (SMC entry refusal, forced pool
          sheds); {!Sbt_fault.Fault.none} by default — the injection path
          is then never consulted and behaviour is identical to a build
          without the fault layer *)
  late_policy : late_policy;
      (** attested late-data policy; [Silent] (the default) keeps the
          historical behaviour and quote bytes *)
  tracer : Sbt_obs.Tracer.t option;
      (** virtual-time trace sink shared with the DES and control plane;
          [None] (the default) records nothing.  Spans are keyed to the
          TEE's virtual clock and modeled/virtual costs, so enabling
          tracing cannot change any result, audit byte, or verdict. *)
  pool_budget_bytes : int option;
      (** secure-pool budget override, page-granular — how per-tenant
          DRAM quotas are enforced ({!Sbt_core.Multi}); [None] (the
          default) sizes the pool to the platform's full secure region *)
  namespace : namespace option;
      (** tenant namespace this plane mints and guards refs under;
          [None] (the default, single-tenant) skips all guarding *)
}

(** Labelled construction and functional update for {!config} — the one
    way to build a config without writing out every field. *)
module Config : sig
  type t = config

  val make :
    ?version:version ->
    ?cores:int ->
    ?secure_mb:int ->
    ?cost:Sbt_tz.Cost_model.t ->
    ?platform:Sbt_tz.Platform.t ->
    ?alloc_mode:Sbt_umem.Allocator.mode ->
    ?sort_algorithm:Sbt_prim.Sort.algorithm ->
    ?ingress_key:bytes ->
    ?egress_key:bytes ->
    ?audit_flush_every:int ->
    ?audit_enabled:bool ->
    ?backpressure_threshold:float ->
    ?adaptive_backpressure:bool ->
    ?seed:int64 ->
    ?fault_plan:Sbt_fault.Fault.plan ->
    ?late_policy:late_policy ->
    ?tracer:Sbt_obs.Tracer.t ->
    ?pool_budget_bytes:int ->
    ?namespace:namespace ->
    unit ->
    t
  (** Defaults reproduce the paper's Full engine on an 8-core, 512 MB
      platform: hint-guided allocator, radix sort, audit on (off for
      [Insecure]), backpressure at 90% pool usage, no faults, no tracer.
      [cost] defaults per [version] ({!Sbt_tz.Cost_model.free} for
      [Insecure], [default] otherwise); passing [platform] overrides
      [cores]/[secure_mb]/[cost] wholesale. *)

  val with_platform : Sbt_tz.Platform.t -> t -> t
  val with_alloc_mode : Sbt_umem.Allocator.mode -> t -> t
  val with_sort_algorithm : Sbt_prim.Sort.algorithm -> t -> t
  val with_fault_plan : Sbt_fault.Fault.plan -> t -> t
  val with_tracer : Sbt_obs.Tracer.t -> t -> t

  val with_backpressure : ?adaptive:bool -> float -> t -> t
  (** [with_backpressure thr] sets the stall threshold; [~adaptive:true]
      also turns on adaptive stalling. *)

  val with_audit : ?flush_every:int -> bool -> t -> t
end

val default_config : ?version:version -> ?cores:int -> ?secure_mb:int -> unit -> config
(** [Config.make] restricted to its historical labels. *)

type t

(** Consumption hints attached by the control plane to an invocation's
    outputs (paper §6.2): advisory, validated never to affect
    correctness. *)
type hint = H_after of int64 | H_parallel

type param =
  | P_key_field of int
  | P_value_field of int
  | P_ts_field of int
  | P_window_size of int
  | P_slide of int  (** sliding-window slide; defaults to the window size *)
  | P_k of int
  | P_lo of int32
  | P_hi of int32
  | P_shift of int
  | P_fields of int array
  | P_session_gap of int
      (** Segment only: switch from the fixed window grid to gap-based
          session windowing.  Assignment is stateful, global and in-order
          across batches (a new session opens after the gap's worth of
          event-time silence); the "window" number of each output is the
          session id, and egress refuses to seal a session until the
          watermark clears its last event time plus the gap. *)

type request =
  | R_ingest_events of {
      payload : bytes;
      encrypted : bool;
      stream : int;
      seq : int;
      mac : bytes;
          (** frame HMAC from an authenticated link; [Bytes.empty] skips
              verification (the pre-fault-model behaviour) *)
    }
  | R_ingest_watermark of { value : int }
  | R_declare_gap of {
      stream : int;
      seq : int;
      events : int;
      windows : int list;
      reason : Sbt_attest.Record.gap_reason;
    }
      (** Declare, inside the TEE, that a frame was lost to a benign
          fault.  Emits a signed {!Sbt_attest.Record.Gap} audit record so
          the cloud verifier reports degradation instead of flagging the
          missing dataflow as tampering. *)
  | R_invoke of {
      op : Sbt_prim.Primitive.t;
      inputs : int64 list;
      trigger : int option;  (** audit id of the triggering watermark *)
      params : param list;
      hints : hint list;
      retire_inputs : bool;
    }
  | R_invoke_fused of {
      steps : Sbt_prim.Fused.step list;
      inputs : int64 list;
      trigger : int option;
      hints : hint list;
      retire_inputs : bool;
    }
      (** Run a fused super-kernel (PR 7): the whole chain of per-record
          steps executes in a single trusted entry ({!Sbt_tz.Smc.Fused})
          over one input uArray — one world-switch pair instead of one per
          primitive — and emits a single composite
          {!Sbt_attest.Record.Fused} audit record carrying the ordered op
          ids, the encoded parameters, and an in-TEE chain hash.
          {!Rejected} if the chain has fewer than two steps or is invalid
          for the input width ({!Sbt_prim.Fused.width_after}). *)
  | R_egress of { input : int64; window : int }
  | R_late_drop of { input : int64; window : int }
      (** Drop+declare a late batch: the input dies in-TEE, but a signed
          {!Sbt_attest.Record.Late_drop} (window, event count) makes the
          loss a declared, attested fact rather than silence. *)
  | R_egress_correction of { input : int64; window : int; gen : int }
      (** Seal a superseding result for an already-egressed window under
          the correction nonce domain for ([window], [gen]); emits a
          {!Sbt_attest.Record.Correction}.  Generations are 1-based and
          must stay within a byte ({!Rejected} otherwise). *)
  | R_install_udf of { udf : Udf.t; cert : bytes }
      (** Admit a certified UDF (paper §4.2); the certificate must verify
          under the trusted party's key or the request is {!Rejected}. *)
  | R_invoke_udf of {
      name : string;
      version : int;
      inputs : int64 list;
      trigger : int option;
      value_field : int;
      hints : hint list;
      retire_inputs : bool;
      state_output : bool;
          (** allocate the output with {!Sbt_umem.Uarray.State} scope: it
              survives primitive executions and is only freed by an
              explicit [R_retire] (operator state, paper §6.1) *)
    }  (** Run an installed UDF over the value field of one uArray. *)
  | R_retire of { input : int64 }
      (** Explicitly retire a uArray — required for State-scope arrays,
          which ordinary [retire_inputs] never touches. *)
  | R_checkpoint of { control : bytes; watermark : int }
      (** The Checkpoint trusted primitive (crash recovery).  Appends a
          {!Sbt_attest.Record.Checkpoint} audit record, flushes the log,
          serializes all volatile TEE state (PRNG limbs, allocator and
          audit-log cursors, every live uArray with its opaque reference)
          together with the caller-supplied opaque [control] section, and
          seals the blob under the device key ({!Sbt_recovery.Seal}).
          Only ciphertext crosses to normal-world storage. *)

type output = { win : int; ref_ : int64; events : int }

type sealed_result = { window : int; cipher : bytes; tag : bytes; events : int; width : int }

type response =
  | Rs_outputs of output list
  | Rs_watermark of { audit_id : int; value : int }
  | Rs_egress of sealed_result
  | Rs_ingested of { out : output; stalled_ns : float }
      (** [stalled_ns > 0] models backpressure: secure-memory usage was
          above the threshold, so the source was slowed by that long
          before this batch could enter (paper §4.2) *)
  | Rs_checkpoint of { blob : bytes; seq : int }
      (** Sealed checkpoint ciphertext and its monotonic sequence number
          (also recorded in the signed audit log, giving the verifier a
          rollback lower bound). *)

exception Rejected of string
(** Structurally invalid request (wrong arity, bad params, fabricated
    reference surfaced as {!Opaque.Invalid_reference} instead). *)

exception Cross_tenant_ref of { ref_ : int64; owner : int; tenant : int }
(** A live reference belonging to [owner] reached [tenant]'s dispatch: the
    confused-control-plane case the tenant namespace exists to catch.
    Distinct from {!Opaque.Invalid_reference} (fabricated/stale ref) —
    the ownership check fires in-TEE before any table lookup. *)

exception Overloaded of { stalled_ns : float }
(** The secure pool cannot absorb this ingest (or the fault plan forced a
    shed): the batch is refused and the source must stall [stalled_ns],
    which escalates with consecutive sheds.  Load shedding, not a crash —
    the caller degrades by declaring a gap ({!R_declare_gap}). *)

val create : config -> t
(** Builds the platform-attached data plane and registers the SMC
    entries.  [Init] is called once here. *)

type restored = {
  rt : t;  (** the recovered data plane (fresh boot, restored state) *)
  control : bytes;  (** the opaque control-plane section, returned verbatim *)
  ckpt_seq : int;  (** the checkpoint's authenticated sequence number *)
  log_seq : int;  (** the audit-log batch cursor at checkpoint time *)
}

val restore : config -> expect_seq:int -> bytes -> restored
(** Boot-time recovery: create a fresh data plane from [config] and replay
    a sealed checkpoint into it.  Raises {!Sbt_recovery.Seal.Tamper} if the
    blob fails authentication and {!Sbt_recovery.Seal.Rollback} if its
    sequence number is below [expect_seq] (the supervisor derives
    [expect_seq] from Checkpoint records in the signed audit log, so a
    rolled-back blob cannot masquerade as the latest). *)

val call : t -> request -> response
(** Cross into the TEE ([Insecure] version: plain call, no crossing). *)

val debug_dump : t -> string
(** The fourth (debug) entry: a one-line state summary. *)

val finalize : t -> unit

(** {2 Audit and results plumbing (cloud side of the model)} *)

val uploaded_batches : t -> Sbt_attest.Log.batch list
(** Signed audit batches flushed so far, oldest first. *)

val audit_records_for_test : t -> Sbt_attest.Record.t list
(** Decode all uploaded batches plus pending records — test/verify helper
    that performs the MAC checks a real consumer would. *)

val open_result : egress_key:bytes -> sealed_result -> int32 array array
(** Decrypt and authenticate an egressed window result (the cloud
    consumer's view).  Raises [Invalid_argument] on a bad MAC. *)

val reseal_correction : egress_key:bytes -> gen:int -> sealed_result -> sealed_result
(** The cloud-side correction merge step: authenticate a
    [R_egress_correction] result, open it under its (window, [gen])
    correction nonce and re-seal it under the canonical egress nonce.
    After the merge the corrected window is byte-identical to what an
    in-order run would have sealed, so {!open_result} (and any downstream
    consumer) treats it like an original.  Raises [Invalid_argument] on a
    bad MAC; identity on unauthenticated ([Insecure]) results. *)

(** {2 Accounting} *)

type stats = {
  compute_ns : float;  (** measured host time inside primitives *)
  mem_ns : float;  (** measured host time in alloc/retire *)
  crypto_ns : float;  (** measured host time in en/decryption *)
  ingest_ns : float;  (** measured host time unpacking ingress data *)
  switch_pairs : int;
  modeled_switch_ns : float;
  modeled_copy_ns : float;
  invocations : int;
  events_ingested : int;
  bytes_ingested : int;
  backpressure_stalls : int;
  sheds : int;  (** ingests refused under pool pressure ({!Overloaded}) *)
  smc_busy_rejections : int;
      (** injected transient SMC refusals ({!Sbt_tz.Smc.Entry_busy}) *)
}

val stats : t -> stats
val live_refs : t -> int
val pool_committed_bytes : t -> int
val pool_high_water_bytes : t -> int
val reset_high_water : t -> unit
val allocator : t -> Sbt_umem.Allocator.t
val set_now_ns : t -> float -> unit
(** Advance the TEE's secure clock (driven by the DES's virtual time; a
    real deployment reads a secure timer). *)

val now_ns : t -> float
(** The secure clock's current virtual time. *)

val metrics_quote : t -> nonce:bytes -> bytes * Sbt_attest.Quote.quote
(** Export the TEE-side metrics registry the only way secure-world state
    may leave: as a serialized snapshot ({!Sbt_obs.Metrics.encode_snapshot})
    quoted under the device key against the verifier's [nonce] — the same
    path that authenticates audit uploads.  The verifier checks the quote
    against [Sbt_crypto.Sha256.digest payload] before trusting any
    number in it. *)

val set_ingest_width : t -> int -> unit
(** Record width (32-bit fields per event) of ingested payloads —
    installed with the pipeline, part of the certified configuration. *)

type capture = {
  cap_op : Sbt_prim.Primitive.t;
  cap_params : param list;
  cap_inputs : (int * int * Sbt_umem.Uarray.buf) list;
      (** per input: (width, records, host-heap snapshot of the raw data) *)
  cap_steps : Sbt_prim.Fused.step list;
      (** non-empty iff the invocation was a fused super-kernel
          ([R_invoke_fused]); the replay then runs
          {!Sbt_prim.Par_kernel.fused_raw} instead of dispatching on
          [cap_op] *)
}
(** Snapshot of one heavy primitive invocation, taken on entry to
    [R_invoke] — before outputs are allocated or inputs retired.  The
    executor's [`Work] mode replays captures through
    {!Sbt_prim.Par_kernel} into throwaway buffers, so measured wall time
    reflects the real kernels while the recorded pass's observables stay
    untouched (DESIGN.md §9). *)

val set_capture : t -> (capture -> unit) option -> unit
(** Install (or clear) the capture sink.  Only data-parallel-worthy ops
    (sort, merges, segment, per-key aggregation, filter/select, project,
    concat) are captured; scalar folds are skipped because copying their
    input would cost more than replaying it.  Snapshots are host-heap
    copies and never touch the secure pool's accounting. *)

val audit_log_stats : t -> int * int * int
(** (records produced, raw bytes, compressed bytes). *)
