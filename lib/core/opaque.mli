(** Opaque references: the only names for in-TEE data that ever leave the
    TEE (paper §3.2, §8).

    References are 64-bit random integers drawn from the data plane's
    PRNG.  The table tracks every live reference; any incoming reference
    is validated by lookup and a fabricated or stale one is rejected with
    {!Invalid_reference} — the attack the paper's design thwarts. *)

type t

exception Invalid_reference of int64

val create : rng:Sbt_crypto.Rng.t -> t

val register : t -> Sbt_umem.Uarray.t -> int64
(** Mint a fresh reference for a uArray. *)

val resolve : t -> int64 -> Sbt_umem.Uarray.t
(** Raises {!Invalid_reference} for unknown references. *)

val remove : t -> int64 -> unit
(** Drop a reference (after its uArray is retired).  Raises
    {!Invalid_reference} if absent — a double-free is as suspicious as a
    forgery. *)

val live_count : t -> int
val mem : t -> int64 -> bool

val restore : t -> ref_:int64 -> Sbt_umem.Uarray.t -> unit
(** Checkpoint restore: re-bind a recorded reference to its rebuilt
    uArray without drawing from the RNG (whose restored limbs must
    continue the original sequence).  Raises [Invalid_argument] on a
    zero or already-bound reference. *)

val sorted_bindings : t -> (int64 * Sbt_umem.Uarray.t) list
(** Live (reference, uArray) pairs in ascending uArray-id order — the
    canonical serialization order for checkpoints. *)
