module P = Sbt_prim.Primitive
module D = Dataplane

type batch_op =
  | B_sort of { key_field : int; secondary_value : int option }
  | B_filter_band of { field : int; lo : int32; hi : int32 }
  | B_project of int array
  | B_select of { field : int; value : int32 }
  | B_shift_key of { field : int; shift : int }

type wctx = {
  window : int;
  ready : (int * int64) list;
  invoke :
    ?params:D.param list ->
    ?hints:D.hint list ->
    ?retire:bool ->
    P.t ->
    int64 list ->
    int64 list;
  invoke_udf :
    ?hints:D.hint list ->
    ?retire:bool ->
    ?state_output:bool ->
    name:string ->
    version:int ->
    value_field:int ->
    int64 list ->
    int64 list;
  retire_ref : int64 -> unit;
}

type window_kind = [ `Fixed | `Session of int ]

type t = {
  name : string;
  schema : Event.schema;
  window_size_ticks : int;
  window_slide_ticks : int;
  window_kind : window_kind;
  streams : int;
  batch_ops : batch_op list;
  window_ops : P.t list;
  window_udf_invocations : int;
  udfs : (Udf.t * bytes) list;
  plan : wctx -> int64;
}

let batch_op_primitive = function
  | B_sort _ -> P.Sort
  | B_filter_band _ -> P.Filter_band
  | B_project _ -> P.Project
  | B_select _ -> P.Select
  | B_shift_key _ -> P.Shift_key

let session_gap p = match p.window_kind with `Fixed -> None | `Session g -> Some g

let with_session_gap p ~gap_ticks =
  if gap_ticks <= 0 then invalid_arg "Pipeline.with_session_gap: gap must be positive";
  if p.batch_ops <> [] then
    invalid_arg "Pipeline.with_session_gap: session windows need a pipeline with no batch stages";
  { p with window_kind = `Session gap_ticks }

let verifier_spec ?freshness_bound_us ?(late_policy = 0) p =
  {
    Sbt_attest.Verifier.batch_ops = List.map (fun op -> P.to_id (batch_op_primitive op)) p.batch_ops;
    window_ops =
      List.map P.to_id p.window_ops
      @ List.init p.window_udf_invocations (fun _ -> P.udf_id);
    window_size = p.window_size_ticks;
    window_slide = p.window_slide_ticks;
    freshness_bound = freshness_bound_us;
    late_policy;
    session_gap = session_gap p;
  }

let default_window = Event.ticks_per_second (* 1-second windows, as in §9.2 *)

let refs_of ready = List.map snd ready
let one = function [ r ] -> r | _ -> invalid_arg "Pipeline: expected a single output"

let win_sum ?(window_size_ticks = default_window) ?window_slide_ticks () =
  {
    name = "WinSum";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = Option.value ~default:window_size_ticks window_slide_ticks;
    streams = 1;
    batch_ops = [];
    window_ops = [ P.Sum ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        one (ctx.invoke P.Sum ~params:[ D.P_value_field Event.default.value_field ] (refs_of ctx.ready)));
  }

let filter ?(window_size_ticks = default_window) ?(lo = 0l) ?(hi = 42949672l) () =
  (* Uniform 32-bit values: the default band keeps ~1% (the paper's
     selectivity, after [67]). *)
  {
    name = "Filter";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ B_filter_band { field = Event.default.value_field; lo; hi } ];
    window_ops = [ P.Concat ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan = (fun ctx -> one (ctx.invoke P.Concat (refs_of ctx.ready)));
  }

let fps_chain ?(window_size_ticks = default_window) () =
  (* Filter-Project-Select chain (PR 7): five adjacent per-record batch
     stages, every one fusable, so the fusion pass collapses the whole
     run into a single super-kernel.  Unfused, each segment costs five
     world switches for its batch stages; fused, one.  Keys are
     plug-style ids ([house*256 + plug] shape), so shifting by 8 then
     selecting one house id keeps a deterministic ~1/40 slice of the
     positive-value half. *)
  let vf = Event.default.value_field in
  {
    name = "FpsChain";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops =
      [
        B_filter_band { field = vf; lo = 0l; hi = Int32.max_int };
        B_project [| 0; 1; 2 |];
        B_shift_key { field = 0; shift = 8 };
        B_select { field = 0; value = 5l };
        B_filter_band { field = vf; lo = 0l; hi = 1431655765l };
      ];
    window_ops = [ P.Concat ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan = (fun ctx -> one (ctx.invoke P.Concat (refs_of ctx.ready)));
  }

let sorted_batch = B_sort { key_field = Event.default.key_field; secondary_value = None }

let merge_ready ctx =
  one
    (ctx.invoke P.Kway_merge ~params:[ D.P_key_field Event.default.key_field ] (refs_of ctx.ready))

let group_topk ?(window_size_ticks = default_window) ?(k = 10) () =
  {
    name = "TopK";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ sorted_batch ];
    window_ops = [ P.Kway_merge; P.Top_k_per_key ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let merged = merge_ready ctx in
        one
          (ctx.invoke P.Top_k_per_key
             ~params:[ D.P_key_field 0; D.P_value_field Event.default.value_field; D.P_k k ]
             [ merged ]));
  }

let distinct ?(window_size_ticks = default_window) () =
  {
    name = "Distinct";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ sorted_batch ];
    window_ops = [ P.Kway_merge; P.Unique; P.Count ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let merged = merge_ready ctx in
        let uniq = one (ctx.invoke P.Unique ~params:[ D.P_key_field 0 ] [ merged ]) in
        one (ctx.invoke P.Count [ uniq ]));
  }

let temp_join ?(window_size_ticks = default_window) () =
  {
    name = "Join";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 2;
    batch_ops = [ sorted_batch ];
    window_ops = [ P.Kway_merge; P.Kway_merge; P.Join ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let side s = List.filter_map (fun (st, r) -> if st = s then Some r else None) ctx.ready in
        let merge refs = one (ctx.invoke P.Kway_merge ~params:[ D.P_key_field 0 ] refs) in
        let left = merge (side 0) in
        let right = merge (side 1) in
        one
          (ctx.invoke P.Join
             ~params:[ D.P_key_field 0; D.P_value_field Event.default.value_field ]
             [ left; right ]));
  }

let power_grid ?(window_size_ticks = default_window) ?(k = 10) () =
  (* Per-plug average power; plugs above the all-plug average; per-house
     count of such plugs; the K houses with the most (Figure 2 / §9.2). *)
  {
    name = "Power";
    schema = Event.power;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ B_sort { key_field = Event.power.key_field; secondary_value = None } ];
    window_ops =
      [ P.Kway_merge; P.Avg_per_key; P.Average; P.Filter_band; P.Shift_key; P.Count_per_key; P.Top_k ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let merged =
          one (ctx.invoke P.Kway_merge ~params:[ D.P_key_field Event.power.key_field ] (refs_of ctx.ready))
        in
        let avgs =
          one
            (ctx.invoke P.Avg_per_key
               ~params:[ D.P_key_field 0; D.P_value_field Event.power.value_field ]
               [ merged ])
        in
        (* [avgs] feeds both the global average and the band filter: keep it
           live across the first read. *)
        let global = one (ctx.invoke P.Average ~params:[ D.P_value_field 1 ] ~retire:false [ avgs ]) in
        let high = one (ctx.invoke P.Filter_band ~params:[ D.P_value_field 1 ] [ avgs; global ]) in
        (* plug key = house*256 + plug, so shifting by 8 yields the house id
           and preserves sortedness. *)
        let by_house = one (ctx.invoke P.Shift_key ~params:[ D.P_key_field 0; D.P_shift 8 ] [ high ]) in
        let counts = one (ctx.invoke P.Count_per_key ~params:[ D.P_key_field 0 ] [ by_house ]) in
        one (ctx.invoke P.Top_k ~params:[ D.P_value_field 1; D.P_k k ] [ counts ]));
  }

let union_count ?(window_size_ticks = default_window) () =
  {
    name = "UnionCount";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 2;
    batch_ops = [];
    window_ops = [ P.Concat; P.Count ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        (* Union: all segments of both streams feed one Concat. *)
        let all = one (ctx.invoke P.Concat (refs_of ctx.ready)) in
        one (ctx.invoke P.Count [ all ]));
  }

let load_predict ?(window_size_ticks = default_window) ?(alpha_percent = 50) () =
  if alpha_percent < 0 || alpha_percent > 100 then
    invalid_arg "Pipeline.load_predict: alpha_percent must be in [0, 100]";
  (* EWMA as a certified Combine2 UDF: prev prediction x current average
     -> new prediction, in integer arithmetic. *)
  let alpha = Int64.of_int alpha_percent in
  let ewma =
    {
      Udf.name = "ewma";
      version = 1;
      body =
        Udf.Combine2
          (fun prev cur ->
            Int64.to_int32
              (Int64.div
                 (Int64.add
                    (Int64.mul (Int64.sub 100L alpha) (Int64.of_int32 prev))
                    (Int64.mul alpha (Int64.of_int32 cur)))
                 100L));
    }
  in
  let cert =
    Udf.certificate_bytes
      (Udf.certify ~key:(Bytes.of_string "sbt-egress-key16") ewma)
  in
  (* Cross-window operator state: the previous window's predictions, held
     in a State-scope uArray and replaced each window. *)
  let state : int64 option ref = ref None in
  {
    name = "LoadPredict";
    schema = Event.power;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ B_sort { key_field = Event.power.key_field; secondary_value = None } ];
    window_ops = [ P.Kway_merge; P.Avg_per_key; P.Shift_key; P.Avg_per_key; P.Join ];
    window_kind = `Fixed;
    window_udf_invocations = 1;
    udfs = [ (ewma, cert) ];
    plan =
      (fun ctx ->
        let merged =
          one
            (ctx.invoke P.Kway_merge
               ~params:[ D.P_key_field Event.power.key_field ]
               (refs_of ctx.ready))
        in
        (* Per-plug averages, coarsened to houses, then per-house average
           load for this window. *)
        let plug_avgs =
          one
            (ctx.invoke P.Avg_per_key
               ~params:[ D.P_key_field 0; D.P_value_field Event.power.value_field ]
               [ merged ])
        in
        let by_house =
          one (ctx.invoke P.Shift_key ~params:[ D.P_key_field 0; D.P_shift 8 ] [ plug_avgs ])
        in
        let house_avgs =
          one (ctx.invoke P.Avg_per_key ~params:[ D.P_key_field 0; D.P_value_field 1 ] [ by_house ])
        in
        (* Join previous predictions with this window's averages.  On the
           first window the state is the current averages themselves
           (ewma(a, a) = a keeps the declared op multiset identical). *)
        let prev = Option.value ~default:house_avgs !state in
        let joined =
          one
            (ctx.invoke P.Join ~retire:false
               ~params:[ D.P_key_field 0; D.P_value_field 1 ]
               [ prev; house_avgs ])
        in
        (match !state with
        | Some st -> ctx.retire_ref st
        | None -> ());
        ctx.retire_ref house_avgs;
        let predictions =
          one
            (ctx.invoke_udf ~state_output:true ~name:"ewma" ~version:1 ~value_field:1 [ joined ])
        in
        state := Some predictions;
        predictions);
  }

let keyed_pipeline name op extra_params ?(window_size_ticks = default_window) () =
  {
    name;
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [ sorted_batch ];
    window_ops = [ P.Kway_merge; op ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let merged = merge_ready ctx in
        one
          (ctx.invoke op
             ~params:([ D.P_key_field 0; D.P_value_field Event.default.value_field ] @ extra_params)
             [ merged ]));
  }

let sum_per_key ?window_size_ticks () =
  keyed_pipeline "SumPerKey" P.Sum_per_key [] ?window_size_ticks ()

let avg_per_key ?window_size_ticks () =
  keyed_pipeline "AvgPerKey" P.Avg_per_key [] ?window_size_ticks ()

let median_per_key ?window_size_ticks () =
  keyed_pipeline "MedianPerKey" P.Median_per_key [] ?window_size_ticks ()

let count_by_window ?(window_size_ticks = default_window) () =
  {
    name = "CountByWindow";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [];
    window_ops = [ P.Concat; P.Count ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let all = one (ctx.invoke P.Concat (refs_of ctx.ready)) in
        one (ctx.invoke P.Count [ all ]));
  }

let vitals ?(window_size_ticks = default_window) () =
  (* Medical telemetry (after the TEE medical-streaming case study):
     per-patient vital averages per window.  Deliberately has no batch
     stages — all work happens at window close over whatever segments are
     ready — so a correction re-run over {originals + late arrivals} is
     just the same plan on a longer ready list.  Concat order varies with
     arrival order; the in-window Sort re-canonicalizes, and Avg_per_key
     folds each key run order-independently, so the sealed output bytes
     depend only on the window's event multiset.  That is what makes the
     retract-and-reemit convergence property (disorder-permuted input ==
     in-order run, byte for byte) provable rather than aspirational. *)
  {
    name = "Vitals";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    window_kind = `Fixed;
    streams = 1;
    batch_ops = [];
    window_ops = [ P.Concat; P.Sort; P.Avg_per_key ];
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let all = one (ctx.invoke P.Concat (refs_of ctx.ready)) in
        let sorted = one (ctx.invoke P.Sort ~params:[ D.P_key_field 0 ] [ all ]) in
        one
          (ctx.invoke P.Avg_per_key
             ~params:[ D.P_key_field 0; D.P_value_field Event.default.value_field ]
             [ sorted ]));
  }

let min_max ?(window_size_ticks = default_window) () =
  {
    name = "MinMax";
    schema = Event.default;
    window_size_ticks;
    window_slide_ticks = window_size_ticks;
    streams = 1;
    batch_ops = [];
    window_ops = [ P.Concat; P.Min_max ];
    window_kind = `Fixed;
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        let all = one (ctx.invoke P.Concat (refs_of ctx.ready)) in
        one (ctx.invoke P.Min_max ~params:[ D.P_value_field Event.default.value_field ] [ all ]));
  }
