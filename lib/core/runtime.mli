(** The unified run API: one entry point, two execution engines.

    [run ~engine] executes a pipeline over a frame stream and returns the
    same {!run_result} whichever engine drives it:

    - [`Des cores] — the discrete-event engine: the control plane runs for
      real (every data-plane effect happens once, serially) while the DES
      schedules its task graph on [cores] {e virtual} cores and accounts
      virtual time.  This is the recording engine behind every figure.
    - [`Domains n] — the real-parallel engine: records exactly as
      [`Des cfg.cores] does, then replays the recorded task graph on [n]
      OCaml 5 domains with the work-stealing executor
      ({!Sbt_exec.Executor}) and reports wall-clock scaling in
      {!run_result.exec}.

    {b Invariant} (tested by the engine-equivalence property): sealed
    results, audit bytes and verifier verdicts are byte-identical across
    [`Des cores], [`Domains 1] and [`Domains n].  The observables come
    from the single serial recording pass; the parallel phase only
    measures.  Determinism across {e processes} additionally needs a
    noise-free cost model ([host_scale = 0]); see
    {!Sbt_tz.Cost_model.free}. *)

type engine = [ `Des of int  (** virtual cores *) | `Domains of int  (** real domains *) ]

type config = {
  dp_config : Dataplane.config;
  cores : int;  (** virtual cores for the recording run *)
  hints_enabled : bool;
  fuse : bool;
      (** run the {!Ir.fuse} pass over the lowered batch stages, executing
          each maximal fusable run as one fused super-kernel (one world
          switch, one composite audit record).  Off by default; sealed
          results, verdicts and loss are byte-identical either way. *)
}

(** Labelled construction and functional update for {!config}.  [make]'s
    data-plane labels are forwarded to {!Dataplane.Config.make}; passing
    [?dp_config] overrides them wholesale. *)
module Config : sig
  type t = config

  val make :
    ?version:Dataplane.version ->
    ?cores:int ->
    ?secure_mb:int ->
    ?cost:Sbt_tz.Cost_model.t ->
    ?platform:Sbt_tz.Platform.t ->
    ?alloc_mode:Sbt_umem.Allocator.mode ->
    ?sort_algorithm:Sbt_prim.Sort.algorithm ->
    ?ingress_key:bytes ->
    ?egress_key:bytes ->
    ?audit_flush_every:int ->
    ?audit_enabled:bool ->
    ?backpressure_threshold:float ->
    ?adaptive_backpressure:bool ->
    ?seed:int64 ->
    ?fault_plan:Sbt_fault.Fault.plan ->
    ?late_policy:Dataplane.late_policy ->
    ?tracer:Sbt_obs.Tracer.t ->
    ?hints_enabled:bool ->
    ?fuse:bool ->
    ?dp_config:Dataplane.config ->
    unit ->
    t
  (** Defaults: 8 cores, hints on, fusion off, and
      {!Dataplane.Config.make}'s defaults for the data plane.  [cores]
      sizes both the recording DES and the data-plane platform. *)

  val with_dp_config : Dataplane.config -> t -> t
  val with_cores : int -> t -> t
  val with_hints : bool -> t -> t
  val with_fuse : bool -> t -> t
  val with_tracer : Sbt_obs.Tracer.t -> t -> t
  val with_fault_plan : Sbt_fault.Fault.plan -> t -> t
end

val default_config : ?version:Dataplane.version -> ?cores:int -> unit -> config
(** [Config.make] with only the historical labels — kept so existing
    call sites read unchanged. *)

(** Loss accounting for one run: what graceful degradation dropped, and
    declared.  Every drop is covered by a signed Gap record, so
    [gaps_declared >= batches_dropped] whenever loss occurred. *)
module Loss : sig
  type t = private {
    gaps_declared : int;  (** signed Gap records: link holes + dropped batches *)
    batches_dropped : int;  (** frames lost to the link or shed past the retry budget *)
    events_dropped : int;  (** events inside dropped frames (link holes excluded) *)
  }

  val none : t
  val v : gaps_declared:int -> batches_dropped:int -> events_dropped:int -> t
  val gaps_declared : t -> int
  val batches_dropped : t -> int
  val events_dropped : t -> int

  val is_lossless : t -> bool
  (** No gaps, no drops — the run saw every event it was sent. *)

  val pp : Format.formatter -> t -> unit
end

type run_result = {
  results : (int * Dataplane.sealed_result) list;  (** per closed window *)
  corrections : (int * int * Dataplane.sealed_result) list;
      (** (window, generation, sealed) — superseding re-emissions under
          the retract-and-reemit late policy, in emission order.
          Generations are 1-based and contiguous per window; apply with
          {!Dataplane.reseal_correction} (highest generation wins).
          Empty under any other policy. *)
  trace : Sbt_sim.Trace.t;
  dp_stats : Dataplane.stats;
  pool_high_water_bytes : int;
  mem_samples_bytes : int list;
      (** committed secure memory sampled at every window close — the
          steady-state usage Figure 7 annotates *)
  audit : Sbt_attest.Log.batch list;
  verifier_spec : Sbt_attest.Verifier.spec;
  makespan_ns : float;
  total_events : int;
  tasks_executed : int;
  live_refs_after : int;
  loss : Loss.t;  (** what degradation dropped — see {!Loss} *)
  registry : Sbt_obs.Metrics.t;
      (** the normal-world metrics registry for this run (always
          populated; counting is deterministic and costs no virtual
          time).  Control-plane counters here double-book the loss
          accounting above so tests can cross-check them; a [`Domains]
          run adds the executor's [exec.*] counters. *)
  tee_metrics : bytes;
      (** TEE-side registry snapshot ({!Sbt_obs.Metrics.encode_snapshot}),
          exported through the quote path — never read directly *)
  tee_quote : Sbt_attest.Quote.quote;
      (** quote over [Sha256 (tee_metrics)] under the device key, nonce
          ["sbt-run-final"] *)
  exec : Sbt_exec.Executor.report option;
      (** real-parallel measurement — [Some] iff the engine was [`Domains _] *)
  work : (int -> Sbt_exec.Executor.work_fn option) option;
      (** [Some] iff the run captured heavy kernels: maps a trace node's
          schedule index to a replay of the real primitive kernels that
          task ran, through {!Sbt_prim.Par_kernel} into throwaway
          buffers — what the executor's [`Work] mode executes *)
}

val run :
  ?engine:engine ->
  ?exec_time_scale:float ->
  ?exec_mode:Sbt_exec.Executor.mode ->
  ?capture:bool ->
  ?registry:Sbt_obs.Metrics.t ->
  config ->
  Pipeline.t ->
  Sbt_net.Frame.t list ->
  run_result
(** Execute the pipeline over the frame stream.  [engine] defaults to
    [`Des cfg.cores].  [exec_time_scale] and [exec_mode] apply only to
    the [`Domains _] measurement phase (see {!Sbt_exec.Executor.run}).

    New code should prefer the {!Session} builder ([Session.create cfg
    |> add_tenant ... |> run]) — this function is the engine underneath
    it, kept public for the 1-tenant wrappers.

    [registry] supplies the control-plane metrics registry (possibly a
    {!Sbt_obs.Metrics.scoped} view, e.g. a tenant's [tenantN.*] scope);
    by default a fresh registry is created.  Metrics are measurement
    only — no observable depends on which registry absorbs them.

    [capture] records heavy-kernel input snapshots during the serial pass
    and populates {!run_result.work}; it defaults to [true] exactly when
    [exec_mode] is [`Work] (the mode that replays them).  Capturing never
    affects observables — snapshots live on the host heap and the secure
    pool's accounting ignores them.

    Frames must arrive in source order (watermarks after the data they
    cover); the last frame should be a watermark closing every window.

    Faults degrade, never crash: transient SMC refusals are retried with
    exponential backoff up to the fault plan's budget; corrupt or
    unauthenticated frames, pool sheds, and link sequence holes each drop
    the affected batch and emit a signed Gap audit record, so the cloud
    verifier reports the loss as degradation instead of tampering. *)

val exec_trace :
  ?time_scale:float ->
  ?mode:Sbt_exec.Executor.mode ->
  ?scratch_pages:int ->
  domains:int ->
  config ->
  run_result ->
  Sbt_exec.Executor.report
(** Run the real-parallel measurement phase once more over an existing
    recording — benches use this to sweep domain counts without
    re-recording.  The executor's scratch pool gets the platform's
    secure-DRAM budget; spans/counters go to the run's tracer and
    registry.  Under [~mode:`Work] the recording must have captured
    kernels ([run ~capture:true] or [~exec_mode:`Work]); otherwise every
    task replays as a no-op and the measurement is vacuous. *)

exception
  Crashed of {
    site : Sbt_fault.Fault.site;
    uploads : Sbt_attest.Log.batch list;  (** audit batches durable at crash, oldest first *)
    results : (int * Dataplane.sealed_result) list;  (** results egressed before the crash *)
  }
(** An injected crash ({!Sbt_fault.Fault.plan}[.crash]) killed the run.
    The payload is exactly what the normal world already held durably —
    everything in-TEE is gone.  {!run_supervised} catches this and
    restarts; it escapes only when the restart budget is exhausted (or
    the caller ran {!run} directly with a crash armed). *)

(** Result of a supervised (crash-recovering) run: the stitched durable
    state after every boot epoch, plus the multi-epoch verifier's
    report.  For a given [ckpt_every], [sv_results] and [sv_audit] are
    byte-identical whether or not crashes occurred — the exactly-once
    guarantee the recovery tests and the CI smoke assert. *)
type supervised = {
  sv_results : (int * Dataplane.sealed_result) list;  (** stitched, ascending window *)
  sv_audit : Sbt_attest.Log.batch list;  (** stitched, oldest first *)
  sv_epochs : (Sbt_attest.Epoch.sealed * Sbt_attest.Log.batch list) list;
      (** one (sealed manifest, audit slice) per boot epoch, oldest
          first — the exact input {!Sbt_attest.Verifier.verify_epochs}
          takes *)
  sv_report : Sbt_attest.Verifier.report;
      (** multi-epoch verification: no window emitted twice, none lost,
          no rollback, freshness across the restart gap *)
  sv_crash_sites : Sbt_fault.Fault.site list;  (** one per crash, in order *)
  sv_epoch_count : int;  (** boots, = crashes + 1 *)
  sv_replayed_frames : int;  (** frames re-ingested from the replay buffer *)
  sv_checkpoints : int;
  sv_checkpoint_bytes : int;  (** total sealed-blob bytes exported *)
  sv_last_run : run_result option;  (** the completing boot's full result *)
}

(** A resumable per-partition node — the fleet-facing decomposition of
    {!run_supervised}.  A [Node.t] owns one key partition's durable
    normal-world state (sealed checkpoint store, source replay buffer,
    stitched audit batches and sealed results) and advances it one boot
    epoch at a time: [boot] either completes the partition's stream or
    halts at the first checkpoint boundary past [halt_after_window] (the
    fleet's kill/fence point — the checkpoint is durable, in-TEE state is
    lost, exactly the [Crash_reboot] cut).  A later [boot] — issued by
    whichever edge owns the partition after a handoff — resumes from the
    newest durable checkpoint with the same rollback-floor validation as
    the supervisor, so the stitched donor+recipient output is
    byte-identical to an uninterrupted run with the same [ckpt_every]. *)
module Node : sig
  type t

  type outcome =
    | Completed  (** the partition's stream is fully processed *)
    | Halted of { at_window : int }
        (** stopped at the scheduled boundary; durable state is a
            consistent resume point *)

  val create : ?ckpt_every:int -> config -> Pipeline.t -> Sbt_net.Frame.t list -> t
  (** [ckpt_every] defaults to 1 (a checkpoint at every closed window —
      every fleet beat is a potential kill point). *)

  val boot : ?registry:Sbt_obs.Metrics.t -> ?halt_after_window:int -> t -> outcome
  (** Run one boot epoch.  [registry] (typically a
      {!Sbt_obs.Metrics.scoped} view named after the executing edge)
      receives the boot's control-plane counters; omitted, each boot gets
      a private registry.  On an already-[finished] node this is a no-op
      returning [Completed]. *)

  val finished : t -> bool
  val epoch_count : t -> int  (** boots so far *)

  val results : t -> (int * Dataplane.sealed_result) list
  (** Stitched durable results, ascending window. *)

  val audit : t -> Sbt_attest.Log.batch list
  (** Stitched durable audit batches, oldest first. *)

  val epochs : t -> (Sbt_attest.Epoch.sealed * Sbt_attest.Log.batch list) list
  (** One (sealed manifest, audit slice) per boot, oldest first — the
      per-chain input {!Sbt_attest.Verifier.verify_epochs} takes. *)

  val manifests : t -> Sbt_attest.Epoch.manifest list
  (** The unsealed epoch manifests, oldest first (handoff manifests copy
      the recipient's resume coordinates from here). *)

  val acked_frames : t -> int
  (** Source-replay cursor: frames acknowledged by durable checkpoints —
      the resume cursor a handoff manifest records. *)

  val last_ckpt_seq : t -> int
  (** Newest durable checkpoint seq; -1 if none. *)

  val vt_ns : t -> float
  (** Accumulated virtual time across boots. *)

  val total_events : t -> int
  (** Populated once [finished]. *)

  val replayed_frames : t -> int
  val checkpoints : t -> int
  val checkpoint_bytes : t -> int
end

val run_supervised :
  ?max_restarts:int ->
  ?ckpt_every:int ->
  config ->
  Pipeline.t ->
  Sbt_net.Frame.t list ->
  supervised
(** Run under a normal-world supervisor with sealed TEE checkpoints
    every [ckpt_every] closed windows (default 1) and source-side frame
    replay.  (New code should prefer {!Session.run_supervised}, which
    generalizes this to N tenants.)  On an injected crash the supervisor unseals the latest
    checkpoint — rejecting tampered blobs ({!Sbt_recovery.Seal.Tamper})
    and blobs older than the newest checkpoint attested in the signed
    audit stream ({!Sbt_recovery.Seal.Rollback}) — rebuilds the data
    plane, re-ingests the unacknowledged frame suffix, and continues;
    up to [max_restarts] (default 3) times, re-raising {!Crashed}
    beyond that.  Stateful cross-window pipelines (operator state held
    in plan closures, e.g. [power_grid]) are not checkpointable — their
    state lives outside the TEE snapshot; use stateless-per-window
    pipelines with recovery. *)
