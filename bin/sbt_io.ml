(* Shared on-disk formats for the CLI tools:

   - frame streams written by sbt_datagen and consumed by sbt_run;
   - audit logs (verifier spec + signed batches) written by sbt_run and
     consumed by sbt_verify. *)

module Frame = Sbt_net.Frame
module Log = Sbt_attest.Log
module V = Sbt_attest.Verifier

let frames_magic = "SBTD2"
let audit_magic = "SBTA1"
let fleet_magic = "SBTF1"

let write_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
  done

let read_u32 ic =
  let a = input_byte ic in
  let b = input_byte ic in
  let c = input_byte ic in
  let d = input_byte ic in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let write_bytes_block buf b =
  write_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let read_bytes_block ic =
  let n = read_u32 ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  b

(* --- frames --------------------------------------------------------------- *)

let write_frames path frames =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf frames_magic;
  write_u32 buf (List.length frames);
  List.iter
    (fun f ->
      match f with
      | Frame.Watermark { seq; value } ->
          Buffer.add_char buf '\001';
          write_u32 buf seq;
          write_u32 buf value
      | Frame.Events { seq; stream; events; windows; payload; encrypted; mac } ->
          Buffer.add_char buf '\000';
          write_u32 buf seq;
          write_u32 buf stream;
          write_u32 buf events;
          write_u32 buf (List.length windows);
          List.iter (write_u32 buf) windows;
          Buffer.add_char buf (if encrypted then '\001' else '\000');
          write_bytes_block buf payload;
          write_bytes_block buf mac)
    frames;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_frames path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic = really_input_string ic 5 in
      if magic <> frames_magic then invalid_arg "sbt_io: not a frame file";
      let n = read_u32 ic in
      List.init n (fun _ ->
          match input_byte ic with
          | 1 ->
              let seq = read_u32 ic in
              let value = read_u32 ic in
              Frame.Watermark { seq; value }
          | 0 ->
              let seq = read_u32 ic in
              let stream = read_u32 ic in
              let events = read_u32 ic in
              let nw = read_u32 ic in
              let windows = List.init nw (fun _ -> read_u32 ic) in
              let encrypted = input_byte ic = 1 in
              let payload = read_bytes_block ic in
              let mac = read_bytes_block ic in
              Frame.Events { seq; stream; events; windows; payload; encrypted; mac }
          | k -> invalid_arg (Printf.sprintf "sbt_io: bad frame kind %d" k)))

(* --- sealed results --------------------------------------------------------

   Canonical dump of a run's sealed per-window results, used to compare
   engines byte-for-byte (CI diffs the files two `--exec` modes write). *)

let results_magic = "SBTR1"

let write_results path (results : (int * Sbt_core.Dataplane.sealed_result) list) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf results_magic;
  write_u32 buf (List.length results);
  List.iter
    (fun (w, (s : Sbt_core.Dataplane.sealed_result)) ->
      write_u32 buf w;
      write_u32 buf s.Sbt_core.Dataplane.window;
      write_u32 buf s.Sbt_core.Dataplane.events;
      write_u32 buf s.Sbt_core.Dataplane.width;
      write_bytes_block buf s.Sbt_core.Dataplane.cipher;
      write_bytes_block buf s.Sbt_core.Dataplane.tag)
    results;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- audit logs ------------------------------------------------------------ *)

let write_spec buf (spec : V.spec) =
  write_u32 buf (List.length spec.V.batch_ops);
  List.iter (write_u32 buf) spec.V.batch_ops;
  write_u32 buf (List.length spec.V.window_ops);
  List.iter (write_u32 buf) spec.V.window_ops;
  write_u32 buf spec.V.window_size;
  write_u32 buf spec.V.window_slide;
  write_u32 buf (match spec.V.freshness_bound with None -> 0 | Some b -> b + 1);
  write_u32 buf spec.V.late_policy;
  write_u32 buf (match spec.V.session_gap with None -> 0 | Some g -> g)

let read_spec ic =
  let n_batch_ops = read_u32 ic in
  let batch_ops = List.init n_batch_ops (fun _ -> read_u32 ic) in
  let n_window_ops = read_u32 ic in
  let window_ops = List.init n_window_ops (fun _ -> read_u32 ic) in
  let window_size = read_u32 ic in
  let window_slide = read_u32 ic in
  let fb = read_u32 ic in
  let freshness_bound = if fb = 0 then None else Some (fb - 1) in
  let late_policy = read_u32 ic in
  let sg = read_u32 ic in
  let session_gap = if sg = 0 then None else Some sg in
  { V.batch_ops; window_ops; window_size; window_slide; freshness_bound; late_policy; session_gap }

let write_batch buf (b : Log.batch) =
  write_u32 buf b.Log.seq;
  write_bytes_block buf b.Log.payload;
  write_bytes_block buf b.Log.tag

let read_batch ic =
  let seq = read_u32 ic in
  let payload = read_bytes_block ic in
  let tag = read_bytes_block ic in
  { Log.seq; payload; tag }

let write_audit path (spec : V.spec) batches =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf audit_magic;
  write_spec buf spec;
  write_u32 buf (List.length batches);
  List.iter (write_batch buf) batches;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_audit path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic = really_input_string ic 5 in
      if magic <> audit_magic then invalid_arg "sbt_io: not an audit file";
      let spec = read_spec ic in
      let n = read_u32 ic in
      let batches = List.init n (fun _ -> read_batch ic) in
      (spec, batches))

(* --- fleet audit bundles ----------------------------------------------------

   What M edges ship to the cloud after a (possibly churned) fleet run:
   the shared pipeline declaration, fleet geometry, the sealed handoff
   manifests, and each edge's per-partition epoch chains (sealed epoch
   manifest + signed audit batches per boot).  sbt_verify dispatches on
   the magic and judges the bundle with Verifier.verify_fleet. *)

let write_sealed buf (payload, tag) =
  write_bytes_block buf payload;
  write_bytes_block buf tag

let read_sealed ic =
  let payload = read_bytes_block ic in
  let tag = read_bytes_block ic in
  (payload, tag)

let write_fleet_audit path (spec : V.spec) ~partitions ~windows
    (edges : V.edge_chains list) (handoffs : Sbt_attest.Handoff.sealed list) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf fleet_magic;
  write_spec buf spec;
  write_u32 buf partitions;
  write_u32 buf windows;
  write_u32 buf (List.length handoffs);
  List.iter
    (fun (h : Sbt_attest.Handoff.sealed) ->
      write_sealed buf (h.Sbt_attest.Handoff.payload, h.Sbt_attest.Handoff.tag))
    handoffs;
  write_u32 buf (List.length edges);
  List.iter
    (fun (e : V.edge_chains) ->
      write_u32 buf e.V.edge;
      write_u32 buf (List.length e.V.chains);
      List.iter
        (fun (partition, epochs) ->
          write_u32 buf partition;
          write_u32 buf (List.length epochs);
          List.iter
            (fun ((m : Sbt_attest.Epoch.sealed), batches) ->
              write_sealed buf (m.Sbt_attest.Epoch.payload, m.Sbt_attest.Epoch.tag);
              write_u32 buf (List.length batches);
              List.iter (write_batch buf) batches)
            epochs)
        e.V.chains)
    edges;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_fleet_audit path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic = really_input_string ic 5 in
      if magic <> fleet_magic then invalid_arg "sbt_io: not a fleet audit bundle";
      let spec = read_spec ic in
      let partitions = read_u32 ic in
      let windows = read_u32 ic in
      let n_handoffs = read_u32 ic in
      let handoffs =
        List.init n_handoffs (fun _ ->
            let payload, tag = read_sealed ic in
            { Sbt_attest.Handoff.payload; tag })
      in
      let n_edges = read_u32 ic in
      let edges =
        List.init n_edges (fun _ ->
            let edge = read_u32 ic in
            let n_chains = read_u32 ic in
            let chains =
              List.init n_chains (fun _ ->
                  let partition = read_u32 ic in
                  let n_epochs = read_u32 ic in
                  let epochs =
                    List.init n_epochs (fun _ ->
                        let payload, tag = read_sealed ic in
                        let n_batches = read_u32 ic in
                        let batches = List.init n_batches (fun _ -> read_batch ic) in
                        ({ Sbt_attest.Epoch.payload; tag }, batches))
                  in
                  (partition, epochs))
            in
            { V.edge; chains })
      in
      (spec, partitions, windows, edges, handoffs))

let file_magic path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> try really_input_string ic 5 with End_of_file -> "")
