(* sbt_run: run one of the paper's benchmark pipelines under a chosen
   engine version and report throughput, memory, and verification. *)

module B = Sbt_workloads.Benchmarks
module Runner = Sbt_core.Runner
module D = Sbt_core.Dataplane
module Fault = Sbt_fault.Fault
module Lossy = Sbt_net.Lossy

let version_of_string = function
  | "full" -> Ok D.Full
  | "clear" -> Ok D.Clear_ingress
  | "viaos" -> Ok D.Io_via_os
  | "insecure" -> Ok D.Insecure
  | s -> Error (`Msg (Printf.sprintf "unknown version %S (full|clear|viaos|insecure)" s))

let exec_of_string = function
  | "des" -> Ok None
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "domains" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Ok (Some n)
          | _ -> Error (`Msg (Printf.sprintf "bad domain count in %S" s)))
      | _ -> Error (`Msg (Printf.sprintf "unknown exec engine %S (des|domains:N)" s)))

let exec_mode_of_string = function
  | "paced" -> Ok `Paced
  | "spin" -> Ok `Spin
  | "work" -> Ok `Work
  | s -> Error (`Msg (Printf.sprintf "unknown exec mode %S (paced|spin|work)" s))

let exec_mode_name = function `Paced -> "paced" | `Spin -> "spin" | `Work -> "work"

let fuse_of_string = function
  | "on" -> Ok true
  | "off" -> Ok false
  | s -> Error (`Msg (Printf.sprintf "unknown fuse setting %S (on|off)" s))

let late_policy_of_string = function
  | "silent" -> Ok D.Silent
  | "drop" -> Ok D.Drop_declare
  | "retract" -> Ok D.Retract_reemit
  | s -> Error (`Msg (Printf.sprintf "unknown late policy %S (silent|drop|retract)" s))

(* A disordered source advertises the tightest heuristic watermark
   (zero disorder slack), so real lateness actually surfaces as late
   data for the declared policy to handle; at rate 0 the punctuated
   stream is byte-identical to the historical generator's. *)
let disordered_frames ~seed ~rate (spec : Sbt_workloads.Datagen.spec) =
  Sbt_workloads.Datagen.frames
    {
      spec with
      Sbt_workloads.Datagen.disorder = Fault.disorder_plan ~seed ~rate ();
      watermark = Sbt_workloads.Datagen.Heuristic 0;
    }

let session_pipeline session_gap (pipe : Sbt_core.Pipeline.t) =
  match session_gap with
  | Some g -> Sbt_core.Pipeline.with_session_gap pipe ~gap_ticks:g
  | None -> pipe

let run name version windows events_per_window batch cores_list target_ms hints fuse verbose
    frames_in audit_out trace_out exec_domains exec_mode deterministic exec_time_scale
    results_out disorder late_policy session_gap undeclared_late fault_seed =
  match B.by_name name with
  | None ->
      Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|fps|filter|power|vitals)\n" name;
      exit 1
  | Some mk ->
      let module V = Sbt_attest.Verifier in
      let encrypted = match version with D.Full | D.Io_via_os -> true | _ -> false in
      let bench = mk ~windows ~events_per_window ~batch_events:batch ~encrypted () in
      let target = Option.value ~default:bench.B.target_delay_ms target_ms in
      let pipeline = session_pipeline session_gap bench.B.pipeline in
      let frames =
        match frames_in with
        | Some path -> Sbt_io.read_frames path
        | None ->
            if disorder > 0.0 then disordered_frames ~seed:fault_seed ~rate:disorder bench.B.spec
            else B.frames bench
      in
      let tracer =
        match trace_out with Some _ -> Some (Sbt_obs.Tracer.create ()) | None -> None
      in
      let outcome =
        try
          Runner.run ~cores_list ~target_delay_ms:target ~version ~hints_enabled:hints ~fuse
            ~late_policy ?tracer ~deterministic ?exec_domains ?exec_mode ?exec_time_scale
            pipeline frames
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      in
      (* --undeclared-late presents the log under a quote claiming the
         silent policy: the declaration the verifier trusts omits what
         the edge actually did, and the replay must flag the mismatch. *)
      let spec_out =
        if undeclared_late then { outcome.Runner.spec with V.late_policy = 0 }
        else outcome.Runner.spec
      in
      (match (trace_out, tracer) with
      | Some path, Some tr ->
          Sbt_obs.Chrome_trace.write_file tr ~path;
          Printf.printf "trace written to %s (%d events; load in Perfetto or chrome://tracing)\n"
            path (Sbt_obs.Tracer.event_count tr)
      | _ -> ());
      (match audit_out with
      | Some path ->
          Sbt_io.write_audit path spec_out outcome.Runner.audit;
          Printf.printf "audit log written to %s (verify with sbt_verify)\n" path
      | None -> ());
      (match results_out with
      | Some path ->
          (* the cloud-side merge: corrected windows carry their final
             (highest-generation) bytes, re-sealed under the canonical
             egress nonce — identical to [results] when nothing was
             corrected, byte-comparable against an in-order run *)
          Sbt_io.write_results path outcome.Runner.results_corrected;
          Printf.printf "sealed results written to %s\n" path
      | None -> ());
      if disorder > 0.0 || late_policy <> D.Silent || session_gap <> None then begin
        let r = outcome.Runner.verifier_report in
        Printf.printf
          "late data: %d drop(s) covering %d event(s) | %d correction(s) across %d window(s)\n"
          r.V.late_drops r.V.late_events r.V.corrections
          (List.length r.V.corrected_windows)
      end;
      Format.printf "%a" Runner.pp_outcome outcome;
      (match outcome.Runner.exec with
      | None -> ()
      | Some e ->
          let module E = Sbt_exec.Executor in
          let busy =
            Array.fold_left (fun a (d : E.domain_stats) -> a +. d.E.busy_ns) 0.0
              e.E.per_domain
          in
          Printf.printf
            "exec: %d domains | wall %.1f ms | %d tasks | %d chunks | %d steals | %d parks | busy/wall %.2f | scratch hw %d B\n"
            e.E.domains (e.E.wall_ns /. 1e6) e.E.tasks_executed e.E.chunks_executed
            (E.total_steals e) (E.total_parks e)
            (busy /. Float.max 1.0 e.E.wall_ns)
            e.E.scratch_high_water_bytes);
      if verbose then begin
        let s = outcome.Runner.dp_stats in
        Format.printf
          "compute %.1f ms | mem %.1f ms | crypto %.1f ms | ingest %.1f ms | %d switch pairs | %d invocations@."
          (s.D.compute_ns /. 1e6) (s.D.mem_ns /. 1e6) (s.D.crypto_ns /. 1e6)
          (s.D.ingest_ns /. 1e6) s.D.switch_pairs s.D.invocations;
        Format.printf "audit: %d records, raw %d B, compressed %d B@." outcome.Runner.audit_records
          outcome.Runner.audit_raw_bytes outcome.Runner.audit_compressed_bytes;
        Format.printf "verifier: %a" Sbt_attest.Verifier.pp_report outcome.Runner.verifier_report
      end;
      let stripped_ok =
        if not undeclared_late then true
        else begin
          let key = (D.default_config ~version ()).D.egress_key in
          let records =
            List.concat_map
              (fun b -> Sbt_attest.Log.open_batch ~key b)
              outcome.Runner.audit
          in
          let r = Sbt_attest.Verifier.verify spec_out records in
          Printf.printf "undeclared-late check: %d violation(s) under the stripped declaration\n"
            (List.length r.Sbt_attest.Verifier.violations);
          Sbt_attest.Verifier.ok r
        end
      in
      if not (outcome.Runner.verified && stripped_ok) then exit 2

(* --- crash/recovery --------------------------------------------------------

   Run under the crash-recovery supervisor: sealed TEE checkpoints every
   [ckpt_every] closed windows, source-side frame replay, and — with
   --crash-at N — a deterministic injected crash after N executed tasks.
   With --recover the supervisor restarts from the latest sealed
   checkpoint and the multi-epoch verifier must accept the stitched log;
   without it the crash is fatal (exit 3), which is what the CI smoke
   uses to prove the crash actually fired. *)
let recovery name version windows events_per_window batch ckpt_every max_restarts crash_at
    crash_site recover deterministic verbose audit_out results_out =
  match B.by_name name with
  | None ->
      Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|fps|filter|power|vitals)\n" name;
      exit 1
  | Some mk ->
      let module Runtime = Sbt_core.Runtime in
      let module V = Sbt_attest.Verifier in
      let encrypted = match version with D.Full | D.Io_via_os -> true | _ -> false in
      let bench = mk ~windows ~events_per_window ~batch_events:batch ~encrypted () in
      let fault_plan =
        match crash_at with
        | None -> Fault.none
        | Some n -> Fault.with_crash Fault.none ~site:crash_site ~after_tasks:n
      in
      let cost =
        if deterministic then
          let base =
            match version with
            | D.Insecure -> Sbt_tz.Cost_model.free
            | D.Full | D.Clear_ingress | D.Io_via_os -> Sbt_tz.Cost_model.default
          in
          Some { base with Sbt_tz.Cost_model.host_scale = 0.0 }
        else None
      in
      let cfg = Runtime.Config.make ~version ?cost ~fault_plan () in
      let frames = B.frames bench in
      let spec = Sbt_core.Pipeline.verifier_spec bench.B.pipeline in
      if not recover then (
        (* Crash armed but no supervisor: the run dies where the crash
           fires, keeping only what the normal world already held. *)
        match Runtime.run cfg bench.B.pipeline frames with
        | outcome ->
            Printf.printf "run completed (%d results) — crash point beyond the run\n"
              (List.length outcome.Runtime.results);
            if crash_at <> None then exit 3
        | exception Runtime.Crashed { site; uploads; results } ->
            Printf.printf
              "crashed at %s: %d audit batches and %d sealed results durable, in-TEE state lost \
               (re-run with --recover)\n"
              (Fault.site_name site) (List.length uploads) (List.length results);
            exit 3)
      else begin
        let s = Runtime.run_supervised ~max_restarts ~ckpt_every cfg bench.B.pipeline frames in
        Printf.printf
          "recovery: %d epoch(s), %d crash(es)%s | %d checkpoint(s), %d sealed B | %d frame(s) \
           replayed\n"
          s.Runtime.sv_epoch_count
          (List.length s.Runtime.sv_crash_sites)
          (match s.Runtime.sv_crash_sites with
          | [] -> ""
          | sites -> " [" ^ String.concat ", " (List.map Fault.site_name sites) ^ "]")
          s.Runtime.sv_checkpoints s.Runtime.sv_checkpoint_bytes s.Runtime.sv_replayed_frames;
        (match audit_out with
        | Some path ->
            Sbt_io.write_audit path spec s.Runtime.sv_audit;
            Printf.printf "stitched audit log written to %s\n" path
        | None -> ());
        (match results_out with
        | Some path ->
            Sbt_io.write_results path s.Runtime.sv_results;
            Printf.printf "sealed results written to %s\n" path
        | None -> ());
        let r = s.Runtime.sv_report in
        if verbose then Format.printf "verifier: %a" V.pp_report r
        else
          Printf.printf "verifier: %s (%d windows, %d violations)\n"
            (if V.ok r then "ok" else "VIOLATIONS")
            r.V.windows_verified (List.length r.V.violations);
        if not (V.ok r) then exit 2
      end

(* --- resilience scenario ---------------------------------------------------

   Sweep fault rates over one benchmark: authenticated frames cross a lossy
   link, the data plane sheds and retries under injected SMC/pool faults,
   and the cloud verifier replays the (possibly uplink-truncated) audit log.
   Reports goodput and whether loss surfaced as declared degradation
   (verified) or as violations (tamper evidence). *)
let resilience name version windows events_per_window batch fault_rates fault_seed =
  match B.by_name name with
  | None ->
      Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|fps|filter|power|vitals)\n" name;
      exit 1
  | Some mk ->
      let encrypted = match version with D.Full | D.Io_via_os -> true | _ -> false in
      let bench = mk ~windows ~events_per_window ~batch_events:batch ~encrypted () in
      let spec = { bench.B.spec with Sbt_workloads.Datagen.authenticated = true } in
      let total_events = Sbt_workloads.Datagen.total_events spec in
      let clean_frames = Sbt_workloads.Datagen.frames spec in
      Printf.printf "resilience: %s / %s, %d events, seed %Ld\n" bench.B.name
        (D.version_name version) total_events fault_seed;
      Printf.printf "%-6s %-28s %-9s %-5s %-7s %-7s %-10s %s\n" "rate" "link(del/drop/corr)" "goodput"
        "gaps" "shed" "busy" "verified" "uplink-drop";
      let all_verified = ref true in
      List.iter
        (fun rate ->
          let plan = Fault.uniform ~seed:fault_seed ~rate () in
          let frames, link = Lossy.apply plan clean_frames in
          let outcome = Runner.run ~version ~fault_plan:plan bench.B.pipeline frames in
          (* Events that survived the link AND were ingested, over events the
             source generated: frames the link ate never reach the control
             plane, so they are missing from [total_events] already. *)
          let goodput =
            float_of_int
              (outcome.Runner.total_events
              - Sbt_core.Runtime.Loss.events_dropped outcome.Runner.loss)
            /. float_of_int (max 1 total_events)
          in
          (* The uplink leg: drop whole signed batches and replay what is
             left - the verifier must notice the hole. *)
          let kept =
            List.filter
              (fun (b : Sbt_attest.Log.batch) -> not (Fault.uplink_drops plan ~seq:b.Sbt_attest.Log.seq))
              outcome.Runner.audit
          in
          let egress_key = (D.default_config ~version ()).D.egress_key in
          let uplink_verdict =
            if List.length kept = List.length outcome.Runner.audit then "none"
            else
              let records =
                List.concat_map (fun b -> Sbt_attest.Log.open_batch ~key:egress_key b) kept
              in
              let r = Sbt_attest.Verifier.verify outcome.Runner.spec records in
              Printf.sprintf "%d batches lost -> %d violations"
                (List.length outcome.Runner.audit - List.length kept)
                (List.length r.Sbt_attest.Verifier.violations)
          in
          if not outcome.Runner.verified then all_verified := false;
          Printf.printf "%-6.2f %-28s %-9.3f %-5d %-7d %-7d %-10b %s\n" rate
            (Printf.sprintf "%d/%d/%d" link.Lossy.delivered link.Lossy.dropped link.Lossy.corrupted)
            goodput
            (Sbt_core.Runtime.Loss.gaps_declared outcome.Runner.loss)
            outcome.Runner.dp_stats.D.sheds
            outcome.Runner.dp_stats.D.smc_busy_rejections outcome.Runner.verified uplink_verdict)
        fault_rates;
      (* Loss must surface as declared degradation, never as tamper
         evidence: any rate whose replay raised violations fails the
         sweep (previously this path always exited 0). *)
      if not !all_verified then exit 2

(* --- fleet under churn ------------------------------------------------------

   Drive M simulated edge nodes over one key-partitioned workload with a
   deterministic churn scenario: --kill halts an edge at a checkpoint
   boundary (transient crashes reboot in place; permanent ones are
   declared dead after --suspect-after missed beats and their key range
   is handed off to a survivor under a signed manifest), --uplink-down
   silences heartbeats without stopping work, --straggle slows a node.
   The merged egress of a churned fleet is byte-identical to the
   un-churned run (cmp the --results-out files).  Exit 2 = the fleet
   verifier found violations, exit 3 = a death found no survivor. *)
let fleet name version windows events_per_window batch m partition_by kills uplinks stragglers
    suspect_after recover_after rogue omit_manifests ckpt_every deterministic verbose audit_out
    results_out =
  match B.by_name name with
  | None ->
      Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|fps|filter|power|vitals)\n" name;
      exit 1
  | Some mk ->
      let module Runtime = Sbt_core.Runtime in
      let module V = Sbt_attest.Verifier in
      let module Fleet = Sbt_fleet.Fleet in
      if partition_by <> "key" then begin
        Printf.eprintf "unsupported --partition-by %S (only: key)\n" partition_by;
        exit 1
      end;
      (* partitioning happens at the source, before wire protection *)
      let bench = mk ~windows ~events_per_window ~batch_events:batch ~encrypted:false () in
      let cost =
        if deterministic then
          let base =
            match version with
            | D.Insecure -> Sbt_tz.Cost_model.free
            | D.Full | D.Clear_ingress | D.Io_via_os -> Sbt_tz.Cost_model.default
          in
          Some { base with Sbt_tz.Cost_model.host_scale = 0.0 }
        else None
      in
      let cfg = Sbt_core.Runtime.Config.make ~version ?cost () in
      let events =
        List.map (fun (node, at_beat, permanent) -> Fault.Kill { node; at_beat; permanent }) kills
        @ List.map (fun (node, at_beat, beats) -> Fault.Uplink_partition { node; at_beat; beats })
            uplinks
        @ List.map (fun (node, factor) -> Fault.Straggle { node; factor }) stragglers
      in
      let scenario =
        try Fault.fleet_scenario ~recover_after ~suspect_after events
        with Invalid_argument msg ->
          Printf.eprintf "bad churn scenario: %s\n" msg;
          exit 1
      in
      let frames = B.frames bench in
      match
        Fleet.run ~ckpt_every ~rogue_handoff:rogue ~scenario ~nodes:m ~batch_events:batch cfg
          bench.B.pipeline frames
      with
      | exception Fleet.No_survivor { partition; beat } ->
          Printf.eprintf
            "partition %d lost its edge at beat %d and no eligible survivor remains\n" partition
            beat;
          exit 3
      | s ->
          let throughput =
            float_of_int s.Fleet.total_events /. Float.max 1e-9 (s.Fleet.makespan_ns /. 1e9)
          in
          Printf.printf
            "fleet: %d edges | %d windows x %d partitions | %d events | makespan %.2f ms | %.0f events/s\n"
            s.Fleet.nodes s.Fleet.windows s.Fleet.nodes s.Fleet.total_events
            (s.Fleet.makespan_ns /. 1e6) throughput;
          Printf.printf
            "churn: %d death(s), %d handoff(s) sealed, %d suspicion(s) raised / %d cleared, %d \
             fenced heartbeat(s), %d frame(s) re-ingested\n"
            s.Fleet.deaths
            (List.length s.Fleet.handoffs)
            s.Fleet.suspicions_raised s.Fleet.suspicions_cleared s.Fleet.fenced_heartbeats
            s.Fleet.replayed_frames;
          List.iter
            (fun ((mh : Sbt_attest.Handoff.manifest), _) ->
              Printf.printf
                "handoff: partition %d, edge %d (epoch %d) -> edge %d, resume ckpt %d / cursor %d\n"
                mh.Sbt_attest.Handoff.partition mh.Sbt_attest.Handoff.donor
                mh.Sbt_attest.Handoff.donor_epoch mh.Sbt_attest.Handoff.recipient
                mh.Sbt_attest.Handoff.resume_ckpt mh.Sbt_attest.Handoff.resume_cursor)
            s.Fleet.handoffs;
          (* durable outputs land before the verdict decides the exit code *)
          (match audit_out with
          | Some path ->
              let manifests =
                if omit_manifests then [] else List.map snd s.Fleet.handoffs
              in
              Sbt_io.write_fleet_audit path
                (Sbt_core.Pipeline.verifier_spec bench.B.pipeline)
                ~partitions:s.Fleet.nodes ~windows:s.Fleet.windows s.Fleet.edges manifests;
              Printf.printf "fleet audit bundle written to %s%s (verify with sbt_verify)\n" path
                (if omit_manifests && s.Fleet.handoffs <> [] then
                   Printf.sprintf " with %d handoff manifest(s) DELIBERATELY OMITTED"
                     (List.length s.Fleet.handoffs)
                 else "")
          | None -> ());
          (match results_out with
          | Some path ->
              Sbt_io.write_results path
                (List.map (fun (_, p, sr) -> (p, sr)) s.Fleet.merged);
              Printf.printf "merged sealed results written to %s\n" path
          | None -> ());
          let r = s.Fleet.report in
          if verbose then Format.printf "fleet verifier: %a" V.pp_fleet_report r
          else
            Printf.printf "fleet verifier: %s (%d/%d partitions, %d handoff(s) verified)\n"
              (if V.fleet_ok r then "ok" else "VIOLATIONS")
              r.V.partitions_present r.V.partitions_expected r.V.handoffs_verified;
          if not (V.fleet_ok r) then exit 2

(* --- multi-tenant enclave ---------------------------------------------------

   Admit N tenant pipelines into one enclave through the Session API:
   per-tenant page quotas (an over-budget tenant sheds and degrades
   alone), per-tenant opaque-ref namespaces, DRR-fair scheduling, and
   per-tenant audit sub-streams judged independently.  --solo-tenant I
   runs tenant I of the same N-tenant spec alone; its per-tenant output
   files are byte-identical to the joint run's (the CI cmp smoke).
   Exit 2 when any tenant's verdict is not clean (violations or
   declared degradation). *)
let tenants_run name version windows events_per_window batch n mix_name quotas solo hints fuse
    exec_domains exec_mode deterministic exec_time_scale disorder late_policy session_gap
    fault_seed verbose audit_out results_out =
  let module Session = Sbt_core.Session in
  let module Multi = Sbt_core.Multi in
  let module Runtime = Sbt_core.Runtime in
  let module V = Sbt_attest.Verifier in
  if n < 1 then begin
    Printf.eprintf "--tenants must be >= 1\n";
    exit 1
  end;
  let encrypted = match version with D.Full | D.Io_via_os -> true | _ -> false in
  let workload i =
    match mix_name with
    | Some m -> (
        match B.mix ~windows ~events_per_window ~batch_events:batch ~encrypted m i with
        | Some b -> b
        | None ->
            Printf.eprintf "unknown tenant mix %S (%s)\n" m (String.concat "|" B.mix_names);
            exit 1)
    | None -> (
        match B.by_name name with
        | Some mk -> mk ~windows ~events_per_window ~batch_events:batch ~encrypted ()
        | None ->
            Printf.eprintf "unknown benchmark %S (topk|distinct|join|winsum|fps|filter|power|vitals)\n"
              name;
            exit 1)
  in
  let quota_for id =
    let pick sel = List.filter_map (fun (s, p) -> if s = sel then Some p else None) quotas in
    match (List.rev (pick (Some id)), List.rev (pick None)) with
    | p :: _, _ -> Some p
    | [], p :: _ -> Some p
    | [], [] -> None
  in
  let cost =
    if deterministic then
      let base =
        match version with
        | D.Insecure -> Sbt_tz.Cost_model.free
        | D.Full | D.Clear_ingress | D.Io_via_os -> Sbt_tz.Cost_model.default
      in
      Some { base with Sbt_tz.Cost_model.host_scale = 0.0 }
    else None
  in
  let cfg = Runtime.Config.make ~version ?cost ~hints_enabled:hints ~fuse ~late_policy () in
  let engine =
    match exec_domains with Some d -> `Domains d | None -> `Des cfg.Runtime.cores
  in
  let ids =
    match solo with
    | None -> List.init n (fun i -> i)
    | Some i when i >= 0 && i < n -> [ i ]
    | Some i ->
        Printf.eprintf "--solo-tenant %d outside 0..%d\n" i (n - 1);
        exit 1
  in
  let source (b : B.t) =
    if disorder > 0.0 then disordered_frames ~seed:fault_seed ~rate:disorder b.B.spec
    else B.frames b
  in
  let session =
    List.fold_left
      (fun s i ->
        let b = workload i in
        Session.add_tenant ~id:i ?quota_pages:(quota_for i)
          ~pipeline:(session_pipeline session_gap b.B.pipeline)
          ~source:(source b) s)
      (Session.create ~engine ?exec_mode ?exec_time_scale cfg)
      ids
  in
  let res =
    try Session.run session
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  Printf.printf
    "tenants: %d in one enclave | %d events | agg %.2f Mev/s | p99 delay %.2f ms | max %.2f ms\n"
    (List.length res.Multi.tenants) res.Multi.agg_events
    (res.Multi.agg_events_per_sec /. 1e6)
    (res.Multi.p99_delay_ns /. 1e6)
    (res.Multi.max_delay_ns /. 1e6);
  if verbose then
    List.iter
      (fun tr ->
        let s = tr.Multi.tr_run.Runtime.dp_stats in
        Printf.printf
          "tenant %d: %d events | %d window(s) | %d shed(s) | mean delay %.2f ms | max %.2f ms\n"
          tr.Multi.tr_id tr.Multi.tr_run.Runtime.total_events
          (List.length tr.Multi.tr_run.Runtime.results)
          s.D.sheds
          (tr.Multi.tr_mean_delay_ns /. 1e6)
          (tr.Multi.tr_max_delay_ns /. 1e6))
      res.Multi.tenants;
  (* durable per-tenant outputs: <path>.t<id>, byte-comparable with a
     --solo-tenant run of the same spec *)
  (match results_out with
  | Some path ->
      List.iter
        (fun tr ->
          Sbt_io.write_results
            (Printf.sprintf "%s.t%d" path tr.Multi.tr_id)
            tr.Multi.tr_run.Runtime.results)
        res.Multi.tenants;
      Printf.printf "sealed results written to %s.t<ID> (one file per tenant)\n" path
  | None -> ());
  (match audit_out with
  | Some path ->
      List.iter
        (fun tr ->
          Sbt_io.write_audit
            (Printf.sprintf "%s.t%d" path tr.Multi.tr_id)
            tr.Multi.tr_run.Runtime.verifier_spec tr.Multi.tr_run.Runtime.audit)
        res.Multi.tenants;
      Printf.printf "audit sub-streams written to %s.t<ID> (one file per tenant)\n" path
  | None -> ());
  (match res.Multi.exec with
  | None -> ()
  | Some e ->
      let module E = Sbt_exec.Executor in
      Printf.printf "exec: %d domains | wall %.1f ms | %d tasks (merged fair schedule)\n"
        e.E.domains (e.E.wall_ns /. 1e6) e.E.tasks_executed);
  match res.Multi.report with
  | None -> ()
  | Some report ->
      Format.printf "%a" V.pp_tenants_report report;
      if not (V.tenants_ok report) || report.V.tenants_degraded > 0 then exit 2

open Cmdliner

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"topk, distinct, join, winsum, fps, filter or power")

let version_arg =
  let version_conv =
    Arg.conv
      ( version_of_string,
        fun fmt v -> Format.pp_print_string fmt (D.version_name v) )
      ~docv:"VERSION"
  in
  Arg.(value & opt version_conv D.Full & info [ "version"; "v" ] ~doc:"Engine version: full, clear, viaos or insecure")

let windows_arg = Arg.(value & opt int 4 & info [ "windows"; "w" ] ~doc:"Number of 1-second windows")

let epw_arg =
  Arg.(value & opt int 100_000 & info [ "events-per-window"; "e" ] ~doc:"Events per window")

let batch_arg = Arg.(value & opt int 10_000 & info [ "batch"; "b" ] ~doc:"Events per input batch")

let cores_arg =
  Arg.(value & opt (list int) [ 2; 4; 8 ] & info [ "cores"; "c" ] ~doc:"Core counts to evaluate")

let target_arg =
  Arg.(value & opt (some float) None & info [ "target-ms" ] ~doc:"Output-delay target (default: paper's per-benchmark target)")

let hints_arg =
  Arg.(value & opt bool true & info [ "hints" ] ~doc:"Enable consumption hints")

let fuse_arg =
  let fuse_conv =
    Arg.conv
      (fuse_of_string, fun fmt b -> Format.pp_print_string fmt (if b then "on" else "off"))
      ~docv:"on|off"
  in
  Arg.(
    value & opt fuse_conv false
    & info [ "fuse" ]
        ~doc:
          "Operator fusion: $(b,on) runs each maximal chain of adjacent per-record \
           batch stages (Filter/Project/Select/ShiftKey) as one fused super-kernel — \
           one world switch and one composite audit record per chain instead of one \
           per stage.  Sealed results, verifier verdicts and loss are byte-identical \
           to $(b,off); compare switch counts with --verbose")

let slab_arg =
  let slab_conv =
    Arg.conv
      (fuse_of_string, fun fmt b -> Format.pp_print_string fmt (if b then "on" else "off"))
      ~docv:"on|off"
  in
  Arg.(
    value & opt slab_conv true
    & info [ "slab" ]
        ~doc:
          "Secure-memory slab allocator: $(b,on) (default) routes small-object \
           scratch — egress staging, per-chunk kernel scratch, per-piece partial \
           tables — through size-class bitmap slab arenas; $(b,off) falls back to \
           page-granular pool commits.  Sealed results, audit records and verifier \
           verdicts are byte-identical either way (the CI cmp smoke)")

let verbose_arg = Arg.(value & flag & info [ "verbose" ] ~doc:"Print data-plane statistics")

let frames_arg =
  Arg.(value & opt (some file) None & info [ "frames" ] ~doc:"Read the source stream from a file written by sbt_datagen")

let audit_arg =
  Arg.(value & opt (some string) None & info [ "audit-out" ] ~doc:"Write the signed audit log to a file for sbt_verify")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Write a Chrome trace_event JSON of the recording run (virtual-time spans; open in Perfetto)")

let exec_arg =
  let exec_conv =
    Arg.conv
      ( exec_of_string,
        fun fmt -> function
          | None -> Format.pp_print_string fmt "des"
          | Some n -> Format.fprintf fmt "domains:%d" n )
      ~docv:"ENGINE"
  in
  Arg.(
    value & opt exec_conv None
    & info [ "exec" ]
        ~doc:
          "Execution engine: $(b,des) (discrete-event, the default) or \
           $(b,domains:N) (record under the DES, then measure the recorded task \
           graph on N real domains with the work-stealing executor; observable \
           outputs are byte-identical to des)")

let exec_mode_arg =
  let mode_conv =
    Arg.conv
      (exec_mode_of_string, fun fmt m -> Format.pp_print_string fmt (exec_mode_name m))
      ~docv:"MODE"
  in
  Arg.(
    value & opt (some mode_conv) None
    & info [ "exec-mode" ]
        ~doc:
          "Kernel mode for the domains:N measurement phase: $(b,paced) (default; \
           tasks occupy wall time equal to their recorded cost), $(b,spin) \
           (calibrated busy work), or $(b,work) (tasks re-execute the recorded \
           real primitive kernels data-parallel via Par_kernel — the recording \
           captures kernel inputs, and observable outputs stay byte-identical)")

let deterministic_arg =
  Arg.(
    value & flag
    & info [ "deterministic" ]
        ~doc:
          "Zero the cost model's host_scale so recorded costs carry no measured \
           host time: results, audit bytes and verdicts become byte-reproducible \
           across runs and processes")

let exec_time_scale_arg =
  Arg.(
    value & opt (some float) None
    & info [ "exec-time-scale" ]
        ~doc:"Multiply recorded task costs by this factor in the domains:N \
              measurement phase (shrinks long recordings to a quick wall run)")

let results_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "results-out" ]
        ~doc:"Write the sealed per-window results to a file (byte-comparable \
              across engines with cmp)")

let resilience_arg =
  Arg.(value & flag & info [ "resilience" ] ~doc:"Fault-rate sweep: lossy link, transient SMC refusals, pool pressure and uplink loss, reporting goodput and verification per rate")

let fault_rates_arg =
  Arg.(value & opt (list float) [ 0.0; 0.01; 0.05; 0.1; 0.2 ] & info [ "fault-rates" ] ~doc:"Fault rates to sweep with --resilience")

let fault_seed_arg =
  Arg.(value & opt int64 42L & info [ "fault-seed" ] ~doc:"Seed of the deterministic fault plan (same seed, same faults)")

let ckpt_every_arg =
  Arg.(
    value & opt int 1
    & info [ "ckpt-every" ]
        ~doc:"Sealed-checkpoint interval in closed windows for --recover / --crash-at runs")

let max_restarts_arg =
  Arg.(
    value & opt int 3
    & info [ "max-restarts" ] ~doc:"Supervisor restart budget before a crash becomes fatal")

let crash_at_arg =
  Arg.(
    value & opt (some int) None
    & info [ "crash-at" ]
        ~doc:
          "Inject a crash after $(docv) executed tasks: in-TEE state is lost and only \
           normal-world durable state (sealed checkpoints, uploaded audit batches, egressed \
           results) survives.  Fatal (exit 3) unless --recover supervises the run"
        ~docv:"N")

let crash_site_arg =
  let site_conv =
    Arg.conv
      ( (function
        | "control" -> Ok Fault.Crash_control
        | "reboot" -> Ok Fault.Crash_reboot
        | s -> Error (`Msg (Printf.sprintf "unknown crash site %S (control|reboot)" s))),
        fun fmt s -> Format.pp_print_string fmt (Fault.site_name s) )
      ~docv:"SITE"
  in
  Arg.(
    value & opt site_conv Fault.Crash_control
    & info [ "crash-site" ]
        ~doc:"Where --crash-at fires: $(b,control) (mid-task, control plane) or $(b,reboot) \
              (at a checkpoint boundary, after the blob is durable)")

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Supervise the run: seal TEE checkpoints every --ckpt-every closed windows, and on \
           a crash restart from the latest valid checkpoint, replay the unacknowledged frame \
           suffix, and verify the stitched multi-epoch audit log (exit 2 on any violation)")

(* --- fleet arguments -------------------------------------------------------- *)

let fleet_arg =
  Arg.(
    value & opt int 0
    & info [ "fleet" ]
        ~doc:
          "Run $(docv) simulated edge nodes over the workload key-partitioned $(docv) ways, \
           merge their egress cloud-side, and judge the fleet with the fleet-scope verifier \
           (exit 2 on violations, exit 3 if a death finds no survivor)"
        ~docv:"M")

let partition_by_arg =
  Arg.(
    value & opt string "key"
    & info [ "partition-by" ] ~doc:"Partitioning dimension for --fleet (only: $(b,key))")

let kill_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "bad kill %S (expected NODE@BEAT or NODE@BEAT:permanent)" s))
    in
    match String.split_on_char '@' s with
    | [ n; rest ] -> (
        let node = int_of_string_opt n in
        match (node, String.split_on_char ':' rest) with
        | Some node, [ b ] -> (
            match int_of_string_opt b with
            | Some at_beat -> Ok (node, at_beat, false)
            | None -> fail ())
        | Some node, [ b; "permanent" ] -> (
            match int_of_string_opt b with
            | Some at_beat -> Ok (node, at_beat, true)
            | None -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let print fmt (n, b, p) =
    Format.fprintf fmt "%d@%d%s" n b (if p then ":permanent" else "")
  in
  Arg.conv (parse, print) ~docv:"NODE@BEAT[:permanent]"

let kills_arg =
  Arg.(
    value & opt_all kill_conv []
    & info [ "kill" ]
        ~doc:
          "Kill edge NODE after it closes window BEAT (repeatable).  The checkpoint for that \
           beat is durable; in-TEE state is lost.  Transient kills reboot --recover-after \
           beats later; $(b,:permanent) kills are declared dead after --suspect-after missed \
           beats and the node's key range is handed off to a survivor under a signed manifest")

let uplink_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ n; rest ] -> (
        match (int_of_string_opt n, String.split_on_char ':' rest) with
        | Some node, [ b; d ] -> (
            match (int_of_string_opt b, int_of_string_opt d) with
            | Some at_beat, Some beats -> Ok (node, at_beat, beats)
            | _ -> Error (`Msg (Printf.sprintf "bad uplink outage %S" s)))
        | _ -> Error (`Msg (Printf.sprintf "bad uplink outage %S (expected NODE@BEAT:BEATS)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad uplink outage %S (expected NODE@BEAT:BEATS)" s))
  in
  let print fmt (n, b, d) = Format.fprintf fmt "%d@%d:%d" n b d in
  Arg.conv (parse, print) ~docv:"NODE@BEAT:BEATS"

let uplinks_arg =
  Arg.(
    value & opt_all uplink_conv []
    & info [ "uplink-down" ]
        ~doc:
          "Silence edge NODE's heartbeats for BEATS beats starting at BEAT (repeatable); the \
           node keeps working and reconnects with backoff.  Long enough outages are declared \
           deaths")

let straggle_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ n; f ] -> (
        match (int_of_string_opt n, float_of_string_opt f) with
        | Some node, Some factor when factor >= 1.0 -> Ok (node, factor)
        | _ -> Error (`Msg (Printf.sprintf "bad straggler %S (expected NODE:FACTOR>=1)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad straggler %S (expected NODE:FACTOR)" s))
  in
  let print fmt (n, f) = Format.fprintf fmt "%d:%g" n f in
  Arg.conv (parse, print) ~docv:"NODE:FACTOR"

let stragglers_arg =
  Arg.(
    value & opt_all straggle_conv []
    & info [ "straggle" ]
        ~doc:
          "Run edge NODE FACTOR times slower (repeatable); a straggler too slow for \
           --suspect-after is declared dead and handed off")

let suspect_after_arg =
  Arg.(
    value & opt int 2
    & info [ "suspect-after" ]
        ~doc:"Missed beats before the failure detector declares an edge dead")

let recover_after_arg =
  Arg.(
    value & opt int 1
    & info [ "recover-after" ] ~doc:"Beats a transiently-killed edge stays down before rebooting")

let rogue_arg =
  Arg.(
    value & flag
    & info [ "rogue-handoff" ]
        ~doc:
          "Adversarial failover demo: the survivor re-runs the dead edge's partition from \
           scratch and discards the handoff manifest — the fleet verifier must flag the \
           unattested handoff and the cross-edge duplicates (exit 2)")

let omit_manifests_arg =
  Arg.(
    value & flag
    & info [ "omit-handoff-manifests" ]
        ~doc:
          "Strip the sealed handoff manifests from the --audit-out bundle (the run itself \
           is honest) — sbt_verify must then refuse the cross-edge stitch (exit 2)")

(* --- multi-tenant arguments ------------------------------------------------- *)

let tenants_arg =
  Arg.(
    value & opt int 0
    & info [ "tenants" ]
        ~doc:
          "Admit $(docv) tenant pipelines into one enclave behind the Session API: \
           per-tenant page quotas, per-tenant opaque-ref namespaces, deficit-round-robin \
           fair scheduling and per-tenant audit sub-streams judged independently (exit 2 \
           if any tenant's verdict is not clean)"
        ~docv:"N")

let tenant_quota_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "bad tenant quota %S (expected PAGES or ID:PAGES)" s))
    in
    match String.split_on_char ':' s with
    | [ p ] -> (
        match int_of_string_opt p with
        | Some pages when pages > 0 -> Ok (None, pages)
        | _ -> fail ())
    | [ i; p ] -> (
        match (int_of_string_opt i, int_of_string_opt p) with
        | Some id, Some pages when id >= 0 && pages > 0 -> Ok (Some id, pages)
        | _ -> fail ())
    | _ -> fail ()
  in
  let print fmt (sel, p) =
    match sel with
    | None -> Format.pp_print_int fmt p
    | Some i -> Format.fprintf fmt "%d:%d" i p
  in
  Arg.conv (parse, print) ~docv:"[ID:]PAGES"

let tenant_quota_arg =
  Arg.(
    value & opt_all tenant_quota_conv []
    & info [ "tenant-quota" ]
        ~doc:
          "Secure-DRAM quota in 4 KiB pages, for every tenant ($(b,PAGES)) or one tenant \
           ($(b,ID:PAGES)); repeatable, the most specific (and latest) spec wins.  An \
           over-budget tenant sheds and degrades alone — co-tenants stay clean")

let tenant_mix_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tenant-mix" ]
        ~doc:
          "Assign tenant workloads round-robin from a named family ($(b,taxi)|$(b,power)|\
           $(b,mixed)) instead of running every tenant on the positional BENCHMARK")

let solo_tenant_arg =
  Arg.(
    value & opt (some int) None
    & info [ "solo-tenant" ]
        ~doc:
          "Run only tenant $(docv) of the --tenants spec, alone in the enclave; its \
           per-tenant output files are byte-identical to the joint run's (cmp them)"
        ~docv:"I")

(* --- disorder / late-data arguments ------------------------------------------ *)

let disorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "disorder" ]
        ~doc:
          "Delay each source event with probability $(docv) (seeded by --fault-seed; same \
           seed, same permutation): delayed events keep their event time but re-arrive up \
           to one window late, behind a zero-slack heuristic watermark, so they surface as \
           late data for --late-policy to handle.  0 keeps the historical in-order stream \
           byte-identical"
        ~docv:"P")

let late_policy_arg =
  let policy_conv =
    Arg.conv
      (late_policy_of_string, fun fmt p -> Format.pp_print_string fmt (D.late_policy_name p))
      ~docv:"POLICY"
  in
  Arg.(
    value & opt policy_conv D.Silent
    & info [ "late-policy" ]
        ~doc:
          "Attested late-data policy: $(b,silent) (historical default — late segments are \
           discarded, which the verifier flags as vanished dataflow), $(b,drop) \
           (drop+declare: a signed Late_drop record feeds the degradation verdict), or \
           $(b,retract) (retract-and-reemit: the closed window reopens and a sealed \
           Correction record supersedes the prior egress; --results-out then carries the \
           cloud-side merged bytes)")

let session_gap_arg =
  Arg.(
    value & opt (some int) None
    & info [ "session-gap" ]
        ~doc:
          "Close windows by event-time inactivity gaps of $(docv) ticks (session windows) \
           instead of the fixed grid; needs an in-order source, so it conflicts with \
           --disorder"
        ~docv:"TICKS")

let undeclared_late_arg =
  Arg.(
    value & flag
    & info [ "undeclared-late" ]
        ~doc:
          "Adversarial demo: write/verify the audit under a declaration that claims the \
           silent policy although the run handled late data — the verifier must flag \
           Undeclared_late_handling (exit 2)")

let dispatch name version windows epw batch cores_list target_ms hints fuse slab verbose
    frames_in audit_out trace_out exec_domains exec_mode deterministic exec_time_scale
    results_out resil fault_rates fault_seed ckpt_every max_restarts crash_at crash_site recover
    fleet_m partition_by kills uplinks stragglers suspect_after recover_after rogue
    omit_manifests tenants_n tenant_quotas tenant_mix solo_tenant disorder late_policy
    session_gap undeclared_late =
  Sbt_umem.Slab.set_enabled slab;
  let disorder_active =
    disorder > 0.0 || late_policy <> D.Silent || session_gap <> None || undeclared_late
  in
  if disorder < 0.0 || disorder > 1.0 then begin
    Printf.eprintf "--disorder must be a probability in [0, 1]\n";
    exit 1
  end;
  (match session_gap with
  | Some g when g <= 0 ->
      Printf.eprintf "--session-gap must be a positive tick count\n";
      exit 1
  | _ -> ());
  (* Disorder composes with --exec/--fuse/--tenants, but the recovery and
     fleet paths checkpoint/partition on the fixed window grid and make
     byte-identity claims that late reopenings would falsify. *)
  if disorder_active && (fleet_m > 0 || recover || crash_at <> None || resil) then begin
    Printf.eprintf
      "--disorder/--late-policy/--session-gap/--undeclared-late do not compose with \
       --fleet/--recover/--crash-at/--resilience\n";
    exit 1
  end;
  if session_gap <> None && disorder > 0.0 then begin
    Printf.eprintf
      "sessions need in-order event times; --session-gap does not compose with --disorder\n";
    exit 1
  end;
  if tenants_n > 0 || solo_tenant <> None then
    if fleet_m > 0 || resil || recover || crash_at <> None then begin
      Printf.eprintf
        "--tenants/--solo-tenant do not compose with --fleet/--resilience/--recover/--crash-at\n";
      exit 1
    end
    else if frames_in <> None then begin
      Printf.eprintf "--tenants generates each tenant's source; --frames is not supported\n";
      exit 1
    end
    else if undeclared_late then begin
      Printf.eprintf "--undeclared-late applies to single-pipeline runs, not --tenants\n";
      exit 1
    end
    else
      tenants_run name version windows epw batch tenants_n tenant_mix tenant_quotas solo_tenant
        hints fuse exec_domains exec_mode deterministic exec_time_scale disorder late_policy
        session_gap fault_seed verbose audit_out results_out
  else if fleet_m > 0 then
    fleet name version windows epw batch fleet_m partition_by kills uplinks stragglers
      suspect_after recover_after rogue omit_manifests ckpt_every deterministic verbose audit_out
      results_out
  else if resil then resilience name version windows epw batch fault_rates fault_seed
  else if recover || crash_at <> None then
    recovery name version windows epw batch ckpt_every max_restarts crash_at crash_site recover
      deterministic verbose audit_out results_out
  else
    run name version windows epw batch cores_list target_ms hints fuse verbose frames_in
      audit_out trace_out exec_domains exec_mode deterministic exec_time_scale results_out
      disorder late_policy session_gap undeclared_late fault_seed

let cmd =
  let doc = "Run a StreamBox-TZ benchmark pipeline" in
  Cmd.v
    (Cmd.info "sbt_run" ~doc)
    Term.(
      const dispatch $ name_arg $ version_arg $ windows_arg $ epw_arg $ batch_arg $ cores_arg
      $ target_arg $ hints_arg $ fuse_arg $ slab_arg $ verbose_arg $ frames_arg $ audit_arg
      $ trace_arg
      $ exec_arg $ exec_mode_arg $ deterministic_arg $ exec_time_scale_arg $ results_out_arg
      $ resilience_arg $ fault_rates_arg $ fault_seed_arg $ ckpt_every_arg $ max_restarts_arg
      $ crash_at_arg $ crash_site_arg $ recover_arg $ fleet_arg $ partition_by_arg $ kills_arg
      $ uplinks_arg $ stragglers_arg $ suspect_after_arg $ recover_after_arg $ rogue_arg
      $ omit_manifests_arg $ tenants_arg $ tenant_quota_arg $ tenant_mix_arg $ solo_tenant_arg
      $ disorder_arg $ late_policy_arg $ session_gap_arg $ undeclared_late_arg)

let () = exit (Cmd.eval cmd)
