(* sbt_verify: the cloud consumer's side of continuous attestation.
   Reads an audit file written by `sbt_run --audit-out` — a single-edge
   log (SBTA1) or a fleet bundle (SBTF1, M edges + sealed handoff
   manifests), dispatching on the magic — authenticates every signed
   artifact, replays the records against the embedded pipeline
   declaration, and prints the verdict.  Exit codes: 0 = verified,
   2 = violations, 3 = an artifact failed authentication. *)

module Log = Sbt_attest.Log
module V = Sbt_attest.Verifier

let verify_single path key freshness_us =
  let spec, batches = Sbt_io.read_audit path in
  let spec =
    match freshness_us with None -> spec | Some b -> { spec with V.freshness_bound = Some b }
  in
  let records =
    List.concat_map
      (fun b ->
        try Log.open_batch ~key b
        with Invalid_argument msg ->
          Printf.eprintf "batch %d rejected: %s\n" b.Log.seq msg;
          exit 3)
      batches
  in
  Printf.printf "authenticated %d batches, %d records\n" (List.length batches) (List.length records);
  let report = V.verify spec records in
  Format.printf "%a" V.pp_report report;
  if not (V.ok report) then exit 2

let verify_fleet path key freshness_us =
  let spec, partitions, windows, edges, handoffs = Sbt_io.read_fleet_audit path in
  let spec =
    match freshness_us with None -> spec | Some b -> { spec with V.freshness_bound = Some b }
  in
  let batches =
    List.fold_left
      (fun acc (e : V.edge_chains) ->
        List.fold_left (fun acc (_, eps) -> List.fold_left (fun a (_, bs) -> a + List.length bs) acc eps) acc e.V.chains)
      0 edges
  in
  Printf.printf "fleet bundle: %d edges, %d partitions, %d windows, %d audit batches, %d handoff manifest(s)\n"
    (List.length edges) partitions windows batches (List.length handoffs);
  let report =
    try V.verify_fleet ~key spec ~partitions ~windows ~edges ~handoffs
    with Invalid_argument msg ->
      Printf.eprintf "bundle rejected: %s\n" msg;
      exit 3
  in
  Format.printf "%a" V.pp_fleet_report report;
  if not (V.fleet_ok report) then exit 2

let run path key_string freshness_us =
  let key = Bytes.of_string key_string in
  match Sbt_io.file_magic path with
  | "SBTF1" -> verify_fleet path key freshness_us
  | "SBTA1" -> verify_single path key freshness_us
  | m ->
      Printf.eprintf "not an audit file (magic %S)\n" m;
      exit 1

open Cmdliner

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"AUDIT_FILE")

let key_arg =
  Arg.(value & opt string "sbt-egress-key16" & info [ "key" ] ~doc:"Shared edge/cloud key (16 bytes)")

let freshness_arg =
  Arg.(value & opt (some int) None & info [ "freshness-us" ] ~doc:"Override the freshness bound (microseconds)")

let cmd =
  let doc = "Verify a StreamBox-TZ audit log by symbolic replay" in
  Cmd.v (Cmd.info "sbt_verify" ~doc) Term.(const run $ path_arg $ key_arg $ freshness_arg)

let () = exit (Cmd.eval cmd)
