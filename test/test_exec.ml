(* Tests for the real-parallel layer: the work deque, the work-stealing
   executor over recorded traces, the engine-equivalence invariant
   ([`Des] / [`Domains 1] / [`Domains n] produce byte-identical
   observables), the exec.* metrics, and the domain-safe shard plumbing
   in the page pool and the audit log. *)

module Deque = Sbt_exec.Deque
module Executor = Sbt_exec.Executor
module Trace = Sbt_sim.Trace
module Pool = Sbt_umem.Page_pool
module Log = Sbt_attest.Log
module Record = Sbt_attest.Record
module Runtime = Sbt_core.Runtime
module Control = Sbt_core.Control
module Metrics = Sbt_obs.Metrics
module B = Sbt_workloads.Benchmarks
module Fault = Sbt_fault.Fault
module V = Sbt_attest.Verifier

let egress_key = Bytes.of_string "sbt-egress-key16"

(* --- deque ------------------------------------------------------------------ *)

let test_deque_lifo () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (option int)) "newest first" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "then 2" (Some 2) (Deque.pop d);
  Deque.push d 4;
  Alcotest.(check (option int)) "push after pop" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "oldest last" (Some 1) (Deque.pop d);
  Alcotest.(check (option int)) "drained" None (Deque.pop d)

let test_deque_steal_half () =
  let d = Deque.create () in
  Alcotest.(check (list int)) "steal from empty" [] (Deque.steal_half d);
  List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ];
  (* ceil(5/2) = 3 oldest, oldest first. *)
  Alcotest.(check (list int)) "oldest half, oldest first" [ 1; 2; 3 ] (Deque.steal_half d);
  Alcotest.(check (option int)) "owner still LIFO" (Some 5) (Deque.pop d);
  Alcotest.(check (list int)) "steal the last one" [ 4 ] (Deque.steal_half d);
  Alcotest.(check int) "empty again" 0 (Deque.length d)

let test_deque_grows () =
  let d = Deque.create () in
  for i = 1 to 1_000 do
    Deque.push d i
  done;
  for i = 1_000 downto 1 do
    Alcotest.(check (option int)) "LIFO through growth" (Some i) (Deque.pop d)
  done

let test_deque_cross_domain () =
  (* One owner pushing and popping, one thief stealing: every pushed
     element comes out exactly once, whoever dequeued it. *)
  let d = Deque.create () in
  let n = 20_000 in
  let stolen = ref [] in
  let thief =
    Domain.spawn (fun () ->
        let got = ref [] in
        let misses = ref 0 in
        while !misses < 200 do
          match Deque.steal_half d with
          | [] ->
              incr misses;
              Domain.cpu_relax ()
          | xs ->
              misses := 0;
              got := List.rev_append xs !got
        done;
        !got)
  in
  let popped = ref [] in
  for i = 1 to n do
    Deque.push d i;
    if i mod 3 = 0 then
      match Deque.pop d with Some x -> popped := x :: !popped | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some x ->
        popped := x :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  stolen := Domain.join thief;
  (* The thief may have grabbed elements between our drain and its last
     probe — drain once more to be sure nothing is left. *)
  drain ();
  let all = List.sort compare (!stolen @ !popped) in
  Alcotest.(check int) "nothing lost or duplicated" n (List.length all);
  Alcotest.(check (list int)) "exactly 1..n" (List.init n (fun i -> i + 1)) all

(* --- executor over a synthetic trace ---------------------------------------- *)

(* A two-window diamond-ish graph: a source chain with fan-out per
   window, each window closed by an [Egress_of]. *)
let synthetic_trace () =
  let node ?(deps = []) ?(role = Trace.Plain) label =
    { Trace.label; cost_ns = 1_000.0; deps; arrival_events = None; role }
  in
  Trace.of_nodes
    [|
      node "ingest:0";
      node ~deps:[ 0 ] "sort:0";
      node ~deps:[ 0 ] "count:0";
      node ~deps:[ 1; 2 ] ~role:(Trace.Egress_of 0) "egress:0";
      node ~deps:[ 0 ] "ingest:1";
      node ~deps:[ 4 ] "sort:1";
      node ~deps:[ 4 ] "count:1";
      node ~deps:[ 5; 6 ] ~role:(Trace.Egress_of 1) "egress:1";
    |]

let test_executor_runs_graph () =
  let trace = synthetic_trace () in
  let r1 = Executor.run ~time_scale:0.0 ~domains:1 trace in
  let r4 = Executor.run ~time_scale:0.0 ~domains:4 trace in
  Alcotest.(check int) "all tasks ran (1 domain)" 8 r1.Executor.tasks_executed;
  Alcotest.(check int) "all tasks ran (4 domains)" 8 r4.Executor.tasks_executed;
  Alcotest.(check int) "per-domain tasks sum (4)" 8
    (Array.fold_left (fun a s -> a + s.Executor.tasks) 0 r4.Executor.per_domain);
  Alcotest.(check string) "journal identical across domain counts"
    r1.Executor.journal r4.Executor.journal;
  Alcotest.(check int) "one pool merge per window close" 2 r1.Executor.pool_merges;
  (* The journal is the schedule order, verbatim. *)
  Alcotest.(check string) "journal is schedule order"
    "0 ingest:0\n1 sort:0\n2 count:0\n3 egress:0\n4 ingest:1\n5 sort:1\n6 count:1\n7 egress:1\n"
    r1.Executor.journal

let test_executor_rejects_bad_args () =
  let trace = synthetic_trace () in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Executor.run: domains must be positive") (fun () ->
      ignore (Executor.run ~domains:0 trace));
  Alcotest.check_raises "negative time_scale"
    (Invalid_argument "Executor.run: negative time_scale") (fun () ->
      ignore (Executor.run ~time_scale:(-1.0) ~domains:1 trace))

(* --- engine equivalence ------------------------------------------------------ *)

(* Noise-free cost model so recordings are reproducible across engines
   within the process. *)
let det_cfg ?(fault_plan = Fault.none) () =
  let cost = { Sbt_tz.Cost_model.default with Sbt_tz.Cost_model.host_scale = 0.0 } in
  Runtime.Config.make ~cores:4 ~cost ~fault_plan ()

let observables (r : Runtime.run_result) =
  ( r.Runtime.results,
    List.map
      (fun (b : Log.batch) -> (b.Log.seq, b.Log.payload, b.Log.tag))
      r.Runtime.audit,
    r.Runtime.tee_metrics )

let verdict (r : Runtime.run_result) =
  let records = List.concat_map (Log.open_batch ~key:egress_key) r.Runtime.audit in
  let rep = V.verify r.Runtime.verifier_spec records in
  (V.ok rep, rep.V.declared_gaps, List.length rep.V.violations)

let prop_engine_equivalence =
  QCheck.Test.make ~name:"`Des / `Domains 1 / `Domains 4: byte-identical observables"
    ~count:6
    QCheck.(triple (int_range 1 2) (int_range 500 3_000) (int_range 0 20))
    (fun (windows, events_per_window, fault_pct) ->
      let fault_plan =
        if fault_pct = 0 then Fault.none
        else
          Fault.uniform ~seed:(Int64.of_int (fault_pct * 7)) ~rate:(float_of_int fault_pct /. 100.0) ()
      in
      let cfg = det_cfg ~fault_plan () in
      let run ?exec_mode engine =
        let bench = B.win_sum ~windows ~events_per_window ~batch_events:500 () in
        Runtime.run ~engine ?exec_mode ~exec_time_scale:0.0 cfg bench.B.pipeline
          (B.frames bench)
      in
      (* The [`Domains] runs execute the captured kernels for real
         ([`Work]); the reference [`Des] run records without capture, so
         equality also proves capturing perturbs nothing. *)
      let des = run (`Des 4) in
      let d1 = run ~exec_mode:`Work (`Domains 1) in
      let d4 = run ~exec_mode:`Work (`Domains 4) in
      observables des = observables d1
      && observables des = observables d4
      && verdict des = verdict d1
      && verdict des = verdict d4
      && des.Runtime.exec = None
      && (match d4.Runtime.exec with Some e -> e.Executor.domains = 4 | None -> false))

(* --- exec metrics ------------------------------------------------------------ *)

let test_exec_metrics_registered () =
  let bench = B.win_sum ~windows:2 ~events_per_window:2_000 ~batch_events:500 () in
  let r =
    Runtime.run ~engine:(`Domains 2) ~exec_time_scale:0.0 (det_cfg ()) bench.B.pipeline
      (B.frames bench)
  in
  let exec = match r.Runtime.exec with Some e -> e | None -> Alcotest.fail "no exec report" in
  let reg = r.Runtime.registry in
  Alcotest.(check int) "exec.tasks counts every task" exec.Executor.tasks_executed
    (Metrics.find_counter reg "exec.tasks");
  Alcotest.(check int) "exec.tasks matches the recording" r.Runtime.tasks_executed
    (Metrics.find_counter reg "exec.tasks");
  Alcotest.(check int) "exec.domains" 2 (Metrics.find_counter reg "exec.domains");
  Alcotest.(check int) "exec.steals mirrors the report" (Executor.total_steals exec)
    (Metrics.find_counter reg "exec.steals");
  Alcotest.(check int) "exec.parks mirrors the report" (Executor.total_parks exec)
    (Metrics.find_counter reg "exec.parks");
  Alcotest.(check bool) "exec.wall_ns registered" true
    (Metrics.find_counter reg "exec.wall_ns" >= 0)

(* --- real-work (`Work) mode -------------------------------------------------- *)

let test_work_mode_executes_kernels () =
  (* A sort-heavy recording with capture: the [`Work] replay must execute
     real kernel chunks, and re-measuring at another domain count must
     leave the recording's observables untouched. *)
  let bench = B.topk ~windows:2 ~events_per_window:6_000 ~batch_events:1_000 () in
  let cfg = det_cfg () in
  let r =
    Runtime.run ~engine:(`Domains 2) ~exec_mode:`Work cfg bench.B.pipeline (B.frames bench)
  in
  let exec = match r.Runtime.exec with Some e -> e | None -> Alcotest.fail "no exec report" in
  Alcotest.(check bool) "captured work present" true (r.Runtime.work <> None);
  Alcotest.(check int) "every task executed" r.Runtime.tasks_executed
    exec.Executor.tasks_executed;
  Alcotest.(check bool) "real kernel chunks ran" true (exec.Executor.chunks_executed > 0);
  let before = observables r in
  let again = Runtime.exec_trace ~mode:`Work ~domains:4 cfg r in
  Alcotest.(check bool) "re-measure runs chunks too" true (again.Executor.chunks_executed > 0);
  Alcotest.(check bool) "observables untouched by replay" true (observables r = before)

let test_work_mode_without_capture_is_noop () =
  let bench = B.win_sum ~windows:1 ~events_per_window:1_000 ~batch_events:500 () in
  let r = Runtime.run ~engine:(`Des 4) (det_cfg ()) bench.B.pipeline (B.frames bench) in
  Alcotest.(check bool) "no capture by default" true (r.Runtime.work = None);
  let rep = Runtime.exec_trace ~mode:`Work ~domains:2 (det_cfg ()) r in
  Alcotest.(check int) "tasks still complete" r.Runtime.tasks_executed
    rep.Executor.tasks_executed;
  Alcotest.(check int) "but no kernels run" 0 rep.Executor.chunks_executed

(* --- page-pool shards -------------------------------------------------------- *)

let test_pool_shard_accounting () =
  let pool = Pool.create ~budget_bytes:(64 * Pool.page_size) in
  let shards = Pool.shards ~refill_pages:8 pool ~n:2 in
  Pool.shard_commit shards.(0) ~pages:3;
  Alcotest.(check int) "shard sees its commit" (3 * Pool.page_size)
    (Pool.shard_committed_bytes shards.(0));
  (* Quota is drawn in refill-sized chunks: the parent books the chunk,
     a conservative bound on real usage. *)
  Alcotest.(check int) "parent books the refill chunk" 8 (Pool.committed_pages pool);
  Pool.shard_release shards.(0) ~pages:3;
  Alcotest.(check int) "shard back to zero" 0 (Pool.shard_committed_bytes shards.(0));
  Alcotest.(check bool) "high water kept" true
    (Pool.shard_high_water_bytes shards.(0) >= 3 * Pool.page_size);
  Pool.merge_shard shards.(0);
  Alcotest.(check int) "merge returns the quota" 0 (Pool.committed_pages pool)

let test_pool_shard_oom () =
  let pool = Pool.create ~budget_bytes:(4 * Pool.page_size) in
  let shards = Pool.shards ~refill_pages:4 pool ~n:1 in
  Pool.shard_commit shards.(0) ~pages:4;
  (try
     Pool.shard_commit shards.(0) ~pages:1;
     Alcotest.fail "overcommit accepted"
   with Pool.Out_of_secure_memory _ -> ());
  Pool.shard_release shards.(0) ~pages:4;
  Pool.merge_shard shards.(0);
  Alcotest.(check int) "budget fully returned" 0 (Pool.committed_pages pool)

(* --- audit-log shards -------------------------------------------------------- *)

let mk_records n =
  List.init n (fun i ->
      if i mod 5 = 4 then Record.Egress { ts = i; uarray = i; win_no = i / 5 }
      else Record.Ingress { ts = i; uarray = i; stream = 0; seq = i })

let batch_tuples = List.map (fun (b : Log.batch) -> (b.Log.seq, b.Log.payload, b.Log.tag))

let serial_batches records =
  let log = Log.create ~key:egress_key ~flush_every:4 in
  let auto = List.filter_map (Log.append log) records in
  auto @ Option.to_list (Log.flush log)

let test_log_merge_shards_matches_serial () =
  let records = mk_records 23 in
  let serial = serial_batches records in
  (* Stage the same records round-robin across 4 shards, tagged with
     their serial position, as the executor's domains would. *)
  let shards = Array.init 4 (fun _ -> Log.shard ()) in
  List.iteri (fun i r -> Log.shard_append shards.(i mod 4) ~seq:i r) records;
  let log = Log.create ~key:egress_key ~flush_every:4 in
  let auto = Log.merge_shards log shards in
  let merged = auto @ Option.to_list (Log.flush log) in
  Alcotest.(check int) "same batch count" (List.length serial) (List.length merged);
  Alcotest.(check bool) "byte-identical batches" true
    (batch_tuples serial = batch_tuples merged)

let test_log_merge_shards_parallel_append () =
  (* Real domains appending concurrently, each to its own shard: the
     merge still reproduces the serial bytes. *)
  let records = Array.of_list (mk_records 40) in
  let serial = serial_batches (Array.to_list records) in
  let shards = Array.init 4 (fun _ -> Log.shard ()) in
  let doms =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            Array.iteri (fun i r -> if i mod 4 = d then Log.shard_append shards.(d) ~seq:i r) records))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "every record staged" 40
    (Array.fold_left (fun a s -> a + Log.shard_count s) 0 shards);
  let log = Log.create ~key:egress_key ~flush_every:4 in
  let auto = Log.merge_shards log shards in
  let merged = auto @ Option.to_list (Log.flush log) in
  Alcotest.(check bool) "parallel staging, serial bytes" true
    (batch_tuples serial = batch_tuples merged)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ( "deque",
        [
          Alcotest.test_case "lifo" `Quick test_deque_lifo;
          Alcotest.test_case "steal-half" `Quick test_deque_steal_half;
          Alcotest.test_case "growth" `Quick test_deque_grows;
          Alcotest.test_case "cross-domain" `Quick test_deque_cross_domain;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs the graph" `Quick test_executor_runs_graph;
          Alcotest.test_case "rejects bad args" `Quick test_executor_rejects_bad_args;
        ] );
      ("engine-equivalence", [ q prop_engine_equivalence ]);
      ("metrics", [ Alcotest.test_case "exec.* counters" `Quick test_exec_metrics_registered ]);
      ( "work-mode",
        [
          Alcotest.test_case "executes captured kernels" `Quick test_work_mode_executes_kernels;
          Alcotest.test_case "no capture, no work" `Quick test_work_mode_without_capture_is_noop;
        ] );
      ( "pool-shards",
        [
          Alcotest.test_case "accounting" `Quick test_pool_shard_accounting;
          Alcotest.test_case "oom" `Quick test_pool_shard_oom;
        ] );
      ( "log-shards",
        [
          Alcotest.test_case "merge matches serial" `Quick test_log_merge_shards_matches_serial;
          Alcotest.test_case "parallel append" `Quick test_log_merge_shards_parallel_append;
        ] );
    ]
