(* Tests for the comparison baselines: hash-based commodity engines, the
   SecureStreams-style per-operator-enclave model, and the LZSS generic
   compressor. *)

module H = Sbt_baselines.Hash_engine
module SS = Sbt_baselines.Secure_streams
module Lzss = Sbt_baselines.Lzss
module B = Sbt_workloads.Benchmarks
module Datagen = Sbt_workloads.Datagen
module Frame = Sbt_net.Frame

let frames () =
  Datagen.frames (Datagen.default_spec ~windows:3 ~events_per_window:5_000 ~batch_events:1_000 ())

let reference_sums frames =
  let sums = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match f with
      | Frame.Watermark _ -> ()
      | Frame.Events { payload; _ } ->
          Array.iter
            (fun e ->
              let w = Int32.to_int e.(2) / 1000 in
              let cur = Option.value ~default:0L (Hashtbl.find_opt sums w) in
              Hashtbl.replace sums w (Int64.add cur (Int64.of_int32 e.(1))))
            (Frame.unpack_events ~width:3 payload))
    frames;
  Hashtbl.fold (fun w s acc -> (w, s) :: acc) sums [] |> List.sort compare

let test_hash_engines_correct () =
  let fs = frames () in
  let expected = reference_sums fs in
  List.iter
    (fun flavor ->
      let r = H.run_win_sum flavor ~window_ticks:1000 fs in
      Alcotest.(check bool) (H.flavor_name flavor ^ " sums") true (r.H.window_sums = expected);
      Alcotest.(check int) "events" 15_000 r.H.events;
      Alcotest.(check bool) "heap tracked" true (r.H.peak_live_words > 0))
    [ H.Flink_like; H.Esper_like; H.Sensorbee_like ]

let test_hash_engine_rejects_ciphertext () =
  let enc =
    Datagen.frames
      { (Datagen.default_spec ~windows:1 ~events_per_window:100 ~batch_events:100 ()) with
        Datagen.encrypted = true
      }
  in
  Alcotest.check_raises "ciphertext refused"
    (Invalid_argument "Hash_engine.run_win_sum: cleartext frames only") (fun () ->
      ignore (H.run_win_sum H.Flink_like ~window_ticks:1000 enc))

let test_secure_streams_correct () =
  let fs = frames () in
  let expected = reference_sums fs in
  let r = SS.run_win_sum ~window_ticks:1000 fs in
  Alcotest.(check bool) "sums" true (r.SS.window_sums = expected);
  Alcotest.(check bool) "hops paid" true (r.SS.hops >= 2 * 15);
  Alcotest.(check bool) "bytes re-encrypted" true (r.SS.bytes_reencrypted > 0)

(* --- lzss ---------------------------------------------------------------------- *)

let test_lzss_roundtrips () =
  List.iter
    (fun s ->
      let b = Bytes.of_string s in
      Alcotest.(check string) "roundtrip" s (Bytes.to_string (Lzss.decompress (Lzss.compress b))))
    [
      "";
      "a";
      "aaaaaaaaaaaaaaaaaaaaaaaaa";
      "abcabcabcabcabcabcabcabc";
      "no repeats here: qwertyuiop";
      String.concat "" (List.init 50 (fun i -> Printf.sprintf "record-%06d;" (i / 3)));
    ]

let test_lzss_compresses_repetitive () =
  let b = Bytes.of_string (String.concat "" (List.init 200 (fun _ -> "same-old-data "))) in
  Alcotest.(check bool) "ratio > 3" true (Lzss.ratio b > 3.0)

let prop_lzss_roundtrip =
  QCheck.Test.make ~name:"lzss roundtrip" ~count:200 QCheck.string (fun s ->
      Bytes.to_string (Lzss.decompress (Lzss.compress (Bytes.of_string s))) = s)

let prop_lzss_binary_roundtrip =
  QCheck.Test.make ~name:"lzss binary roundtrip" ~count:50
    QCheck.(list (int_bound 255))
    (fun bytes ->
      let b = Bytes.init (List.length bytes) (fun i -> Char.chr (List.nth bytes i)) in
      Bytes.equal (Lzss.decompress (Lzss.compress b)) b)

let test_columnar_beats_lzss_on_audit_records () =
  (* The Figure 12 claim in miniature: domain-specific columnar coding
     beats the generic LZ-class compressor on audit-record streams. *)
  let records =
    List.concat
      (List.init 200 (fun i ->
           [
             Sbt_attest.Record.Ingress { ts = (i * 37) + 1; uarray = 3 * i; stream = 0; seq = i };
             Sbt_attest.Record.Windowing
               { ts = (i * 37) + 2; data_in = 3 * i; win_no = i / 10; data_out = (3 * i) + 1 };
             Sbt_attest.Record.Execution
               {
                 ts = (i * 37) + 9;
                 op = 0;
                 inputs = [ (3 * i) + 1 ];
                 outputs = [ (3 * i) + 2 ];
                 hints = [];
               };
           ]))
  in
  let raw = Sbt_attest.Record.encode_all records in
  let columnar = Bytes.length (Sbt_attest.Columnar.compress records) in
  let generic = Bytes.length (Lzss.compress raw) in
  Alcotest.(check bool)
    (Printf.sprintf "columnar %d < lzss %d" columnar generic)
    true (columnar < generic)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "hash-engine",
        [
          Alcotest.test_case "three flavors correct" `Quick test_hash_engines_correct;
          Alcotest.test_case "rejects ciphertext" `Quick test_hash_engine_rejects_ciphertext;
        ] );
      ("secure-streams", [ Alcotest.test_case "correct with hops" `Quick test_secure_streams_correct ]);
      ( "lzss",
        [
          Alcotest.test_case "roundtrips" `Quick test_lzss_roundtrips;
          Alcotest.test_case "compresses repetitive" `Quick test_lzss_compresses_repetitive;
          q prop_lzss_roundtrip;
          q prop_lzss_binary_roundtrip;
          Alcotest.test_case "columnar beats lzss" `Quick test_columnar_beats_lzss_on_audit_records;
        ] );
    ]
