(* Tests for the engine core: opaque references, the data plane's request
   surface and version behaviour, end-to-end pipeline runs checked against
   plain reference computations, attestation over real runs (including
   tampering), and the runner's scaling output. *)

module D = Sbt_core.Dataplane
module Opaque = Sbt_core.Opaque
module Pipeline = Sbt_core.Pipeline
module Control = Sbt_core.Control
module Runner = Sbt_core.Runner
module Event = Sbt_core.Event
module P = Sbt_prim.Primitive
module B = Sbt_workloads.Benchmarks
module Frame = Sbt_net.Frame
module V = Sbt_attest.Verifier

let egress_key = Bytes.of_string "sbt-egress-key16"

(* --- opaque references ------------------------------------------------------ *)

let mk_ua () =
  let pool = Sbt_umem.Page_pool.create ~budget_bytes:(1024 * 1024) in
  Sbt_umem.Uarray.create ~id:0 ~pool ~width:1 ~capacity:4 ()

let test_opaque_register_resolve () =
  let t = Opaque.create ~rng:(Sbt_crypto.Rng.create ~seed:1L) in
  let ua = mk_ua () in
  let r = Opaque.register t ua in
  Alcotest.(check bool) "resolves" true (Opaque.resolve t r == ua);
  Alcotest.(check int) "one live" 1 (Opaque.live_count t);
  Opaque.remove t r;
  Alcotest.(check int) "zero live" 0 (Opaque.live_count t)

let test_opaque_rejects_fabricated () =
  let t = Opaque.create ~rng:(Sbt_crypto.Rng.create ~seed:1L) in
  ignore (Opaque.register t (mk_ua ()));
  (try
     ignore (Opaque.resolve t 0xDEADBEEFL);
     Alcotest.fail "fabricated reference accepted"
   with Opaque.Invalid_reference 0xDEADBEEFL -> ());
  (try
     Opaque.remove t 42L;
     Alcotest.fail "double free accepted"
   with Opaque.Invalid_reference _ -> ())

let prop_opaque_fabricated_never_resolves =
  QCheck.Test.make ~name:"random refs never resolve" ~count:200 QCheck.int64 (fun guess ->
      let t = Opaque.create ~rng:(Sbt_crypto.Rng.create ~seed:5L) in
      let real = Opaque.register t (mk_ua ()) in
      Int64.equal guess real
      ||
      try
        ignore (Opaque.resolve t guess);
        false
      with Opaque.Invalid_reference _ -> true)

(* --- dataplane units ---------------------------------------------------------- *)

let mk_dp ?(version = D.Full) ?(secure_mb = 64) () =
  D.create (D.default_config ~version ~secure_mb ())

let payload_of rows = Frame.pack_events ~width:3 (Array.of_list (List.map Array.of_list rows))

let ingest dp rows =
  match
    D.call dp
      (D.R_ingest_events
         { payload = payload_of rows; encrypted = false; stream = 0; seq = 0; mac = Bytes.empty })
  with
  | D.Rs_ingested { out; _ } -> out.D.ref_
  | _ -> Alcotest.fail "unexpected ingest response"

let test_dataplane_ingest_and_sort () =
  let dp = mk_dp () in
  let r = ingest dp [ [ 3l; 30l; 0l ]; [ 1l; 10l; 1l ]; [ 2l; 20l; 2l ] ] in
  match
    D.call dp
      (D.R_invoke
         {
           op = P.Sort;
           inputs = [ r ];
           trigger = None;
           params = [ D.P_key_field 0 ];
           hints = [];
           retire_inputs = true;
         })
  with
  | D.Rs_outputs [ out ] -> (
      Alcotest.(check int) "3 events" 3 out.D.events;
      (* Egress it and check the order through the sealed result. *)
      match D.call dp (D.R_egress { input = out.D.ref_; window = 0 }) with
      | D.Rs_egress sealed ->
          let rows = D.open_result ~egress_key sealed in
          Alcotest.(check int32) "sorted first key" 1l rows.(0).(0);
          Alcotest.(check int32) "sorted last key" 3l rows.(2).(0)
      | _ -> Alcotest.fail "unexpected egress response")
  | _ -> Alcotest.fail "unexpected invoke response"

let test_dataplane_rejects_fabricated_ref () =
  let dp = mk_dp () in
  ignore (ingest dp [ [ 1l; 2l; 3l ] ]);
  try
    ignore
      (D.call dp
         (D.R_invoke
            {
              op = P.Count;
              inputs = [ 0x1234L ];
              trigger = None;
              params = [];
              hints = [];
              retire_inputs = true;
            }));
    Alcotest.fail "fabricated opaque reference accepted"
  with Opaque.Invalid_reference _ -> ()

let test_dataplane_rejects_wrong_arity () =
  let dp = mk_dp () in
  let a = ingest dp [ [ 1l; 2l; 3l ] ] in
  try
    ignore
      (D.call dp
         (D.R_invoke
            { op = P.Join; inputs = [ a ]; trigger = None; params = []; hints = []; retire_inputs = false }));
    Alcotest.fail "join with one input accepted"
  with D.Rejected _ -> ()

let test_dataplane_retire_semantics () =
  let dp = mk_dp () in
  let a = ingest dp [ [ 1l; 2l; 3l ]; [ 4l; 5l; 6l ] ] in
  (* Count with retire: the input ref dies. *)
  (match
     D.call dp
       (D.R_invoke
          { op = P.Count; inputs = [ a ]; trigger = None; params = []; hints = []; retire_inputs = true })
   with
  | D.Rs_outputs [ _ ] -> ()
  | _ -> Alcotest.fail "unexpected response");
  try
    ignore
      (D.call dp
         (D.R_invoke
            { op = P.Count; inputs = [ a ]; trigger = None; params = []; hints = []; retire_inputs = true }));
    Alcotest.fail "stale reference accepted"
  with Opaque.Invalid_reference _ -> ()

let test_dataplane_encrypted_ingest () =
  let dp = mk_dp () in
  let rows = [ [ 7l; 70l; 0l ]; [ 8l; 80l; 1l ] ] in
  let clear = payload_of rows in
  let key = Bytes.of_string "sbt-ingress-k16!" in
  let ctr = Sbt_crypto.Ctr.create ~key ~nonce:0L in
  let cipher = Bytes.copy clear in
  Sbt_crypto.Ctr.xcrypt ctr ~pos:(Int64.shift_left 3L 32) cipher 0 (Bytes.length cipher);
  match
    D.call dp
      (D.R_ingest_events { payload = cipher; encrypted = true; stream = 0; seq = 3; mac = Bytes.empty })
  with
  | D.Rs_ingested { out; _ } -> (
      match D.call dp (D.R_egress { input = out.D.ref_; window = 0 }) with
      | D.Rs_egress sealed ->
          let back = D.open_result ~egress_key sealed in
          Alcotest.(check int32) "decrypted inside TEE" 70l back.(0).(1)
      | _ -> Alcotest.fail "unexpected egress")
  | _ -> Alcotest.fail "unexpected ingest"

let test_dataplane_result_tamper_detected () =
  let dp = mk_dp () in
  let r = ingest dp [ [ 1l; 2l; 3l ] ] in
  match D.call dp (D.R_egress { input = r; window = 0 }) with
  | D.Rs_egress sealed ->
      let bad = Bytes.copy sealed.D.cipher in
      Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 0xFF));
      Alcotest.check_raises "MAC failure"
        (Invalid_argument "Dataplane.open_result: MAC verification failed") (fun () ->
          ignore (D.open_result ~egress_key { sealed with D.cipher = bad }))
  | _ -> Alcotest.fail "unexpected egress"

let test_dataplane_version_accounting () =
  (* Full pays world switches; Insecure pays none; IOviaOS additionally
     pays boundary copies. *)
  let run version =
    let dp = mk_dp ~version () in
    ignore (ingest dp [ [ 1l; 2l; 3l ]; [ 4l; 5l; 6l ] ]);
    D.stats dp
  in
  let full = run D.Full in
  let insecure = run D.Insecure in
  let via_os = run D.Io_via_os in
  Alcotest.(check bool) "full switches > 0" true (full.D.switch_pairs > 0);
  Alcotest.(check int) "insecure switches = 0" 0 insecure.D.switch_pairs;
  Alcotest.(check (float 0.0)) "full pays no copy" 0.0 full.D.modeled_copy_ns;
  Alcotest.(check bool) "via-os pays copy" true (via_os.D.modeled_copy_ns > 0.0)

let test_dataplane_backpressure () =
  (* A tiny pool: ingesting enough data crosses the threshold and stalls. *)
  let cfg = D.Config.make ~secure_mb:1 ~backpressure_threshold:0.3 () in
  let dp = D.create cfg in
  let big_rows = List.init 30_000 (fun i -> [ Int32.of_int i; 1l; 0l ]) in
  (match
     D.call dp
       (D.R_ingest_events
          { payload = payload_of big_rows; encrypted = false; stream = 0; seq = 0; mac = Bytes.empty })
   with
  | D.Rs_ingested { stalled_ns; _ } -> Alcotest.(check (float 0.0)) "first batch unstalled" 0.0 stalled_ns
  | _ -> Alcotest.fail "unexpected");
  match
    D.call dp
      (D.R_ingest_events
         { payload = payload_of big_rows; encrypted = false; stream = 0; seq = 1; mac = Bytes.empty })
  with
  | D.Rs_ingested { stalled_ns; _ } ->
      Alcotest.(check bool) "second batch stalled" true (stalled_ns > 0.0);
      Alcotest.(check int) "stall counted" 1 (D.stats dp).D.backpressure_stalls
  | _ -> Alcotest.fail "unexpected"

let test_dataplane_adaptive_backpressure () =
  (* Adaptive flow control: the stall grows as the pool fills deeper past
     the threshold. *)
  let cfg =
    D.Config.make ~secure_mb:2 ~backpressure_threshold:0.1 ~adaptive_backpressure:true ()
  in
  let dp = D.create cfg in
  let rows = List.init 20_000 (fun i -> [ Int32.of_int i; 1l; 0l ]) in
  let stall seq =
    match
      D.call dp
        (D.R_ingest_events
           { payload = payload_of rows; encrypted = false; stream = 0; seq; mac = Bytes.empty })
    with
    | D.Rs_ingested { stalled_ns; _ } -> stalled_ns
    | _ -> Alcotest.fail "unexpected"
  in
  let s0 = stall 0 in
  let s1 = stall 1 in
  let s2 = stall 2 in
  Alcotest.(check (float 0.0)) "first free" 0.0 s0;
  Alcotest.(check bool) "second stalled" true (s1 > 0.0);
  Alcotest.(check bool) (Printf.sprintf "deeper pressure, longer stall (%.0f > %.0f)" s2 s1) true
    (s2 > s1)

let test_dataplane_debug_entry () =
  let dp = mk_dp () in
  ignore (ingest dp [ [ 1l; 2l; 3l ] ]);
  let s = D.debug_dump dp in
  Alcotest.(check bool) "mentions refs" true (String.length s > 0)

(* --- end-to-end pipelines vs reference computations ---------------------------- *)

(* Decode every event from (cleartext) frames: the reference view. *)
let events_of_frames ~width frames =
  List.concat_map
    (fun f ->
      match f with
      | Frame.Watermark _ -> []
      | Frame.Events { payload; encrypted; _ } ->
          if encrypted then Alcotest.fail "reference needs cleartext frames";
          Array.to_list (Frame.unpack_events ~width payload))
    frames

let window_of ts = Int32.to_int ts / Event.ticks_per_second

let run_pipeline ?(version = D.Full) (bench : B.t) =
  let frames = B.frames bench in
  let cfg = Control.Config.make ~version ~cores:8 () in
  (Control.run cfg bench.B.pipeline frames, frames)

let result_rows (r : Control.run_result) w =
  match List.assoc_opt w r.Control.results with
  | Some sealed -> D.open_result ~egress_key sealed
  | None -> Alcotest.failf "no result for window %d" w

let test_winsum_matches_reference () =
  let bench = B.win_sum ~windows:3 ~events_per_window:5_000 ~batch_events:1_000 () in
  let r, frames = run_pipeline bench in
  let events = events_of_frames ~width:3 frames in
  for w = 0 to 2 do
    let expected =
      List.fold_left
        (fun acc e -> if window_of e.(2) = w then Int64.add acc (Int64.of_int32 e.(1)) else acc)
        0L events
    in
    let rows = result_rows r w in
    let got =
      Int64.logor
        (Int64.logand (Int64.of_int32 rows.(0).(0)) 0xFFFFFFFFL)
        (Int64.shift_left (Int64.of_int32 rows.(0).(1)) 32)
    in
    Alcotest.(check int64) (Printf.sprintf "window %d sum" w) expected got
  done

let test_distinct_matches_reference () =
  let bench = B.distinct ~windows:2 ~events_per_window:5_000 ~batch_events:1_000 () in
  let r, frames = run_pipeline bench in
  let events = events_of_frames ~width:3 frames in
  for w = 0 to 1 do
    let keys = Hashtbl.create 64 in
    List.iter (fun e -> if window_of e.(2) = w then Hashtbl.replace keys e.(0) ()) events;
    let rows = result_rows r w in
    Alcotest.(check int32) (Printf.sprintf "window %d distinct" w)
      (Int32.of_int (Hashtbl.length keys))
      rows.(0).(0)
  done

let test_filter_matches_reference () =
  let bench = B.filter ~windows:2 ~events_per_window:5_000 ~batch_events:1_000 () in
  let r, frames = run_pipeline bench in
  let events = events_of_frames ~width:3 frames in
  for w = 0 to 1 do
    let expected =
      List.filter (fun e -> window_of e.(2) = w && e.(1) >= 0l && e.(1) <= 42949672l) events
    in
    let rows = result_rows r w in
    Alcotest.(check int) (Printf.sprintf "window %d kept" w) (List.length expected) (Array.length rows);
    (* Selectivity should be roughly 1% of uniform 32-bit values. *)
    let sel = float_of_int (List.length expected) /. 5000.0 in
    Alcotest.(check bool) "about 1%" true (sel > 0.002 && sel < 0.03)
  done

let test_topk_matches_reference () =
  let bench = B.topk ~windows:2 ~events_per_window:4_000 ~batch_events:1_000 () in
  let r, frames = run_pipeline bench in
  let events = events_of_frames ~width:3 frames in
  for w = 0 to 1 do
    let groups = Hashtbl.create 64 in
    List.iter
      (fun e ->
        if window_of e.(2) = w then
          Hashtbl.replace groups e.(0)
            (Int32.to_int e.(1) :: Option.value ~default:[] (Hashtbl.find_opt groups e.(0))))
      events;
    let expected =
      Hashtbl.fold
        (fun k vs acc ->
          let top = List.filteri (fun i _ -> i < 10) (List.sort (fun a b -> compare b a) vs) in
          List.map (fun v -> (Int32.to_int k, v)) top @ acc)
        groups []
      |> List.sort compare
    in
    let rows = result_rows r w in
    let got =
      Array.to_list rows
      |> List.map (fun row -> (Int32.to_int row.(0), Int32.to_int row.(1)))
      |> List.sort compare
    in
    Alcotest.(check bool) (Printf.sprintf "window %d topk" w) true (expected = got)
  done

let test_join_matches_reference () =
  let bench = B.join ~windows:2 ~events_per_window:2_000 ~batch_events:500 () in
  let r, frames = run_pipeline bench in
  (* Rebuild the two streams from frames. *)
  let left = ref [] and right = ref [] in
  List.iter
    (fun f ->
      match f with
      | Frame.Events { stream; payload; _ } ->
          let evs = Array.to_list (Frame.unpack_events ~width:3 payload) in
          if stream = 0 then left := !left @ evs else right := !right @ evs
      | Frame.Watermark _ -> ())
    frames;
  for w = 0 to 1 do
    let in_w l = List.filter (fun e -> window_of e.(2) = w) l in
    let lw = in_w !left and rw = in_w !right in
    let expected_count =
      List.fold_left
        (fun acc le ->
          acc + List.length (List.filter (fun re -> re.(0) = le.(0)) rw))
        0 lw
    in
    let rows = result_rows r w in
    Alcotest.(check int) (Printf.sprintf "window %d join size" w) expected_count (Array.length rows)
  done

let test_power_matches_reference () =
  let bench = B.power ~windows:2 ~events_per_window:5_000 ~batch_events:1_000 () in
  let r, frames = run_pipeline bench in
  let events = events_of_frames ~width:4 frames in
  for w = 0 to 1 do
    (* Reference: avg per plug; global avg of plug-avgs; per-house count of
       plugs strictly above; top-10 houses by count. *)
    let per_plug = Hashtbl.create 64 in
    List.iter
      (fun e ->
        if window_of e.(2) = w then
          Hashtbl.replace per_plug e.(0)
            (Int32.to_int e.(1) :: Option.value ~default:[] (Hashtbl.find_opt per_plug e.(0))))
      events;
    let plug_avgs =
      Hashtbl.fold
        (fun plug vs acc ->
          let avg =
            Int64.to_int
              (Int64.div
                 (Int64.of_int (List.fold_left ( + ) 0 vs))
                 (Int64.of_int (List.length vs)))
          in
          (Int32.to_int plug, avg) :: acc)
        per_plug []
    in
    let global =
      Int64.to_int
        (Int64.div
           (Int64.of_int (List.fold_left (fun a (_, v) -> a + v) 0 plug_avgs))
           (Int64.of_int (List.length plug_avgs)))
    in
    let per_house = Hashtbl.create 64 in
    List.iter
      (fun (plug, avg) ->
        if avg > global then begin
          let house = plug lsr 8 in
          Hashtbl.replace per_house house (1 + Option.value ~default:0 (Hashtbl.find_opt per_house house))
        end)
      plug_avgs;
    let expected_counts =
      Hashtbl.fold (fun h c acc -> (h, c) :: acc) per_house [] |> List.sort compare
    in
    let rows = result_rows r w in
    let got = Array.to_list rows |> List.map (fun r -> (Int32.to_int r.(0), Int32.to_int r.(1))) in
    (* The engine returns the top-10 by count; every returned (house,count)
       must match the reference counts, and the counts must be the 10
       largest. *)
    List.iter
      (fun (h, c) ->
        match List.assoc_opt h expected_counts with
        | Some c' -> Alcotest.(check int) (Printf.sprintf "w%d house %d" w h) c' c
        | None -> Alcotest.failf "w%d unexpected house %d" w h)
      got;
    let all_counts = List.map snd expected_counts |> List.sort (fun a b -> compare b a) in
    let top_counts = List.filteri (fun i _ -> i < 10) all_counts in
    let got_counts = List.map snd got |> List.sort (fun a b -> compare b a) in
    Alcotest.(check (list int)) (Printf.sprintf "w%d top counts" w) top_counts got_counts
  done

let test_encrypted_source_same_results () =
  let clear = B.win_sum ~windows:2 ~events_per_window:3_000 ~batch_events:1_000 () in
  let enc = B.win_sum ~windows:2 ~events_per_window:3_000 ~batch_events:1_000 ~encrypted:true () in
  let rc, _ = run_pipeline ~version:D.Clear_ingress clear in
  let re, _ = run_pipeline ~version:D.Full enc in
  for w = 0 to 1 do
    Alcotest.(check bool) (Printf.sprintf "window %d equal" w) true
      (result_rows rc w = result_rows re w)
  done

(* --- attestation over real runs -------------------------------------------------- *)

let records_of_run (r : Control.run_result) =
  List.concat_map (fun b -> Sbt_attest.Log.open_batch ~key:egress_key b) r.Control.audit

let test_real_run_verifies () =
  List.iter
    (fun (bench : B.t) ->
      let r, _ = run_pipeline bench in
      let report = V.verify r.Control.verifier_spec (records_of_run r) in
      if not (V.ok report) then
        Alcotest.failf "%s: %s" bench.B.name (Format.asprintf "%a" V.pp_report report);
      Alcotest.(check bool)
        (bench.B.name ^ " verified windows")
        true
        (report.V.windows_verified > 0))
    [
      B.win_sum ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
      B.topk ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
      B.distinct ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
      B.join ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
      B.filter ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
      B.power ~windows:2 ~events_per_window:2_000 ~batch_events:500 ();
    ]

let test_tampered_log_rejected () =
  let bench = B.topk ~windows:2 ~events_per_window:2_000 ~batch_events:500 () in
  let r, _ = run_pipeline bench in
  let records = records_of_run r in
  (* Drop one execution record: the verifier must notice the hole. *)
  let dropped =
    let seen = ref false in
    List.filter
      (function
        | Sbt_attest.Record.Execution _ when not !seen ->
            seen := true;
            false
        | _ -> true)
      records
  in
  let report = V.verify r.Control.verifier_spec dropped in
  Alcotest.(check bool) "dropped record detected" false (V.ok report)

let test_misdeclared_pipeline_rejected () =
  (* Verifier expects a different pipeline than the one executed. *)
  let bench = B.distinct ~windows:2 ~events_per_window:2_000 ~batch_events:500 () in
  let r, _ = run_pipeline bench in
  let wrong_spec =
    Pipeline.verifier_spec (Pipeline.group_topk ()) (* declared TopK, ran Distinct *)
  in
  let report = V.verify wrong_spec (records_of_run r) in
  Alcotest.(check bool) "mismatch detected" false (V.ok report)

(* --- runner ------------------------------------------------------------------------ *)

let test_runner_scaling_and_verification () =
  let bench = B.win_sum ~windows:3 ~events_per_window:10_000 ~batch_events:2_000 () in
  let o =
    Runner.run ~cores_list:[ 1; 2; 4; 8 ] ~target_delay_ms:bench.B.target_delay_ms bench.B.pipeline
      (B.frames bench)
  in
  Alcotest.(check bool) "verified" true o.Runner.verified;
  let rates = List.map (fun p -> p.Runner.events_per_sec) o.Runner.points in
  List.iter (fun r -> Alcotest.(check bool) "positive" true (r > 0.0)) rates;
  (match rates with
  | [ c1; _; _; c8 ] ->
      Alcotest.(check bool)
        (Printf.sprintf "8c (%.0f) > 2x 1c (%.0f)" c8 c1)
        true (c8 > 2.0 *. c1)
  | _ -> Alcotest.fail "expected four points");
  Alcotest.(check bool) "audit produced" true (o.Runner.audit_records > 0);
  (* Per-egress flushes keep batches small here, so only require net
     savings; the full-ratio claims are exercised in test_attest and the
     Figure 12 bench at realistic volumes. *)
  Alcotest.(check bool) "compression effective" true
    (o.Runner.audit_compressed_bytes < o.Runner.audit_raw_bytes)

let test_runner_insecure_faster_than_full () =
  let mk () = B.filter ~windows:2 ~events_per_window:10_000 ~batch_events:2_000 () in
  let bench = mk () in
  let full =
    Runner.run ~cores_list:[ 8 ] ~target_delay_ms:50.0 ~version:D.Clear_ingress bench.B.pipeline
      (B.frames bench)
  in
  let bench = mk () in
  let insecure =
    Runner.run ~cores_list:[ 8 ] ~target_delay_ms:50.0 ~version:D.Insecure bench.B.pipeline
      (B.frames bench)
  in
  let rate o = (List.hd o.Runner.points).Runner.events_per_sec in
  Alcotest.(check bool)
    (Printf.sprintf "insecure (%.0f) >= clear-ingress (%.0f)" (rate insecure) (rate full))
    true
    (rate insecure >= rate full *. 0.95)

let test_no_leaked_refs_after_run () =
  let bench = B.distinct ~windows:2 ~events_per_window:3_000 ~batch_events:1_000 () in
  let r, _ = run_pipeline bench in
  Alcotest.(check int) "all refs retired" 0 r.Control.live_refs_after

(* --- resilience under injected faults --------------------------------------------- *)

module Fault = Sbt_fault.Fault
module Lossy = Sbt_net.Lossy
module R = Sbt_attest.Record

let resilience_bench () = B.win_sum ~windows:3 ~events_per_window:6_000 ~batch_events:500 ()

(* Authenticated frames through a lossy link into a faulting engine. *)
let faulty_run ?(rate = 0.12) ?(seed = 21L) () =
  let bench = resilience_bench () in
  let spec = { bench.B.spec with Sbt_workloads.Datagen.authenticated = true } in
  let plan = Fault.uniform ~seed ~rate () in
  let frames, link = Lossy.apply plan (Sbt_workloads.Datagen.frames spec) in
  let cfg = Control.Config.make ~cores:8 ~fault_plan:plan () in
  (Control.run cfg bench.B.pipeline frames, link)

(* Gap identity without the host-time-dependent [ts]. *)
let gap_tuples records =
  List.filter_map
    (function
      | R.Gap { stream; seq; events; windows; reason; _ } ->
          Some (stream, seq, events, windows, R.gap_reason_tag reason)
      | _ -> None)
    records
  |> List.sort compare

let opened_results (r : Control.run_result) =
  List.map (fun (w, sealed) -> (w, D.open_result ~egress_key sealed)) r.Control.results
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let test_resilience_three_regimes () =
  (* Regime 1 - clean: no faults, no gaps, verifies. *)
  let bench = resilience_bench () in
  let clean, _ = run_pipeline bench in
  let clean_report = V.verify clean.Control.verifier_spec (records_of_run clean) in
  Alcotest.(check bool) "clean verifies" true (V.ok clean_report);
  Alcotest.(check int) "clean has no gaps" 0 (Control.Loss.gaps_declared clean.Control.loss);
  Alcotest.(check int) "clean report agrees" 0 clean_report.V.declared_gaps;
  (* Regime 2 - degraded: faults happen, losses are declared, still ok. *)
  let faulty, link = faulty_run () in
  Alcotest.(check bool) "link did damage" true (link.Lossy.dropped + link.Lossy.corrupted > 0);
  Alcotest.(check bool) "gaps declared" true ((Control.Loss.gaps_declared faulty.Control.loss) > 0);
  Alcotest.(check bool) "batches dropped" true ((Control.Loss.batches_dropped faulty.Control.loss) > 0);
  let records = records_of_run faulty in
  let report = V.verify faulty.Control.verifier_spec records in
  if not (V.ok report) then
    Alcotest.failf "declared loss must verify as degradation: %s"
      (Format.asprintf "%a" V.pp_report report);
  Alcotest.(check int) "report sees the gaps" (Control.Loss.gaps_declared faulty.Control.loss) report.V.declared_gaps;
  Alcotest.(check bool) "loss reported" true
    (report.V.lost_batches > 0 && report.V.loss_fraction > 0.0);
  (* Regime 3 - tampered: stripping the gap declarations from the same log
     turns tolerated degradation into violations. *)
  let stripped = List.filter (function R.Gap _ -> false | _ -> true) records in
  let tampered = V.verify faulty.Control.verifier_spec stripped in
  Alcotest.(check bool) "stripped log rejected" false (V.ok tampered);
  Alcotest.(check bool) "undeclared loss flagged" true
    (List.exists (function V.Undeclared_loss _ -> true | _ -> false) tampered.V.violations)

let test_resilience_deterministic () =
  (* Same plan, same seed: identical losses, gaps, results and verdict,
     independent of host timing. *)
  let r1, l1 = faulty_run () in
  let r2, l2 = faulty_run () in
  Alcotest.(check bool) "same link damage" true (l1 = l2);
  Alcotest.(check int) "same gap count" (Control.Loss.gaps_declared r1.Control.loss) (Control.Loss.gaps_declared r2.Control.loss);
  Alcotest.(check int) "same drops" (Control.Loss.batches_dropped r1.Control.loss) (Control.Loss.batches_dropped r2.Control.loss);
  Alcotest.(check int) "same events lost" (Control.Loss.events_dropped r1.Control.loss) (Control.Loss.events_dropped r2.Control.loss);
  Alcotest.(check bool) "same gaps" true
    (gap_tuples (records_of_run r1) = gap_tuples (records_of_run r2));
  Alcotest.(check bool) "same results" true (opened_results r1 = opened_results r2);
  let rep1 = V.verify r1.Control.verifier_spec (records_of_run r1) in
  let rep2 = V.verify r2.Control.verifier_spec (records_of_run r2) in
  Alcotest.(check bool) "same verdict" true
    ((V.ok rep1, rep1.V.declared_gaps, rep1.V.lost_batches, rep1.V.degraded_windows)
    = (V.ok rep2, rep2.V.declared_gaps, rep2.V.lost_batches, rep2.V.degraded_windows))

let test_resilience_zero_cost_opt_in () =
  (* A rate-0 plan is [none]: no hook installed, no gaps, results identical
     to a run that never heard of fault injection. *)
  Alcotest.(check bool) "rate 0 is none" true (Fault.is_none (Fault.uniform ~rate:0.0 ()));
  let bench = resilience_bench () in
  let plain, _ = run_pipeline bench in
  let r, link = faulty_run ~rate:0.0 () in
  Alcotest.(check int) "nothing dropped" 0 link.Lossy.dropped;
  Alcotest.(check int) "no gaps" 0 (Control.Loss.gaps_declared r.Control.loss);
  Alcotest.(check int) "no drops" 0 (Control.Loss.batches_dropped r.Control.loss);
  Alcotest.(check int) "no sheds" 0 r.Control.dp_stats.D.sheds;
  Alcotest.(check int) "no smc refusals" 0 r.Control.dp_stats.D.smc_busy_rejections;
  Alcotest.(check bool) "same results as the plain path" true
    (opened_results plain = opened_results r)

let test_smc_retry_within_budget () =
  (* Bursts no longer than the retry budget: every batch eventually lands,
     nothing is dropped, but the refusals are visible in the stats. *)
  let bench = resilience_bench () in
  let plan =
    { Fault.none with Fault.smc = { Fault.quiet with Fault.fail_p = 0.5; max_burst = 2 } }
  in
  Alcotest.(check bool) "budget covers bursts" true (plan.Fault.retry_budget >= 2);
  let cfg = Control.Config.make ~cores:8 ~fault_plan:plan () in
  let r = Control.run cfg bench.B.pipeline (B.frames bench) in
  Alcotest.(check bool) "refusals injected" true (r.Control.dp_stats.D.smc_busy_rejections > 0);
  Alcotest.(check int) "no batch lost" 0 (Control.Loss.batches_dropped r.Control.loss);
  Alcotest.(check int) "no gaps needed" 0 (Control.Loss.gaps_declared r.Control.loss);
  let report = V.verify r.Control.verifier_spec (records_of_run r) in
  Alcotest.(check bool) "verifies clean" true (V.ok report);
  (* And the retried run computes the same answers.  (Fresh bench: the
     generators carry mutable state, so frames must come from their own
     instance to be reproducible.) *)
  let plain, _ = run_pipeline (resilience_bench ()) in
  Alcotest.(check bool) "same results" true (opened_results plain = opened_results r)

let test_smc_budget_exhausted_degrades () =
  (* Bursts longer than the budget: the batch is dropped and vouched for. *)
  let bench = resilience_bench () in
  let plan =
    {
      Fault.none with
      Fault.retry_budget = 1;
      smc = { Fault.quiet with Fault.fail_p = 0.4; max_burst = 4 };
    }
  in
  let cfg = Control.Config.make ~cores:8 ~fault_plan:plan () in
  let r = Control.run cfg bench.B.pipeline (B.frames bench) in
  Alcotest.(check bool) "some batches dropped" true ((Control.Loss.batches_dropped r.Control.loss) > 0);
  let gaps = gap_tuples (records_of_run r) in
  Alcotest.(check int) "every drop declared" (Control.Loss.batches_dropped r.Control.loss) (List.length gaps);
  Alcotest.(check bool) "smc reason recorded" true
    (List.exists
       (fun (_, _, _, _, tag) -> R.gap_reason_of_tag tag = R.Smc_unavailable)
       gaps);
  let report = V.verify r.Control.verifier_spec (records_of_run r) in
  if not (V.ok report) then
    Alcotest.failf "declared SMC loss must degrade: %s" (Format.asprintf "%a" V.pp_report report)

let test_pool_pressure_sheds_and_degrades () =
  (* Forced pool sheds: ingest refuses with Overloaded instead of raising
     Out_of_secure_memory, the batch is declared lost, the run verifies. *)
  let bench = resilience_bench () in
  let plan = { Fault.none with Fault.pool = { Fault.quiet with Fault.fail_p = 0.25 } } in
  let cfg = Control.Config.make ~cores:8 ~fault_plan:plan () in
  let r = Control.run cfg bench.B.pipeline (B.frames bench) in
  Alcotest.(check bool) "sheds happened" true (r.Control.dp_stats.D.sheds > 0);
  Alcotest.(check bool) "drops recorded" true ((Control.Loss.batches_dropped r.Control.loss) > 0);
  Alcotest.(check bool) "pool reason recorded" true
    (List.exists
       (fun (_, _, _, _, tag) -> R.gap_reason_of_tag tag = R.Pool_pressure)
       (gap_tuples (records_of_run r)));
  let report = V.verify r.Control.verifier_spec (records_of_run r) in
  Alcotest.(check bool) "verifies as degradation" true (V.ok report)

let test_dataplane_exhaustion_sheds_not_crashes () =
  (* Real exhaustion (no injection): a payload larger than the whole pool
     must shed with Overloaded, never crash the TEE. *)
  let dp = mk_dp ~secure_mb:1 () in
  let rows = List.init 120_000 (fun i -> [ Int32.of_int i; 1l; 0l ]) in
  (try
     ignore
       (D.call dp
          (D.R_ingest_events
             { payload = payload_of rows; encrypted = false; stream = 0; seq = 0; mac = Bytes.empty }));
     Alcotest.fail "expected Overloaded"
   with D.Overloaded { stalled_ns } ->
     Alcotest.(check bool) "stall modeled" true (stalled_ns > 0.0));
  Alcotest.(check int) "shed counted" 1 (D.stats dp).D.sheds;
  (* The pool is untouched: a reasonable batch still ingests fine. *)
  match
    D.call dp
      (D.R_ingest_events
         { payload = payload_of [ [ 1l; 2l; 0l ] ]; encrypted = false; stream = 0; seq = 1;
           mac = Bytes.empty })
  with
  | D.Rs_ingested _ -> ()
  | _ -> Alcotest.fail "pool unusable after shed"

let test_corrupt_frame_rejected_by_dataplane () =
  (* A MAC that does not match the payload: rejected inside the TEE. *)
  let dp = mk_dp () in
  let payload = payload_of [ [ 1l; 2l; 0l ]; [ 3l; 4l; 1l ] ] in
  let key = Bytes.of_string "sbt-ingress-k16!" in
  let mac = Frame.mac_payload ~key ~stream:0 ~seq:0 ~events:2 payload in
  let bad = Bytes.copy payload in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 0x40));
  (try
     ignore
       (D.call dp (D.R_ingest_events { payload = bad; encrypted = false; stream = 0; seq = 0; mac }));
     Alcotest.fail "expected Rejected"
   with D.Rejected _ -> ());
  (* The genuine payload with the same MAC is accepted. *)
  match D.call dp (D.R_ingest_events { payload; encrypted = false; stream = 0; seq = 0; mac }) with
  | D.Rs_ingested _ -> ()
  | _ -> Alcotest.fail "genuine frame refused"

let test_control_adaptive_backpressure () =
  (* Satellite: adaptive flow control exercised through the whole control
     plane, not just the dataplane unit - the run completes, stalls are
     recorded, and the answers are unchanged. *)
  let mk () = B.win_sum ~windows:2 ~events_per_window:8_000 ~batch_events:1_000 () in
  let bench = mk () in
  let cfg =
    Control.Config.make ~cores:8 ~secure_mb:1 ~backpressure_threshold:0.05
      ~adaptive_backpressure:true ()
  in
  let r = Control.run cfg bench.B.pipeline (B.frames bench) in
  Alcotest.(check bool) "stalls recorded" true (r.Control.dp_stats.D.backpressure_stalls > 0);
  Alcotest.(check int) "nothing dropped" 0 (Control.Loss.batches_dropped r.Control.loss);
  let plain, _ = run_pipeline (mk ()) in
  Alcotest.(check bool) "same results under pressure" true
    (opened_results plain = opened_results r);
  let report = V.verify r.Control.verifier_spec (records_of_run r) in
  Alcotest.(check bool) "verifies" true (V.ok report)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "opaque",
        [
          Alcotest.test_case "register/resolve/remove" `Quick test_opaque_register_resolve;
          Alcotest.test_case "rejects fabricated" `Quick test_opaque_rejects_fabricated;
          q prop_opaque_fabricated_never_resolves;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "ingest and sort" `Quick test_dataplane_ingest_and_sort;
          Alcotest.test_case "rejects fabricated ref" `Quick test_dataplane_rejects_fabricated_ref;
          Alcotest.test_case "rejects wrong arity" `Quick test_dataplane_rejects_wrong_arity;
          Alcotest.test_case "retire semantics" `Quick test_dataplane_retire_semantics;
          Alcotest.test_case "encrypted ingest" `Quick test_dataplane_encrypted_ingest;
          Alcotest.test_case "result tamper detected" `Quick test_dataplane_result_tamper_detected;
          Alcotest.test_case "version accounting" `Quick test_dataplane_version_accounting;
          Alcotest.test_case "backpressure" `Quick test_dataplane_backpressure;
          Alcotest.test_case "adaptive backpressure" `Quick test_dataplane_adaptive_backpressure;
          Alcotest.test_case "debug entry" `Quick test_dataplane_debug_entry;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "winsum reference" `Quick test_winsum_matches_reference;
          Alcotest.test_case "distinct reference" `Quick test_distinct_matches_reference;
          Alcotest.test_case "filter reference" `Quick test_filter_matches_reference;
          Alcotest.test_case "topk reference" `Quick test_topk_matches_reference;
          Alcotest.test_case "join reference" `Quick test_join_matches_reference;
          Alcotest.test_case "power reference" `Quick test_power_matches_reference;
          Alcotest.test_case "encrypted source same results" `Quick
            test_encrypted_source_same_results;
        ] );
      ( "attestation-e2e",
        [
          Alcotest.test_case "all benchmarks verify" `Slow test_real_run_verifies;
          Alcotest.test_case "tampered log rejected" `Quick test_tampered_log_rejected;
          Alcotest.test_case "misdeclared pipeline rejected" `Quick
            test_misdeclared_pipeline_rejected;
        ] );
      ( "runner",
        [
          Alcotest.test_case "scaling and verification" `Slow test_runner_scaling_and_verification;
          Alcotest.test_case "insecure >= clear-ingress" `Slow test_runner_insecure_faster_than_full;
          Alcotest.test_case "no leaked refs" `Quick test_no_leaked_refs_after_run;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "three regimes" `Quick test_resilience_three_regimes;
          Alcotest.test_case "deterministic replay" `Quick test_resilience_deterministic;
          Alcotest.test_case "zero-cost opt-in" `Quick test_resilience_zero_cost_opt_in;
          Alcotest.test_case "smc retry within budget" `Quick test_smc_retry_within_budget;
          Alcotest.test_case "smc budget exhausted" `Quick test_smc_budget_exhausted_degrades;
          Alcotest.test_case "pool pressure degrades" `Quick test_pool_pressure_sheds_and_degrades;
          Alcotest.test_case "exhaustion sheds not crashes" `Quick
            test_dataplane_exhaustion_sheds_not_crashes;
          Alcotest.test_case "corrupt frame rejected" `Quick test_corrupt_frame_rejected_by_dataplane;
          Alcotest.test_case "control adaptive backpressure" `Quick
            test_control_adaptive_backpressure;
        ] );
    ]
