(* Tests for the trusted primitives: every primitive is checked against a
   straightforward list-based reference implementation, plus qcheck
   properties for the sort/merge core. *)

module U = Sbt_umem.Uarray
module Pool = Sbt_umem.Page_pool
module Sort = Sbt_prim.Sort
module Merge = Sbt_prim.Merge
module Segment = Sbt_prim.Segment
module Agg = Sbt_prim.Agg
module Keyed = Sbt_prim.Keyed
module Join = Sbt_prim.Join
module Filter = Sbt_prim.Filter
module Misc = Sbt_prim.Misc
module P = Sbt_prim.Primitive

let pool () = Pool.create ~budget_bytes:(256 * 1024 * 1024)

let ua_of_list p ~width rows =
  let ua = U.create ~id:0 ~pool:p ~width ~capacity:(max 1 (List.length rows)) () in
  List.iter (fun r -> U.append ua (Array.of_list (List.map Int32.of_int r))) rows;
  U.produce ua;
  ua

let rows_of_ua ua =
  List.map (fun r -> Array.to_list (Array.map Int32.to_int r)) (U.to_list ua)

let fresh p ~width ~capacity = U.create ~id:99 ~pool:p ~width ~capacity ()

let random_rows ?(lo = -1000) ?(hi = 1000) ~width ~n seed =
  let rng = Sbt_crypto.Rng.create ~seed:(Int64.of_int seed) in
  List.init n (fun _ -> List.init width (fun _ -> lo + Sbt_crypto.Rng.int_below rng (hi - lo)))

(* --- Sort ---------------------------------------------------------------- *)

let check_sorted_algo algo () =
  let p = pool () in
  let rows = random_rows ~width:3 ~n:5_000 1 in
  let src = ua_of_list p ~width:3 rows in
  let dst = fresh p ~width:3 ~capacity:5_000 in
  Sort.sort algo ~src ~dst ~key_field:0;
  Alcotest.(check bool) "sorted" true (Sort.is_sorted dst ~key_field:0);
  (* Same multiset of records. *)
  let norm l = List.sort compare l in
  Alcotest.(check bool) "permutation" true (norm (rows_of_ua dst) = norm rows)

let test_sort_negative_keys () =
  (* Signed order: radix must bias the top digit. *)
  let p = pool () in
  let src = ua_of_list p ~width:1 [ [ 5 ]; [ -3 ]; [ 0 ]; [ -2000000000 ]; [ 2000000000 ] ] in
  let dst = fresh p ~width:1 ~capacity:5 in
  Sort.sort Sort.Radix ~src ~dst ~key_field:0;
  Alcotest.(check (list (list int))) "signed ascending"
    [ [ -2000000000 ]; [ -3 ]; [ 0 ]; [ 5 ]; [ 2000000000 ] ]
    (rows_of_ua dst)

let test_sort_stability_radix () =
  (* Radix is stable: equal keys keep input order (checked via payload). *)
  let p = pool () in
  let rows = [ [ 1; 10 ]; [ 0; 20 ]; [ 1; 30 ]; [ 0; 40 ]; [ 1; 50 ] ] in
  let src = ua_of_list p ~width:2 rows in
  let dst = fresh p ~width:2 ~capacity:5 in
  Sort.sort Sort.Radix ~src ~dst ~key_field:0;
  Alcotest.(check (list (list int))) "stable"
    [ [ 0; 20 ]; [ 0; 40 ]; [ 1; 10 ]; [ 1; 30 ]; [ 1; 50 ] ]
    (rows_of_ua dst)

let test_sort_in_place () =
  let p = pool () in
  let ua = fresh p ~width:2 ~capacity:100 in
  let rows = random_rows ~width:2 ~n:100 3 in
  List.iter (fun r -> U.append ua (Array.of_list (List.map Int32.of_int r))) rows;
  Sort.sort_in_place Sort.Std ua ~key_field:1;
  Alcotest.(check bool) "sorted by field 1" true (Sort.is_sorted ua ~key_field:1)

let prop_sort_algorithms_agree =
  QCheck.Test.make ~name:"three sorts agree" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_bound 200) (QCheck.int_range (-10_000) 10_000))
    (fun keys ->
      let p = pool () in
      let rows = List.map (fun k -> [ k ]) keys in
      let src = ua_of_list p ~width:1 rows in
      let out algo =
        let dst = fresh p ~width:1 ~capacity:(List.length rows) in
        Sort.sort algo ~src ~dst ~key_field:0;
        rows_of_ua dst
      in
      let expected = List.map (fun k -> [ k ]) (List.sort compare keys) in
      out Sort.Radix = expected && out Sort.Std = expected && out Sort.Qsort = expected)

(* --- Merge --------------------------------------------------------------- *)

let test_merge2 () =
  let p = pool () in
  let a = ua_of_list p ~width:2 [ [ 1; 0 ]; [ 3; 0 ]; [ 5; 0 ] ] in
  let b = ua_of_list p ~width:2 [ [ 2; 1 ]; [ 3; 1 ]; [ 9; 1 ] ] in
  let dst = fresh p ~width:2 ~capacity:6 in
  Merge.merge2 ~a ~b ~dst ~key_field:0;
  Alcotest.(check (list (list int))) "merged, ties a-first"
    [ [ 1; 0 ]; [ 2; 1 ]; [ 3; 0 ]; [ 3; 1 ]; [ 5; 0 ]; [ 9; 1 ] ]
    (rows_of_ua dst)

let test_kway_merge () =
  let p = pool () in
  let inputs =
    List.init 7 (fun i ->
        let rows = List.sort compare (random_rows ~width:1 ~n:(50 + (i * 13)) (i + 10)) in
        ua_of_list p ~width:1 rows)
  in
  let total = List.fold_left (fun acc ua -> acc + U.length ua) 0 inputs in
  let dst = fresh p ~width:1 ~capacity:total in
  Merge.kway ~inputs ~dst ~key_field:0;
  Alcotest.(check int) "total" total (U.length dst);
  Alcotest.(check bool) "sorted" true (Sort.is_sorted dst ~key_field:0)

let test_kway_single_input () =
  let p = pool () in
  let only = ua_of_list p ~width:1 [ [ 1 ]; [ 2 ] ] in
  let dst = fresh p ~width:1 ~capacity:2 in
  Merge.kway ~inputs:[ only ] ~dst ~key_field:0;
  Alcotest.(check int) "copied" 2 (U.length dst)

(* --- Segment --------------------------------------------------------------- *)

let test_segment_counts_and_routing () =
  let p = pool () in
  (* ts field 1, window 100 ticks: windows 0,0,1,2,2,2 *)
  let src = ua_of_list p ~width:2 [ [ 1; 5 ]; [ 2; 99 ]; [ 3; 100 ]; [ 4; 200 ]; [ 5; 250 ]; [ 6; 299 ] ] in
  let counts = Segment.count_per_window ~src ~ts_field:1 ~window_size:100 () in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 2); (1, 1); (2, 3) ] counts;
  let dsts = Hashtbl.create 4 in
  Segment.segment ~src ~ts_field:1 ~window_size:100
    ~dst_for_window:(fun w ->
      let d = fresh p ~width:2 ~capacity:3 in
      Hashtbl.replace dsts w d;
      d)
    ();
  Alcotest.(check int) "window 0" 2 (U.length (Hashtbl.find dsts 0));
  Alcotest.(check int) "window 2" 3 (U.length (Hashtbl.find dsts 2));
  Alcotest.(check int32) "routing keeps fields" 4l (U.get_field (Hashtbl.find dsts 2) 0 0)

(* --- Aggregations ------------------------------------------------------------ *)

let test_agg_whole_array () =
  let p = pool () in
  let src = ua_of_list p ~width:2 [ [ 1; 10 ]; [ 2; -5 ]; [ 3; 7 ] ] in
  Alcotest.(check int64) "sum" 12L (Agg.sum src ~field:1);
  Alcotest.(check int) "count" 3 (Agg.count src);
  let s, n = Agg.sum_count src ~field:1 in
  Alcotest.(check int64) "sumcnt sum" 12L s;
  Alcotest.(check int) "sumcnt n" 3 n;
  Alcotest.(check (float 0.001)) "avg" 4.0 (Agg.average src ~field:1);
  (match Agg.min_max src ~field:1 with
  | Some (lo, hi) ->
      Alcotest.(check int32) "min" (-5l) lo;
      Alcotest.(check int32) "max" 10l hi
  | None -> Alcotest.fail "min_max");
  (match Agg.median src ~field:1 with
  | Some m -> Alcotest.(check int32) "median" 7l m
  | None -> Alcotest.fail "median")

let test_agg_empty () =
  let p = pool () in
  let src = ua_of_list p ~width:1 [] in
  Alcotest.(check int64) "sum 0" 0L (Agg.sum src ~field:0);
  Alcotest.(check (float 0.0)) "avg 0" 0.0 (Agg.average src ~field:0);
  Alcotest.(check bool) "no minmax" true (Agg.min_max src ~field:0 = None);
  Alcotest.(check bool) "no median" true (Agg.median src ~field:0 = None)

let test_agg_sum_overflow_safe () =
  let p = pool () in
  let rows = List.init 10 (fun _ -> [ 2_000_000_000 ]) in
  let src = ua_of_list p ~width:1 rows in
  Alcotest.(check int64) "64-bit sum" 20_000_000_000L (Agg.sum src ~field:0)

(* --- Keyed -------------------------------------------------------------------- *)

let sorted_kv p rows = ua_of_list p ~width:2 (List.sort compare rows)

let reference_groups rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | [ k; v ] -> Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
      | _ -> assert false)
    rows;
  List.sort compare (Hashtbl.fold (fun k vs acc -> (k, List.rev vs) :: acc) tbl [])

let test_keyed_against_reference () =
  let p = pool () in
  let rows = random_rows ~lo:0 ~hi:20 ~width:2 ~n:500 42 in
  let src = sorted_kv p rows in
  let groups = reference_groups rows in
  let expect f = List.map (fun (k, vs) -> [ k; f vs ]) groups in
  let run op =
    let dst = fresh p ~width:2 ~capacity:(List.length groups * 10) in
    op ~src ~dst;
    rows_of_ua dst
  in
  Alcotest.(check int) "group_count" (List.length groups) (Keyed.group_count ~src ~key_field:0);
  Alcotest.(check (list (list int))) "sum_per_key"
    (expect (fun vs -> List.fold_left ( + ) 0 vs))
    (run (fun ~src ~dst -> Keyed.sum_per_key ~src ~dst ~key_field:0 ~value_field:1));
  Alcotest.(check (list (list int))) "count_per_key"
    (expect List.length)
    (run (fun ~src ~dst -> Keyed.count_per_key ~src ~dst ~key_field:0));
  Alcotest.(check (list (list int))) "avg_per_key"
    (expect (fun vs ->
         let s = List.fold_left ( + ) 0 vs in
         Int64.to_int (Int64.div (Int64.of_int s) (Int64.of_int (List.length vs)))))
    (run (fun ~src ~dst -> Keyed.avg_per_key ~src ~dst ~key_field:0 ~value_field:1));
  Alcotest.(check (list (list int))) "median_per_key"
    (expect (fun vs ->
         let a = Array.of_list vs in
         Array.sort compare a;
         a.((Array.length a - 1) / 2)))
    (run (fun ~src ~dst -> Keyed.median_per_key ~src ~dst ~key_field:0 ~value_field:1));
  Alcotest.(check (list (list int))) "distinct_keys"
    (List.map (fun (k, _) -> [ k; 1 ]) groups)
    (run (fun ~src ~dst -> Keyed.distinct_keys ~src ~dst ~key_field:0))

let test_topk_per_key () =
  let p = pool () in
  let rows = [ [ 1; 5 ]; [ 1; 9 ]; [ 1; 1 ]; [ 2; 4 ]; [ 2; 8 ]; [ 2; 6 ]; [ 2; 7 ] ] in
  let src = sorted_kv p rows in
  let dst = fresh p ~width:2 ~capacity:8 in
  Keyed.topk_per_key ~src ~dst ~key_field:0 ~value_field:1 ~k:2;
  Alcotest.(check (list (list int))) "top 2 per key, descending"
    [ [ 1; 9 ]; [ 1; 5 ]; [ 2; 8 ]; [ 2; 7 ] ]
    (rows_of_ua dst)

(* --- Join ---------------------------------------------------------------------- *)

let reference_join left right =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun r ->
          match (l, r) with
          | [ kl; vl ], [ kr; vr ] when kl = kr -> Some [ kl; vl; vr ]
          | _ -> None)
        right)
    left

let test_join_against_reference () =
  let p = pool () in
  let lrows = random_rows ~lo:0 ~hi:15 ~width:2 ~n:60 7 in
  let rrows = random_rows ~lo:0 ~hi:15 ~width:2 ~n:50 8 in
  let left = sorted_kv p lrows and right = sorted_kv p rrows in
  let expected = List.sort compare (reference_join lrows rrows) in
  let n = Join.count_matches ~left ~right ~key_field:0 in
  Alcotest.(check int) "count_matches" (List.length expected) n;
  let dst = fresh p ~width:3 ~capacity:n in
  Join.join ~left ~right ~dst ~key_field:0 ~value_field:1;
  Alcotest.(check (list (list int))) "join rows" expected (List.sort compare (rows_of_ua dst))

let test_join_disjoint () =
  let p = pool () in
  let left = sorted_kv p [ [ 1; 1 ]; [ 2; 2 ] ] in
  let right = sorted_kv p [ [ 3; 3 ]; [ 4; 4 ] ] in
  Alcotest.(check int) "no matches" 0 (Join.count_matches ~left ~right ~key_field:0)

(* --- Filter / Select / Misc ------------------------------------------------------ *)

let test_filter_band () =
  let p = pool () in
  let rows = random_rows ~width:2 ~n:300 9 in
  let src = ua_of_list p ~width:2 rows in
  let expected = List.filter (fun r -> List.nth r 1 >= -100 && List.nth r 1 <= 100) rows in
  let n = Filter.count_in_band ~src ~field:1 ~lo:(-100l) ~hi:100l in
  Alcotest.(check int) "count" (List.length expected) n;
  let dst = fresh p ~width:2 ~capacity:n in
  Filter.filter_band ~src ~dst ~field:1 ~lo:(-100l) ~hi:100l;
  Alcotest.(check (list (list int))) "kept order" expected (rows_of_ua dst)

let test_select_eq () =
  let p = pool () in
  let src = ua_of_list p ~width:2 [ [ 1; 7 ]; [ 2; 8 ]; [ 1; 9 ] ] in
  let dst = fresh p ~width:2 ~capacity:2 in
  Filter.select_eq ~src ~dst ~field:0 ~value:1l;
  Alcotest.(check (list (list int))) "selected" [ [ 1; 7 ]; [ 1; 9 ] ] (rows_of_ua dst)

let test_sample_stride () =
  let p = pool () in
  let src = ua_of_list p ~width:1 (List.init 10 (fun i -> [ i ])) in
  let dst = fresh p ~width:1 ~capacity:4 in
  Filter.sample_stride ~src ~dst ~stride:3;
  Alcotest.(check (list (list int))) "every 3rd" [ [ 0 ]; [ 3 ]; [ 6 ]; [ 9 ] ] (rows_of_ua dst)

let test_concat_and_project () =
  let p = pool () in
  let a = ua_of_list p ~width:3 [ [ 1; 2; 3 ] ] in
  let b = ua_of_list p ~width:3 [ [ 4; 5; 6 ]; [ 7; 8; 9 ] ] in
  let cat = fresh p ~width:3 ~capacity:3 in
  Misc.concat ~inputs:[ a; b ] ~dst:cat;
  Alcotest.(check (list (list int))) "concat" [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ] (rows_of_ua cat);
  U.produce cat;
  let proj = fresh p ~width:2 ~capacity:3 in
  Misc.project ~src:cat ~dst:proj ~fields:[| 2; 0 |];
  Alcotest.(check (list (list int))) "project reorders" [ [ 3; 1 ]; [ 6; 4 ]; [ 9; 7 ] ] (rows_of_ua proj)

let test_top_k_records () =
  let p = pool () in
  let src = ua_of_list p ~width:2 [ [ 1; 5 ]; [ 2; 9 ]; [ 3; 1 ]; [ 4; 7 ] ] in
  let dst = fresh p ~width:2 ~capacity:2 in
  Misc.top_k_records ~src ~dst ~field:1 ~k:2;
  Alcotest.(check (list (list int))) "top 2 by value" [ [ 2; 9 ]; [ 4; 7 ] ] (rows_of_ua dst)

let test_shift_key () =
  let p = pool () in
  let src = ua_of_list p ~width:2 [ [ 258; 7 ]; [ 515; 8 ] ] in
  (* 258 = 1*256+2 -> house 1; 515 = 2*256+3 -> house 2 *)
  let dst = fresh p ~width:2 ~capacity:2 in
  Misc.shift_key ~src ~dst ~field:0 ~shift:8;
  Alcotest.(check (list (list int))) "houses" [ [ 1; 7 ]; [ 2; 8 ] ] (rows_of_ua dst)

(* --- fused super-kernel (PR 7) ----------------------------------------------------- *)

module F = Sbt_prim.Fused
module PK = Sbt_prim.Par_kernel

let fused_chain =
  [
    F.F_filter_band { field = 1; lo = -400l; hi = 400l };
    F.F_shift_key { field = 0; shift = 3 };
    F.F_project { fields = [| 1; 0 |] };
    F.F_select { field = 1; value = 12l };
  ]

let test_fused_equals_unfused_sequence () =
  (* The single-pass fused kernel must be byte-identical to running the
     four primitives one after another. *)
  let p = pool () in
  let rows = random_rows ~width:3 ~n:2_000 77 in
  let src = ua_of_list p ~width:3 rows in
  (* Reference: the unfused sequence. *)
  let s1 = fresh p ~width:3 ~capacity:2_000 in
  Filter.filter_band ~src ~dst:s1 ~field:1 ~lo:(-400l) ~hi:400l;
  U.produce s1;
  let s2 = fresh p ~width:3 ~capacity:(U.length s1) in
  Misc.shift_key ~src:s1 ~dst:s2 ~field:0 ~shift:3;
  U.produce s2;
  let s3 = fresh p ~width:2 ~capacity:(U.length s2) in
  Misc.project ~src:s2 ~dst:s3 ~fields:[| 1; 0 |];
  U.produce s3;
  let s4 = fresh p ~width:2 ~capacity:(U.length s3) in
  Filter.select_eq ~src:s3 ~dst:s4 ~field:1 ~value:12l;
  U.produce s4;
  (* Fused, serial and chunked. *)
  List.iter
    (fun pieces ->
      let dst = U.create ~id:7 ~pool:p ~width:2 ~capacity:2_000 () in
      PK.fused ~pieces ~src ~dst ~steps:fused_chain ();
      Alcotest.(check (list (list int)))
        (Printf.sprintf "identical to unfused (pieces=%d)" pieces)
        (rows_of_ua s4) (rows_of_ua dst))
    [ 1; 4 ]

let test_fused_steps_codec () =
  (match F.decode_steps (F.encode_steps fused_chain) with
  | Some steps -> Alcotest.(check bool) "roundtrip" true (steps = fused_chain)
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "garbage rejected" true
    (F.decode_steps (Bytes.of_string "\255nonsense") = None);
  Alcotest.(check bool) "empty rejected" true (F.decode_steps Bytes.empty = None)

let test_fused_width_tracking () =
  Alcotest.(check (option int)) "3 -> 2 through project" (Some 2) (F.width_after 3 fused_chain);
  Alcotest.(check (option int)) "field out of width is invalid" None
    (F.width_after 1 fused_chain)

(* --- registry --------------------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "exactly 23 primitives" 23 P.count;
  List.iteri
    (fun i prim ->
      Alcotest.(check int) "stable id" i (P.to_id prim);
      Alcotest.(check bool) "of_id roundtrip" true (P.of_id i = Some prim);
      Alcotest.(check bool) "of_name roundtrip" true (P.of_name (P.name prim) = Some prim))
    P.all;
  Alcotest.(check bool) "of_id out of range" true (P.of_id 23 = None);
  (* Pseudo-ids for audit records must not collide with primitive ids. *)
  Alcotest.(check bool) "pseudo ids distinct" true
    (P.ingress_id >= P.count && P.egress_id >= P.count && P.windowing_id >= P.count)

let test_of_name_total () =
  (* [of_name] is total: unknown and near-miss names return [None], never
     raise.  Names are exact (case-sensitive) matches. *)
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "%S unknown" s) true (P.of_name s = None))
    [ ""; "nope"; "sort"; "SORT"; " Sort"; "Sort "; "Sort2"; "Fused" ]

let test_fusable_ops () =
  let fusable = [ P.Filter_band; P.Select; P.Project; P.Shift_key ] in
  List.iter
    (fun prim ->
      Alcotest.(check bool) (P.name prim) (List.mem prim fusable) (P.fusable prim))
    P.all

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "prim"
    [
      ( "sort",
        [
          Alcotest.test_case "radix correct" `Quick (check_sorted_algo Sort.Radix);
          Alcotest.test_case "std correct" `Quick (check_sorted_algo Sort.Std);
          Alcotest.test_case "qsort correct" `Quick (check_sorted_algo Sort.Qsort);
          Alcotest.test_case "negative keys" `Quick test_sort_negative_keys;
          Alcotest.test_case "radix stability" `Quick test_sort_stability_radix;
          Alcotest.test_case "in place" `Quick test_sort_in_place;
          q prop_sort_algorithms_agree;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge2" `Quick test_merge2;
          Alcotest.test_case "kway" `Quick test_kway_merge;
          Alcotest.test_case "kway single" `Quick test_kway_single_input;
        ] );
      ("segment", [ Alcotest.test_case "counts and routing" `Quick test_segment_counts_and_routing ]);
      ( "agg",
        [
          Alcotest.test_case "whole array" `Quick test_agg_whole_array;
          Alcotest.test_case "empty" `Quick test_agg_empty;
          Alcotest.test_case "64-bit sums" `Quick test_agg_sum_overflow_safe;
        ] );
      ( "keyed",
        [
          Alcotest.test_case "against reference" `Quick test_keyed_against_reference;
          Alcotest.test_case "topk per key" `Quick test_topk_per_key;
        ] );
      ( "join",
        [
          Alcotest.test_case "against reference" `Quick test_join_against_reference;
          Alcotest.test_case "disjoint keys" `Quick test_join_disjoint;
        ] );
      ( "filter-misc",
        [
          Alcotest.test_case "filter band" `Quick test_filter_band;
          Alcotest.test_case "select eq" `Quick test_select_eq;
          Alcotest.test_case "sample stride" `Quick test_sample_stride;
          Alcotest.test_case "concat and project" `Quick test_concat_and_project;
          Alcotest.test_case "top k records" `Quick test_top_k_records;
          Alcotest.test_case "shift key" `Quick test_shift_key;
        ] );
      ( "fused",
        [
          Alcotest.test_case "equals unfused sequence" `Quick test_fused_equals_unfused_sequence;
          Alcotest.test_case "steps codec" `Quick test_fused_steps_codec;
          Alcotest.test_case "width tracking" `Quick test_fused_width_tracking;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids names pseudo-ops" `Quick test_registry;
          Alcotest.test_case "of_name total" `Quick test_of_name_total;
          Alcotest.test_case "fusable ops" `Quick test_fusable_ops;
        ] );
    ]
