(* Out-of-order robustness tests: deterministic lateness injection in
   Datagen, watermark-strategy boundaries (a record exactly at the
   watermark is not late), session-window gap edges, negative verifier
   cases (undeclared late handling, tampered correction generations,
   retraction without reemit), and the headline convergence property —
   under retract-and-reemit a disorder-permuted input converges to final
   corrected sealed results byte-identical to the in-order run, across
   both work engines, fused and unfused. *)

module D = Sbt_core.Dataplane
module Runtime = Sbt_core.Runtime
module Session = Sbt_core.Session
module Runner = Sbt_core.Runner
module P = Sbt_core.Pipeline
module B = Sbt_workloads.Benchmarks
module Datagen = Sbt_workloads.Datagen
module Fault = Sbt_fault.Fault
module V = Sbt_attest.Verifier
module Record = Sbt_attest.Record
module Log = Sbt_attest.Log
module Frame = Sbt_net.Frame

let det_cfg ?(fuse = false) ?(late = D.Silent) () =
  let cost = { Sbt_tz.Cost_model.default with Sbt_tz.Cost_model.host_scale = 0.0 } in
  Runtime.Config.make ~cores:4 ~cost ~fuse ~late_policy:late ()

let egress_key = (det_cfg ()).Runtime.dp_config.D.egress_key

let run ?(engine = `Des 4) ?fuse ?late pipe frames =
  Session.create ~engine ~verify:false (det_cfg ?fuse ?late ())
  |> Session.add_tenant ~pipeline:pipe ~source:frames
  |> Session.run_single

let records_of (r : Runtime.run_result) =
  List.concat_map (fun b -> Log.open_batch ~key:egress_key b) r.Runtime.audit

let sorted_results (r : Runtime.run_result) =
  List.sort (fun (a, _) (b, _) -> compare a b) r.Runtime.results

let merged (r : Runtime.run_result) =
  Runner.merge_corrections ~egress_key (sorted_results r) r.Runtime.corrections

(* Fresh constructor per call: the vitals generator closes over mutable
   random-walk state, so sharing one [B.t] across two [Datagen.frames]
   calls would leak state from the first stream into the second. *)
let vitals_frames ?(disorder = Fault.none) ?(watermark = Datagen.Punctuation) () =
  let b = B.vitals ~windows:3 ~events_per_window:600 ~batch_events:200 () in
  Datagen.frames { b.B.spec with Datagen.disorder; watermark }

let all_rows frames =
  List.concat_map
    (function
      | Frame.Events { payload; _ } ->
          Array.to_list (Frame.unpack_events ~width:3 payload)
      | Frame.Watermark _ -> [])
    frames
  |> List.sort compare

let watermarks frames =
  List.filter_map (function Frame.Watermark { value; _ } -> Some value | _ -> None) frames

(* No event arrives behind the watermark already emitted before it. *)
let no_late frames =
  let wm = ref (-1) in
  List.for_all
    (function
      | Frame.Watermark { value; _ } ->
          wm := max !wm value;
          true
      | Frame.Events { payload; _ } ->
          Array.for_all
            (fun row -> Int32.to_int row.(2) >= !wm)
            (Frame.unpack_events ~width:3 payload))
    frames

(* --- lateness-distribution determinism -------------------------------------- *)

let test_disorder_deterministic () =
  let plan = Fault.disorder_plan ~seed:99L ~rate:0.3 () in
  let a = vitals_frames ~disorder:plan () in
  let b = vitals_frames ~disorder:plan () in
  Alcotest.(check bool) "same plan, same frames" true (a = b);
  let zero = vitals_frames ~disorder:(Fault.disorder_plan ~seed:99L ~rate:0.0 ()) () in
  let none = vitals_frames ~disorder:Fault.none () in
  Alcotest.(check bool) "rate 0 is the identity permutation" true (zero = none);
  Alcotest.(check bool) "rate 0.3 really permutes" true (a <> none);
  Alcotest.(check bool) "permutation preserves the event multiset" true
    (all_rows a = all_rows none);
  let other = vitals_frames ~disorder:(Fault.disorder_plan ~seed:100L ~rate:0.3 ()) () in
  Alcotest.(check bool) "different seed, different permutation" true (a <> other)

let test_watermarks_monotone_and_final () =
  let check_frames label frames =
    let wms = watermarks frames in
    Alcotest.(check bool) (label ^ ": watermarks monotone") true
      (fst
         (List.fold_left (fun (ok, prev) v -> (ok && v >= prev, v)) (true, min_int) wms));
    let spec = Datagen.default_spec () in
    ignore spec;
    Alcotest.(check bool) (label ^ ": final watermark closes the stream") true
      (List.rev wms |> List.hd = 3 * Sbt_core.Event.ticks_per_second)
  in
  check_frames "punctuation in-order" (vitals_frames ());
  check_frames "punctuation disordered"
    (vitals_frames ~disorder:(Fault.disorder_plan ~seed:5L ~rate:0.3 ()) ());
  check_frames "heuristic disordered"
    (vitals_frames
       ~disorder:(Fault.disorder_plan ~seed:5L ~rate:0.3 ())
       ~watermark:(Datagen.Heuristic 0) ())

let test_punctuation_never_late () =
  let frames =
    vitals_frames ~disorder:(Fault.disorder_plan ~seed:7L ~rate:0.4 ()) ()
  in
  Alcotest.(check bool) "punctuation admits no late data" true (no_late frames)

let test_heuristic_bound_controls_lateness () =
  let plan = Fault.disorder_plan ~seed:7L ~rate:0.4 () in
  let b = B.vitals ~windows:3 ~events_per_window:600 ~batch_events:200 () in
  let covering =
    Datagen.frames
      {
        b.B.spec with
        Datagen.disorder = plan;
        watermark = Datagen.Heuristic b.B.spec.Datagen.max_lateness_ticks;
      }
  in
  Alcotest.(check bool) "bound >= max lateness: nothing is late" true
    (no_late covering);
  let tight =
    vitals_frames ~disorder:plan ~watermark:(Datagen.Heuristic 0) ()
  in
  Alcotest.(check bool) "bound 0 under real disorder: late data exists" false
    (no_late tight)

(* --- watermark boundary: a record exactly at the watermark is not late ------- *)

let pipe_1k = P.vitals ~window_size_ticks:1_000 ()

let mk_events ~seq rows =
  let records =
    Array.of_list (List.map (fun (k, v, ts) -> [| Int32.of_int k; Int32.of_int v; Int32.of_int ts |]) rows)
  in
  let windows =
    List.sort_uniq compare (List.map (fun (_, _, ts) -> ts / 1_000) rows)
  in
  Frame.Events
    {
      seq;
      stream = 0;
      events = Array.length records;
      windows;
      payload = Frame.pack_events ~width:3 records;
      encrypted = false;
      mac = Bytes.empty;
    }

(* Window 0 closes at watermark 1000; the follow-up batch carries one
   record exactly at the watermark (window 1: on time) and one just
   behind it (window 0: late). *)
let boundary_frames =
  [
    mk_events ~seq:0 [ (1, 10, 0); (1, 20, 10); (1, 30, 500) ];
    Frame.watermark ~seq:0 ~value:1_000 ();
    mk_events ~seq:1 [ (1, 40, 1_000); (1, 50, 999) ];
    Frame.watermark ~last:1_000 ~seq:1 ~value:2_000 ();
  ]

let test_boundary_record_not_late () =
  let r = run ~late:D.Drop_declare pipe_1k boundary_frames in
  let report = V.verify r.Runtime.verifier_spec (records_of r) in
  Alcotest.(check bool) "drop+declare verifies" true (V.ok report);
  Alcotest.(check int) "exactly one late drop declared" 1 report.V.late_drops;
  Alcotest.(check int) "only the behind-watermark record is late" 1 report.V.late_events;
  Alcotest.(check bool) "the late window is the degraded one" true
    (List.mem 0 report.V.degraded_windows);
  Alcotest.(check (list int)) "both windows still egress" [ 0; 1 ]
    (List.map fst (sorted_results r));
  (* the at-watermark record reached window 1's result *)
  let w1 = List.assoc 1 (sorted_results r) in
  Alcotest.(check int) "window 1 averaged its on-time record" 1 w1.D.events

let test_silent_policy_is_caught () =
  (* The historical silent policy cannot hide late data from the
     verifier: the segment's audit record names the late uArray, nothing
     consumes or declares it, and the sweep flags the vanished dataflow.
     That detectability is what makes the two attested policies above
     worth declaring. *)
  let r = run ~late:D.Silent pipe_1k boundary_frames in
  let report = V.verify r.Runtime.verifier_spec (records_of r) in
  Alcotest.(check bool) "silent discard does not verify" false (V.ok report);
  Alcotest.(check bool) "flagged as unprocessed window data" true
    (List.exists
       (function V.Unprocessed_window_data { window = 0; _ } -> true | _ -> false)
       report.V.violations);
  Alcotest.(check int) "no late-handling records" 0 report.V.late_drops;
  Alcotest.(check int) "no corrections" 0 report.V.corrections

(* --- session windows --------------------------------------------------------- *)

let session_frames rows ~wm =
  [ mk_events ~seq:0 rows; Frame.watermark ~seq:0 ~value:wm () ]

let test_session_gap_edges () =
  let pipe = P.with_session_gap pipe_1k ~gap_ticks:100 in
  (* gaps of exactly [gap] stay in-session; gap+1 opens a new one *)
  let r =
    run pipe (session_frames [ (1, 10, 0); (1, 20, 100); (1, 30, 201) ] ~wm:201)
  in
  Alcotest.(check (list int)) "delta = gap extends, delta = gap+1 splits" [ 0; 1 ]
    (List.map fst (sorted_results r));
  let r2 =
    run pipe
      (session_frames
         [ (1, 10, 0); (1, 20, 10); (2, 30, 300); (2, 40, 310); (3, 50, 700) ]
         ~wm:700)
  in
  Alcotest.(check (list int)) "three idle gaps, three sessions" [ 0; 1; 2 ]
    (List.map fst (sorted_results r2));
  let report = V.verify r2.Runtime.verifier_spec (records_of r2) in
  Alcotest.(check bool) "session run verifies in session mode" true (V.ok report);
  Alcotest.(check int) "all emitted sessions judged" 3 report.V.windows_verified

let test_session_requires_in_order () =
  let pipe = P.with_session_gap pipe_1k ~gap_ticks:100 in
  try
    ignore (run pipe (session_frames [ (1, 10, 500); (1, 20, 0) ] ~wm:500));
    Alcotest.fail "event-time regression admitted in session mode"
  with D.Rejected _ -> ()

(* --- negative verifier cases -------------------------------------------------- *)

(* A run that actually produces late data and (under retract-and-reemit)
   corrections: real disorder behind a zero-slack heuristic watermark. *)
let disordered_frames () =
  vitals_frames
    ~disorder:(Fault.disorder_plan ~seed:21L ~rate:0.25 ())
    ~watermark:(Datagen.Heuristic 0) ()

let test_undeclared_late_drop_flagged () =
  let r = run ~late:D.Drop_declare (P.vitals ()) (disordered_frames ()) in
  let records = records_of r in
  (* the honest declaration verifies... *)
  let honest = V.verify r.Runtime.verifier_spec records in
  Alcotest.(check bool) "declared drop+declare verifies" true (V.ok honest);
  Alcotest.(check bool) "late drops were really declared" true (honest.V.late_drops > 0);
  (* ...but the same log against a quote claiming the silent policy is a
     violation: the edge handled disorder, not the way it promised. *)
  let silent_spec = P.verifier_spec (P.vitals ()) in
  let report = V.verify silent_spec records in
  Alcotest.(check bool) "undeclared handling rejected" false (V.ok report);
  Alcotest.(check bool) "flagged as Undeclared_late_handling" true
    (List.exists
       (function V.Undeclared_late_handling _ -> true | _ -> false)
       report.V.violations)

let test_tampered_correction_flagged () =
  let r = run ~late:D.Retract_reemit (P.vitals ()) (disordered_frames ()) in
  Alcotest.(check bool) "disorder produced corrections" true (r.Runtime.corrections <> []);
  let records = records_of r in
  let honest = V.verify r.Runtime.verifier_spec records in
  Alcotest.(check bool) "honest corrections verify" true (V.ok honest);
  Alcotest.(check int) "report counts every correction"
    (List.length r.Runtime.corrections)
    honest.V.corrections;
  let bumped = ref false in
  let tampered =
    List.map
      (function
        | Record.Correction { ts; uarray; win_no; gen } when not !bumped ->
            bumped := true;
            Record.Correction { ts; uarray; win_no; gen = gen + 1 }
        | rec_ -> rec_)
      records
  in
  Alcotest.(check bool) "a correction was present to tamper" true !bumped;
  let report = V.verify r.Runtime.verifier_spec tampered in
  Alcotest.(check bool) "tampered generation rejected" false (V.ok report);
  Alcotest.(check bool) "flagged as Correction_mismatch" true
    (List.exists (function V.Correction_mismatch _ -> true | _ -> false) report.V.violations)

let test_retraction_without_reemit_flagged () =
  let r = run ~late:D.Retract_reemit (P.vitals ()) (disordered_frames ()) in
  let records = records_of r in
  let honest = V.verify r.Runtime.verifier_spec records in
  let w0 =
    match honest.V.corrected_windows with
    | w :: _ -> w
    | [] -> Alcotest.fail "expected a corrected window"
  in
  (* Suppress the window's correction egress but keep its replayed
     re-evaluation: the TEE retracted a result downstream still holds. *)
  let pruned =
    List.filter
      (function Record.Correction { win_no; _ } -> win_no <> w0 | _ -> true)
      records
  in
  let report = V.verify r.Runtime.verifier_spec pruned in
  Alcotest.(check bool) "suppressed reemit rejected" false (V.ok report);
  Alcotest.(check bool) "flagged as Retraction_without_reemit" true
    (List.exists
       (function V.Retraction_without_reemit { window; _ } -> window = w0 | _ -> false)
       report.V.violations)

(* --- the headline property ---------------------------------------------------- *)

let prop_retract_converges_to_in_order =
  QCheck.Test.make
    ~name:"retract-and-reemit converges to the in-order bytes (both engines, fuse on/off)"
    ~count:4
    QCheck.(pair (int_range 0 1_000) (pair bool bool))
    (fun (seed, (dom, fuse)) ->
      let engine = if dom then `Domains 2 else `Des 4 in
      let in_order = run ~engine ~fuse ~late:D.Silent (P.vitals ()) (vitals_frames ()) in
      let disordered =
        run ~engine ~fuse ~late:D.Retract_reemit (P.vitals ())
          (vitals_frames
             ~disorder:(Fault.disorder_plan ~seed:(Int64.of_int (seed + 1)) ~rate:0.25 ())
             ~watermark:(Datagen.Heuristic 0) ())
      in
      let report = V.verify disordered.Runtime.verifier_spec (records_of disordered) in
      if not (V.ok report) then QCheck.Test.fail_report "disordered run failed verification";
      if merged disordered <> sorted_results in_order then
        QCheck.Test.fail_report "corrected results diverge from the in-order run";
      merged in_order = sorted_results in_order)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "disorder"
    [
      ( "datagen",
        [
          Alcotest.test_case "disorder plans are deterministic" `Quick
            test_disorder_deterministic;
          Alcotest.test_case "watermarks monotone, final closes stream" `Quick
            test_watermarks_monotone_and_final;
          Alcotest.test_case "punctuation never admits late data" `Quick
            test_punctuation_never_late;
          Alcotest.test_case "heuristic bound controls lateness" `Quick
            test_heuristic_bound_controls_lateness;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "record exactly at the watermark is on time" `Quick
            test_boundary_record_not_late;
          Alcotest.test_case "silent discard of late data is caught" `Quick
            test_silent_policy_is_caught;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "gap edges: = extends, +1 splits" `Quick
            test_session_gap_edges;
          Alcotest.test_case "sessions demand in-order event times" `Quick
            test_session_requires_in_order;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "undeclared late drop flagged" `Quick
            test_undeclared_late_drop_flagged;
          Alcotest.test_case "tampered correction generation flagged" `Quick
            test_tampered_correction_flagged;
          Alcotest.test_case "retraction without reemit flagged" `Quick
            test_retraction_without_reemit_flagged;
        ] );
      ("convergence", [ qt prop_retract_converges_to_in_order ]);
    ]
