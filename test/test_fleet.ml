(* Fleet-under-churn tests: failure-detector beat arithmetic at its
   exact boundaries, the key partitioner, and the headline robustness
   property — a churned fleet (kills, uplink partitions, stragglers,
   attested handoff) merges to egress byte-identical to the un-churned
   run, and the fleet verifier catches runs that cheat (dropped
   partitions, manifest-less failover). *)

module D = Sbt_core.Dataplane
module Runtime = Sbt_core.Runtime
module B = Sbt_workloads.Benchmarks
module F = Sbt_net.Frame
module Fault = Sbt_fault.Fault
module V = Sbt_attest.Verifier
module H = Sbt_attest.Handoff
module Detector = Sbt_fleet.Detector
module Partition = Sbt_fleet.Partition
module Fleet = Sbt_fleet.Fleet
module M = Sbt_obs.Metrics

let det_cfg () =
  let cost = { Sbt_tz.Cost_model.default with Sbt_tz.Cost_model.host_scale = 0.0 } in
  Runtime.Config.make ~cores:4 ~cost ()

(* --- failure detector ------------------------------------------------------- *)

let test_detector_death_at_exact_boundary () =
  (* last heartbeat at beat 2, suspect_after = 3: suspicion from beat 3,
     death exactly at beat 5 = last + suspect_after, not a tick sooner. *)
  let d = Detector.create ~nodes:1 ~suspect_after:3 in
  for b = 0 to 2 do
    Detector.heartbeat d ~node:0 ~beat:b;
    Alcotest.(check (list int)) "alive while beating" [] (Detector.tick d ~beat:b)
  done;
  Alcotest.(check (list int)) "missed 1: no death" [] (Detector.tick d ~beat:3);
  (match Detector.verdict d ~node:0 with
  | Detector.Suspect { missed } -> Alcotest.(check int) "one missed beat" 1 missed
  | _ -> Alcotest.fail "expected Suspect after first missed beat");
  Alcotest.(check (list int)) "missed 2: no death" [] (Detector.tick d ~beat:4);
  Alcotest.(check (list int)) "missed 3 = suspect_after: dead" [ 0 ] (Detector.tick d ~beat:5);
  match Detector.verdict d ~node:0 with
  | Detector.Dead { declared_at } -> Alcotest.(check int) "declared at last+sa" 5 declared_at
  | _ -> Alcotest.fail "expected Dead"

let test_detector_late_heartbeat_cancels_suspicion () =
  (* One beat before the death boundary a heartbeat arrives: suspicion
     clears and no death is ever declared. *)
  let d = Detector.create ~nodes:1 ~suspect_after:3 in
  Detector.heartbeat d ~node:0 ~beat:0;
  ignore (Detector.tick d ~beat:0);
  ignore (Detector.tick d ~beat:1);
  ignore (Detector.tick d ~beat:2);
  (* next tick would declare death; the heartbeat lands first *)
  Detector.heartbeat d ~node:0 ~beat:3;
  Alcotest.(check (list int)) "saved by the bell" [] (Detector.tick d ~beat:3);
  Alcotest.(check bool) "alive" false (Detector.is_dead d ~node:0);
  Alcotest.(check int) "suspicion was raised" 1 (Detector.suspicions_raised d);
  Alcotest.(check int) "and cleared" 1 (Detector.suspicions_cleared d)

let test_detector_death_is_sticky_and_fences () =
  let d = Detector.create ~nodes:2 ~suspect_after:2 in
  Detector.heartbeat d ~node:0 ~beat:0;
  Detector.heartbeat d ~node:1 ~beat:0;
  ignore (Detector.tick d ~beat:0);
  ignore (Detector.tick d ~beat:1);
  Detector.heartbeat d ~node:1 ~beat:1 (* too late for the tick, fine for the next *);
  Alcotest.(check (list int)) "node 0 dead at 2" [ 0 ] (Detector.tick d ~beat:2);
  Detector.heartbeat d ~node:0 ~beat:3;
  Detector.heartbeat d ~node:0 ~beat:4;
  Alcotest.(check int) "late heartbeats fenced" 2 (Detector.fenced_heartbeats d);
  (match Detector.verdict d ~node:0 with
  | Detector.Dead { declared_at } -> Alcotest.(check int) "still dead at 2" 2 declared_at
  | _ -> Alcotest.fail "death must be sticky");
  Alcotest.check_raises "ticks must advance" (Invalid_argument "Detector.tick: beats must advance")
    (fun () -> ignore (Detector.tick d ~beat:2))

(* --- partitioner ------------------------------------------------------------ *)

let small_bench ?(windows = 4) ?(events_per_window = 400) ?(batch_events = 200) () =
  B.win_sum ~windows ~events_per_window ~batch_events ()

let test_partition_split_covers_and_routes () =
  let bench = small_bench () in
  let frames = B.frames bench in
  let schema = bench.B.pipeline.Sbt_core.Pipeline.schema in
  let parts =
    Partition.split ~parts:3 ~schema ~window_size:1000 ~window_slide:1000 ~batch_events:200
      frames
  in
  let events_of fs =
    List.fold_left
      (fun acc f -> match f with F.Events { events; _ } -> acc + events | _ -> acc)
      0 fs
  in
  let total = events_of frames in
  Alcotest.(check int) "no event lost or duplicated" total
    (Array.fold_left (fun acc fs -> acc + events_of fs) 0 parts);
  Array.iteri
    (fun p fs ->
      let wms = List.filter (function F.Watermark _ -> true | _ -> false) fs in
      Alcotest.(check int) "every watermark copied" 4 (List.length wms);
      List.iter
        (fun f ->
          match f with
          | F.Events { payload; _ } ->
              Array.iter
                (fun r ->
                  Alcotest.(check int) "record routed by key" p
                    (Partition.assign ~parts:3 r.(schema.Sbt_core.Event.key_field)))
                (F.unpack_events ~width:schema.Sbt_core.Event.width payload)
          | F.Watermark _ -> ())
        fs)
    parts

let test_partition_rejects_protected_frames () =
  let bench = small_bench () in
  let spec = { bench.B.spec with Sbt_workloads.Datagen.encrypted = true } in
  let frames = Sbt_workloads.Datagen.frames spec in
  let schema = bench.B.pipeline.Sbt_core.Pipeline.schema in
  Alcotest.check_raises "encrypted input rejected"
    (Invalid_argument
       "Partition.split: encrypted frame (partition at the source, before encryption)")
    (fun () ->
      ignore
        (Partition.split ~parts:2 ~schema ~window_size:1000 ~window_slide:1000
           ~batch_events:200 frames))

let test_partition_assign_total_on_negative_keys () =
  List.iter
    (fun k ->
      let p = Partition.assign ~parts:3 k in
      Alcotest.(check bool) "in range" true (p >= 0 && p < 3))
    [ Int32.min_int; -1l; 0l; 1l; Int32.max_int ]

(* --- fleet runs ------------------------------------------------------------- *)

let fleet_run ?(m = 3) ?(windows = 4) ?rogue_handoff ~scenario () =
  let bench = small_bench ~windows () in
  let frames = B.frames bench in
  Fleet.run ?rogue_handoff ~scenario ~nodes:m ~batch_events:200 (det_cfg ())
    bench.B.pipeline frames

let merged_obs (s : Fleet.summary) =
  List.map
    (fun (w, p, (r : D.sealed_result)) -> (w, p, r.D.cipher, r.D.tag, r.D.events))
    s.Fleet.merged

let test_clean_fleet_verifies () =
  let s = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:2) () in
  Alcotest.(check bool) "fleet verifier accepts" true (V.fleet_ok s.Fleet.report);
  Alcotest.(check int) "every partition of every window present" (4 * 3)
    (List.length s.Fleet.merged);
  Alcotest.(check int) "no deaths" 0 s.Fleet.deaths;
  Alcotest.(check int) "no handoffs" 0 (List.length s.Fleet.handoffs);
  Alcotest.(check int) "3 partitions verified" 3 s.Fleet.report.V.partitions_present

let test_permanent_death_hands_off_and_matches_clean () =
  let clean = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:2) () in
  let scenario =
    Fault.fleet_scenario ~suspect_after:2
      [ Fault.Kill { node = 1; at_beat = 1; permanent = true } ]
  in
  let churned = fleet_run ~scenario () in
  Alcotest.(check bool) "fleet verifier accepts the handoff" true
    (V.fleet_ok churned.Fleet.report);
  Alcotest.(check bool) "merged egress byte-identical to un-churned" true
    (merged_obs clean = merged_obs churned);
  Alcotest.(check int) "one death" 1 churned.Fleet.deaths;
  Alcotest.(check int) "one verified handoff" 1 churned.Fleet.report.V.handoffs_verified;
  Alcotest.(check bool) "suffix was re-ingested" true (churned.Fleet.replayed_frames > 0);
  (match churned.Fleet.handoffs with
  | [ (mh, _) ] ->
      Alcotest.(check int) "partition 1 handed off" 1 mh.H.partition;
      Alcotest.(check int) "donor is the dead edge" 1 mh.H.donor;
      Alcotest.(check int) "lowest eligible survivor adopts" 0 mh.H.recipient;
      Alcotest.(check int) "donor executed epoch 0" 0 mh.H.donor_epoch
  | hs -> Alcotest.failf "expected exactly one handoff, got %d" (List.length hs));
  match churned.Fleet.fates.(1) with
  | Fleet.Dead { declared_at; fenced_window = Some 1; recipient = Some 0 } ->
      Alcotest.(check int) "declared dead at kill + suspect_after" 3 declared_at
  | _ -> Alcotest.fail "edge 1 should be dead, fenced at window 1, adopted by edge 0"

let test_transient_crash_recovers_in_place () =
  let clean = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:3) () in
  let scenario =
    Fault.fleet_scenario ~suspect_after:3 ~recover_after:2
      [ Fault.Kill { node = 2; at_beat = 1; permanent = false } ]
  in
  let churned = fleet_run ~scenario () in
  Alcotest.(check bool) "verifies" true (V.fleet_ok churned.Fleet.report);
  Alcotest.(check bool) "byte-identical to clean" true (merged_obs clean = merged_obs churned);
  Alcotest.(check int) "no death declared" 0 churned.Fleet.deaths;
  Alcotest.(check int) "no handoff" 0 (List.length churned.Fleet.handoffs);
  Alcotest.(check bool) "suspicion raised then cleared" true
    (churned.Fleet.suspicions_raised >= 1 && churned.Fleet.suspicions_cleared >= 1);
  match churned.Fleet.fates.(2) with
  | Fleet.Recovered { halted_at = 1; resumed_beat = 3 } -> ()
  | _ -> Alcotest.fail "edge 2 should have recovered in place"

let test_uplink_blip_survives () =
  let clean = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:3) () in
  let scenario =
    Fault.fleet_scenario ~suspect_after:3
      [ Fault.Uplink_partition { node = 0; at_beat = 1; beats = 1 } ]
  in
  let churned = fleet_run ~scenario () in
  Alcotest.(check bool) "verifies" true (V.fleet_ok churned.Fleet.report);
  Alcotest.(check bool) "byte-identical to clean" true (merged_obs clean = merged_obs churned);
  Alcotest.(check int) "no death" 0 churned.Fleet.deaths;
  Alcotest.(check bool) "blip raised a suspicion" true (churned.Fleet.suspicions_raised >= 1)

let test_straggler_declared_dead_and_handed_off () =
  let clean = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:2) () in
  let scenario =
    Fault.fleet_scenario ~suspect_after:2 [ Fault.Straggle { node = 2; factor = 4.0 } ]
  in
  let churned = fleet_run ~scenario () in
  Alcotest.(check bool) "verifies" true (V.fleet_ok churned.Fleet.report);
  Alcotest.(check bool) "byte-identical to clean" true (merged_obs clean = merged_obs churned);
  Alcotest.(check int) "straggler declared dead" 1 churned.Fleet.deaths;
  Alcotest.(check int) "its partition handed off" 1 (List.length churned.Fleet.handoffs)

let test_no_survivor_raises () =
  let scenario =
    Fault.fleet_scenario ~suspect_after:2
      [
        Fault.Kill { node = 0; at_beat = 1; permanent = true };
        Fault.Kill { node = 1; at_beat = 1; permanent = true };
      ]
  in
  match fleet_run ~m:2 ~scenario () with
  | _ -> Alcotest.fail "expected No_survivor"
  | exception Fleet.No_survivor { partition = _; beat } ->
      Alcotest.(check int) "declared at kill + suspect_after" 3 beat

(* --- fleet verifier negatives ----------------------------------------------- *)

let has_violation pred (fr : V.fleet_report) = List.exists pred fr.V.fleet_violations

let test_dropped_partition_is_flagged () =
  (* Present the clean fleet's audit with one partition's chains gone:
     Undeclared_loss at fleet scope. *)
  let bench = small_bench () in
  let cfg = det_cfg () in
  let s =
    Fleet.run ~scenario:(Fault.fleet_none ~suspect_after:2) ~nodes:3 ~batch_events:200 cfg
      bench.B.pipeline (B.frames bench)
  in
  let spec = Sbt_core.Pipeline.verifier_spec bench.B.pipeline in
  let key = cfg.Runtime.dp_config.D.egress_key in
  let edges =
    List.map
      (fun (c : V.edge_chains) ->
        { c with V.chains = List.filter (fun (p, _) -> p <> 2) c.V.chains })
      s.Fleet.edges
  in
  let report =
    V.verify_fleet ~key spec ~partitions:3 ~windows:s.Fleet.windows ~edges ~handoffs:[]
  in
  Alcotest.(check bool) "not ok" false (V.fleet_ok report);
  Alcotest.(check bool) "partition loss flagged" true
    (has_violation
       (function
         | V.Fleet_partition_loss { partition = 2; _ } -> true | _ -> false)
       report)

let test_omitted_handoff_manifest_is_flagged () =
  (* The genuine churned run, minus its handoff manifest: the stitch
     loses its authority and the verifier must refuse the fleet. *)
  let scenario =
    Fault.fleet_scenario ~suspect_after:2
      [ Fault.Kill { node = 1; at_beat = 1; permanent = true } ]
  in
  let bench = small_bench () in
  let cfg = det_cfg () in
  let s =
    Fleet.run ~scenario ~nodes:3 ~batch_events:200 cfg bench.B.pipeline (B.frames bench)
  in
  Alcotest.(check bool) "with manifest: accepted" true (V.fleet_ok s.Fleet.report);
  let spec = Sbt_core.Pipeline.verifier_spec bench.B.pipeline in
  let key = cfg.Runtime.dp_config.D.egress_key in
  let report =
    V.verify_fleet ~key spec ~partitions:3 ~windows:s.Fleet.windows ~edges:s.Fleet.edges
      ~handoffs:[]
  in
  Alcotest.(check bool) "without manifest: refused" false (V.fleet_ok report);
  Alcotest.(check bool) "unattested handoff flagged" true
    (has_violation
       (function
         | V.Handoff_unattested { partition = 1; donor = 1; recipient = 0 } -> true
         | V.Handoff_mismatch { partition = 1; _ } -> true
         | _ -> false)
       report)

let test_rogue_handoff_is_flagged () =
  let scenario =
    Fault.fleet_scenario ~suspect_after:2
      [ Fault.Kill { node = 1; at_beat = 1; permanent = true } ]
  in
  let clean = fleet_run ~scenario:(Fault.fleet_none ~suspect_after:2) () in
  let rogue = fleet_run ~rogue_handoff:true ~scenario () in
  Alcotest.(check bool) "fleet verifier rejects" false (V.fleet_ok rogue.Fleet.report);
  Alcotest.(check bool) "unattested handoff flagged" true
    (has_violation (function V.Handoff_unattested _ -> true | _ -> false) rogue.Fleet.report);
  Alcotest.(check bool) "cross-edge duplicate flagged" true
    (has_violation (function V.Cross_edge_duplicate _ -> true | _ -> false) rogue.Fleet.report);
  Alcotest.(check int) "no manifest sealed" 0 (List.length rogue.Fleet.handoffs);
  Alcotest.(check bool) "merged output carries the duplicates" true
    (List.length rogue.Fleet.merged > List.length clean.Fleet.merged)

(* --- per-node metric scopes -------------------------------------------------- *)

let test_fleet_metrics_are_scoped_per_edge () =
  let scenario =
    Fault.fleet_scenario ~suspect_after:2
      [ Fault.Kill { node = 1; at_beat = 1; permanent = true } ]
  in
  let s = fleet_run ~scenario () in
  let reg = s.Fleet.registry in
  Alcotest.(check bool) "edge0 engine counters scoped" true
    (M.find_counter reg "edge0.control.frames" > 0);
  Alcotest.(check bool) "edge2 engine counters scoped" true
    (M.find_counter reg "edge2.control.frames" > 0);
  Alcotest.(check int) "fleet-scope death counter" 1 (M.find_counter reg "fleet.deaths");
  Alcotest.(check int) "fleet-scope handoff counter" 1
    (M.find_counter reg "fleet.handoffs_sealed")

(* --- the headline property --------------------------------------------------- *)

let prop_churned_fleet_matches_clean =
  QCheck.Test.make
    ~name:"churned fleet merges byte-identical to un-churned (M in {2,3,5})" ~count:8
    QCheck.(
      quad (int_range 0 2) (int_range 0 4) (int_range 0 2) QCheck.bool)
    (fun (m_i, node, at_beat, permanent) ->
      let m = List.nth [ 2; 3; 5 ] m_i in
      let node = node mod m in
      let scenario =
        Fault.fleet_scenario ~suspect_after:2 ~recover_after:1
          [ Fault.Kill { node; at_beat; permanent } ]
      in
      let clean = fleet_run ~m ~scenario:(Fault.fleet_none ~suspect_after:2) () in
      let churned = fleet_run ~m ~scenario () in
      let same = merged_obs clean = merged_obs churned in
      let verified = V.fleet_ok churned.Fleet.report in
      if not (same && verified) then
        QCheck.Test.fail_reportf
          "divergence: m=%d node=%d at_beat=%d permanent=%b same=%b verified=%b deaths=%d"
          m node at_beat permanent same verified churned.Fleet.deaths;
      true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "detector",
        [
          Alcotest.test_case "death at exact boundary" `Quick test_detector_death_at_exact_boundary;
          Alcotest.test_case "late heartbeat cancels suspicion" `Quick
            test_detector_late_heartbeat_cancels_suspicion;
          Alcotest.test_case "death sticky, late beats fenced" `Quick
            test_detector_death_is_sticky_and_fences;
        ] );
      ( "partition",
        [
          Alcotest.test_case "split covers and routes by key" `Quick
            test_partition_split_covers_and_routes;
          Alcotest.test_case "protected frames rejected" `Quick
            test_partition_rejects_protected_frames;
          Alcotest.test_case "assign total on negative keys" `Quick
            test_partition_assign_total_on_negative_keys;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "clean fleet verifies" `Quick test_clean_fleet_verifies;
          Alcotest.test_case "permanent death: attested handoff, egress identical" `Quick
            test_permanent_death_hands_off_and_matches_clean;
          Alcotest.test_case "transient crash recovers in place" `Quick
            test_transient_crash_recovers_in_place;
          Alcotest.test_case "uplink blip survives" `Quick test_uplink_blip_survives;
          Alcotest.test_case "straggler declared dead and handed off" `Quick
            test_straggler_declared_dead_and_handed_off;
          Alcotest.test_case "no survivor raises" `Quick test_no_survivor_raises;
          Alcotest.test_case "metrics scoped per edge" `Quick
            test_fleet_metrics_are_scoped_per_edge;
          qt prop_churned_fleet_matches_clean;
        ] );
      ( "verifier negatives",
        [
          Alcotest.test_case "dropped partition flagged" `Quick test_dropped_partition_is_flagged;
          Alcotest.test_case "omitted handoff manifest flagged" `Quick
            test_omitted_handoff_manifest_is_flagged;
          Alcotest.test_case "rogue handoff flagged" `Quick test_rogue_handoff_is_flagged;
        ] );
    ]
