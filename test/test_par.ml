(* Parallel kernel equivalence: every Par_kernel variant must produce
   byte-identical uArray contents to its serial counterpart, for any
   width, key field, piece count and domain count — the determinism
   contract the `Domains` engine's real-work mode rests on. *)

module U = Sbt_umem.Uarray
module Pool = Sbt_umem.Page_pool
module Sort = Sbt_prim.Sort
module Merge = Sbt_prim.Merge
module Segment = Sbt_prim.Segment
module Keyed = Sbt_prim.Keyed
module Filter = Sbt_prim.Filter
module Misc = Sbt_prim.Misc
module PK = Sbt_prim.Par_kernel

let pool () = Pool.create ~budget_bytes:(256 * 1024 * 1024)
let fresh p ~width ~capacity = U.create ~id:99 ~pool:p ~width ~capacity ()

(* Small key range on purpose: duplicate keys exercise the stable
   tie-break, which is where a wrong merge order would show up. *)
let random_ua p ~width ~n ?(lo = -60) ?(hi = 60) seed =
  let rng = Sbt_crypto.Rng.create ~seed:(Int64.of_int (seed + 7919)) in
  let ua = U.create ~id:1 ~pool:p ~width ~capacity:(max 1 n) () in
  for _ = 1 to n do
    U.append ua (Array.init width (fun _ -> Int32.of_int (lo + Sbt_crypto.Rng.int_below rng (hi - lo + 1))))
  done;
  U.produce ua;
  ua

let same_bytes a b =
  U.width a = U.width b
  && U.length a = U.length b
  &&
  let w = U.width a and n = U.length a in
  let ba = U.raw a and bb = U.raw b in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n * w do
    if Bigarray.Array1.get ba !i <> Bigarray.Array1.get bb !i then ok := false;
    incr i
  done;
  !ok

(* Deterministically derive the parallel configuration from the seed so
   every property sweeps domain counts 1/2/4 and piece counts 1..6. *)
let runner_of seed = PK.domains ~n:[| 1; 2; 4 |].(seed mod 3)
let pieces_of seed = 1 + (seed mod 6)

let sorted_copy p src ~key_field =
  let d = fresh p ~width:(U.width src) ~capacity:(max 1 (U.length src)) in
  Sort.sort Sort.Radix ~src ~dst:d ~key_field;
  d

(* --- QCheck equivalence properties -------------------------------------- *)

let gen = QCheck.(quad (int_range 1 4) (int_range 0 600) (int_range 0 10_000) QCheck.unit)

let prop_sort =
  QCheck.Test.make ~name:"parallel sort = serial radix (bytes)" ~count:60 gen
    (fun (w, n, seed, ()) ->
      let kf = seed mod w in
      let p = pool () in
      let src = random_ua p ~width:w ~n seed in
      let d1 = fresh p ~width:w ~capacity:(max 1 n) in
      Sort.sort Sort.Radix ~src ~dst:d1 ~key_field:kf;
      let d2 = fresh p ~width:w ~capacity:(max 1 n) in
      PK.sort ~runner:(runner_of seed) ~pieces:(pieces_of seed) ~src ~dst:d2 ~key_field:kf ();
      same_bytes d1 d2)

let prop_sort_prefilled =
  (* Radix now composes with non-empty destinations (the lifted
     restriction): both engines append after the same prefix. *)
  QCheck.Test.make ~name:"sort into non-empty destination" ~count:40 gen
    (fun (w, n, seed, ()) ->
      let kf = seed mod w in
      let p = pool () in
      let src = random_ua p ~width:w ~n seed in
      let prefix = Array.init w (fun f -> Int32.of_int (1000 + f)) in
      let d1 = fresh p ~width:w ~capacity:(n + 1) in
      U.append d1 prefix;
      Sort.sort Sort.Radix ~src ~dst:d1 ~key_field:kf;
      let d2 = fresh p ~width:w ~capacity:(n + 1) in
      U.append d2 prefix;
      PK.sort ~runner:(runner_of seed) ~pieces:(pieces_of seed) ~src ~dst:d2 ~key_field:kf ();
      same_bytes d1 d2)

let prop_sort_in_place =
  QCheck.Test.make ~name:"parallel sort_in_place = serial" ~count:40 gen
    (fun (w, n, seed, ()) ->
      let kf = seed mod w in
      let p = pool () in
      let src = random_ua p ~width:w ~n seed in
      let mk () =
        let d = fresh p ~width:w ~capacity:(max 1 n) in
        U.append_blit d ~src ~src_pos:0 ~len:n;
        d
      in
      let d1 = mk () and d2 = mk () in
      Sort.sort_in_place Sort.Radix d1 ~key_field:kf;
      PK.sort_in_place ~runner:(runner_of seed) ~pieces:(pieces_of seed) d2 ~key_field:kf;
      same_bytes d1 d2)

let prop_kway =
  QCheck.Test.make ~name:"parallel kway = serial tournament (bytes)" ~count:60
    QCheck.(quad (int_range 1 3) (int_range 1 5) (int_range 0 200) (int_range 0 10_000))
    (fun (w, k, per_input, seed) ->
      let kf = seed mod w in
      let p = pool () in
      let inputs =
        List.init k (fun i ->
            let raw = random_ua p ~width:w ~n:((per_input + i) mod (per_input + 1)) (seed + i) in
            sorted_copy p raw ~key_field:kf)
      in
      let total = List.fold_left (fun a ua -> a + U.length ua) 0 inputs in
      let d1 = fresh p ~width:w ~capacity:(max 1 total) in
      Merge.kway ~inputs ~dst:d1 ~key_field:kf;
      let d2 = fresh p ~width:w ~capacity:(max 1 total) in
      PK.kway ~runner:(runner_of seed) ~pieces:(pieces_of seed) ~inputs ~dst:d2 ~key_field:kf ();
      same_bytes d1 d2)

let prop_segment =
  QCheck.Test.make ~name:"parallel segment = serial (per-window bytes)" ~count:50
    QCheck.(quad (int_range 1 3) (int_range 0 500) (int_range 0 10_000) (int_range 2 40))
    (fun (w, n, seed, window_size) ->
      let ts_field = seed mod w in
      let slide = 1 + (seed mod window_size) in
      let p = pool () in
      let src = random_ua p ~lo:0 ~hi:300 ~width:w ~n seed in
      let counts1 =
        Segment.count_per_window ~src ~ts_field ~window_size ~slide ()
      in
      let counts2 =
        PK.count_per_window ~runner:(runner_of seed) ~pieces:(pieces_of seed) ~src ~ts_field
          ~window_size ~slide ()
      in
      let mk_dsts counts =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (win, c) -> Hashtbl.replace tbl win (fresh p ~width:w ~capacity:(max 1 c)))
          counts;
        tbl
      in
      let t1 = mk_dsts counts1 and t2 = mk_dsts counts2 in
      Segment.segment ~src ~ts_field ~window_size ~slide
        ~dst_for_window:(Hashtbl.find t1) ();
      PK.segment ~runner:(runner_of seed) ~pieces:(pieces_of seed) ~src ~ts_field ~window_size
        ~slide ~dst_for_window:(Hashtbl.find t2) ();
      counts1 = counts2
      && List.for_all
           (fun (win, _) -> same_bytes (Hashtbl.find t1 win) (Hashtbl.find t2 win))
           counts1)

let prop_per_key =
  QCheck.Test.make ~name:"parallel sum/count/avg_per_key = serial (bytes)" ~count:50 gen
    (fun (w, n, seed, ()) ->
      let kf = seed mod w in
      let vf = (seed / 7) mod w in
      let p = pool () in
      let src = sorted_copy p (random_ua p ~width:w ~n seed) ~key_field:kf in
      let run serial par =
        let d1 = fresh p ~width:2 ~capacity:(max 1 n) in
        serial d1;
        let d2 = fresh p ~width:2 ~capacity:(max 1 n) in
        par d2;
        same_bytes d1 d2
      in
      let runner = runner_of seed and pieces = pieces_of seed in
      run
        (fun d -> Keyed.sum_per_key ~src ~dst:d ~key_field:kf ~value_field:vf)
        (fun d -> PK.sum_per_key ~runner ~pieces ~src ~dst:d ~key_field:kf ~value_field:vf ())
      && run
           (fun d -> Keyed.count_per_key ~src ~dst:d ~key_field:kf)
           (fun d -> PK.count_per_key ~runner ~pieces ~src ~dst:d ~key_field:kf ())
      && run
           (fun d -> Keyed.avg_per_key ~src ~dst:d ~key_field:kf ~value_field:vf)
           (fun d -> PK.avg_per_key ~runner ~pieces ~src ~dst:d ~key_field:kf ~value_field:vf ()))

let prop_filter_select_project_concat =
  QCheck.Test.make ~name:"parallel filter/select/project/concat = serial (bytes)" ~count:50 gen
    (fun (w, n, seed, ()) ->
      let field = seed mod w in
      let lo = Int32.of_int (-30 + (seed mod 20)) in
      let hi = Int32.of_int (Int32.to_int lo + (seed mod 60)) in
      let p = pool () in
      let src = random_ua p ~width:w ~n seed in
      let runner = runner_of seed and pieces = pieces_of seed in
      let band =
        let d1 = fresh p ~width:w ~capacity:(max 1 n) in
        Filter.filter_band ~src ~dst:d1 ~field ~lo ~hi;
        let d2 = fresh p ~width:w ~capacity:(max 1 n) in
        PK.filter_band ~runner ~pieces ~src ~dst:d2 ~field ~lo ~hi ();
        same_bytes d1 d2
      in
      let select =
        let d1 = fresh p ~width:w ~capacity:(max 1 n) in
        Filter.select_eq ~src ~dst:d1 ~field ~value:lo;
        let d2 = fresh p ~width:w ~capacity:(max 1 n) in
        PK.select_eq ~runner ~pieces ~src ~dst:d2 ~field ~value:lo ();
        same_bytes d1 d2
      in
      let proj =
        let fields = Array.init (1 + (seed mod w)) (fun i -> (field + i) mod w) in
        let d1 = fresh p ~width:(Array.length fields) ~capacity:(max 1 n) in
        Misc.project ~src ~dst:d1 ~fields;
        let d2 = fresh p ~width:(Array.length fields) ~capacity:(max 1 n) in
        PK.project ~runner ~pieces ~src ~dst:d2 ~fields ();
        same_bytes d1 d2
      in
      let cat =
        let b = random_ua p ~width:w ~n:(n / 2) (seed + 1) in
        let inputs = [ src; b; src ] in
        let total = (2 * n) + (n / 2) in
        let d1 = fresh p ~width:w ~capacity:(max 1 total) in
        Misc.concat ~inputs ~dst:d1;
        let d2 = fresh p ~width:w ~capacity:(max 1 total) in
        PK.concat ~runner ~inputs ~dst:d2 ();
        same_bytes d1 d2
      in
      band && select && proj && cat)

(* --- Unit edge cases ----------------------------------------------------- *)

let test_ranges () =
  (* Splits cover [0, n) contiguously, including empty pieces. *)
  List.iter
    (fun (n, pieces) ->
      let rs = PK.ranges ~n ~pieces in
      Alcotest.(check int) "pieces" pieces (Array.length rs);
      let pos = ref 0 in
      Array.iter
        (fun (s, len) ->
          Alcotest.(check int) "contiguous" !pos s;
          Alcotest.(check bool) "non-negative" true (len >= 0);
          pos := s + len)
        rs;
      Alcotest.(check int) "covers n" n !pos)
    [ (0, 1); (0, 4); (3, 8); (7, 3); (100, 4); (5, 5) ]

let test_empty_inputs () =
  let p = pool () in
  let src = random_ua p ~width:2 ~n:0 1 in
  let dst = fresh p ~width:2 ~capacity:1 in
  PK.sort ~runner:(PK.domains ~n:4) ~pieces:4 ~src ~dst ~key_field:0 ();
  Alcotest.(check int) "sort of empty" 0 (U.length dst);
  PK.kway ~inputs:[] ~dst ~key_field:0 ();
  Alcotest.(check int) "kway of nothing" 0 (U.length dst);
  PK.kway ~pieces:3 ~inputs:[ src; src ] ~dst ~key_field:0 ();
  Alcotest.(check int) "kway of empties" 0 (U.length dst);
  PK.sum_per_key ~pieces:4 ~src ~dst ~key_field:0 ~value_field:1 ();
  Alcotest.(check int) "per-key of empty" 0 (U.length dst);
  PK.filter_band ~pieces:4 ~src ~dst ~field:0 ~lo:0l ~hi:10l ();
  Alcotest.(check int) "filter of empty" 0 (U.length dst);
  Alcotest.(check (list (pair int int)))
    "segment counts of empty" []
    (PK.count_per_window ~pieces:4 ~src ~ts_field:0 ~window_size:10 ())

let test_all_equal_keys () =
  (* Every key equal: the merge is pure tie-breaking, so any ordering bug
     is visible in the payload fields. *)
  let p = pool () in
  let n = 200 in
  let src = U.create ~id:1 ~pool:p ~width:2 ~capacity:n () in
  for i = 0 to n - 1 do
    U.append src [| 7l; Int32.of_int i |]
  done;
  U.produce src;
  let d1 = fresh p ~width:2 ~capacity:n in
  Sort.sort Sort.Radix ~src ~dst:d1 ~key_field:0;
  let d2 = fresh p ~width:2 ~capacity:n in
  PK.sort ~runner:(PK.domains ~n:4) ~pieces:5 ~src ~dst:d2 ~key_field:0 ();
  Alcotest.(check bool) "stable under all-equal keys" true (same_bytes d1 d2);
  let m1 = fresh p ~width:2 ~capacity:(2 * n) in
  Merge.kway ~inputs:[ d1; d2 ] ~dst:m1 ~key_field:0;
  let m2 = fresh p ~width:2 ~capacity:(2 * n) in
  PK.kway ~pieces:4 ~inputs:[ d1; d2 ] ~dst:m2 ~key_field:0 ();
  Alcotest.(check bool) "kway under all-equal keys" true (same_bytes m1 m2);
  let a1 = fresh p ~width:2 ~capacity:1 in
  Keyed.sum_per_key ~src ~dst:a1 ~key_field:0 ~value_field:1;
  let a2 = fresh p ~width:2 ~capacity:1 in
  PK.sum_per_key ~pieces:4 ~src ~dst:a2 ~key_field:0 ~value_field:1 ();
  Alcotest.(check bool) "single group" true (same_bytes a1 a2)

let test_fewer_records_than_domains () =
  let p = pool () in
  let src = random_ua p ~width:3 ~n:3 42 in
  let d1 = fresh p ~width:3 ~capacity:3 in
  Sort.sort Sort.Radix ~src ~dst:d1 ~key_field:1;
  let d2 = fresh p ~width:3 ~capacity:3 in
  PK.sort ~runner:(PK.domains ~n:4) ~pieces:8 ~src ~dst:d2 ~key_field:1 ();
  Alcotest.(check bool) "n < domains" true (same_bytes d1 d2)

let test_primitive_lookup_tables () =
  (* Satellite: id/name lookups stay total and mutually inverse. *)
  let module P = Sbt_prim.Primitive in
  List.iter
    (fun t ->
      Alcotest.(check bool) "of_id . to_id" true (P.of_id (P.to_id t) = Some t);
      Alcotest.(check bool) "of_name . name" true (P.of_name (P.name t) = Some t))
    P.all;
  Alcotest.(check bool) "of_id out of range" true (P.of_id P.count = None);
  Alcotest.(check bool) "of_name unknown" true (P.of_name "NoSuchPrimitive" = None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "par_kernel"
    [
      ( "equivalence",
        [
          q prop_sort;
          q prop_sort_prefilled;
          q prop_sort_in_place;
          q prop_kway;
          q prop_segment;
          q prop_per_key;
          q prop_filter_select_project_concat;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "ranges cover" `Quick test_ranges;
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "all-equal keys" `Quick test_all_equal_keys;
          Alcotest.test_case "n < domains" `Quick test_fewer_records_than_domains;
          Alcotest.test_case "primitive lookup tables" `Quick test_primitive_lookup_tables;
        ] );
    ]
