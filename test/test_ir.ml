(* Pipeline IR and in-TEE operator fusion (PR 7).

   The headline property: for random pipelines mixing fusable and
   non-fusable batch-stage adjacencies, running with fusion on produces
   byte-identical sealed results, identical verifier verdicts and
   identical loss to running unfused — on both the DES engine and the
   real-parallel Domains engine in [`Work] mode (which re-executes the
   captured fused kernels for real).  Plus unit tests for the fusion
   pass itself: what it fuses, what it refuses, and idempotence. *)

module Ir = Sbt_core.Ir
module Pipeline = Sbt_core.Pipeline
module Runtime = Sbt_core.Runtime
module D = Sbt_core.Dataplane
module Event = Sbt_core.Event
module P = Sbt_prim.Primitive
module F = Sbt_prim.Fused
module Datagen = Sbt_workloads.Datagen
module Log = Sbt_attest.Log
module V = Sbt_attest.Verifier

let egress_key = Bytes.of_string "sbt-egress-key16"

(* --- fusion pass units ------------------------------------------------------ *)

let vf = Event.default.Event.value_field

let f_band = Pipeline.B_filter_band { field = vf; lo = 0l; hi = 1_000_000l }
let f_proj = Pipeline.B_project [| 0; 1; 2 |]
let f_sel = Pipeline.B_select { field = 0; value = 3l }
let f_shift = Pipeline.B_shift_key { field = 0; shift = 4 }
let f_sort = Pipeline.B_sort { key_field = 0; secondary_value = None }

let node = Alcotest.testable Ir.pp_node ( = )

let test_fuse_chain () =
  (* The FPS chain: five adjacent fusable stages become one super-kernel. *)
  let pipe = Pipeline.fps_chain () in
  let fused = Ir.fuse (Ir.lower pipe) in
  (match fused with
  | [ Ir.N_fused steps; Ir.N_window ] ->
      Alcotest.(check int) "all five stages absorbed" 5 (List.length steps);
      Alcotest.(check (list int))
        "step ops in declaration order"
        (List.map
           (fun op -> P.to_id (Pipeline.batch_op_primitive op))
           pipe.Pipeline.batch_ops)
        (List.map (fun s -> P.to_id (F.step_op s)) steps)
  | _ -> Alcotest.failf "unexpected plan: %a" Ir.pp fused);
  Alcotest.(check int) "one switch per segment" 1 (Ir.switch_count fused);
  Alcotest.(check int) "five switches unfused" 5 (Ir.switch_count (Ir.lower pipe))

let test_fuse_barrier_sort () =
  (* Sort is not per-record: fusion must not cross it. *)
  let nodes = List.map (fun op -> Ir.N_op op) [ f_band; f_sort; f_sel; f_proj ] in
  Alcotest.(check (list node))
    "sort splits the chain; lone head stays unfused"
    [ Ir.N_op f_band; Ir.N_op f_sort; Ir.N_fused [ F.F_select { field = 0; value = 3l };
                                                   F.F_project { fields = [| 0; 1; 2 |] } ] ]
    (Ir.fuse nodes)

let test_fuse_barrier_window () =
  (* The window boundary is a hard barrier even between fusable ops. *)
  let nodes = [ Ir.N_op f_band; Ir.N_op f_proj; Ir.N_window; Ir.N_op f_sel; Ir.N_op f_shift ] in
  let fused = Ir.fuse nodes in
  (match fused with
  | [ Ir.N_fused a; Ir.N_window; Ir.N_fused b ] ->
      Alcotest.(check int) "two before" 2 (List.length a);
      Alcotest.(check int) "two after" 2 (List.length b)
  | _ -> Alcotest.failf "fused across the window: %a" Ir.pp fused);
  Alcotest.(check int) "window costs no switch" 2 (Ir.switch_count fused)

let test_fuse_lone_op_stays () =
  (* A single fusable op already costs exactly one switch: no descriptor. *)
  Alcotest.(check (list node))
    "lone op unchanged"
    [ Ir.N_op f_band; Ir.N_window ]
    (Ir.fuse [ Ir.N_op f_band; Ir.N_window ])

let test_fuse_idempotent () =
  let plans =
    [
      [ Ir.N_op f_band; Ir.N_op f_proj; Ir.N_op f_sort; Ir.N_op f_sel; Ir.N_window ];
      Ir.lower (Pipeline.fps_chain ());
      [ Ir.N_window ];
      [];
    ]
  in
  List.iter
    (fun nodes ->
      let once = Ir.fuse nodes in
      Alcotest.(check (list node)) "fuse o fuse = fuse" once (Ir.fuse once))
    plans

(* --- fused =~ unfused: the headline property -------------------------------- *)

(* Random batch-stage chains over the default 3-field schema.  The pool
   mixes the four fusable per-record ops with Sort (non-fusable), so
   generated chains exercise fusable runs, barriers splitting them, lone
   fusable ops and empty chains. *)
let batch_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun hi -> Pipeline.B_filter_band { field = vf; lo = 0l; hi }) (map Int32.of_int (int_range 0 0x3FFFFFFF)));
        (2, map (fun shift -> Pipeline.B_shift_key { field = 0; shift }) (int_range 1 10));
        (2, map (fun value -> Pipeline.B_select { field = 0; value = Int32.of_int value }) (int_range 0 40));
        (2, oneofl [ Pipeline.B_project [| 0; 1; 2 |]; Pipeline.B_project [| 2; 1; 0 |] ]);
        (2, return (Pipeline.B_sort { key_field = 0; secondary_value = None }));
      ])

let chain_gen = QCheck.Gen.(list_size (int_range 0 6) batch_op_gen)

let pp_chain ops =
  Format.asprintf "%a" Ir.pp (List.map (fun op -> Ir.N_op op) ops)

let pipeline_of_chain batch_ops =
  {
    Pipeline.name = "IrProp";
    schema = Event.default;
    window_size_ticks = 1000;
    window_slide_ticks = 1000;
    window_kind = `Fixed;
    streams = 1;
    batch_ops;
    window_ops = [ P.Concat ];
    window_udf_invocations = 0;
    udfs = [];
    plan =
      (fun ctx ->
        match ctx.Pipeline.invoke P.Concat (List.map snd ctx.Pipeline.ready) with
        | [ r ] -> r
        | _ -> failwith "IrProp: expected one Concat output");
  }

let det_cfg ~fuse () =
  let cost = { Sbt_tz.Cost_model.default with Sbt_tz.Cost_model.host_scale = 0.0 } in
  Runtime.Config.make ~cores:4 ~cost ~fuse ()

let frames_for ~windows ~events_per_window ~batch_events =
  Datagen.frames
    (Datagen.default_spec ~windows ~events_per_window ~batch_events ())

let verdict (r : Runtime.run_result) =
  let records = List.concat_map (Log.open_batch ~key:egress_key) r.Runtime.audit in
  let rep = V.verify r.Runtime.verifier_spec records in
  (V.ok rep, rep.V.declared_gaps, List.length rep.V.violations)

let essentials (r : Runtime.run_result) = (r.Runtime.results, verdict r, r.Runtime.loss)

let prop_fused_equals_unfused =
  QCheck.Test.make
    ~name:"fuse on|off x {Des, Domains 2}: sealed results, verdicts, loss identical"
    ~count:8
    (QCheck.make ~print:pp_chain chain_gen)
    (fun ops ->
      let pipe = pipeline_of_chain ops in
      let frames = frames_for ~windows:2 ~events_per_window:800 ~batch_events:200 in
      let run ~fuse engine ?exec_mode () =
        Runtime.run ~engine ?exec_mode ~exec_time_scale:0.0 (det_cfg ~fuse ())
          pipe frames
      in
      let reference = essentials (run ~fuse:false (`Des 4) ()) in
      let fused_des = essentials (run ~fuse:true (`Des 4) ()) in
      let unfused_dom = essentials (run ~fuse:false (`Domains 2) ~exec_mode:`Work ()) in
      let fused_dom = essentials (run ~fuse:true (`Domains 2) ~exec_mode:`Work ()) in
      reference = fused_des && reference = unfused_dom && reference = fused_dom)

(* With fusion on, the recorded audit stream actually contains composite
   records (the property above would also pass if fusion silently never
   engaged). *)
let test_fused_records_present () =
  let pipe = Pipeline.fps_chain () in
  let frames = frames_for ~windows:2 ~events_per_window:1_000 ~batch_events:250 in
  let count_fused cfg =
    let r = Runtime.run ~engine:(`Des 4) cfg pipe frames in
    let records = List.concat_map (Log.open_batch ~key:egress_key) r.Runtime.audit in
    List.length
      (List.filter (function Sbt_attest.Record.Fused _ -> true | _ -> false) records)
  in
  Alcotest.(check int) "no composite records unfused" 0 (count_fused (det_cfg ~fuse:false ()));
  Alcotest.(check bool) "composite records present fused" true
    (count_fused (det_cfg ~fuse:true ()) > 0)

let () =
  Alcotest.run "ir"
    [
      ( "fusion-pass",
        [
          Alcotest.test_case "fps chain fuses to one kernel" `Quick test_fuse_chain;
          Alcotest.test_case "sort is a barrier" `Quick test_fuse_barrier_sort;
          Alcotest.test_case "window boundary is a barrier" `Quick test_fuse_barrier_window;
          Alcotest.test_case "lone fusable op stays unfused" `Quick test_fuse_lone_op_stays;
          Alcotest.test_case "idempotent on already-fused plans" `Quick test_fuse_idempotent;
        ] );
      ( "fused-equals-unfused",
        [
          QCheck_alcotest.to_alcotest prop_fused_equals_unfused;
          Alcotest.test_case "fused runs emit composite records" `Quick
            test_fused_records_present;
        ] );
    ]
